(* Quickstart: the whole What's Next pipeline on ten lines of WNC.

   We write a kernel with an `anytime` region and an `asp` pragma,
   compile it twice (precise baseline and anytime build), run both on
   the cycle-accurate WN-32 core, and then run the anytime build on an
   intermittent supply to watch a skim point commit an approximate
   result early.

   Run with:  dune exec examples/quickstart.exe *)

let source =
  {|
#pragma asp input(samples, 8)
#pragma asp output(out)

uint16 samples[64];
uint16 gains[64];
uint32 out[64];

kernel scale_samples() {
  anytime {
    for (i = 0; i < 64; i += 1) {
      out[i] = gains[i] * samples[i];
    }
  } commit { }
}
|}

open Wn_compiler

let run_on compiled ~supply ~policy inputs =
  let mem = Wn_mem.Memory.create ~size:(compiled.Compile.data_bytes + 64) in
  List.iter
    (fun (name, values) ->
      let sym = Compile.symbol compiled name in
      Wn_mem.Memory.blit_in mem ~addr:sym.Compile.sym_addr
        (Layout.encode sym.Compile.sym_layout values))
    inputs;
  let machine = Wn_machine.Machine.create ~program:compiled.Compile.program ~mem () in
  let outcome = Wn_runtime.Executor.run ~policy ~machine ~supply () in
  let sym = Compile.symbol compiled "out" in
  let out =
    Layout.decode sym.Compile.sym_layout ~count:64
      (Wn_mem.Memory.region mem ~addr:sym.Compile.sym_addr
         ~len:(Layout.storage_bytes sym.Compile.sym_layout ~count:64))
  in
  (outcome, out)

let () =
  (* Inputs: 64 sensor samples and per-channel gains. *)
  let rng = Wn_util.Rng.create 42 in
  let samples = Array.init 64 (fun _ -> Wn_util.Rng.int rng 0x10000) in
  let gains = Array.init 64 (fun _ -> 1 + Wn_util.Rng.int rng 255) in
  let inputs = [ ("samples", samples); ("gains", gains) ] in
  let exact = Array.map2 (fun g s -> g * s land 0xFFFFFFFF) gains samples in

  (* 1. Compile the same source twice. *)
  let precise = Compile.compile_source ~options:Compile.precise source in
  let anytime = Compile.compile_source ~options:Compile.anytime source in
  Printf.printf "compiled: precise %dB of code, anytime %dB (extra subword \
                 stages + skim points)\n"
    (Compile.code_size_bytes precise)
    (Compile.code_size_bytes anytime);

  (* 2. Continuous power: the anytime build converges to the same
        bit-exact result, just later. *)
  let po, pout =
    run_on precise ~supply:(Wn_power.Supply.always_on ())
      ~policy:Wn_runtime.Executor.Always_on inputs
  in
  let ao, aout =
    run_on anytime ~supply:(Wn_power.Supply.always_on ())
      ~policy:Wn_runtime.Executor.Always_on inputs
  in
  assert (pout = exact);
  assert (aout = exact);
  Printf.printf
    "always-on: precise %d cycles; anytime %d cycles to the same exact \
     result (x%.2f refinement overhead)\n"
    po.Wn_runtime.Executor.active_cycles ao.Wn_runtime.Executor.active_cycles
    (float_of_int ao.Wn_runtime.Executor.active_cycles
    /. float_of_int po.Wn_runtime.Executor.active_cycles);

  (* 3. Harvested power: a power outage interrupts refinement and the
        skim point commits the approximate output as-is. *)
  let bursty () =
    Wn_power.Supply.create
      ~trace:(Wn_power.Trace.square ~on_ms:1 ~off_ms:20 ~power:1.5e-3 ~duration_s:5.0)
      ~capacitor:(Wn_power.Capacitor.create ~capacitance:1e-6 ()) ()
  in
  let io, iout =
    run_on anytime ~supply:(bursty ())
      ~policy:(Wn_runtime.Executor.Nvp Wn_runtime.Executor.default_nvp)
      inputs
  in
  let err =
    Wn_util.Stats.nrmse_pct
      ~reference:(Array.map float_of_int exact)
      (Array.map float_of_int iout)
  in
  Printf.printf
    "intermittent: finished %s after %d outage(s); committed output is %.3f%% \
     from exact\n"
    (if io.Wn_runtime.Executor.skimmed then "via a skim point" else "precisely")
    io.Wn_runtime.Executor.outage_count err;
  print_endline "quickstart done."
