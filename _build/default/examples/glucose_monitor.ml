(* Glucose monitor: the paper's motivating case study (Section II,
   Figure 3).

   A wearable energy-harvesting monitor must process a blood-glucose
   reading every 15 minutes.  The precise pipeline cannot keep up with
   the harvested energy budget, so a conventional design *samples* —
   drops readings — and risks missing hypoglycemic events.  Anytime
   processing instead produces a 4-bit approximate value for every
   reading.

   The per-reading energy budget is grounded in the simulator: the cost
   ratio between the precise kernel and the anytime kernel's earliest
   output is measured on the Var reduction (the shape of a monitor's
   feature extraction).

   Run with:  dune exec examples/glucose_monitor.exe *)

let bar width value max_value =
  let n = int_of_float (value /. max_value *. float_of_int width) in
  String.make (max 0 (min width n)) '#'

let () =
  let study = Wn_core.Sampling.glucose_study Wn_workloads.Workload.Small in
  Printf.printf
    "measured cost: precise processing takes %.2fx the anytime first pass,\n\
     so under the harvested budget the sampling design keeps only every\n\
     other reading, while anytime processing covers them all.\n\n"
    study.Wn_core.Sampling.cost_ratio;
  Printf.printf "%-7s %9s %9s %9s  reading (mg/dL)\n" "time" "clinical"
    "sampled" "anytime";
  List.iter
    (fun (r : Wn_core.Sampling.glucose_row) ->
      let critical =
        r.Wn_core.Sampling.clinical < Wn_workloads.Glucose.critical_threshold
      in
      Printf.printf "%-7s %9.1f %9s %9.1f  |%-40s|%s\n"
        r.Wn_core.Sampling.clock r.Wn_core.Sampling.clinical
        (match r.Wn_core.Sampling.sampled with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "-")
        r.Wn_core.Sampling.anytime
        (bar 40 r.Wn_core.Sampling.anytime 260.0)
        (if critical then "  !! HYPOGLYCEMIC" else ""))
    study.Wn_core.Sampling.readings;
  Printf.printf
    "\ncritical events: %d | caught by sampling: %d | caught by anytime: %d\n"
    study.Wn_core.Sampling.total_dips study.Wn_core.Sampling.sampled_detected
    study.Wn_core.Sampling.anytime_detected;
  Printf.printf
    "anytime mean reading error: %.2f%% (ISO 15197 allows 20%%; the paper \
     reports 7.5%%)\n"
    study.Wn_core.Sampling.anytime_mean_err_pct;
  if
    study.Wn_core.Sampling.anytime_detected > study.Wn_core.Sampling.sampled_detected
  then
    print_endline
      "=> anytime processing catches events the sampling design sleeps through."
