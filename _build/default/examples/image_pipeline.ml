(* Image pipeline: a battery-free camera (WISPCam-style) smoothing
   frames on harvested RF power — the paper's Figure 1/2 scenario.

   A stream of frames arrives; each must be Gaussian-filtered before
   transmission.  The precise pipeline needs several charge bursts per
   frame and keeps falling behind; the WN build commits an approximate
   frame at the first outage past a skim point and moves on.  We process
   the same stream both ways on the checkpointing (Clank-style) core and
   compare forward progress and image quality, writing the frames as
   PGM files.

   Run with:  dune exec examples/image_pipeline.exe -- [out_dir]
   (default out_dir: ./frames) *)

open Wn_workloads

let frames = 3

let () =
  let out_dir = if Array.length Sys.argv > 1 then Sys.argv.(1) else "frames" in
  if not (Sys.file_exists out_dir) then Sys.mkdir out_dir 0o755;
  let w = Suite.find Workload.Small "Conv2d" in
  let p = Conv2d.params Workload.Small in
  let cfg = { Workload.bits = 8; provisioned = true } in
  let precise = Wn_core.Runner.build ~precise:true w cfg in
  let anytime = Wn_core.Runner.build w cfg in
  let policy = Wn_runtime.Executor.Clank Wn_runtime.Executor.default_clank in
  let trace = Wn_power.Trace.rf_burst ~seed:2026 ~duration_s:120.0 () in

  (* The same frames for both pipelines. *)
  let rng = Wn_util.Rng.create 5 in
  let stream = List.init frames (fun _ -> w.Workload.fresh_inputs rng) in

  let process label build =
    let supply =
      Wn_power.Supply.create ~trace ~capacitor:(Wn_power.Capacitor.create ()) ()
    in
    let machine = Wn_core.Runner.machine build in
    Printf.printf "%s pipeline:\n" label;
    List.iteri
      (fun i inputs ->
        Wn_core.Runner.load_sample build machine inputs;
        let o = Wn_runtime.Executor.run ~policy ~machine ~supply () in
        let out = Wn_core.Runner.output build machine in
        let golden = w.Workload.golden inputs in
        let path = Filename.concat out_dir (Printf.sprintf "%s_frame%d.pgm" label i) in
        Image.write_pgm ~path ~width:p.Conv2d.width ~height:p.Conv2d.height
          (Image.nrmse_to_pixels out ~scale:Conv2d.output_scale);
        Printf.printf
          "  frame %d: %6.1f ms wall (%2d outages)%s, NRMSE %6.3f%%  -> %s\n" i
          (float_of_int o.Wn_runtime.Executor.wall_cycles /. 24e3)
          o.Wn_runtime.Executor.outage_count
          (if o.Wn_runtime.Executor.skimmed then ", skimmed" else "          ")
          (Wn_core.Runner.nrmse_pct ~reference:golden out)
          path)
      stream;
    supply
  in
  let s_precise = process "precise" precise in
  let s_anytime = process "anytime" anytime in
  let ms s = float_of_int (Wn_power.Supply.now_cycles s) /. 24e3 in
  Printf.printf
    "\nforward progress: precise finished %d frames in %.0f ms of wall time;\n\
     the WN pipeline finished them in %.0f ms — %.2fx faster, every frame \
     complete.\n"
    frames (ms s_precise) (ms s_anytime)
    (ms s_precise /. ms s_anytime)
