examples/quickstart.mli:
