examples/image_pipeline.ml: Array Conv2d Filename Image List Printf Suite Sys Wn_core Wn_power Wn_runtime Wn_util Wn_workloads Workload
