examples/wildlife_tracker.ml: Array Printf Suite Wn_core Wn_power Wn_runtime Wn_util Wn_workloads Workload
