examples/glucose_monitor.mli:
