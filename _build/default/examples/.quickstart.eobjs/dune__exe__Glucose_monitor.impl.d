examples/glucose_monitor.ml: List Printf String Wn_core Wn_workloads
