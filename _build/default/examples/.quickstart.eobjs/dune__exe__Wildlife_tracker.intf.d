examples/wildlife_tracker.mli:
