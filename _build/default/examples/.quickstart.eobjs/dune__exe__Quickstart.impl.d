examples/quickstart.ml: Array Compile Layout List Printf Wn_compiler Wn_machine Wn_mem Wn_power Wn_runtime Wn_util
