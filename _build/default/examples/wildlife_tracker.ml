(* Wildlife tracker: a ZebraNet-style collar on a non-volatile processor
   summarising movement between uplinks (the paper's NetMotion
   benchmark).

   Each task reduces a window of signed displacement deltas to per-
   interval net movement.  Under harvested power the NVP resumes in
   place after each outage; once a skim point is latched, the next
   outage commits the current digit-plane estimate as-is.  We process a
   stream of tracking tasks and report, for each, how many subword
   planes were refined before commit and how far the estimate sits from
   the exact net track.

   Run with:  dune exec examples/wildlife_tracker.exe *)

open Wn_workloads

let tasks = 6

let () =
  let w = Suite.find Workload.Small "NetMotion" in
  let cfg = { Workload.bits = 8; provisioned = true } in
  let build = Wn_core.Runner.build w cfg in
  let machine = Wn_core.Runner.machine build in
  let supply =
    Wn_power.Supply.create
      ~trace:(Wn_power.Trace.rf_burst ~seed:77 ~duration_s:120.0 ())
      ~capacitor:(Wn_power.Capacitor.create ()) ()
  in
  let rng = Wn_util.Rng.create 9 in
  Printf.printf "%-5s %10s %8s %9s %12s %12s\n" "task" "wall(ms)" "outages"
    "commit" "net |exact|" "net |WN|";
  for task = 0 to tasks - 1 do
    let inputs = w.Workload.fresh_inputs rng in
    Wn_core.Runner.load_sample build machine inputs;
    let o =
      Wn_runtime.Executor.run
        ~policy:(Wn_runtime.Executor.Nvp Wn_runtime.Executor.default_nvp)
        ~machine ~supply ()
    in
    let out = Wn_core.Runner.output build machine in
    let golden = w.Workload.golden inputs in
    (* Total track length across the intervals, in metres (deltas are
       µm-scaled). *)
    let track a =
      let n = Array.length a / 2 in
      let total = ref 0.0 in
      for z = 0 to n - 1 do
        total := !total +. sqrt ((a.(z) ** 2.0) +. (a.(n + z) ** 2.0))
      done;
      !total /. 1e6
    in
    Printf.printf "%-5d %10.1f %8d %9s %11.1fm %11.1fm   (NRMSE %5.2f%%)\n" task
      (float_of_int o.Wn_runtime.Executor.wall_cycles /. 24e3)
      o.Wn_runtime.Executor.outage_count
      (if o.Wn_runtime.Executor.skimmed then "skimmed" else "precise")
      (track golden) (track out)
      (Wn_core.Runner.nrmse_pct ~reference:golden out)
  done;
  print_endline
    "\nevery uplink interval gets a movement summary; intervals cut short by\n\
     outages report a most-significant-digit estimate instead of nothing."
