(* Random WNC program generator for differential testing.

   Programs are closed and safe by construction: loops have constant
   bounds, every array index is masked to the (power-of-two) array
   length, locals stay within the code generator's register budget, and
   comparisons appear only in if-conditions.  Inputs are generated
   alongside the program. *)

open Wn_lang.Ast

type spec = {
  program : program;
  inputs : (string * int array) list;
  source : string;  (** pretty-printed, re-parsed by the tests *)
}

let array_len = 16 (* power of two: indices are masked with len-1 *)

let input_decls =
  [
    { g_name = "in1"; g_ty = U16; g_count = array_len };
    { g_name = "in2"; g_ty = I16; g_count = array_len };
    { g_name = "in3"; g_ty = U32; g_count = array_len };
  ]

let output_decls =
  [
    { g_name = "out1"; g_ty = U32; g_count = array_len };
    { g_name = "out2"; g_ty = I32; g_count = array_len };
    { g_name = "out8"; g_ty = U8; g_count = array_len };
  ]

let arrays = input_decls @ output_decls

(* Generation state: variables readable in scope, the subset that may
   be assigned (loop variables are read-only, or loops could diverge),
   and a fresh-name counter. *)
type st = {
  mutable vars : string list;
  mutable assignable : string list;
  mutable next : int;
}

open QCheck.Gen

let small_const = frequency [ (4, int_bound 255); (2, int_bound 65535); (1, return 0) ]

let pick_array = oneofl (List.map (fun g -> g.g_name) arrays)

let rec gen_expr st depth =
  let leaf =
    frequency
      [
        (3, map (fun n -> Int n) small_const);
        ( (if st.vars = [] then 0 else 4),
          map (fun i -> Var (List.nth st.vars (i mod max 1 (List.length st.vars))))
            (int_bound 1000) );
        (2, gen_load st depth);
      ]
  in
  if depth <= 0 then leaf
  else
    frequency
      [
        (3, leaf);
        ( 4,
          let* op = oneofl [ Add; Sub; Mul; And; Or; Xor ] in
          let* a = gen_expr st (depth - 1) in
          let* b = gen_expr st (depth - 1) in
          return (Binop (op, a, b)) );
        ( 2,
          let* op = oneofl [ Shl; Shr ] in
          let* a = gen_expr st (depth - 1) in
          let* n = int_bound 8 in
          return (Binop (op, a, Int n)) );
        (1, map (fun e -> Neg e) (gen_expr st (depth - 1)));
        (1, map (fun e -> Bnot e) (gen_expr st (depth - 1)));
        (1, map (fun e -> Sqrt e) (gen_expr st (depth - 1)));
      ]

and gen_load st depth =
  let* arr = pick_array in
  let* idx = gen_index st depth in
  return (Load (arr, idx))

(* A masked index is always within bounds. *)
and gen_index st depth =
  let* e = gen_expr st (max 0 (depth - 1)) in
  return (Binop (And, e, Int (array_len - 1)))

let gen_cond st depth =
  let* op = oneofl [ Eq; Ne; Lt; Le; Gt; Ge ] in
  let* a = gen_expr st depth in
  let* b = gen_expr st depth in
  return (Binop (op, a, b))

let fresh st prefix =
  st.next <- st.next + 1;
  Printf.sprintf "%s%d" prefix st.next

(* The code generator allocates one register per live local; stay well
   under its budget of 7. *)
let max_locals = 4

let rec gen_stmt st ~loops_left =
  frequency
    ([
       ( (if List.length st.vars >= max_locals then 0 else 2),
         let* e = gen_expr st 2 in
         let name = fresh st "v" in
         st.vars <- name :: st.vars;
         st.assignable <- name :: st.assignable;
         return (Decl (name, e)) );
       ( (if st.assignable = [] then 0 else 3),
         let* i = int_bound 1000 in
         let v = List.nth st.assignable (i mod List.length st.assignable) in
         let* e = gen_expr st 2 in
         let* aug = bool in
         let* op = oneofl [ Add; Sub; Xor ] in
         return (if aug then Aug_assign (Lvar v, op, e) else Assign (Lvar v, e)) );
       ( 4,
         let* arr = oneofl [ "out1"; "out2"; "out8" ] in
         let* idx = gen_index st 1 in
         let* e = gen_expr st 2 in
         let* aug = bool in
         return
           (if aug then Aug_assign (Larr (arr, idx), Add, e)
            else Assign (Larr (arr, idx), e)) );
       ( 2,
         let* cond = gen_cond st 1 in
         let* then_blk = gen_block st ~loops_left ~len:2 in
         let* else_blk = gen_block st ~loops_left ~len:1 in
         return (If (cond, then_blk, else_blk)) );
     ]
    @
    if loops_left <= 0 then []
    else
      [
        ( 3,
          let var = fresh st "i" in
          let* hi = int_range 1 array_len in
          let* step = int_range 1 2 in
          let saved = st.vars and saved_a = st.assignable in
          st.vars <- var :: st.vars;
          let* body = gen_block st ~loops_left:(loops_left - 1) ~len:3 in
          st.vars <- saved;
          st.assignable <- saved_a;
          return (For { var; lo = Int 0; hi = Int hi; step; body }) );
      ])

and gen_block st ~loops_left ~len =
  let* n = int_range 1 len in
  let rec go acc k =
    if k = 0 then return (List.rev acc)
    else
      let saved_vars = st.vars and saved_a = st.assignable in
      let* s = gen_stmt st ~loops_left in
      (* locals declared inside nested blocks fall out of scope there;
         here we keep top-level growth only for Decl results *)
      (match s with
      | Decl _ -> ()
      | _ ->
          st.vars <- saved_vars;
          st.assignable <- saved_a);
      go (s :: acc) (k - 1)
  in
  let saved = st.vars and saved_a = st.assignable in
  let* stmts = go [] n in
  st.vars <- saved;
  st.assignable <- saved_a;
  return stmts

let gen_program : spec QCheck.Gen.t =
 fun rand ->
  let st = { vars = []; assignable = []; next = 0 } in
  let body = gen_block st ~loops_left:2 ~len:5 rand in
  let program = { pragmas = []; globals = arrays; kernel_name = "fuzz"; body } in
  let seed_rng = Wn_util.Rng.create (int_bound 1_000_000 rand) in
  let inputs =
    List.map
      (fun g ->
        ( g.g_name,
          Array.init g.g_count (fun _ ->
              Wn_util.Rng.int seed_rng (1 lsl min 30 (ty_bits g.g_ty))) ))
      input_decls
  in
  let source = Format.asprintf "%a" pp_program program in
  { program; inputs; source }

let arbitrary =
  QCheck.make ~print:(fun s -> s.source) gen_program
