(* Differential testing: random WNC programs are executed three ways —
   by the reference interpreter, by the compiled precise build on the
   cycle-accurate core under continuous power, and by the same binary
   under intermittent power on both system models.  All four answers
   must agree bit for bit: the compiler against the language semantics,
   and the intermittency runtimes against the compiler. *)

open Wn_compiler

let globals_of (spec : Gen_wnc.spec) = spec.Gen_wnc.program.Wn_lang.Ast.globals

(* Run a compiled program; returns each global's final contents. *)
let machine_results ?policy ?supply compiled (spec : Gen_wnc.spec) =
  let mem = Wn_mem.Memory.create ~size:(compiled.Compile.data_bytes + 64) in
  List.iter
    (fun (name, values) ->
      let sym = Compile.symbol compiled name in
      Wn_mem.Memory.blit_in mem ~addr:sym.Compile.sym_addr
        (Layout.encode sym.Compile.sym_layout values))
    spec.Gen_wnc.inputs;
  let machine =
    Wn_machine.Machine.create ~program:compiled.Compile.program ~mem ()
  in
  let supply =
    match supply with Some s -> s () | None -> Wn_power.Supply.always_on ()
  in
  let outcome = Wn_runtime.Executor.run ?policy ~machine ~supply () in
  if not outcome.Wn_runtime.Executor.completed then failwith "did not complete";
  List.map
    (fun (g : Wn_lang.Ast.global) ->
      let sym = Compile.symbol compiled g.Wn_lang.Ast.g_name in
      ( g.Wn_lang.Ast.g_name,
        Layout.decode sym.Compile.sym_layout ~count:g.Wn_lang.Ast.g_count
          (Wn_mem.Memory.region mem ~addr:sym.Compile.sym_addr
             ~len:
               (Layout.storage_bytes sym.Compile.sym_layout
                  ~count:g.Wn_lang.Ast.g_count)) ))
    (globals_of spec)

let interp_results (spec : Gen_wnc.spec) =
  Wn_lang.Interp.interpret spec.Gen_wnc.program ~inputs:spec.Gen_wnc.inputs

let compile_spec (spec : Gen_wnc.spec) =
  Compile.compile ~options:Compile.precise spec.Gen_wnc.program

let bursty () =
  Wn_power.Supply.create
    ~trace:(Wn_power.Trace.square ~on_ms:1 ~off_ms:5 ~power:2e-3 ~duration_s:20.0)
    ~capacitor:(Wn_power.Capacitor.create ~capacitance:2e-6 ()) ()

let show_mismatch a b =
  List.iter2
    (fun (n1, x) (n2, y) ->
      assert (n1 = n2);
      if x <> y then
        Array.iteri
          (fun i v ->
            if v <> y.(i) then
              Printf.eprintf "  %s[%d]: %d vs %d\n" n1 i v y.(i))
          x)
    a b

let prop_compiler_matches_interpreter =
  QCheck.Test.make ~count:400 ~name:"compiled precise build == interpreter"
    Gen_wnc.arbitrary (fun spec ->
      let expected = interp_results spec in
      let got = machine_results (compile_spec spec) spec in
      if got <> expected then begin
        show_mismatch got expected;
        false
      end
      else true)

let prop_parser_roundtrip =
  QCheck.Test.make ~count:400 ~name:"printed program re-parses to itself"
    Gen_wnc.arbitrary (fun spec ->
      let reparsed = Wn_lang.Parser.parse spec.Gen_wnc.source in
      reparsed.Wn_lang.Ast.body = spec.Gen_wnc.program.Wn_lang.Ast.body)

let prop_nvp_equals_always_on =
  QCheck.Test.make ~count:150 ~name:"NVP under outages == always-on"
    Gen_wnc.arbitrary (fun spec ->
      let compiled = compile_spec spec in
      let reference = machine_results compiled spec in
      let nvp =
        machine_results
          ~policy:(Wn_runtime.Executor.Nvp Wn_runtime.Executor.default_nvp)
          ~supply:bursty compiled spec
      in
      nvp = reference)

let prop_clank_equals_always_on =
  QCheck.Test.make ~count:150 ~name:"Clank under outages == always-on"
    Gen_wnc.arbitrary (fun spec ->
      let compiled = compile_spec spec in
      let reference = machine_results compiled spec in
      let clank =
        machine_results
          ~policy:
            (Wn_runtime.Executor.Clank
               { Wn_runtime.Executor.default_clank with watchdog_period = 800 })
          ~supply:bursty compiled spec
      in
      clank = reference)

let () =
  Alcotest.run "wn.differential"
    [
      ( "random programs",
        List.map QCheck_alcotest.to_alcotest
          [
            prop_parser_roundtrip;
            prop_compiler_matches_interpreter;
            prop_nvp_equals_always_on;
            prop_clank_equals_always_on;
          ] );
    ]
