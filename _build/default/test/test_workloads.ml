(* Tests for wn.workloads: every Table I kernel's precise build must
   match its golden model bit for bit, and every anytime build must
   converge to the same precise result once all subword passes have
   run — the paper's central guarantee. *)

open Wn_workloads

let scale = Workload.Small

let run_build b inputs =
  let machine = Wn_core.Runner.machine b in
  Wn_core.Runner.load_sample b machine inputs;
  let o = Wn_core.Runner.run_always_on b machine in
  Alcotest.(check bool) "completed" true o.Wn_runtime.Executor.completed;
  (Wn_core.Runner.output b machine, o)

let precise_matches_golden (w : Workload.t) =
  let rng = Wn_util.Rng.create 101 in
  let inputs = w.Workload.fresh_inputs rng in
  let b =
    Wn_core.Runner.build ~precise:true w { Workload.bits = 8; provisioned = true }
  in
  let out, _ = run_build b inputs in
  if out <> w.Workload.golden inputs then
    Alcotest.failf "%s: precise output diverges from golden model" w.Workload.name

let anytime_converges (w : Workload.t) bits =
  let rng = Wn_util.Rng.create 202 in
  let inputs = w.Workload.fresh_inputs rng in
  let b = Wn_core.Runner.build w { Workload.bits; provisioned = true } in
  let out, o = run_build b inputs in
  if out <> w.Workload.golden inputs then
    Alcotest.failf "%s: %d-bit anytime build does not reach the precise result"
      w.Workload.name bits;
  if o.Wn_runtime.Executor.first_skim_active = None then
    Alcotest.failf "%s: no skim point latched" w.Workload.name

let anytime_costs_more_than_precise (w : Workload.t) =
  (* The iterative refinement's overhead (Section V-A): the anytime
     build takes longer than the baseline to the *final* answer. *)
  let rng = Wn_util.Rng.create 303 in
  let inputs = w.Workload.fresh_inputs rng in
  let cfg = { Workload.bits = 8; provisioned = true } in
  let pb = Wn_core.Runner.build ~precise:true w cfg in
  let ab = Wn_core.Runner.build w cfg in
  let _, po = run_build pb inputs in
  let _, ao = run_build ab inputs in
  let pc = po.Wn_runtime.Executor.active_cycles in
  let ac = ao.Wn_runtime.Executor.active_cycles in
  if ac <= pc then
    Alcotest.failf "%s: anytime (%d) not slower than precise (%d) to finish"
      w.Workload.name ac pc

let earliest_improves_with_refinement (w : Workload.t) =
  (* 4-bit earliest output must be available sooner but rougher than
     8-bit — Section V-A's granularity trade-off. *)
  let e8 = Wn_core.Earliest.earliest ~seed:404 ~bits:8 w in
  let e4 = Wn_core.Earliest.earliest ~seed:404 ~bits:4 w in
  if e4.Wn_core.Earliest.active_cycles >= e8.Wn_core.Earliest.active_cycles then
    Alcotest.failf "%s: 4-bit earliest not earlier than 8-bit" w.Workload.name;
  if e4.Wn_core.Earliest.nrmse < e8.Wn_core.Earliest.nrmse -. 1e-9 then
    Alcotest.failf "%s: 4-bit earliest more accurate than 8-bit (%f vs %f)"
      w.Workload.name e4.Wn_core.Earliest.nrmse e8.Wn_core.Earliest.nrmse

let test_table1_shape () =
  let names = List.map (fun (w : Workload.t) -> w.Workload.name) (Suite.all scale) in
  Alcotest.(check (list string)) "suite order" Suite.names names;
  List.iter
    (fun name ->
      let w = Suite.find scale name in
      Alcotest.(check string) "find is case-insensitive" w.Workload.name
        (Suite.find scale (String.uppercase_ascii name)).Workload.name)
    Suite.names

let test_input_bounds () =
  (* Generator invariants that keep 32-bit accumulators from wrapping:
     checked across several seeds. *)
  for seed = 1 to 5 do
    let rng = Wn_util.Rng.create seed in
    (* Var: |reading| <= 6000 and windows re-centred. *)
    let v = Suite.find scale "Var" in
    let readings = List.assoc "readings" (v.Workload.fresh_inputs rng) in
    Array.iter
      (fun p ->
        let x = Wn_util.Subword.to_signed ~bits:16 p in
        if abs x > 6000 then Alcotest.failf "Var reading %d out of bounds" x)
      readings;
    (* Home: window sums below 2^31. *)
    let h = Suite.find scale "Home" in
    List.iter
      (fun (_, a) ->
        let worst = Array.fold_left max 0 a in
        if worst * 64 >= 1 lsl 31 then Alcotest.fail "Home window sum can wrap")
      (h.Workload.fresh_inputs rng);
    (* NetMotion: window sums below 2^31 in magnitude. *)
    let n = Suite.find scale "NetMotion" in
    List.iter
      (fun (_, a) ->
        Array.iter
          (fun p ->
            let x = Wn_util.Subword.to_signed ~bits:32 p in
            if abs x * 64 >= 1 lsl 31 then
              Alcotest.fail "NetMotion window sum can wrap")
          a)
      (n.Workload.fresh_inputs rng)
  done

(* ---------------- Image helpers ---------------- *)

let test_gaussian_filter () =
  List.iter
    (fun k ->
      let f = Image.gaussian_filter ~k ~weight_sum:256 in
      Alcotest.(check int) "sums to 256" 256 (Array.fold_left ( + ) 0 f);
      Array.iter (fun w -> if w < 0 then Alcotest.fail "negative tap") f;
      let centre = f.((k / 2 * k) + (k / 2)) in
      Array.iter (fun w -> if w > centre then Alcotest.fail "centre not max") f)
    [ 3; 5; 9 ]

let test_image_padding () =
  let img = [| 1; 2; 3; 4 |] in
  let padded = Image.pad_image img ~width:2 ~height:2 ~pad:1 ~stride:8 in
  Alcotest.(check int) "size" 32 (Array.length padded);
  Alcotest.(check int) "origin shifted" 1 padded.((1 * 8) + 1);
  Alcotest.(check int) "last pixel" 4 padded.((2 * 8) + 2);
  Alcotest.(check int) "border zero" 0 padded.(0)

let test_pgm_writer () =
  let path = Filename.temp_file "wn_test" ".pgm" in
  Image.write_pgm ~path ~width:4 ~height:2
    (Array.init 8 (fun i -> float_of_int i));
  let ic = open_in_bin path in
  let header = really_input_string ic 2 in
  close_in ic;
  Sys.remove path;
  Alcotest.(check string) "P5 magic" "P5" header

(* ---------------- Glucose ---------------- *)

let test_glucose_series () =
  let rng = Wn_util.Rng.create 77 in
  let series = Glucose.clinical rng in
  Alcotest.(check int) "41 readings over 10 hours" 41 (Array.length series);
  let dips = Glucose.critical_indices series in
  Alcotest.(check int) "exactly two critical events" 2 (List.length dips);
  List.iter
    (fun i ->
      let m = series.(i).Glucose.minutes in
      if abs (m - 222) > 15 && abs (m - 462) > 15 then
        Alcotest.failf "dip at unexpected minute %d" m)
    dips;
  Alcotest.(check string) "clock formatting" "14:33" (Glucose.clock_of_minutes 225)

let test_glucose_quantizer () =
  (* More kept bits: smaller mean error; 8 bits is (nearly) exact. *)
  let values = List.init 40 (fun i -> 30.0 +. (float_of_int i *. 9.0)) in
  let mean_err bits =
    List.fold_left
      (fun acc v -> acc +. abs_float (Glucose.quantize_msb ~bits v -. v))
      0.0 values
    /. 40.0
  in
  if mean_err 2 < mean_err 4 then Alcotest.fail "2-bit beats 4-bit on average";
  if mean_err 4 < mean_err 8 then Alcotest.fail "4-bit beats 8-bit on average";
  if mean_err 8 > 2.0 then Alcotest.fail "8-bit quantisation too lossy";
  (* quantised values never exceed the original (floor quantiser) *)
  List.iter
    (fun v ->
      if Glucose.quantize_msb ~bits:4 v > v +. 1e-6 then
        Alcotest.fail "floor quantiser went up")
    values

(* ---------------- per-workload suites ---------------- *)

let per_workload (w : Workload.t) =
  [
    Alcotest.test_case "precise = golden" `Quick (fun () ->
        precise_matches_golden w);
    Alcotest.test_case "anytime 8-bit converges" `Quick (fun () ->
        anytime_converges w 8);
    Alcotest.test_case "anytime 4-bit converges" `Quick (fun () ->
        anytime_converges w 4);
    Alcotest.test_case "refinement overhead" `Quick (fun () ->
        anytime_costs_more_than_precise w);
    Alcotest.test_case "granularity trade-off" `Quick (fun () ->
        earliest_improves_with_refinement w);
  ]

let () =
  Alcotest.run "wn.workloads"
    ([
       ( "suite",
         [
           Alcotest.test_case "table 1 shape" `Quick test_table1_shape;
           Alcotest.test_case "input bounds" `Quick test_input_bounds;
         ] );
       ( "image",
         [
           Alcotest.test_case "gaussian filter" `Quick test_gaussian_filter;
           Alcotest.test_case "padding" `Quick test_image_padding;
           Alcotest.test_case "pgm writer" `Quick test_pgm_writer;
         ] );
       ( "glucose",
         [
           Alcotest.test_case "clinical series" `Quick test_glucose_series;
           Alcotest.test_case "quantizer" `Quick test_glucose_quantizer;
         ] );
     ]
    @ List.map
        (fun (w : Workload.t) -> (String.lowercase_ascii w.Workload.name, per_workload w))
        (Suite.extended scale))
