test/test_workloads.mli:
