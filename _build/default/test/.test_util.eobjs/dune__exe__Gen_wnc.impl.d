test/gen_wnc.ml: Array Format List Printf QCheck Wn_lang Wn_util
