test/test_workloads.ml: Alcotest Array Filename Glucose Image List String Suite Sys Wn_core Wn_runtime Wn_util Wn_workloads Workload
