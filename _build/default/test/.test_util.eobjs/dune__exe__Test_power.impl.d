test/test_power.ml: Alcotest Capacitor List Supply Trace Wn_power
