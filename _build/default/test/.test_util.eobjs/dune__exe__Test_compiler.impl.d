test/test_compiler.ml: Alcotest Array Bytes Compile Int32 Layout List Printf QCheck QCheck_alcotest Wn_compiler Wn_isa Wn_lang Wn_machine Wn_mem Wn_power Wn_runtime Wn_util
