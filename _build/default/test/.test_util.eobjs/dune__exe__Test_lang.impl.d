test/test_lang.ml: Alcotest Ast Format Interp Lexer List Parser Printf Sema String Wn_lang
