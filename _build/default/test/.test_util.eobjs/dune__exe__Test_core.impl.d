test/test_core.ml: Alcotest List Suite Wn_area Wn_core Wn_workloads Workload
