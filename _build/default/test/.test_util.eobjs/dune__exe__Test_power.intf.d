test/test_power.mli:
