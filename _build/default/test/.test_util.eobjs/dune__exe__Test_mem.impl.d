test/test_mem.ml: Alcotest Bytes Memory QCheck QCheck_alcotest Wn_mem
