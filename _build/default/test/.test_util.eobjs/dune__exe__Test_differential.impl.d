test/test_differential.ml: Alcotest Array Compile Gen_wnc Layout List Printf QCheck QCheck_alcotest Wn_compiler Wn_lang Wn_machine Wn_mem Wn_power Wn_runtime
