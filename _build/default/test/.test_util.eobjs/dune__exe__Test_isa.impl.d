test/test_isa.ml: Alcotest Array Asm Cond Encoding Format Instr List QCheck QCheck_alcotest Reg Wn_isa
