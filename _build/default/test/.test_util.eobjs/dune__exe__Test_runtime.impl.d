test/test_runtime.ml: Alcotest Asm Capacitor Cond Instr List Machine Reg Supply Trace Wn_isa Wn_machine Wn_mem Wn_power Wn_runtime
