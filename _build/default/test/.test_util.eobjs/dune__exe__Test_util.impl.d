test/test_util.ml: Alcotest Array Fixed Fun Gen List QCheck QCheck_alcotest Rng Stats Subword Wn_util
