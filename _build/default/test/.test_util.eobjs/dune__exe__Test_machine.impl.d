test/test_machine.ml: Alcotest Asm Cond Instr List Machine Memo QCheck QCheck_alcotest Reg Wn_isa Wn_machine Wn_mem
