(* Tests for wn.compiler: layouts, the WN transformation passes, code
   generation and the end-to-end compile pipeline. *)

open Wn_compiler

(* ---------------- Layout ---------------- *)

let test_layout_row_major () =
  let l = Layout.row_major Wn_lang.Ast.U16 in
  let vals = [| 1; 2; 0xFFFF |] in
  let buf = Layout.encode l vals in
  Alcotest.(check int) "bytes" 6 (Bytes.length buf);
  Alcotest.(check bool) "round trip" true (Layout.decode l ~count:3 buf = vals)

let test_layout_subword_major_structure () =
  let l =
    Layout.subword_major ~elem_bits:32 ~signed:false ~bits:8 ~lane_bits:8
      ~count:4 ()
  in
  Alcotest.(check int) "planes" 4 (Layout.planes l);
  Alcotest.(check int) "lanes per word" 4 (Layout.lanes_per_word l);
  Alcotest.(check int) "words per plane" 1 (Layout.words_per_plane l ~count:4);
  Alcotest.(check int) "storage" 16 (Layout.storage_bytes l ~count:4);
  (* With 4 elements of 4 lanes, plane p's single word holds the
     elements' p-th bytes. *)
  let vals = [| 0x44332211; 0x88776655; 0xCCBBAA99; 0x00FFEEDD |] in
  let buf = Layout.encode l vals in
  let word p = Int32.to_int (Bytes.get_int32_le buf (4 * p)) land 0xFFFFFFFF in
  Alcotest.(check int) "LS plane word" 0xDD995511 (word 0);
  Alcotest.(check int) "MS plane word" 0x00CC8844 (word 3);
  Alcotest.(check bool) "decode inverts" true (Layout.decode l ~count:4 buf = vals)

let test_layout_provisioned_lanes () =
  let l =
    Layout.subword_major ~elem_bits:32 ~signed:false ~bits:8 ~lane_bits:16
      ~count:4 ()
  in
  Alcotest.(check int) "2 lanes per word" 2 (Layout.lanes_per_word l);
  Alcotest.(check int) "double storage" 32 (Layout.storage_bytes l ~count:4)

let test_layout_biased () =
  let l =
    Layout.subword_major ~biased:true ~elem_bits:32 ~signed:true ~bits:8
      ~lane_bits:16 ~count:2 ()
  in
  let minus_five = (-5) land 0xFFFFFFFF in
  let vals = [| minus_five; 7 |] in
  let buf = Layout.encode l vals in
  Alcotest.(check bool) "biased round trip" true
    (Layout.decode l ~count:2 buf = vals);
  Alcotest.(check bool) "signed decode" true
    (Layout.decode_signed l ~count:2 buf = [| -5; 7 |])

let prop_layout_roundtrip =
  QCheck.Test.make ~count:300 ~name:"subword-major encode/decode round-trips"
    QCheck.(
      triple
        (array_of_size (QCheck.Gen.return 8) (int_bound 0xFFFFFF))
        (oneofl [ (4, 4); (4, 8); (8, 8); (8, 16); (16, 16); (16, 32) ])
        bool)
    (fun (vals, (bits, lanes), biased) ->
      let l =
        Layout.subword_major ~biased ~elem_bits:32 ~signed:false ~bits
          ~lane_bits:lanes ~count:8 ()
      in
      Layout.decode l ~count:8 (Layout.encode l vals) = vals)

(* ---------------- helpers: compile and execute ---------------- *)

let execute ?(machine_config = Wn_machine.Machine.default_config) compiled inputs
    =
  let mem =
    Wn_mem.Memory.create ~size:(compiled.Compile.data_bytes + 64)
  in
  List.iter
    (fun (name, vals) ->
      let s = Compile.symbol compiled name in
      Wn_mem.Memory.blit_in mem ~addr:s.Compile.sym_addr
        (Layout.encode s.Compile.sym_layout vals))
    inputs;
  let machine =
    Wn_machine.Machine.create ~config:machine_config
      ~program:compiled.Compile.program ~mem ()
  in
  let o =
    Wn_runtime.Executor.run ~machine ~supply:(Wn_power.Supply.always_on ()) ()
  in
  Alcotest.(check bool) "completed" true o.Wn_runtime.Executor.completed;
  (machine, mem, o)

let read_array compiled mem name count =
  let s = Compile.symbol compiled name in
  Layout.decode_signed s.Compile.sym_layout ~count
    (Wn_mem.Memory.region mem ~addr:s.Compile.sym_addr
       ~len:(Layout.storage_bytes s.Compile.sym_layout ~count))

(* ---------------- codegen: arithmetic equivalence ---------------- *)

(* A kernel exercising the expression corners; verified against its
   OCaml transliteration. *)
let arith_src =
  {|
uint16 a[8];
int16 s[8];
uint32 x[8];

kernel arith() {
  for (i = 0; i < 8; i += 1) {
    int32 v = a[i];
    int32 w = s[i];
    int32 t = ((v * 3) + (w << 2)) - (v >> 1);
    int32 u = (t & 255) | (v ^ 99);
    if (u > 1000) {
      x[i] = u - 1000;
    } else {
      if (u == 0) { x[i] = 7; } else { x[i] = u + (0 - w); }
    }
  }
}
|}

let arith_reference a s =
  Array.init 8 (fun i ->
      let v = a.(i) in
      let w = s.(i) in
      let t = v * 3 + (w lsl 2) - (v asr 1) in
      let u = t land 255 lor (v lxor 99) in
      let r = if u > 1000 then u - 1000 else if u = 0 then 7 else u + (0 - w) in
      r land 0xFFFFFFFF)

let test_codegen_arith () =
  let compiled = Compile.compile_source ~options:Compile.precise arith_src in
  let a = [| 5; 1000; 0; 65535; 123; 42; 9; 31000 |] in
  let s = [| 3; -3; 0; -32768; 32767; -1; 100; -999 |] in
  let s_patterns = Array.map (fun v -> v land 0xFFFF) s in
  let _, mem, _ = execute compiled [ ("a", a); ("s", s_patterns) ] in
  let got = Array.map (fun v -> v land 0xFFFFFFFF) (read_array compiled mem "x" 8) in
  Alcotest.(check bool) "matches OCaml reference" true (got = arith_reference a s)

(* ---------------- SWP transform ---------------- *)

let swp_src bits =
  Printf.sprintf
    {|
#pragma asp input(a, %d)
#pragma asp output(x)
uint16 a[16];
uint16 f[16];
uint32 x[16];
kernel axpy() {
  anytime {
    for (i = 0; i < 16; i += 1) {
      x[i] = f[i] * a[i];
    }
  } commit { }
}
|}
    bits

let test_swp_exact_for_all_widths () =
  let rng = Wn_util.Rng.create 99 in
  let a = Array.init 16 (fun _ -> Wn_util.Rng.int rng 0x10000) in
  let f = Array.init 16 (fun _ -> Wn_util.Rng.int rng 0x8000) in
  let expect = Array.map2 (fun x y -> x * y land 0xFFFFFFFF) f a in
  List.iter
    (fun bits ->
      let compiled =
        Compile.compile_source ~options:Compile.anytime (swp_src bits)
      in
      let _, mem, _ = execute compiled [ ("a", a); ("f", f) ] in
      let got =
        Array.map (fun v -> v land 0xFFFFFFFF) (read_array compiled mem "x" 16)
      in
      if got <> expect then Alcotest.failf "SWP %d-bit diverges" bits)
    [ 1; 2; 3; 4; 8; 16 ]

let test_swp_emits_skims_and_stages () =
  let compiled = Compile.compile_source ~options:Compile.anytime (swp_src 4) in
  let skims = ref 0 and asp = ref 0 in
  Array.iter
    (fun i ->
      match i with
      | Wn_isa.Instr.Skm _ -> incr skims
      | Wn_isa.Instr.Mul_asp _ -> incr asp
      | _ -> ())
    compiled.Compile.program;
  (* 4 replicas: a MUL_ASP each; a skim point after every non-final one. *)
  Alcotest.(check int) "three skim points" 3 !skims;
  Alcotest.(check int) "four pipeline stages" 4 !asp;
  (* The precise build has none of either. *)
  let precise = Compile.compile_source ~options:Compile.precise (swp_src 4) in
  Array.iter
    (fun i ->
      match i with
      | Wn_isa.Instr.Skm _ | Wn_isa.Instr.Mul_asp _ ->
          Alcotest.fail "WN instruction in precise build"
      | _ -> ())
    precise.Compile.program

let test_swp_cold_statement_runs_once () =
  (* The exact running sum sharing the fissioned loop must execute only
     in the first replica — otherwise it double-counts. *)
  let src =
    {|
#pragma asp input(a, 8)
#pragma asp output(x)
uint16 a[8];
uint32 x[8];
uint32 sums[1];
kernel k() {
  int32 s = 0;
  anytime {
    for (i = 0; i < 8; i += 1) {
      s += a[i];
      x[i] = a[i] * a[i];
    }
  } commit {
    sums[0] = s;
  }
}
|}
  in
  let compiled = Compile.compile_source ~options:Compile.anytime src in
  let a = Array.init 8 (fun i -> (i + 1) * 111) in
  let _, mem, _ = execute compiled [ ("a", a) ] in
  let total = Array.fold_left ( + ) 0 a in
  Alcotest.(check int) "sum counted once" total
    (read_array compiled mem "sums" 1).(0);
  let sq = Array.map (fun v -> v * v land 0xFFFFFFFF) a in
  Alcotest.(check bool) "squares exact" true
    (Array.map (fun v -> v land 0xFFFFFFFF) (read_array compiled mem "x" 8) = sq)

(* ---------------- SWV transforms ---------------- *)

let swv_elementwise_src ~prov op =
  Printf.sprintf
    {|
#pragma asv input(a, 8%s)
#pragma asv input(b, 8%s)
#pragma asv output(x, 8%s)
uint32 a[16];
uint32 b[16];
uint32 x[16];
kernel ew() {
  anytime {
    for (i = 0; i < 16; i += 1) { x[i] = a[i] %s b[i]; }
  } commit { }
}
|}
    (if prov then ", provisioned" else "")
    (if prov then ", provisioned" else "")
    (if prov then ", provisioned" else "")
    op

let test_swv_elementwise_ops () =
  let rng = Wn_util.Rng.create 5 in
  let a = Array.init 16 (fun _ -> Wn_util.Rng.int rng 0x3FFFFFFF) in
  let b = Array.init 16 (fun _ -> Wn_util.Rng.int rng 0x3FFFFFFF) in
  let cases =
    [
      ("+", true, fun x y -> (x + y) land 0xFFFFFFFF);
      ("&", false, fun x y -> x land y);
      ("|", false, fun x y -> x lor y);
      ("^", false, fun x y -> x lxor y);
    ]
  in
  List.iter
    (fun (op, prov, f) ->
      let compiled =
        Compile.compile_source ~options:Compile.anytime
          (swv_elementwise_src ~prov op)
      in
      let _, mem, _ = execute compiled [ ("a", a); ("b", b) ] in
      let got =
        Array.map (fun v -> v land 0xFFFFFFFF) (read_array compiled mem "x" 16)
      in
      if got <> Array.map2 f a b then Alcotest.failf "SWV %s diverges" op)
    cases

let test_swv_unprovisioned_drops_carries () =
  let compiled =
    Compile.compile_source ~options:Compile.anytime
      (swv_elementwise_src ~prov:false "+")
  in
  (* 0x...FF + 1 carries across every byte boundary: the unprovisioned
     adder must lose them. *)
  let a = Array.make 16 0x00FF00FF and b = Array.make 16 0x01010101 in
  let _, mem, _ = execute compiled [ ("a", a); ("b", b) ] in
  let got = (read_array compiled mem "x" 16).(0) land 0xFFFFFFFF in
  Alcotest.(check int) "carries dropped" 0x01000100 got

let test_swv_reduction_banked () =
  let src =
    {|
#pragma asv input(a, 8, provisioned)
uint32 a[256];
uint32 o[1];
kernel red() {
  anytime {
    int32 s = 0;
    for (i = 0; i < 256; i += 1) { s += a[i]; }
  } commit { o[0] = s >> 8; }
}
|}
  in
  let compiled = Compile.compile_source ~options:Compile.anytime src in
  let rng = Wn_util.Rng.create 17 in
  let a = Array.init 256 (fun _ -> Wn_util.Rng.int rng 0x7FFFFF) in
  let _, mem, _ = execute compiled [ ("a", a) ] in
  Alcotest.(check int) "banked reduction exact"
    (Array.fold_left ( + ) 0 a asr 8)
    (read_array compiled mem "o" 1).(0)

let test_swv_windowed_reduction () =
  let src =
    {|
#pragma asv input(d, 8, provisioned)
int32 d[128];
int32 o[4];
kernel wred() {
  anytime {
    for (z = 0; z < 4; z += 1) {
      int32 zb = z * 32;
      int32 s = 0;
      for (i = 0; i < 32; i += 1) { s += d[zb + i]; }
      o[z] = s;
    }
  } commit { }
}
|}
  in
  let compiled = Compile.compile_source ~options:Compile.anytime src in
  (* Signed data: storage must be offset-binary. *)
  (match (Compile.symbol compiled "d").Compile.sym_layout with
  | Layout.Subword_major { biased = true; _ } -> ()
  | l -> Alcotest.failf "expected biased subword-major storage, got %a" Layout.pp l);
  let rng = Wn_util.Rng.create 23 in
  let d = Array.init 128 (fun _ -> Wn_util.Rng.int rng 2_000_001 - 1_000_000) in
  let patterns = Array.map (fun v -> v land 0xFFFFFFFF) d in
  let _, mem, _ = execute compiled [ ("d", patterns) ] in
  let expect =
    Array.init 4 (fun z ->
        let s = ref 0 in
        for i = 0 to 31 do
          s := !s + d.((z * 32) + i)
        done;
        !s)
  in
  Alcotest.(check bool) "windowed signed sums exact" true
    (read_array compiled mem "o" 4 = expect)

(* ---------------- anytime square root (footnote 3) ---------------- *)

let sqrt_src bits =
  Printf.sprintf
    {|
#pragma asp output(o, %d)
uint32 a[8];
uint16 o[8];
kernel roots() {
  anytime {
    for (i = 0; i < 8; i += 1) {
      o[i] = sqrt(a[i]);
    }
  } commit { }
}
|}
    bits

let test_sqrt_schema () =
  let compiled = Compile.compile_source ~options:Compile.anytime (sqrt_src 4) in
  let stages = ref [] and fulls = ref 0 and skims = ref 0 in
  Array.iter
    (fun i ->
      match i with
      | Wn_isa.Instr.Sqrt_asp { bits; _ } -> stages := bits :: !stages
      | Wn_isa.Instr.Sqrt _ -> incr fulls
      | Wn_isa.Instr.Skm _ -> incr skims
      | _ -> ())
    compiled.Compile.program;
  (* 4-bit stages: 4, 8, 12 then the exact 16-bit root; a skim point
     between every pair of replicas. *)
  Alcotest.(check (list int)) "stage widths" [ 4; 8; 12 ] (List.rev !stages);
  Alcotest.(check int) "one exact root" 1 !fulls;
  Alcotest.(check int) "three skim points" 3 !skims;
  (* and it converges to the precise result *)
  let rng = Wn_util.Rng.create 8 in
  let a = Array.init 8 (fun _ -> Wn_util.Rng.int rng 0x3FFFFFFF) in
  let _, mem, _ = execute compiled [ ("a", a) ] in
  let expect =
    Array.map
      (fun n ->
        let r = ref 0 in
        for b = 15 downto 0 do
          let c = !r lor (1 lsl b) in
          if c * c <= n then r := c
        done;
        !r)
      a
  in
  Alcotest.(check bool) "roots exact" true (read_array compiled mem "o" 8 = expect)

let test_sqrt_schema_rejects_accumulation () =
  let src =
    {|
#pragma asp output(o, 4)
uint32 a[8];
uint32 o[8];
kernel k() {
  anytime {
    for (i = 0; i < 8; i += 1) {
      o[i] += sqrt(a[i]);
    }
  } commit { }
}
|}
  in
  match Compile.compile_source ~options:Compile.anytime src with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "accumulating sqrt region accepted"

(* ---------------- vectorized loads (Figure 12) ---------------- *)

let vec_src =
  {|
#pragma asp input(b, 8)
#pragma asp output(x)
#pragma asv input(b, 8)
uint16 a[64];
uint16 b[64];
uint32 x[64];
kernel dotish() {
  anytime {
    for (i = 0; i < 64; i += 1) {
      int32 acc = 0;
      int32 row = 0;
      for (k = 0; k < 64; k += 1) {
        acc += a[k] * b[row + k];
      }
      x[i] = acc;
    }
  } commit { }
}
|}

let test_vector_loads_equivalent_and_faster () =
  let plain = Compile.compile_source ~options:Compile.anytime vec_src in
  let vec =
    Compile.compile_source ~options:Compile.anytime_vector_loads vec_src
  in
  let rng = Wn_util.Rng.create 31 in
  let a = Array.init 64 (fun _ -> Wn_util.Rng.int rng 4096) in
  let b = Array.init 64 (fun _ -> Wn_util.Rng.int rng 4096) in
  let m1, mem1, _ = execute plain [ ("a", a); ("b", b) ] in
  let m2, mem2, _ = execute vec [ ("a", a); ("b", b) ] in
  Alcotest.(check bool) "same outputs" true
    (read_array plain mem1 "x" 64 = read_array vec mem2 "x" 64);
  let c1 = Wn_machine.Machine.cycles_executed m1 in
  let c2 = Wn_machine.Machine.cycles_executed m2 in
  if c2 >= c1 then
    Alcotest.failf "vectorized loads not faster: %d vs %d" c2 c1

(* ---------------- error reporting ---------------- *)

let expect_compile_error ?(options = Compile.anytime) src =
  match Compile.compile_source ~options src with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.failf "compile accepted:\n%s" src

let test_transform_errors () =
  (* anytime block with no loop *)
  expect_compile_error
    "#pragma asp input(a, 8)\nuint16 a[4];\nuint32 x[1];\nkernel k() { anytime { x[0] = a[0] * a[0]; } commit { } }";
  (* commit writing pipelined state *)
  expect_compile_error
    {|
#pragma asp input(a, 8)
#pragma asp output(x)
uint16 a[4];
uint32 x[4];
kernel k() {
  anytime {
    for (i = 0; i < 4; i += 1) { x[i] = a[i] * a[i]; }
  } commit { x[0] = 0; }
}
|};
  (* SWV count not divisible into lanes *)
  expect_compile_error
    "#pragma asv input(a, 8, provisioned)\n#pragma asv output(x, 8, provisioned)\nuint32 a[3];\nuint32 x[3];\nkernel k() { anytime { for (i = 0; i < 3; i += 1) { x[i] = a[i] + a[i]; } } commit { } }";
  (* unprovisioned reduction *)
  expect_compile_error
    "#pragma asv input(a, 8)\nuint32 a[8];\nuint32 o[1];\nkernel k() { anytime { int32 s = 0; for (i = 0; i < 8; i += 1) { s += a[i]; } } commit { o[0] = s; } }";
  (* mixed subword sizes in one block *)
  expect_compile_error
    {|
#pragma asp input(a, 8)
#pragma asp input(b, 4)
#pragma asp output(x)
uint16 a[4];
uint16 b[4];
uint32 x[4];
kernel k() {
  anytime {
    for (i = 0; i < 4; i += 1) { x[i] = a[i] * b[i]; }
  } commit { }
}
|}

let test_codegen_errors () =
  (* register exhaustion: too many live locals *)
  expect_compile_error ~options:Compile.precise
    {|
kernel k() {
  int32 a = 1; int32 b = 2; int32 c = 3; int32 d = 4;
  int32 e = 5; int32 f = 6; int32 g = 7; int32 h = 8;
  a = b + c + d + e + f + g + h;
}
|}

let test_compile_metadata () =
  let compiled = Compile.compile_source ~options:Compile.anytime (swp_src 8) in
  Alcotest.(check bool) "code size positive" true
    (Compile.code_size_bytes compiled > 0);
  Alcotest.(check bool) "data segment covers arrays" true
    (compiled.Compile.data_bytes >= (16 * 2) + (16 * 2) + (16 * 4));
  (* Anytime code is larger than precise but within the paper's "small
     increase" narrative. *)
  let precise = Compile.compile_source ~options:Compile.precise (swp_src 8) in
  let ratio =
    float_of_int (Compile.code_size_bytes compiled)
    /. float_of_int (Compile.code_size_bytes precise)
  in
  if ratio < 1.0 || ratio > 4.0 then
    Alcotest.failf "implausible code growth %.2f" ratio;
  (* unknown symbol *)
  match Compile.symbol compiled "nope" with
  | exception Compile.Error _ -> ()
  | _ -> Alcotest.fail "unknown symbol accepted"

let () =
  Alcotest.run "wn.compiler"
    [
      ( "layout",
        [
          Alcotest.test_case "row major" `Quick test_layout_row_major;
          Alcotest.test_case "subword major" `Quick test_layout_subword_major_structure;
          Alcotest.test_case "provisioned lanes" `Quick test_layout_provisioned_lanes;
          Alcotest.test_case "biased" `Quick test_layout_biased;
          QCheck_alcotest.to_alcotest prop_layout_roundtrip;
        ] );
      ( "codegen",
        [
          Alcotest.test_case "arithmetic reference" `Quick test_codegen_arith;
          Alcotest.test_case "errors" `Quick test_codegen_errors;
        ] );
      ( "swp",
        [
          Alcotest.test_case "exact for all widths" `Quick test_swp_exact_for_all_widths;
          Alcotest.test_case "stages and skims" `Quick test_swp_emits_skims_and_stages;
          Alcotest.test_case "cold statements once" `Quick test_swp_cold_statement_runs_once;
        ] );
      ( "swv",
        [
          Alcotest.test_case "elementwise ops" `Quick test_swv_elementwise_ops;
          Alcotest.test_case "unprovisioned carries" `Quick
            test_swv_unprovisioned_drops_carries;
          Alcotest.test_case "banked reduction" `Quick test_swv_reduction_banked;
          Alcotest.test_case "windowed reduction" `Quick test_swv_windowed_reduction;
        ] );
      ( "anytime sqrt",
        [
          Alcotest.test_case "schema structure" `Quick test_sqrt_schema;
          Alcotest.test_case "rejects accumulation" `Quick
            test_sqrt_schema_rejects_accumulation;
        ] );
      ( "vector loads",
        [ Alcotest.test_case "equivalent and faster" `Quick
            test_vector_loads_equivalent_and_faster ] );
      ( "driver",
        [
          Alcotest.test_case "transform errors" `Quick test_transform_errors;
          Alcotest.test_case "metadata" `Quick test_compile_metadata;
        ] );
    ]
