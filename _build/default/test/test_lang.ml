(* Tests for wn.lang: lexer, parser and semantic analysis. *)

open Wn_lang

(* ---------------- Lexer ---------------- *)

let toks src = List.map (fun l -> l.Lexer.tok) (Lexer.tokenize src)

let test_lexer_tokens () =
  Alcotest.(check bool) "symbols" true
    (toks "+ += - -= * & | ^ ~ << >> == != < <= > >= = ; , # ( ) { } [ ]"
    = Lexer.
        [
          PLUS; PLUS_ASSIGN; MINUS; MINUS_ASSIGN; STAR; AMP; PIPE; CARET;
          TILDE; SHL; SHR; EQ; NE; LT; LE; GT; GE; ASSIGN; SEMI; COMMA; HASH;
          LPAREN; RPAREN; LBRACE; RBRACE; LBRACKET; RBRACKET; EOF;
        ]);
  Alcotest.(check bool) "keywords and idents" true
    (toks "kernel for if else anytime commit uint16 int32 foo x1"
    = Lexer.
        [
          KERNEL; FOR; IF; ELSE; ANYTIME; COMMIT; TYPE Ast.U16; TYPE Ast.I32;
          IDENT "foo"; IDENT "x1"; EOF;
        ]);
  Alcotest.(check bool) "numbers" true
    (toks "0 42 65535" = Lexer.[ INT 0; INT 42; INT 65535; EOF ])

let test_lexer_comments () =
  Alcotest.(check bool) "line comment" true (toks "1 // two\n3" = Lexer.[ INT 1; INT 3; EOF ]);
  Alcotest.(check bool) "block comment" true
    (toks "1 /* 2\n2 */ 3" = Lexer.[ INT 1; INT 3; EOF ])

let test_lexer_errors () =
  (match Lexer.tokenize "a $ b" with
  | exception Lexer.Error msg ->
      if not (String.length msg > 0) then Alcotest.fail "empty message"
  | _ -> Alcotest.fail "illegal character accepted");
  match Lexer.tokenize "/* unterminated" with
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.fail "unterminated comment accepted"

(* ---------------- Parser ---------------- *)

let test_parse_precedence () =
  let open Ast in
  (* * binds tighter than +, + tighter than <<, << tighter than &. *)
  Alcotest.(check bool) "a + b * c" true
    (Parser.parse_expr "a + b * c"
    = Binop (Add, Var "a", Binop (Mul, Var "b", Var "c")));
  Alcotest.(check bool) "a << 2 + b parses shift of sum? no: + first" true
    (Parser.parse_expr "a << 2 & b"
    = Binop (And, Binop (Shl, Var "a", Int 2), Var "b"));
  Alcotest.(check bool) "unary minus" true
    (Parser.parse_expr "-x * y" = Binop (Mul, Neg (Var "x"), Var "y"));
  Alcotest.(check bool) "parens override" true
    (Parser.parse_expr "(a + b) * c"
    = Binop (Mul, Binop (Add, Var "a", Var "b"), Var "c"));
  Alcotest.(check bool) "indexing" true
    (Parser.parse_expr "arr[i + 1]" = Load ("arr", Binop (Add, Var "i", Int 1)))

let test_parse_sqrt () =
  let open Ast in
  Alcotest.(check bool) "sqrt call" true
    (Parser.parse_expr "sqrt(a + 1)" = Sqrt (Binop (Add, Var "a", Int 1)));
  (* 'sqrt' stays a normal identifier when not applied *)
  Alcotest.(check bool) "sqrt as a variable" true
    (Parser.parse_expr "sqrt + 1" = Binop (Add, Var "sqrt", Int 1))

let test_interp_sqrt () =
  let p =
    Parser.parse
      "uint32 a[2];
uint16 o[2];
kernel k() { o[0] = sqrt(a[0]); o[1] = sqrt(a[1]); }"
  in
  let out =
    List.assoc "o" (Interp.interpret p ~inputs:[ ("a", [| 170; 1000000 |]) ])
  in
  Alcotest.(check bool) "floor roots" true (out = [| 13; 1000 |])

let minimal_kernel body =
  Printf.sprintf "uint16 a[8];\nuint32 x[8];\nkernel k() {\n%s\n}" body

let test_parse_program () =
  let p =
    Parser.parse
      {|
#pragma asp input(a, 8)
#pragma asp output(x)
#pragma asv input(b, 4, provisioned)

uint16 a[16];
uint32 b[8];
uint32 x[16];

kernel demo() {
  int32 acc = 0;
  for (i = 0; i < 16; i += 2) {
    acc += a[i] * a[i];
    if (acc > 100) {
      x[i] = acc;
    } else {
      x[i] = 0;
    }
  }
  anytime {
    for (j = 0; j < 8; j += 1) {
      x[j] = x[j] + b[j];
    }
  } commit {
    x[0] = acc;
  }
}
|}
  in
  Alcotest.(check string) "kernel name" "demo" p.Ast.kernel_name;
  Alcotest.(check int) "three globals" 3 (List.length p.Ast.globals);
  Alcotest.(check int) "three pragmas" 3 (List.length p.Ast.pragmas);
  let prov =
    List.find (fun pr -> pr.Ast.prag_array = "b") p.Ast.pragmas
  in
  Alcotest.(check bool) "provisioned flag" true prov.Ast.prag_provisioned;
  Alcotest.(check (option int)) "bits" (Some 4) prov.Ast.prag_bits;
  match p.Ast.body with
  | [ Ast.Decl _; Ast.For f; Ast.Anytime _ ] ->
      Alcotest.(check int) "step" 2 f.Ast.step
  | _ -> Alcotest.fail "unexpected body shape"

let expect_parse_error src =
  match Parser.parse src with
  | exception Parser.Error _ -> ()
  | exception Lexer.Error _ -> ()
  | _ -> Alcotest.failf "accepted:\n%s" src

let test_parse_errors () =
  expect_parse_error (minimal_kernel "x[0] = ;");
  expect_parse_error (minimal_kernel "for (i = 0; j < 4; i += 1) { }");
  expect_parse_error (minimal_kernel "for (i = 0; i < 4; i += 0) { }");
  expect_parse_error (minimal_kernel "int16 y = 0;");
  expect_parse_error (minimal_kernel "anytime { } ");
  (* missing commit *)
  expect_parse_error "kernel k() { } trailing"

let test_pp_parse_roundtrip () =
  let src =
    minimal_kernel
      "int32 s = 0;\nfor (i = 0; i < 8; i += 1) { s += a[i] * a[i]; x[i] = s >> 2; }"
  in
  let p = Parser.parse src in
  let printed = Format.asprintf "%a" Ast.pp_program p in
  let p2 = Parser.parse printed in
  Alcotest.(check bool) "stable under pretty-printing" true
    (p.Ast.body = p2.Ast.body && p.Ast.globals = p2.Ast.globals)

(* ---------------- Sema ---------------- *)

let analyze src = Sema.analyze (Parser.parse src)

let expect_sema_error src =
  match analyze src with
  | exception Sema.Error _ -> ()
  | _ -> Alcotest.failf "sema accepted:\n%s" src

let test_sema_accepts_valid () =
  let info =
    analyze
      {|
#pragma asp input(a, 8)
#pragma asp output(x)
uint16 a[8];
uint32 x[8];
kernel k() {
  anytime {
    for (i = 0; i < 8; i += 1) { x[i] = a[i] * a[i]; }
  } commit { }
}
|}
  in
  Alcotest.(check (option int)) "asp bits" (Some 8) (Sema.asp_input info "a");
  Alcotest.(check bool) "output recorded" true
    (List.mem "x" info.Sema.asp_outputs)

let test_sema_rejections () =
  (* duplicate global *)
  expect_sema_error "uint16 a[4];\nuint16 a[4];\nkernel k() { }";
  (* pragma on unknown array *)
  expect_sema_error "#pragma asp input(zz, 8)\nuint16 a[4];\nkernel k() { }";
  (* asp without bits *)
  expect_sema_error "#pragma asp input(a)\nuint16 a[4];\nkernel k() { }";
  (* asp on non-16-bit array *)
  expect_sema_error "#pragma asp input(a, 8)\nuint32 a[4];\nkernel k() { }";
  (* asv with bad size *)
  expect_sema_error "#pragma asv input(a, 5)\nuint32 a[4];\nkernel k() { }";
  (* undeclared variable *)
  expect_sema_error "kernel k() { y = 1; }";
  (* array used without index *)
  expect_sema_error "uint16 a[4];\nkernel k() { int32 z = a; }";
  (* comparison outside condition *)
  expect_sema_error "kernel k() { int32 z = 1 < 2; }";
  (* non-constant shift *)
  expect_sema_error "kernel k() { int32 z = 0; int32 w = 1 << z; }";
  (* nested anytime *)
  expect_sema_error
    "uint16 a[4];\nkernel k() { anytime { anytime { } commit { } } commit { } }";
  (* local shadows global *)
  expect_sema_error "uint16 a[4];\nkernel k() { int32 a = 0; }";
  (* if condition must be a comparison *)
  expect_sema_error "kernel k() { int32 z = 1; if (z) { } }"

let test_sema_commit_sees_body_locals () =
  (* The accumulator declared in the anytime body is visible in commit. *)
  let _ =
    analyze
      {|
#pragma asv input(a, 8, provisioned)
uint32 a[8];
uint32 o[1];
kernel k() {
  anytime {
    int32 s = 0;
    for (i = 0; i < 8; i += 1) { s += a[i]; }
  } commit { o[0] = s >> 3; }
}
|}
  in
  (* ... but not outside the anytime statement. *)
  expect_sema_error
    {|
uint32 a[8];
uint32 o[1];
kernel k() {
  anytime {
    int32 s = 0;
  } commit { }
  o[0] = s;
}
|}

let () =
  Alcotest.run "wn.lang"
    [
      ( "lexer",
        [
          Alcotest.test_case "tokens" `Quick test_lexer_tokens;
          Alcotest.test_case "comments" `Quick test_lexer_comments;
          Alcotest.test_case "errors" `Quick test_lexer_errors;
        ] );
      ( "parser",
        [
          Alcotest.test_case "precedence" `Quick test_parse_precedence;
          Alcotest.test_case "program" `Quick test_parse_program;
          Alcotest.test_case "errors" `Quick test_parse_errors;
          Alcotest.test_case "pp round trip" `Quick test_pp_parse_roundtrip;
          Alcotest.test_case "sqrt" `Quick test_parse_sqrt;
          Alcotest.test_case "interp sqrt" `Quick test_interp_sqrt;
        ] );
      ( "sema",
        [
          Alcotest.test_case "accepts valid" `Quick test_sema_accepts_valid;
          Alcotest.test_case "rejections" `Quick test_sema_rejections;
          Alcotest.test_case "commit scoping" `Quick test_sema_commit_sees_body_locals;
        ] );
    ]
