(** Table I: the benchmark inventory with measured runtime and the
    dynamic share of WN-amenable instructions. *)

open Wn_workloads

type row = {
  name : string;
  area : string;
  description : string;
  technique : Workload.technique;
  insn_pct : float;
      (** dynamic % of WN-extension instructions in the anytime build *)
  runtime_ms : float;  (** precise build at the paper's 24 MHz clock *)
  code_bytes_precise : int;
  code_bytes_anytime : int;
}

val rows : ?seed:int -> ?bits:int -> Workload.scale -> row list

val pp : Format.formatter -> row list -> unit
