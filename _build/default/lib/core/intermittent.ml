open Wn_workloads
module Executor = Wn_runtime.Executor

type system = Clank | Nvp

let system_name = function Clank -> "checkpoint-volatile" | Nvp -> "nvp"

type result = {
  workload : string;
  bits : int;
  system : system;
  speedup : float;
  nrmse : float;
  skim_rate : float;
  outages_per_task : float;
  baseline_reexec : float;
  samples : int;
}

type setup = {
  n_traces : int;
  invocations : int;
  samples_per_run : int;
  trace_seed : int;
  input_seed : int;
  clank_config : Executor.clank_config;
  cycle_energy : float;
}

let default_setup =
  {
    n_traces = 3;
    invocations = 1;
    samples_per_run = 2;
    trace_seed = 2024;
    input_seed = 7;
    clank_config = Executor.default_clank;
    cycle_energy = Wn_power.Supply.default_cycle_energy;
  }

let paper_setup =
  { default_setup with n_traces = 9; invocations = 3; samples_per_run = 3 }

let name_hash s = String.fold_left (fun acc c -> (acc * 31) + Char.code c) 0 s

type task_measure = {
  wall : int;
  out : float array;
  skimmed : bool;
  outages : int;
  reexec_frac : float;
  ok : bool;
}

(* Process a stream of pre-generated samples on one supply; the
   capacitor state carries over between samples, as on a real device. *)
let run_stream ~cycle_energy build policy trace samples =
  let supply =
    Wn_power.Supply.create ~cycle_energy ~trace
      ~capacitor:(Wn_power.Capacitor.create ()) ()
  in
  let machine = Runner.machine build in
  List.map
    (fun inputs ->
      Runner.load_sample build machine inputs;
      let o = Executor.run ~policy ~machine ~supply () in
      {
        wall = o.Executor.wall_cycles;
        out = Runner.output build machine;
        skimmed = o.Executor.skimmed;
        outages = o.Executor.outage_count;
        reexec_frac =
          (if o.Executor.retired = 0 then 0.0
           else
             float_of_int o.Executor.reexecuted_instructions
             /. float_of_int o.Executor.retired);
        ok = o.Executor.completed;
      })
    samples

let run ?(setup = default_setup) ~system ~bits (w : Workload.t) =
  let cfg = { Workload.bits; provisioned = true } in
  let anytime = Runner.build w cfg in
  let precise = Runner.build ~precise:true w cfg in
  let policy =
    match system with
    | Clank -> Executor.Clank setup.clank_config
    | Nvp -> Executor.Nvp Executor.default_nvp
  in
  let traces =
    Wn_power.Trace.paper_suite ~count:setup.n_traces ~seed:setup.trace_seed
      ~duration_s:60.0 ()
  in
  let speedups = ref [] and errors = ref [] and reexecs = ref [] in
  let skims = ref 0 and outage_total = ref 0 and total = ref 0 in
  List.iteri
    (fun ti trace ->
      for inv = 0 to setup.invocations - 1 do
        let rng =
          Wn_util.Rng.create
            (setup.input_seed + name_hash w.Workload.name + (7919 * inv)
           + (104729 * ti))
        in
        let samples =
          List.init setup.samples_per_run (fun _ -> w.Workload.fresh_inputs rng)
        in
        let base = run_stream ~cycle_energy:setup.cycle_energy precise policy trace samples in
        let wn = run_stream ~cycle_energy:setup.cycle_energy anytime policy trace samples in
        List.iteri
          (fun i inputs ->
            let b = List.nth base i and a = List.nth wn i in
            if b.ok && a.ok then begin
              let golden = w.Workload.golden inputs in
              speedups :=
                (float_of_int b.wall /. float_of_int a.wall) :: !speedups;
              errors := Runner.nrmse_pct ~reference:golden a.out :: !errors;
              reexecs := b.reexec_frac :: !reexecs;
              if a.skimmed then incr skims;
              outage_total := !outage_total + a.outages;
              incr total
            end)
          samples
      done)
    traces;
  if !total = 0 then failwith "Intermittent.run: no sample completed";
  {
    workload = w.Workload.name;
    bits;
    system;
    speedup = Wn_util.Stats.median (Array.of_list !speedups);
    nrmse = Wn_util.Stats.median (Array.of_list !errors);
    skim_rate = float_of_int !skims /. float_of_int !total;
    outages_per_task = float_of_int !outage_total /. float_of_int !total;
    baseline_reexec = Wn_util.Stats.mean (Array.of_list !reexecs);
    samples = !total;
  }

let pp ppf r =
  Format.fprintf ppf
    "%-10s %d-bit on %-18s: speedup %.2fx, NRMSE %.3f%%, skim rate %.0f%%, \
     %.1f outages/task (%d samples)"
    r.workload r.bits (system_name r.system) r.speedup r.nrmse
    (100.0 *. r.skim_rate) r.outages_per_task r.samples
