open Wn_workloads

type var_row = {
  dataset : int;
  exact : float;
  anytime : float;
  sampled : float option;
}

type var_result = {
  rows : var_row list;
  anytime_mean_err_pct : float;
  cost_ratio : float;
  keep_every : int;
}

(* Measured cycle ratio between the precise task and the anytime task's
   earliest output, on representative inputs. *)
let measured_cost_ratio ~seed ~bits w =
  let r = Earliest.earliest ~seed ~bits w in
  float_of_int r.Earliest.baseline_cycles /. float_of_int r.Earliest.active_cycles

let var_study ?(datasets = 24) ?(seed = 5) ?(bits = 4) scale =
  let w = Suite.find scale "Var" in
  let cost_ratio = measured_cost_ratio ~seed ~bits w in
  let keep_every = max 1 (int_of_float (Float.ceil (cost_ratio -. 0.01))) in
  let cfg = { Workload.bits; provisioned = true } in
  let anytime = Runner.build w cfg in
  let machine = Runner.machine anytime in
  let rng = Wn_util.Rng.create (seed + 1) in
  let errs = ref [] in
  let rows =
    List.init datasets (fun d ->
        let inputs = w.Workload.fresh_inputs rng in
        (* One scalar per data set, as in Figure 17: the mean of the
           window variances. *)
        let exact = Wn_util.Stats.mean (w.Workload.golden inputs) in
        Runner.load_sample anytime machine inputs;
        let o = Runner.run_always_on ~halt_at_skim:true anytime machine in
        if not o.Wn_runtime.Executor.completed then
          failwith "Sampling.var_study: task did not complete";
        let wn = Wn_util.Stats.mean (Runner.output anytime machine) in
        if exact > 0.0 then
          errs := (abs_float (wn -. exact) /. exact *. 100.0) :: !errs;
        {
          dataset = d;
          exact;
          anytime = wn;
          sampled = (if d mod keep_every = 0 then Some exact else None);
        })
  in
  {
    rows;
    anytime_mean_err_pct = Wn_util.Stats.mean (Array.of_list !errs);
    cost_ratio;
    keep_every;
  }

type glucose_row = {
  minutes : int;
  clock : string;
  clinical : float;
  sampled : float option;
  anytime : float;
}

type glucose_result = {
  readings : glucose_row list;
  total_dips : int;
  sampled_detected : int;
  anytime_detected : int;
  anytime_mean_err_pct : float;
  cost_ratio : float;
}

let glucose_study ?(seed = 5) ?(bits = 4) scale =
  (* The per-reading processing budget comes from the Var kernel — the
     same reduction shape a glucose monitor's feature extraction has. *)
  let cost_ratio = measured_cost_ratio ~seed ~bits (Suite.find scale "Var") in
  let keep_every = max 1 (int_of_float (Float.ceil (cost_ratio -. 0.01))) in
  let rng = Wn_util.Rng.create seed in
  let series = Glucose.clinical rng in
  let readings =
    Array.to_list series
    |> List.mapi (fun i (r : Glucose.reading) ->
           {
             minutes = r.Glucose.minutes;
             clock = Glucose.clock_of_minutes r.Glucose.minutes;
             clinical = r.Glucose.mgdl;
             sampled =
               (if i mod keep_every = 0 then Some r.Glucose.mgdl else None);
             anytime = Glucose.quantize_msb ~bits r.Glucose.mgdl;
           })
  in
  let dips = Glucose.critical_indices series in
  let detected value_of =
    List.length
      (List.filter
         (fun i ->
           match value_of (List.nth readings i) with
           | Some v -> v < Glucose.critical_threshold
           | None -> false)
         dips)
  in
  let errs =
    List.filter_map
      (fun r ->
        if r.clinical > 0.0 then
          Some (abs_float (r.anytime -. r.clinical) /. r.clinical *. 100.0)
        else None)
      readings
  in
  {
    readings;
    total_dips = List.length dips;
    sampled_detected = detected (fun r -> r.sampled);
    anytime_detected = detected (fun r -> Some r.anytime);
    anytime_mean_err_pct = Wn_util.Stats.mean (Array.of_list errs);
    cost_ratio;
  }
