(** "Earliest available output" studies — the memoization / zero-skip
    case study (Figure 13) and the small-subword case study (Figures 15
    and 16): the task is interrupted the instant its first skim point is
    latched and the committed approximate output is taken as-is. *)

open Wn_workloads

type run = {
  active_cycles : int;
  nrmse : float;  (** percent, vs the precise output *)
  out : float array;  (** the committed output (for image dumps) *)
  reference : float array;
  baseline_cycles : int;  (** plain precise build on the same inputs *)
  memo_hits : int;  (** 0 when no table is configured *)
  memo_misses : int;
}

val earliest :
  ?memo_entries:int ->
  ?zero_skip:bool ->
  ?seed:int ->
  ?vector_loads:bool ->
  bits:int ->
  Workload.t ->
  run
(** Run the anytime build to its first skim point and commit.
    [vector_loads] builds the Figure 12 variant. *)

val precise_with :
  ?memo_entries:int -> ?zero_skip:bool -> ?seed:int -> Workload.t -> run
(** Run the precise build to completion (optionally with the memo table
    and zero skipping, for Figure 13's precise bars); [nrmse] is 0. *)

val speedup : run -> float
(** [baseline_cycles / active_cycles]. *)
