open Wn_workloads

type row = {
  name : string;
  area : string;
  description : string;
  technique : Workload.technique;
  insn_pct : float;
  runtime_ms : float;
  code_bytes_precise : int;
  code_bytes_anytime : int;
}

let row ?(seed = 3) ?(bits = 8) (w : Workload.t) =
  let cfg = { Workload.bits; provisioned = true } in
  let rng = Wn_util.Rng.create seed in
  let inputs = w.Workload.fresh_inputs rng in
  let anytime = Runner.build w cfg in
  let _, baseline_cycles = Runner.precise_reference anytime inputs in
  let machine = Runner.machine anytime in
  Runner.load_sample anytime machine inputs;
  let o = Runner.run_always_on anytime machine in
  if not o.Wn_runtime.Executor.completed then
    failwith "Table1: anytime build did not complete";
  let wn = Wn_machine.Machine.wn_instructions machine in
  let total = Wn_machine.Machine.instructions_retired machine in
  let precise = Runner.build ~precise:true w cfg in
  {
    name = w.Workload.name;
    area = w.Workload.area;
    description = w.Workload.description;
    technique = w.Workload.technique;
    insn_pct = 100.0 *. float_of_int wn /. float_of_int total;
    runtime_ms =
      float_of_int baseline_cycles /. Wn_power.Supply.default_clock_hz *. 1000.0;
    code_bytes_precise =
      Wn_compiler.Compile.code_size_bytes precise.Runner.compiled;
    code_bytes_anytime =
      Wn_compiler.Compile.code_size_bytes anytime.Runner.compiled;
  }

let rows ?seed ?bits scale = List.map (row ?seed ?bits) (Suite.all scale)

let pp ppf rows =
  Format.fprintf ppf "%-10s %-22s %-6s %8s %10s %8s %8s@." "Benchmark" "Area"
    "WN" "Insn %" "Runtime" "code(P)" "code(WN)";
  List.iter
    (fun r ->
      Format.fprintf ppf "%-10s %-22s %-6s %7.2f%% %8.2fms %7dB %7dB@." r.name
        r.area
        (match r.technique with Workload.Swp -> "SWP" | Workload.Swv -> "SWV")
        r.insn_pct r.runtime_ms r.code_bytes_precise r.code_bytes_anytime)
    rows
