(** Anytime processing versus input sampling (Figures 3 and 17).

    When a precise implementation cannot keep up with the input rate,
    the conventional answer is to drop samples; WN instead produces an
    approximate output for *every* sample.  Both studies ground the
    energy argument in measured cycle counts: the period at which the
    sampled implementation can keep up is the measured ratio of the
    precise task's cycles to the anytime task's earliest-output
    cycles. *)

open Wn_workloads

(** {2 Figure 17: Var over a stream of data sets} *)

type var_row = {
  dataset : int;
  exact : float;  (** true variance *)
  anytime : float;  (** WN 4-bit earliest output *)
  sampled : float option;  (** precise, only when the budget allows *)
}

type var_result = {
  rows : var_row list;
  anytime_mean_err_pct : float;
      (** mean |anytime - exact| / exact, percent (the paper reports
          1.53%) *)
  cost_ratio : float;  (** precise cycles / anytime-earliest cycles *)
  keep_every : int;  (** sampling period implied by the cost ratio *)
}

val var_study :
  ?datasets:int -> ?seed:int -> ?bits:int -> Workload.scale -> var_result
(** Default: 24 data sets (as in Figure 17), 4-bit subwords. *)

(** {2 Figure 3: blood-glucose monitoring} *)

type glucose_row = {
  minutes : int;
  clock : string;
  clinical : float;
  sampled : float option;  (** reading produced under input sampling *)
  anytime : float;  (** reading produced by 4-bit anytime processing *)
}

type glucose_result = {
  readings : glucose_row list;
  total_dips : int;  (** critical events in the clinical series *)
  sampled_detected : int;
  anytime_detected : int;
  anytime_mean_err_pct : float;
  cost_ratio : float;
}

val glucose_study : ?seed:int -> ?bits:int -> Workload.scale -> glucose_result
