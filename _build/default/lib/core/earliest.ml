open Wn_workloads

type run = {
  active_cycles : int;
  nrmse : float;
  out : float array;
  reference : float array;
  baseline_cycles : int;
  memo_hits : int;
  memo_misses : int;
}

let machine_config ~memo_entries ~zero_skip =
  { Wn_machine.Machine.memo_entries; zero_skip }

let prepare ?(seed = 11) (w : Workload.t) bits_for_cfg =
  let cfg = { Workload.bits = bits_for_cfg; provisioned = true } in
  let rng = Wn_util.Rng.create seed in
  let inputs = w.Workload.fresh_inputs rng in
  (cfg, inputs)

let earliest ?memo_entries ?(zero_skip = false) ?seed ?(vector_loads = false)
    ~bits (w : Workload.t) =
  let cfg, inputs = prepare ?seed w bits in
  let b = Runner.build ~vector_loads w cfg in
  let reference, baseline_cycles = Runner.precise_reference b inputs in
  let machine =
    Runner.machine ~machine_config:(machine_config ~memo_entries ~zero_skip) b
  in
  Runner.load_sample b machine inputs;
  let outcome = Runner.run_always_on ~halt_at_skim:true b machine in
  if not outcome.Wn_runtime.Executor.completed then
    failwith "Earliest.earliest: task did not complete";
  let out = Runner.output b machine in
  let memo_hits, memo_misses =
    match Wn_machine.Machine.memo machine with
    | Some t -> (Wn_machine.Memo.hits t, Wn_machine.Memo.misses t)
    | None -> (0, 0)
  in
  {
    active_cycles = outcome.Wn_runtime.Executor.active_cycles;
    nrmse = Runner.nrmse_pct ~reference out;
    out;
    reference;
    baseline_cycles;
    memo_hits;
    memo_misses;
  }

let precise_with ?memo_entries ?(zero_skip = false) ?seed (w : Workload.t) =
  let cfg, inputs = prepare ?seed w 8 in
  let b = Runner.build ~precise:true w cfg in
  let reference, baseline_cycles = Runner.precise_reference b inputs in
  let machine =
    Runner.machine ~machine_config:(machine_config ~memo_entries ~zero_skip) b
  in
  Runner.load_sample b machine inputs;
  let outcome = Runner.run_always_on b machine in
  if not outcome.Wn_runtime.Executor.completed then
    failwith "Earliest.precise_with: task did not complete";
  let out = Runner.output b machine in
  let memo_hits, memo_misses =
    match Wn_machine.Machine.memo machine with
    | Some t -> (Wn_machine.Memo.hits t, Wn_machine.Memo.misses t)
    | None -> (0, 0)
  in
  {
    active_cycles = outcome.Wn_runtime.Executor.active_cycles;
    nrmse = Runner.nrmse_pct ~reference out;
    out;
    reference;
    baseline_cycles;
    memo_hits;
    memo_misses;
  }

let speedup r = float_of_int r.baseline_cycles /. float_of_int r.active_cycles
