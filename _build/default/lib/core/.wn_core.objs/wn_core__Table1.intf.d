lib/core/table1.mli: Format Wn_workloads Workload
