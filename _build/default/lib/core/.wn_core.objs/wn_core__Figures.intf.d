lib/core/figures.mli: Format Intermittent Wn_workloads Workload
