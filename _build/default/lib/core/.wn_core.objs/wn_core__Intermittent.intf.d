lib/core/intermittent.mli: Format Wn_runtime Wn_workloads Workload
