lib/core/sampling.mli: Wn_workloads Workload
