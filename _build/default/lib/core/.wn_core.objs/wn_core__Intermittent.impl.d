lib/core/intermittent.ml: Array Char Format List Runner String Wn_power Wn_runtime Wn_util Wn_workloads Workload
