lib/core/runner.mli: Wn_compiler Wn_machine Wn_runtime Wn_workloads Workload
