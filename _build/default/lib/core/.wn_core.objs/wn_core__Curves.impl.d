lib/core/curves.ml: Format List Runner Wn_runtime Wn_util Wn_workloads Workload
