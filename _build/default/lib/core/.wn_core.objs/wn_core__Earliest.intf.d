lib/core/earliest.mli: Wn_workloads Workload
