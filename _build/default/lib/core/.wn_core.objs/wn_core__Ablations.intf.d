lib/core/ablations.mli: Format Intermittent Wn_workloads Workload
