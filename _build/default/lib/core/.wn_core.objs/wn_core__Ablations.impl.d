lib/core/ablations.ml: Earliest Format Intermittent List Suite Wn_power Wn_runtime Wn_workloads Workload
