lib/core/curves.mli: Format Wn_workloads Workload
