lib/core/table1.ml: Format List Runner Suite Wn_compiler Wn_machine Wn_power Wn_runtime Wn_util Wn_workloads Workload
