lib/core/runner.ml: Printf Wn_compiler Wn_machine Wn_mem Wn_power Wn_runtime Wn_util Wn_workloads Workload
