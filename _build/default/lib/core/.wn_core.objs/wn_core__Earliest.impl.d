lib/core/earliest.ml: Runner Wn_machine Wn_runtime Wn_util Wn_workloads Workload
