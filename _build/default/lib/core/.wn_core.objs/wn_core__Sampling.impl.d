lib/core/sampling.ml: Array Earliest Float Glucose List Runner Suite Wn_runtime Wn_util Wn_workloads Workload
