open Ast

exception Error of string

type state = { mutable toks : Lexer.located list }

let fail_at line msg = raise (Error (Printf.sprintf "line %d: %s" line msg))

let peek st =
  match st.toks with
  | [] -> { Lexer.tok = Lexer.EOF; line = 0 }
  | t :: _ -> t

let advance st =
  match st.toks with [] -> () | _ :: rest -> st.toks <- rest

let next st =
  let t = peek st in
  advance st;
  t

let expect st tok =
  let t = next st in
  if t.Lexer.tok <> tok then
    fail_at t.line
      (Printf.sprintf "expected %s, found %s" (Lexer.token_name tok)
         (Lexer.token_name t.tok))

let expect_ident st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.IDENT s -> s
  | other ->
      fail_at t.line
        (Printf.sprintf "expected identifier, found %s" (Lexer.token_name other))

let expect_int st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.INT n -> n
  | other ->
      fail_at t.line
        (Printf.sprintf "expected integer, found %s" (Lexer.token_name other))

(* Expressions: precedence climbing, lowest to highest precedence:
   or, xor, and, equality, relational, shifts, additive,
   multiplicative, unary. *)

let binop_of_token = function
  | Lexer.PIPE -> Some (Or, 0)
  | Lexer.CARET -> Some (Xor, 1)
  | Lexer.AMP -> Some (And, 2)
  | Lexer.EQ -> Some (Eq, 3)
  | Lexer.NE -> Some (Ne, 3)
  | Lexer.LT -> Some (Lt, 4)
  | Lexer.LE -> Some (Le, 4)
  | Lexer.GT -> Some (Gt, 4)
  | Lexer.GE -> Some (Ge, 4)
  | Lexer.SHL -> Some (Shl, 5)
  | Lexer.SHR -> Some (Shr, 5)
  | Lexer.PLUS -> Some (Add, 6)
  | Lexer.MINUS -> Some (Sub, 6)
  | Lexer.STAR -> Some (Mul, 7)
  | _ -> None

let rec parse_binary st min_prec =
  let lhs = parse_unary st in
  let rec climb lhs =
    match binop_of_token (peek st).Lexer.tok with
    | Some (op, prec) when prec >= min_prec ->
        advance st;
        let rhs = parse_binary st (prec + 1) in
        climb (Binop (op, lhs, rhs))
    | Some _ | None -> lhs
  in
  climb lhs

and parse_unary st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.MINUS ->
      advance st;
      Neg (parse_unary st)
  | Lexer.TILDE ->
      advance st;
      Bnot (parse_unary st)
  | _ -> parse_primary st

and parse_primary st =
  let t = next st in
  match t.Lexer.tok with
  | Lexer.INT n -> Int n
  | Lexer.IDENT "sqrt" when (peek st).Lexer.tok = Lexer.LPAREN ->
      advance st;
      let e = parse_binary st 0 in
      expect st Lexer.RPAREN;
      Sqrt e
  | Lexer.IDENT name ->
      if (peek st).Lexer.tok = Lexer.LBRACKET then begin
        advance st;
        let idx = parse_binary st 0 in
        expect st Lexer.RBRACKET;
        Load (name, idx)
      end
      else Var name
  | Lexer.LPAREN ->
      let e = parse_binary st 0 in
      expect st Lexer.RPAREN;
      e
  | other ->
      fail_at t.line
        (Printf.sprintf "expected expression, found %s" (Lexer.token_name other))

let parse_expression st = parse_binary st 0

let parse_lhs st =
  let name = expect_ident st in
  if (peek st).Lexer.tok = Lexer.LBRACKET then begin
    advance st;
    let idx = parse_expression st in
    expect st Lexer.RBRACKET;
    Larr (name, idx)
  end
  else Lvar name

let rec parse_block st =
  expect st Lexer.LBRACE;
  let rec stmts acc =
    if (peek st).Lexer.tok = Lexer.RBRACE then begin
      advance st;
      List.rev acc
    end
    else stmts (parse_stmt st :: acc)
  in
  stmts []

and parse_stmt st =
  let t = peek st in
  match t.Lexer.tok with
  | Lexer.TYPE ty ->
      if ty <> I32 then
        fail_at t.line "local variables must be int32 (they live in registers)";
      advance st;
      let name = expect_ident st in
      expect st Lexer.ASSIGN;
      let e = parse_expression st in
      expect st Lexer.SEMI;
      Decl (name, e)
  | Lexer.FOR -> parse_for st
  | Lexer.IF ->
      advance st;
      expect st Lexer.LPAREN;
      let cond = parse_expression st in
      expect st Lexer.RPAREN;
      let then_blk = parse_block st in
      let else_blk =
        if (peek st).Lexer.tok = Lexer.ELSE then begin
          advance st;
          parse_block st
        end
        else []
      in
      If (cond, then_blk, else_blk)
  | Lexer.ANYTIME ->
      advance st;
      let body = parse_block st in
      expect st Lexer.COMMIT;
      let commit = parse_block st in
      Anytime { body; commit }
  | Lexer.IDENT _ ->
      let lhs = parse_lhs st in
      let t2 = next st in
      let stmt =
        match t2.Lexer.tok with
        | Lexer.ASSIGN -> Assign (lhs, parse_expression st)
        | Lexer.PLUS_ASSIGN -> Aug_assign (lhs, Add, parse_expression st)
        | Lexer.MINUS_ASSIGN -> Aug_assign (lhs, Sub, parse_expression st)
        | Lexer.XOR_ASSIGN -> Aug_assign (lhs, Xor, parse_expression st)
        | Lexer.AND_ASSIGN -> Aug_assign (lhs, And, parse_expression st)
        | Lexer.OR_ASSIGN -> Aug_assign (lhs, Or, parse_expression st)
        | other ->
            fail_at t2.line
              (Printf.sprintf "expected assignment operator, found %s"
                 (Lexer.token_name other))
      in
      expect st Lexer.SEMI;
      stmt
  | other ->
      fail_at t.line
        (Printf.sprintf "expected statement, found %s" (Lexer.token_name other))

and parse_for st =
  let t = next st in
  assert (t.Lexer.tok = Lexer.FOR);
  expect st Lexer.LPAREN;
  let var = expect_ident st in
  expect st Lexer.ASSIGN;
  let lo = parse_expression st in
  expect st Lexer.SEMI;
  let var2 = expect_ident st in
  if var2 <> var then fail_at t.line "for-loop condition must test the loop variable";
  expect st Lexer.LT;
  let hi = parse_expression st in
  expect st Lexer.SEMI;
  let var3 = expect_ident st in
  if var3 <> var then fail_at t.line "for-loop step must update the loop variable";
  expect st Lexer.PLUS_ASSIGN;
  let step = expect_int st in
  if step <= 0 then fail_at t.line "for-loop step must be positive";
  expect st Lexer.RPAREN;
  let body = parse_block st in
  For { var; lo; hi; step; body }

let parse_pragma st =
  (* '#' already consumed. *)
  let t = peek st in
  let kw = expect_ident st in
  if kw <> "pragma" then fail_at t.line "expected 'pragma' after '#'";
  let technique =
    match expect_ident st with
    | "asp" -> Asp
    | "asv" -> Asv
    | other -> fail_at t.line (Printf.sprintf "unknown pragma %S" other)
  in
  let direction =
    match expect_ident st with
    | "input" -> Input
    | "output" -> Output
    | other -> fail_at t.line (Printf.sprintf "unknown pragma direction %S" other)
  in
  expect st Lexer.LPAREN;
  let array = expect_ident st in
  let bits = ref None in
  let provisioned = ref false in
  let rec args () =
    match (peek st).Lexer.tok with
    | Lexer.COMMA ->
        advance st;
        (match (next st).Lexer.tok with
        | Lexer.INT n -> bits := Some n
        | Lexer.IDENT "provisioned" -> provisioned := true
        | other ->
            fail_at t.line
              (Printf.sprintf "unexpected pragma argument %s"
                 (Lexer.token_name other)));
        args ()
    | _ -> ()
  in
  args ();
  expect st Lexer.RPAREN;
  if (peek st).Lexer.tok = Lexer.SEMI then advance st;
  {
    prag_technique = technique;
    prag_direction = direction;
    prag_array = array;
    prag_bits = !bits;
    prag_provisioned = !provisioned;
  }

let parse_global st ty =
  let name = expect_ident st in
  let count =
    if (peek st).Lexer.tok = Lexer.LBRACKET then begin
      advance st;
      let n = expect_int st in
      expect st Lexer.RBRACKET;
      n
    end
    else 1
  in
  expect st Lexer.SEMI;
  { g_name = name; g_ty = ty; g_count = count }

let parse src =
  let st = { toks = Lexer.tokenize src } in
  let pragmas = ref [] in
  let globals = ref [] in
  let rec preamble () =
    match (peek st).Lexer.tok with
    | Lexer.HASH ->
        advance st;
        pragmas := parse_pragma st :: !pragmas;
        preamble ()
    | Lexer.TYPE ty ->
        advance st;
        globals := parse_global st ty :: !globals;
        preamble ()
    | _ -> ()
  in
  preamble ();
  expect st Lexer.KERNEL;
  let kernel_name = expect_ident st in
  expect st Lexer.LPAREN;
  expect st Lexer.RPAREN;
  let body = parse_block st in
  expect st Lexer.EOF;
  {
    pragmas = List.rev !pragmas;
    globals = List.rev !globals;
    kernel_name;
    body;
  }

let parse_expr src =
  let st = { toks = Lexer.tokenize src } in
  let e = parse_expression st in
  expect st Lexer.EOF;
  e
