(** Hand-written lexer for WNC. *)

type token =
  | INT of int
  | IDENT of string
  | TYPE of Ast.ty
  | KERNEL
  | FOR
  | IF
  | ELSE
  | ANYTIME
  | COMMIT
  | HASH
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | XOR_ASSIGN
  | AND_ASSIGN
  | OR_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | AMP
  | PIPE
  | CARET
  | TILDE
  | SHL
  | SHR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

val token_name : token -> string

type located = { tok : token; line : int }

exception Error of string

val tokenize : string -> located list
(** Raises {!Error} with a line-numbered message on an illegal
    character.  Comments: [//] to end of line and [/* ... */]. *)
