(** Recursive-descent parser for WNC. *)

exception Error of string
(** Parse error with a line-numbered message. *)

val parse : string -> Ast.program
(** Parse a complete WNC source file.  Raises {!Error} (or
    {!Lexer.Error}) on malformed input. *)

val parse_expr : string -> Ast.expr
(** Parse a single expression (for tests). *)
