lib/lang/interp.ml: Array Ast Hashtbl List Printf Wn_util
