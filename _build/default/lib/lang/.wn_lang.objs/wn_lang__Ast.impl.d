lib/lang/ast.ml: Format List
