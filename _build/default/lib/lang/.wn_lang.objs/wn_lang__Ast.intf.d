lib/lang/ast.mli: Format
