lib/lang/parser.mli: Ast
