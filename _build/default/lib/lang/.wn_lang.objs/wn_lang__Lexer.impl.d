lib/lang/lexer.ml: Ast List Printf String
