lib/lang/sema.mli: Ast
