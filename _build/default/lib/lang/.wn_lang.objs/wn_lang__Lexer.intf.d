lib/lang/lexer.mli: Ast
