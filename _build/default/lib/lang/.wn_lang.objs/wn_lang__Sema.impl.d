lib/lang/sema.ml: Ast Hashtbl List Printf
