lib/lang/parser.ml: Ast Lexer List Printf
