lib/lang/interp.mli: Ast
