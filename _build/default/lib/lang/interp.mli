(** Reference interpreter for WNC.

    Executes a (source-level) program directly over the AST with the
    same integer semantics the compiled WN-32 code has: 32-bit wrapping
    arithmetic, arithmetic right shift, sized array elements with zero-
    or sign-extension on load and truncation on store.  [anytime]
    regions run straight through (body then commit) — the precise
    semantics every build must converge to.

    The interpreter is the oracle for differential testing: for any
    program and input, the compiled precise build and every anytime
    build must produce exactly the arrays this interpreter produces. *)

exception Error of string
(** Runtime error: undeclared name, out-of-bounds index, or an internal
    expression form (the interpreter runs *source* programs only). *)

type env

val init : Ast.program -> env
(** Allocate zeroed storage for every global. *)

val set_array : env -> string -> int array -> unit
(** Load an input array (element bit patterns).  Raises {!Error} on
    unknown names or length mismatch. *)

val run : env -> Ast.program -> unit
(** Execute the kernel body.  Raises {!Error} on dynamic errors and
    [Failure] if a loop exceeds a large iteration guard. *)

val array : env -> string -> int array
(** An array's current contents as element patterns. *)

val interpret :
  Ast.program -> inputs:(string * int array) list -> (string * int array) list
(** Convenience: init, load inputs, run, and return every global's
    final contents. *)
