(** Semantic analysis for WNC: name/shape checking and pragma
    validation.  Runs before the WN transformation passes, so the
    internal expression forms ([Sub_load], [Mul_asp], [Asv_op]) are
    rejected here. *)

exception Error of string

type asv_spec = { asv_bits : int; asv_provisioned : bool }

type info = {
  asp_inputs : (string * int) list;  (** array name, subword bits *)
  asp_outputs : string list;
  asp_output_bits : int option;
      (** optional stage size attached to an [asp output] pragma — used
          by the anytime square-root schema (footnote 3) *)
  asv_arrays : (string * asv_spec) list;  (** inputs and outputs *)
  globals : (string * Ast.global) list;
}

val analyze : Ast.program -> info
(** Validates the program and returns its annotation summary.
    Raises {!Error} on:
    - duplicate or unknown names, use of an array without an index;
    - locals that shadow globals, use of undeclared variables;
    - comparison operators outside [if] conditions, non-constant shift
      amounts;
    - pragmas naming unknown arrays, [asp input] without a subword
      size or on an element type other than 16 bits (the paper's
      16×16-multiplier operands), [asv] sizes other than 4, 8 or 16 or
      not dividing the element width;
    - nested [anytime] blocks or internal expression forms in source. *)

val asp_input : info -> string -> int option
val asv_spec : info -> string -> asv_spec option
val global : info -> string -> Ast.global option
