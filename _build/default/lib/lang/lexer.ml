type token =
  | INT of int
  | IDENT of string
  | TYPE of Ast.ty
  | KERNEL
  | FOR
  | IF
  | ELSE
  | ANYTIME
  | COMMIT
  | HASH
  | LPAREN
  | RPAREN
  | LBRACE
  | RBRACE
  | LBRACKET
  | RBRACKET
  | SEMI
  | COMMA
  | ASSIGN
  | PLUS_ASSIGN
  | MINUS_ASSIGN
  | XOR_ASSIGN
  | AND_ASSIGN
  | OR_ASSIGN
  | PLUS
  | MINUS
  | STAR
  | AMP
  | PIPE
  | CARET
  | TILDE
  | SHL
  | SHR
  | EQ
  | NE
  | LT
  | LE
  | GT
  | GE
  | EOF

let token_name = function
  | INT n -> string_of_int n
  | IDENT s -> s
  | TYPE t -> Ast.ty_name t
  | KERNEL -> "kernel"
  | FOR -> "for"
  | IF -> "if"
  | ELSE -> "else"
  | ANYTIME -> "anytime"
  | COMMIT -> "commit"
  | HASH -> "#"
  | LPAREN -> "("
  | RPAREN -> ")"
  | LBRACE -> "{"
  | RBRACE -> "}"
  | LBRACKET -> "["
  | RBRACKET -> "]"
  | SEMI -> ";"
  | COMMA -> ","
  | ASSIGN -> "="
  | PLUS_ASSIGN -> "+="
  | MINUS_ASSIGN -> "-="
  | XOR_ASSIGN -> "^="
  | AND_ASSIGN -> "&="
  | OR_ASSIGN -> "|="
  | PLUS -> "+"
  | MINUS -> "-"
  | STAR -> "*"
  | AMP -> "&"
  | PIPE -> "|"
  | CARET -> "^"
  | TILDE -> "~"
  | SHL -> "<<"
  | SHR -> ">>"
  | EQ -> "=="
  | NE -> "!="
  | LT -> "<"
  | LE -> "<="
  | GT -> ">"
  | GE -> ">="
  | EOF -> "<eof>"

type located = { tok : token; line : int }

exception Error of string

let fail line msg = raise (Error (Printf.sprintf "line %d: %s" line msg))

let keyword = function
  | "kernel" -> Some KERNEL
  | "for" -> Some FOR
  | "if" -> Some IF
  | "else" -> Some ELSE
  | "anytime" -> Some ANYTIME
  | "commit" -> Some COMMIT
  | "uint8" -> Some (TYPE Ast.U8)
  | "uint16" -> Some (TYPE Ast.U16)
  | "uint32" -> Some (TYPE Ast.U32)
  | "int16" -> Some (TYPE Ast.I16)
  | "int32" -> Some (TYPE Ast.I32)
  | _ -> None

let is_ident_start c = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c = '_'
let is_ident_char c = is_ident_start c || (c >= '0' && c <= '9')
let is_digit c = c >= '0' && c <= '9'

let tokenize src =
  let n = String.length src in
  let line = ref 1 in
  let out = ref [] in
  let emit tok = out := { tok; line = !line } :: !out in
  let rec skip_block_comment i =
    if i + 1 >= n then fail !line "unterminated comment"
    else if src.[i] = '\n' then begin
      incr line;
      skip_block_comment (i + 1)
    end
    else if src.[i] = '*' && src.[i + 1] = '/' then i + 2
    else skip_block_comment (i + 1)
  in
  let rec go i =
    if i >= n then ()
    else
      let c = src.[i] in
      if c = '\n' then begin
        incr line;
        go (i + 1)
      end
      else if c = ' ' || c = '\t' || c = '\r' then go (i + 1)
      else if c = '/' && i + 1 < n && src.[i + 1] = '/' then begin
        let rec eol j = if j < n && src.[j] <> '\n' then eol (j + 1) else j in
        go (eol (i + 1))
      end
      else if c = '/' && i + 1 < n && src.[i + 1] = '*' then
        go (skip_block_comment (i + 2))
      else if is_digit c then begin
        let rec num j = if j < n && is_digit src.[j] then num (j + 1) else j in
        let j = num i in
        emit (INT (int_of_string (String.sub src i (j - i))));
        go j
      end
      else if is_ident_start c then begin
        let rec idn j = if j < n && is_ident_char src.[j] then idn (j + 1) else j in
        let j = idn i in
        let word = String.sub src i (j - i) in
        emit (match keyword word with Some k -> k | None -> IDENT word);
        go j
      end
      else
        let two tok = emit tok; go (i + 2) in
        let one tok = emit tok; go (i + 1) in
        let next = if i + 1 < n then Some src.[i + 1] else None in
        match (c, next) with
        | '+', Some '=' -> two PLUS_ASSIGN
        | '-', Some '=' -> two MINUS_ASSIGN
        | '^', Some '=' -> two XOR_ASSIGN
        | '&', Some '=' -> two AND_ASSIGN
        | '|', Some '=' -> two OR_ASSIGN
        | '<', Some '<' -> two SHL
        | '>', Some '>' -> two SHR
        | '=', Some '=' -> two EQ
        | '!', Some '=' -> two NE
        | '<', Some '=' -> two LE
        | '>', Some '=' -> two GE
        | '#', _ -> one HASH
        | '(', _ -> one LPAREN
        | ')', _ -> one RPAREN
        | '{', _ -> one LBRACE
        | '}', _ -> one RBRACE
        | '[', _ -> one LBRACKET
        | ']', _ -> one RBRACKET
        | ';', _ -> one SEMI
        | ',', _ -> one COMMA
        | '=', _ -> one ASSIGN
        | '+', _ -> one PLUS
        | '-', _ -> one MINUS
        | '*', _ -> one STAR
        | '&', _ -> one AMP
        | '|', _ -> one PIPE
        | '^', _ -> one CARET
        | '~', _ -> one TILDE
        | '<', _ -> one LT
        | '>', _ -> one GT
        | _ -> fail !line (Printf.sprintf "illegal character %C" c)
  in
  go 0;
  emit EOF;
  List.rev !out
