lib/runtime/executor.mli: Wn_machine Wn_power
