lib/runtime/executor.ml: Array Hashtbl Instr Machine Supply Wn_isa Wn_machine Wn_power
