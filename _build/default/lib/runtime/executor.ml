open Wn_isa
open Wn_machine
open Wn_power

type nvp_config = { nvp_restore_cycles : int }

let default_nvp = { nvp_restore_cycles = 8 }

type clank_config = {
  watchdog_period : int;
  buffer_entries : int;
  checkpoint_cycles : int;
  clank_restore_cycles : int;
}

let default_clank =
  {
    watchdog_period = 8_000;
    buffer_entries = 2_048;
    checkpoint_cycles = 40;
    clank_restore_cycles = 40;
  }

type policy = Always_on | Nvp of nvp_config | Clank of clank_config

let policy_name = function
  | Always_on -> "always-on"
  | Nvp _ -> "nvp"
  | Clank _ -> "clank"

type outcome = {
  completed : bool;
  skimmed : bool;
  first_skim_active : int option;
  wall_cycles : int;
  active_cycles : int;
  overhead_cycles : int;
  reexecuted_instructions : int;
  outage_count : int;
  checkpoint_count : int;
  retired : int;
}

type snapshot_hook = active_cycles:int -> wall_cycles:int -> unit

(* Clank epoch state: the last checkpoint plus the read-first/write
   sets used to detect idempotency (write-after-read) violations at
   word granularity.  [written] only holds words *fully* overwritten
   this epoch: a partial (byte/halfword) store must not suppress read
   tracking of its sibling bytes, or a later write to them would escape
   WAR detection and re-execution would read the new value. *)
type clank_state = {
  mutable checkpoint : Machine.register_file;
  read_first : (int, unit) Hashtbl.t;
  written : (int, unit) Hashtbl.t;
  mutable since_ckpt_cycles : int;
  mutable since_ckpt_retired : int;
}

let word_of_addr addr = addr lsr 2

(* Address a store at the current PC would write, computed from live
   registers, so a violation can trigger a checkpoint *before* the
   violating write commits. *)
let pending_store_word machine =
  let p = Machine.program machine in
  let pc = Machine.pc machine in
  if pc < 0 || pc >= Array.length p then None
  else
    match p.(pc) with
    | Instr.Str { base; off; _ } ->
        Some (word_of_addr (Machine.reg machine base + off))
    | Instr.Str_reg { base; idx; _ } ->
        Some (word_of_addr (Machine.reg machine base + Machine.reg machine idx))
    | _ -> None

let run ?(policy = Always_on) ?(max_wall_cycles = 20_000_000_000)
    ?(snapshot_every = 10_000) ?snapshot ?(halt_at_skim = false) ~machine
    ~supply () =
  let wall_start = Supply.now_cycles supply in
  let retired_start = Machine.instructions_retired machine in
  let active = ref 0 in
  let overhead = ref 0 in
  let reexecuted = ref 0 in
  let outage_count = ref 0 in
  let checkpoint_count = ref 0 in
  let skimmed = ref false in
  let first_skim_active = ref None in
  let next_snapshot = ref snapshot_every in
  let take_snapshot () =
    match snapshot with
    | None -> ()
    | Some hook ->
        hook ~active_cycles:!active
          ~wall_cycles:(Supply.now_cycles supply - wall_start)
  in
  let spend_overhead cycles =
    overhead := !overhead + cycles;
    ignore (Supply.consume supply ~cycles)
  in
  let clank =
    match policy with
    | Clank _ ->
        Some
          {
            checkpoint = Machine.capture_registers machine;
            read_first = Hashtbl.create 64;
            written = Hashtbl.create 64;
            since_ckpt_cycles = 0;
            since_ckpt_retired = 0;
          }
    | Always_on | Nvp _ -> None
  in
  let do_checkpoint cfg st =
    spend_overhead cfg.checkpoint_cycles;
    st.checkpoint <- Machine.capture_registers machine;
    Hashtbl.reset st.read_first;
    Hashtbl.reset st.written;
    st.since_ckpt_cycles <- 0;
    st.since_ckpt_retired <- 0;
    incr checkpoint_count
  in
  let set_size tbl = Hashtbl.length tbl in
  let track_access cfg st ~read word =
    let tbl = if read then st.read_first else st.written in
    if not (Hashtbl.mem tbl word) then begin
      if set_size st.read_first + set_size st.written >= cfg.buffer_entries
      then do_checkpoint cfg st;
      let tbl = if read then st.read_first else st.written in
      Hashtbl.replace tbl word ()
    end
  in
  let handle_skim_jump () =
    match Machine.take_skim machine with
    | Some target ->
        Machine.set_pc machine target;
        skimmed := true;
        true
    | None -> false
  in
  let handle_outage () =
    incr outage_count;
    ignore (Supply.wait_for_power supply);
    match policy with
    | Always_on | Nvp _ ->
        let restore =
          match policy with Nvp c -> c.nvp_restore_cycles | _ -> 0
        in
        spend_overhead restore;
        (* NVP keeps all state; just honour a pending skim point. *)
        ignore (handle_skim_jump ())
    | Clank cfg -> (
        spend_overhead cfg.clank_restore_cycles;
        match clank with
        | None -> assert false
        | Some st ->
            if handle_skim_jump () then begin
              (* The skim target's code depends only on NVM state, so a
                 scrubbed register file is safe; start a fresh epoch
                 there. *)
              let pc = Machine.pc machine in
              Machine.scrub_volatile machine;
              Machine.set_pc machine pc;
              st.checkpoint <- Machine.capture_registers machine
            end
            else begin
              (* Roll back: everything since the checkpoint re-executes. *)
              reexecuted := !reexecuted + st.since_ckpt_retired;
              Machine.restore_registers machine st.checkpoint
            end;
            Hashtbl.reset st.read_first;
            Hashtbl.reset st.written;
            st.since_ckpt_cycles <- 0;
            st.since_ckpt_retired <- 0)
  in
  let wall_elapsed () = Supply.now_cycles supply - wall_start in
  let rec loop () =
    if Machine.halted machine then true
    else if wall_elapsed () > max_wall_cycles then false
    else if not (Supply.is_on supply) then begin
      handle_outage ();
      loop ()
    end
    else begin
      (match clank with
      | Some st ->
          let cfg =
            match policy with Clank c -> c | _ -> assert false
          in
          if st.since_ckpt_cycles >= cfg.watchdog_period then
            do_checkpoint cfg st
          else begin
            (* Idempotency violation: about to write a word that was
               read first in this epoch. *)
            match pending_store_word machine with
            | Some word when Hashtbl.mem st.read_first word ->
                do_checkpoint cfg st
            | Some _ | None -> ()
          end
      | None -> ());
      let res = Machine.step machine in
      active := !active + res.cycles;
      ignore (Supply.consume supply ~cycles:res.cycles);
      (match clank with
      | Some st ->
          let cfg = match policy with Clank c -> c | _ -> assert false in
          st.since_ckpt_cycles <- st.since_ckpt_cycles + res.cycles;
          st.since_ckpt_retired <- st.since_ckpt_retired + 1;
          (match res.read with
          | Some { addr; _ } ->
              let w = word_of_addr addr in
              (* Skip only reads dominated by a *full-word* write, which
                 re-execution is guaranteed to reproduce. *)
              if not (Hashtbl.mem st.written w) then
                track_access cfg st ~read:true w
          | None -> ());
          (match res.wrote with
          | Some { addr; bytes } when bytes = 4 ->
              track_access cfg st ~read:false (word_of_addr addr)
          | Some _ | None -> ())
      | None -> ());
      (match res.instr with
      | Instr.Skm _ ->
          if !first_skim_active = None then first_skim_active := Some !active;
          if halt_at_skim then
            (* Model an outage at this very instant: take the skim jump
               and commit the earliest available output. *)
            ignore (handle_skim_jump ())
      | _ -> ());
      if !active >= !next_snapshot then begin
        take_snapshot ();
        next_snapshot := !next_snapshot + snapshot_every
      end;
      loop ()
    end
  in
  let completed = loop () in
  take_snapshot ();
  {
    completed;
    skimmed = !skimmed;
    first_skim_active = !first_skim_active;
    wall_cycles = wall_elapsed ();
    active_cycles = !active;
    overhead_cycles = !overhead;
    reexecuted_instructions = !reexecuted;
    outage_count = !outage_count;
    checkpoint_count = !checkpoint_count;
    retired = Machine.instructions_retired machine - retired_start;
  }
