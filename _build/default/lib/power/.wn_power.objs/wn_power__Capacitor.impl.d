lib/power/capacitor.ml: Float
