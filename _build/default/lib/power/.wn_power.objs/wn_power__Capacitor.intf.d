lib/power/capacitor.mli:
