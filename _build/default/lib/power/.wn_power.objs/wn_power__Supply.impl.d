lib/power/supply.ml: Capacitor Float Trace
