lib/power/trace.ml: Array Float List Wn_util
