lib/power/supply.mli: Capacitor Trace
