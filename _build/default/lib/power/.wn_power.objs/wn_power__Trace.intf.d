lib/power/trace.mli:
