type t = { samples : float array }

let sample_period_s = 0.001

let of_samples samples =
  if Array.length samples = 0 then invalid_arg "Trace.of_samples: empty";
  Array.iter
    (fun p -> if p < 0.0 then invalid_arg "Trace.of_samples: negative power")
    samples;
  { samples }

let length t = Array.length t.samples

let duration_s t = float_of_int (length t) *. sample_period_s

let power_at_tick t i =
  let n = Array.length t.samples in
  t.samples.(((i mod n) + n) mod n)

let power_at t time_s =
  power_at_tick t (int_of_float (Float.floor (time_s /. sample_period_s)))

let mean_power t = Wn_util.Stats.mean t.samples

let duty_cycle t =
  let hot = Array.fold_left (fun n p -> if p > 1e-6 then n + 1 else n) 0 t.samples in
  float_of_int hot /. float_of_int (Array.length t.samples)

let ticks_of_duration duration_s =
  let n = int_of_float (Float.round (duration_s /. sample_period_s)) in
  if n <= 0 then invalid_arg "Trace: duration too short" else n

let constant ~power ~duration_s =
  of_samples (Array.make (ticks_of_duration duration_s) power)

let square ~on_ms ~off_ms ~power ~duration_s =
  if on_ms <= 0 || off_ms < 0 then invalid_arg "Trace.square";
  let n = ticks_of_duration duration_s in
  let period = on_ms + off_ms in
  of_samples
    (Array.init n (fun i -> if i mod period < on_ms then power else 0.0))

let rf_burst ?(burst_mean_ms = 3.0) ?(quiet_mean_ms = 40.0)
    ?(burst_power = 1.5e-3) ?(power_jitter = 0.3) ~seed ~duration_s () =
  if burst_mean_ms <= 0.0 || quiet_mean_ms <= 0.0 then
    invalid_arg "Trace.rf_burst";
  let rng = Wn_util.Rng.create seed in
  let n = ticks_of_duration duration_s in
  let samples = Array.make n 0.0 in
  (* Geometric dwell times: per-tick probability of leaving each state. *)
  let p_leave_burst = 1.0 /. burst_mean_ms in
  let p_leave_quiet = 1.0 /. quiet_mean_ms in
  let in_burst = ref false in
  let level = ref 0.0 in
  let fresh_level () =
    Float.max 1e-5
      (burst_power *. (1.0 +. Wn_util.Rng.gaussian rng ~mu:0.0 ~sigma:power_jitter))
  in
  for i = 0 to n - 1 do
    let p_leave = if !in_burst then p_leave_burst else p_leave_quiet in
    if Wn_util.Rng.float rng 1.0 < p_leave then begin
      in_burst := not !in_burst;
      if !in_burst then level := fresh_level ()
    end;
    samples.(i) <- (if !in_burst then !level else 0.0)
  done;
  of_samples samples

let paper_suite ?(count = 9) ~seed ~duration_s () =
  if count <= 0 then invalid_arg "Trace.paper_suite";
  List.init count (fun i ->
      (* Vary burst statistics mildly across the suite so the nine
         traces exercise different outage frequencies, as the paper's
         distinct captures do. *)
      let burst_mean_ms = 2.0 +. (float_of_int (i mod 3) *. 1.5) in
      let quiet_mean_ms = 30.0 +. (float_of_int (i mod 4) *. 10.0) in
      rf_burst ~burst_mean_ms ~quiet_mean_ms ~seed:(seed + (1009 * (i + 1)))
        ~duration_s ())
