(** Harvested-power traces.

    The paper drives its simulator with 1-kHz voltage traces captured
    from a Wi-Fi RF source.  Those measurements are not available, so we
    synthesise equivalent traces: harvested power sampled at 1 kHz from a
    two-state (burst/quiet) Markov process, which is the standard model
    for ambient-RF energy arrival.  Deterministic square and constant
    traces are provided for tests and controlled experiments.  Traces
    wrap around when a simulation outlives them. *)

type t

val sample_period_s : float
(** 1 ms — the paper's 1-kHz sampling. *)

val of_samples : float array -> t
(** Harvested power in watts per 1-ms tick.  Raises [Invalid_argument]
    on an empty array or negative sample. *)

val length : t -> int
val duration_s : t -> float

val power_at_tick : t -> int -> float
(** Sample at tick [i], wrapping modulo the trace length. *)

val power_at : t -> float -> float
(** Sample at a time in seconds, wrapping. *)

val mean_power : t -> float
val duty_cycle : t -> float
(** Fraction of ticks with non-negligible (> 1 µW) power. *)

val constant : power:float -> duration_s:float -> t

val square : on_ms:int -> off_ms:int -> power:float -> duration_s:float -> t
(** Periodic bursts of [power] watts for [on_ms], then [off_ms] of
    nothing. *)

val rf_burst :
  ?burst_mean_ms:float ->
  ?quiet_mean_ms:float ->
  ?burst_power:float ->
  ?power_jitter:float ->
  seed:int ->
  duration_s:float ->
  unit ->
  t
(** Markov burst/quiet RF-harvesting model.  Dwell times in each state
    are geometric with the given means; burst power is lognormal-ish
    around [burst_power] with relative jitter [power_jitter].  Defaults:
    3 ms bursts, 40 ms quiet, 1.5 mW, 0.3 jitter — which yields the
    paper's regime of active periods up to a few milliseconds. *)

val paper_suite : ?count:int -> seed:int -> duration_s:float -> unit -> t list
(** The evaluation's trace set: [count] (default 9, as in the paper)
    RF-burst traces with distinct sub-seeds and mildly varied burst
    statistics. *)
