(** Binary encoding of WN-32 instructions.

    Each instruction occupies one 32-bit word.  The encoding exists so
    the reproduction has a concrete machine-code level (program sizes in
    bytes, Section III-A's code-size discussion) and so the codec can be
    property-tested; the simulator itself executes decoded values. *)

val encode : int Instr.t -> int32
(** Raises [Invalid_argument] if a field is out of range (e.g. an
    immediate too wide, a branch target beyond 16 bits). *)

val decode : int32 -> (int Instr.t, string) result

val encode_program : int Instr.t array -> int32 array

val decode_program : int32 array -> (int Instr.t array, string) result

val code_size_bytes : int Instr.t array -> int
(** Size of the encoded program in bytes (4 bytes per instruction). *)
