type t = int

let count = 16

let r n = if n < 0 || n >= count then invalid_arg "Reg.r" else n

let index t = t

let sp = 13
let lr = 14
let pc = 15

let allocatable = List.init 13 Fun.id

let equal = Int.equal

let to_string t =
  if t = sp then "sp" else if t = lr then "lr" else if t = pc then "pc"
  else Printf.sprintf "r%d" t

let pp ppf t = Format.pp_print_string ppf (to_string t)
