(** Two-pass assembler: symbolic labels to absolute instruction
    addresses. *)

type item =
  | Label of string
  | I of string Instr.t
  | Comment of string  (** ignored by assembly, kept for listings *)

type program = item list

val assemble : program -> (int Instr.t array, string) result
(** Resolves every symbolic target to the instruction index following
    its label.  Errors on duplicate or undefined labels, or if a label
    dangles past the end of the program. *)

val assemble_exn : program -> int Instr.t array

val label_map : program -> (string * int) list
(** The label table the first pass builds (for listings and tests). *)

val pp_listing : Format.formatter -> program -> unit
(** Source-level listing with labels and comments. *)

val pp_disassembly : Format.formatter -> int Instr.t array -> unit
(** Numbered disassembly of a resolved program. *)
