lib/isa/instr.ml: Cond Format Reg
