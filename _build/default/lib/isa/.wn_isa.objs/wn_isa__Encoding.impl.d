lib/isa/encoding.ml: Array Bool Cond Instr Int32 List Printf Reg
