lib/isa/cond.ml: Format
