lib/isa/encoding.mli: Instr
