lib/isa/instr.mli: Cond Format Reg
