lib/isa/asm.ml: Array Format Hashtbl Instr List Printf
