lib/isa/reg.ml: Format Fun Int List Printf
