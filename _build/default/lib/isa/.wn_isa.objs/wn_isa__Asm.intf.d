lib/isa/asm.mli: Format Instr
