(** Branch conditions over the NZCV flags. *)

type t =
  | Al  (** always *)
  | Eq  (** Z *)
  | Ne  (** not Z *)
  | Lt  (** signed less: N <> V *)
  | Ge  (** signed greater-equal: N = V *)
  | Gt  (** signed greater: not Z and N = V *)
  | Le  (** signed less-equal: Z or N <> V *)
  | Lo  (** unsigned lower: not C *)
  | Hs  (** unsigned higher-same: C *)
  | Mi  (** N *)
  | Pl  (** not N *)

type flags = { n : bool; z : bool; c : bool; v : bool }

val initial_flags : flags

val holds : t -> flags -> bool

val all : t list

val to_int : t -> int
val of_int : int -> t option
val pp : Format.formatter -> t -> unit
val to_string : t -> string
