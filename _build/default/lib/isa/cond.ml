type t = Al | Eq | Ne | Lt | Ge | Gt | Le | Lo | Hs | Mi | Pl

type flags = { n : bool; z : bool; c : bool; v : bool }

let initial_flags = { n = false; z = false; c = false; v = false }

let holds t { n; z; c; v } =
  match t with
  | Al -> true
  | Eq -> z
  | Ne -> not z
  | Lt -> n <> v
  | Ge -> n = v
  | Gt -> (not z) && n = v
  | Le -> z || n <> v
  | Lo -> not c
  | Hs -> c
  | Mi -> n
  | Pl -> not n

let all = [ Al; Eq; Ne; Lt; Ge; Gt; Le; Lo; Hs; Mi; Pl ]

let to_int = function
  | Al -> 0 | Eq -> 1 | Ne -> 2 | Lt -> 3 | Ge -> 4 | Gt -> 5
  | Le -> 6 | Lo -> 7 | Hs -> 8 | Mi -> 9 | Pl -> 10

let of_int = function
  | 0 -> Some Al | 1 -> Some Eq | 2 -> Some Ne | 3 -> Some Lt
  | 4 -> Some Ge | 5 -> Some Gt | 6 -> Some Le | 7 -> Some Lo
  | 8 -> Some Hs | 9 -> Some Mi | 10 -> Some Pl | _ -> None

let to_string = function
  | Al -> "al" | Eq -> "eq" | Ne -> "ne" | Lt -> "lt" | Ge -> "ge"
  | Gt -> "gt" | Le -> "le" | Lo -> "lo" | Hs -> "hs" | Mi -> "mi"
  | Pl -> "pl"

let pp ppf t = Format.pp_print_string ppf (to_string t)
