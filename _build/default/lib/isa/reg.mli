(** General-purpose registers of the WN-32 core.

    Like the Cortex M0+ the paper targets, the core has sixteen 32-bit
    registers: [r0]–[r12] general purpose, [sp] (r13), [lr] (r14) and
    [pc] (r15).  The program counter is not directly addressable by ALU
    instructions in this ISA; it appears here for checkpointing. *)

type t = private int

val r : int -> t
(** [r n] for [0 <= n <= 15].  Raises [Invalid_argument] otherwise. *)

val index : t -> int

val sp : t
val lr : t
val pc : t

val count : int
(** Number of architectural registers (16). *)

val allocatable : t list
(** Registers the code generator may allocate: [r0]–[r12]. *)

val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
val to_string : t -> string
