type item = Label of string | I of string Instr.t | Comment of string

type program = item list

let label_map prog =
  let _, labels =
    List.fold_left
      (fun (addr, acc) item ->
        match item with
        | Label name -> (addr, (name, addr) :: acc)
        | I _ -> (addr + 1, acc)
        | Comment _ -> (addr, acc))
      (0, []) prog
  in
  List.rev labels

let assemble prog =
  let exception Err of string in
  try
    let labels = Hashtbl.create 16 in
    let count =
      List.fold_left
        (fun addr item ->
          match item with
          | Label name ->
              if Hashtbl.mem labels name then
                raise (Err (Printf.sprintf "duplicate label %S" name));
              Hashtbl.add labels name addr;
              addr
          | I _ -> addr + 1
          | Comment _ -> addr)
        0 prog
    in
    let resolve name =
      match Hashtbl.find_opt labels name with
      | Some addr when addr < count -> addr
      | Some _ -> raise (Err (Printf.sprintf "label %S dangles past program end" name))
      | None -> raise (Err (Printf.sprintf "undefined label %S" name))
    in
    let instrs =
      List.filter_map
        (function
          | I i -> Some (Instr.map_target resolve i)
          | Label _ | Comment _ -> None)
        prog
    in
    Ok (Array.of_list instrs)
  with Err e -> Error e

let assemble_exn prog =
  match assemble prog with Ok p -> p | Error e -> failwith ("Asm.assemble: " ^ e)

let pp_label ppf name = Format.pp_print_string ppf name

let pp_listing ppf prog =
  List.iter
    (function
      | Label name -> Format.fprintf ppf "%s:@." name
      | I i -> Format.fprintf ppf "        %a@." (Instr.pp ~lbl:pp_label) i
      | Comment c -> Format.fprintf ppf "        ; %s@." c)
    prog

let pp_disassembly ppf prog =
  Array.iteri
    (fun addr i -> Format.fprintf ppf "%4d:  %a@." addr Instr.pp_resolved i)
    prog
