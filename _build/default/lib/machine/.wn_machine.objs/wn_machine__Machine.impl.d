lib/machine/machine.ml: Array Cond Instr Memo Memory Option Printf Reg Subword Wn_isa Wn_mem Wn_util
