lib/machine/memo.ml: Array
