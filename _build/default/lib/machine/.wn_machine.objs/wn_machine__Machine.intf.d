lib/machine/machine.mli: Cond Instr Memo Reg Wn_isa Wn_mem
