lib/machine/memo.mli:
