type entry = { tag_a : int; tag_b : int; result : int }

type t = {
  slots : entry option array;
  index_bits : int;
  mutable hit_count : int;
  mutable miss_count : int;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(entries = 16) () =
  if not (is_power_of_two entries) then invalid_arg "Memo.create";
  let rec log2 n = if n = 1 then 0 else 1 + log2 (n / 2) in
  {
    slots = Array.make entries None;
    index_bits = log2 entries;
    hit_count = 0;
    miss_count = 0;
  }

let entries t = Array.length t.slots

(* Index: low bits of each operand concatenated, as in the paper's
   "concatenation of the two least significant bits of both operands"
   for the 16-entry table.  Tag: the remaining operand bits. *)
let split_key t ~a ~b =
  let half = t.index_bits / 2 in
  let rest = t.index_bits - half in
  let mask_a = (1 lsl half) - 1 and mask_b = (1 lsl rest) - 1 in
  let index = ((a land mask_a) lsl rest) lor (b land mask_b) in
  (index, a lsr half, b lsr rest)

let lookup t ~a ~b =
  let index, tag_a, tag_b = split_key t ~a ~b in
  match t.slots.(index) with
  | Some e when e.tag_a = tag_a && e.tag_b = tag_b ->
      t.hit_count <- t.hit_count + 1;
      Some e.result
  | Some _ | None ->
      t.miss_count <- t.miss_count + 1;
      None

let insert t ~a ~b ~result =
  let index, tag_a, tag_b = split_key t ~a ~b in
  t.slots.(index) <- Some { tag_a; tag_b; result }

let hits t = t.hit_count
let misses t = t.miss_count

let clear t =
  Array.fill t.slots 0 (Array.length t.slots) None;
  t.hit_count <- 0;
  t.miss_count <- 0
