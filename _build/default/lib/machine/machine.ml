open Wn_util
open Wn_isa

type config = { memo_entries : int option; zero_skip : bool }

let default_config = { memo_entries = None; zero_skip = false }

type t = {
  program : int Instr.t array;
  mem : Wn_mem.Memory.t;
  regs : int array;
  mutable pcv : int;
  mutable flag : Cond.flags;
  mutable halt : bool;
  mutable skim : int option;
  memo_table : Memo.t option;
  zero_skip : bool;
  mutable retired : int;
  mutable wn_retired : int;
  mutable cycles : int;
}

let create ?(config = default_config) ~program ~mem () =
  {
    program;
    mem;
    regs = Array.make Reg.count 0;
    pcv = 0;
    flag = Cond.initial_flags;
    halt = false;
    skim = None;
    memo_table = Option.map (fun entries -> Memo.create ~entries ()) config.memo_entries;
    zero_skip = config.zero_skip;
    retired = 0;
    wn_retired = 0;
    cycles = 0;
  }

let program t = t.program
let mem t = t.mem
let pc t = t.pcv
let set_pc t v = t.pcv <- v

let u32 v = v land 0xFFFF_FFFF

let reg t r = t.regs.(Reg.index r)
let set_reg t r v = t.regs.(Reg.index r) <- u32 v

let flags t = t.flag
let halted t = t.halt

let skim_target t = t.skim

let take_skim t =
  let s = t.skim in
  t.skim <- None;
  s

let clear_skim t = t.skim <- None

let reset_for_new_task t =
  t.pcv <- 0;
  t.halt <- false;
  t.skim <- None;
  Array.fill t.regs 0 Reg.count 0;
  t.flag <- Cond.initial_flags

type access = { addr : int; bytes : int }

type step_result = {
  instr : int Instr.t;
  cycles : int;
  read : access option;
  wrote : access option;
  memo_hit : bool;
  zero_skipped : bool;
}

let signed32 v = Subword.to_signed ~bits:32 v

(* Flag computation for compares: NZCV of rn - rm on the 32-bit
   datapath. *)
let compare_flags a b =
  let sa = signed32 a and sb = signed32 b in
  let result = u32 (sa - sb) in
  let n = result land 0x8000_0000 <> 0 in
  {
    Cond.n;
    z = result = 0;
    c = a >= b;
    (* signed overflow: operands of differing sign and the truncated
       result's sign differs from the minuend's *)
    v = (sa < 0) <> (sb < 0) && (sa < 0) <> n;
  }

let alu_eval op a b =
  match (op : Instr.alu_op) with
  | Add -> a + b
  | Sub -> a - b
  | And -> a land b
  | Orr -> a lor b
  | Eor -> a lxor b
  | Bic -> a land lnot b
  | Adc -> a + b (* carry-in unused: the compiler never emits Adc/Sbc chains *)
  | Sbc -> a - b

let load t (width : Instr.width) ~signed addr =
  let open Wn_mem in
  match (width, signed) with
  | Instr.Byte, false -> (Memory.read8 t.mem addr, 1)
  | Instr.Byte, true -> (u32 (Memory.read8_signed t.mem addr), 1)
  | Instr.Half, false -> (Memory.read16 t.mem addr, 2)
  | Instr.Half, true -> (u32 (Memory.read16_signed t.mem addr), 2)
  | Instr.Word, _ -> (Memory.read32 t.mem addr, 4)

let store t (width : Instr.width) addr v =
  let open Wn_mem in
  match width with
  | Instr.Byte -> (Memory.write8 t.mem addr v, 1)
  | Instr.Half -> (Memory.write16 t.mem addr v, 2)
  | Instr.Word -> (Memory.write32 t.mem addr v, 4)

(* Digit-by-digit (restoring) square root: decide result bits from the
   most significant down; each decision is final, so computing only the
   top [bits] of the 16-bit root is exact truncation of the full
   root. *)
let isqrt_top ~bits n =
  let r = ref 0 in
  for bitpos = 15 downto 16 - bits do
    let candidate = !r lor (1 lsl bitpos) in
    if candidate * candidate <= n then r := candidate
  done;
  !r

(* Multiply through the zero-skip / memoization front end.  Returns the
   raw product and the latency actually paid. *)
let multiply t ~full_cycles a b =
  if t.zero_skip && (a = 0 || b = 0) then (0, 1, false, true)
  else
    match t.memo_table with
    | Some table -> (
        match Memo.lookup table ~a ~b with
        | Some r -> (r, 1, true, false)
        | None ->
            let r = u32 (a * b) in
            Memo.insert table ~a ~b ~result:r;
            (r, full_cycles, false, false))
    | None -> (u32 (a * b), full_cycles, false, false)

let step t =
  if t.halt then failwith "Machine.step: halted";
  if t.pcv < 0 || t.pcv >= Array.length t.program then
    failwith (Printf.sprintf "Machine.step: PC %d out of program" t.pcv);
  let i = t.program.(t.pcv) in
  let next = t.pcv + 1 in
  let nothing = (None, None, false, false) in
  let rd_set r v = set_reg t r v in
  let rv r = reg t r in
  let default_cycles = Instr.cycles ~taken:false i in
  let cycles = ref default_cycles in
  let pc' = ref next in
  let effects = ref nothing in
  (match i with
  | Instr.Nop -> ()
  | Instr.Halt -> t.halt <- true
  | Instr.Mov_imm (rd, imm) -> rd_set rd imm
  | Instr.Movt (rd, imm) -> rd_set rd ((rv rd land 0xFFFF) lor (imm lsl 16))
  | Instr.Mov (rd, rn) -> rd_set rd (rv rn)
  | Instr.Alu (op, rd, rn, rm) -> rd_set rd (alu_eval op (rv rn) (rv rm))
  | Instr.Alu_imm (op, rd, rn, imm) -> rd_set rd (alu_eval op (rv rn) imm)
  | Instr.Shift (op, rd, rn, sh) ->
      let v = rv rn in
      let r =
        match op with
        | Instr.Lsl -> v lsl sh
        | Instr.Lsr -> v lsr sh
        | Instr.Asr -> signed32 v asr sh
      in
      rd_set rd r
  | Instr.Mul (rd, rn, rm) ->
      let r, c, hit, zs = multiply t ~full_cycles:16 (rv rn) (rv rm) in
      rd_set rd r;
      cycles := c;
      effects := (None, None, hit, zs)
  | Instr.Mul_asp { bits; signed; rd; rn; shift } ->
      (* rd := rd * subword, shifted into place.  The subword sits in
         the low [bits] bits of rn (a byte load or shift put it there);
         the most significant subword of signed data multiplies
         signed. *)
      let sub_raw = Subword.truncate ~bits (rv rn) in
      let multiplicand = signed32 (rv rd) in
      let sub = if signed then Subword.to_signed ~bits sub_raw else sub_raw in
      let a = u32 multiplicand and b = u32 sub in
      (* The memo table and zero-skip front end decide the latency; the
         product itself is recomputed signed (the cached pattern equals
         it bit-for-bit). *)
      let _pattern, c, hit, zs = multiply t ~full_cycles:bits a b in
      let product = multiplicand * sub in
      rd_set rd (u32 (product lsl shift));
      cycles := c;
      effects := (None, None, hit, zs)
  | Instr.Add_asv (w, rd, rn, rm) ->
      rd_set rd (Subword.lanes_add ~lane_bits:w ~width:32 (rv rn) (rv rm))
  | Instr.Sub_asv (w, rd, rn, rm) ->
      rd_set rd (Subword.lanes_sub ~lane_bits:w ~width:32 (rv rn) (rv rm))
  | Instr.Sqrt (rd, rn) -> rd_set rd (isqrt_top ~bits:16 (rv rn))
  | Instr.Sqrt_asp { bits; rd; rn } -> rd_set rd (isqrt_top ~bits (rv rn))
  | Instr.Cmp (rn, rm) -> t.flag <- compare_flags (rv rn) (rv rm)
  | Instr.Cmp_imm (rn, imm) -> t.flag <- compare_flags (rv rn) imm
  | Instr.Ldr { width; signed; rd; base; off } ->
      let addr = rv base + off in
      let v, bytes = load t width ~signed addr in
      rd_set rd v;
      effects := (Some { addr; bytes }, None, false, false)
  | Instr.Str { width; rs; base; off } ->
      let addr = rv base + off in
      let (), bytes = store t width addr (rv rs) in
      effects := (None, Some { addr; bytes }, false, false)
  | Instr.Ldr_reg { width; signed; rd; base; idx } ->
      let addr = rv base + rv idx in
      let v, bytes = load t width ~signed addr in
      rd_set rd v;
      effects := (Some { addr; bytes }, None, false, false)
  | Instr.Str_reg { width; rs; base; idx } ->
      let addr = rv base + rv idx in
      let (), bytes = store t width addr (rv rs) in
      effects := (None, Some { addr; bytes }, false, false)
  | Instr.B (c, tgt) ->
      if Cond.holds c t.flag then begin
        pc' := tgt;
        cycles := Instr.cycles ~taken:true i
      end
  | Instr.Bl tgt ->
      set_reg t Reg.lr next;
      pc' := tgt
  | Instr.Bx_lr -> pc' := rv Reg.lr
  | Instr.Skm tgt -> t.skim <- Some tgt);
  t.pcv <- !pc';
  t.retired <- t.retired + 1;
  if Instr.is_wn_extension i then t.wn_retired <- t.wn_retired + 1;
  t.cycles <- t.cycles + !cycles;
  let read, wrote, memo_hit, zero_skipped = !effects in
  { instr = i; cycles = !cycles; read; wrote; memo_hit; zero_skipped }

type register_file = { saved_regs : int array; saved_flags : Cond.flags; saved_pc : int }

let capture_registers t =
  { saved_regs = Array.copy t.regs; saved_flags = t.flag; saved_pc = t.pcv }

let restore_registers t rf =
  Array.blit rf.saved_regs 0 t.regs 0 Reg.count;
  t.flag <- rf.saved_flags;
  t.pcv <- rf.saved_pc

let scrub_volatile t =
  Array.fill t.regs 0 Reg.count 0;
  t.flag <- Cond.initial_flags;
  t.pcv <- 0

let instructions_retired (t : t) = t.retired
let wn_instructions t = t.wn_retired
let cycles_executed (t : t) = t.cycles
let memo t = t.memo_table

let reset_stats t =
  t.retired <- 0;
  t.wn_retired <- 0;
  t.cycles <- 0;
  Option.iter Memo.clear t.memo_table
