lib/mem/memory.ml: Bytes Char Int32 Printf Wn_util
