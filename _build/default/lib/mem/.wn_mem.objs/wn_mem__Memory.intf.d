lib/mem/memory.mli:
