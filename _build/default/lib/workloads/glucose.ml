type reading = { minutes : int; mgdl : float }

let interval_minutes = 15
let duration_minutes = 600
let critical_threshold = 50.0

let start_minutes = (10 * 60) + 48

(* Minutes (since 10:48) of the two hypoglycemic dips: 14:30 and
   18:30. *)
let dip_centres = [ 222; 462 ]

let clinical rng =
  let n = (duration_minutes / interval_minutes) + 1 in
  let meal m =
    (* post-prandial excursions around 12:30 and 17:00 *)
    let bump centre width amp =
      let d = float_of_int (m - centre) in
      amp *. exp (-.(d *. d) /. (2.0 *. width *. width))
    in
    bump 102 45.0 80.0 +. bump 372 50.0 70.0
  in
  let dip m =
    List.fold_left
      (fun acc centre ->
        let d = float_of_int (m - centre) in
        acc +. (-95.0 *. exp (-.(d *. d) /. (2.0 *. 12.0 *. 12.0))))
      0.0 dip_centres
  in
  Array.init n (fun i ->
      let m = i * interval_minutes in
      let noise = Wn_util.Rng.gaussian rng ~mu:0.0 ~sigma:4.0 in
      let v = 118.0 +. meal m +. dip m +. noise in
      let v =
        (* pin the dip minima safely below the critical threshold *)
        if List.exists (fun c -> abs (m - c) <= 7) dip_centres then
          Float.min v (critical_threshold -. 8.0)
        else Float.max v (critical_threshold +. 10.0)
      in
      { minutes = m; mgdl = Float.max 25.0 v })

let critical_indices readings =
  Array.to_list readings
  |> List.mapi (fun i r -> (i, r))
  |> List.filter (fun (_, r) -> r.mgdl < critical_threshold)
  |> List.map fst

let quantize_msb ~bits v =
  let full_bits = 8 in
  let code = int_of_float (v /. 400.0 *. 255.0) in
  let code = max 0 (min 255 code) in
  let kept = (code lsr (full_bits - bits)) lsl (full_bits - bits) in
  float_of_int kept /. 255.0 *. 400.0

let clock_of_minutes m =
  let total = start_minutes + m in
  Printf.sprintf "%02d:%02d" (total / 60 mod 24) (total mod 60)
