type params = {
  width : int;
  height : int;
  k : int;
  pad : int;
  stride : int;
  fstride : int;
}

let params : Workload.scale -> params = function
  | Small -> { width = 32; height = 32; k = 5; pad = 2; stride = 64; fstride = 8 }
  | Paper ->
      { width = 128; height = 128; k = 9; pad = 4; stride = 256; fstride = 16 }

let output_scale = 65536.0 (* Q8.8 pixels × filter weight sum 256 *)

let weight_sum = 256

let source p (cfg : Workload.cfg) =
  let img_len = (p.height + (2 * p.pad)) * p.stride in
  Printf.sprintf
    {|
#pragma asp input(img, %d)
#pragma asp output(out)

uint16 img[%d];
uint16 fl[%d];
uint32 out[%d];

kernel conv2d() {
  anytime {
    for (y = 0; y < %d; y += 1) {
      for (x = 0; x < %d; x += 1) {
        int32 acc = 0;
        for (ky = 0; ky < %d; ky += 1) {
          int32 irow = (y + ky) * %d + x;
          int32 frow = ky * %d;
          for (kx = 0; kx < %d; kx += 1) {
            acc += fl[frow + kx] * img[irow + kx];
          }
        }
        out[y * %d + x] = acc;
      }
    }
  } commit { }
}
|}
    cfg.bits img_len (p.k * p.fstride) (p.width * p.height) p.height p.width
    p.k p.stride p.fstride p.k p.width

let fresh_inputs p filter rng =
  let pixels = Image.synthesize_precise rng ~width:p.width ~height:p.height in
  let q88 =
    Array.map
      (fun v -> min 0xFFFF (int_of_float (Float.round (v *. 256.0))))
      pixels
  in
  let img =
    Image.pad_image q88 ~width:p.width ~height:p.height ~pad:p.pad
      ~stride:p.stride
  in
  [ ("img", img); ("fl", filter) ]

let golden p inputs =
  let img = List.assoc "img" inputs and fl = List.assoc "fl" inputs in
  Array.init (p.width * p.height) (fun o ->
      let y = o / p.width and x = o mod p.width in
      let acc = ref 0 in
      for ky = 0 to p.k - 1 do
        for kx = 0 to p.k - 1 do
          acc :=
            !acc
            + (fl.((ky * p.fstride) + kx)
              * img.(((y + ky) * p.stride) + x + kx))
        done
      done;
      float_of_int (!acc land 0xFFFF_FFFF))

let workload scale : Workload.t =
  let p = params scale in
  let filter =
    Image.pad_filter
      (Image.gaussian_filter ~k:p.k ~weight_sum)
      ~k:p.k ~stride:p.fstride
  in
  {
    name = "Conv2d";
    area = "Image Processing";
    description =
      Printf.sprintf "%d×%d Gaussian filter applied on a %d×%d grayscale image"
        p.k p.k p.width p.height;
    technique = Workload.Swp;
    source = source p;
    fresh_inputs = fresh_inputs p filter;
    golden = golden p;
    output = "out";
    out_count = p.width * p.height;
  }
