(* Data logging (Table I's "Var"): per-window variance of sensor
   readings.  Readings arrive as calibrated signed deviations from the
   sensor midpoint (zero-mean per window by calibration), so the kernel
   is sums (cheap, precise) plus squares — the long-latency multiplies
   anytime SWP pipelines, in the x·x shape where both operands come
   from the annotated signed array.  Each window's raw sum of squares
   lands in its [out] slot (overwritten by the first subword pass,
   accumulated by later ones); the commit block derives the variance
   estimate [Σx² - (Σx)²/n] per window.  Signed-prefix squares only
   overestimate, so every intermediate estimate is non-negative and
   decreasing toward the exact value. *)

let window = 32
let windows = 128
let count = window * windows

(* |reading| ≤ 6000 keeps the worst first-pass partial window sum,
   Σ x·(x_top + 2^12), under 2^31. *)
let max_reading = 6000.0

let source (cfg : Workload.cfg) =
  Printf.sprintf
    {|
#pragma asp input(readings, %d)
#pragma asp output(out)

int16 readings[%d];
int32 wsums[%d];
uint32 out[%d];
uint32 outv[%d];

kernel var() {
  for (w = 0; w < %d; w += 1) {
    int32 base = w * %d;
    int32 s = 0;
    for (i = 0; i < %d; i += 1) {
      s += readings[base + i];
    }
    wsums[w] = s;
  }
  anytime {
    for (w2 = 0; w2 < %d; w2 += 1) {
      int32 b2 = w2 * %d;
      int32 sq = 0;
      for (j = 0; j < %d; j += 1) {
        sq += readings[b2 + j] * readings[b2 + j];
      }
      out[w2] = sq;
    }
  } commit {
    for (cw = 0; cw < %d; cw += 1) {
      outv[cw] = out[cw] - ((wsums[cw] * wsums[cw]) >> 5);
    }
  }
}
|}
    cfg.bits count windows windows windows windows window window windows
    window window windows

(* Calibrated sensor deltas: an in-window oscillation plus noise,
   re-centred per window so the calibration assumption holds. *)
let series rng =
  let amplitude = 1500.0 +. Wn_util.Rng.float rng 3000.0 in
  let period = 14.0 +. Wn_util.Rng.float rng 12.0 in
  let phase = Wn_util.Rng.float rng 6.28 in
  let raw =
    Array.init count (fun i ->
        let t = 6.28 *. float_of_int i /. period in
        let v =
          (amplitude *. sin (t +. phase))
          +. Wn_util.Rng.gaussian rng ~mu:0.0 ~sigma:150.0
        in
        Float.max (-.max_reading) (Float.min max_reading v))
    |> Array.map int_of_float
  in
  (* Re-centre each window on its rounded mean: |Σ window| stays small,
     as sensor calibration guarantees, so (Σx)² cannot overflow. *)
  for w = 0 to windows - 1 do
    let b = w * window in
    let s = ref 0 in
    for i = 0 to window - 1 do
      s := !s + raw.(b + i)
    done;
    let m = !s / window in
    for i = 0 to window - 1 do
      raw.(b + i) <- raw.(b + i) - m
    done
  done;
  Array.map (fun v -> Wn_util.Subword.of_signed ~bits:16 v) raw

let fresh_inputs rng = [ ("readings", series rng) ]

let golden inputs =
  let r =
    Array.map
      (fun v -> Wn_util.Subword.to_signed ~bits:16 v)
      (List.assoc "readings" inputs)
  in
  Array.init windows (fun w ->
      let b = w * window in
      let s = ref 0 and sq = ref 0 in
      for i = 0 to window - 1 do
        s := !s + r.(b + i);
        sq := !sq + (r.(b + i) * r.(b + i))
      done;
      float_of_int ((!sq - ((!s * !s) asr 5)) land 0xFFFF_FFFF))

let workload (_ : Workload.scale) : Workload.t =
  {
    name = "Var";
    area = "Environmental Sensing";
    description = "Calculates variance on data gathered from sensors";
    technique = Workload.Swp;
    source;
    fresh_inputs;
    golden;
    output = "outv";
    out_count = windows;
  }
