(* Location tracking (Table I's "NetMotion"): wildlife-collar net
   movement per tracking interval — the sum of signed displacement
   deltas over each 64-sample window.  A signed windowed SWV reduction:
   the deltas are stored offset-binary so banked digit-plane partial
   sums reconstruct each window's two's-complement net displacement
   exactly (modulo 2^32, exact for even window sizes). *)

let window = 64
let zones = 64
let count = window * zones

(* Deltas in µm keep magnitudes near 2^24 (top plane carries signal)
   while window net movement stays below 2^31. *)
let max_step = 25_000_000.0

let source (cfg : Workload.cfg) =
  Printf.sprintf
    {|
#pragma asv input(dx, %d, provisioned)
#pragma asv input(dy, %d, provisioned)

int32 dx[%d];
int32 dy[%d];
int32 out[%d];

kernel netmotion() {
  anytime {
    for (z = 0; z < %d; z += 1) {
      int32 zb = z * %d;
      int32 nx = 0;
      int32 ny = 0;
      for (i = 0; i < %d; i += 1) {
        nx += dx[zb + i];
        ny += dy[zb + i];
      }
      out[z] = nx;
      out[z + %d] = ny;
    }
  } commit { }
}
|}
    cfg.bits cfg.bits count count (2 * zones) zones window window zones

(* A correlated random walk: heading drifts slowly, so per-window net
   movement is well away from zero (as an animal's track would be). *)
let walk rng =
  let heading = ref (Wn_util.Rng.float rng 6.28) in
  let dx = Array.make count 0 and dy = Array.make count 0 in
  for i = 0 to count - 1 do
    heading := !heading +. Wn_util.Rng.gaussian rng ~mu:0.0 ~sigma:0.12;
    let speed = 5_000_000.0 +. Wn_util.Rng.float rng 18_000_000.0 in
    let clamp v = Float.max (-.max_step) (Float.min max_step v) in
    dx.(i) <- int_of_float (clamp (speed *. cos !heading)) land 0xFFFF_FFFF;
    dy.(i) <- int_of_float (clamp (speed *. sin !heading)) land 0xFFFF_FFFF
  done;
  (dx, dy)

let fresh_inputs rng =
  let dx, dy = walk rng in
  [ ("dx", dx); ("dy", dy) ]

let golden inputs =
  let signed v = Wn_util.Subword.to_signed ~bits:32 v in
  let zone_nets name =
    let a = List.assoc name inputs in
    Array.init zones (fun z ->
        let s = ref 0 in
        for i = 0 to window - 1 do
          s := !s + signed a.((z * window) + i)
        done;
        float_of_int !s)
  in
  Array.append (zone_nets "dx") (zone_nets "dy")

let workload (_ : Workload.scale) : Workload.t =
  {
    name = "NetMotion";
    area = "Environmental Sensing";
    description =
      "Wildlife location tracking; calculates net movement over period of time";
    technique = Workload.Swv;
    source;
    fresh_inputs;
    golden;
    output = "out";
    out_count = 2 * zones;
  }
