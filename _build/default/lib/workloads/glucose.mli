(** Blood-glucose monitoring case study (Figure 3).

    The paper compares input sampling against anytime processing on a
    10-hour clinical glucose series with two hypoglycemic dips (around
    14:30 and 18:30) sampled every 15 minutes.  The clinical data set is
    not available, so we synthesise a series with the same structure:
    meal excursions, noise, and two dips below the 50 mg/dL critical
    threshold at the same clock times. *)

type reading = { minutes : int;  (** minutes since 10:48 *) mgdl : float }

val interval_minutes : int
(** 15, as in the clinical data. *)

val duration_minutes : int
(** 10 hours. *)

val critical_threshold : float
(** 50 mg/dL — "dangerously low" per the paper. *)

val clinical : Wn_util.Rng.t -> reading array
(** The synthetic clinical series.  Guaranteed to contain exactly two
    dips below the critical threshold, at minutes 222 (14:30) and 462
    (18:30). *)

val critical_indices : reading array -> int list
(** Indices whose value is below {!critical_threshold}. *)

val quantize_msb : bits:int -> float -> float
(** The value the anytime 4-bit pipeline reports: the reading is coded
    as an 8-bit sample over the 0–400 mg/dL range and only its [bits]
    most significant bits are processed (lower bits read as zero). *)

val clock_of_minutes : int -> string
(** "14:30"-style wall-clock label (series starts at 10:48). *)
