lib/workloads/netmotion.ml: Array Float List Printf Wn_util Workload
