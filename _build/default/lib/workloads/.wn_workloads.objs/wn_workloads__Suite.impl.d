lib/workloads/suite.ml: Conv2d Dist Home List Matadd Matmul Netmotion String Var_sensor Workload
