lib/workloads/dist.ml: Array Float List Printf Wn_util Workload
