lib/workloads/image.ml: Array Char Float Fun List Printf Rng Wn_util
