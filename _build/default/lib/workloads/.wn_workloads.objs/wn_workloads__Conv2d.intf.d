lib/workloads/conv2d.mli: Workload
