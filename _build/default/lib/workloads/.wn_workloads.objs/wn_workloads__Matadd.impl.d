lib/workloads/matadd.ml: Array List Printf Wn_util Workload
