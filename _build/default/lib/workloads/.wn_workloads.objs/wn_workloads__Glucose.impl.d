lib/workloads/glucose.ml: Array Float List Printf Wn_util
