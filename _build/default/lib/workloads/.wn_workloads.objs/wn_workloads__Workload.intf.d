lib/workloads/workload.mli: Wn_compiler Wn_mem Wn_util
