lib/workloads/var_sensor.ml: Array Float List Printf Wn_util Workload
