lib/workloads/home.ml: Array Float List Printf Wn_util Workload
