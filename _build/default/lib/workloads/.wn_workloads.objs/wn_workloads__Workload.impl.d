lib/workloads/workload.ml: Array Compile Layout List Wn_compiler Wn_mem Wn_util
