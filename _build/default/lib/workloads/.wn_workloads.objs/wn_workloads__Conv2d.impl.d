lib/workloads/conv2d.ml: Array Float Image List Printf Workload
