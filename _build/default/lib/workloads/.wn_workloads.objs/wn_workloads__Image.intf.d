lib/workloads/image.mli: Wn_util
