lib/workloads/matmul.ml: Array List Printf Wn_util Workload
