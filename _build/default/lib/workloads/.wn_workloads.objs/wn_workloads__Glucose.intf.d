lib/workloads/glucose.mli: Wn_util
