(** 2D Convolution: a Gaussian filter over a grayscale image (Table I).

    Image pixels are Q8.8 fixed point (the benchmarks' 16-bit values);
    the filter is quantised to integer taps summing to 256, so each raw
    output equals the smoothed pixel scaled by 2^16.  Anytime subword
    pipelining is applied to the image operand of the multiply-
    accumulate, exactly as in the paper's Listing 1. *)

type params = {
  width : int;
  height : int;
  k : int;  (** filter size (k×k) *)
  pad : int;
  stride : int;  (** padded-image row stride (power of two) *)
  fstride : int;  (** filter row stride (power of two) *)
}

val params : Workload.scale -> params
(** [Paper] is the paper's 128×128 image with a 9×9 filter; [Small] is
    32×32 with 5×5. *)

val workload : Workload.scale -> Workload.t

val output_scale : float
(** Divide raw outputs by this to recover pixel values (2^16). *)
