(* Matrix addition (Table I): X = A + B element-wise on 32-bit values —
   the paper's showcase for anytime subword vectorization, and the
   subject of the provisioned-vs-unprovisioned study (Figure 14). *)

let count : Workload.scale -> int = function Small -> 2048 | Paper -> 4096

(* Values below 2^30 so sums stay below 2^31 (no wrap in either
   direction of the comparison). *)
let max_value = 1 lsl 30

let source count (cfg : Workload.cfg) =
  let prov = if cfg.provisioned then ", provisioned" else "" in
  Printf.sprintf
    {|
#pragma asv input(a, %d%s)
#pragma asv input(b, %d%s)
#pragma asv output(x, %d%s)

uint32 a[%d];
uint32 b[%d];
uint32 x[%d];

kernel matadd() {
  anytime {
    for (i = 0; i < %d; i += 1) {
      x[i] = a[i] + b[i];
    }
  } commit { }
}
|}
    cfg.bits prov cfg.bits prov cfg.bits prov count count count count

let fresh_inputs count rng =
  let gen () = Array.init count (fun _ -> Wn_util.Rng.int rng max_value) in
  [ ("a", gen ()); ("b", gen ()) ]

let golden count inputs =
  let a = List.assoc "a" inputs and b = List.assoc "b" inputs in
  Array.init count (fun i -> float_of_int ((a.(i) + b.(i)) land 0xFFFF_FFFF))

let workload scale : Workload.t =
  let count = count scale in
  let n = int_of_float (sqrt (float_of_int count)) in
  {
    name = "MatAdd";
    area = "Data processing";
    description = Printf.sprintf "Addition of two %d×%d matrices" n n;
    technique = Workload.Swv;
    source = source count;
    fresh_inputs = fresh_inputs count;
    golden = golden count;
    output = "x";
    out_count = count;
  }
