(* Home monitoring (Table I): periodic average conditions (temperature
   and humidity) per observation window — a windowed SWV reduction.
   Each pass banks one digit plane's lane-parallel partial sums per
   window, and the per-window averages are re-derived from the banked
   planes, so every committed output is a coherent estimate.
   Reductions always use provisioned lanes (see Transform). *)

let window = 64
let zones = 64
let count = window * zones

(* Readings in micro-units keep values near 2^24 (so the top digit
   plane carries signal) while window sums of 64 stay below 2^31:
   temperature 10–31 °C in µ°C, humidity fraction × 2×10^7. *)
let q_temp x = int_of_float (Float.round (x *. 1_000_000.0))
let q_hum x = int_of_float (Float.round (x *. 20_000_000.0))

let source (cfg : Workload.cfg) =
  Printf.sprintf
    {|
#pragma asv input(temps, %d, provisioned)
#pragma asv input(hums, %d, provisioned)

uint32 temps[%d];
uint32 hums[%d];
uint32 out[%d];

kernel home() {
  anytime {
    for (z = 0; z < %d; z += 1) {
      int32 zb = z * %d;
      int32 st = 0;
      int32 sh = 0;
      for (i = 0; i < %d; i += 1) {
        st += temps[zb + i];
        sh += hums[zb + i];
      }
      out[z] = st >> 6;
      out[z + %d] = sh >> 6;
    }
  } commit { }
}
|}
    cfg.bits cfg.bits count count (2 * zones) zones window window zones

let fresh_inputs rng =
  let temp_base = 18.0 +. Wn_util.Rng.float rng 8.0 in
  let hum_base = 0.35 +. Wn_util.Rng.float rng 0.25 in
  let series quantise base sigma lo hi =
    Array.init count (fun i ->
        let drift = sigma *. 4.0 *. sin (float_of_int i /. 80.0) in
        let v = base +. drift +. Wn_util.Rng.gaussian rng ~mu:0.0 ~sigma in
        quantise (Float.max lo (Float.min hi v)))
  in
  [ ("temps", series q_temp temp_base 0.4 10.0 31.0);
    ("hums", series q_hum hum_base 0.01 0.2 0.75) ]

let golden inputs =
  let zone_avgs name =
    let a = List.assoc name inputs in
    Array.init zones (fun z ->
        let s = ref 0 in
        for i = 0 to window - 1 do
          s := !s + a.((z * window) + i)
        done;
        float_of_int (!s asr 6))
  in
  Array.append (zone_avgs "temps") (zone_avgs "hums")

let workload (_ : Workload.scale) : Workload.t =
  {
    name = "Home";
    area = "Environmental Sensing";
    description =
      "Periodic calculation of average conditions (e.g., temperature, humidity)";
    technique = Workload.Swv;
    source;
    fresh_inputs;
    golden;
    output = "out";
    out_count = 2 * zones;
  }
