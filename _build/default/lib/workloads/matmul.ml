(* Matrix multiply (Table I): X = A·B on n×n 16-bit matrices, with B
   held transposed so both inner-loop operands stride contiguously.
   Anytime SWP decomposes the [a] operand, which uses the full 16-bit
   range (so every subword pass carries signal); the [bt] operand stays
   small enough that a whole dot product fits a 32-bit accumulator. *)

let n : Workload.scale -> int = function Small -> 16 | Paper -> 64

let max_a = 65536
let max_bt = 800 (* 65535 · 800 · 64 < 2^32 *)

let source n (cfg : Workload.cfg) =
  let asv =
    (* The optional subword-major annotation that lets the Figure 12
       build vectorize the subword loads; inert otherwise. *)
    if cfg.bits = 4 || cfg.bits = 8 || cfg.bits = 16 then
      Printf.sprintf "#pragma asv input(a, %d)\n" cfg.bits
    else ""
  in
  Printf.sprintf
    {|
#pragma asp input(a, %d)
#pragma asp output(x)
%s
uint16 a[%d];
uint16 bt[%d];
uint32 x[%d];

kernel matmul() {
  anytime {
    for (i = 0; i < %d; i += 1) {
      int32 arow = i * %d;
      for (j = 0; j < %d; j += 1) {
        int32 acc = 0;
        int32 brow = j * %d;
        for (k = 0; k < %d; k += 1) {
          acc += bt[brow + k] * a[arow + k];
        }
        x[arow + j] = acc;
      }
    }
  } commit { }
}
|}
    cfg.bits asv (n * n) (n * n) (n * n) n n n n n

let fresh_inputs n rng =
  [
    ("a", Array.init (n * n) (fun _ -> Wn_util.Rng.int rng max_a));
    ("bt", Array.init (n * n) (fun _ -> Wn_util.Rng.int rng max_bt));
  ]

let golden n inputs =
  let a = List.assoc "a" inputs and bt = List.assoc "bt" inputs in
  Array.init (n * n) (fun o ->
      let i = o / n and j = o mod n in
      let acc = ref 0 in
      for k = 0 to n - 1 do
        acc := !acc + (a.((i * n) + k) * bt.((j * n) + k))
      done;
      float_of_int (!acc land 0xFFFF_FFFF))

let workload scale : Workload.t =
  let n = n scale in
  {
    name = "MatMul";
    area = "Data processing";
    description = Printf.sprintf "Multiplication of two %d×%d matrices" n n;
    technique = Workload.Swp;
    source = source n;
    fresh_inputs = fresh_inputs n;
    golden = golden n;
    output = "x";
    out_count = n * n;
  }
