type technique = Swp | Swv

type scale = Small | Paper

type cfg = { bits : int; provisioned : bool }

let default_cfg = { bits = 8; provisioned = true }

type t = {
  name : string;
  area : string;
  description : string;
  technique : technique;
  source : cfg -> string;
  fresh_inputs : Wn_util.Rng.t -> (string * int array) list;
  golden : (string * int array) list -> float array;
  output : string;
  out_count : int;
}

open Wn_compiler

let output_values w compiled mem =
  let sym = Compile.symbol compiled w.output in
  let len = Layout.storage_bytes sym.Compile.sym_layout ~count:w.out_count in
  let raw = Wn_mem.Memory.region mem ~addr:sym.Compile.sym_addr ~len in
  Array.map float_of_int
    (Layout.decode_signed sym.Compile.sym_layout ~count:w.out_count raw)

let load_inputs compiled mem inputs =
  List.iter
    (fun (name, vals) ->
      let sym = Compile.symbol compiled name in
      Wn_mem.Memory.blit_in mem ~addr:sym.Compile.sym_addr
        (Layout.encode sym.Compile.sym_layout vals))
    inputs

let clear_output w compiled mem =
  let sym = Compile.symbol compiled w.output in
  let len = Layout.storage_bytes sym.Compile.sym_layout ~count:w.out_count in
  Wn_mem.Memory.fill mem ~addr:sym.Compile.sym_addr ~len 0
