(** Synthetic grayscale imagery and PGM output for the Conv2d study
    (Figures 2 and 16). *)

val synthesize : Wn_util.Rng.t -> width:int -> height:int -> int array
(** A natural-looking test scene: smooth illumination gradient plus a
    few Gaussian blobs and light sensor noise.  Pixels in [0, 255],
    row-major. *)

val synthesize_precise :
  Wn_util.Rng.t -> width:int -> height:int -> float array
(** The same scene before quantisation — Q8.8 sensor pixels keep the
    fractional bits, so the low byte of each 16-bit sample carries real
    signal. *)

val gaussian_filter : k:int -> weight_sum:int -> int array
(** A [k]×[k] Gaussian kernel quantised to non-negative integers that
    sum exactly to [weight_sum] (so convolution is a fixed-point scale
    by [weight_sum]).  Row-major, no padding. *)

val pad_image :
  int array -> width:int -> height:int -> pad:int -> stride:int -> int array
(** Embed an image into a zero-padded, [stride]-wide buffer of
    [(height + 2·pad) · stride] elements, offset by [pad] in both axes —
    the power-of-two-stride layout the kernels index. *)

val pad_filter : int array -> k:int -> stride:int -> int array
(** Embed a [k]×[k] filter into a [k·stride] buffer with zero padding
    per row. *)

val write_pgm : path:string -> width:int -> height:int -> float array -> unit
(** Write pixels (any range; linearly rescaled to 0–255) as a binary
    PGM. *)

val nrmse_to_pixels : float array -> scale:float -> float array
(** Divide each raw convolution output by [scale] to recover pixel
    values. *)
