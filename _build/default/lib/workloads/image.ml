open Wn_util

let synthesize_precise rng ~width ~height =
  let blobs =
    List.init 4 (fun _ ->
        let cx = Rng.float rng (float_of_int width) in
        let cy = Rng.float rng (float_of_int height) in
        let amp = 60.0 +. Rng.float rng 120.0 in
        let sigma = 2.0 +. Rng.float rng (float_of_int (min width height) /. 4.0) in
        (cx, cy, amp, sigma))
  in
  let gradient_angle = Rng.float rng (2.0 *. Float.pi) in
  let gx = cos gradient_angle and gy = sin gradient_angle in
  Array.init (width * height) (fun i ->
      let x = float_of_int (i mod width) and y = float_of_int (i / width) in
      let base =
        40.0
        +. (60.0 *. ((gx *. x /. float_of_int width) +. (gy *. y /. float_of_int height) +. 1.0)
            /. 2.0)
      in
      let blob_sum =
        List.fold_left
          (fun acc (cx, cy, amp, sigma) ->
            let d2 = ((x -. cx) ** 2.0) +. ((y -. cy) ** 2.0) in
            acc +. (amp *. exp (-.d2 /. (2.0 *. sigma *. sigma))))
          0.0 blobs
      in
      let noise = Rng.gaussian rng ~mu:0.0 ~sigma:3.0 in
      let v = base +. blob_sum +. noise in
      Float.max 0.0 (Float.min 255.0 v))

let synthesize rng ~width ~height =
  Array.map int_of_float (synthesize_precise rng ~width ~height)

let gaussian_filter ~k ~weight_sum =
  if k <= 0 || k mod 2 = 0 then invalid_arg "Image.gaussian_filter";
  let sigma = float_of_int k /. 5.0 in
  let c = float_of_int (k / 2) in
  let raw =
    Array.init (k * k) (fun i ->
        let x = float_of_int (i mod k) -. c and y = float_of_int (i / k) -. c in
        exp (-.((x *. x) +. (y *. y)) /. (2.0 *. sigma *. sigma)))
  in
  let total = Array.fold_left ( +. ) 0.0 raw in
  let scaled = Array.map (fun w -> w /. total *. float_of_int weight_sum) raw in
  let ints = Array.map (fun w -> int_of_float (Float.floor w)) scaled in
  (* Largest-remainder quantisation: hand the leftover units to the taps
     with the largest fractional parts (centre first on ties) so the
     weights sum to exactly [weight_sum] and keep their ordering. *)
  let centre = (k / 2 * k) + (k / 2) in
  let leftover = weight_sum - Array.fold_left ( + ) 0 ints in
  if leftover < 0 then invalid_arg "Image.gaussian_filter: weight_sum too small";
  let order =
    List.init (k * k) Fun.id
    |> List.sort (fun i j ->
           let fi = scaled.(i) -. Float.floor scaled.(i)
           and fj = scaled.(j) -. Float.floor scaled.(j) in
           if fi <> fj then compare fj fi
           else if i = centre then -1
           else if j = centre then 1
           else compare i j)
  in
  List.iteri (fun rank i -> if rank < leftover then ints.(i) <- ints.(i) + 1) order;
  (* Keep the mode at the centre: shift any unit that overtook it. *)
  Array.iteri
    (fun i w ->
      if i <> centre && w > ints.(centre) then begin
        ints.(i) <- w - 1;
        ints.(centre) <- ints.(centre) + 1
      end)
    ints;
  ints

let pad_image img ~width ~height ~pad ~stride =
  if stride < width + (2 * pad) then invalid_arg "Image.pad_image: stride too small";
  let out = Array.make ((height + (2 * pad)) * stride) 0 in
  for y = 0 to height - 1 do
    for x = 0 to width - 1 do
      out.(((y + pad) * stride) + x + pad) <- img.((y * width) + x)
    done
  done;
  out

let pad_filter f ~k ~stride =
  if stride < k then invalid_arg "Image.pad_filter: stride too small";
  let out = Array.make (k * stride) 0 in
  for y = 0 to k - 1 do
    for x = 0 to k - 1 do
      out.((y * stride) + x) <- f.((y * k) + x)
    done
  done;
  out

let write_pgm ~path ~width ~height pixels =
  if Array.length pixels <> width * height then invalid_arg "Image.write_pgm";
  let lo = Array.fold_left Float.min pixels.(0) pixels in
  let hi = Array.fold_left Float.max pixels.(0) pixels in
  let range = if hi > lo then hi -. lo else 1.0 in
  let oc = open_out_bin path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      Printf.fprintf oc "P5\n%d %d\n255\n" width height;
      Array.iter
        (fun v ->
          let g = int_of_float ((v -. lo) /. range *. 255.0) in
          output_char oc (Char.chr (max 0 (min 255 g))))
        pixels)

let nrmse_to_pixels raw ~scale = Array.map (fun v -> v /. scale) raw
