(** The benchmark suite of Table I.

    Each workload bundles its WNC source (parameterised by the subword
    configuration), a deterministic input generator (fresh data per
    stream sample, standing in for sensor input), and a golden model
    that reproduces the kernel's integer semantics exactly — the precise
    build must match it bit for bit, which the test suite checks.

    Workloads come in two scales: [Small] keeps the whole evaluation
    fast enough for CI; [Paper] uses the paper's dimensions (128×128
    image with a 9×9 filter, 64×64 matrices). *)

type technique = Swp | Swv

type scale = Small | Paper

type cfg = { bits : int; provisioned : bool }

val default_cfg : cfg
(** 8-bit subwords, provisioned (the paper's headline configuration). *)

type t = {
  name : string;
  area : string;  (** Table I's "Area" column *)
  description : string;
  technique : technique;
  source : cfg -> string;  (** WNC source text *)
  fresh_inputs : Wn_util.Rng.t -> (string * int array) list;
      (** one input sample: element patterns per input array *)
  golden : (string * int array) list -> float array;
      (** reference output (exact integer semantics, as floats) *)
  output : string;  (** output array name *)
  out_count : int;
}

val output_values :
  t -> Wn_compiler.Compile.t -> Wn_mem.Memory.t -> float array
(** Decode the workload's output array from data memory (honouring the
    compiled layout and signedness) as floats comparable with
    [golden]. *)

val load_inputs :
  Wn_compiler.Compile.t -> Wn_mem.Memory.t -> (string * int array) list -> unit
(** Encode each input array per the compiled layout and place it in
    data memory. *)

val clear_output : t -> Wn_compiler.Compile.t -> Wn_mem.Memory.t -> unit
(** Zero the output array's storage (done between stream samples, as
    the device's runtime would before starting a new task). *)
