(* Euclidean distance per displacement sample — the paper's footnote-3
   extension exercised end to end: "more complex operations such as
   floating point, square root and trigonometric functions are also
   candidates" for anytime subword pipelining.  The anytime build
   replaces the 16-cycle digit-by-digit square root with SQRT_ASP stages
   of increasing result width; each replica overwrites the previous
   approximation and the final stage is the exact root.

   Not part of Table I — listed under [Suite.extended]. *)

let count = 1024

(* |components| ≤ 20000 keeps dx² + dy² inside 31 bits. *)
let max_component = 20_000.0

let source (cfg : Workload.cfg) =
  Printf.sprintf
    {|
#pragma asp output(dist, %d)

int16 dx[%d];
int16 dy[%d];
uint16 dist[%d];

kernel dist() {
  anytime {
    for (i = 0; i < %d; i += 1) {
      int32 x = dx[i];
      int32 y = dy[i];
      dist[i] = sqrt(x * x + y * y);
    }
  } commit { }
}
|}
    cfg.bits count count count count

let fresh_inputs rng =
  let component () =
    Array.init count (fun _ ->
        let v =
          Wn_util.Rng.gaussian rng ~mu:0.0 ~sigma:(max_component /. 3.0)
        in
        let v = Float.max (-.max_component) (Float.min max_component v) in
        Wn_util.Subword.of_signed ~bits:16 (int_of_float v))
  in
  [ ("dx", component ()); ("dy", component ()) ]

let isqrt n =
  let r = ref 0 in
  for bitpos = 15 downto 0 do
    let candidate = !r lor (1 lsl bitpos) in
    if candidate * candidate <= n then r := candidate
  done;
  !r

let golden inputs =
  let dx = List.assoc "dx" inputs and dy = List.assoc "dy" inputs in
  Array.init count (fun i ->
      let x = Wn_util.Subword.to_signed ~bits:16 dx.(i) in
      let y = Wn_util.Subword.to_signed ~bits:16 dy.(i) in
      float_of_int (isqrt ((x * x) + (y * y))))

let workload (_ : Workload.scale) : Workload.t =
  {
    name = "Dist";
    area = "Location Tracking";
    description =
      "Per-sample displacement magnitude via an anytime square root \
       (footnote-3 extension)";
    technique = Workload.Swp;
    source;
    fresh_inputs;
    golden;
    output = "dist";
    out_count = count;
  }
