lib/area/area_model.ml: Format
