lib/area/area_model.mli: Format
