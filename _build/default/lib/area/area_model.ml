(* 65 nm first-order constants.
   - NAND2-equivalent gate area: 1.44 µm² (typical 65 nm standard cell).
   - Full adder: 6 gate equivalents; 2:1 mux: 4 gate equivalents.
   - Ripple-carry stage delay: 26 ps; mux insertion delay: 9 ps.
   - Cortex M0+ subsystem (core + SRAM, cf. Myers et al. [38]):
     ~0.25 mm².
   - 6T SRAM bit: 0.525 µm²; small-array periphery factor ~2 (CACTI-
     style overhead for decoders/sense on a 16-entry direct-mapped
     table).
   - Gate dynamic power ∝ activity: carry-chain FAs switch heavily
     (α ≈ 0.5); the boundary muxes mostly hold their select (α ≈ 0.14). *)

let gate_area_um2 = 1.44
let fa_gates = 6
let mux_gates = 4
let fa_delay_ns = 0.026
let mux_delay_ns = 0.009
let core_area_um2_const = 250_000.0
let sram_bit_um2 = 0.525
let sram_periphery = 2.0
let fa_activity = 0.5
let mux_activity = 0.14

type adder_report = {
  full_adders : int;
  mux_count : int;
  adder_gates : int;
  mux_gates : int;
  mux_area_um2 : float;
  core_area_um2 : float;
  area_overhead_pct : float;
  adder_power_overhead_pct : float;
  critical_path_ns : float;
  fmax_ghz : float;
  operating_mhz : float;
}

let adder () =
  let full_adders = 32 in
  (* A mux at every 4-bit boundary: 32/4 - 1 = 7 (Figure 8). *)
  let mux_count = (full_adders / 4) - 1 in
  let adder_gates = full_adders * fa_gates in
  let mux_total_gates = mux_count * mux_gates in
  let mux_area = float_of_int mux_total_gates *. gate_area_um2 in
  let critical_path =
    (float_of_int full_adders *. fa_delay_ns)
    +. (float_of_int mux_count *. mux_delay_ns)
  in
  {
    full_adders;
    mux_count;
    adder_gates;
    mux_gates = mux_total_gates;
    mux_area_um2 = mux_area;
    core_area_um2 = core_area_um2_const;
    area_overhead_pct = 100.0 *. mux_area /. core_area_um2_const;
    adder_power_overhead_pct =
      100.0
      *. (float_of_int mux_total_gates *. mux_activity)
      /. (float_of_int adder_gates *. fa_activity);
    critical_path_ns = critical_path;
    fmax_ghz = 1.0 /. critical_path;
    operating_mhz = 24.0;
  }

type memo_report = {
  entries : int;
  tag_bits : int;
  data_bits : int;
  table_bits : int;
  table_area_um2 : float;
  multiplier_area_um2 : float;
  ratio_pct : float;
}

let memo_table ?(entries = 16) ?(operand_bits = 16) () =
  let index_bits =
    let rec log2 n = if n <= 1 then 0 else 1 + log2 (n / 2) in
    log2 entries
  in
  (* Tag: the operand bits the index does not cover — 28 bits for
     16-bit memoization with 16 entries, as in the paper. *)
  let tag_bits = (2 * operand_bits) - index_bits in
  let data_bits = 2 * operand_bits in
  let table_bits = entries * (tag_bits + data_bits) in
  let table_area =
    float_of_int table_bits *. sram_bit_um2 *. sram_periphery
  in
  (* Array multiplier: operand_bits² cells of one AND + one FA each. *)
  let mult_gates = operand_bits * operand_bits * (fa_gates + 1) in
  let mult_area = float_of_int mult_gates *. gate_area_um2 in
  {
    entries;
    tag_bits;
    data_bits;
    table_bits;
    table_area_um2 = table_area;
    multiplier_area_um2 = mult_area;
    ratio_pct = 100.0 *. table_area /. mult_area;
  }

let pp_adder ppf r =
  Format.fprintf ppf
    "SWV adder: %d muxes (%d gates, %.1f um2) on a %d-FA carry chain@\n\
     area overhead vs M0+ subsystem: %.3f%%@\n\
     adder power overhead: %.1f%%@\n\
     critical path %.3f ns -> Fmax %.2f GHz (operating point %.0f MHz)"
    r.mux_count r.mux_gates r.mux_area_um2 r.full_adders r.area_overhead_pct
    r.adder_power_overhead_pct r.critical_path_ns r.fmax_ghz r.operating_mhz

let pp_memo ppf r =
  Format.fprintf ppf
    "memo table: %d entries, %d tag + %d data bits (%d bits total), %.0f um2@\n\
     16x16 multiplier: %.0f um2 -> table is %.1f%% of the multiplier"
    r.entries r.tag_bits r.data_bits r.table_bits r.table_area_um2
    r.multiplier_area_um2 r.ratio_pct
