(** Analytical area/power/frequency model for Section V-D.

    The paper synthesises the WN additions with Synopsys DC in TSMC
    65 nm and reports: Fmax 1.12 GHz (far above the 24 MHz operating
    point), +0.02% core area and +4% adder power for the seven
    carry-chain muxes of Figure 8, and a 16-entry memo table occupying
    40.5% of a 16×16 multiplier.  No synthesis flow is available here,
    so this module reproduces those numbers from first-order gate
    models with 65 nm constants (documented below); the structure —
    what is counted, and what it is normalised against — follows the
    paper. *)

type adder_report = {
  full_adders : int;  (** 32, one per datapath bit *)
  mux_count : int;  (** 7, one per 4-bit lane boundary (Figure 8) *)
  adder_gates : int;
  mux_gates : int;
  mux_area_um2 : float;
  core_area_um2 : float;  (** M0+ subsystem (core + memories), 65 nm *)
  area_overhead_pct : float;  (** paper: 0.02% *)
  adder_power_overhead_pct : float;  (** paper: 4% *)
  critical_path_ns : float;
  fmax_ghz : float;  (** paper: 1.12 GHz *)
  operating_mhz : float;  (** 24 MHz — the margin that makes the muxes free *)
}

val adder : unit -> adder_report

type memo_report = {
  entries : int;
  tag_bits : int;
  data_bits : int;
  table_bits : int;
  table_area_um2 : float;
  multiplier_area_um2 : float;
  ratio_pct : float;  (** paper: 40.5% of a 16×16 multiplier *)
}

val memo_table : ?entries:int -> ?operand_bits:int -> unit -> memo_report
(** Tag width follows the paper: both operands' bits minus the index
    bits (28 tag bits for 16-bit memoization with a 16-entry table). *)

val pp_adder : Format.formatter -> adder_report -> unit
val pp_memo : Format.formatter -> memo_report -> unit
