type format = { width : int; frac : int }

let make ~width ~frac =
  if frac < 0 || frac >= width || width > 32 then invalid_arg "Fixed.make";
  { width; frac }

let q8_8 = make ~width:16 ~frac:8
let q16_8 = make ~width:32 ~frac:8
let q24_8 = make ~width:32 ~frac:8

let scale fmt = float_of_int (1 lsl fmt.frac)

let max_signed fmt = (1 lsl (fmt.width - 1)) - 1
let min_signed fmt = -(1 lsl (fmt.width - 1))

let min_value fmt = float_of_int (min_signed fmt) /. scale fmt
let max_value fmt = float_of_int (max_signed fmt) /. scale fmt
let resolution fmt = 1.0 /. scale fmt

let of_float fmt x =
  let scaled = Float.round (x *. scale fmt) in
  let clamped =
    if scaled > float_of_int (max_signed fmt) then max_signed fmt
    else if scaled < float_of_int (min_signed fmt) then min_signed fmt
    else int_of_float scaled
  in
  Subword.of_signed ~bits:fmt.width clamped

let to_float fmt v =
  float_of_int (Subword.to_signed ~bits:fmt.width v) /. scale fmt

let of_int fmt n = of_float fmt (float_of_int n)

let mul fmt a b =
  let sa = Subword.to_signed ~bits:fmt.width a
  and sb = Subword.to_signed ~bits:fmt.width b in
  Subword.of_signed ~bits:fmt.width ((sa * sb) asr fmt.frac)

let add fmt a b =
  Subword.truncate ~bits:fmt.width
    (Subword.to_signed ~bits:fmt.width a + Subword.to_signed ~bits:fmt.width b)

let sub fmt a b =
  Subword.truncate ~bits:fmt.width
    (Subword.to_signed ~bits:fmt.width a - Subword.to_signed ~bits:fmt.width b)
