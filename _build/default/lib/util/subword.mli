(** Subword manipulation on machine words.

    The What's Next architecture processes data at subword granularity:
    a [w]-bit word is split into [w / bits] subwords of [bits] bits each,
    numbered from 0 (least significant) upward.  All values are unsigned
    bit patterns carried in OCaml [int]s; words are at most 32 bits. *)

val word_bits : int
(** Width of a full machine word (32). *)

val mask : int -> int
(** [mask bits] is the all-ones pattern of width [bits].
    Raises [Invalid_argument] unless [0 < bits <= 62]. *)

val truncate : bits:int -> int -> int
(** [truncate ~bits v] keeps the low [bits] bits of [v]. *)

val count : bits:int -> width:int -> int
(** [count ~bits ~width] is the number of [bits]-wide subwords in a
    [width]-bit word.  Raises [Invalid_argument] if [bits] does not divide
    [width]. *)

val extract : bits:int -> pos:int -> int -> int
(** [extract ~bits ~pos v] is the subword of width [bits] at position
    [pos] (0 = least significant) of [v]. *)

val insert : bits:int -> pos:int -> into:int -> int -> int
(** [insert ~bits ~pos ~into sub] replaces the subword at [pos] of [into]
    with the low [bits] bits of [sub]. *)

val split : bits:int -> width:int -> int -> int list
(** [split ~bits ~width v] lists the subwords of [v], most significant
    first — the order in which WN processes them. *)

val combine : bits:int -> int list -> int
(** [combine ~bits subs] reassembles subwords listed most significant
    first.  Inverse of {!split}. *)

val sign_extend : bits:int -> int -> int
(** [sign_extend ~bits v] interprets the low [bits] bits of [v] as a
    two's-complement value and returns it as an OCaml int. *)

val to_signed : bits:int -> int -> int
(** Alias for {!sign_extend}. *)

val of_signed : bits:int -> int -> int
(** [of_signed ~bits v] is the [bits]-wide two's-complement pattern of
    [v] (the inverse of {!to_signed} for in-range values). *)

val lanes_add : lane_bits:int -> width:int -> int -> int -> int
(** [lanes_add ~lane_bits ~width a b] adds [a] and [b] as vectors of
    independent [lane_bits]-wide lanes: carries do not propagate across
    lane boundaries.  This models the WN adder of Figure 8 whose
    carry-chain muxes inject zeroes at lane boundaries. *)

val lanes_sub : lane_bits:int -> width:int -> int -> int -> int
(** Lane-wise subtraction (borrows cut at lane boundaries). *)

val lanes_map2 : lane_bits:int -> width:int -> (int -> int -> int) -> int -> int -> int
(** [lanes_map2 ~lane_bits ~width f a b] applies [f] to each pair of
    lanes, truncating each result to the lane width. *)

val reconstruct_prefix : bits:int -> width:int -> taken:int -> int -> int
(** [reconstruct_prefix ~bits ~width ~taken v] keeps the [taken] most
    significant subwords of [v] and zeroes the rest: the approximate
    value available after processing [taken] subword stages. *)
