let word_bits = 32

let mask bits =
  if bits <= 0 || bits > 62 then invalid_arg "Subword.mask"
  else (1 lsl bits) - 1

let truncate ~bits v = v land mask bits

let count ~bits ~width =
  if bits <= 0 || width mod bits <> 0 then invalid_arg "Subword.count"
  else width / bits

let extract ~bits ~pos v = (v lsr (pos * bits)) land mask bits

let insert ~bits ~pos ~into sub =
  let m = mask bits lsl (pos * bits) in
  (into land lnot m) lor ((sub land mask bits) lsl (pos * bits))

let split ~bits ~width v =
  let n = count ~bits ~width in
  let rec loop pos acc =
    if pos >= n then acc
    else loop (pos + 1) (extract ~bits ~pos v :: acc)
  in
  (* Accumulating from position 0 upward and consing yields the
     most-significant-first order WN processes subwords in. *)
  loop 0 []

let combine ~bits subs =
  List.fold_left (fun acc sub -> (acc lsl bits) lor (sub land mask bits)) 0 subs

let sign_extend ~bits v =
  let v = truncate ~bits v in
  if v land (1 lsl (bits - 1)) <> 0 then v - (1 lsl bits) else v

let to_signed = sign_extend

let of_signed ~bits v = truncate ~bits v

let lanes_map2 ~lane_bits ~width f a b =
  let n = count ~bits:lane_bits ~width in
  let rec loop pos acc =
    if pos >= n then acc
    else
      let la = extract ~bits:lane_bits ~pos a
      and lb = extract ~bits:lane_bits ~pos b in
      let r = truncate ~bits:lane_bits (f la lb) in
      loop (pos + 1) (insert ~bits:lane_bits ~pos ~into:acc r)
  in
  loop 0 0

let lanes_add ~lane_bits ~width a b = lanes_map2 ~lane_bits ~width ( + ) a b
let lanes_sub ~lane_bits ~width a b = lanes_map2 ~lane_bits ~width ( - ) a b

let reconstruct_prefix ~bits ~width ~taken v =
  let n = count ~bits ~width in
  if taken < 0 || taken > n then invalid_arg "Subword.reconstruct_prefix";
  if taken = 0 then 0
  else
    let keep = taken * bits in
    let m = mask keep lsl (width - keep) in
    v land m
