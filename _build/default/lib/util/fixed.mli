(** Q-format fixed-point arithmetic.

    The paper's benchmarks were converted from floating point to fixed
    point "keeping the error between the two under 1%".  A format
    [make ~width ~frac] stores signed values in [width] bits with [frac]
    fractional bits (Q[(width - frac - 1)].[frac]). *)

type format = private { width : int; frac : int }

val make : width:int -> frac:int -> format
(** Raises [Invalid_argument] unless [0 <= frac < width <= 32]. *)

val q8_8 : format
(** 16-bit values with 8 fractional bits — the format of the 16-bit
    benchmarks (Conv2d, MatMul, Var). *)

val q16_8 : format
(** 32-bit values with 8 fractional bits — wide accumulators. *)

val q24_8 : format
(** 32-bit values with 8 fractional bits, alias used by 32-bit
    benchmarks (Home, NetMotion, MatAdd). *)

val of_float : format -> float -> int
(** Round-to-nearest conversion, saturating at the format's range. The
    result is the raw two's-complement bit pattern (unsigned int). *)

val to_float : format -> int -> float
(** Interpret a raw bit pattern in the given format. *)

val of_int : format -> int -> int
(** [of_int fmt n] is the pattern for the integer value [n]. *)

val mul : format -> int -> int -> int
(** Full-precision fixed-point multiply of two patterns: the product is
    rescaled by [frac] bits and truncated to the format width. *)

val add : format -> int -> int -> int
(** Wrapping fixed-point addition within the format width. *)

val sub : format -> int -> int -> int

val min_value : format -> float
val max_value : format -> float
val resolution : format -> float
(** Value of one least-significant bit. *)
