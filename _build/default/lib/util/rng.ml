type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
  r mod bound

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, uniform in [0, 1). *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let split t = { state = mix64 (next_int64 t) }
