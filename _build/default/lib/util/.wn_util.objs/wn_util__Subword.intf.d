lib/util/subword.mli:
