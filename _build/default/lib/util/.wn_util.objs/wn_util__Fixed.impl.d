lib/util/fixed.ml: Float Subword
