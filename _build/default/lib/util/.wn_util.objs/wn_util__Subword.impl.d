lib/util/subword.ml: List
