lib/util/fixed.mli:
