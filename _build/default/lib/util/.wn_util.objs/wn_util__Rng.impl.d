lib/util/rng.ml: Float Int64
