lib/util/stats.mli:
