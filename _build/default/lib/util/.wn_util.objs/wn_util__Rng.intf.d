lib/util/rng.mli:
