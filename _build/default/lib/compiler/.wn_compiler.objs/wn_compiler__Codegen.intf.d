lib/compiler/codegen.mli: Wn_isa Wn_lang
