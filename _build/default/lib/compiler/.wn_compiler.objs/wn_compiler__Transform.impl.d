lib/compiler/transform.ml: Ast Format Layout List Option Printf Sema Set String Vector_loads Wn_lang Wn_util
