lib/compiler/transform.mli: Layout Wn_lang
