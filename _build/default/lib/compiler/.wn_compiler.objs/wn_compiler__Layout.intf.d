lib/compiler/layout.mli: Format Wn_lang
