lib/compiler/compile.mli: Asm Format Instr Layout Wn_isa Wn_lang
