lib/compiler/codegen.ml: Asm Ast Cond Instr List Option Printf Reg Wn_isa Wn_lang
