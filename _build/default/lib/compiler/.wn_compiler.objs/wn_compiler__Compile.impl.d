lib/compiler/compile.ml: Asm Ast Codegen Encoding Instr Layout Lexer List Parser Printf Sema Transform Wn_isa Wn_lang
