lib/compiler/layout.ml: Array Bytes Char Format Int32 Subword Wn_lang Wn_util
