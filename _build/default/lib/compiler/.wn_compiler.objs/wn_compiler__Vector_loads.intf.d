lib/compiler/vector_loads.mli: Wn_lang
