lib/compiler/vector_loads.ml: Ast List Wn_lang
