(** Subword vectorization of the loads feeding anytime SWP — the
    Figure 12 study.

    When the pipelined input array is stored subword-major, each SWP
    replica only needs one plane, and a single 32-bit load fetches the
    same-significance subwords of [32 / bits] consecutive elements.
    [rewrite] finds the innermost loop of the (already fissioned and
    rewritten) replica whose body is a single accumulation

    {v acc += m * MUL_ASP-subword-of A[base + k] v}

    with [k] the loop variable, and unrolls it by one plane word: one
    [LDR] replaces [32 / bits] subword loads, and each lane is exposed
    to its MUL_ASP stage by a single shift (MUL_ASP truncates its
    operand, so no masking is needed). *)

val rewrite :
  geom:(string -> int * int) ->
  Wn_lang.Ast.stmt ->
  Wn_lang.Ast.stmt option
(** [geom arr] returns [(words_per_plane, bits)] for the subword-major
    array [arr].  Returns [None] when no loop in the statement matches
    the vectorizable shape. *)
