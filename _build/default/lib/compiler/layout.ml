open Wn_util

type t =
  | Row_major of { elem_bits : int; signed : bool }
  | Subword_major of {
      elem_bits : int;
      signed : bool;
      bits : int;
      lane_bits : int;
      count : int;
      biased : bool;
    }

let row_major ty =
  Row_major { elem_bits = Wn_lang.Ast.ty_bits ty; signed = Wn_lang.Ast.ty_signed ty }

let subword_major ?(biased = false) ~elem_bits ~signed ~bits ~lane_bits ~count
    () =
  if bits <= 0 || elem_bits mod bits <> 0 then
    invalid_arg "Layout.subword_major: bits must divide elem_bits";
  if lane_bits < bits || 32 mod lane_bits <> 0 then
    invalid_arg "Layout.subword_major: bad lane width";
  Subword_major { elem_bits; signed; bits; lane_bits; count; biased }

let planes = function
  | Row_major _ -> 1
  | Subword_major { elem_bits; bits; _ } -> elem_bits / bits

let lanes_per_word = function
  | Row_major _ -> 1
  | Subword_major { lane_bits; _ } -> 32 / lane_bits

let words_per_plane t ~count =
  match t with
  | Row_major _ -> invalid_arg "Layout.words_per_plane: row-major"
  | Subword_major _ ->
      let lpw = lanes_per_word t in
      (count + lpw - 1) / lpw

let elem_bits = function
  | Row_major { elem_bits; _ } | Subword_major { elem_bits; _ } -> elem_bits

let is_signed = function
  | Row_major { signed; _ } | Subword_major { signed; _ } -> signed

let storage_bytes t ~count =
  match t with
  | Row_major { elem_bits; _ } -> count * (elem_bits / 8)
  | Subword_major _ -> 4 * planes t * words_per_plane t ~count

let write_elem buf ~elem_bits addr v =
  match elem_bits with
  | 8 -> Bytes.set buf addr (Char.chr (v land 0xFF))
  | 16 -> Bytes.set_uint16_le buf addr (v land 0xFFFF)
  | 32 -> Bytes.set_int32_le buf addr (Int32.of_int v)
  | _ -> invalid_arg "Layout: element width"

let read_elem buf ~elem_bits addr =
  match elem_bits with
  | 8 -> Char.code (Bytes.get buf addr)
  | 16 -> Bytes.get_uint16_le buf addr
  | 32 -> Int32.to_int (Bytes.get_int32_le buf addr) land 0xFFFF_FFFF
  | _ -> invalid_arg "Layout: element width"

let encode t values =
  match t with
  | Row_major { elem_bits; _ } ->
      let buf = Bytes.make (Array.length values * (elem_bits / 8)) '\000' in
      Array.iteri
        (fun i v ->
          write_elem buf ~elem_bits (i * (elem_bits / 8))
            (Subword.truncate ~bits:elem_bits v))
        values;
      buf
  | Subword_major { elem_bits; bits; lane_bits; count; biased; _ } ->
      if Array.length values <> count then
        invalid_arg "Layout.encode: element count mismatch";
      let lpw = 32 / lane_bits in
      let wpp = (count + lpw - 1) / lpw in
      let n_planes = elem_bits / bits in
      let words = Array.make (n_planes * wpp) 0 in
      let bias = if biased then 1 lsl (elem_bits - 1) else 0 in
      Array.iteri
        (fun i v ->
          let v = Subword.truncate ~bits:elem_bits v lxor bias in
          for p = 0 to n_planes - 1 do
            let digit = (v lsr (p * bits)) land Subword.mask bits in
            let w = (p * wpp) + (i / lpw) and lane = i mod lpw in
            words.(w) <-
              Subword.insert ~bits:lane_bits ~pos:lane ~into:words.(w) digit
          done)
        values;
      let buf = Bytes.make (4 * Array.length words) '\000' in
      Array.iteri (fun w v -> Bytes.set_int32_le buf (4 * w) (Int32.of_int v)) words;
      buf

let decode t ~count buf =
  match t with
  | Row_major { elem_bits; _ } ->
      Array.init count (fun i -> read_elem buf ~elem_bits (i * (elem_bits / 8)))
  | Subword_major { elem_bits; bits; lane_bits; count = c; biased; _ } ->
      if count <> c then invalid_arg "Layout.decode: element count mismatch";
      let lpw = 32 / lane_bits in
      let wpp = (count + lpw - 1) / lpw in
      let n_planes = elem_bits / bits in
      let bias = if biased then 1 lsl (elem_bits - 1) else 0 in
      let word w = Int32.to_int (Bytes.get_int32_le buf (4 * w)) land 0xFFFF_FFFF in
      Array.init count (fun i ->
          let acc = ref 0 in
          for p = 0 to n_planes - 1 do
            let w = (p * wpp) + (i / lpw) and lane = i mod lpw in
            let digit = Subword.extract ~bits:lane_bits ~pos:lane (word w) in
            acc := (!acc + (digit lsl (p * bits))) land 0xFFFF_FFFF
          done;
          Subword.truncate ~bits:elem_bits !acc lxor bias)

let decode_signed t ~count buf =
  let patterns = decode t ~count buf in
  if is_signed t then
    Array.map (fun v -> Subword.to_signed ~bits:(elem_bits t) v) patterns
  else patterns

let pp ppf = function
  | Row_major { elem_bits; signed } ->
      Format.fprintf ppf "row-major %s%d" (if signed then "i" else "u") elem_bits
  | Subword_major { elem_bits; signed; bits; lane_bits; count; biased } ->
      Format.fprintf ppf "subword-major %s%d bits=%d lanes=%d count=%d%s"
        (if signed then "i" else "u")
        elem_bits bits lane_bits count
        (if biased then " biased" else "")
