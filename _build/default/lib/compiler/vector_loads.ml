open Wn_lang
open Ast

let log2_exact n =
  let rec go acc v = if v = 1 then Some acc else if v land 1 = 1 then None else go (acc + 1) (v / 2) in
  if n <= 0 then None else go 0 n

let mentions name e =
  let found = ref false in
  iter_expr (fun e -> match e with Var v when v = name -> found := true | _ -> ()) e;
  !found

let subst_var name repl e =
  map_expr (fun e -> match e with Var v when v = name -> repl | e -> e) e

(* The index must contain the loop variable as a plain additive term:
   [k], [base + k] or [k + base] with [base] invariant in [k]. *)
let additive_base ~var idx =
  match idx with
  | Var v when v = var -> Some (Int 0)
  | Binop (Add, base, Var v) when v = var && not (mentions var base) -> Some base
  | Binop (Add, Var v, base) when v = var && not (mentions var base) -> Some base
  | _ -> None

let try_loop ~geom (l : for_loop) =
  match l.body with
  | [ Aug_assign
        ( Lvar acc,
          Add,
          Mul_asp (m, Sub_load { sl_arr; sl_index; sl_shift }, spec) ) ]
    when l.step = 1 -> (
      let wpp, bits = geom sl_arr in
      let lpw = 32 / bits in
      match (l.lo, l.hi, additive_base ~var:l.var sl_index, log2_exact lpw) with
      | Int 0, Int n, Some _base, Some lg
        when n mod lpw = 0 && sl_shift mod bits = 0 ->
          let plane = sl_shift / bits in
          let word_index =
            Binop (Add, Int (plane * wpp), Binop (Shr, sl_index, Int lg))
          in
          let wv = "__wn_vw" in
          let lane stage =
            let m_l =
              if stage = 0 then m
              else subst_var l.var (Binop (Add, Var l.var, Int stage)) m
            in
            let sub =
              if stage = 0 then Var wv
              else Binop (Shr, Var wv, Int (stage * bits))
            in
            Aug_assign (Lvar acc, Add, Mul_asp (m_l, sub, spec))
          in
          Some
            (For
               {
                 l with
                 step = lpw;
                 body = Decl (wv, Load (sl_arr, word_index)) :: List.init lpw lane;
               })
      | _ -> None)
  | _ -> None

let rec rewrite ~geom stmt =
  match stmt with
  | For l -> (
      match rewrite_body ~geom l.body with
      | Some body -> Some (For { l with body })
      | None -> try_loop ~geom l)
  | If (c, a, b) -> (
      match rewrite_body ~geom a with
      | Some a -> Some (If (c, a, b))
      | None -> (
          match rewrite_body ~geom b with
          | Some b -> Some (If (c, a, b))
          | None -> None))
  | Decl _ | Assign _ | Aug_assign _ | Anytime _ | Skim_here -> None

and rewrite_body ~geom stmts =
  let changed = ref false in
  let stmts' =
    List.map
      (fun s ->
        if !changed then s
        else
          match rewrite ~geom s with
          | Some s' ->
              changed := true;
              s'
          | None -> s)
      stmts
  in
  if !changed then Some stmts' else None
