(** Memory layouts for kernel data.

    WN's subword vectorization transposes arrays to subword-major order
    (Figure 7): all elements' most significant subwords form one
    contiguous *plane*, then the next plane, and so on, so one 32-bit
    load fetches the same-significance subwords of several elements.
    Provisioned vectorization (Section III-B) widens each lane so
    carry-outs are not lost.

    A {!t} describes how an array of logical elements is stored; the
    encode/decode functions convert between logical element values
    (unsigned bit patterns of the element width) and raw storage bytes.
    The same description drives the compiler's address generation and
    the experiment harness's input encoding / output decoding. *)

type t =
  | Row_major of { elem_bits : int; signed : bool }
      (** Conventional little-endian layout. *)
  | Subword_major of {
      elem_bits : int;
      signed : bool;
      bits : int;  (** subword (digit) width *)
      lane_bits : int;  (** storage lane per digit; > [bits] when provisioned *)
      count : int;  (** number of logical elements *)
      biased : bool;
          (** offset-binary storage (pattern ⊕ top bit): used for signed
              reduction inputs so digit-plane partial sums reconstruct
              the true sum modulo 2^32 with no correction term *)
    }

val row_major : Wn_lang.Ast.ty -> t

val subword_major :
  ?biased:bool ->
  elem_bits:int ->
  signed:bool -> bits:int -> lane_bits:int -> count:int -> unit -> t
(** Raises [Invalid_argument] unless [bits] divides [elem_bits],
    [lane_bits >= bits] and [lane_bits] divides 32. *)

val planes : t -> int
(** Number of subword planes (1 for row-major). *)

val lanes_per_word : t -> int

val words_per_plane : t -> count:int -> int

val storage_bytes : t -> count:int -> int

val elem_bits : t -> int
val is_signed : t -> bool

val encode : t -> int array -> bytes
(** Element patterns (each truncated to the element width) to storage
    bytes. *)

val decode : t -> count:int -> bytes -> int array
(** Storage bytes back to element patterns.  For subword-major storage
    this reconstructs each element as [Σ lane << (plane * bits)] modulo
    2^32 truncated to the element width — so provisioned carry lanes
    fold back in exactly, and missing (still-zero) low planes yield the
    anytime approximation. *)

val decode_signed : t -> count:int -> bytes -> int array
(** Like {!decode} but sign-extends each element per the layout. *)

val pp : Format.formatter -> t -> unit
