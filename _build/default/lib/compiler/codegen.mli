(** WN-32 code generation from the (transformed) WNC AST.

    A deliberately simple compiler back end in the spirit of the
    2-stage M0+ target:
    - scalar locals and loop variables live in registers [r5]–[r11]
      (running out is a compile error — the paper's kernels are small);
    - expressions evaluate into the scratch registers [r0]–[r4] with a
      Sethi–Ullman-style recursive scheme;
    - [r12] is the address-materialisation temporary;
    - multiplications by power-of-two constants become shifts (the
      strength reduction the paper's [-O2] baseline would perform —
      without it, index arithmetic would swamp the data multiplies WN
      accelerates);
    - [Skim_here] lowers to [SKM __wn_end]; the generated program ends
      with the [__wn_end] label followed by [HALT], so a skim jump
      commits the task's current NVM state as-is. *)

exception Error of string

type input = {
  cg_body : Wn_lang.Ast.stmt list;
  cg_globals : (string * Wn_lang.Ast.global) list;  (** storage-level *)
  cg_addresses : (string * int) list;  (** byte address of each global *)
}

val generate : input -> Wn_isa.Asm.program
(** Raises {!Error} on register exhaustion, unsupported expression
    shapes (comparisons outside conditions, standalone internal forms)
    or references to unknown symbols. *)
