(** Induction-variable strength reduction over the WNC IR.

    Array indices that are affine in a loop variable —
    [idx = c*v + rest + k] with [c] a constant, [rest] a pure
    loop-invariant expression and [k] a constant — are rewritten to use
    a running {e byte-offset} induction variable:

    {v
      int32 __sr_iv0 = (rest + c*lo) * elem_bytes;
      for (v = lo; v < hi; v += step) {
        ... a[@__sr_iv0] ...          // Raw_off: no scale, no base add
        __sr_iv0 += c * step * elem_bytes;
      }
    v}

    which deletes the per-iteration index add, scale shift and base
    materialisation the code generator would otherwise emit.  Accesses
    sharing [(c, rest, elem_bytes)] share one induction variable; a
    per-access constant [k] survives as a [Raw_off (iv + k*eb)] offset
    the code generator folds into the materialised base address.

    Three refinements keep the win from costing registers it does not
    have:

    - {e loop-variable elimination}: when the loop variable is
      otherwise dead and the bounds are small constants, the primary
      induction variable {e becomes} the loop variable (bounds and step
      rescaled by [c*step*eb]), saving its register and increment;
    - {e single-use declaration inlining}: a pure declaration read only
      by induction-variable initialisers is substituted into them and
      deleted, freeing its register;
    - {e register budget}: the rewrite is attempted, the code
      generator's local-pool pressure is re-simulated exactly
      (including its name-reuse and block-scoping rules), and loops are
      dropped from the candidate set shallowest-first until the kernel
      fits the 7-register local pool again.  A kernel that already
      exceeds the pool is returned unchanged.

    All index arithmetic is 32-bit wrapping, so the incremental byte
    offset equals [idx * elem_bytes (mod 2^32)] exactly — bit-identical
    addresses to the unreduced code. *)

val pass_name : string
(** ["strength-reduce"] *)

val local_pool_size : int
(** Size of the code generator's local register pool (r5-r11): 7. *)

val max_locals : Wn_lang.Ast.stmt list -> int
(** Peak local-register pressure of a kernel body, simulated with the
    code generator's exact scoping and name-reuse rules.  Exposed for
    sibling passes ([Licm]) that must respect the same budget. *)

val iv_prefix : string
(** Name prefix of synthesised induction variables (["__sr_iv"]). *)

val run :
  globals:Wn_lang.Ast.global list ->
  Wn_lang.Ast.stmt list ->
  Wn_lang.Ast.stmt list
(** [run ~globals body] strength-reduces every loop of [body].
    [globals] must be the {e storage-level} globals (post
    [lower-anytime]), whose element widths scale the byte offsets. *)
