open Wn_isa
open Wn_lang
open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type input = {
  cg_body : stmt list;
  cg_globals : (string * global) list;
  cg_addresses : (string * int) list;
}

let end_label = "__wn_end"

let scratch = List.map Reg.r [ 0; 1; 2; 3; 4 ]
let local_pool = List.map Reg.r [ 5; 6; 7; 8; 9; 10; 11 ]
let addr_tmp = Reg.r 12

let u32 v = v land 0xFFFF_FFFF

let log2_exact n =
  let rec go acc v =
    if v = 1 then Some acc else if v land 1 = 1 then None else go (acc + 1) (v / 2)
  in
  if n <= 0 then None else go 0 n

type state = {
  input : input;
  mutable out : Asm.item list;  (** reversed *)
  mutable env : (string * Reg.t) list;
  mutable pool : Reg.t list;
  mutable next_label : int;
}

let emit st i = st.out <- Asm.I i :: st.out
let emit_label st l = st.out <- Asm.Label l :: st.out

let fresh_label st base =
  st.next_label <- st.next_label + 1;
  Printf.sprintf "L%d_%s" st.next_label base

let global_of st name =
  match List.assoc_opt name st.input.cg_globals with
  | Some g -> g
  | None -> err "codegen: unknown array %S" name

let address_of st name =
  match List.assoc_opt name st.input.cg_addresses with
  | Some a -> a
  | None -> err "codegen: no address for %S" name

let lookup_local st name = List.assoc_opt name st.env

let local_reg st name =
  match lookup_local st name with
  | Some r -> r
  | None -> err "codegen: undefined variable %S" name

let alloc_local st name =
  match st.pool with
  | [] -> err "codegen: out of registers for local %S" name
  | r :: rest ->
      st.pool <- rest;
      st.env <- (name, r) :: st.env;
      r

(* Scopes: remember the environment depth, restore it (returning the
   registers of everything declared since) when the block closes. *)
let enter_scope st = List.length st.env

let leave_scope st mark =
  let rec drop env =
    if List.length env = mark then env
    else
      match env with
      | (_, r) :: rest ->
          st.pool <- r :: st.pool;
          drop rest
      | [] -> assert false
  in
  st.env <- drop st.env

let emit_const st dest n =
  let pattern = u32 n in
  let lo = pattern land 0xFFFF and hi = pattern lsr 16 in
  emit st (Instr.Mov_imm (dest, lo));
  if hi <> 0 then emit st (Instr.Movt (dest, hi))

let elem_width ty : Instr.width =
  match ty_bytes ty with 1 -> Instr.Byte | 2 -> Instr.Half | _ -> Instr.Word

let scale_shift ty = match ty_bytes ty with 1 -> 0 | 2 -> 1 | _ -> 2

(* Split a [Raw_off] payload into its static byte offset and dynamic
   part.  The static part folds into the materialised base address, so
   [a[@(iv + 8)]] costs exactly what [a[@iv]] costs. *)
let raw_parts = function
  | Int k -> (k, None)
  | Var _ as v -> (0, Some v)
  | Binop (Add, (Var _ as v), Int k) | Binop (Add, Int k, (Var _ as v)) ->
      (k, Some v)
  | e -> (0, Some e)

(* Load arr[idx-already-in-reg] into [reg]: scale the index, point
   [addr_tmp] at the base, and use register-offset addressing.
   [addr_tmp]'s liveness never spans an [eval], so nesting is safe. *)
let emit_indexed_load st ~signed_override g base_addr reg =
  let signed = match signed_override with Some s -> s | None -> ty_signed g.g_ty in
  let sh = scale_shift g.g_ty in
  if sh > 0 then emit st (Instr.Shift (Instr.Lsl, reg, reg, sh));
  emit_const st addr_tmp base_addr;
  emit st
    (Instr.Ldr_reg { width = elem_width g.g_ty; signed; rd = reg; base = addr_tmp; idx = reg })

let rec eval st e dest rest =
  match e with
  | Int n -> emit_const st dest n
  | Var v -> emit st (Instr.Mov (dest, local_reg st v))
  | Load (arr, Int n) ->
      let g = global_of st arr in
      let addr = address_of st arr + (n * ty_bytes g.g_ty) in
      emit_const st dest addr;
      emit st
        (Instr.Ldr
           { width = elem_width g.g_ty; signed = ty_signed g.g_ty; rd = dest;
             base = dest; off = 0 })
  | Load (arr, Raw_off off) -> (
      (* the index is already a byte offset: no scale shift, and any
         static part rides along in the materialised base address *)
      let g = global_of st arr in
      let width = elem_width g.g_ty and signed = ty_signed g.g_ty in
      match raw_parts off with
      | k, None ->
          emit_const st dest (u32 (address_of st arr + k));
          emit st (Instr.Ldr { width; signed; rd = dest; base = dest; off = 0 })
      | k, Some (Var v) ->
          emit_const st addr_tmp (u32 (address_of st arr + k));
          emit st
            (Instr.Ldr_reg
               { width; signed; rd = dest; base = addr_tmp; idx = local_reg st v })
      | k, Some off ->
          eval st off dest rest;
          emit_const st addr_tmp (u32 (address_of st arr + k));
          emit st
            (Instr.Ldr_reg { width; signed; rd = dest; base = addr_tmp; idx = dest }))
  | Load (arr, idx) ->
      let g = global_of st arr in
      eval st idx dest rest;
      emit_indexed_load st ~signed_override:None g (address_of st arr) dest
  | Neg a -> eval st (Binop (Sub, Int 0, a)) dest rest
  | Bnot a -> eval st (Binop (Xor, a, Int 0xFFFF_FFFF)) dest rest
  | Binop (op, a, b) -> eval_binop st op a b dest rest
  | Sub_load _ -> err "codegen: subword load outside MUL_ASP"
  | Raw_off _ -> err "codegen: raw byte offset outside an array index"
  | Mul_asp
      (Load (a1, i1), Sub_load { sl_arr; sl_index; sl_shift }, spec)
    when a1 = sl_arr && i1 = sl_index ->
      (* x·x: the multiplicand and the subword source are the same
         element — load once and expose the subword with one shift. *)
      eval st (Load (a1, i1)) dest rest;
      let t, rest' = take_temp rest in
      ignore rest';
      if sl_shift > 0 then emit st (Instr.Shift (Instr.Lsr, t, dest, sl_shift))
      else emit st (Instr.Mov (t, dest));
      emit st
        (Instr.Mul_asp
           { bits = spec.asp_bits; signed = spec.asp_signed; rd = dest;
             rn = t; shift = spec.asp_shift })
  | Mul_asp (m, sub, spec) ->
      eval st m dest rest;
      let t, rest' = take_temp rest in
      eval_subword st sub spec t rest';
      emit st
        (Instr.Mul_asp
           { bits = spec.asp_bits; signed = spec.asp_signed; rd = dest;
             rn = t; shift = spec.asp_shift })
  | Sqrt a ->
      eval st a dest rest;
      emit st (Instr.Sqrt (dest, dest))
  | Sqrt_asp (a, bits) ->
      eval st a dest rest;
      emit st (Instr.Sqrt_asp { bits; rd = dest; rn = dest })
  | Asv_op (op, lane, a, b) ->
      eval st a dest rest;
      let t, rest' = take_temp rest in
      eval st b t rest';
      (match (op, lane) with
      | Add, 32 -> emit st (Instr.Alu (Instr.Add, dest, dest, t))
      | Sub, 32 -> emit st (Instr.Alu (Instr.Sub, dest, dest, t))
      | Add, w -> emit st (Instr.Add_asv (w, dest, dest, t))
      | Sub, w -> emit st (Instr.Sub_asv (w, dest, dest, t))
      | And, _ -> emit st (Instr.Alu (Instr.And, dest, dest, t))
      | Or, _ -> emit st (Instr.Alu (Instr.Orr, dest, dest, t))
      | Xor, _ -> emit st (Instr.Alu (Instr.Eor, dest, dest, t))
      | (Mul | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge), _ ->
          err "codegen: unsupported vector operator")

and take_temp = function
  | t :: rest -> (t, rest)
  | [] -> err "codegen: expression too deep"

and eval_binop st op a b dest rest =
  let alu_op : Instr.alu_op option =
    match op with
    | Add -> Some Instr.Add
    | Sub -> Some Instr.Sub
    | And -> Some Instr.And
    | Or -> Some Instr.Orr
    | Xor -> Some Instr.Eor
    | Mul | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge -> None
  in
  match (op, a, b) with
  | _, _, _ when is_comparison op -> err "codegen: comparison outside condition"
  | (Shl | Shr), Var v, Int n when n >= 0 && n < 32 ->
      let sop = if op = Shl then Instr.Lsl else Instr.Asr in
      if n > 0 then emit st (Instr.Shift (sop, dest, local_reg st v, n))
      else emit st (Instr.Mov (dest, local_reg st v))
  | (Shl | Shr), a, Int n when n >= 0 && n < 32 ->
      eval st a dest rest;
      let sop = if op = Shl then Instr.Lsl else Instr.Asr in
      if n > 0 then emit st (Instr.Shift (sop, dest, dest, n))
  | (Shl | Shr), _, _ -> err "codegen: shift amount must be constant"
  (* Register-direct operand forms — what any -O2 back end emits.
     Without them, index arithmetic would swamp the data multiplies WN
     accelerates. *)
  | Mul, Var va, Var vb ->
      emit st (Instr.Mul (dest, local_reg st va, local_reg st vb))
  | _, Var va, Var vb when alu_op <> None ->
      emit st
        (Instr.Alu (Option.get alu_op, dest, local_reg st va, local_reg st vb))
  | _, Var va, Int n when alu_op <> None && n >= 0 && n <= 0xFFF ->
      emit st (Instr.Alu_imm (Option.get alu_op, dest, local_reg st va, n))
  | Add, Int n, Var vb when n >= 0 && n <= 0xFFF ->
      emit st (Instr.Alu_imm (Instr.Add, dest, local_reg st vb, n))
  | _, Var va, b when alu_op <> None ->
      eval st b dest rest;
      emit st (Instr.Alu (Option.get alu_op, dest, local_reg st va, dest))
  | _, a, Var vb when alu_op <> None ->
      eval st a dest rest;
      emit st (Instr.Alu (Option.get alu_op, dest, dest, local_reg st vb))
  | Mul, Load (a1, i1), Load (a2, i2) when a1 = a2 && i1 = i2 ->
      (* x·x: load once, square. *)
      eval st (Load (a1, i1)) dest rest;
      emit st (Instr.Mul (dest, dest, dest))
  | Mul, a, Int n when log2_exact n <> None -> (
      eval st a dest rest;
      match log2_exact n with
      | Some 0 -> ()
      | Some sh -> emit st (Instr.Shift (Instr.Lsl, dest, dest, sh))
      | None -> assert false)
  | Mul, Int n, a when log2_exact n <> None -> (
      eval st a dest rest;
      match log2_exact n with
      | Some 0 -> ()
      | Some sh -> emit st (Instr.Shift (Instr.Lsl, dest, dest, sh))
      | None -> assert false)
  | Mul, a, b ->
      eval st a dest rest;
      let t, rest' = take_temp rest in
      eval st b t rest';
      emit st (Instr.Mul (dest, dest, t))
  | _, a, Int n when alu_op <> None && n >= 0 && n <= 0xFFF ->
      eval st a dest rest;
      emit st (Instr.Alu_imm (Option.get alu_op, dest, dest, n))
  | Add, Int n, b when n >= 0 && n <= 0xFFF ->
      eval st b dest rest;
      emit st (Instr.Alu_imm (Instr.Add, dest, dest, n))
  | _, a, b ->
      eval st a dest rest;
      let t, rest' = take_temp rest in
      eval st b t rest';
      emit st (Instr.Alu (Option.get alu_op, dest, dest, t))

(* Load the subword operand of a MUL_ASP into [t].  A Sub_load becomes
   a single byte load when the subword sits within one byte of its
   element (as in the paper's Listing 2, where LDRB replaces LDR), and
   an element load plus one shift otherwise; the residual high bits are
   truncated by MUL_ASP itself, so no masking is emitted. *)
and eval_subword st sub spec t rest =
  match sub with
  | Sub_load { sl_arr; sl_index; sl_shift } ->
      let g = global_of st sl_arr in
      let base = address_of st sl_arr in
      let byte_off = sl_shift / 8 and residual = sl_shift mod 8 in
      if residual + spec.asp_bits <= 8 then begin
        let load_at_t () =
          emit st
            (Instr.Ldr
               { width = Instr.Byte; signed = false; rd = t; base = t; off = 0 })
        in
        let load_indexed idx_reg k =
          emit_const st addr_tmp (u32 (base + byte_off + k));
          emit st
            (Instr.Ldr_reg
               { width = Instr.Byte; signed = false; rd = t; base = addr_tmp;
                 idx = idx_reg })
        in
        (match sl_index with
        | Int n ->
            emit_const st t (base + (n * ty_bytes g.g_ty) + byte_off);
            load_at_t ()
        | Raw_off off -> (
            (* byte offset already scaled: the subword's byte rides on
               the same register the element accesses index with *)
            match raw_parts off with
            | k, None ->
                emit_const st t (u32 (base + byte_off + k));
                load_at_t ()
            | k, Some (Var v) -> load_indexed (local_reg st v) k
            | k, Some off ->
                eval st off t rest;
                load_indexed t k)
        | idx ->
            eval st idx t rest;
            let sh = scale_shift g.g_ty in
            if sh > 0 then emit st (Instr.Shift (Instr.Lsl, t, t, sh));
            if byte_off > 0 then
              emit st (Instr.Alu_imm (Instr.Add, t, t, byte_off));
            emit_const st addr_tmp base;
            emit st (Instr.Alu (Instr.Add, t, addr_tmp, t));
            load_at_t ());
        if residual > 0 then emit st (Instr.Shift (Instr.Lsr, t, t, residual))
      end
      else begin
        eval st (Load (sl_arr, sl_index)) t rest;
        if sl_shift > 0 then emit st (Instr.Shift (Instr.Lsr, t, t, sl_shift))
      end
  | e -> eval st e t rest

let negate_cond : binop -> Cond.t = function
  | Eq -> Cond.Ne
  | Ne -> Cond.Eq
  | Lt -> Cond.Ge
  | Ge -> Cond.Lt
  | Gt -> Cond.Le
  | Le -> Cond.Gt
  | _ -> err "codegen: condition must be a comparison"

let r0 = Reg.r 0
let r1 = Reg.r 1
let r2 = Reg.r 2

let rest_after rs = List.filter (fun r -> not (List.memq r rs)) scratch

(* Emit flag-setting code for a comparison, then branch on its negation
   to [target]. *)
let emit_cond_branch st cond ~negated_to:target =
  match cond with
  | Binop (op, a, b) when is_comparison op ->
      eval st a r0 (rest_after [ r0 ]);
      (match b with
      | Int n when n >= 0 && n <= 0xFFFF -> emit st (Instr.Cmp_imm (r0, n))
      | Var v -> emit st (Instr.Cmp (r0, local_reg st v))
      | b ->
          eval st b r1 (rest_after [ r0; r1 ]);
          emit st (Instr.Cmp (r0, r1)));
      emit st (Instr.B (negate_cond op, target))
  | _ -> err "codegen: condition must be a comparison"

let rec gen_stmt st stmt =
  match stmt with
  | Decl (name, e) -> (
      let reads_self = ref false in
      iter_expr
        (fun e -> match e with Var x when x = name -> reads_self := true | _ -> ())
        e;
      match lookup_local st name with
      | Some r when not !reads_self ->
          (* Loop fission replicates declarations; re-declaration in the
             same scope reuses the register, and the initialiser can
             evaluate straight into it. *)
          eval st e r (rest_after [])
      | Some r ->
          eval st e r0 (rest_after [ r0 ]);
          emit st (Instr.Mov (r, r0))
      | None ->
          if !reads_self then ignore (local_reg st name);
          let r = alloc_local st name in
          eval st e r (rest_after []))
  | Assign (Lvar v, e) -> (
      let rv = local_reg st v in
      let mentions_v e =
        let found = ref false in
        iter_expr
          (fun e -> match e with Var x when x = v -> found := true | _ -> ())
          e;
        !found
      in
      match e with
      (* v := ASV(v, e2) — lane-parallel accumulate in place. *)
      | Asv_op (op, lane, Var x, e2) when x = v && not (mentions_v e2) ->
          eval st e2 r0 (rest_after [ r0 ]);
          (match (op, lane) with
          | Add, 32 -> emit st (Instr.Alu (Instr.Add, rv, rv, r0))
          | Sub, 32 -> emit st (Instr.Alu (Instr.Sub, rv, rv, r0))
          | Add, w -> emit st (Instr.Add_asv (w, rv, rv, r0))
          | Sub, w -> emit st (Instr.Sub_asv (w, rv, rv, r0))
          | And, _ -> emit st (Instr.Alu (Instr.And, rv, rv, r0))
          | Or, _ -> emit st (Instr.Alu (Instr.Orr, rv, rv, r0))
          | Xor, _ -> emit st (Instr.Alu (Instr.Eor, rv, rv, r0))
          | (Mul | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge), _ ->
              err "codegen: unsupported vector operator")
      (* v := v op e2 — accumulate in place, no copies. *)
      | Binop (op, Var x, e2)
        when x = v && (not (is_comparison op)) && op <> Mul && op <> Shl
             && op <> Shr && not (mentions_v e2) ->
          let alu : Instr.alu_op =
            match op with
            | Add -> Instr.Add | Sub -> Instr.Sub | And -> Instr.And
            | Or -> Instr.Orr | Xor -> Instr.Eor
            | Mul | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge -> assert false
          in
          (match e2 with
          | Int n when n >= 0 && n <= 0xFFF ->
              emit st (Instr.Alu_imm (alu, rv, rv, n))
          | Var y -> emit st (Instr.Alu (alu, rv, rv, local_reg st y))
          | e2 ->
              eval st e2 r0 (rest_after [ r0 ]);
              emit st (Instr.Alu (alu, rv, rv, r0)))
      (* e never reads v: evaluate straight into v's register. *)
      | e when not (mentions_v e) -> eval st e rv (rest_after [])
      | e ->
          eval st e r0 (rest_after [ r0 ]);
          emit st (Instr.Mov (rv, r0)))
  | Assign (Larr (arr, idx), e) ->
      let g = global_of st arr in
      let width = elem_width g.g_ty in
      eval st e r0 (rest_after [ r0 ]);
      (match idx with
      | Int n ->
          emit_const st r1 (address_of st arr + (n * ty_bytes g.g_ty));
          emit st (Instr.Str { width; rs = r0; base = r1; off = 0 })
      | Raw_off off -> (
          match raw_parts off with
          | k, None ->
              emit_const st r1 (u32 (address_of st arr + k));
              emit st (Instr.Str { width; rs = r0; base = r1; off = 0 })
          | k, Some (Var v) ->
              emit_const st addr_tmp (u32 (address_of st arr + k));
              emit st
                (Instr.Str_reg
                   { width; rs = r0; base = addr_tmp; idx = local_reg st v })
          | k, Some off ->
              eval st off r1 (rest_after [ r0; r1 ]);
              emit_const st addr_tmp (u32 (address_of st arr + k));
              emit st (Instr.Str_reg { width; rs = r0; base = addr_tmp; idx = r1 }))
      | idx ->
          eval st idx r1 (rest_after [ r0; r1 ]);
          let sh = scale_shift g.g_ty in
          if sh > 0 then emit st (Instr.Shift (Instr.Lsl, r1, r1, sh));
          emit_const st addr_tmp (address_of st arr);
          emit st (Instr.Str_reg { width; rs = r0; base = addr_tmp; idx = r1 }))
  | Aug_assign (Larr (arr, idx), op, e)
    when (match op with Add | Sub | And | Or | Xor -> true | _ -> false) ->
      (* a[i] op= e — one address computation feeding both the load and
         the store.  The desugared form (a[i] = a[i] op e) evaluated the
         index and re-materialised the base address twice per statement;
         keeping the address in place halves the addressing work of
         every accumulation into memory. *)
      let g = global_of st arr in
      let width = elem_width g.g_ty and signed = ty_signed g.g_ty in
      let alu : Instr.alu_op =
        match op with
        | Add -> Instr.Add | Sub -> Instr.Sub | And -> Instr.And
        | Or -> Instr.Orr | Xor -> Instr.Eor
        | Mul | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge -> assert false
      in
      let rmw_at_reg addr_reg =
        emit st (Instr.Ldr { width; signed; rd = r2; base = addr_reg; off = 0 });
        emit st (Instr.Alu (alu, r2, r2, r0));
        emit st (Instr.Str { width; rs = r2; base = addr_reg; off = 0 })
      in
      let rmw_indexed idx_reg =
        emit st
          (Instr.Ldr_reg { width; signed; rd = r2; base = addr_tmp; idx = idx_reg });
        emit st (Instr.Alu (alu, r2, r2, r0));
        emit st
          (Instr.Str_reg { width; rs = r2; base = addr_tmp; idx = idx_reg })
      in
      eval st e r0 (rest_after [ r0 ]);
      (match idx with
      | Int n ->
          emit_const st r1 (u32 (address_of st arr + (n * ty_bytes g.g_ty)));
          rmw_at_reg r1
      | Raw_off off -> (
          match raw_parts off with
          | k, None ->
              emit_const st r1 (u32 (address_of st arr + k));
              rmw_at_reg r1
          | k, Some (Var v) ->
              emit_const st addr_tmp (u32 (address_of st arr + k));
              rmw_indexed (local_reg st v)
          | k, Some off ->
              eval st off r1 (rest_after [ r0; r1 ]);
              emit_const st addr_tmp (u32 (address_of st arr + k));
              rmw_indexed r1)
      | idx ->
          eval st idx r1 (rest_after [ r0; r1 ]);
          let sh = scale_shift g.g_ty in
          if sh > 0 then emit st (Instr.Shift (Instr.Lsl, r1, r1, sh));
          emit_const st addr_tmp (address_of st arr);
          rmw_indexed r1)
  | Aug_assign (lhs, op, e) ->
      let current =
        match lhs with Lvar v -> Var v | Larr (a, i) -> Load (a, i)
      in
      gen_stmt st (Assign (lhs, Binop (op, current, e)))
  | For l -> gen_for st l
  | If (cond, then_blk, []) ->
      let l_end = fresh_label st "endif" in
      emit_cond_branch st cond ~negated_to:l_end;
      gen_block st then_blk;
      emit_label st l_end
  | If (cond, then_blk, else_blk) ->
      let l_else = fresh_label st "else" in
      let l_end = fresh_label st "endif" in
      emit_cond_branch st cond ~negated_to:l_else;
      gen_block st then_blk;
      emit st (Instr.B (Cond.Al, l_end));
      emit_label st l_else;
      gen_block st else_blk;
      emit_label st l_end
  | Anytime { body; commit } ->
      (* Precise build: the region runs once, straight through; body
         and commit share a scope so prelude locals stay visible. *)
      let mark = enter_scope st in
      List.iter (gen_stmt st) body;
      List.iter (gen_stmt st) commit;
      leave_scope st mark
  | Skim_here -> emit st (Instr.Skm end_label)

and gen_block st stmts =
  let mark = enter_scope st in
  List.iter (gen_stmt st) stmts;
  leave_scope st mark

and gen_for st l =
  (* Rotated loop: the condition is tested at the bottom, so each
     iteration pays one compare and one taken branch. *)
  let mark = enter_scope st in
  let rv = alloc_local st l.var in
  eval st l.lo rv (rest_after []);
  let l_body = fresh_label st ("for_" ^ l.var) in
  let l_check = fresh_label st ("forchk_" ^ l.var) in
  emit st (Instr.B (Cond.Al, l_check));
  emit_label st l_body;
  gen_block st l.body;
  emit st (Instr.Alu_imm (Instr.Add, rv, rv, l.step));
  emit_label st l_check;
  (match l.hi with
  | Int n when n >= 0 && n <= 0xFFFF -> emit st (Instr.Cmp_imm (rv, n))
  | Var v -> emit st (Instr.Cmp (rv, local_reg st v))
  | hi ->
      eval st hi r0 (rest_after [ r0 ]);
      emit st (Instr.Cmp (rv, r0)));
  emit st (Instr.B (Cond.Lt, l_body));
  leave_scope st mark

let generate input =
  let st =
    { input; out = []; env = []; pool = local_pool; next_label = 0 }
  in
  List.iter (gen_stmt st) input.cg_body;
  emit_label st end_label;
  emit st Instr.Halt;
  List.rev st.out
