(** Loop-invariant code motion over the WNC IR.

    Two motions, both conservative:

    - {e declaration hoisting}: a pure declaration at the top level of
      a loop body whose free variables (and the declared name itself)
      are written nowhere in the body is moved in front of the loop, so
      it evaluates once per loop entry instead of once per iteration;
    - {e bound hoisting}: a loop bound that is neither a literal nor a
      plain variable — which the code generator would otherwise
      re-evaluate on every back-edge — is computed once into a fresh
      variable when it is pure and invariant.  (A bound that reads
      variables the body writes is semantically re-evaluated each
      iteration, per the interpreter, and is left alone.)

    Hoisting extends live ranges, so each motion is kept only if the
    code generator's simulated local-pool pressure stays within budget
    ({!Strength_reduce.local_pool_size}). *)

val pass_name : string
(** ["licm"] *)

val run : Wn_lang.Ast.stmt list -> Wn_lang.Ast.stmt list
