(** Compilation driver: WNC source → WN-32 machine program.

    The middle of the pipeline is an explicit, named, ordered list of
    passes.  IR-level passes rewrite the kernel body
    ([stmt list -> stmt list]); assembly-level passes rewrite the
    generated program ([Asm.program -> Asm.program]).  After {e every}
    pass its output is linted — {!Wn_analysis.Ircheck} for IR,
    {!Wn_analysis.Check} for assembly — so a pass that breaks an
    invariant is blamed by name with its complete findings.

    Pipeline order:
    + [lower-anytime] — SWP / SWV / skim insertion per pragmas
      ({!Transform}), or plain lowering for the precise baseline;
    + [constfold] — 32-bit constant folding ({!Constfold});
    + [strength-reduce] — byte-offset induction variables for affine
      array indices ({!Strength_reduce});
    + [licm] — loop-invariant declaration and bound hoisting ({!Licm});
    + [codegen] — address assignment and code generation ({!Codegen});
    + [addr-cse] — redundant base-address rematerialisation removal
      over the assembly ({!Addr_cse}).

    then assembly and binary encoding (the encoder/decoder round-trip
    doubles as a self-check), and a final full lint including the
    forward-progress (WCEC) analysis. *)

open Wn_isa

type mode = Precise | Anytime

type passes = {
  constfold : bool;
  strength_reduce : bool;
  licm : bool;
  addr_cse : bool;
}
(** Optimizer-pass toggles.  [lower-anytime] and [codegen] are not
    optional — they are the pipeline's spine. *)

val all_passes : passes
val no_passes : passes

type options = {
  mode : mode;
  vector_loads : bool;  (** Figure 12: vectorize SWP's subword loads *)
  passes : passes;
}

val precise : options
val anytime : options
val anytime_vector_loads : options
(** The presets enable every optimizer pass. *)

val pass_names : options -> string list
(** The pipeline, in execution order, for these options — the names
    [--dump-after] and pass-blamed errors use. *)

type symbol = {
  sym_global : Wn_lang.Ast.global;  (** source-level type and count *)
  sym_addr : int;
  sym_layout : Layout.t;
}

type t = {
  source : Wn_lang.Ast.program;
  info : Wn_lang.Sema.info;
  options : options;
  asm : Asm.program;
  program : int Instr.t array;
  machine_code : int32 array;
  symbols : (string * symbol) list;  (** source-level globals only *)
  storage : (string * int * int) list;
      (** every storage-level global the code addresses — including
          transform-introduced arrays — as (name, address, bytes) *)
  data_bytes : int;  (** size of the data segment *)
  dumps : (string * string) list;
      (** (pass, printed output) snapshots requested via [dump_after] *)
}

exception Error of string
(** Any front-end, pass or back-end failure.  Pass failures are
    prefixed ["pass <name>: "] with the originating pass's name and, for
    lint failures under [strict], the complete findings of the first
    failing pass. *)

val compile :
  ?options:options -> ?strict:bool -> ?dump_after:string ->
  Wn_lang.Ast.program -> t
(** Compiles, linting after every pass and running the full
    {!Wn_analysis} static verifier over the final program as a
    self-check.  Diagnostics print to stderr as warnings by default;
    with [strict:true] any error-severity finding raises {!Error}
    naming the first failing pass (stage ["verify"] for the final full
    lint).  [dump_after] records the named pass's output in {!t.dumps}
    (IR passes print as statements, assembly passes as a listing);
    unknown names raise (stage ["dump-after"]). *)

val compile_source :
  ?options:options -> ?strict:bool -> ?dump_after:string -> string -> t

val lint : t -> Wn_analysis.Diag.t list
(** Static-verifier diagnostics for an already-compiled program, using
    its full storage-level symbol table.  Includes the forward-progress
    (WCEC) findings of {!verify} at the default Clank runtime and
    default capacitor. *)

val verify :
  ?runtime:Wn_analysis.Progress.runtime ->
  ?budget:float ->
  ?cycle_energy:float ->
  t ->
  Wn_analysis.Progress.report
(** Forward-progress WCEC report for the compiled program (defaults as
    in {!Wn_analysis.Progress.analyze}). *)

val symbol : t -> string -> symbol
(** Raises {!Error} for unknown names. *)

val code_size_bytes : t -> int

val pp_listing : Format.formatter -> t -> unit
