(** Compilation driver: WNC source → WN-32 machine program.

    Pipeline: parse → semantic analysis → WN transformation (SWP / SWV /
    skim insertion per pragmas, or none for the precise baseline) →
    address assignment → code generation → assembly → binary encoding
    (the encoder/decoder round-trip doubles as a self-check). *)

open Wn_isa

type mode = Precise | Anytime

type options = {
  mode : mode;
  vector_loads : bool;  (** Figure 12: vectorize SWP's subword loads *)
}

val precise : options
val anytime : options
val anytime_vector_loads : options

type symbol = {
  sym_global : Wn_lang.Ast.global;  (** source-level type and count *)
  sym_addr : int;
  sym_layout : Layout.t;
}

type t = {
  source : Wn_lang.Ast.program;
  info : Wn_lang.Sema.info;
  options : options;
  asm : Asm.program;
  program : int Instr.t array;
  machine_code : int32 array;
  symbols : (string * symbol) list;  (** source-level globals only *)
  storage : (string * int * int) list;
      (** every storage-level global the code addresses — including
          transform-introduced arrays — as (name, address, bytes) *)
  data_bytes : int;  (** size of the data segment *)
}

exception Error of string
(** Any front-end, transform or back-end failure, wrapped with its
    stage. *)

val compile : ?options:options -> ?strict:bool -> Wn_lang.Ast.program -> t
(** Compiles and then runs the {!Wn_analysis} static verifier over the
    generated program as a self-check.  Diagnostics print to stderr as
    warnings by default; with [strict:true] any error-severity finding
    raises {!Error} (stage ["verify"]). *)

val compile_source : ?options:options -> ?strict:bool -> string -> t

val lint : t -> Wn_analysis.Diag.t list
(** Static-verifier diagnostics for an already-compiled program, using
    its full storage-level symbol table.  Includes the forward-progress
    (WCEC) findings of {!verify} at the default Clank runtime and
    default capacitor. *)

val verify :
  ?runtime:Wn_analysis.Progress.runtime ->
  ?budget:float ->
  ?cycle_energy:float ->
  t ->
  Wn_analysis.Progress.report
(** Forward-progress WCEC report for the compiled program (defaults as
    in {!Wn_analysis.Progress.analyze}). *)

val symbol : t -> string -> symbol
(** Raises {!Error} for unknown names. *)

val code_size_bytes : t -> int

val pp_listing : Format.formatter -> t -> unit
