(** The What's Next compiler passes (Algorithm 1 of the paper).

    [apply] rewrites each [anytime { body } commit { ... }] region of a
    kernel according to the program's pragmas:

    {b Anytime subword pipelining} (asp pragmas, Section III-A): the
    region's top-level loop is fissioned into one replica per subword,
    most significant first.  In replica [p], multiplications by an
    annotated array element become [Mul_asp] stages over that element's
    subword [p].  Statements that do not feed the pipelined
    multiplication (e.g. an exact running sum sharing the loop) run only
    in the first replica.  The [commit] block re-runs after every
    replica so the best-so-far output is materialised in memory, and a
    skim point ([Skim_here] → [SKM]) follows every non-final replica.

    {b Anytime subword vectorization} (asv pragmas, Section III-B): the
    annotated arrays are re-laid-out in subword-major order (Figure 7)
    and the loop is rewritten to sweep one subword *plane* at a time,
    most significant first, processing [32 / lane] elements per
    [ADD_ASV]/[SUB_ASV] (or plain logical op, which is lane-safe).  Two
    shapes are recognised:
    - {e element-wise}: [X[i] = A[i] op B[i]] (or a copy) — MatAdd's
      shape; provisioned operands get double-width lanes so carry-outs
      are kept and the precise result is reached (Figure 14);
    - {e reduction}: [s += A[i]] accumulators — Home's and NetMotion's
      shape; lane-parallel partial sums are banked per plane into a
      synthesised non-volatile array and the [commit] block's uses of
      [s] are replaced by the exact reconstruction
      [Σ plane_p << (p·bits)].  Reductions require [provisioned] and
      use at least 16-bit lanes so banked partial sums cannot overflow
      for the supported element counts.

    In [`Precise] mode the anytime regions are left for the code
    generator to inline as plain code and every array keeps its
    row-major layout — the paper's baseline build. *)

exception Error of { pass : string; message : string }
(** [pass] names the compiler pass the failure originated in (always
    ["lower-anytime"] for this module), so driver diagnostics can point
    at the failing pass rather than a generic stage. *)

val pass_name : string
(** The pipeline name of the transformation implemented here:
    ["lower-anytime"]. *)

type result = {
  body : Wn_lang.Ast.stmt list;  (** rewritten kernel body *)
  storage_globals : Wn_lang.Ast.global list;
      (** storage-level globals: originals, asv arrays retyped to their
          plane words, plus synthesised accumulator-plane arrays *)
  layouts : (string * Layout.t) list;
      (** layout of every source-level global, for the harness *)
}

val apply :
  mode:[ `Precise | `Anytime ] ->
  ?vector_loads:bool ->
  Wn_lang.Sema.info ->
  Wn_lang.Ast.program ->
  result
(** [vector_loads] additionally vectorizes the subword loads feeding
    SWP when the pipelined array is also stored subword-major (the
    Figure 12 study): the innermost loop is unrolled by one plane word
    and each MUL_ASP stage extracts its lane with a single shift. *)
