open Wn_lang
open Ast

let pass_name = "licm"

module Names = Set.Make (String)

let names_of_expr e =
  let acc = ref Names.empty in
  iter_expr (function Var v -> acc := Names.add v !acc | _ -> ()) e;
  !acc

let rec pure_arith e =
  match e with
  | Int _ | Var _ -> true
  | Neg a | Bnot a -> pure_arith a
  | Binop (op, a, b) -> (not (is_comparison op)) && pure_arith a && pure_arith b
  | Load _ | Sub_load _ | Mul_asp _ | Asv_op _ | Sqrt _ | Sqrt_asp _
  | Raw_off _ ->
      false

let writes_of_stmts stmts =
  let acc = ref Names.empty in
  let add n = acc := Names.add n !acc in
  let rec go = function
    | Decl (n, _) -> add n
    | Assign (Lvar v, _) | Aug_assign (Lvar v, _, _) -> add v
    | Assign (Larr _, _) | Aug_assign (Larr _, _, _) | Skim_here -> ()
    | For l ->
        add l.var;
        List.iter go l.body
    | If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | Anytime { body; commit } ->
        List.iter go body;
        List.iter go commit
  in
  List.iter go stmts;
  !acc

let count_writes name stmts =
  let n = ref 0 in
  let rec go = function
    | Decl (m, _) when m = name -> incr n
    | Assign (Lvar v, _) | Aug_assign (Lvar v, _, _) when v = name -> incr n
    | For l ->
        if l.var = name then incr n;
        List.iter go l.body
    | If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | Anytime { body; commit } ->
        List.iter go body;
        List.iter go commit
    | _ -> ()
  in
  List.iter go stmts;
  !n

type ctx = { mutable fresh : int; skip : int list; mutable next_loop : int }

let fresh_name ctx =
  let n = Printf.sprintf "__licm%d" ctx.fresh in
  ctx.fresh <- ctx.fresh + 1;
  n

(* [outer] carries names bound by enclosing scopes (and earlier
   statements of the current block): re-declaring one of those assigns
   it under the code generator's reuse rule, so such declarations must
   not move — a hoisted copy would also write it on the zero-trip
   path. *)
let rec hoist_block ctx outer stmts =
  match stmts with
  | [] -> []
  | s :: rest ->
      let out, bound = hoist_stmt ctx outer s in
      out @ hoist_block ctx (Names.union bound outer) rest

and hoist_stmt ctx outer s =
  match s with
  | Decl (n, _) -> ([ s ], Names.singleton n)
  | For l ->
      let id = ctx.next_loop in
      ctx.next_loop <- id + 1;
      let body = hoist_block ctx (Names.add l.var outer) l.body in
      let l = { l with body } in
      if List.mem id ctx.skip then ([ For l ], Names.empty)
      else
        let writes = Names.add l.var (writes_of_stmts body) in
        let invariant e =
          pure_arith e
          && Names.is_empty (Names.inter (names_of_expr e) writes)
        in
        let hoistable = function
          | Decl (n, e) ->
              (not (Names.mem n outer)) && count_writes n body = 1 && invariant e
          | _ -> false
        in
        let hoisted, kept = List.partition hoistable body in
        let bound_decl, hi =
          match l.hi with
          | Int _ | Var _ -> ([], l.hi)
          | e when invariant e ->
              let n = fresh_name ctx in
              ([ Decl (n, e) ], Var n)
          | _ -> ([], l.hi)
        in
        let bound =
          List.fold_left
            (fun acc s ->
              match s with Decl (n, _) -> Names.add n acc | _ -> acc)
            Names.empty (hoisted @ bound_decl)
        in
        (hoisted @ bound_decl @ [ For { l with hi; body = kept } ], bound)
  | If (c, a, b) ->
      ([ If (c, hoist_block ctx outer a, hoist_block ctx outer b) ], Names.empty)
  | Anytime { body; commit } ->
      (* shared scope: commit sees body's top-level declarations *)
      let body' = hoist_block ctx outer body in
      let outer' =
        List.fold_left
          (fun acc s -> match s with Decl (n, _) -> Names.add n acc | _ -> acc)
          outer body'
      in
      ([ Anytime { body = body'; commit = hoist_block ctx outer' commit } ],
       Names.empty)
  | s -> ([ s ], Names.empty)

let loop_depths stmts =
  let acc = ref [] in
  let id = ref 0 in
  let rec go depth = function
    | For l ->
        acc := (!id, depth) :: !acc;
        incr id;
        List.iter (go (depth + 1)) l.body
    | If (_, a, b) ->
        List.iter (go depth) a;
        List.iter (go depth) b
    | Anytime { body; commit } ->
        List.iter (go depth) body;
        List.iter (go depth) commit
    | _ -> ()
  in
  List.iter (go 0) stmts;
  List.stable_sort (fun (_, a) (_, b) -> compare a b) (List.rev !acc)

let run stmts =
  let budget = Strength_reduce.local_pool_size in
  let attempt skip =
    let ctx = { fresh = 0; skip; next_loop = 0 } in
    hoist_block ctx Names.empty stmts
  in
  if Strength_reduce.max_locals stmts > budget then stmts
  else
    let by_depth = List.map fst (loop_depths stmts) in
    let rec try_with skip drops =
      let out = attempt skip in
      if Strength_reduce.max_locals out <= budget then out
      else
        match drops with
        | [] -> stmts
        | id :: drops -> try_with (id :: skip) drops
    in
    try_with [] by_depth
