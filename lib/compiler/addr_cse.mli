(** Addressing-mode CSE over the generated assembly.

    The code generator re-materialises array base addresses with
    [MOV]/[MOVT] pairs at every access.  Within a straight-line run
    this pass tracks, per register, the constant it is known to hold,
    and deletes re-materialisations that would write a value the
    register already contains (including [MOV rd, rs] copies of the
    same known constant and [MOVT]s that replace the high half with
    itself).

    Soundness is purely local: knowledge starts empty, is killed for a
    register by any other definition of it, and is killed entirely at
    every label (branch targets make the incoming state a join).  A
    conditional branch's fall-through keeps the state — no WN-32
    branch writes a general register ([BL]'s [lr] def is handled
    generically).  None of the deleted forms touch memory or flags, so
    checkpoint/restore replay and the WAR analysis are unaffected. *)

val pass_name : string
(** ["addr-cse"] *)

val run : Wn_isa.Asm.program -> Wn_isa.Asm.program
