(** Constant folding over the WNC IR (32-bit wrapping semantics).

    Folds integer arithmetic, logical and shift operators over literal
    operands, and applies the usual algebraic identities ([e + 0],
    [e * 1], [e << 0], ...).  The fold mirrors the machine exactly:
    results are masked to 32 bits and [>>] is an arithmetic shift on
    the 32-bit pattern, matching the [Asr] the code generator emits.

    Comparisons are never folded — the code generator only accepts
    comparison operators inside [if] conditions, so collapsing one to a
    literal would produce an uncompilable tree.  The internal forms
    ([Mul_asp], [Sub_load], [Asv_op], ...) keep their structure; only
    their operand expressions are folded. *)

val pass_name : string
(** ["constfold"] *)

val expr : Wn_lang.Ast.expr -> Wn_lang.Ast.expr
(** Fold a single expression bottom-up. *)

val run : Wn_lang.Ast.stmt list -> Wn_lang.Ast.stmt list
(** Fold every expression of a kernel body, including loop bounds. *)
