open Wn_lang
open Ast

exception Error of { pass : string; message : string }

(* Every failure in this module originates in the anytime-lowering
   pass; the pipeline driver threads the name into its diagnostics. *)
let pass_name = "lower-anytime"

let err fmt =
  Printf.ksprintf (fun s -> raise (Error { pass = pass_name; message = s })) fmt

type result = {
  body : stmt list;
  storage_globals : global list;
  layouts : (string * Layout.t) list;
}

(* ------------------------------------------------------------------ *)
(* Shared helpers                                                      *)

module Names = Set.Make (String)

let expr_names e =
  let acc = ref Names.empty in
  let record = function
    | Var v -> acc := Names.add v !acc
    | Load (a, _) | Sub_load { sl_arr = a; _ } -> acc := Names.add a !acc
    | Int _ | Neg _ | Bnot _ | Binop _ | Mul_asp _ | Asv_op _ | Sqrt _
    | Sqrt_asp _ | Raw_off _ ->
        ()
  in
  iter_expr record e;
  !acc

let lhs_name = function Lvar v -> v | Larr (a, _) -> a

(* Names a statement writes (its own direct effects only). *)
let rec stmt_writes stmt =
  match stmt with
  | Decl (n, _) -> Names.singleton n
  | Assign (lhs, _) | Aug_assign (lhs, _, _) -> Names.singleton (lhs_name lhs)
  | For l ->
      List.fold_left
        (fun acc s -> Names.union acc (stmt_writes s))
        (Names.singleton l.var) l.body
  | If (_, a, b) ->
      let of_list = List.fold_left (fun acc s -> Names.union acc (stmt_writes s)) in
      of_list (of_list Names.empty a) b
  | Anytime { body; commit } ->
      let of_list = List.fold_left (fun acc s -> Names.union acc (stmt_writes s)) in
      of_list (of_list Names.empty body) commit
  | Skim_here -> Names.empty

let rec stmt_reads stmt =
  let of_expr = expr_names in
  match stmt with
  | Decl (_, e) -> of_expr e
  | Assign (lhs, e) -> Names.union (lhs_reads lhs) (of_expr e)
  | Aug_assign (lhs, e_op, e) ->
      ignore e_op;
      (* the target is also read *)
      Names.union
        (Names.add (lhs_name lhs) (lhs_reads lhs))
        (of_expr e)
  | For l ->
      List.fold_left
        (fun acc s -> Names.union acc (stmt_reads s))
        (Names.union (of_expr l.lo) (of_expr l.hi))
        l.body
  | If (c, a, b) ->
      let of_list = List.fold_left (fun acc s -> Names.union acc (stmt_reads s)) in
      of_list (of_list (of_expr c) a) b
  | Anytime { body; commit } ->
      let of_list = List.fold_left (fun acc s -> Names.union acc (stmt_reads s)) in
      of_list (of_list Names.empty body) commit
  | Skim_here -> Names.empty

and lhs_reads = function Lvar _ -> Names.empty | Larr (_, i) -> expr_names i

(* ------------------------------------------------------------------ *)
(* Anytime subword pipelining                                          *)

(* Subword geometry for a 16-bit operand split into nominal [bits]-wide
   digits, least significant first.  When [bits] does not divide the
   width (3-bit subwords of a 16-bit word, Figure 15), the ragged
   narrower digit sits at the *bottom* so the most significant replica
   still processes a full [bits] of signal. *)
let asp_positions ~elem_bits ~bits =
  let ragged = elem_bits mod bits in
  let full = elem_bits / bits in
  let fulls = List.init full (fun i -> (ragged + (i * bits), bits)) in
  if ragged = 0 then fulls else (0, ragged) :: fulls

let is_asp_load info e =
  match e with
  | Load (arr, _) -> Sema.asp_input info arr <> None
  | _ -> false

(* Does a statement contain a multiplication by an annotated array? *)
let stmt_has_asp_mul info stmt =
  let found = ref false in
  iter_exprs_stmt
    (fun e ->
      match e with
      | Binop (Mul, a, b) when is_asp_load info a || is_asp_load info b ->
          found := true
      | _ -> ())
    stmt;
  !found

(* Rewrite one fission replica: multiplications with an annotated
   operand become MUL_ASP stages over that operand's digit at
   [shift]/[width].  When both operands are annotated loads (x·x in
   Var), the right-hand side is the one decomposed. *)
let rewrite_asp_pass info ~elem_signed ~shift ~width ~top e =
  let subload arr idx =
    Sub_load { sl_arr = arr; sl_index = idx; sl_shift = shift }
  in
  let spec signed_elem =
    { asp_bits = width; asp_shift = shift; asp_signed = signed_elem && top }
  in
  let rec rw e =
    match e with
    | Binop (Mul, a, Load (arr, idx)) when Sema.asp_input info arr <> None ->
        Mul_asp (rw a, subload arr (rw idx), spec (elem_signed arr))
    | Binop (Mul, Load (arr, idx), b) when Sema.asp_input info arr <> None ->
        Mul_asp (rw b, subload arr (rw idx), spec (elem_signed arr))
    | Int _ | Var _ -> e
    | Load (a, i) -> Load (a, rw i)
    | Neg a -> Neg (rw a)
    | Bnot a -> Bnot (rw a)
    | Sqrt a -> Sqrt (rw a)
    | Binop (op, a, b) -> Binop (op, rw a, rw b)
    | Sub_load _ | Mul_asp _ | Asv_op _ | Sqrt_asp _ | Raw_off _ ->
        err "unexpected internal form during SWP rewriting"
  in
  rw e

(* A custom statement walk: map_exprs_stmt applies bottom-up and would
   rewrite multiply operands before their enclosing multiply is seen, so
   the top-down expression rewriter is threaded by hand. *)
let rewrite_asp_stmt info ~elem_signed ~shift ~width ~top stmt =
  let rw e = rewrite_asp_pass info ~elem_signed ~shift ~width ~top e in
  let is_asp_output arr = List.mem arr (Sema.(info.asp_outputs)) in
  let rec go stmt =
    match stmt with
    | Decl (n, e) -> Decl (n, rw e)
    | Assign ((Larr (arr, _) as lhs), e) when (not top) && is_asp_output arr ->
        (* The first replica overwrites the output; later replicas add
           their digit contributions on top (the X[i] += of Listing 1,
           made explicit so the precise build keeps its plain store and
           no write-after-read hazard). *)
        Aug_assign (rw_lhs lhs, Add, rw e)
    | Assign (lhs, e) -> Assign (rw_lhs lhs, rw e)
    | Aug_assign (lhs, op, e) -> Aug_assign (rw_lhs lhs, op, rw e)
    | For l ->
        For { l with lo = rw l.lo; hi = rw l.hi; body = List.map go l.body }
    | If (c, a, b) -> If (rw c, List.map go a, List.map go b)
    | Anytime _ -> err "nested anytime block"
    | Skim_here -> Skim_here
  and rw_lhs = function
    | Lvar v -> Lvar v
    | Larr (a, i) -> Larr (a, rw i)
  in
  go stmt

(* Statements inside the fissioned loop that do not participate in the
   pipelined computation (an exact running sum sharing the loop, say)
   must run exactly once; we keep them only in the first replica.

   A leaf statement participates ("is hot") — and therefore re-executes
   in every replica — iff, at the fixpoint, it
   - contains a multiplication by an annotated array (the seed),
   - writes a name a hot statement reads (it produces hot inputs, e.g.
     a hoisted index),
   - reads a name a hot statement writes (it consumes hot results, e.g.
     [out\[..\] += acc]), or
   - writes a name hot statements also write (a re-initialisation such
     as [acc = 0]). *)
type hot = { hot_read : Names.t; hot_written : Names.t }

let stmt_is_hot info hot stmt =
  stmt_has_asp_mul info stmt
  || (not (Names.is_empty (Names.inter (stmt_writes stmt) hot.hot_read)))
  || (not (Names.is_empty (Names.inter (stmt_reads stmt) hot.hot_written)))
  || not (Names.is_empty (Names.inter (stmt_writes stmt) hot.hot_written))

let hot_analysis info loop_body =
  let leafs = ref [] in
  let rec collect stmt =
    match stmt with
    | Decl _ | Assign _ | Aug_assign _ -> leafs := stmt :: !leafs
    | For l -> List.iter collect l.body
    | If (_, a, b) ->
        List.iter collect a;
        List.iter collect b
    | Anytime _ -> err "nested anytime block"
    | Skim_here -> ()
  in
  List.iter collect loop_body;
  let hot = ref { hot_read = Names.empty; hot_written = Names.empty } in
  let changed = ref true in
  while !changed do
    changed := false;
    List.iter
      (fun stmt ->
        if stmt_is_hot info !hot stmt then begin
          let r = Names.union !hot.hot_read (stmt_reads stmt)
          and w = Names.union !hot.hot_written (stmt_writes stmt) in
          if
            not
              (Names.equal r !hot.hot_read && Names.equal w !hot.hot_written)
          then begin
            hot := { hot_read = r; hot_written = w };
            changed := true
          end
        end)
      !leafs
  done;
  !hot

(* Keep only hot statements (for replicas after the first). *)
let rec filter_hot info hot stmts =
  List.filter_map
    (fun stmt ->
      match stmt with
      | Decl _ | Assign _ | Aug_assign _ ->
          if stmt_is_hot info hot stmt then Some stmt else None
      | For l ->
          let body = filter_hot info hot l.body in
          if body = [] then None else Some (For { l with body })
      | If (c, a, b) ->
          let a = filter_hot info hot a and b = filter_hot info hot b in
          if a = [] && b = [] then None else Some (If (c, a, b))
      | Anytime _ -> err "nested anytime block"
      | Skim_here -> Some Skim_here)
    stmts

(* ------------------------------------------------------------------ *)
(* Anytime subword vectorization                                       *)

type asv_config = {
  cfg_bits : int;
  cfg_lane : int;  (** storage lane width *)
  cfg_elem_bits : int;
  cfg_count : int;
  cfg_wpp : int;  (** words per plane *)
  cfg_planes : int;
}

let asv_config_of info ~reduction arr =
  match (Sema.asv_spec info arr, Sema.global info arr) with
  | Some spec, Some g ->
      let elem_bits = ty_bits g.g_ty in
      if elem_bits mod spec.asv_bits <> 0 then
        err "asv %s: bits do not divide element width" arr;
      let lane =
        if reduction then begin
          if not spec.asv_provisioned then
            err
              "asv reduction over %s must be provisioned (banked partial \
               sums need carry headroom)"
              arr;
          max 16 (2 * spec.asv_bits)
        end
        else if spec.asv_provisioned then 2 * spec.asv_bits
        else spec.asv_bits
      in
      let lane = min lane 32 in
      let lpw = 32 / lane in
      if g.g_count mod lpw <> 0 then
        err "asv %s: element count %d not a multiple of %d lanes" arr
          g.g_count lpw;
      {
        cfg_bits = spec.asv_bits;
        cfg_lane = lane;
        cfg_elem_bits = elem_bits;
        cfg_count = g.g_count;
        cfg_wpp = g.g_count / lpw;
        cfg_planes = elem_bits / spec.asv_bits;
      }
  | None, _ -> err "array %s is not asv-annotated" arr
  | _, None -> err "unknown array %s" arr

let same_config a b =
  a.cfg_bits = b.cfg_bits && a.cfg_lane = b.cfg_lane
  && a.cfg_elem_bits = b.cfg_elem_bits
  && a.cfg_count = b.cfg_count

(* Build a left-leaning chain  e0 + e1 + ... *)
let add_chain = function
  | [] -> Int 0
  | e :: rest -> List.fold_left (fun acc e -> Binop (Add, acc, e)) e rest

(* ------------------------------------------------------------------ *)

type ctx = {
  info : Sema.info;
  mutable extra_globals : global list;  (** synthesised, reversed *)
  mutable retypes : (string * global) list;  (** storage retype of asv arrays *)
  mutable layouts : (string * Layout.t) list;
  mutable fresh : int;
}

let set_layout ctx name layout =
  match List.assoc_opt name ctx.layouts with
  | Some existing when existing <> layout ->
      err "array %s used with two different layouts" name
  | Some _ -> ()
  | None -> ctx.layouts <- (name, layout) :: ctx.layouts

let retype_asv ?(biased = false) ctx arr cfg =
  let storage_words = cfg.cfg_planes * cfg.cfg_wpp in
  (match List.assoc_opt arr ctx.retypes with
  | Some g when g.g_count <> storage_words ->
      err "array %s used with two different plane shapes" arr
  | Some _ -> ()
  | None ->
      ctx.retypes <- (arr, { g_name = arr; g_ty = U32; g_count = storage_words }) :: ctx.retypes);
  let g = Option.get (Sema.global ctx.info arr) in
  set_layout ctx arr
    (Layout.subword_major ~biased ~elem_bits:cfg.cfg_elem_bits
       ~signed:(ty_signed g.g_ty) ~bits:cfg.cfg_bits ~lane_bits:cfg.cfg_lane
       ~count:cfg.cfg_count ())

(* ---------------- SWP region ---------------- *)

let elem_signed_of info arr =
  match Sema.global info arr with
  | Some g -> ty_signed g.g_ty
  | None -> err "unknown array %s" arr

let split_region body =
  (* prelude* ; For ; (nothing after) *)
  let rec split prelude = function
    | (For _ as loop) :: rest ->
        if rest <> [] then
          err "anytime block must end with its main loop";
        (List.rev prelude, loop)
    | (Decl _ as s) :: rest | (Assign _ as s) :: rest
    | (Aug_assign _ as s) :: rest ->
        split (s :: prelude) rest
    | [] -> err "anytime block has no loop"
    | (If _ | Anytime _ | Skim_here) :: _ ->
        err "anytime block prelude must be straight-line code"
  in
  split [] body

let swp_region ctx ~vector_loads ~commit body =
  let info = ctx.info in
  let prelude, loop = split_region body in
  (* All annotated arrays used in this region share the subword size of
     their own pragma; take geometry from each multiply's own array, but
     pass count from the widest annotation present. *)
  let arrays_used = ref [] in
  iter_exprs_stmt
    (fun e ->
      match e with
      | Load (arr, _) when Sema.asp_input info arr <> None ->
          if not (List.mem arr !arrays_used) then arrays_used := arr :: !arrays_used
      | _ -> ())
    loop;
  if !arrays_used = [] then err "SWP anytime block uses no asp-annotated array";
  let bits =
    match
      List.sort_uniq compare
        (List.filter_map (Sema.asp_input info) !arrays_used)
    with
    | [ b ] -> b
    | _ -> err "asp arrays in one anytime block must share a subword size"
  in
  let elem_bits = 16 in
  let positions = List.rev (asp_positions ~elem_bits ~bits) in
  (* most significant first *)
  let n_passes = List.length positions in
  let hot = hot_analysis info [ loop ] in
  (* The commit block must not disturb the pipelined state. *)
  let commit_writes =
    List.fold_left (fun acc s -> Names.union acc (stmt_writes s)) Names.empty commit
  in
  let bad = Names.inter commit_writes hot.hot_written in
  if not (Names.is_empty bad) then
    err "commit block writes pipelined state: %s"
      (String.concat ", " (Names.elements bad));
  let elem_signed = elem_signed_of info in
  let vectorize = vector_loads && List.for_all (fun a -> Sema.asv_spec info a <> None) !arrays_used in
  if vector_loads && not vectorize then
    err "vector_loads requires the asp arrays to also carry asv pragmas";
  let passes =
    List.concat
      (List.mapi
         (fun i (shift, width) ->
           let top = i = 0 in
           let loop_i =
             if top then loop
             else
               match filter_hot info hot [ loop ] with
               | [ l ] -> l
               | _ -> err "fission dropped the main loop"
           in
           let rewritten =
             rewrite_asp_stmt info ~elem_signed ~shift ~width ~top loop_i
           in
           let rewritten =
             if vectorize then begin
               let geom arr =
                 let cfg = asv_config_of info ~reduction:false arr in
                 (cfg.cfg_wpp, cfg.cfg_bits)
               in
               match Vector_loads.rewrite ~geom rewritten with
               | Some s -> s
               | None -> err "vector_loads: no vectorizable inner loop found"
             end
             else rewritten
           in
           let skim = if i < n_passes - 1 then [ Skim_here ] else [] in
           (rewritten :: commit) @ skim)
         positions)
  in
  (if vectorize then
     List.iter
       (fun arr ->
         let cfg = asv_config_of info ~reduction:false arr in
         if cfg.cfg_lane <> cfg.cfg_bits then
           err "vector_loads requires unprovisioned asv storage on %s" arr;
         if cfg.cfg_bits <> bits then
           err "vector_loads: asv and asp subword sizes differ on %s" arr;
         retype_asv ctx arr cfg)
       !arrays_used);
  prelude @ passes

(* ---------------- SWV region ---------------- *)

type ew_rhs = Copy of string | Op of binop * string * string

type swv_shape =
  | Elementwise of (string * ew_rhs) list  (** target array, rhs shape *)
  | Reduction of (string * string) list  (** accumulator, source array *)

let classify_swv loop_body loop_var =
  let is_idx e = match e with Var v -> v = loop_var | _ -> false in
  let elementwise stmt =
    match stmt with
    | Assign (Larr (x, idx), rhs) when is_idx idx -> (
        match rhs with
        | Binop (((Add | Sub | And | Or | Xor) as op), Load (a, ia), Load (b, ib))
          when is_idx ia && is_idx ib ->
            Some (x, Op (op, a, b))
        | Load (a, ia) when is_idx ia -> Some (x, Copy a)
        | _ -> None)
    | _ -> None
  in
  let reduction stmt =
    match stmt with
    | Aug_assign (Lvar s, Add, Load (a, ia)) when is_idx ia -> Some (s, a)
    | _ -> None
  in
  let ew = List.map elementwise loop_body in
  if List.for_all Option.is_some ew then Elementwise (List.map Option.get ew)
  else
    let red = List.map reduction loop_body in
    if List.for_all Option.is_some red then Reduction (List.map Option.get red)
    else
      err
        "anytime SWV block must be element-wise (X[i] = A[i] op B[i]) or a \
         reduction (s += A[i]); got:\n%s"
        (Format.asprintf "%a" (Format.pp_print_list pp_stmt) loop_body)

let fresh_var ctx base =
  ctx.fresh <- ctx.fresh + 1;
  Printf.sprintf "__wn_%s%d" base ctx.fresh

(* ---------------- windowed reductions (Schema D) ---------------- *)

(* Per-window sums — Home's zone averages and NetMotion's per-interval
   net movement:

   {v for (z = 0; z < Z; z += 1) {
        int32 zb = z * W;       // optional hoisted window base
        int32 s = 0;            // one or more accumulators
        for (i = 0; i < W; i += 1) { s += A[zb + i]; }
        o[f(z)] = g(s);         // one or more result stores
      } v}

   Each pass banks one digit plane's lane-parallel partial sum per
   window into a synthesised array, and the result stores re-derive
   each window's value from the banked planes — so committed outputs
   are always coherent per-window estimates, even for signed data
   (whose storage is offset-binary, making the plane reconstruction
   exact modulo 2^32 for even window sizes). *)
type windowed = {
  win_z : string;  (** outer loop variable *)
  win_zones : int;
  win_size : int;
  win_accs : (string * string) list;  (** accumulator, source array *)
  win_stores : stmt list;  (** trailing result stores, in order *)
}

let classify_windowed (l : for_loop) =
  let ( let* ) = Option.bind in
  let* zones = match (l.lo, l.hi, l.step) with
    | Int 0, Int n, 1 -> Some n
    | _ -> None
  in
  (* Split body: leading Decls, one For, trailing Assigns. *)
  let rec take_decls acc = function
    | (Decl _ as d) :: rest -> take_decls (d :: acc) rest
    | rest -> (List.rev acc, rest)
  in
  let decls, rest = take_decls [] l.body in
  let* inner, stores =
    match rest with
    | For inner :: stores -> Some (inner, stores)
    | _ -> None
  in
  let* w = match (inner.lo, inner.hi, inner.step) with
    | Int 0, Int w, 1 -> Some w
    | _ -> None
  in
  (* Window-base locals: zb = z * W (or z << log2 W). *)
  let bases =
    List.filter_map
      (function
        | Decl (n, Binop (Mul, Var v, Int c)) when v = l.var && c = w -> Some n
        | Decl (n, Binop (Shl, Var v, Int s))
          when v = l.var && 1 lsl s = w ->
            Some n
        | _ -> None)
      decls
  in
  let accs_declared =
    List.filter_map (function Decl (n, Int 0) -> Some n | _ -> None) decls
  in
  let is_window_index idx =
    match idx with
    | Binop (Add, Var zb, Var i) -> List.mem zb bases && i = inner.var
    | Binop (Add, Binop (Mul, Var v, Int c), Var i) ->
        v = l.var && c = w && i = inner.var
    | _ -> false
  in
  let* accs =
    let step stmt =
      match stmt with
      | Aug_assign (Lvar s, Add, Load (a, idx))
        when List.mem s accs_declared && is_window_index idx ->
          Some (s, a)
      | _ -> None
    in
    let parsed = List.map step inner.body in
    if parsed <> [] && List.for_all Option.is_some parsed then
      Some (List.map Option.get parsed)
    else None
  in
  let* () =
    if
      stores <> []
      && List.for_all
           (function Assign (Larr _, _) -> true | _ -> false)
           stores
    then Some ()
    else None
  in
  Some { win_z = l.var; win_zones = zones; win_size = w; win_accs = accs;
         win_stores = stores }

let swv_windowed ctx ~commit ~prelude (wd : windowed) =
  let info = ctx.info in
  (* Windowed reductions bank per window, so the plain provisioned lane
     (2x digits) is enough headroom; the overflow guard below rejects
     windows too large for it. *)
  List.iter
    (fun (_, a) ->
      match Sema.asv_spec info a with
      | Some spec when not spec.Sema.asv_provisioned ->
          err
            "asv reduction over %s must be provisioned (banked partial sums \
             need carry headroom)"
            a
      | _ -> ())
    wd.win_accs;
  let cfgs =
    List.map (fun (_, a) -> asv_config_of info ~reduction:false a) wd.win_accs
  in
  let cfg = List.hd cfgs in
  if not (List.for_all (same_config cfg) cfgs) then
    err "asv arrays in one anytime block must share size and provisioning";
  if cfg.cfg_count <> wd.win_zones * wd.win_size then
    err "windowed reduction: %d windows of %d do not cover %d elements"
      wd.win_zones wd.win_size cfg.cfg_count;
  let lpw = 32 / cfg.cfg_lane in
  if wd.win_size mod lpw <> 0 then
    err "window size %d is not a multiple of %d lanes" wd.win_size lpw;
  let wpz = wd.win_size / lpw in
  if wpz * ((1 lsl cfg.cfg_bits) - 1) >= 1 lsl cfg.cfg_lane then
    err "window size %d overflows a %d-bit partial-sum lane" wd.win_size
      cfg.cfg_lane;
  List.iter
    (fun (_, a) ->
      let g = Option.get (Sema.global info a) in
      if ty_signed g.g_ty && wd.win_size mod 2 <> 0 then
        err "signed windowed reduction needs an even window size";
      retype_asv ~biased:(ty_signed g.g_ty) ctx a cfg)
    wd.win_accs;
  let np = cfg.cfg_planes in
  let acc_names = List.map fst wd.win_accs in
  let planes_arr s = "__wn_zplanes_" ^ s in
  List.iter
    (fun s ->
      let g =
        { g_name = planes_arr s; g_ty = U32; g_count = wd.win_zones * np }
      in
      ctx.extra_globals <- g :: ctx.extra_globals;
      set_layout ctx g.g_name (Layout.row_major U32))
    acc_names;
  let zero_var = fresh_var ctx "zz" in
  let zeroing =
    [ For
        {
          var = zero_var;
          lo = Int 0;
          hi = Int (wd.win_zones * np);
          step = 1;
          body =
            List.map
              (fun s -> Assign (Larr (planes_arr s, Var zero_var), Int 0))
              acc_names;
        } ]
  in
  let zv = wd.win_z in
  let wi = fresh_var ctx "wi" in
  let acc_var s = "__wn_acc_" ^ s in
  let reconstruct s =
    add_chain
      (List.init np (fun p ->
           let bank =
             Load (planes_arr s, Binop (Add, Binop (Mul, Var zv, Int np), Int p))
           in
           if p = 0 then bank else Binop (Shl, bank, Int (p * cfg.cfg_bits))))
  in
  let rewritten_stores =
    List.map
      (map_exprs_stmt (fun e ->
           match e with
           | Var v when List.mem v acc_names -> reconstruct v
           | e -> e))
      wd.win_stores
  in
  let wb = fresh_var ctx "wb" in
  let pass p =
    (* The window's plane base is loop-invariant in [wi]; hoist it so
       the inner loop's addressing matches the precise build's. *)
    let base_decl =
      Decl
        (wb, Binop (Add, Int (p * cfg.cfg_wpp), Binop (Mul, Var zv, Int wpz)))
    in
    let decls =
      base_decl :: List.map (fun s -> Decl (acc_var s, Int 0)) acc_names
    in
    let elem_idx = Binop (Add, Var wb, Var wi) in
    let accumulate =
      List.map
        (fun (s, a) ->
          Assign
            ( Lvar (acc_var s),
              Asv_op (Add, cfg.cfg_lane, Var (acc_var s), Load (a, elem_idx)) ))
        wd.win_accs
    in
    let inner =
      For { var = wi; lo = Int 0; hi = Int wpz; step = 1; body = accumulate }
    in
    let bank =
      List.map
        (fun s ->
          let hsum =
            if lpw = 1 then Var (acc_var s)
            else
              add_chain
                (List.init lpw (fun lane ->
                     let shifted =
                       if lane = 0 then Var (acc_var s)
                       else
                         Binop (Shr, Var (acc_var s), Int (lane * cfg.cfg_lane))
                     in
                     Binop (And, shifted, Int (Wn_util.Subword.mask cfg.cfg_lane))))
          in
          Assign
            ( Larr (planes_arr s, Binop (Add, Binop (Mul, Var zv, Int np), Int p)),
              hsum ))
        acc_names
    in
    For
      {
        var = zv;
        lo = Int 0;
        hi = Int wd.win_zones;
        step = 1;
        body = decls @ [ inner ] @ bank @ rewritten_stores;
      }
  in
  let passes =
    List.concat
      (List.init np (fun i ->
           let p = np - 1 - i in
           let skim = if p > 0 then [ Skim_here ] else [] in
           (pass p :: commit) @ skim))
  in
  prelude @ zeroing @ passes

let swv_region ctx ~commit body =
  let info = ctx.info in
  let prelude, loop = split_region body in
  let l = match loop with For l -> l | _ -> assert false in
  match classify_windowed l with
  | Some wd -> swv_windowed ctx ~commit ~prelude wd
  | None ->
  (match (l.lo, l.step) with
  | Int 0, 1 -> ()
  | _ -> err "SWV loop must run from 0 with unit step");
  let n =
    match l.hi with
    | Int n -> n
    | _ -> err "SWV loop bound must be a constant"
  in
  match classify_swv l.body l.var with
  | Elementwise assigns ->
      let arrays =
        List.concat_map
          (fun (x, rhs) ->
            match rhs with Copy a -> [ x; a ] | Op (_, a, b) -> [ x; a; b ])
          assigns
      in
      let cfgs = List.map (asv_config_of info ~reduction:false) arrays in
      let cfg = List.hd cfgs in
      if not (List.for_all (same_config cfg) cfgs) then
        err "asv arrays in one anytime block must share size and provisioning";
      if cfg.cfg_count <> n then
        err "SWV loop bound %d does not match array length %d" n cfg.cfg_count;
      List.iter (fun a -> retype_asv ctx a cfg) arrays;
      let wvar = fresh_var ctx "w" in
      let plane_idx p = Binop (Add, Int (p * cfg.cfg_wpp), Var wvar) in
      let pass p =
        let stmts =
          List.map
            (fun (x, rhs) ->
              let operand name = Load (name, plane_idx p) in
              let rhs' =
                match rhs with
                | Copy a -> operand a
                | Op (((And | Or | Xor) as op), a, b) ->
                    (* lane-safe on plain ALU ops, as the paper notes *)
                    Binop (op, operand a, operand b)
                | Op (((Add | Sub) as op), a, b) ->
                    Asv_op (op, cfg.cfg_lane, operand a, operand b)
                | Op ((Mul | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge), _, _) ->
                    assert false
              in
              Assign (Larr (x, plane_idx p), rhs'))
            assigns
        in
        For { var = wvar; lo = Int 0; hi = Int cfg.cfg_wpp; step = 1; body = stmts }
      in
      let passes =
        List.concat
          (List.init cfg.cfg_planes (fun i ->
               let p = cfg.cfg_planes - 1 - i in
               let skim = if p > 0 then [ Skim_here ] else [] in
               (pass p :: commit) @ skim))
      in
      prelude @ passes
  | Reduction accs ->
      let cfgs = List.map (fun (_, a) -> asv_config_of info ~reduction:true a) accs in
      let cfg = List.hd cfgs in
      if not (List.for_all (same_config cfg) cfgs) then
        err "asv arrays in one anytime block must share size and provisioning";
      if cfg.cfg_count <> n then
        err "SWV loop bound %d does not match array length %d" n cfg.cfg_count;
      List.iter (fun (_, a) -> retype_asv ctx a cfg) accs;
      let acc_names = List.map fst accs in
      (* Drop the accumulators' prelude declarations: banked planes in
         NVM replace them. *)
      let prelude =
        List.filter
          (function Decl (nm, _) -> not (List.mem nm acc_names) | _ -> true)
          prelude
      in
      let planes_arr s = "__wn_planes_" ^ s in
      List.iter
        (fun s ->
          let g = { g_name = planes_arr s; g_ty = U32; g_count = cfg.cfg_planes } in
          ctx.extra_globals <- g :: ctx.extra_globals;
          set_layout ctx g.g_name (Layout.row_major U32))
        acc_names;
      let zeroing =
        List.concat_map
          (fun s ->
            List.init cfg.cfg_planes (fun p ->
                Assign (Larr (planes_arr s, Int p), Int 0)))
          acc_names
      in
      let lpw = 32 / cfg.cfg_lane in
      (* Lane-parallel partial sums are banked into the plane array
         every [chunk] words so a lane (carry headroom included) can
         never overflow: chunk · (2^bits - 1) < 2^lane. *)
      let chunk =
        let max_chunk = (1 lsl cfg.cfg_lane) / (1 lsl cfg.cfg_bits) / 2 in
        min cfg.cfg_wpp (min 64 max_chunk)
      in
      if cfg.cfg_wpp mod chunk <> 0 then
        err "SWV reduction: %d plane words not divisible into %d-word chunks"
          cfg.cfg_wpp chunk;
      let wo = fresh_var ctx "wo" in
      let wi = fresh_var ctx "wi" in
      let acc_var s = "__wn_acc_" ^ s in
      let plane_idx p =
        Binop (Add, Binop (Add, Int (p * cfg.cfg_wpp), Var wo), Var wi)
      in
      let reconstruct s =
        add_chain
          (List.init cfg.cfg_planes (fun p ->
               if p = 0 then Load (planes_arr s, Int 0)
               else
                 Binop
                   (Shl, Load (planes_arr s, Int p), Int (p * cfg.cfg_bits))))
      in
      let substituted_commit =
        List.map
          (map_exprs_stmt (fun e ->
               match e with
               | Var v when List.mem v acc_names -> reconstruct v
               | e -> e))
          commit
      in
      let pass p =
        let decls = List.map (fun s -> Decl (acc_var s, Int 0)) acc_names in
        let accumulate =
          List.map
            (fun (s, a) ->
              Assign
                ( Lvar (acc_var s),
                  Asv_op (Add, cfg.cfg_lane, Var (acc_var s), Load (a, plane_idx p))
                ))
            accs
        in
        let inner =
          For { var = wi; lo = Int 0; hi = Int chunk; step = 1; body = accumulate }
        in
        let bank =
          List.map
            (fun s ->
              let hsum =
                if lpw = 1 then Var (acc_var s)
                else
                  add_chain
                    (List.init lpw (fun lane ->
                         let shifted =
                           if lane = 0 then Var (acc_var s)
                           else
                             Binop
                               (Shr, Var (acc_var s), Int (lane * cfg.cfg_lane))
                         in
                         Binop
                           (And, shifted, Int (Wn_util.Subword.mask cfg.cfg_lane))))
              in
              Aug_assign (Larr (planes_arr s, Int p), Add, hsum))
            acc_names
        in
        [ For
            { var = wo; lo = Int 0; hi = Int cfg.cfg_wpp; step = chunk;
              body = decls @ [ inner ] @ bank } ]
      in
      let passes =
        List.concat
          (List.init cfg.cfg_planes (fun i ->
               let p = cfg.cfg_planes - 1 - i in
               let skim = if p > 0 then [ Skim_here ] else [] in
               pass p @ substituted_commit @ skim))
      in
      prelude @ zeroing @ passes

(* ------------------------------------------------------------------ *)

let region_uses_asp info body =
  let found = ref false in
  List.iter
    (iter_exprs_stmt (fun e ->
         match e with
         | Load (arr, _) when Sema.asp_input info arr <> None -> found := true
         | _ -> ()))
    body;
  !found

(* ---------------- anytime square root (footnote 3) ---------------- *)

(* An anytime region whose refinement target is a square root: the loop
   is replicated with SQRT_ASP stages of increasing result width, each
   replica *overwriting* the previous approximation (the digit
   recurrence makes every computed bit final, so successive stages
   refine monotonically and the last — full — stage is exact). *)
let sqrt_region ctx ~commit body =
  let info = ctx.info in
  let bits = Option.value ~default:4 info.Sema.asp_output_bits in
  if bits < 1 || bits > 16 then err "sqrt stage size %d out of range" bits;
  let prelude, loop = split_region body in
  (* Overwrite semantics: accumulating into the output across replicas
     would double-count. *)
  iter_exprs_stmt
    (fun e ->
      match e with
      | Binop (Mul, a, b) when is_asp_load info a || is_asp_load info b ->
          err "sqrt anytime region cannot also pipeline multiplies"
      | _ -> ())
    loop;
  (match loop with
  | For _ -> ()
  | _ -> assert false);
  let rec check_overwrites stmt =
    match stmt with
    | Aug_assign (Larr (arr, _), _, _)
      when List.mem arr info.Sema.asp_outputs ->
        err "sqrt anytime region must overwrite its output, not accumulate"
    | For l -> List.iter check_overwrites l.body
    | If (_, a, b) ->
        List.iter check_overwrites a;
        List.iter check_overwrites b
    | Decl _ | Assign _ | Aug_assign _ | Skim_here -> ()
    | Anytime _ -> err "nested anytime block"
  in
  check_overwrites loop;
  let stage_widths =
    (* bits, 2·bits, … capped and terminated at the full 16. *)
    let rec widths k = if k >= 16 then [ 16 ] else k :: widths (k + bits) in
    widths bits
  in
  let rewrite_stage k stmt =
    let rw e =
      map_expr
        (fun e ->
          match e with
          | Sqrt a -> if k = 16 then Sqrt a else Sqrt_asp (a, k)
          | e -> e)
        e
    in
    map_exprs_stmt rw stmt
  in
  let n = List.length stage_widths in
  let passes =
    List.concat
      (List.mapi
         (fun i k ->
           let skim = if i < n - 1 then [ Skim_here ] else [] in
           (rewrite_stage k loop :: commit) @ skim)
         stage_widths)
  in
  prelude @ passes

let region_uses_sqrt body =
  let found = ref false in
  List.iter
    (iter_exprs_stmt (fun e -> match e with Sqrt _ -> found := true | _ -> ()))
    body;
  !found

let region_uses_asv info body =
  let found = ref false in
  List.iter
    (iter_exprs_stmt (fun e ->
         match e with
         | Load (arr, _) when Sema.asv_spec info arr <> None -> found := true
         | _ -> ()))
    body;
  !found

let apply ~mode ?(vector_loads = false) info (p : program) =
  match mode with
  | `Precise ->
      {
        body = p.body;
        storage_globals = p.globals;
        layouts = List.map (fun g -> (g.g_name, Layout.row_major g.g_ty)) p.globals;
      }
  | `Anytime ->
      let ctx = { info; extra_globals = []; retypes = []; layouts = []; fresh = 0 } in
      let body =
        List.concat_map
          (fun stmt ->
            match stmt with
            | Anytime { body; commit } ->
                let asp = region_uses_asp info body in
                let asv = region_uses_asv info body in
                if asp then swp_region ctx ~vector_loads ~commit body
                else if
                  region_uses_sqrt body && info.Sema.asp_outputs <> []
                then sqrt_region ctx ~commit body
                else if asv then swv_region ctx ~commit body
                else body @ commit
            | s ->
                let check_nested inner =
                  match inner with
                  | Anytime _ -> err "anytime blocks must be top-level statements"
                  | s -> s
                in
                [ map_stmt check_nested s ])
          p.body
      in
      let storage_globals =
        List.map
          (fun g ->
            match List.assoc_opt g.g_name ctx.retypes with
            | Some g' -> g'
            | None -> g)
          p.globals
        @ List.rev ctx.extra_globals
      in
      let layouts =
        List.map
          (fun g ->
            match List.assoc_opt g.g_name ctx.layouts with
            | Some l -> (g.g_name, l)
            | None -> (g.g_name, Layout.row_major g.g_ty))
          p.globals
      in
      { body; storage_globals; layouts }
