open Wn_lang
open Ast

let pass_name = "strength-reduce"
let iv_prefix = "__sr_iv"

module Names = Set.Make (String)

(* The code generator's local pool holds 7 registers (r5-r11). *)
let local_pool_size = 7

let u32 v = v land 0xFFFF_FFFF

(* ------------------------------------------------------------------ *)
(* Generic IR queries                                                  *)

let names_of_expr e =
  let acc = ref Names.empty in
  iter_expr (function Var v -> acc := Names.add v !acc | _ -> ()) e;
  !acc

(* Every scalar a statement list can write: declarations (which assign
   an existing binding under the no-shadowing [Decl] rule), scalar
   assignments and loop variables of contained loops. *)
let writes_of_stmts stmts =
  let acc = ref Names.empty in
  let add n = acc := Names.add n !acc in
  let rec go = function
    | Decl (n, _) -> add n
    | Assign (Lvar v, _) | Aug_assign (Lvar v, _, _) -> add v
    | Assign (Larr _, _) | Aug_assign (Larr _, _, _) | Skim_here -> ()
    | For l ->
        add l.var;
        List.iter go l.body
    | If (_, a, b) ->
        List.iter go a;
        List.iter go b
    | Anytime { body; commit } ->
        List.iter go body;
        List.iter go commit
  in
  List.iter go stmts;
  !acc

(* Pure integer arithmetic: safe to duplicate, delete or reorder. *)
let rec pure_arith e =
  match e with
  | Int _ | Var _ -> true
  | Neg a | Bnot a -> pure_arith a
  | Binop (op, a, b) -> (not (is_comparison op)) && pure_arith a && pure_arith b
  | Load _ | Sub_load _ | Mul_asp _ | Asv_op _ | Sqrt _ | Sqrt_asp _
  | Raw_off _ ->
      false

(* Exact mirror of the code generator's local-register accounting:
   blocks free their declarations on exit, a [Decl] whose name is bound
   anywhere in the environment reuses that binding, [for] allocates its
   variable in a scope of its own, and top-level declarations live to
   the end of the kernel.  Keeping this in lock-step with
   [Codegen.alloc_local] is what lets the budget check below promise
   that a reduced kernel still code-generates. *)
let max_locals stmts =
  let worst = ref 0 in
  let push env n =
    let env = n :: env in
    if List.length env > !worst then worst := List.length env;
    env
  in
  let declare env n = if List.mem n env then env else push env n in
  let rec block env stmts = ignore (List.fold_left stmt env stmts)
  and stmt env s =
    match s with
    | Decl (n, _) -> declare env n
    | Assign _ | Aug_assign _ | Skim_here -> env
    | For l ->
        (* gen_for allocates its variable unconditionally (no reuse) *)
        block (push env l.var) l.body;
        env
    | If (_, a, b) ->
        block env a;
        block env b;
        env
    | Anytime { body; commit } ->
        (* precise lowering shares one scope across body and commit *)
        ignore (List.fold_left stmt (List.fold_left stmt env body) commit);
        env
  in
  block [] stmts;
  !worst

(* ------------------------------------------------------------------ *)
(* Affine decomposition: idx = coeff*var + rest + k (mod 2^32)         *)

type affine = { coeff : int; rest : expr option; k : int }

let add_rest a b =
  match (a, b) with
  | None, r | r, None -> r
  | Some a, Some b -> Some (Binop (Add, a, b))

let sub_rest a b =
  match (a, b) with
  | r, None -> r
  | None, Some b -> Some (Binop (Sub, Int 0, b))
  | Some a, Some b -> Some (Binop (Sub, a, b))

let scale_rest r n =
  match r with None -> None | Some e -> Some (Binop (Mul, e, Int n))

let decompose ~var ~invariant idx =
  let rec go e =
    match e with
    | Int n -> Some { coeff = 0; rest = None; k = u32 n }
    | Var v when v = var -> Some { coeff = 1; rest = None; k = 0 }
    | Var v when invariant v -> Some { coeff = 0; rest = Some e; k = 0 }
    | Binop (Add, a, b) -> (
        match (go a, go b) with
        | Some a, Some b ->
            Some
              {
                coeff = u32 (a.coeff + b.coeff);
                rest = add_rest a.rest b.rest;
                k = u32 (a.k + b.k);
              }
        | _ -> None)
    | Binop (Sub, a, b) -> (
        match (go a, go b) with
        | Some a, Some b ->
            Some
              {
                coeff = u32 (a.coeff - b.coeff);
                rest = sub_rest a.rest b.rest;
                k = u32 (a.k - b.k);
              }
        | _ -> None)
    | Binop (Mul, a, b) -> (
        (* one side must fold to a constant for the coefficient to
           stay a known integer *)
        match (Constfold.expr a, Constfold.expr b) with
        | Int n, _ -> scaled b n
        | _, Int n -> scaled a n
        | _ -> whole_invariant e)
    | Binop (Shl, a, b) -> (
        match Constfold.expr b with
        | Int s when s >= 0 && s < 32 -> scaled a (1 lsl s)
        | _ -> whole_invariant e)
    | Neg a -> ( match go a with Some a -> Some (neg a) | None -> None)
    | _ -> whole_invariant e
  and scaled e n =
    match go e with
    | Some a ->
        Some
          {
            coeff = u32 (a.coeff * u32 n);
            rest = scale_rest a.rest (u32 n);
            k = u32 (a.k * u32 n);
          }
    | None -> None
  and neg a =
    { coeff = u32 (-a.coeff); rest = scale_rest a.rest (u32 (-1)); k = u32 (-a.k) }
  and whole_invariant e =
    if pure_arith e && Names.for_all invariant (names_of_expr e) then
      Some { coeff = 0; rest = Some e; k = 0 }
    else None
  in
  go idx

(* ------------------------------------------------------------------ *)
(* Per-loop reduction                                                  *)

type clazz = {
  cl_coeff : int;
  cl_rest : expr option; (* structural identity keys the class *)
  cl_eb : int; (* element bytes of the accessed array *)
  mutable cl_hits : int;
  mutable cl_name : string; (* assigned when the class is materialised *)
}

type ctx = {
  elem_bytes : string -> int option; (* storage element width per array *)
  fresh : unit -> string;
  skip : int list; (* pre-order loop ids excluded this attempt *)
  mutable next_loop : int; (* pre-order loop counter *)
}

(* Collect (and later rewrite) the array accesses of a loop body.  The
   two traversals share this shape: [on_idx arr idx] sees every index
   position — [Load], [Sub_load] and [Larr] — and returns the
   replacement index.  Indices that are already [Raw_off] are left
   alone; when an index is not rewritten its own sub-loads still get a
   chance. *)
let rec map_indices on_idx stmts = List.map (map_idx_stmt on_idx) stmts

and map_idx_stmt on_idx s =
  let rec rx e =
    match e with
    | Load (a, i) -> Load (a, rx_idx a i)
    | Sub_load sl -> Sub_load { sl with sl_index = rx_idx sl.sl_arr sl.sl_index }
    | Mul_asp (a, b, spec) -> Mul_asp (rx a, rx b, spec)
    | Asv_op (op, w, a, b) -> Asv_op (op, w, rx a, rx b)
    | Binop (op, a, b) -> Binop (op, rx a, rx b)
    | Neg a -> Neg (rx a)
    | Bnot a -> Bnot (rx a)
    | Sqrt a -> Sqrt (rx a)
    | Sqrt_asp (a, bits) -> Sqrt_asp (rx a, bits)
    | Int _ | Var _ | Raw_off _ -> e
  and rx_idx arr i =
    match i with
    | Raw_off _ -> i
    | _ -> ( match on_idx arr i with Some i' -> i' | None -> rx i)
  in
  let rl = function Lvar v -> Lvar v | Larr (a, i) -> Larr (a, rx_idx a i) in
  match s with
  | Decl (n, e) -> Decl (n, rx e)
  | Assign (lhs, e) -> Assign (rl lhs, rx e)
  | Aug_assign (lhs, op, e) -> Aug_assign (rl lhs, op, rx e)
  | For l ->
      For
        {
          l with
          lo = rx l.lo;
          hi = rx l.hi;
          body = map_indices on_idx l.body;
        }
  | If (c, a, b) -> If (rx c, map_indices on_idx a, map_indices on_idx b)
  | Anytime { body; commit } ->
      Anytime
        { body = map_indices on_idx body; commit = map_indices on_idx commit }
  | Skim_here -> Skim_here

(* Reduce one loop (body already processed inner-first).  Returns the
   statements that replace the [For]: induction-variable declarations
   followed by the rewritten loop. *)
let reduce_loop ctx (l : for_loop) : stmt list =
  let keep = [ For l ] in
  let body_writes = Names.add l.var (writes_of_stmts l.body) in
  if Names.mem l.var (writes_of_stmts l.body) then keep
  else
    let invariant v = not (Names.mem v body_writes) in
    (* Pass 1: discover induction-variable classes. *)
    let classes : clazz list ref = ref [] in
    let class_of arr idx =
      match ctx.elem_bytes arr with
      | None -> None
      | Some eb -> (
          match decompose ~var:l.var ~invariant idx with
          | Some a when a.coeff <> 0 ->
              let cl =
                match
                  List.find_opt
                    (fun c ->
                      c.cl_coeff = a.coeff && c.cl_rest = a.rest && c.cl_eb = eb)
                    !classes
                with
                | Some c -> c
                | None ->
                    let c =
                      {
                        cl_coeff = a.coeff;
                        cl_rest = a.rest;
                        cl_eb = eb;
                        cl_hits = 0;
                        cl_name = "";
                      }
                    in
                    classes := !classes @ [ c ];
                    c
              in
              Some (cl, a.k)
          | _ -> None)
    in
    ignore
      (map_indices
         (fun arr idx ->
           (match class_of arr idx with
           | Some (cl, _) -> cl.cl_hits <- cl.cl_hits + 1
           | None -> ());
           None)
         l.body);
    if !classes = [] then keep
    else begin
      (* Pass 2: name the classes and rewrite the accesses. *)
      List.iter (fun c -> c.cl_name <- ctx.fresh ()) !classes;
      let body =
        map_indices
          (fun arr idx ->
            match class_of arr idx with
            | Some (cl, k) ->
                let off = u32 (k * cl.cl_eb) in
                Some
                  (Raw_off
                     (if off = 0 then Var cl.cl_name
                      else Binop (Add, Var cl.cl_name, Int off)))
            | None -> None)
          l.body
      in
      let init cl =
        let scaled_lo = Binop (Mul, Int cl.cl_coeff, l.lo) in
        let base =
          match cl.cl_rest with
          | None -> scaled_lo
          | Some r -> Binop (Add, r, scaled_lo)
        in
        Constfold.expr (Binop (Mul, base, Int cl.cl_eb))
      in
      let inc cl = u32 (cl.cl_coeff * l.step * cl.cl_eb) in
      (* Loop-variable elimination: promote one class to be the loop
         variable when the original variable is otherwise dead and the
         rescaled bounds stay small enough for CMP's immediate form. *)
      let var_dead =
        let read = ref false in
        List.iter
          (iter_exprs_stmt (fun e ->
               match e with Var v when v = l.var -> read := true | _ -> ()))
          body;
        not !read
      in
      let promotable cl =
        match (l.lo, l.hi, init cl) with
        | Int lo, Int hi, Int iv0
          when var_dead && l.step >= 1 && lo >= 0 && hi >= lo && hi <= 0x7FFF
               && cl.cl_coeff >= 1
               && cl.cl_coeff <= 0xFFFF
               && inc cl >= 1
               && inc cl <= 0xFFF ->
            let trips = (hi - lo + l.step - 1) / l.step in
            let hi' = iv0 + (trips * inc cl) in
            if hi' <= 0xFFFF then Some (iv0, hi') else None
        | _ -> None
      in
      let primary =
        List.fold_left
          (fun best cl ->
            match (best, promotable cl) with
            | Some _, _ -> best
            | None, Some b -> Some (cl, b)
            | None, None -> None)
          None !classes
      in
      let bumps =
        List.filter_map
          (fun cl ->
            match primary with
            | Some (p, _) when p == cl -> None
            | _ -> Some (Aug_assign (Lvar cl.cl_name, Add, Int (inc cl))))
          !classes
      in
      let decls =
        List.filter_map
          (fun cl ->
            match primary with
            | Some (p, _) when p == cl -> None
            | _ -> Some (Decl (cl.cl_name, init cl)))
          !classes
      in
      let loop =
        match primary with
        | Some (p, (iv0, hi')) ->
            For
              {
                var = p.cl_name;
                lo = Int iv0;
                hi = Int hi';
                step = inc p;
                body = body @ bumps;
              }
        | None -> For { l with body = body @ bumps }
      in
      decls @ [ loop ]
    end

(* ------------------------------------------------------------------ *)
(* Single-use declaration inlining                                     *)

let is_iv_name n = String.length n >= 7 && String.sub n 0 7 = iv_prefix

let count_reads name stmts =
  let n = ref 0 in
  List.iter
    (iter_exprs_stmt (fun e ->
         match e with Var v when v = name -> incr n | _ -> ()))
    stmts;
  !n

let rec count_iv_init_reads name stmts =
  List.fold_left
    (fun acc s ->
      acc
      +
      match s with
      | Decl (m, init) when is_iv_name m ->
          let n = ref 0 in
          iter_expr
            (fun e -> match e with Var v when v = name -> incr n | _ -> ())
            init;
          !n
      | For l -> count_iv_init_reads name l.body
      | If (_, a, b) -> count_iv_init_reads name a + count_iv_init_reads name b
      | Anytime { body; commit } ->
          count_iv_init_reads name body + count_iv_init_reads name commit
      | _ -> 0)
    0 stmts

let subst_in_iv_inits name value stmts =
  let sub init =
    Constfold.expr
      (map_expr (function Var v when v = name -> value | e -> e) init)
  in
  let rec go s =
    match s with
    | Decl (m, init) when is_iv_name m -> Decl (m, sub init)
    | For l -> For { l with body = List.map go l.body }
    | If (c, a, b) -> If (c, List.map go a, List.map go b)
    | Anytime { body; commit } ->
        Anytime { body = List.map go body; commit = List.map go commit }
    | s -> s
  in
  List.map go stmts

(* A pure declaration whose every read sits in an induction-variable
   initialiser (and whose free variables stay unwritten for the rest of
   its block) is substituted into those initialisers and deleted,
   freeing its register.  A read-free pure declaration is simply
   deleted.  [outer] carries the names already bound by enclosing
   scopes: re-declaring one of those is an assignment to it under the
   code generator's reuse rule, so such declarations must stay. *)
let rec inline_block outer stmts =
  match stmts with
  | [] -> []
  | (Decl (n, e) as s) :: rest ->
      let fvs = names_of_expr e in
      let rest_writes = writes_of_stmts rest in
      let inlinable =
        pure_arith e
        && (not (Names.mem n outer))
        && (not (Names.mem n fvs))
        && (not (Names.mem n rest_writes))
        && Names.is_empty (Names.inter fvs rest_writes)
      in
      if inlinable && count_reads n rest = 0 then inline_block outer rest
      else if
        inlinable && count_reads n rest = count_iv_init_reads n rest
      then inline_block outer (subst_in_iv_inits n e rest)
      else inline_stmt outer s :: inline_block (Names.add n outer) rest
  | s :: rest -> inline_stmt outer s :: inline_block outer rest

and inline_stmt outer s =
  match s with
  | For l ->
      For { l with body = inline_block (Names.add l.var outer) l.body }
  | If (c, a, b) -> If (c, inline_block outer a, inline_block outer b)
  | Anytime { body; commit } ->
      (* shared scope: commit sees body's declarations *)
      let body' = inline_block outer body in
      let outer' =
        List.fold_left
          (fun acc s -> match s with Decl (n, _) -> Names.add n acc | _ -> acc)
          outer body'
      in
      Anytime { body = body'; commit = inline_block outer' commit }
  | s -> s

(* ------------------------------------------------------------------ *)
(* Driver with register-budget retry                                   *)

let rec sr_block ctx stmts = List.concat_map (sr_stmt ctx) stmts

and sr_stmt ctx s =
  match s with
  | For l ->
      let id = ctx.next_loop in
      ctx.next_loop <- id + 1;
      let body = sr_block ctx l.body in
      let l = { l with body } in
      if List.mem id ctx.skip then [ For l ] else reduce_loop ctx l
  | If (c, a, b) -> [ If (c, sr_block ctx a, sr_block ctx b) ]
  | Anytime { body; commit } ->
      [ Anytime { body = sr_block ctx body; commit = sr_block ctx commit } ]
  | s -> [ s ]

(* Pre-order (id, depth) of every loop, shallowest first, for the
   drop order of the budget retry. *)
let loop_depths stmts =
  let acc = ref [] in
  let id = ref 0 in
  let rec go depth = function
    | For l ->
        acc := (!id, depth) :: !acc;
        incr id;
        List.iter (go (depth + 1)) l.body
    | If (_, a, b) ->
        List.iter (go depth) a;
        List.iter (go depth) b
    | Anytime { body; commit } ->
        List.iter (go depth) body;
        List.iter (go depth) commit
    | _ -> ()
  in
  List.iter (go 0) stmts;
  List.stable_sort (fun (_, a) (_, b) -> compare a b) (List.rev !acc)

let run ~globals stmts =
  let widths =
    List.map (fun g -> (g.g_name, ty_bytes g.g_ty)) globals
  in
  let elem_bytes arr = List.assoc_opt arr widths in
  let attempt skip =
    let counter = ref 0 in
    let fresh () =
      let n = Printf.sprintf "%s%d" iv_prefix !counter in
      incr counter;
      n
    in
    let ctx = { elem_bytes; fresh; skip; next_loop = 0 } in
    inline_block Names.empty (sr_block ctx stmts)
  in
  if max_locals stmts > local_pool_size then stmts
  else
    let by_depth = List.map fst (loop_depths stmts) in
    let rec try_with skip drops =
      let out = attempt skip in
      if max_locals out <= local_pool_size then out
      else
        match drops with
        | [] -> stmts
        | id :: drops -> try_with (id :: skip) drops
    in
    try_with [] by_depth
