open Wn_isa
open Wn_lang

type mode = Precise | Anytime

type passes = {
  constfold : bool;
  strength_reduce : bool;
  licm : bool;
  addr_cse : bool;
}

let all_passes =
  { constfold = true; strength_reduce = true; licm = true; addr_cse = true }

let no_passes =
  { constfold = false; strength_reduce = false; licm = false; addr_cse = false }

type options = { mode : mode; vector_loads : bool; passes : passes }

let precise = { mode = Precise; vector_loads = false; passes = all_passes }
let anytime = { mode = Anytime; vector_loads = false; passes = all_passes }

let anytime_vector_loads =
  { mode = Anytime; vector_loads = true; passes = all_passes }

let codegen_pass_name = "codegen"

let pass_names options =
  [ Transform.pass_name ]
  @ (if options.passes.constfold then [ Constfold.pass_name ] else [])
  @ (if options.passes.strength_reduce then [ Strength_reduce.pass_name ]
     else [])
  @ (if options.passes.licm then [ Licm.pass_name ] else [])
  @ [ codegen_pass_name ]
  @ if options.passes.addr_cse then [ Addr_cse.pass_name ] else []

type symbol = {
  sym_global : Ast.global;
  sym_addr : int;
  sym_layout : Layout.t;
}

type t = {
  source : Ast.program;
  info : Sema.info;
  options : options;
  asm : Asm.program;
  program : int Instr.t array;
  machine_code : int32 array;
  symbols : (string * symbol) list;
  storage : (string * int * int) list;
  data_bytes : int;
  dumps : (string * string) list;
}

exception Error of string

let err stage msg = raise (Error (Printf.sprintf "%s: %s" stage msg))

let pass_err pass msg = err (Printf.sprintf "pass %s" pass) msg

let storage_bytes (g : Ast.global) = g.g_count * Ast.ty_bytes g.g_ty

let align4 n = (n + 3) land lnot 3

let verify ?runtime ?budget ?cycle_energy t =
  Wn_analysis.Progress.analyze ?runtime ?budget ?cycle_energy
    (Wn_analysis.Cfg.build t.program)

let lint t =
  let symbols =
    List.map
      (fun (sym_name, sym_addr, sym_bytes) ->
        { Wn_analysis.Addr.sym_name; sym_addr; sym_bytes })
      t.storage
  in
  let structural = Wn_analysis.Check.program ~symbols t.program in
  (* Forward-progress findings at the default runtime (Clank watchdog)
     and the paper's default capacitor: a program whose WCEC regions
     cannot fit one charge is broken for any deployment, so the lint
     gate sees it. *)
  let progress = Wn_analysis.Progress.diagnostics (verify t) in
  List.sort Wn_analysis.Diag.compare (structural @ progress)

let compile ?(options = anytime) ?(strict = false) ?dump_after
    (source : Ast.program) =
  let info = try Sema.analyze source with Sema.Error e -> err "sema" e in
  let dumps = ref [] in
  let record name pp x =
    if dump_after = Some name then
      dumps := (name, Format.asprintf "%a" pp x) :: !dumps
  in
  (* Every pass is followed by a lint of its output; a failing pass is
     blamed by name, with the complete findings of the first pass that
     failed (not just the first finding). *)
  let check_pass name diags =
    if diags <> [] then
      let report = Format.asprintf "%a" Wn_analysis.Diag.pp_report diags in
      if
        strict
        && Wn_analysis.Diag.worst diags = Some Wn_analysis.Diag.Error
      then pass_err name report
      else Format.eprintf "after pass %s:@.%s@." name report
  in
  let lint_ir name (tr : Transform.result) =
    check_pass name
      (Wn_analysis.Ircheck.stmts ~globals:tr.storage_globals tr.body);
    record name Ast.pp_block tr.body
  in
  (* --- IR passes -------------------------------------------------- *)
  let mode =
    match options.mode with Precise -> `Precise | Anytime -> `Anytime
  in
  let tr =
    try Transform.apply ~mode ~vector_loads:options.vector_loads info source
    with Transform.Error { pass; message } -> pass_err pass message
  in
  lint_ir Transform.pass_name tr;
  let run_ir enabled name f (tr : Transform.result) =
    if not enabled then tr
    else begin
      let tr = { tr with Transform.body = f tr.Transform.body } in
      lint_ir name tr;
      tr
    end
  in
  let tr = run_ir options.passes.constfold Constfold.pass_name Constfold.run tr in
  let tr =
    run_ir options.passes.strength_reduce Strength_reduce.pass_name
      (Strength_reduce.run ~globals:tr.storage_globals)
      tr
  in
  let tr = run_ir options.passes.licm Licm.pass_name Licm.run tr in
  (* --- address assignment ----------------------------------------- *)
  let addresses, data_bytes =
    List.fold_left
      (fun (acc, next) (g : Ast.global) ->
        ((g.g_name, next) :: acc, align4 (next + storage_bytes g)))
      ([], 0) tr.storage_globals
  in
  let addresses = List.rev addresses in
  let storage =
    List.map
      (fun (g : Ast.global) ->
        (g.g_name, List.assoc g.g_name addresses, storage_bytes g))
      tr.storage_globals
  in
  let addr_symbols =
    List.map
      (fun (sym_name, sym_addr, sym_bytes) ->
        { Wn_analysis.Addr.sym_name; sym_addr; sym_bytes })
      storage
  in
  (* --- assembly passes -------------------------------------------- *)
  let lint_asm name asm =
    (match Asm.assemble asm with
    | Error e -> pass_err name e
    | Ok prog ->
        check_pass name (Wn_analysis.Check.program ~symbols:addr_symbols prog));
    record name Asm.pp_listing asm
  in
  let asm =
    try
      Codegen.generate
        {
          cg_body = tr.body;
          cg_globals =
            List.map (fun (g : Ast.global) -> (g.g_name, g)) tr.storage_globals;
          cg_addresses = addresses;
        }
    with Codegen.Error e -> err "codegen" e
  in
  lint_asm codegen_pass_name asm;
  let asm =
    if not options.passes.addr_cse then asm
    else begin
      let asm = Addr_cse.run asm in
      lint_asm Addr_cse.pass_name asm;
      asm
    end
  in
  (match dump_after with
  | Some name when not (List.mem_assoc name !dumps) ->
      err "dump-after"
        (Printf.sprintf "unknown or disabled pass %S; this build runs: %s" name
           (String.concat ", " (pass_names options)))
  | _ -> ());
  (* --- final program ---------------------------------------------- *)
  let program =
    match Asm.assemble asm with Ok p -> p | Error e -> err "assemble" e
  in
  let machine_code =
    try Encoding.encode_program program
    with Invalid_argument e -> err "encode" e
  in
  (* Round-trip self-check: the binary must decode to the program we
     are about to execute. *)
  (match Encoding.decode_program machine_code with
  | Ok decoded when decoded = program -> ()
  | Ok _ -> err "encode" "round-trip mismatch"
  | Error e -> err "decode" e);
  let symbols =
    List.map
      (fun (g : Ast.global) ->
        let addr =
          match List.assoc_opt g.g_name addresses with
          | Some a -> a
          | None -> err "layout" ("no address for " ^ g.g_name)
        in
        let layout =
          match List.assoc_opt g.g_name tr.layouts with
          | Some l -> l
          | None -> Layout.row_major g.g_ty
        in
        (g.g_name, { sym_global = g; sym_addr = addr; sym_layout = layout }))
      source.globals
  in
  let t =
    { source; info; options; asm; program; machine_code; symbols; storage;
      data_bytes; dumps = List.rev !dumps }
  in
  (* Post-codegen self-check: the static verifier must accept its own
     output.  Diagnostics are warnings by default; [strict] promotes
     error-severity findings to a compilation failure. *)
  let diags = lint t in
  (if diags <> [] then
     if strict && Wn_analysis.Diag.worst diags = Some Wn_analysis.Diag.Error
     then err "verify" (Format.asprintf "%a" Wn_analysis.Diag.pp_report diags)
     else Format.eprintf "%a@." Wn_analysis.Diag.pp_report diags);
  t

let compile_source ?options ?strict ?dump_after src =
  let program =
    try Parser.parse src with
    | Parser.Error e -> err "parse" e
    | Lexer.Error e -> err "lex" e
  in
  compile ?options ?strict ?dump_after program

let symbol t name =
  match List.assoc_opt name t.symbols with
  | Some s -> s
  | None -> err "symbol" ("unknown symbol " ^ name)

let code_size_bytes t = Encoding.code_size_bytes t.program

let pp_listing ppf t = Asm.pp_listing ppf t.asm
