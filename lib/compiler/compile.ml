open Wn_isa
open Wn_lang

type mode = Precise | Anytime

type options = { mode : mode; vector_loads : bool }

let precise = { mode = Precise; vector_loads = false }
let anytime = { mode = Anytime; vector_loads = false }
let anytime_vector_loads = { mode = Anytime; vector_loads = true }

type symbol = {
  sym_global : Ast.global;
  sym_addr : int;
  sym_layout : Layout.t;
}

type t = {
  source : Ast.program;
  info : Sema.info;
  options : options;
  asm : Asm.program;
  program : int Instr.t array;
  machine_code : int32 array;
  symbols : (string * symbol) list;
  storage : (string * int * int) list;
  data_bytes : int;
}

exception Error of string

let err stage msg = raise (Error (Printf.sprintf "%s: %s" stage msg))

let storage_bytes (g : Ast.global) = g.g_count * Ast.ty_bytes g.g_ty

let align4 n = (n + 3) land lnot 3

let verify ?runtime ?budget ?cycle_energy t =
  Wn_analysis.Progress.analyze ?runtime ?budget ?cycle_energy
    (Wn_analysis.Cfg.build t.program)

let lint t =
  let symbols =
    List.map
      (fun (sym_name, sym_addr, sym_bytes) ->
        { Wn_analysis.Addr.sym_name; sym_addr; sym_bytes })
      t.storage
  in
  let structural = Wn_analysis.Check.program ~symbols t.program in
  (* Forward-progress findings at the default runtime (Clank watchdog)
     and the paper's default capacitor: a program whose WCEC regions
     cannot fit one charge is broken for any deployment, so the lint
     gate sees it. *)
  let progress = Wn_analysis.Progress.diagnostics (verify t) in
  List.sort Wn_analysis.Diag.compare (structural @ progress)

let compile ?(options = anytime) ?(strict = false) (source : Ast.program) =
  let info =
    try Sema.analyze source with Sema.Error e -> err "sema" e
  in
  let mode = match options.mode with Precise -> `Precise | Anytime -> `Anytime in
  let tr =
    try Transform.apply ~mode ~vector_loads:options.vector_loads info source
    with Transform.Error e -> err "transform" e
  in
  (* Assign data addresses to the storage-level globals. *)
  let addresses, data_bytes =
    List.fold_left
      (fun (acc, next) (g : Ast.global) ->
        ((g.g_name, next) :: acc, align4 (next + storage_bytes g)))
      ([], 0) tr.storage_globals
  in
  let addresses = List.rev addresses in
  let asm =
    try
      Codegen.generate
        {
          cg_body = tr.body;
          cg_globals = List.map (fun (g : Ast.global) -> (g.g_name, g)) tr.storage_globals;
          cg_addresses = addresses;
        }
    with Codegen.Error e -> err "codegen" e
  in
  let program =
    match Asm.assemble asm with Ok p -> p | Error e -> err "assemble" e
  in
  let machine_code =
    try Encoding.encode_program program
    with Invalid_argument e -> err "encode" e
  in
  (* Round-trip self-check: the binary must decode to the program we
     are about to execute. *)
  (match Encoding.decode_program machine_code with
  | Ok decoded when decoded = program -> ()
  | Ok _ -> err "encode" "round-trip mismatch"
  | Error e -> err "decode" e);
  let symbols =
    List.map
      (fun (g : Ast.global) ->
        let addr =
          match List.assoc_opt g.g_name addresses with
          | Some a -> a
          | None -> err "layout" ("no address for " ^ g.g_name)
        in
        let layout =
          match List.assoc_opt g.g_name tr.layouts with
          | Some l -> l
          | None -> Layout.row_major g.g_ty
        in
        (g.g_name, { sym_global = g; sym_addr = addr; sym_layout = layout }))
      source.globals
  in
  let storage =
    List.map
      (fun (g : Ast.global) ->
        (g.g_name, List.assoc g.g_name addresses, storage_bytes g))
      tr.storage_globals
  in
  let t =
    { source; info; options; asm; program; machine_code; symbols; storage;
      data_bytes }
  in
  (* Post-codegen self-check: the static verifier must accept its own
     output.  Diagnostics are warnings by default; [strict] promotes
     error-severity findings to a compilation failure. *)
  let diags = lint t in
  (if diags <> [] then
     if strict && Wn_analysis.Diag.worst diags = Some Wn_analysis.Diag.Error
     then err "verify" (Format.asprintf "%a" Wn_analysis.Diag.pp_report diags)
     else Format.eprintf "%a@." Wn_analysis.Diag.pp_report diags);
  t

let compile_source ?options ?strict src =
  let program =
    try Parser.parse src with
    | Parser.Error e -> err "parse" e
    | Lexer.Error e -> err "lex" e
  in
  compile ?options ?strict program

let symbol t name =
  match List.assoc_opt name t.symbols with
  | Some s -> s
  | None -> err "symbol" ("unknown symbol " ^ name)

let code_size_bytes t = Encoding.code_size_bytes t.program

let pp_listing ppf t = Asm.pp_listing ppf t.asm
