open Wn_util

type t =
  | Row_major of { elem_bits : int; signed : bool }
  | Subword_major of {
      elem_bits : int;
      signed : bool;
      bits : int;
      lane_bits : int;
      count : int;
      biased : bool;
    }

let row_major ty =
  Row_major { elem_bits = Wn_lang.Ast.ty_bits ty; signed = Wn_lang.Ast.ty_signed ty }

let subword_major ?(biased = false) ~elem_bits ~signed ~bits ~lane_bits ~count
    () =
  if bits <= 0 || elem_bits mod bits <> 0 then
    invalid_arg "Layout.subword_major: bits must divide elem_bits";
  if lane_bits < bits || 32 mod lane_bits <> 0 then
    invalid_arg "Layout.subword_major: bad lane width";
  Subword_major { elem_bits; signed; bits; lane_bits; count; biased }

let planes = function
  | Row_major _ -> 1
  | Subword_major { elem_bits; bits; _ } -> elem_bits / bits

let lanes_per_word = function
  | Row_major _ -> 1
  | Subword_major { lane_bits; _ } -> 32 / lane_bits

let words_per_plane t ~count =
  match t with
  | Row_major _ -> invalid_arg "Layout.words_per_plane: row-major"
  | Subword_major _ ->
      let lpw = lanes_per_word t in
      (count + lpw - 1) / lpw

let elem_bits = function
  | Row_major { elem_bits; _ } | Subword_major { elem_bits; _ } -> elem_bits

let is_signed = function
  | Row_major { signed; _ } | Subword_major { signed; _ } -> signed

let storage_bytes t ~count =
  match t with
  | Row_major { elem_bits; _ } -> count * (elem_bits / 8)
  | Subword_major _ -> 4 * planes t * words_per_plane t ~count

(* 32-bit elements go through two uint16 halves: [get_uint16_le]
   returns an immediate int, where the int32 accessors box. *)
let read_elem buf ~elem_bits addr =
  match elem_bits with
  | 8 -> Char.code (Bytes.get buf addr)
  | 16 -> Bytes.get_uint16_le buf addr
  | 32 ->
      Bytes.get_uint16_le buf addr lor (Bytes.get_uint16_le buf (addr + 2) lsl 16)
  | _ -> invalid_arg "Layout: element width"

let encode t values =
  match t with
  | Row_major { elem_bits; _ } -> (
      (* Width-specialized loops: one match per call instead of one per
         element, and the truncation mask inline. *)
      let n = Array.length values in
      match elem_bits with
      | 8 ->
          let buf = Bytes.create n in
          for i = 0 to n - 1 do
            Bytes.unsafe_set buf i
              (Char.unsafe_chr (Array.unsafe_get values i land 0xFF))
          done;
          buf
      | 16 ->
          let buf = Bytes.create (2 * n) in
          for i = 0 to n - 1 do
            Bytes.set_uint16_le buf (2 * i) (Array.unsafe_get values i land 0xFFFF)
          done;
          buf
      | 32 ->
          let buf = Bytes.create (4 * n) in
          for i = 0 to n - 1 do
            let v = Array.unsafe_get values i in
            Bytes.set_uint16_le buf (4 * i) (v land 0xFFFF);
            Bytes.set_uint16_le buf ((4 * i) + 2) ((v lsr 16) land 0xFFFF)
          done;
          buf
      | _ -> invalid_arg "Layout: element width")
  | Subword_major { elem_bits; bits; lane_bits; count; biased; _ } ->
      if Array.length values <> count then
        invalid_arg "Layout.encode: element count mismatch";
      let lpw = 32 / lane_bits in
      let wpp = (count + lpw - 1) / lpw in
      let n_planes = elem_bits / bits in
      let bias = if biased then 1 lsl (elem_bits - 1) else 0 in
      let digit_mask = Subword.mask bits in
      let elem_mask = Subword.mask elem_bits in
      let buf = Bytes.make (4 * n_planes * wpp) '\000' in
      (* Plane-major gather: compose each output word in an int
         accumulator from its lpw source elements and write it once.
         Each lane is written exactly once, so plain or-accumulation
         from zero produces the same words the lane-insert walk did. *)
      for p = 0 to n_planes - 1 do
        let shift = p * bits in
        for w = 0 to wpp - 1 do
          let base = w * lpw in
          let last = min (lpw - 1) (count - 1 - base) in
          let acc = ref 0 in
          for lane = 0 to last do
            let v = (Array.unsafe_get values (base + lane) land elem_mask) lxor bias in
            acc := !acc lor (((v lsr shift) land digit_mask) lsl (lane * lane_bits))
          done;
          let off = 4 * ((p * wpp) + w) in
          Bytes.set_uint16_le buf off (!acc land 0xFFFF);
          Bytes.set_uint16_le buf (off + 2) ((!acc lsr 16) land 0xFFFF)
        done
      done;
      buf

let decode t ~count buf =
  match t with
  | Row_major { elem_bits; _ } ->
      Array.init count (fun i -> read_elem buf ~elem_bits (i * (elem_bits / 8)))
  | Subword_major { elem_bits; bits; lane_bits; count = c; biased; _ } ->
      if count <> c then invalid_arg "Layout.decode: element count mismatch";
      let lpw = 32 / lane_bits in
      let wpp = (count + lpw - 1) / lpw in
      let n_planes = elem_bits / bits in
      let bias = if biased then 1 lsl (elem_bits - 1) else 0 in
      let word w =
        Bytes.get_uint16_le buf (4 * w)
        lor (Bytes.get_uint16_le buf ((4 * w) + 2) lsl 16)
      in
      Array.init count (fun i ->
          let acc = ref 0 in
          for p = 0 to n_planes - 1 do
            let w = (p * wpp) + (i / lpw) and lane = i mod lpw in
            let digit = Subword.extract ~bits:lane_bits ~pos:lane (word w) in
            acc := (!acc + (digit lsl (p * bits))) land 0xFFFF_FFFF
          done;
          Subword.truncate ~bits:elem_bits !acc lxor bias)

let decode_signed t ~count buf =
  let patterns = decode t ~count buf in
  if is_signed t then
    Array.map (fun v -> Subword.to_signed ~bits:(elem_bits t) v) patterns
  else patterns

let pp ppf = function
  | Row_major { elem_bits; signed } ->
      Format.fprintf ppf "row-major %s%d" (if signed then "i" else "u") elem_bits
  | Subword_major { elem_bits; signed; bits; lane_bits; count; biased } ->
      Format.fprintf ppf "subword-major %s%d bits=%d lanes=%d count=%d%s"
        (if signed then "i" else "u")
        elem_bits bits lane_bits count
        (if biased then " biased" else "")
