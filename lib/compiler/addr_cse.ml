open Wn_isa

let pass_name = "addr-cse"

let run (prog : Asm.program) : Asm.program =
  let known = Array.make Reg.count None in
  let get r = known.(Reg.index r) in
  let set r v = known.(Reg.index r) <- v in
  let keep_instr i =
    match i with
    | Instr.Mov_imm (rd, imm) ->
        if get rd = Some imm then false
        else begin
          set rd (Some imm);
          true
        end
    | Instr.Movt (rd, imm) -> (
        match get rd with
        | Some v ->
            let v' = (imm lsl 16) lor (v land 0xFFFF) in
            if v' = v then false
            else begin
              set rd (Some v');
              true
            end
        | None -> true)
    | Instr.Mov (rd, rs) -> (
        match get rs with
        | Some v when get rd = Some v -> false
        | kv ->
            set rd kv;
            true)
    | i ->
        List.iter (fun r -> set r None) (Instr.defs i);
        true
  in
  let keep item =
    match item with
    | Asm.Label _ ->
        Array.fill known 0 (Array.length known) None;
        true
    | Asm.Comment _ -> true
    | Asm.I i -> keep_instr i
  in
  (* the tracked state makes [keep] order-sensitive: fold explicitly *)
  List.rev (List.fold_left (fun acc it -> if keep it then it :: acc else acc) [] prog)
