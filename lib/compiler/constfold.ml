open Wn_lang
open Ast

let pass_name = "constfold"

let u32 v = v land 0xFFFF_FFFF

(* The signed value of a 32-bit pattern, for arithmetic right shift. *)
let s32 v =
  let v = u32 v in
  if v land 0x8000_0000 <> 0 then v - 0x1_0000_0000 else v

let fold_binop op a b =
  match op with
  | Add -> Some (u32 (a + b))
  | Sub -> Some (u32 (a - b))
  | Mul -> Some (u32 (a * b))
  | And -> Some (u32 (a land b))
  | Or -> Some (u32 (a lor b))
  | Xor -> Some (u32 (a lxor b))
  | Shl -> if b >= 0 && b < 32 then Some (u32 (a lsl b)) else None
  | Shr -> if b >= 0 && b < 32 then Some (u32 (s32 a asr b)) else None
  | Eq | Ne | Lt | Le | Gt | Ge -> None

(* One rewriting step, applied bottom-up by [map_expr]; operands are
   already folded when it runs. *)
let step e =
  match e with
  | Binop (op, Int a, Int b) -> (
      match fold_binop op a b with Some v -> Int v | None -> e)
  | Binop (Add, e', Int 0) | Binop (Add, Int 0, e') -> e'
  | Binop (Sub, e', Int 0) -> e'
  | Binop (Mul, e', Int 1) | Binop (Mul, Int 1, e') -> e'
  | Binop ((Shl | Shr), e', Int 0) -> e'
  | Binop ((Or | Xor), e', Int 0) | Binop ((Or | Xor), Int 0, e') -> e'
  | Neg (Int a) -> Int (u32 (-a))
  | Bnot (Int a) -> Int (u32 (lnot a))
  | e -> e

let expr e = map_expr step e

let run stmts = List.map (map_exprs_stmt step) stmts
