(** Fleet-scale deployment simulation (the `wn fleet` service).

    A {!descriptor} expands into [devices] independent units — each a
    [(program, trace seed, capacitor, runtime, subword config)] device
    of a simulated deployment, the population-of-configurations framing
    of batteryless IoT (Approxify).  A long-lived {!Wn_exec.Pool}
    schedules the units in dynamically-pulled batches; every batch
    folds its devices into a bounded-memory streaming aggregator
    ({!Agg}: percentile sketch + moments, no sample lists), and the
    driver merges the per-batch aggregates in batch order — memory
    stays [O(batches * sketch)] whatever the fleet size, and the report
    is byte-identical at any [jobs].

    Shared across pool domains: the compiled programs (one
    [Runner.build] per [(benchmark, bits)], immutable after
    construction, exactly like the PR-5 read-only keyframe/skim
    stores).  Everything per-device — machine, memory, capacitor,
    supply, trace, RNG — is built inside the unit. *)

open Wn_workloads

type trace_class = Rf | Square | Constant

val trace_class_name : trace_class -> string
val trace_class_of_string : string -> trace_class option

type descriptor = {
  devices : int;  (** fleet size (>= 1) *)
  benchmarks : string list;  (** suite names, crossed with systems x bits *)
  systems : Wn_core.Intermittent.system list;
  bits_list : int list;
  scale : Workload.scale;
  samples_per_device : int;  (** tasks streamed through each device *)
  trace_class : trace_class;
  trace_duration_s : float;
  seed : int;  (** root seed; every device derives distinct sub-seeds *)
  capacitance : float;  (** farads, per device *)
  cycle_energy : float;
  batch : int;  (** units per scheduled batch; 0 = auto (~256 batches) *)
  sketch_capacity : int;
  engine : Wn_runtime.Executor.engine;
      (** stepping engine per device (default [Block]); the report is
          byte-identical across engines *)
}

val default : descriptor
(** 1000 devices of MatAdd\@8 under Clank on 4 s RF traces, 1 task
    each, 10 µF, auto batching, sketch capacity 256. *)

type unit_spec = {
  device : int;
  bench : string;
  system : Wn_core.Intermittent.system;
  bits : int;
  trace_seed : int;
  input_seed : int;
}

val expand : descriptor -> unit_spec array
(** The descriptor's unit list: device [d] takes configuration
    [d mod (benchmarks x systems x bits)] (round-robin) and the
    sub-seeds [seed + 2d] / [seed + 2d + 1].  A pure function of the
    descriptor — the schedule never depends on [jobs]. *)

val batch_size : descriptor -> int
(** The effective units-per-batch: [batch] if positive, else
    [ceil (devices / 256)] — bounded aggregate count, jobs-independent. *)

type report = {
  descriptor : descriptor;
  configs : string list;  (** expanded configuration labels, in order *)
  units : int;
  tasks : int;
  completed : int;
  skimmed : int;
  quality : Agg.summary;  (** NRMSE %% vs golden, completed tasks only *)
  energy : Agg.summary;  (** µJ drained per task *)
  outages : Agg.summary;  (** outages per task *)
  ontime : Agg.summary;  (** %% of wall cycles spent computing (incl. overhead) *)
}

val run : ?jobs:int -> descriptor -> report
(** Simulate the fleet.  Raises [Invalid_argument] on a malformed
    descriptor ([devices]/[samples_per_device]/[sketch_capacity] out of
    range, empty configuration lists) and [Not_found] on an unknown
    benchmark name — the CLI validates first.  The report is
    byte-identical under {!pp}/{!to_json} for every [jobs] >= 1. *)

val pp : Format.formatter -> report -> unit

val to_json : report -> string
(** Machine-readable report (schema [wn-fleet/1]). *)
