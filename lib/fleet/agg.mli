(** Bounded-memory streaming aggregation for fleet metrics.

    One {!metric} couples exact streaming moments (count, mean,
    variance via Welford, min/max) with a {!Sketch} for percentiles —
    constant memory per metric however many observations flow through.
    Merging is deterministic (no randomness anywhere), so folding
    per-batch metrics in a fixed batch order produces bit-identical
    summaries at any pool width. *)

module Moments : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit

  val merge : t -> t -> t
  (** Chan's parallel update: exact count, deterministic mean/variance
      combination.  Fresh result; arguments unchanged. *)

  val count : t -> int
  val mean : t -> float
  (** [nan] on an empty accumulator, like the other statistics. *)

  val variance : t -> float
  (** Population variance, [nan] when empty. *)

  val min : t -> float
  val max : t -> float
end

type metric

val metric : ?capacity:int -> unit -> metric
(** [capacity] sizes the percentile sketch (default 256). *)

val observe : metric -> float -> unit
val merge : metric -> metric -> metric
val count : metric -> int

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  rank_err : int;  (** the sketch's worst-case rank error at summary time *)
}

val summarize : metric -> summary
(** All floats are [nan] when [n = 0]. *)

val pp_summary : Format.formatter -> summary -> unit
(** One fixed-format line: deterministic byte-for-byte given equal
    summaries (the fleet report's building block). *)
