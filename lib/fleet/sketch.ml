(* KLL-style compactor hierarchy with a deterministic compaction rule.

   levels.(l) is an unordered buffer of items carrying weight 2^l; only
   the per-level multiset is observable (dump/quantile/rank sort), so
   buffers append in O(1) and sort only when compacting.  Compaction of
   a sorted even-length run keeps the odd positions — a deterministic
   stand-in for KLL's coin flip — which shifts any rank estimate by at
   most the level weight; [err] sums exactly that over the sketch's
   history, giving a per-instance worst-case bound the property tests
   check against exact Stats.percentile. *)

type t = {
  cap : int;
  mutable levels : float list array;
  mutable sizes : int array;
  mutable count : int;
  mutable err : int;
}

let create ?(capacity = 256) () =
  if capacity < 8 then invalid_arg "Sketch.create: capacity must be >= 8";
  { cap = capacity; levels = [| [] |]; sizes = [| 0 |]; count = 0; err = 0 }

let capacity t = t.cap
let count t = t.count
let rank_error_bound t = t.err

let ensure_level t l =
  if l >= Array.length t.levels then begin
    let n = Array.length t.levels in
    let levels = Array.make (l + 1) [] in
    let sizes = Array.make (l + 1) 0 in
    Array.blit t.levels 0 levels 0 n;
    Array.blit t.sizes 0 sizes 0 n;
    t.levels <- levels;
    t.sizes <- sizes
  end

(* Sort level [l], promote the odd positions of its even-length prefix
   to level [l+1] (weight doubles), keep the odd leftover (the
   maximum).  Postcondition: sizes.(l) <= 1. *)
let compact t l =
  let buf = Array.of_list t.levels.(l) in
  Array.sort Float.compare buf;
  let m = Array.length buf in
  let even = m land lnot 1 in
  let survivors = ref [] in
  (* walk downwards so the promoted list ends up in ascending order *)
  for i = (even / 2) - 1 downto 0 do
    survivors := buf.((2 * i) + 1) :: !survivors
  done;
  if m land 1 = 1 then begin
    t.levels.(l) <- [ buf.(m - 1) ];
    t.sizes.(l) <- 1
  end
  else begin
    t.levels.(l) <- [];
    t.sizes.(l) <- 0
  end;
  ensure_level t (l + 1);
  t.levels.(l + 1) <- List.rev_append (List.rev !survivors) t.levels.(l + 1);
  t.sizes.(l + 1) <- t.sizes.(l + 1) + (even / 2);
  t.err <- t.err + (1 lsl l)

let rec cascade t l =
  if l < Array.length t.levels then begin
    if t.sizes.(l) > t.cap then compact t l;
    cascade t (l + 1)
  end

let insert t x =
  t.count <- t.count + 1;
  t.levels.(0) <- x :: t.levels.(0);
  t.sizes.(0) <- t.sizes.(0) + 1;
  if t.sizes.(0) > t.cap then cascade t 0

let merge a b =
  if a.cap <> b.cap then invalid_arg "Sketch.merge: capacity mismatch";
  let n = max (Array.length a.levels) (Array.length b.levels) in
  let level src l = if l < Array.length src.levels then src.levels.(l) else [] in
  let size src l = if l < Array.length src.sizes then src.sizes.(l) else 0 in
  let t =
    {
      cap = a.cap;
      levels = Array.init n (fun l -> List.rev_append (level a l) (level b l));
      sizes = Array.init n (fun l -> size a l + size b l);
      count = a.count + b.count;
      err = a.err + b.err;
    }
  in
  cascade t 0;
  t

let pairs t =
  let acc = ref [] in
  Array.iteri
    (fun l buf -> List.iter (fun v -> acc := (v, 1 lsl l) :: !acc) buf)
    t.levels;
  let arr = Array.of_list !acc in
  Array.sort
    (fun (v1, w1) (v2, w2) ->
      let c = Float.compare v1 v2 in
      if c <> 0 then c else compare (w1 : int) w2)
    arr;
  arr

let dump t = Array.to_list (pairs t)

let quantile t p =
  if t.count = 0 then invalid_arg "Sketch.quantile: empty sketch";
  if p < 0.0 || p > 100.0 then invalid_arg "Sketch.quantile";
  let arr = pairs t in
  let target = p /. 100.0 *. float_of_int (t.count - 1) in
  let rec go i cum =
    let v, w = arr.(i) in
    if float_of_int (cum + w - 1) >= target || i = Array.length arr - 1 then v
    else go (i + 1) (cum + w)
  in
  go 0 0

let rank t x =
  let arr = pairs t in
  let r = ref 0 in
  Array.iter (fun (v, w) -> if v < x then r := !r + w) arr;
  !r
