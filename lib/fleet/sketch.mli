(** Deterministic mergeable quantile sketch.

    A KLL-style compactor hierarchy with a deterministic compaction
    rule: level [l] holds items of weight [2^l]; when a level outgrows
    the capacity it is sorted and the items at odd positions survive
    with doubled weight (an odd leftover — the maximum — stays behind).
    Each compaction of level [l] moves any query's estimated rank by at
    most [2^l], and the sketch accounts that worst case exactly in
    {!rank_error_bound}.

    Memory is [O(capacity * log (count / capacity))] however long the
    stream — the point of the fleet aggregator: a million-device sweep
    keeps kilobytes, not sample lists.

    Determinism: the state is a pure function of the insert/merge
    sequence (no randomized compaction coin), so aggregating fleet
    batches in a fixed batch order yields byte-identical reports at any
    pool width.  {!merge} is commutative in its arguments (the
    observable state depends only on the multiset of weighted items per
    level); it is {e not} associative byte-for-byte — different merge
    groupings may compact at different moments — but every grouping's
    estimates respect its own {!rank_error_bound}. *)

type t

val create : ?capacity:int -> unit -> t
(** A fresh empty sketch.  [capacity] (default 256) is the per-level
    buffer size; rank error scales as roughly
    [log2 (count/capacity) * count / capacity].  Raises
    [Invalid_argument] if [capacity < 8]. *)

val capacity : t -> int

val count : t -> int
(** Total stream elements inserted (merges included). *)

val insert : t -> float -> unit

val merge : t -> t -> t
(** [merge a b] is a fresh sketch summarising both streams; [a] and [b]
    are unchanged.  Raises [Invalid_argument] on mismatched
    capacities. *)

val quantile : t -> float -> float
(** [quantile t p] for [p] in [\[0, 100\]]: a stream value whose rank
    is within {!rank_error_bound} of [p/100 * (count - 1)] (weighted
    nearest rank).  Raises [Invalid_argument] on an empty sketch or
    [p] outside the range. *)

val rank : t -> float -> int
(** Estimated number of stream elements strictly below the value — off
    by at most {!rank_error_bound} from the true count. *)

val rank_error_bound : t -> int
(** Worst-case rank error accumulated so far: the sum of [2^l] over
    every compaction performed at level [l].  [0] until the first
    compaction — below [capacity] elements the sketch is exact. *)

val dump : t -> (float * int) list
(** The retained [(value, weight)] multiset, sorted by value then
    weight — a canonical observable state, used by the merge
    commutativity property test.  Weights sum to {!count}. *)
