module Moments = struct
  type t = {
    mutable n : int;
    mutable mean : float;
    mutable m2 : float;
    mutable lo : float;
    mutable hi : float;
  }

  let create () =
    { n = 0; mean = 0.0; m2 = 0.0; lo = Float.nan; hi = Float.nan }

  (* Welford's online update: numerically stable, no sample retained. *)
  let add t x =
    t.n <- t.n + 1;
    let d = x -. t.mean in
    t.mean <- t.mean +. (d /. float_of_int t.n);
    t.m2 <- t.m2 +. (d *. (x -. t.mean));
    if t.n = 1 then begin
      t.lo <- x;
      t.hi <- x
    end
    else begin
      if x < t.lo then t.lo <- x;
      if x > t.hi then t.hi <- x
    end

  (* Chan et al.'s pairwise combination. *)
  let merge a b =
    if a.n = 0 then { b with n = b.n }
    else if b.n = 0 then { a with n = a.n }
    else
      let n = a.n + b.n in
      let fa = float_of_int a.n and fb = float_of_int b.n in
      let d = b.mean -. a.mean in
      {
        n;
        mean = a.mean +. (d *. fb /. float_of_int n);
        m2 = a.m2 +. b.m2 +. (d *. d *. fa *. fb /. float_of_int n);
        lo = Float.min a.lo b.lo;
        hi = Float.max a.hi b.hi;
      }

  let count t = t.n
  let mean t = if t.n = 0 then Float.nan else t.mean
  let variance t = if t.n = 0 then Float.nan else t.m2 /. float_of_int t.n
  let min t = t.lo
  let max t = t.hi
end

type metric = { moments : Moments.t; sketch : Sketch.t }

let metric ?capacity () =
  { moments = Moments.create (); sketch = Sketch.create ?capacity () }

let observe m x =
  Moments.add m.moments x;
  Sketch.insert m.sketch x

let merge a b =
  {
    moments = Moments.merge a.moments b.moments;
    sketch = Sketch.merge a.sketch b.sketch;
  }

let count m = Moments.count m.moments

type summary = {
  n : int;
  mean : float;
  stddev : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
  rank_err : int;
}

let summarize m =
  let n = Moments.count m.moments in
  let q p = if n = 0 then Float.nan else Sketch.quantile m.sketch p in
  {
    n;
    mean = Moments.mean m.moments;
    stddev = (if n = 0 then Float.nan else sqrt (Moments.variance m.moments));
    min = Moments.min m.moments;
    max = Moments.max m.moments;
    p50 = q 50.0;
    p90 = q 90.0;
    p99 = q 99.0;
    rank_err = Sketch.rank_error_bound m.sketch;
  }

let pp_summary ppf s =
  if s.n = 0 then Format.fprintf ppf "(no samples)"
  else
    Format.fprintf ppf
      "mean %.4f  sd %.4f  min %.4f  p50 %.4f  p90 %.4f  p99 %.4f  max %.4f"
      s.mean s.stddev s.min s.p50 s.p90 s.p99 s.max
