open Wn_workloads
module Intermittent = Wn_core.Intermittent
module Runner = Wn_core.Runner
module Pool = Wn_exec.Pool

type trace_class = Rf | Square | Constant

let trace_class_name = function
  | Rf -> "rf"
  | Square -> "square"
  | Constant -> "constant"

let trace_class_of_string = function
  | "rf" -> Some Rf
  | "square" -> Some Square
  | "constant" -> Some Constant
  | _ -> None

type descriptor = {
  devices : int;
  benchmarks : string list;
  systems : Intermittent.system list;
  bits_list : int list;
  scale : Workload.scale;
  samples_per_device : int;
  trace_class : trace_class;
  trace_duration_s : float;
  seed : int;
  capacitance : float;
  cycle_energy : float;
  batch : int;
  sketch_capacity : int;
  engine : Wn_runtime.Executor.engine;
}

(* The 4 s trace bounds the simulated wall clock of a device that
   never completes its task; completing devices stop at commit, so the
   cap only matters for hopeless configurations. *)
let default =
  {
    devices = 1000;
    benchmarks = [ "MatAdd" ];
    systems = [ Intermittent.Clank ];
    bits_list = [ 8 ];
    scale = Workload.Small;
    samples_per_device = 1;
    trace_class = Rf;
    trace_duration_s = 4.0;
    seed = 42;
    capacitance = 10e-6;
    cycle_energy = Wn_power.Supply.default_cycle_energy;
    batch = 0;
    sketch_capacity = 256;
    engine = Wn_runtime.Executor.Block;
  }

type unit_spec = {
  device : int;
  bench : string;
  system : Intermittent.system;
  bits : int;
  trace_seed : int;
  input_seed : int;
}

let validate d =
  if d.devices < 1 then invalid_arg "Fleet: devices must be >= 1";
  if d.samples_per_device < 1 then
    invalid_arg "Fleet: samples_per_device must be >= 1";
  if d.batch < 0 then invalid_arg "Fleet: batch must be >= 0";
  if d.sketch_capacity < 8 then
    invalid_arg "Fleet: sketch_capacity must be >= 8";
  if d.capacitance <= 0.0 then invalid_arg "Fleet: capacitance must be > 0";
  if d.benchmarks = [] || d.systems = [] || d.bits_list = [] then
    invalid_arg "Fleet: empty configuration axis"

(* The configuration cross product, in (benchmark, system, bits) axis
   order — the order config labels are reported in. *)
let cross d =
  List.concat_map
    (fun bench ->
      List.concat_map
        (fun system -> List.map (fun bits -> (bench, system, bits)) d.bits_list)
        d.systems)
    d.benchmarks

let expand d =
  validate d;
  let configs = Array.of_list (cross d) in
  let n = Array.length configs in
  Array.init d.devices (fun device ->
      let bench, system, bits = configs.(device mod n) in
      {
        device;
        bench;
        system;
        bits;
        trace_seed = d.seed + (2 * device);
        input_seed = d.seed + (2 * device) + 1;
      })

(* Aggregate count stays bounded (and jobs-independent): auto batching
   targets ~256 batches however large the fleet, so the driver holds
   O(256 sketches), never O(devices) partials. *)
let batch_size d =
  if d.batch > 0 then d.batch else max 1 ((d.devices + 255) / 256)

type report = {
  descriptor : descriptor;
  configs : string list;
  units : int;
  tasks : int;
  completed : int;
  skimmed : int;
  quality : Agg.summary;
  energy : Agg.summary;
  outages : Agg.summary;
  ontime : Agg.summary;
}

let config_label (bench, system, bits) =
  Printf.sprintf "%s@%d/%s" bench bits (Intermittent.system_name system)

(* Per-batch streaming accumulator: counters plus one bounded metric
   per reported distribution.  Batches run on pool domains; the driver
   merges them in batch order. *)
type acc = {
  mutable a_tasks : int;
  mutable a_completed : int;
  mutable a_skimmed : int;
  a_quality : Agg.metric;
  a_energy : Agg.metric;
  a_outages : Agg.metric;
  a_ontime : Agg.metric;
}

let acc_create d =
  let capacity = d.sketch_capacity in
  {
    a_tasks = 0;
    a_completed = 0;
    a_skimmed = 0;
    a_quality = Agg.metric ~capacity ();
    a_energy = Agg.metric ~capacity ();
    a_outages = Agg.metric ~capacity ();
    a_ontime = Agg.metric ~capacity ();
  }

let acc_merge a b =
  {
    a_tasks = a.a_tasks + b.a_tasks;
    a_completed = a.a_completed + b.a_completed;
    a_skimmed = a.a_skimmed + b.a_skimmed;
    a_quality = Agg.merge a.a_quality b.a_quality;
    a_energy = Agg.merge a.a_energy b.a_energy;
    a_outages = Agg.merge a.a_outages b.a_outages;
    a_ontime = Agg.merge a.a_ontime b.a_ontime;
  }

let make_trace d spec =
  match d.trace_class with
  | Rf -> Wn_power.Trace.rf_burst ~seed:spec.trace_seed ~duration_s:d.trace_duration_s ()
  | Square ->
      Wn_power.Trace.square ~on_ms:2 ~off_ms:8 ~power:2e-3
        ~duration_s:d.trace_duration_s
  | Constant ->
      Wn_power.Trace.constant ~power:2e-3 ~duration_s:d.trace_duration_s

(* One device: a fresh trace, capacitor, supply and machine around the
   shared immutable build; its task stream folds into the batch
   accumulator.  Quality is only defined for committed outputs, so
   incomplete tasks count toward tasks/outages/on-time but not NRMSE. *)
let run_device d builds acc spec =
  let w, build, golden_policy = builds spec in
  let rng = Wn_util.Rng.create spec.input_seed in
  let samples =
    List.init d.samples_per_device (fun _ -> w.Workload.fresh_inputs rng)
  in
  let measures =
    Intermittent.run_stream
      ~capacitor:(Wn_power.Capacitor.create ~capacitance:d.capacitance ())
      ~engine:d.engine ~cycle_energy:d.cycle_energy build golden_policy
      (make_trace d spec) samples
  in
  List.iter2
    (fun inputs (m : Intermittent.task_measure) ->
      acc.a_tasks <- acc.a_tasks + 1;
      if m.Intermittent.ok then begin
        acc.a_completed <- acc.a_completed + 1;
        if m.Intermittent.skimmed then acc.a_skimmed <- acc.a_skimmed + 1;
        let golden = w.Workload.golden inputs in
        Agg.observe acc.a_quality
          (Runner.nrmse_pct ~reference:golden m.Intermittent.out)
      end;
      Agg.observe acc.a_energy (m.Intermittent.energy_j *. 1e6);
      Agg.observe acc.a_outages (float_of_int m.Intermittent.outages);
      Agg.observe acc.a_ontime
        (if m.Intermittent.wall = 0 then 0.0
         else
           100.0
           *. float_of_int (m.Intermittent.active + m.Intermittent.overhead)
           /. float_of_int m.Intermittent.wall))
    samples measures

let run ?(jobs = 1) d =
  if jobs < 1 then invalid_arg "Fleet.run: jobs must be >= 1";
  let specs = expand d in
  let configs = cross d in
  (* One compiled build per (benchmark, bits): compiled once, shared
     immutable across every pool domain. *)
  let builds =
    List.concat_map
      (fun bench ->
        List.map
          (fun bits ->
            let w = Suite.find d.scale bench in
            let cfg = { Workload.bits; provisioned = true } in
            ((bench, bits), (w, Runner.build w cfg)))
          d.bits_list)
      d.benchmarks
  in
  let lookup spec =
    let w, build = List.assoc (spec.bench, spec.bits) builds in
    (w, build, Intermittent.policy spec.system)
  in
  let batch = batch_size d in
  let n_batches = (Array.length specs + batch - 1) / batch in
  let pool = Pool.create ~jobs:(max 1 (min jobs n_batches)) () in
  let accs =
    Fun.protect
      ~finally:(fun () -> Pool.shutdown pool)
      (fun () ->
        Pool.map_batches pool ~batch
          (fun chunk ->
            let acc = acc_create d in
            Array.iter (run_device d lookup acc) chunk;
            acc)
          specs)
  in
  let total =
    match accs with
    | [] -> acc_create d
    | first :: rest -> List.fold_left acc_merge first rest
  in
  {
    descriptor = d;
    configs = List.map config_label configs;
    units = Array.length specs;
    tasks = total.a_tasks;
    completed = total.a_completed;
    skimmed = total.a_skimmed;
    quality = Agg.summarize total.a_quality;
    energy = Agg.summarize total.a_energy;
    outages = Agg.summarize total.a_outages;
    ontime = Agg.summarize total.a_ontime;
  }

let pct part whole =
  if whole = 0 then 0.0 else 100.0 *. float_of_int part /. float_of_int whole

let pp ppf r =
  let d = r.descriptor in
  Format.fprintf ppf "fleet: %d devices x %d task(s) = %d tasks@\n" r.units
    d.samples_per_device r.tasks;
  Format.fprintf ppf "  configs (round-robin): %s@\n"
    (String.concat " " r.configs);
  Format.fprintf ppf
    "  trace %s seed %d, cap %.1f uF, batch %d, sketch k=%d@\n"
    (trace_class_name d.trace_class)
    d.seed (d.capacitance *. 1e6) (batch_size d) d.sketch_capacity;
  Format.fprintf ppf "  completed %d/%d (%.1f%%), %d via skim (%.1f%%)@\n"
    r.completed r.tasks (pct r.completed r.tasks) r.skimmed
    (pct r.skimmed r.tasks);
  Format.fprintf ppf "  quality NRMSE%% %a@\n" Agg.pp_summary r.quality;
  Format.fprintf ppf "  energy uJ/task %a@\n" Agg.pp_summary r.energy;
  Format.fprintf ppf "  outages/task   %a@\n" Agg.pp_summary r.outages;
  Format.fprintf ppf "  on-time %%      %a@\n" Agg.pp_summary r.ontime

let json_summary name (s : Agg.summary) =
  let f v = if Float.is_nan v then "null" else Printf.sprintf "%.6f" v in
  Printf.sprintf
    "\"%s\": {\"n\": %d, \"mean\": %s, \"stddev\": %s, \"min\": %s, \"p50\": \
     %s, \"p90\": %s, \"p99\": %s, \"max\": %s, \"rank_err\": %d}"
    name s.Agg.n (f s.Agg.mean) (f s.Agg.stddev) (f s.Agg.min) (f s.Agg.p50)
    (f s.Agg.p90) (f s.Agg.p99) (f s.Agg.max) s.Agg.rank_err

let to_json r =
  let d = r.descriptor in
  String.concat ""
    [
      "{\n";
      "  \"schema\": \"wn-fleet/1\",\n";
      Printf.sprintf "  \"devices\": %d,\n" r.units;
      Printf.sprintf "  \"tasks\": %d,\n" r.tasks;
      Printf.sprintf "  \"completed\": %d,\n" r.completed;
      Printf.sprintf "  \"skimmed\": %d,\n" r.skimmed;
      Printf.sprintf "  \"configs\": [%s],\n"
        (String.concat ", "
           (List.map (fun c -> Printf.sprintf "%S" c) r.configs));
      Printf.sprintf "  \"trace\": %S,\n" (trace_class_name d.trace_class);
      Printf.sprintf "  \"seed\": %d,\n" d.seed;
      Printf.sprintf "  \"batch\": %d,\n" (batch_size d);
      Printf.sprintf "  \"sketch_capacity\": %d,\n" d.sketch_capacity;
      "  " ^ json_summary "quality_nrmse_pct" r.quality ^ ",\n";
      "  " ^ json_summary "energy_uj_per_task" r.energy ^ ",\n";
      "  " ^ json_summary "outages_per_task" r.outages ^ ",\n";
      "  " ^ json_summary "ontime_pct" r.ontime ^ "\n";
      "}\n";
    ]
