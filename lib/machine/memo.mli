(** Direct-mapped memoization table for multiply results (Section V-E).

    The paper uses a 16-entry table indexed by the concatenation of the
    two least-significant bits of each operand, with the remaining
    operand bits as tag.  A hit returns the product in a single cycle
    instead of the 4/8/16 cycles of an iterative multiply.
    Multiplications with a zero operand are handled by zero-skipping and
    are never installed in the table. *)

type t

val create : ?entries:int -> unit -> t
(** [entries] must be a power of two (default 16). *)

val entries : t -> int

val lookup : t -> a:int -> b:int -> int option
(** Cached product of the operand pair, if present.  Counts a hit or a
    miss. *)

val insert : t -> a:int -> b:int -> result:int -> unit

val find_or_add : t -> a:int -> b:int -> miss:int -> int
(** Combined lookup-or-install with a single table probe (one index/tag
    computation instead of the two that [lookup]-then-[insert] pays).
    On a hit the cached product is returned and a hit is counted; on a
    miss [miss] is installed, returned, and a miss is counted — exactly
    the counter behaviour of {!lookup} followed by {!insert}. *)

val last_was_hit : t -> bool
(** Whether the most recent {!lookup} or {!find_or_add} on this table
    hit.  Lets the allocation-free machine fast path learn the probe
    outcome without an [option]. *)

val hits : t -> int
val misses : t -> int

val clear : t -> unit
(** Empty the table and reset counters. *)

(** {2 Snapshot / restore} *)

type snapshot
(** An immutable capture of the slot arrays and hit/miss counters. *)

val snapshot : t -> snapshot

val restore : t -> snapshot -> unit
(** Blit a snapshot back into a table of the same entry count, in
    place — predecoded dispatch closures holding the table stay valid.
    Raises [Invalid_argument] on a size mismatch. *)

val state_equal : t -> snapshot -> bool
(** True iff the table's slot contents equal the snapshot's (the
    hit/miss statistics are ignored: slots alone determine every
    future lookup). *)
