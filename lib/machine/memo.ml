(* Slots live in three parallel int arrays rather than an [entry option
   array]: probes and installs are then pure int-array indexing, so the
   multiply front end allocates nothing.  An empty slot is tag_a = -1,
   which no real tag can equal (tags are logical right shifts of the
   operands, hence non-negative). *)
type t = {
  tag_a : int array;
  tag_b : int array;
  result : int array;
  half : int; (* index bits taken from operand a *)
  rest : int; (* index bits taken from operand b *)
  mask_a : int;
  mask_b : int;
  mutable hit_count : int;
  mutable miss_count : int;
  mutable last_hit : bool;
}

let is_power_of_two n = n > 0 && n land (n - 1) = 0

let create ?(entries = 16) () =
  if not (is_power_of_two entries) then invalid_arg "Memo.create";
  let rec log2 n = if n = 1 then 0 else 1 + log2 (n / 2) in
  let index_bits = log2 entries in
  let half = index_bits / 2 in
  let rest = index_bits - half in
  {
    tag_a = Array.make entries (-1);
    tag_b = Array.make entries (-1);
    result = Array.make entries 0;
    half;
    rest;
    mask_a = (1 lsl half) - 1;
    mask_b = (1 lsl rest) - 1;
    hit_count = 0;
    miss_count = 0;
    last_hit = false;
  }

let entries t = Array.length t.result

(* Index: low bits of each operand concatenated, as in the paper's
   "concatenation of the two least significant bits of both operands"
   for the 16-entry table.  Tag: the remaining operand bits. *)
let slot t ~a ~b = ((a land t.mask_a) lsl t.rest) lor (b land t.mask_b)

let lookup t ~a ~b =
  let i = slot t ~a ~b in
  if t.tag_a.(i) = a lsr t.half && t.tag_b.(i) = b lsr t.rest then begin
    t.hit_count <- t.hit_count + 1;
    t.last_hit <- true;
    Some t.result.(i)
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    t.last_hit <- false;
    None
  end

let insert t ~a ~b ~result =
  let i = slot t ~a ~b in
  t.tag_a.(i) <- a lsr t.half;
  t.tag_b.(i) <- b lsr t.rest;
  t.result.(i) <- result

let find_or_add t ~a ~b ~miss =
  let i = slot t ~a ~b in
  if t.tag_a.(i) = a lsr t.half && t.tag_b.(i) = b lsr t.rest then begin
    t.hit_count <- t.hit_count + 1;
    t.last_hit <- true;
    t.result.(i)
  end
  else begin
    t.miss_count <- t.miss_count + 1;
    t.last_hit <- false;
    t.tag_a.(i) <- a lsr t.half;
    t.tag_b.(i) <- b lsr t.rest;
    t.result.(i) <- miss;
    miss
  end

let last_was_hit t = t.last_hit

let hits t = t.hit_count
let misses t = t.miss_count

(* A snapshot copies the three slot arrays and the counters; [restore]
   blits them back into an existing table of the same geometry.  The
   machine's predecoded dispatch closures capture the table itself, so
   restoring in place (rather than swapping the table out) keeps every
   predecode table valid. *)
type snapshot = {
  s_tag_a : int array;
  s_tag_b : int array;
  s_result : int array;
  s_hits : int;
  s_misses : int;
  s_last_hit : bool;
}

let snapshot t =
  {
    s_tag_a = Array.copy t.tag_a;
    s_tag_b = Array.copy t.tag_b;
    s_result = Array.copy t.result;
    s_hits = t.hit_count;
    s_misses = t.miss_count;
    s_last_hit = t.last_hit;
  }

(* Slot contents only: the hit/miss counters are statistics and the
   slots alone determine future lookup results (and hence timing). *)
let state_equal t s =
  Array.length s.s_result = Array.length t.result
  && t.tag_a = s.s_tag_a && t.tag_b = s.s_tag_b && t.result = s.s_result

let restore t s =
  let n = Array.length t.result in
  if Array.length s.s_result <> n then invalid_arg "Memo.restore: size mismatch";
  Array.blit s.s_tag_a 0 t.tag_a 0 n;
  Array.blit s.s_tag_b 0 t.tag_b 0 n;
  Array.blit s.s_result 0 t.result 0 n;
  t.hit_count <- s.s_hits;
  t.miss_count <- s.s_misses;
  t.last_hit <- s.s_last_hit

let clear t =
  Array.fill t.tag_a 0 (Array.length t.tag_a) (-1);
  Array.fill t.tag_b 0 (Array.length t.tag_b) (-1);
  t.hit_count <- 0;
  t.miss_count <- 0;
  t.last_hit <- false
