open Wn_util
open Wn_isa

type config = { memo_entries : int option; zero_skip : bool }

let default_config = { memo_entries = None; zero_skip = false }

(* The core keeps two representations of the program: the [int Instr.t]
   array (the architectural instruction memory, used for disassembly,
   static analysis and the reference interpreter) and a predecoded
   dispatch table [code] built once at [create] — one closure per PC,
   capturing only immutable operand data (register indices, immediates,
   precomputed latencies).  [step_fast] dispatches through [code] and
   reports its effects in the [last_*] scratch fields instead of
   allocating a [step_result]; [step] is a compatibility wrapper that
   reifies the scratch fields into the record.

   Flags are four mutable bools (not a [Cond.flags] record) so [Cmp]
   does not allocate; [flags] materialises the record on demand. *)
type t = {
  program : int Instr.t array;
  mem : Wn_mem.Memory.t;
  regs : int array;
  mutable pcv : int;
  mutable fn : bool;
  mutable fz : bool;
  mutable fc : bool;
  mutable fv : bool;
  mutable halt : bool;
  mutable skim : int option;
  memo_table : Memo.t option;
  zero_skip : bool;
  mutable retired : int;
  mutable wn_retired : int;
  mutable cycles : int;
  (* Step budget for fault injection: -1 means unlimited; a value n >= 0
     counts down by one per retired instruction (on both the fast and
     the reference path) and holds at 0.  [budget_exhausted] then lets
     an executor force an outage at an exact instruction boundary
     without per-step overhead beyond one int compare. *)
  mutable steps_left : int;
  code : (t -> unit) array;
  (* step_fast scratch: effects of the last instruction, encoded without
     allocation.  Addresses are -1 when the instruction made no access
     of that kind; the byte counts are only meaningful when the
     corresponding address is >= 0. *)
  mutable last_pc : int;
  mutable last_cycles : int;
  mutable last_read_addr : int;
  mutable last_read_bytes : int;
  mutable last_wrote_addr : int;
  mutable last_wrote_bytes : int;
  mutable last_memo_hit : bool;
  mutable last_zero_skipped : bool;
  mutable last_skm : bool;
  (* Block-compiled execution: per-pc table of fused superinstructions
     (entries only at run-start pcs), built lazily on first use because
     it needs a CFG pass over the program.  [blk_reads] is the scratch
     ring fused load closures record their effective addresses into —
     fixed slots, one per load of the executing run, so the executor can
     replay Clank read tracking after the block commits. *)
  mutable fused_table : fused option array;
  mutable blk_reads : int array;
  mutable blocks_built : bool;
}

(* One fused run: straight-line, store-free, [Skm]-free, statically
   timed (see [Wn_analysis.Fuse]).  [b_code] holds one bare closure per
   instruction — the architectural effect only, none of the per-step
   scratch/pc/statistics writes, which [exec_block] batches. *)
and fused = {
  b_first : int;
  b_len : int;
  b_cycles : int;  (* total latency: sum of [Instr.worst_cycles], exact *)
  b_pre_cycles : int;  (* cycles before the last instruction *)
  b_last_cost : int;
  b_costs : int array;  (* static per-instruction latency, in order *)
  b_loads : int;  (* load instructions in the run *)
  b_wn : int;  (* WN-extension instructions in the run *)
  b_last_is_load : bool;
  b_read_bytes : int;  (* bytes of the run's last load; 0 if no load *)
  b_code : (t -> unit) array;
}

let u32 v = v land 0xFFFF_FFFF

let signed32 v = Subword.to_signed ~bits:32 v

(* Flag computation for compares: NZCV of rn - rm on the 32-bit
   datapath. *)
let set_compare_flags t a b =
  let sa = signed32 a and sb = signed32 b in
  let result = u32 (sa - sb) in
  let n = result land 0x8000_0000 <> 0 in
  t.fn <- n;
  t.fz <- result = 0;
  t.fc <- a >= b;
  (* signed overflow: operands of differing sign and the truncated
     result's sign differs from the minuend's *)
  t.fv <- (sa < 0) <> (sb < 0) && (sa < 0) <> n

(* Cond.holds over the unboxed flag fields (same truth table, no
   record to build). *)
let holds c t =
  match (c : Cond.t) with
  | Al -> true
  | Eq -> t.fz
  | Ne -> not t.fz
  | Lt -> t.fn <> t.fv
  | Ge -> t.fn = t.fv
  | Gt -> (not t.fz) && t.fn = t.fv
  | Le -> t.fz || t.fn <> t.fv
  | Lo -> not t.fc
  | Hs -> t.fc
  | Mi -> t.fn
  | Pl -> not t.fn

let alu_eval op a b =
  match (op : Instr.alu_op) with
  | Add -> a + b
  | Sub -> a - b
  | And -> a land b
  | Orr -> a lor b
  | Eor -> a lxor b
  | Bic -> a land lnot b
  | Adc -> a + b (* carry-in unused: the compiler never emits Adc/Sbc chains *)
  | Sbc -> a - b

(* Digit-by-digit (restoring) square root: decide result bits from the
   most significant down; each decision is final, so computing only the
   top [bits] of the 16-bit root is exact truncation of the full
   root. *)
let isqrt_top ~bits n =
  let r = ref 0 in
  for bitpos = 15 downto 16 - bits do
    let candidate = !r lor (1 lsl bitpos) in
    if candidate * candidate <= n then r := candidate
  done;
  !r

(* ---------------- predecode ---------------- *)

let reader (width : Instr.width) ~signed =
  let open Wn_mem in
  match (width, signed) with
  | Instr.Byte, false -> fun mem addr -> Memory.read8 mem addr
  | Instr.Byte, true -> fun mem addr -> u32 (Memory.read8_signed mem addr)
  | Instr.Half, false -> fun mem addr -> Memory.read16 mem addr
  | Instr.Half, true -> fun mem addr -> u32 (Memory.read16_signed mem addr)
  | Instr.Word, _ -> fun mem addr -> Memory.read32 mem addr

let writer (width : Instr.width) =
  let open Wn_mem in
  match width with
  | Instr.Byte -> Memory.write8
  | Instr.Half -> Memory.write16
  | Instr.Word -> Memory.write32

let access_bytes (width : Instr.width) =
  match width with Instr.Byte -> 1 | Instr.Half -> 2 | Instr.Word -> 4

(* Multiply front end (zero-skip / memoization), specialized per machine
   configuration at predecode time.  Decides the latency actually paid
   and the hit/skip statistics; the caller writes the product. *)
let mul_front ~zero_skip ~memo_table ~full =
  match (memo_table, zero_skip) with
  | None, false -> fun t _a _b -> t.last_cycles <- full
  | None, true ->
      fun t a b ->
        if a = 0 || b = 0 then begin
          t.last_cycles <- 1;
          t.last_zero_skipped <- true
        end
        else t.last_cycles <- full
  | Some table, zs ->
      fun t a b ->
        if zs && (a = 0 || b = 0) then begin
          t.last_cycles <- 1;
          t.last_zero_skipped <- true
        end
        else begin
          ignore (Memo.find_or_add table ~a ~b ~miss:(u32 (a * b)));
          if Memo.last_was_hit table then begin
            t.last_cycles <- 1;
            t.last_memo_hit <- true
          end
          else t.last_cycles <- full
        end

(* One dispatch closure per PC.  Closures never capture the machine
   itself, only operand data, so a single predecoded table serves the
   machine for its whole lifetime — [reset_for_new_task] and
   [scrub_volatile] need no re-decode. *)
let compile_op ~zero_skip ~memo_table pc (i : int Instr.t) : t -> unit =
  let next = pc + 1 in
  let idx = Reg.index in
  match i with
  | Instr.Nop ->
      fun t ->
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Halt ->
      fun t ->
        t.halt <- true;
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Mov_imm (rd, imm) ->
      let rd = idx rd and imm = u32 imm in
      fun t ->
        t.regs.(rd) <- imm;
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Movt (rd, imm) ->
      let rd = idx rd and hi = imm lsl 16 in
      fun t ->
        t.regs.(rd) <- u32 ((t.regs.(rd) land 0xFFFF) lor hi);
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Mov (rd, rn) ->
      let rd = idx rd and rn = idx rn in
      fun t ->
        t.regs.(rd) <- t.regs.(rn);
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Alu (op, rd, rn, rm) ->
      let rd = idx rd and rn = idx rn and rm = idx rm in
      fun t ->
        t.regs.(rd) <- u32 (alu_eval op t.regs.(rn) t.regs.(rm));
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Alu_imm (op, rd, rn, imm) ->
      let rd = idx rd and rn = idx rn in
      fun t ->
        t.regs.(rd) <- u32 (alu_eval op t.regs.(rn) imm);
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Shift (op, rd, rn, sh) -> (
      let rd = idx rd and rn = idx rn in
      match op with
      | Instr.Lsl ->
          fun t ->
            t.regs.(rd) <- u32 (t.regs.(rn) lsl sh);
            t.last_cycles <- 1;
            t.pcv <- next
      | Instr.Lsr ->
          fun t ->
            t.regs.(rd) <- u32 (t.regs.(rn) lsr sh);
            t.last_cycles <- 1;
            t.pcv <- next
      | Instr.Asr ->
          fun t ->
            t.regs.(rd) <- u32 (signed32 t.regs.(rn) asr sh);
            t.last_cycles <- 1;
            t.pcv <- next)
  | Instr.Mul (rd, rn, rm) -> (
      let rd = idx rd and rn = idx rn and rm = idx rm in
      match (memo_table, zero_skip) with
      | None, false ->
          fun t ->
            t.regs.(rd) <- u32 (t.regs.(rn) * t.regs.(rm));
            t.last_cycles <- 16;
            t.pcv <- next
      | None, true ->
          fun t ->
            let a = t.regs.(rn) and b = t.regs.(rm) in
            if a = 0 || b = 0 then begin
              t.regs.(rd) <- 0;
              t.last_cycles <- 1;
              t.last_zero_skipped <- true
            end
            else begin
              t.regs.(rd) <- u32 (a * b);
              t.last_cycles <- 16
            end;
            t.pcv <- next
      | Some table, zs ->
          fun t ->
            let a = t.regs.(rn) and b = t.regs.(rm) in
            if zs && (a = 0 || b = 0) then begin
              t.regs.(rd) <- 0;
              t.last_cycles <- 1;
              t.last_zero_skipped <- true
            end
            else begin
              (* On a hit the cached product is written (it equals the
                 recomputed one for any table the machine itself filled). *)
              t.regs.(rd) <- Memo.find_or_add table ~a ~b ~miss:(u32 (a * b));
              if Memo.last_was_hit table then begin
                t.last_cycles <- 1;
                t.last_memo_hit <- true
              end
              else t.last_cycles <- 16
            end;
            t.pcv <- next)
  | Instr.Mul_asp { bits; signed; rd; rn; shift } ->
      (* rd := rd * subword, shifted into place.  The subword sits in
         the low [bits] bits of rn (a byte load or shift put it there);
         the most significant subword of signed data multiplies
         signed. *)
      let rd = idx rd and rn = idx rn in
      let front = mul_front ~zero_skip ~memo_table ~full:bits in
      fun t ->
        let sub_raw = Subword.truncate ~bits t.regs.(rn) in
        let multiplicand = signed32 t.regs.(rd) in
        let sub = if signed then Subword.to_signed ~bits sub_raw else sub_raw in
        (* The memo table and zero-skip front end decide the latency; the
           product itself is recomputed signed (the cached pattern equals
           it bit-for-bit). *)
        front t (u32 multiplicand) (u32 sub);
        t.regs.(rd) <- u32 ((multiplicand * sub) lsl shift);
        t.wn_retired <- t.wn_retired + 1;
        t.pcv <- next
  | Instr.Add_asv (w, rd, rn, rm) ->
      let rd = idx rd and rn = idx rn and rm = idx rm in
      fun t ->
        t.regs.(rd) <- Subword.lanes_add ~lane_bits:w ~width:32 t.regs.(rn) t.regs.(rm);
        t.wn_retired <- t.wn_retired + 1;
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Sub_asv (w, rd, rn, rm) ->
      let rd = idx rd and rn = idx rn and rm = idx rm in
      fun t ->
        t.regs.(rd) <- Subword.lanes_sub ~lane_bits:w ~width:32 t.regs.(rn) t.regs.(rm);
        t.wn_retired <- t.wn_retired + 1;
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Sqrt (rd, rn) ->
      let rd = idx rd and rn = idx rn in
      fun t ->
        t.regs.(rd) <- isqrt_top ~bits:16 t.regs.(rn);
        t.last_cycles <- 16;
        t.pcv <- next
  | Instr.Sqrt_asp { bits; rd; rn } ->
      let rd = idx rd and rn = idx rn in
      fun t ->
        t.regs.(rd) <- isqrt_top ~bits t.regs.(rn);
        t.wn_retired <- t.wn_retired + 1;
        t.last_cycles <- bits;
        t.pcv <- next
  | Instr.Cmp (rn, rm) ->
      let rn = idx rn and rm = idx rm in
      fun t ->
        set_compare_flags t t.regs.(rn) t.regs.(rm);
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Cmp_imm (rn, imm) ->
      let rn = idx rn in
      fun t ->
        set_compare_flags t t.regs.(rn) imm;
        t.last_cycles <- 1;
        t.pcv <- next
  | Instr.Ldr { width; signed; rd; base; off } ->
      let rd = idx rd and base = idx base in
      let read = reader width ~signed and bytes = access_bytes width in
      fun t ->
        let addr = t.regs.(base) + off in
        t.regs.(rd) <- read t.mem addr;
        t.last_read_addr <- addr;
        t.last_read_bytes <- bytes;
        t.last_cycles <- 2;
        t.pcv <- next
  | Instr.Str { width; rs; base; off } ->
      let rs = idx rs and base = idx base in
      let write = writer width and bytes = access_bytes width in
      fun t ->
        let addr = t.regs.(base) + off in
        write t.mem addr t.regs.(rs);
        t.last_wrote_addr <- addr;
        t.last_wrote_bytes <- bytes;
        t.last_cycles <- 2;
        t.pcv <- next
  | Instr.Ldr_reg { width; signed; rd; base; idx = ix } ->
      let rd = idx rd and base = idx base and ix = idx ix in
      let read = reader width ~signed and bytes = access_bytes width in
      fun t ->
        let addr = t.regs.(base) + t.regs.(ix) in
        t.regs.(rd) <- read t.mem addr;
        t.last_read_addr <- addr;
        t.last_read_bytes <- bytes;
        t.last_cycles <- 2;
        t.pcv <- next
  | Instr.Str_reg { width; rs; base; idx = ix } ->
      let rs = idx rs and base = idx base and ix = idx ix in
      let write = writer width and bytes = access_bytes width in
      fun t ->
        let addr = t.regs.(base) + t.regs.(ix) in
        write t.mem addr t.regs.(rs);
        t.last_wrote_addr <- addr;
        t.last_wrote_bytes <- bytes;
        t.last_cycles <- 2;
        t.pcv <- next
  | Instr.B (c, tgt) -> (
      let taken = Instr.cycles ~taken:true i in
      let fall = Instr.cycles ~taken:false i in
      match c with
      | Cond.Al ->
          fun t ->
            t.last_cycles <- taken;
            t.pcv <- tgt
      | _ ->
          fun t ->
            if holds c t then begin
              t.last_cycles <- taken;
              t.pcv <- tgt
            end
            else begin
              t.last_cycles <- fall;
              t.pcv <- next
            end)
  | Instr.Bl tgt ->
      let lr = Reg.index Reg.lr in
      fun t ->
        t.regs.(lr) <- u32 next;
        t.last_cycles <- 2;
        t.pcv <- tgt
  | Instr.Bx_lr ->
      let lr = Reg.index Reg.lr in
      fun t ->
        t.last_cycles <- 2;
        t.pcv <- t.regs.(lr)
  | Instr.Skm tgt ->
      (* The option cell is built once here, so latching allocates
         nothing per execution. *)
      let latched = Some tgt in
      fun t ->
        t.skim <- latched;
        t.last_skm <- true;
        t.wn_retired <- t.wn_retired + 1;
        t.last_cycles <- 1;
        t.pcv <- next

let predecode ~zero_skip ~memo_table program =
  Array.mapi (compile_op ~zero_skip ~memo_table) program

let create ?(config = default_config) ~program ~mem () =
  let memo_table =
    Option.map (fun entries -> Memo.create ~entries ()) config.memo_entries
  in
  {
    program;
    mem;
    regs = Array.make Reg.count 0;
    pcv = 0;
    fn = false;
    fz = false;
    fc = false;
    fv = false;
    halt = false;
    skim = None;
    memo_table;
    zero_skip = config.zero_skip;
    retired = 0;
    wn_retired = 0;
    cycles = 0;
    steps_left = -1;
    code = predecode ~zero_skip:config.zero_skip ~memo_table program;
    last_pc = -1;
    last_cycles = 0;
    last_read_addr = -1;
    last_read_bytes = 0;
    last_wrote_addr = -1;
    last_wrote_bytes = 0;
    last_memo_hit = false;
    last_zero_skipped = false;
    last_skm = false;
    fused_table = [||];
    blk_reads = [||];
    blocks_built = false;
  }

let program t = t.program
let mem t = t.mem
let pc t = t.pcv
let set_pc t v = t.pcv <- v

let reg t r = t.regs.(Reg.index r)
let set_reg t r v = t.regs.(Reg.index r) <- u32 v

let flags t = { Cond.n = t.fn; z = t.fz; c = t.fc; v = t.fv }

let set_flags t (f : Cond.flags) =
  t.fn <- f.Cond.n;
  t.fz <- f.Cond.z;
  t.fc <- f.Cond.c;
  t.fv <- f.Cond.v

let halted t = t.halt

let skim_target t = t.skim

let take_skim t =
  let s = t.skim in
  t.skim <- None;
  s

let clear_skim t = t.skim <- None

let reset_for_new_task t =
  t.pcv <- 0;
  t.halt <- false;
  t.skim <- None;
  Array.fill t.regs 0 Reg.count 0;
  set_flags t Cond.initial_flags

type access = { addr : int; bytes : int }

type step_result = {
  instr : int Instr.t;
  cycles : int;
  read : access option;
  wrote : access option;
  memo_hit : bool;
  zero_skipped : bool;
}

(* ---------------- the fast path ---------------- *)

let step_fast t =
  if t.halt then failwith "Machine.step: halted";
  let pc = t.pcv in
  if pc < 0 || pc >= Array.length t.code then
    failwith (Printf.sprintf "Machine.step: PC %d out of program" pc);
  t.last_pc <- pc;
  t.last_read_addr <- -1;
  t.last_wrote_addr <- -1;
  t.last_memo_hit <- false;
  t.last_zero_skipped <- false;
  t.last_skm <- false;
  (Array.unsafe_get t.code pc) t;
  t.retired <- t.retired + 1;
  t.cycles <- t.cycles + t.last_cycles;
  if t.steps_left > 0 then t.steps_left <- t.steps_left - 1

let last_pc t = t.last_pc
let last_cycles t = t.last_cycles
let worst_case_cycles = Instr.worst_cycles
let last_read_addr t = t.last_read_addr
let last_read_bytes t = t.last_read_bytes
let last_wrote_addr t = t.last_wrote_addr
let last_wrote_bytes t = t.last_wrote_bytes
let last_memo_hit t = t.last_memo_hit
let last_zero_skipped t = t.last_zero_skipped
let last_was_skm t = t.last_skm

let step t =
  let pc0 = t.pcv in
  step_fast t;
  {
    instr = t.program.(pc0);
    cycles = t.last_cycles;
    read =
      (if t.last_read_addr < 0 then None
       else Some { addr = t.last_read_addr; bytes = t.last_read_bytes });
    wrote =
      (if t.last_wrote_addr < 0 then None
       else Some { addr = t.last_wrote_addr; bytes = t.last_wrote_bytes });
    memo_hit = t.last_memo_hit;
    zero_skipped = t.last_zero_skipped;
  }

(* ---------------- block-compiled execution ---------------- *)

(* Bare closure: the architectural effect of one fused instruction and
   nothing else.  No [pcv] write (the run's exit pc is static), no
   [last_*] scratch, no statistics — [exec_block] batches all of those.
   Loads record their effective address into a fixed [blk_reads] slot so
   the executor can replay Clank read-set tracking post-commit.  Only
   instructions [Wn_analysis.Fuse.fusible] accepts reach this compiler;
   multiplies arrive only in the fixed-latency (no memo, no zero-skip)
   configuration.  Register accesses skip the bounds check: [Reg.t] is a
   private int validated to [0 <= i < Reg.count] at construction and the
   register file is always [Reg.count] long. *)
let compile_bare ~ring ~slot (i : int Instr.t) : t -> unit =
  let idx = Reg.index in
  match i with
  | Instr.Nop -> fun _ -> ()
  | Instr.Mov_imm (rd, imm) ->
      let rd = idx rd and imm = u32 imm in
      fun t -> Array.unsafe_set t.regs rd (imm)
  | Instr.Movt (rd, imm) ->
      let rd = idx rd and hi = imm lsl 16 in
      fun t -> Array.unsafe_set t.regs rd (u32 (((Array.unsafe_get t.regs rd) land 0xFFFF) lor hi))
  | Instr.Mov (rd, rn) ->
      let rd = idx rd and rn = idx rn in
      fun t -> Array.unsafe_set t.regs rd ((Array.unsafe_get t.regs rn))
  | Instr.Alu (op, rd, rn, rm) ->
      let rd = idx rd and rn = idx rn and rm = idx rm in
      fun t -> Array.unsafe_set t.regs rd (u32 (alu_eval op (Array.unsafe_get t.regs rn) (Array.unsafe_get t.regs rm)))
  | Instr.Alu_imm (op, rd, rn, imm) ->
      let rd = idx rd and rn = idx rn in
      fun t -> Array.unsafe_set t.regs rd (u32 (alu_eval op (Array.unsafe_get t.regs rn) imm))
  | Instr.Shift (op, rd, rn, sh) -> (
      let rd = idx rd and rn = idx rn in
      match op with
      | Instr.Lsl -> fun t -> Array.unsafe_set t.regs rd (u32 ((Array.unsafe_get t.regs rn) lsl sh))
      | Instr.Lsr -> fun t -> Array.unsafe_set t.regs rd (u32 ((Array.unsafe_get t.regs rn) lsr sh))
      | Instr.Asr -> fun t -> Array.unsafe_set t.regs rd (u32 (signed32 (Array.unsafe_get t.regs rn) asr sh)))
  | Instr.Mul (rd, rn, rm) ->
      let rd = idx rd and rn = idx rn and rm = idx rm in
      fun t -> Array.unsafe_set t.regs rd (u32 ((Array.unsafe_get t.regs rn) * (Array.unsafe_get t.regs rm)))
  | Instr.Mul_asp { bits; signed; rd; rn; shift } ->
      let rd = idx rd and rn = idx rn in
      fun t ->
        let sub_raw = Subword.truncate ~bits (Array.unsafe_get t.regs rn) in
        let multiplicand = signed32 (Array.unsafe_get t.regs rd) in
        let sub = if signed then Subword.to_signed ~bits sub_raw else sub_raw in
        Array.unsafe_set t.regs rd (u32 ((multiplicand * sub) lsl shift))
  | Instr.Add_asv (w, rd, rn, rm) ->
      let rd = idx rd and rn = idx rn and rm = idx rm in
      fun t ->
        Array.unsafe_set t.regs rd (Subword.lanes_add ~lane_bits:w ~width:32 (Array.unsafe_get t.regs rn) (Array.unsafe_get t.regs rm))
  | Instr.Sub_asv (w, rd, rn, rm) ->
      let rd = idx rd and rn = idx rn and rm = idx rm in
      fun t ->
        Array.unsafe_set t.regs rd (Subword.lanes_sub ~lane_bits:w ~width:32 (Array.unsafe_get t.regs rn) (Array.unsafe_get t.regs rm))
  | Instr.Sqrt (rd, rn) ->
      let rd = idx rd and rn = idx rn in
      fun t -> Array.unsafe_set t.regs rd (isqrt_top ~bits:16 (Array.unsafe_get t.regs rn))
  | Instr.Sqrt_asp { bits; rd; rn } ->
      let rd = idx rd and rn = idx rn in
      fun t -> Array.unsafe_set t.regs rd (isqrt_top ~bits (Array.unsafe_get t.regs rn))
  | Instr.Cmp (rn, rm) ->
      let rn = idx rn and rm = idx rm in
      fun t -> set_compare_flags t (Array.unsafe_get t.regs rn) (Array.unsafe_get t.regs rm)
  | Instr.Cmp_imm (rn, imm) ->
      let rn = idx rn in
      fun t -> set_compare_flags t (Array.unsafe_get t.regs rn) imm
  | Instr.Ldr { width; signed; rd; base; off } ->
      let rd = idx rd and base = idx base in
      let read = reader width ~signed in
      fun t ->
        let addr = (Array.unsafe_get t.regs base) + off in
        Array.unsafe_set t.regs rd (read t.mem addr);
        Array.unsafe_set ring slot addr
  | Instr.Ldr_reg { width; signed; rd; base; idx = ix } ->
      let rd = idx rd and base = idx base and ix = idx ix in
      let read = reader width ~signed in
      fun t ->
        let addr = (Array.unsafe_get t.regs base) + (Array.unsafe_get t.regs ix) in
        Array.unsafe_set t.regs rd (read t.mem addr);
        Array.unsafe_set ring slot addr
  | Instr.Halt | Instr.Str _ | Instr.Str_reg _ | Instr.B _ | Instr.Bl _
  | Instr.Bx_lr | Instr.Skm _ ->
      invalid_arg "Machine.compile_bare: not fusible"

let is_load_instr = function
  | Instr.Ldr _ | Instr.Ldr_reg _ -> true
  | _ -> false

let build_blocks t =
  let memoizable = t.memo_table <> None || t.zero_skip in
  let runs = Wn_analysis.Fuse.plan ~memoizable t.program in
  let table = Array.make (Array.length t.program) None in
  let max_loads =
    List.fold_left
      (fun m (r : Wn_analysis.Fuse.run) -> max m r.Wn_analysis.Fuse.r_loads)
      1 runs
  in
  let ring = Array.make max_loads 0 in
  List.iter
    (fun (r : Wn_analysis.Fuse.run) ->
      let open Wn_analysis.Fuse in
      let costs =
        Array.init r.r_len (fun k ->
            Instr.worst_cycles t.program.(r.r_first + k))
      in
      let slot = ref 0 in
      let read_bytes = ref 0 in
      let code =
        Array.init r.r_len (fun k ->
            let i = t.program.(r.r_first + k) in
            let s = !slot in
            if is_load_instr i then begin
              incr slot;
              (read_bytes :=
                 match i with
                 | Instr.Ldr { width; _ } | Instr.Ldr_reg { width; _ } ->
                     access_bytes width
                 | _ -> !read_bytes)
            end;
            compile_bare ~ring ~slot:s i)
      in
      let last_cost = costs.(r.r_len - 1) in
      table.(r.r_first) <-
        Some
          {
            b_first = r.r_first;
            b_len = r.r_len;
            b_cycles = r.r_cycles;
            b_pre_cycles = r.r_cycles - last_cost;
            b_last_cost = last_cost;
            b_costs = costs;
            b_loads = r.r_loads;
            b_wn = r.r_wn;
            b_last_is_load = is_load_instr t.program.(r.r_first + r.r_len - 1);
            b_read_bytes = !read_bytes;
            b_code = code;
          })
    runs;
  t.fused_table <- table;
  t.blk_reads <- ring;
  t.blocks_built <- true

let block_at t pc =
  if not t.blocks_built then build_blocks t;
  if pc >= 0 && pc < Array.length t.fused_table then
    Array.unsafe_get t.fused_table pc
  else None

let block_len b = b.b_len
let block_first b = b.b_first
let block_cycles b = b.b_cycles
let block_pre_cycles b = b.b_pre_cycles
let block_costs b = b.b_costs
let block_loads b = b.b_loads
let block_wn b = b.b_wn
let block_read_addr t i = t.blk_reads.(i)

let budget_covers t n = t.steps_left < 0 || t.steps_left >= n

(* Execute one fused run in a single call.  Preconditions (the executor
   and [step_block] enforce them): machine not halted, [pcv = b.b_first],
   and the step budget covers the whole run.  Afterwards the machine is
   bit-identical — architectural state, statistics, step budget and the
   [last_*] scratch — to [b_len] successive [step_fast] calls:

   - the scratch reflects the run's final instruction, with one
     subtlety inherited from [step_fast]: [last_read_bytes] /
     [last_wrote_bytes] are not reset per step, so they keep the bytes
     of the most recent access *anywhere* before the boundary.  No run
     contains a store, so [last_wrote_bytes] is left untouched;
     [last_read_bytes] is overwritten only if the run loaded at all.
   - an exception from a closure (out-of-bounds load) leaves the batched
     counters not yet applied, mirroring [step_fast]'s partial-commit
     behaviour mid-instruction; both engines only diverge on runs that
     crash, which no lint-clean program does. *)
let exec_block t b =
  let code = b.b_code in
  for i = 0 to b.b_len - 1 do
    (Array.unsafe_get code i) t
  done;
  t.last_pc <- b.b_first + b.b_len - 1;
  t.last_cycles <- b.b_last_cost;
  t.last_read_addr <-
    (if b.b_last_is_load then Array.unsafe_get t.blk_reads (b.b_loads - 1)
     else -1);
  if b.b_loads > 0 then t.last_read_bytes <- b.b_read_bytes;
  t.last_wrote_addr <- -1;
  t.last_memo_hit <- false;
  t.last_zero_skipped <- false;
  t.last_skm <- false;
  t.pcv <- b.b_first + b.b_len;
  t.retired <- t.retired + b.b_len;
  t.wn_retired <- t.wn_retired + b.b_wn;
  t.cycles <- t.cycles + b.b_cycles;
  if t.steps_left > 0 then begin
    let r = t.steps_left - b.b_len in
    t.steps_left <- (if r < 0 then 0 else r)
  end

(* Whole-block step when a fused run starts at the pc and the step
   budget covers it; per-instruction [step_fast] otherwise.  Always
   makes progress by at least one instruction (same failure conditions
   as [step_fast] when halted or out of program). *)
let step_block t =
  if t.halt then step_fast t
  else
    match block_at t t.pcv with
    | Some b when budget_covers t b.b_len -> exec_block t b
    | _ -> step_fast t

(* ---------------- the reference interpreter ---------------- *)

let load t (width : Instr.width) ~signed addr =
  let open Wn_mem in
  match (width, signed) with
  | Instr.Byte, false -> (Memory.read8 t.mem addr, 1)
  | Instr.Byte, true -> (u32 (Memory.read8_signed t.mem addr), 1)
  | Instr.Half, false -> (Memory.read16 t.mem addr, 2)
  | Instr.Half, true -> (u32 (Memory.read16_signed t.mem addr), 2)
  | Instr.Word, _ -> (Memory.read32 t.mem addr, 4)

let store t (width : Instr.width) addr v =
  let open Wn_mem in
  match width with
  | Instr.Byte -> (Memory.write8 t.mem addr v, 1)
  | Instr.Half -> (Memory.write16 t.mem addr v, 2)
  | Instr.Word -> (Memory.write32 t.mem addr v, 4)

(* Multiply through the zero-skip / memoization front end.  Returns the
   raw product and the latency actually paid.  (Kept on the reference
   path; exercises the split lookup/insert Memo API.) *)
let multiply t ~full_cycles a b =
  if t.zero_skip && (a = 0 || b = 0) then (0, 1, false, true)
  else
    match t.memo_table with
    | Some table -> (
        match Memo.lookup table ~a ~b with
        | Some r -> (r, 1, true, false)
        | None ->
            let r = u32 (a * b) in
            Memo.insert table ~a ~b ~result:r;
            (r, full_cycles, false, false))
    | None -> (u32 (a * b), full_cycles, false, false)

(* The original direct interpreter over [int Instr.t], kept verbatim as
   the executable specification: the differential suite steps it and
   [step_fast] in lockstep to prove the predecoded table is
   bit-identical. *)
let step_reference t =
  if t.halt then failwith "Machine.step: halted";
  if t.pcv < 0 || t.pcv >= Array.length t.program then
    failwith (Printf.sprintf "Machine.step: PC %d out of program" t.pcv);
  let i = t.program.(t.pcv) in
  let next = t.pcv + 1 in
  let nothing = (None, None, false, false) in
  let rd_set r v = set_reg t r v in
  let rv r = reg t r in
  let default_cycles = Instr.cycles ~taken:false i in
  let cycles = ref default_cycles in
  let pc' = ref next in
  let effects = ref nothing in
  (match i with
  | Instr.Nop -> ()
  | Instr.Halt -> t.halt <- true
  | Instr.Mov_imm (rd, imm) -> rd_set rd imm
  | Instr.Movt (rd, imm) -> rd_set rd ((rv rd land 0xFFFF) lor (imm lsl 16))
  | Instr.Mov (rd, rn) -> rd_set rd (rv rn)
  | Instr.Alu (op, rd, rn, rm) -> rd_set rd (alu_eval op (rv rn) (rv rm))
  | Instr.Alu_imm (op, rd, rn, imm) -> rd_set rd (alu_eval op (rv rn) imm)
  | Instr.Shift (op, rd, rn, sh) ->
      let v = rv rn in
      let r =
        match op with
        | Instr.Lsl -> v lsl sh
        | Instr.Lsr -> v lsr sh
        | Instr.Asr -> signed32 v asr sh
      in
      rd_set rd r
  | Instr.Mul (rd, rn, rm) ->
      let r, c, hit, zs = multiply t ~full_cycles:16 (rv rn) (rv rm) in
      rd_set rd r;
      cycles := c;
      effects := (None, None, hit, zs)
  | Instr.Mul_asp { bits; signed; rd; rn; shift } ->
      let sub_raw = Subword.truncate ~bits (rv rn) in
      let multiplicand = signed32 (rv rd) in
      let sub = if signed then Subword.to_signed ~bits sub_raw else sub_raw in
      let a = u32 multiplicand and b = u32 sub in
      let _pattern, c, hit, zs = multiply t ~full_cycles:bits a b in
      let product = multiplicand * sub in
      rd_set rd (u32 (product lsl shift));
      cycles := c;
      effects := (None, None, hit, zs)
  | Instr.Add_asv (w, rd, rn, rm) ->
      rd_set rd (Subword.lanes_add ~lane_bits:w ~width:32 (rv rn) (rv rm))
  | Instr.Sub_asv (w, rd, rn, rm) ->
      rd_set rd (Subword.lanes_sub ~lane_bits:w ~width:32 (rv rn) (rv rm))
  | Instr.Sqrt (rd, rn) -> rd_set rd (isqrt_top ~bits:16 (rv rn))
  | Instr.Sqrt_asp { bits; rd; rn } -> rd_set rd (isqrt_top ~bits (rv rn))
  | Instr.Cmp (rn, rm) -> set_compare_flags t (rv rn) (rv rm)
  | Instr.Cmp_imm (rn, imm) -> set_compare_flags t (rv rn) imm
  | Instr.Ldr { width; signed; rd; base; off } ->
      let addr = rv base + off in
      let v, bytes = load t width ~signed addr in
      rd_set rd v;
      effects := (Some { addr; bytes }, None, false, false)
  | Instr.Str { width; rs; base; off } ->
      let addr = rv base + off in
      let (), bytes = store t width addr (rv rs) in
      effects := (None, Some { addr; bytes }, false, false)
  | Instr.Ldr_reg { width; signed; rd; base; idx } ->
      let addr = rv base + rv idx in
      let v, bytes = load t width ~signed addr in
      rd_set rd v;
      effects := (Some { addr; bytes }, None, false, false)
  | Instr.Str_reg { width; rs; base; idx } ->
      let addr = rv base + rv idx in
      let (), bytes = store t width addr (rv rs) in
      effects := (None, Some { addr; bytes }, false, false)
  | Instr.B (c, tgt) ->
      if holds c t then begin
        pc' := tgt;
        cycles := Instr.cycles ~taken:true i
      end
  | Instr.Bl tgt ->
      set_reg t Reg.lr next;
      pc' := tgt
  | Instr.Bx_lr -> pc' := rv Reg.lr
  | Instr.Skm tgt -> t.skim <- Some tgt);
  t.pcv <- !pc';
  t.retired <- t.retired + 1;
  if Instr.is_wn_extension i then t.wn_retired <- t.wn_retired + 1;
  t.cycles <- t.cycles + !cycles;
  if t.steps_left > 0 then t.steps_left <- t.steps_left - 1;
  let read, wrote, memo_hit, zero_skipped = !effects in
  { instr = i; cycles = !cycles; read; wrote; memo_hit; zero_skipped }

(* ---------------- whole-state snapshot ---------------- *)

(* An opaque capture of everything mutable: architectural state
   (registers, flags, PC, halt latch, SKM register, data memory),
   statistics (retired/wn_retired/cycles, memory access counters, memo
   table contents and counters), the step budget, and the [last_*]
   effect scratch.  The predecode table and the program are immutable
   and shared, so a snapshot is cheap (two array copies plus the memory
   image) and [restore] into any machine built from the same program
   and configuration is bit-exact under both [step_fast] and
   [step_reference].

   The memory is captured as a [Memory.image].  By default the capture
   is a delta: pages unwritten since this memory's previous capture are
   structurally shared with it, so a run that snapshots every K
   instructions pays O(pages dirtied per interval) per frame instead of
   O(memory).  [~full:true] forces an isolated copy.  Either way the
   image is complete and immutable — restore never walks a chain. *)
type snapshot = {
  s_regs : int array;
  s_pc : int;
  s_fn : bool;
  s_fz : bool;
  s_fc : bool;
  s_fv : bool;
  s_halt : bool;
  s_skim : int option;
  s_retired : int;
  s_wn_retired : int;
  s_cycles : int;
  s_steps_left : int;
  s_mem : Wn_mem.Memory.image;
  s_mem_reads : int;
  s_mem_writes : int;
  s_memo : Memo.snapshot option;
  s_zero_skip : bool;
  s_program_len : int;
  s_last_pc : int;
  s_last_cycles : int;
  s_last_read_addr : int;
  s_last_read_bytes : int;
  s_last_wrote_addr : int;
  s_last_wrote_bytes : int;
  s_last_memo_hit : bool;
  s_last_zero_skipped : bool;
  s_last_skm : bool;
}

let snapshot ?(full = false) t =
  let reads, writes = Wn_mem.Memory.read_stats t.mem in
  {
    s_regs = Array.copy t.regs;
    s_pc = t.pcv;
    s_fn = t.fn;
    s_fz = t.fz;
    s_fc = t.fc;
    s_fv = t.fv;
    s_halt = t.halt;
    s_skim = t.skim;
    s_retired = t.retired;
    s_wn_retired = t.wn_retired;
    s_cycles = t.cycles;
    s_steps_left = t.steps_left;
    s_mem =
      (if full then Wn_mem.Memory.capture_full t.mem
       else Wn_mem.Memory.capture t.mem);
    s_mem_reads = reads;
    s_mem_writes = writes;
    s_memo = Option.map Memo.snapshot t.memo_table;
    s_zero_skip = t.zero_skip;
    s_program_len = Array.length t.program;
    s_last_pc = t.last_pc;
    s_last_cycles = t.last_cycles;
    s_last_read_addr = t.last_read_addr;
    s_last_read_bytes = t.last_read_bytes;
    s_last_wrote_addr = t.last_wrote_addr;
    s_last_wrote_bytes = t.last_wrote_bytes;
    s_last_memo_hit = t.last_memo_hit;
    s_last_zero_skipped = t.last_zero_skipped;
    s_last_skm = t.last_skm;
  }

let restore t s =
  if
    Array.length t.program <> s.s_program_len
    || t.zero_skip <> s.s_zero_skip
    || Wn_mem.Memory.image_size s.s_mem <> Wn_mem.Memory.size t.mem
  then invalid_arg "Machine.restore: configuration mismatch";
  (match (t.memo_table, s.s_memo) with
  | None, None -> ()
  | Some table, Some ms -> Memo.restore table ms
  | _ -> invalid_arg "Machine.restore: configuration mismatch");
  Array.blit s.s_regs 0 t.regs 0 Reg.count;
  t.pcv <- s.s_pc;
  t.fn <- s.s_fn;
  t.fz <- s.s_fz;
  t.fc <- s.s_fc;
  t.fv <- s.s_fv;
  t.halt <- s.s_halt;
  t.skim <- s.s_skim;
  t.retired <- s.s_retired;
  t.wn_retired <- s.s_wn_retired;
  t.cycles <- s.s_cycles;
  t.steps_left <- s.s_steps_left;
  Wn_mem.Memory.restore_image t.mem s.s_mem;
  Wn_mem.Memory.set_stats t.mem ~reads:s.s_mem_reads ~writes:s.s_mem_writes;
  t.last_pc <- s.s_last_pc;
  t.last_cycles <- s.s_last_cycles;
  t.last_read_addr <- s.s_last_read_addr;
  t.last_read_bytes <- s.s_last_read_bytes;
  t.last_wrote_addr <- s.s_last_wrote_addr;
  t.last_wrote_bytes <- s.s_last_wrote_bytes;
  t.last_memo_hit <- s.s_last_memo_hit;
  t.last_zero_skipped <- s.s_last_zero_skipped;
  t.last_skm <- s.s_last_skm

let snapshot_retired s = s.s_retired

let snapshot_pc s = s.s_pc

(* Monomorphic int-array compare: the rejoin probe calls this on the
   register file once per candidate per step, where the polymorphic
   [=] walk is measurably hot. *)
let int_arrays_equal a b =
  Array.length a = Array.length b
  &&
  let n = Array.length a in
  let rec go i = i >= n || (Array.unsafe_get a i = Array.unsafe_get b i && go (i + 1)) in
  go 0

(* Architectural comparison: does the machine's forward-determining
   state bit-match the snapshot's?  Statistics (retired, cycles, memory
   access counts, memo hit rates) and the last-effect scratch fields are
   excluded — they record the past, not the future.  Register compare
   first: it fails fastest (a loop counter differs on almost every
   probe), leaving the memory compare for near-matches only. *)
let matches_state t s =
  Array.length t.program = s.s_program_len
  && t.zero_skip = s.s_zero_skip
  && t.pcv = s.s_pc
  && t.halt = s.s_halt
  && t.fn = s.s_fn && t.fz = s.s_fz && t.fc = s.s_fc && t.fv = s.s_fv
  && (match (t.skim, s.s_skim) with
     | None, None -> true
     | Some a, Some b -> a = b
     | _ -> false)
  && t.steps_left = s.s_steps_left
  && int_arrays_equal t.regs s.s_regs
  && (match (t.memo_table, s.s_memo) with
     | None, None -> true
     | Some table, Some ms -> Memo.state_equal table ms
     | _ -> false)
  && Wn_mem.Memory.matches_image t.mem s.s_mem

type register_file = { saved_regs : int array; saved_flags : Cond.flags; saved_pc : int }

let capture_registers t =
  { saved_regs = Array.copy t.regs; saved_flags = flags t; saved_pc = t.pcv }

let restore_registers t rf =
  Array.blit rf.saved_regs 0 t.regs 0 Reg.count;
  set_flags t rf.saved_flags;
  t.pcv <- rf.saved_pc

let scrub_volatile t =
  Array.fill t.regs 0 Reg.count 0;
  set_flags t Cond.initial_flags;
  t.pcv <- 0

let set_step_budget t budget =
  match budget with
  | None -> t.steps_left <- -1
  | Some n ->
      if n < 0 then invalid_arg "Machine.set_step_budget";
      t.steps_left <- n

let step_budget t = if t.steps_left < 0 then None else Some t.steps_left

let budget_exhausted t = t.steps_left = 0

let instructions_retired (t : t) = t.retired
let wn_instructions t = t.wn_retired
let cycles_executed (t : t) = t.cycles
let memo t = t.memo_table

let reset_stats t =
  t.retired <- 0;
  t.wn_retired <- 0;
  t.cycles <- 0;
  Option.iter Memo.clear t.memo_table
