(** Cycle-accurate WN-32 core.

    Models the paper's target: a Cortex M0+-class 2-stage in-order core
    at a 32-bit datapath with no caches or branch prediction, an
    iterative multiplier (16 cycles full precision, [bits] cycles for a
    [MUL_ASP<bits>] stage), the subword-vector ALU of Figure 8, an
    optional multiply memoization table with zero-skipping, and the
    non-volatile SKM register that implements skim points.

    The machine executes one instruction per [step] and reports its
    latency plus the memory effects the intermittency runtimes need
    (Clank tracks read/write sets for idempotency violations). *)

open Wn_isa

type config = {
  memo_entries : int option;  (** [Some n]: enable an n-entry memo table *)
  zero_skip : bool;  (** 1-cycle result when a multiply operand is zero *)
}

val default_config : config
(** No memoization, no zero skipping — the paper's baseline core. *)

type t

val create :
  ?config:config -> program:int Instr.t array -> mem:Wn_mem.Memory.t -> unit -> t
(** The program is immutable instruction memory (Harvard style; the
    data memory [mem] holds only data).  The PC starts at 0. *)

val program : t -> int Instr.t array
val mem : t -> Wn_mem.Memory.t

val pc : t -> int
val set_pc : t -> int -> unit

val reg : t -> Reg.t -> int
(** Register contents as an unsigned 32-bit pattern. *)

val set_reg : t -> Reg.t -> int -> unit

val flags : t -> Cond.flags

val halted : t -> bool

val skim_target : t -> int option
(** Contents of the non-volatile SKM register, set by the [Skm]
    instruction and surviving power outages. *)

val take_skim : t -> int option
(** Read and clear the SKM register (done once on restore). *)

val clear_skim : t -> unit

val reset_for_new_task : t -> unit
(** Prepare the core for the next input sample: PC back to 0, halt
    latch and SKM register cleared, registers scrubbed.  Statistics and
    the memoization table persist across tasks. *)

type access = { addr : int; bytes : int }

type step_result = {
  instr : int Instr.t;
  cycles : int;  (** actual latency, after memo/zero-skip shortcuts *)
  read : access option;
  wrote : access option;
  memo_hit : bool;
  zero_skipped : bool;
}

val step : t -> step_result
(** Execute the instruction at the PC.  Raises [Failure] if the machine
    is already halted or the PC is outside the program.

    Compatibility wrapper: runs {!step_fast} and reifies the scratch
    fields into a [step_result] record (one record plus up to two
    [access] allocations per call). *)

(** {2 Allocation-free fast path}

    [step_fast] executes through a dispatch table predecoded once at
    {!create} (one closure per PC, capturing only operand data) and
    reports the instruction's effects in scratch fields on the machine
    instead of a [step_result].  Observable behaviour — register file,
    flags, memory, PC, SKM latch, statistics, memo-table contents and
    counters — is bit-identical to {!step}; the per-instruction cost is
    an array load, an indirect call and integer field writes, with no
    heap allocation.

    The scratch accessors below are valid until the next [step_fast] /
    [step] call.  Addresses are [-1] when the instruction made no such
    access; byte counts are meaningful only when the address is
    non-negative. *)

val step_fast : t -> unit
(** Same failure conditions as {!step}. *)

val last_pc : t -> int
(** PC of the most recently executed instruction. *)

val last_cycles : t -> int
(** Latency actually paid, after memo/zero-skip shortcuts. *)

val worst_case_cycles : 'lbl Instr.t -> int
(** Static latency ceiling of one instruction: {!last_cycles} never
    exceeds it under either engine (memoization and zero-skipping only
    shorten multiplies, a taken/untaken branch never exceeds the taken
    cost).  This is the per-instruction cost the {!Wn_analysis} WCEC
    verifier sums, re-exported here to pin the two models together. *)

val last_read_addr : t -> int
val last_read_bytes : t -> int
val last_wrote_addr : t -> int
val last_wrote_bytes : t -> int
val last_memo_hit : t -> bool
val last_zero_skipped : t -> bool

val last_was_skm : t -> bool
(** Whether the last instruction was [Skm] (latched a skim target). *)

(** {2 Step budget — fault-injection interrupt point}

    A budget of [Some n] counts down by one per retired instruction and
    holds at zero; {!budget_exhausted} then reads true until the budget
    is reset.  Both the fast path and the reference interpreter
    decrement it, so an injection point composes with either engine at
    the cost of one integer compare per step (no allocation, preserving
    the fast path's zero-allocation guarantee).  [None] (the default)
    means unlimited. *)

val set_step_budget : t -> int option -> unit
(** Raises [Invalid_argument] on [Some n] with [n < 0]. *)

val step_budget : t -> int option
(** Remaining budget, or [None] if unlimited. *)

val budget_exhausted : t -> bool
(** True iff a budget was set and has reached zero. *)

(** {2 Block-compiled execution — fused superinstructions}

    The machine lazily partitions its predecoded program into maximal
    fusible runs ({!Wn_analysis.Fuse.plan}: straight-line, no store, no
    [Skm], no memoizable multiply, statically known latency) and
    compiles each into a {!fused} superinstruction: one bare closure per
    instruction carrying only the architectural effect, with the
    per-step bookkeeping — scratch resets, PC advance, retired/cycle
    statistics, budget decrement — precomputed and applied once per run
    by {!exec_block}.  Executing a run is bit-identical to the same
    number of {!step_fast} calls, including the [last_*] scratch left at
    the boundary, and allocates nothing.

    Runs never contain a store or a skim latch, so a power failure at
    the run boundary tears nothing a mid-run failure wouldn't; the
    per-instruction effects an intermittency runtime must still observe
    are exposed statically ({!block_costs}) or replayed from scratch
    ({!block_read_addr}: the effective address of each load, in order,
    valid until the next [exec_block]). *)

type fused

val block_at : t -> int -> fused option
(** The fused run starting at exactly this pc, if any.  Builds the
    block table on first call (one CFG pass); later calls are an array
    read.  Runs start only at pcs the partition chose, so a mid-run pc
    (e.g. a checkpoint restore target) answers [None] — per-step
    execution then reaches the next run start naturally. *)

val block_len : fused -> int
val block_first : fused -> int

val block_cycles : fused -> int
(** Total latency of the run — the sum of {!worst_case_cycles} over its
    pc range, exact (not a bound) because fusible instructions have
    static latency.  This is the run's worst-case energy in cycles, the
    quantity the executor's entry guard prices against the capacitor. *)

val block_pre_cycles : fused -> int
(** [block_cycles] minus the last instruction's latency: the watchdog
    slack needed so no interior boundary can trip a Clank checkpoint. *)

val block_costs : fused -> int array
(** Per-instruction latency, in order.  Shared, do not mutate. *)

val block_loads : fused -> int
val block_wn : fused -> int

val block_read_addr : t -> int -> int
(** Effective address of the [i]'th load (0-based, program order) of
    the most recently {!exec_block}-executed run. *)

val budget_covers : t -> int -> bool
(** Whether the step budget is unlimited or at least [n]:
    allocation-free equivalent of matching on {!step_budget}. *)

val exec_block : t -> fused -> unit
(** Execute the whole run in one call.  The caller must ensure the
    machine is not halted, the PC equals [block_first], and
    [budget_covers] the run length; {!step_block} and the executor's
    block engine do. *)

val step_block : t -> unit
(** {!exec_block} when a fused run starts at the PC and the budget
    covers it, {!step_fast} otherwise.  Same failure conditions as
    {!step_fast}. *)

val step_reference : t -> step_result
(** The original direct interpreter over [int Instr.t], kept as the
    executable specification of the ISA.  Semantically interchangeable
    with {!step}; the differential test suite runs both implementations
    in lockstep to prove the predecoded table faithful.  Not intended
    for production use. *)

(** {2 Whole-state snapshot — keyframe support}

    A {!snapshot} is an opaque, immutable capture of the machine's full
    mutable state: registers, flags, PC, halt latch, SKM register,
    retired/cycle statistics, the step budget, the [last_*] effect
    scratch, data memory (with its access counters) and the memo table
    (contents and counters).  The program and the predecoded dispatch
    table are immutable and shared, so capture cost is two array copies
    plus the memory image.

    Memory is captured as a [Memory.image]: by default a *delta* that
    structurally shares pages unwritten since this machine's previous
    snapshot, making a dense keyframe train O(dirty pages) per frame in
    time and space; [~full:true] copies every page.  Both forms are
    complete — restore never consults other snapshots.

    [restore] writes a snapshot into a machine built from the same
    program and configuration — the same machine, or a fresh
    {!create}d one — in place, so the target's predecode table (and the
    memo table its closures capture) stays valid.  The invariant:
    restoring and re-stepping is bit-exact with the original run under
    both {!step_fast} and {!step_reference}.  Snapshots are never
    mutated after capture and can be shared read-only across domains;
    each [restore] deep-copies into the target. *)

type snapshot

val snapshot : ?full:bool -> t -> snapshot
(** [full] (default [false]) forces an isolated copy of every memory
    page instead of the page-sharing delta capture. *)

val restore : t -> snapshot -> unit
(** Raises [Invalid_argument] if the target machine's program length,
    zero-skip setting, memo configuration or memory size does not match
    the snapshot's origin. *)

val snapshot_retired : snapshot -> int
(** Retired-instruction count at capture (keyframe placement). *)

val snapshot_pc : snapshot -> int
(** Program counter at capture (rejoin-candidate indexing). *)

val matches_state : t -> snapshot -> bool
(** True iff the machine's architectural state — PC, registers, flags,
    halt and skim latches, step budget, memo slot contents, full memory
    image — bit-matches the snapshot's.  Statistics counters (retired
    instructions, cycles, memory access counts, memo hit rates) and the
    last-effect scratch fields are ignored: they record the past, while
    the compared state alone determines all future execution.  A
    configuration mismatch (program length, zero-skip, memo presence or
    size) compares as unequal rather than raising. *)

(** {2 State capture — checkpointing and volatility} *)

type register_file

val capture_registers : t -> register_file
(** Registers, flags and PC — what a Clank checkpoint saves to NVM. *)

val restore_registers : t -> register_file -> unit

val scrub_volatile : t -> unit
(** Model a power loss on a volatile core: registers and flags are
    cleared, PC reset to 0.  The SKM register, data memory (FRAM) and
    halt latch survive. *)

(** {2 Statistics} *)

val instructions_retired : t -> int
val wn_instructions : t -> int
(** Dynamic count of WN-extension instructions (Table I's "Insn %"). *)

val cycles_executed : t -> int
(** Active cycles spent executing (excludes powered-off time). *)

val memo : t -> Memo.t option

val reset_stats : t -> unit
