let all scale =
  [
    Conv2d.workload scale;
    Matmul.workload scale;
    Matadd.workload scale;
    Home.workload scale;
    Var_sensor.workload scale;
    Netmotion.workload scale;
  ]

let extensions scale = [ Dist.workload scale ]

let extended scale = all scale @ extensions scale

let names = [ "Conv2d"; "MatMul"; "MatAdd"; "Home"; "Var"; "NetMotion" ]

let find_opt scale name =
  let lc = String.lowercase_ascii name in
  List.find_opt
    (fun (w : Workload.t) -> String.lowercase_ascii w.name = lc)
    (extended scale)

let find scale name =
  match find_opt scale name with Some w -> w | None -> raise Not_found
