(** The complete Table I suite. *)

val all : Workload.scale -> Workload.t list
(** Conv2d, MatMul, MatAdd, Home, Var, NetMotion — in Table I order. *)

val extensions : Workload.scale -> Workload.t list
(** Workloads beyond Table I: the footnote-3 anytime-sqrt kernel. *)

val extended : Workload.scale -> Workload.t list
(** [all @ extensions]. *)

val find_opt : Workload.scale -> string -> Workload.t option
(** Case-insensitive lookup by name over [extended]. *)

val find : Workload.scale -> string -> Workload.t
(** Like {!find_opt}; raises [Not_found] for unknown names. *)

val names : string list
