(** WN-32 instruction set.

    The ISA is a Thumb-flavoured 32-bit-datapath RISC modelled on the
    Cortex M0+ the paper targets, extended with the three What's Next
    mechanisms:

    - [Mul_asp] — anytime subword pipelining: multiply by a single
      subword of an operand ([MUL_ASP<BITS>] in the paper, Listing 2);
    - [Add_asv]/[Sub_asv] — anytime subword vectorization: lane-parallel
      addition with the carry chain cut at lane boundaries (Figure 8);
    - [Skm] — skim point: latch a restore target in a dedicated
      non-volatile register, decoupling the checkpoint location from the
      post-outage restore location (Section III-C).

    The type is polymorphic in the branch-target representation: the
    assembler builds [string t] programs with symbolic labels and
    resolves them to [int t] (absolute instruction addresses). *)

type alu_op = Add | Sub | And | Orr | Eor | Bic | Adc | Sbc

type shift_op = Lsl | Lsr | Asr

type width = Byte | Half | Word

type 'lbl t =
  | Mov_imm of Reg.t * int  (** rd := imm16 (zero-extended) *)
  | Movt of Reg.t * int  (** rd\[31:16\] := imm16 *)
  | Mov of Reg.t * Reg.t
  | Alu of alu_op * Reg.t * Reg.t * Reg.t
      (** rd := rn OP rm; flags untouched (only [Cmp]/[Cmp_imm] set them) *)
  | Alu_imm of alu_op * Reg.t * Reg.t * int  (** rd := rn OP imm12 *)
  | Shift of shift_op * Reg.t * Reg.t * int  (** rd := rn SHIFT imm5 *)
  | Mul of Reg.t * Reg.t * Reg.t
      (** rd := low32 (rn * rm).  Iterative multiplier: 16 cycles for the
          16×16 products the benchmarks use. *)
  | Mul_asp of { bits : int; signed : bool; rd : Reg.t; rn : Reg.t; shift : int }
      (** rd := rd * subword — multiplies rd by the low [bits] bits of
          rn (sign-extended when [signed]), shifted left by [shift] bits
          to place the partial product at the subword's significance.
          Takes [bits] cycles on the iterative multiplier. *)
  | Add_asv of int * Reg.t * Reg.t * Reg.t
      (** [Add_asv (lane_bits, rd, rn, rm)]: lane-parallel rd := rn + rm
          with carries cut every [lane_bits] bits.  Single cycle. *)
  | Sub_asv of int * Reg.t * Reg.t * Reg.t
  | Sqrt of Reg.t * Reg.t
      (** rd := floor(sqrt(rn)) on the unsigned 32-bit pattern — a
          digit-by-digit (restoring) unit producing one result bit per
          cycle: 16 cycles for the full 16-bit root. *)
  | Sqrt_asp of { bits : int; rd : Reg.t; rn : Reg.t }
      (** anytime square root (the paper's footnote-3 extension): only
          the [bits] most significant result bits are computed (the
          rest read as zero), in [bits] cycles.  The digit recurrence
          makes every computed bit final, so successive SQRT_ASP stages
          refine monotonically toward the exact root. *)
  | Cmp of Reg.t * Reg.t  (** flags := rn - rm *)
  | Cmp_imm of Reg.t * int
  | Ldr of { width : width; signed : bool; rd : Reg.t; base : Reg.t; off : int }
  | Str of { width : width; rs : Reg.t; base : Reg.t; off : int }
  | Ldr_reg of { width : width; signed : bool; rd : Reg.t; base : Reg.t; idx : Reg.t }
  | Str_reg of { width : width; rs : Reg.t; base : Reg.t; idx : Reg.t }
  | B of Cond.t * 'lbl
  | Bl of 'lbl
  | Bx_lr
  | Skm of 'lbl  (** latch skim target in the non-volatile SKM register *)
  | Nop
  | Halt  (** end of task: output committed *)

val map_target : ('a -> 'b) -> 'a t -> 'b t

val target : 'lbl t -> 'lbl option
(** The branch/skim target, if the instruction has one. *)

val cycles : taken:bool -> 'lbl t -> int
(** Latency of one instruction on the 2-stage in-order pipeline.
    [taken] only matters for control-flow instructions (a taken branch
    pays a 1-cycle refill).  Memoization and zero-skipping (Section
    III-A) can shorten multiplies; that short-circuit lives in the
    machine, not here. *)

val worst_cycles : 'lbl t -> int
(** Worst-case latency over every execution of the instruction:
    [max (cycles ~taken:true) (cycles ~taken:false)].  Memoization and
    zero-skipping can only shorten multiplies, so this is the sound
    per-instruction ceiling the static WCEC analysis builds on. *)

val reads_memory : 'lbl t -> bool
val writes_memory : 'lbl t -> bool

val defs : 'lbl t -> Reg.t list
(** Registers the instruction writes.  [Movt] defines (and uses) its
    destination — it only replaces the high half.  [Bl] defines [lr].
    Flags are not registers and are excluded: in WN-32 only [Cmp] and
    [Cmp_imm] write the flags (ALU instructions leave them untouched,
    unlike ARM's optional S-forms) — see {!sets_flags}. *)

val uses : 'lbl t -> Reg.t list
(** Registers the instruction reads, in operand order and possibly with
    duplicates ([Mul_asp] reads its destination; [Movt] keeps the low
    half of its destination).  [Bx_lr] uses [lr].  Flags are excluded:
    conditional branches read them (see {!reads_flags}), and [Adc]/[Sbc]
    ignore carry-in in this machine (the compiler never emits
    carry-chained sequences). *)

val sets_flags : 'lbl t -> bool
(** True only for [Cmp] and [Cmp_imm] — the sole flag writers in
    WN-32. *)

val reads_flags : 'lbl t -> bool
(** True for conditional branches ([B] with a condition other than
    [Al]). *)

val is_wn_extension : 'lbl t -> bool
(** True for [Mul_asp], [Add_asv], [Sub_asv] and [Skm] — the dynamic
    instruction classes Table I reports as "Insn %". *)

val pp : lbl:(Format.formatter -> 'lbl -> unit) -> Format.formatter -> 'lbl t -> unit

val pp_resolved : Format.formatter -> int t -> unit
(** Disassembly with absolute numeric targets. *)
