type alu_op = Add | Sub | And | Orr | Eor | Bic | Adc | Sbc

type shift_op = Lsl | Lsr | Asr

type width = Byte | Half | Word

type 'lbl t =
  | Mov_imm of Reg.t * int
  | Movt of Reg.t * int
  | Mov of Reg.t * Reg.t
  | Alu of alu_op * Reg.t * Reg.t * Reg.t
  | Alu_imm of alu_op * Reg.t * Reg.t * int
  | Shift of shift_op * Reg.t * Reg.t * int
  | Mul of Reg.t * Reg.t * Reg.t
  | Mul_asp of { bits : int; signed : bool; rd : Reg.t; rn : Reg.t; shift : int }
  | Add_asv of int * Reg.t * Reg.t * Reg.t
  | Sub_asv of int * Reg.t * Reg.t * Reg.t
  | Sqrt of Reg.t * Reg.t
  | Sqrt_asp of { bits : int; rd : Reg.t; rn : Reg.t }
  | Cmp of Reg.t * Reg.t
  | Cmp_imm of Reg.t * int
  | Ldr of { width : width; signed : bool; rd : Reg.t; base : Reg.t; off : int }
  | Str of { width : width; rs : Reg.t; base : Reg.t; off : int }
  | Ldr_reg of { width : width; signed : bool; rd : Reg.t; base : Reg.t; idx : Reg.t }
  | Str_reg of { width : width; rs : Reg.t; base : Reg.t; idx : Reg.t }
  | B of Cond.t * 'lbl
  | Bl of 'lbl
  | Bx_lr
  | Skm of 'lbl
  | Nop
  | Halt

let map_target f = function
  | B (c, l) -> B (c, f l)
  | Bl l -> Bl (f l)
  | Skm l -> Skm (f l)
  | Mov_imm (r, i) -> Mov_imm (r, i)
  | Movt (r, i) -> Movt (r, i)
  | Mov (a, b) -> Mov (a, b)
  | Alu (op, a, b, c) -> Alu (op, a, b, c)
  | Alu_imm (op, a, b, i) -> Alu_imm (op, a, b, i)
  | Shift (op, a, b, i) -> Shift (op, a, b, i)
  | Mul (a, b, c) -> Mul (a, b, c)
  | Mul_asp m -> Mul_asp m
  | Add_asv (w, a, b, c) -> Add_asv (w, a, b, c)
  | Sub_asv (w, a, b, c) -> Sub_asv (w, a, b, c)
  | Sqrt (a, b) -> Sqrt (a, b)
  | Sqrt_asp s -> Sqrt_asp s
  | Cmp (a, b) -> Cmp (a, b)
  | Cmp_imm (a, i) -> Cmp_imm (a, i)
  | Ldr l -> Ldr l
  | Str s -> Str s
  | Ldr_reg l -> Ldr_reg l
  | Str_reg s -> Str_reg s
  | Bx_lr -> Bx_lr
  | Nop -> Nop
  | Halt -> Halt

let target = function
  | B (_, l) | Bl l | Skm l -> Some l
  | _ -> None

(* Latencies follow the M0+ the paper models: single-cycle ALU ops,
   2-cycle memory accesses, 2-cycle taken branches (pipeline refill),
   and an iterative multiplier at one operand bit per cycle — 16 cycles
   for the benchmarks' 16-bit full-precision multiplies, [bits] cycles
   for a MUL_ASP<bits> stage. *)
let cycles ~taken = function
  | Mov_imm _ | Movt _ | Mov _ | Alu _ | Alu_imm _ | Shift _ -> 1
  | Mul _ -> 16
  | Mul_asp { bits; _ } -> bits
  | Sqrt _ -> 16
  | Sqrt_asp { bits; _ } -> bits
  | Add_asv _ | Sub_asv _ -> 1
  | Cmp _ | Cmp_imm _ -> 1
  | Ldr _ | Str _ | Ldr_reg _ | Str_reg _ -> 2
  | B (Cond.Al, _) -> 2
  | B _ -> if taken then 2 else 1
  | Bl _ -> 2
  | Bx_lr -> 2
  | Skm _ -> 1
  | Nop -> 1
  | Halt -> 1

(* The static cost model: the most cycles any execution of the
   instruction can pay.  Memoization and zero-skipping only shorten
   multiplies, and a taken branch is never cheaper than a fall-through,
   so this is the per-instruction ceiling the WCEC analysis sums. *)
let worst_cycles i = max (cycles ~taken:true i) (cycles ~taken:false i)

let reads_memory = function Ldr _ | Ldr_reg _ -> true | _ -> false
let writes_memory = function Str _ | Str_reg _ -> true | _ -> false

let defs = function
  | Mov_imm (rd, _) | Movt (rd, _) | Mov (rd, _)
  | Alu (_, rd, _, _) | Alu_imm (_, rd, _, _) | Shift (_, rd, _, _)
  | Mul (rd, _, _) | Mul_asp { rd; _ }
  | Add_asv (_, rd, _, _) | Sub_asv (_, rd, _, _)
  | Sqrt (rd, _) | Sqrt_asp { rd; _ }
  | Ldr { rd; _ } | Ldr_reg { rd; _ } ->
      [ rd ]
  | Bl _ -> [ Reg.lr ]
  | Cmp _ | Cmp_imm _ | Str _ | Str_reg _ | B _ | Bx_lr | Skm _ | Nop | Halt
    ->
      []

let uses = function
  | Mov_imm _ -> []
  | Movt (rd, _) -> [ rd ]
  | Mov (_, rm) -> [ rm ]
  | Alu (_, _, rn, rm) -> [ rn; rm ]
  | Alu_imm (_, _, rn, _) -> [ rn ]
  | Shift (_, _, rn, _) -> [ rn ]
  | Mul (_, rn, rm) -> [ rn; rm ]
  | Mul_asp { rd; rn; _ } -> [ rd; rn ]
  | Add_asv (_, _, rn, rm) | Sub_asv (_, _, rn, rm) -> [ rn; rm ]
  | Sqrt (_, rn) | Sqrt_asp { rn; _ } -> [ rn ]
  | Cmp (rn, rm) -> [ rn; rm ]
  | Cmp_imm (rn, _) -> [ rn ]
  | Ldr { base; _ } -> [ base ]
  | Str { rs; base; _ } -> [ rs; base ]
  | Ldr_reg { base; idx; _ } -> [ base; idx ]
  | Str_reg { rs; base; idx; _ } -> [ rs; base; idx ]
  | Bx_lr -> [ Reg.lr ]
  | B _ | Bl _ | Skm _ | Nop | Halt -> []

let sets_flags = function Cmp _ | Cmp_imm _ -> true | _ -> false

let reads_flags = function B (c, _) -> c <> Cond.Al | _ -> false

let is_wn_extension = function
  | Mul_asp _ | Add_asv _ | Sub_asv _ | Sqrt_asp _ | Skm _ -> true
  | _ -> false

let alu_name = function
  | Add -> "add" | Sub -> "sub" | And -> "and" | Orr -> "orr"
  | Eor -> "eor" | Bic -> "bic" | Adc -> "adc" | Sbc -> "sbc"

let shift_name = function Lsl -> "lsl" | Lsr -> "lsr" | Asr -> "asr"

let width_suffix = function Byte -> "b" | Half -> "h" | Word -> ""

let pp ~lbl ppf t =
  let r = Reg.to_string in
  match t with
  | Mov_imm (rd, i) -> Format.fprintf ppf "mov %s, #%d" (r rd) i
  | Movt (rd, i) -> Format.fprintf ppf "movt %s, #%d" (r rd) i
  | Mov (rd, rm) -> Format.fprintf ppf "mov %s, %s" (r rd) (r rm)
  | Alu (op, rd, rn, rm) ->
      Format.fprintf ppf "%s %s, %s, %s" (alu_name op) (r rd) (r rn) (r rm)
  | Alu_imm (op, rd, rn, i) ->
      Format.fprintf ppf "%s %s, %s, #%d" (alu_name op) (r rd) (r rn) i
  | Shift (op, rd, rn, i) ->
      Format.fprintf ppf "%s %s, %s, #%d" (shift_name op) (r rd) (r rn) i
  | Mul (rd, rn, rm) -> Format.fprintf ppf "mul %s, %s, %s" (r rd) (r rn) (r rm)
  | Mul_asp { bits; signed; rd; rn; shift } ->
      Format.fprintf ppf "mul_asp%d%s %s, %s, <<%d" bits
        (if signed then "s" else "") (r rd) (r rn) shift
  | Add_asv (w, rd, rn, rm) ->
      Format.fprintf ppf "add_asv%d %s, %s, %s" w (r rd) (r rn) (r rm)
  | Sub_asv (w, rd, rn, rm) ->
      Format.fprintf ppf "sub_asv%d %s, %s, %s" w (r rd) (r rn) (r rm)
  | Sqrt (rd, rn) -> Format.fprintf ppf "sqrt %s, %s" (r rd) (r rn)
  | Sqrt_asp { bits; rd; rn } ->
      Format.fprintf ppf "sqrt_asp%d %s, %s" bits (r rd) (r rn)
  | Cmp (rn, rm) -> Format.fprintf ppf "cmp %s, %s" (r rn) (r rm)
  | Cmp_imm (rn, i) -> Format.fprintf ppf "cmp %s, #%d" (r rn) i
  | Ldr { width; signed; rd; base; off } ->
      Format.fprintf ppf "ldr%s%s %s, [%s, #%d]"
        (if signed then "s" else "") (width_suffix width) (r rd) (r base) off
  | Str { width; rs; base; off } ->
      Format.fprintf ppf "str%s %s, [%s, #%d]" (width_suffix width) (r rs)
        (r base) off
  | Ldr_reg { width; signed; rd; base; idx } ->
      Format.fprintf ppf "ldr%s%s %s, [%s, %s]"
        (if signed then "s" else "") (width_suffix width) (r rd) (r base)
        (r idx)
  | Str_reg { width; rs; base; idx } ->
      Format.fprintf ppf "str%s %s, [%s, %s]" (width_suffix width) (r rs)
        (r base) (r idx)
  | B (Cond.Al, l) -> Format.fprintf ppf "b %a" lbl l
  | B (c, l) -> Format.fprintf ppf "b%s %a" (Cond.to_string c) lbl l
  | Bl l -> Format.fprintf ppf "bl %a" lbl l
  | Bx_lr -> Format.pp_print_string ppf "bx lr"
  | Skm l -> Format.fprintf ppf "skm %a" lbl l
  | Nop -> Format.pp_print_string ppf "nop"
  | Halt -> Format.pp_print_string ppf "halt"

let pp_resolved ppf t = pp ~lbl:Format.pp_print_int ppf t
