(* Field layout (bit positions within the 32-bit word):
     opcode  [31:26]
     rd/rn1  [25:22]   rn/rn2 [21:18]   rm [17:14]
     sub-op  [17:15] (ALU-imm) / [13:11] (ALU-reg)
     lane or subword bits [13:9], signedness [8], position [2:0]
     memory width [13:12], signedness [11], offset [9:0]
     imm16 / branch target [15:0], imm12 [11:0], imm5 [4:0]. *)

open Instr

let check name v lo hi =
  if v < lo || v > hi then
    invalid_arg (Printf.sprintf "Encoding: %s out of range: %d" name v)

let alu_code = function
  | Add -> 0 | Sub -> 1 | And -> 2 | Orr -> 3 | Eor -> 4 | Bic -> 5
  | Adc -> 6 | Sbc -> 7

let alu_of_code = function
  | 0 -> Add | 1 -> Sub | 2 -> And | 3 -> Orr | 4 -> Eor | 5 -> Bic
  | 6 -> Adc | _ -> Sbc

let shift_code = function Lsl -> 0 | Lsr -> 1 | Asr -> 2

let shift_of_code = function 0 -> Lsl | 1 -> Lsr | _ -> Asr

let width_code = function Byte -> 0 | Half -> 1 | Word -> 2

let width_of_code = function 0 -> Byte | 1 -> Half | _ -> Word

let b = Bool.to_int

let reg r = Reg.index r

let pack ~opcode fields =
  let word = List.fold_left (fun acc (v, pos) -> acc lor (v lsl pos)) 0 fields in
  Int32.logor
    (Int32.shift_left (Int32.of_int opcode) 26)
    (Int32.of_int (word land 0x03FF_FFFF))

let encode t =
  match t with
  | Nop -> pack ~opcode:0 []
  | Halt -> pack ~opcode:1 []
  | Mov_imm (rd, i) ->
      check "imm16" i 0 0xFFFF;
      pack ~opcode:2 [ (reg rd, 22); (i, 0) ]
  | Movt (rd, i) ->
      check "imm16" i 0 0xFFFF;
      pack ~opcode:3 [ (reg rd, 22); (i, 0) ]
  | Mov (rd, rn) -> pack ~opcode:4 [ (reg rd, 22); (reg rn, 18) ]
  | Alu (op, rd, rn, rm) ->
      pack ~opcode:5
        [ (reg rd, 22); (reg rn, 18); (reg rm, 14); (alu_code op, 11) ]
  | Alu_imm (op, rd, rn, i) ->
      check "imm12" i 0 0xFFF;
      pack ~opcode:6 [ (reg rd, 22); (reg rn, 18); (alu_code op, 15); (i, 0) ]
  | Shift (op, rd, rn, i) ->
      check "imm5" i 0 31;
      pack ~opcode:7 [ (reg rd, 22); (reg rn, 18); (shift_code op, 16); (i, 0) ]
  | Mul (rd, rn, rm) ->
      pack ~opcode:8 [ (reg rd, 22); (reg rn, 18); (reg rm, 14) ]
  | Mul_asp { bits; signed; rd; rn; shift } ->
      check "subword bits" bits 1 16;
      check "subword shift" shift 0 31;
      pack ~opcode:9
        [ (reg rd, 22); (reg rn, 18); (bits, 9); (b signed, 8); (shift, 0) ]
  | Add_asv (w, rd, rn, rm) ->
      check "lane bits" w 1 16;
      pack ~opcode:10 [ (reg rd, 22); (reg rn, 18); (reg rm, 14); (w, 9) ]
  | Sub_asv (w, rd, rn, rm) ->
      check "lane bits" w 1 16;
      pack ~opcode:11 [ (reg rd, 22); (reg rn, 18); (reg rm, 14); (w, 9) ]
  | Cmp (rn, rm) -> pack ~opcode:12 [ (reg rn, 22); (reg rm, 18) ]
  | Cmp_imm (rn, i) ->
      check "imm16" i 0 0xFFFF;
      pack ~opcode:13 [ (reg rn, 22); (i, 0) ]
  | Ldr { width; signed; rd; base; off } ->
      check "offset" off 0 0x3FF;
      pack ~opcode:14
        [ (reg rd, 22); (reg base, 18); (width_code width, 12);
          (b signed, 11); (off, 0) ]
  | Str { width; rs; base; off } ->
      check "offset" off 0 0x3FF;
      pack ~opcode:15
        [ (reg rs, 22); (reg base, 18); (width_code width, 12); (off, 0) ]
  | Ldr_reg { width; signed; rd; base; idx } ->
      pack ~opcode:16
        [ (reg rd, 22); (reg base, 18); (reg idx, 14);
          (width_code width, 12); (b signed, 11) ]
  | Str_reg { width; rs; base; idx } ->
      pack ~opcode:17
        [ (reg rs, 22); (reg base, 18); (reg idx, 14); (width_code width, 12) ]
  | B (c, tgt) ->
      check "branch target" tgt 0 0xFFFF;
      pack ~opcode:18 [ (Cond.to_int c, 22); (tgt, 0) ]
  | Bl tgt ->
      check "branch target" tgt 0 0xFFFF;
      pack ~opcode:19 [ (tgt, 0) ]
  | Bx_lr -> pack ~opcode:20 []
  | Skm tgt ->
      check "skim target" tgt 0 0xFFFF;
      pack ~opcode:21 [ (tgt, 0) ]
  | Sqrt (rd, rn) -> pack ~opcode:22 [ (reg rd, 22); (reg rn, 18) ]
  | Sqrt_asp { bits; rd; rn } ->
      check "sqrt bits" bits 1 16;
      pack ~opcode:23 [ (reg rd, 22); (reg rn, 18); (bits, 9) ]

let field word pos width =
  Int32.to_int (Int32.shift_right_logical word pos) land ((1 lsl width) - 1)

(* Decode validates every field [encode] range-checks, so the two stay
   exact inverses: any word [decode] accepts re-encodes to the same
   word, and no unencodable instruction can enter through the decoder
   (subword/lane counts of 0 or 17-31, the unused memory-width and
   shift codes). *)
let decode word =
  let opcode = field word 26 6 in
  let rd () = Reg.r (field word 22 4) in
  let rn () = Reg.r (field word 18 4) in
  let rm () = Reg.r (field word 14 4) in
  let imm16 = field word 0 16 in
  let bad what = Error (Printf.sprintf "invalid %s in %08lx" what word) in
  let subword_bits k =
    let bits = field word 9 5 in
    if bits < 1 || bits > 16 then bad "subword bits" else k bits
  in
  let mem_width k =
    let wc = field word 12 2 in
    if wc > 2 then bad "memory width" else k (width_of_code wc)
  in
  match opcode with
  | 0 -> Ok Nop
  | 1 -> Ok Halt
  | 2 -> Ok (Mov_imm (rd (), imm16))
  | 3 -> Ok (Movt (rd (), imm16))
  | 4 -> Ok (Mov (rd (), rn ()))
  | 5 -> Ok (Alu (alu_of_code (field word 11 3), rd (), rn (), rm ()))
  | 6 -> Ok (Alu_imm (alu_of_code (field word 15 3), rd (), rn (), field word 0 12))
  | 7 ->
      let sc = field word 16 2 in
      if sc > 2 then bad "shift operation"
      else Ok (Shift (shift_of_code sc, rd (), rn (), field word 0 5))
  | 8 -> Ok (Mul (rd (), rn (), rm ()))
  | 9 ->
      subword_bits @@ fun bits ->
      Ok
        (Mul_asp
           { bits; signed = field word 8 1 = 1;
             rd = rd (); rn = rn (); shift = field word 0 5 })
  | 10 -> subword_bits @@ fun w -> Ok (Add_asv (w, rd (), rn (), rm ()))
  | 11 -> subword_bits @@ fun w -> Ok (Sub_asv (w, rd (), rn (), rm ()))
  | 12 -> Ok (Cmp (rd (), rn ()))
  | 13 -> Ok (Cmp_imm (rd (), imm16))
  | 14 ->
      mem_width @@ fun width ->
      Ok
        (Ldr
           { width; signed = field word 11 1 = 1; rd = rd (); base = rn ();
             off = field word 0 10 })
  | 15 ->
      mem_width @@ fun width ->
      Ok (Str { width; rs = rd (); base = rn (); off = field word 0 10 })
  | 16 ->
      mem_width @@ fun width ->
      Ok
        (Ldr_reg
           { width; signed = field word 11 1 = 1; rd = rd (); base = rn ();
             idx = rm () })
  | 17 ->
      mem_width @@ fun width ->
      Ok (Str_reg { width; rs = rd (); base = rn (); idx = rm () })
  | 18 -> (
      match Cond.of_int (field word 22 4) with
      | Some c -> Ok (B (c, imm16))
      | None -> bad "condition code")
  | 19 -> Ok (Bl imm16)
  | 20 -> Ok Bx_lr
  | 21 -> Ok (Skm imm16)
  | 22 -> Ok (Sqrt (rd (), rn ()))
  | 23 -> subword_bits @@ fun bits -> Ok (Sqrt_asp { bits; rd = rd (); rn = rn () })
  | n -> Error (Printf.sprintf "unknown opcode %d" n)

let encode_program prog = Array.map encode prog

let decode_program words =
  let exception Bad of string in
  try
    Ok
      (Array.map
         (fun w -> match decode w with Ok i -> i | Error e -> raise (Bad e))
         words)
  with Bad e -> Error e

let code_size_bytes prog = 4 * Array.length prog
