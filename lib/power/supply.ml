type t = {
  clock_hz : float;
  cycle_energy : float;
  trace : Trace.t;
  capacitor : Capacitor.t;
  infinite : bool;
  mutable cycles : int;
  mutable outage_count : int;
  mutable consumed : float;
}

let default_clock_hz = 24e6

let default_cycle_energy = 1.0e-9

let create ?(clock_hz = default_clock_hz) ?(cycle_energy = default_cycle_energy)
    ?(start_full = true) ~trace ~capacitor () =
  if clock_hz <= 0.0 || cycle_energy < 0.0 then invalid_arg "Supply.create";
  if start_full then Capacitor.set_full capacitor;
  {
    clock_hz;
    cycle_energy;
    trace;
    capacitor;
    infinite = false;
    cycles = 0;
    outage_count = 0;
    consumed = 0.0;
  }

let always_on () =
  {
    clock_hz = default_clock_hz;
    cycle_energy = default_cycle_energy;
    trace = Trace.constant ~power:1.0 ~duration_s:1.0;
    capacitor = Capacitor.create ();
    infinite = true;
    cycles = 0;
    outage_count = 0;
    consumed = 0.0;
  }

let now_cycles t = t.cycles

let now_s t = float_of_int t.cycles /. t.clock_hz

let is_on t = t.infinite || Capacitor.is_on t.capacitor

let cycles_per_tick t =
  int_of_float (Float.round (t.clock_hz *. Trace.sample_period_s))

let current_tick t = t.cycles / cycles_per_tick t

(* Harvest inflow over [start, start + cycles) cycles, integrated
   piecewise across trace-tick boundaries: a multi-cycle instruction
   (the 16-cycle MUL) that spans a burst edge must credit each segment
   at that segment's power, not the whole instruction at the starting
   tick's power. *)
let harvest_over t ~start ~cycles =
  let per_tick = cycles_per_tick t in
  let finish = start + cycles in
  let rec integrate pos acc =
    if pos >= finish then acc
    else
      let tick = pos / per_tick in
      let seg_end = min finish ((tick + 1) * per_tick) in
      let seg = seg_end - pos in
      integrate seg_end
        (acc
        +. Trace.power_at_tick t.trace tick
           *. (float_of_int seg /. t.clock_hz))
  in
  integrate start 0.0

let consume t ~cycles =
  if cycles < 0 then invalid_arg "Supply.consume";
  let start = t.cycles in
  t.cycles <- t.cycles + cycles;
  let joules = float_of_int cycles *. t.cycle_energy in
  t.consumed <- t.consumed +. joules;
  if t.infinite then true
  else begin
    Capacitor.harvest t.capacitor (harvest_over t ~start ~cycles);
    Capacitor.drain t.capacitor joules;
    let on = Capacitor.is_on t.capacitor in
    if not on then t.outage_count <- t.outage_count + 1;
    on
  end

let wait_for_power t =
  if is_on t then 0
  else begin
    let per_tick = cycles_per_tick t in
    let start = t.cycles in
    let limit = t.cycles + int_of_float (600.0 *. t.clock_hz) in
    let rec charge () =
      if is_on t then t.cycles - start
      else if t.cycles > limit then
        failwith "Supply.wait_for_power: trace cannot recharge the capacitor"
      else begin
        let tick = current_tick t in
        Capacitor.harvest t.capacitor
          (Trace.power_at_tick t.trace tick *. Trace.sample_period_s);
        t.cycles <- t.cycles + per_tick;
        charge ()
      end
    in
    charge ()
  end

let outages t = t.outage_count

let energy_consumed t = t.consumed
