type t = {
  clock_hz : float;
  cycle_energy : float;
  trace : Trace.t;
  capacitor : Capacitor.t;
  infinite : bool;
  per_tick : int; (* simulation cycles per trace tick, hoisted from the
                     per-call float round the seed paid *)
  mutable cycles : int;
  mutable outage_count : int;
  (* Core-drain accounting in integer cycles, not accumulated floats:
     [energy_consumed] is one multiply at read time, so a batched
     multi-instruction consume reports exactly the same energy as the
     per-instruction call sequence (no float summation-order drift). *)
  mutable consumed_cycles : int;
  (* Cached harvest segment: for cycle positions in
     [tick_base, tick_end) the trace delivers [tick_power] watts.
     Within-segment [consume] is then a multiply-add; the piecewise
     integration only runs when an instruction spans a tick boundary. *)
  mutable tick_base : int;
  mutable tick_end : int;
  mutable tick_power : float;
  (* Scripted outages (fault injection): the supply reports a brown-out
     the moment the clock reaches the next scripted cycle, regardless of
     stored energy, and [wait_for_power] restores power after a fixed
     off-period.  [forced_off] is also settable directly via [cut]. *)
  mutable forced_off : bool;
  mutable script : int list; (* ascending absolute cut cycles *)
  off_cycles : int; (* off-period served for a forced outage *)
}

let default_clock_hz = 24e6

let default_cycle_energy = 1.0e-9

let compute_per_tick clock_hz =
  int_of_float (Float.round (clock_hz *. Trace.sample_period_s))

(* Re-anchor the cached segment on the tick containing [t.cycles]. *)
let refresh_tick_cache t =
  let tick = t.cycles / t.per_tick in
  t.tick_base <- tick * t.per_tick;
  t.tick_end <- t.tick_base + t.per_tick;
  t.tick_power <- Trace.power_at_tick t.trace tick

let create ?(clock_hz = default_clock_hz) ?(cycle_energy = default_cycle_energy)
    ?(start_full = true) ~trace ~capacitor () =
  if clock_hz <= 0.0 || cycle_energy < 0.0 then invalid_arg "Supply.create";
  if start_full then Capacitor.set_full capacitor;
  let t =
    {
      clock_hz;
      cycle_energy;
      trace;
      capacitor;
      infinite = false;
      per_tick = compute_per_tick clock_hz;
      cycles = 0;
      outage_count = 0;
      consumed_cycles = 0;
      tick_base = 0;
      tick_end = 0;
      tick_power = 0.0;
      forced_off = false;
      script = [];
      off_cycles = 0;
    }
  in
  refresh_tick_cache t;
  t

let always_on () =
  let trace = Trace.constant ~power:1.0 ~duration_s:1.0 in
  let t =
    {
      clock_hz = default_clock_hz;
      cycle_energy = default_cycle_energy;
      trace;
      capacitor = Capacitor.create ();
      infinite = true;
      per_tick = compute_per_tick default_clock_hz;
      cycles = 0;
      outage_count = 0;
      consumed_cycles = 0;
      tick_base = 0;
      tick_end = 0;
      tick_power = 0.0;
      forced_off = false;
      script = [];
      off_cycles = 0;
    }
  in
  refresh_tick_cache t;
  t

let default_off_cycles = 24_000

let scripted ?(off_cycles = default_off_cycles) ?(outages = []) () =
  if off_cycles < 0 then invalid_arg "Supply.scripted";
  let rec ascending = function
    | a :: (b :: _ as rest) ->
        if a >= b then invalid_arg "Supply.scripted" else ascending rest
    | _ -> ()
  in
  List.iter (fun c -> if c < 0 then invalid_arg "Supply.scripted") outages;
  ascending outages;
  let trace = Trace.constant ~power:1.0 ~duration_s:1.0 in
  let t =
    {
      clock_hz = default_clock_hz;
      cycle_energy = default_cycle_energy;
      trace;
      capacitor = Capacitor.create ();
      infinite = true;
      per_tick = compute_per_tick default_clock_hz;
      cycles = 0;
      outage_count = 0;
      consumed_cycles = 0;
      tick_base = 0;
      tick_end = 0;
      tick_power = 0.0;
      forced_off = false;
      script = outages;
      off_cycles;
    }
  in
  refresh_tick_cache t;
  t

let now_cycles t = t.cycles

let now_s t = float_of_int t.cycles /. t.clock_hz

let is_on t =
  (not t.forced_off) && (t.infinite || Capacitor.is_on t.capacitor)

(* Force a brown-out right now, regardless of stored energy.  On a
   capacitor-backed supply the injection empties the capacitor (the
   physical analogue of yanking the harvester mid-burst); on an infinite
   or scripted supply it sets [forced_off], which [wait_for_power]
   clears after serving [off_cycles]. *)
let cut t =
  if is_on t then begin
    if t.infinite then t.forced_off <- true
    else Capacitor.set_empty t.capacitor;
    t.outage_count <- t.outage_count + 1
  end

(* Harvest inflow over [start, start + cycles) cycles, integrated
   piecewise across trace-tick boundaries: a multi-cycle instruction
   (the 16-cycle MUL) that spans a burst edge must credit each segment
   at that segment's power, not the whole instruction at the starting
   tick's power.  Left-to-right summation, like each call to this
   function always performed. *)
let harvest_spanning t ~start ~finish =
  let per_tick = t.per_tick in
  let pos = ref start in
  let acc = ref 0.0 in
  while !pos < finish do
    let tick = !pos / per_tick in
    let seg_end = min finish ((tick + 1) * per_tick) in
    let seg = seg_end - !pos in
    acc :=
      !acc
      +. Trace.power_at_tick t.trace tick *. (float_of_int seg /. t.clock_hz);
    pos := seg_end
  done;
  !acc

let consume t ~cycles =
  if cycles < 0 then invalid_arg "Supply.consume";
  let start = t.cycles in
  let finish = start + cycles in
  t.cycles <- finish;
  let joules = float_of_int cycles *. t.cycle_energy in
  t.consumed_cycles <- t.consumed_cycles + cycles;
  (match t.script with
  | c :: _ when c <= finish ->
      let rec drop = function
        | c :: rest when c <= finish -> drop rest
        | rest -> rest
      in
      t.script <- drop t.script;
      if not t.forced_off then begin
        t.forced_off <- true;
        t.outage_count <- t.outage_count + 1
      end
  | _ -> ());
  if t.infinite then not t.forced_off
  else begin
    let inflow =
      if start >= t.tick_base && finish <= t.tick_end then
        (* Whole burst inside the cached tick: single multiply-add,
           bit-identical to the one-segment integration (0.0 +. x = x). *)
        t.tick_power *. (float_of_int cycles /. t.clock_hz)
      else begin
        let v = harvest_spanning t ~start ~finish in
        refresh_tick_cache t;
        v
      end
    in
    Capacitor.harvest t.capacitor inflow;
    Capacitor.drain t.capacitor joules;
    let on = Capacitor.is_on t.capacitor in
    if not on then t.outage_count <- t.outage_count + 1;
    on
  end

let wait_for_power t =
  if is_on t then 0
  else if t.forced_off then begin
    (* A forced (scripted/injected) outage on an energy-unconstrained
       supply: serve the fixed off-period, then power returns.  The
       clock advance keeps downstream time accounting honest without
       modelling any recharge physics. *)
    t.cycles <- t.cycles + t.off_cycles;
    t.forced_off <- false;
    if not t.infinite then refresh_tick_cache t;
    t.off_cycles
  end
  else begin
    let start = t.cycles in
    let limit = t.cycles + int_of_float (600.0 *. t.clock_hz) in
    let rec charge () =
      if is_on t then begin
        refresh_tick_cache t;
        t.cycles - start
      end
      else if t.cycles > limit then
        failwith "Supply.wait_for_power: trace cannot recharge the capacitor"
      else begin
        (* Integrate only to the next tick boundary: an outage that
           begins mid-tick charges for the remaining fraction of that
           tick at that tick's power, keeping the clock aligned to the
           trace instead of drifting by the mid-tick offset. *)
        let tick = t.cycles / t.per_tick in
        let boundary = (tick + 1) * t.per_tick in
        let seg = boundary - t.cycles in
        Capacitor.harvest t.capacitor
          (Trace.power_at_tick t.trace tick
          *. (float_of_int seg /. t.clock_hz));
        t.cycles <- boundary;
        charge ()
      end
    in
    charge ()
  end

let outages t = t.outage_count

let energy_consumed t = float_of_int t.consumed_cycles *. t.cycle_energy

let never_cuts t = t.infinite && t.script = []

(* Margin covering the float rounding gap between one batched drain and
   the per-instruction drain sequence the guard stands in for: the
   sequence's total rounding error is at most one ulp per instruction,
   so sixteen whole cycles of headroom dwarfs it for any real block. *)
let assured_margin_cycles = 16

let assured t ~cycles =
  (not t.forced_off)
  && (match t.script with [] -> true | c :: _ -> c > t.cycles + cycles)
  && (t.infinite
     || Capacitor.usable_energy t.capacitor
        >= float_of_int (cycles + assured_margin_cycles) *. t.cycle_energy)

let consume_run t ~costs =
  if t.infinite then begin
    (* Energy-unconstrained: one batched call is observably identical to
       the per-cost sequence — the clock advance and (integer) drain
       accounting are additive, and the script drop/forced-off latch
       depends only on the final clock position. *)
    let total = ref 0 in
    for i = 0 to Array.length costs - 1 do
      total := !total + Array.unsafe_get costs i
    done;
    consume t ~cycles:!total
  end
  else begin
    (* Capacitor-backed: replay the exact per-instruction call sequence
       so harvest/drain interleaving (and its float rounding) is
       bit-identical to per-step execution. *)
    let on = ref true in
    for i = 0 to Array.length costs - 1 do
      on := consume t ~cycles:(Array.unsafe_get costs i)
    done;
    !on
  end
