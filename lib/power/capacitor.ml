type t = {
  capacitance : float;
  v_on : float;
  v_off : float;
  v_max : float;
  mutable stored : float; (* joules *)
  mutable on : bool;
}

let energy_at c v = 0.5 *. c *. v *. v

let create ?(capacitance = 10e-6) ?(v_on = 2.3) ?(v_off = 1.8) ?(v_max = 2.5)
    () =
  if capacitance <= 0.0 || v_off <= 0.0 || v_off >= v_on || v_on > v_max then
    invalid_arg "Capacitor.create";
  {
    capacitance;
    v_on;
    v_off;
    v_max;
    stored = energy_at capacitance v_max;
    on = true;
  }

let voltage t = sqrt (2.0 *. t.stored /. t.capacitance)

let energy t = t.stored

let usable_energy t =
  Float.max 0.0 (t.stored -. energy_at t.capacitance t.v_off)

let burst_budget t =
  energy_at t.capacitance t.v_max -. energy_at t.capacitance t.v_off

let restart_budget t =
  energy_at t.capacitance t.v_on -. energy_at t.capacitance t.v_off

let is_on t = t.on

let update_state t =
  let v = voltage t in
  if t.on && v < t.v_off then t.on <- false
  else if (not t.on) && v >= t.v_on then t.on <- true

let drain t joules =
  if joules < 0.0 then invalid_arg "Capacitor.drain";
  t.stored <- Float.max 0.0 (t.stored -. joules);
  update_state t

let harvest t joules =
  if joules < 0.0 then invalid_arg "Capacitor.harvest";
  t.stored <- Float.min (energy_at t.capacitance t.v_max) (t.stored +. joules);
  update_state t

let set_empty t =
  t.stored <- energy_at t.capacitance t.v_off;
  t.on <- false

let set_full t =
  t.stored <- energy_at t.capacitance t.v_max;
  t.on <- true

let copy t = { t with capacitance = t.capacitance }
