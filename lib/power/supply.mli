(** Intermittent power supply: a harvesting trace feeding a capacitor
    that powers the core.

    The supply keeps the global wall clock in CPU cycles at the paper's
    24 MHz.  While the core runs it drains a constant energy per cycle
    (validated constant-per-instruction on an MSP430 in the paper;
    per-cycle makes the 16-cycle iterative multiply proportionally more
    expensive, see DESIGN.md) and simultaneously integrates harvested
    energy.  When the capacitor sags below brown-out the core loses
    power; [wait_for_power] advances the clock until the turn-on
    threshold is reached again. *)

type t

val default_clock_hz : float
(** 24 MHz, the paper's operating frequency. *)

val default_cycle_energy : float
(** 1 nJ per cycle — MSP430-class energy per cycle, calibrated so a
    full 10 µF charge sustains about 15 k cycles (≈ 0.6 ms at 24 MHz),
    the paper's "up to a few milliseconds at a time" regime. *)

val create :
  ?clock_hz:float ->
  ?cycle_energy:float ->
  ?start_full:bool ->
  trace:Trace.t ->
  capacitor:Capacitor.t ->
  unit ->
  t

val always_on : unit -> t
(** A supply that never browns out (for functional testing and for the
    continuously-powered baseline). *)

val default_off_cycles : int
(** Off-period served by [scripted] supplies per forced outage:
    24_000 cycles (one 1 kHz trace tick at 24 MHz). *)

val scripted : ?off_cycles:int -> ?outages:int list -> unit -> t
(** A fault-injection supply: energy-unconstrained like [always_on],
    but it cuts power the moment the clock reaches each cycle in
    [outages] (strictly ascending, all non-negative) — and whenever
    [cut] is called.  After a forced outage, [wait_for_power] serves
    exactly [off_cycles] (default {!default_off_cycles}) and power
    returns.  Raises [Invalid_argument] on a negative [off_cycles] or
    an unsorted/negative script. *)

val cut : t -> unit
(** Force a brown-out right now.  On a capacitor-backed supply this
    empties the capacitor (recharge then follows the trace as for any
    natural outage); on an [always_on]/[scripted] supply it forces the
    off state that [wait_for_power] clears after its off-period.  No-op
    if the supply is already off. *)

val now_cycles : t -> int
(** Wall-clock cycles elapsed, including time spent powered off. *)

val now_s : t -> float

val is_on : t -> bool

val consume : t -> cycles:int -> bool
(** Run the core for [cycles] cycles: advances the clock, drains the
    capacitor, integrates harvest.  Inflow is integrated piecewise
    across trace-tick boundaries, so a multi-cycle instruction that
    spans a burst edge credits each segment at that segment's power.
    Returns [false] if the supply browned out (the core lost power at
    the end of those cycles). *)

val wait_for_power : t -> int
(** Block (advance the clock) until the capacitor recharges to turn-on;
    returns the number of cycles spent off.  An outage that begins
    mid-tick first charges for the remaining fraction of that tick at
    that tick's power, then proceeds tick-aligned — the clock never
    drifts off the trace grid.  Raises [Failure] if the trace cannot
    recharge the capacitor within a 10-minute simulated window (a
    starved supply). *)

val consume_run : t -> costs:int array -> bool
(** Consume a whole fused run, [costs] holding each instruction's
    latency in order.  Observably identical to calling {!consume} once
    per cost left to right — on a capacitor-backed supply it *is* that
    call sequence (so harvest/drain float rounding matches per-step
    execution bit for bit), on an energy-unconstrained supply it
    collapses to one batched call.  Returns the last consume's power
    state.  Intended to run under an {!assured} guard; if power dies
    mid-run anyway, the remaining costs are still consumed (the outage
    surfaces at the run boundary). *)

val never_cuts : t -> bool
(** True when this supply can never brown out on its own: energy
    unconstrained with no scripted outages pending.  [cut] can still
    force an outage — callers coalescing {!consume} calls under this
    predicate must flush before cutting.  Monotone: once true it stays
    true until a [cut]. *)

val assured : t -> cycles:int -> bool
(** Conservative guard: is the supply guaranteed to stay on through
    [cycles] more consumed cycles (no scripted cut inside the window,
    and — for a capacitor — usable charge covering the drain with a
    16-cycle margin for float rounding, before counting any harvest
    inflow)?  A [false] answer does not mean power will die, only that
    it cannot be promised; harvest income during the window is ignored,
    which is sound because it only adds. *)

val outages : t -> int
(** Number of brown-outs observed so far. *)

val energy_consumed : t -> float
(** Total joules drained by the core: consumed cycles times the cycle
    energy.  Tracked in integer cycles, so batched multi-instruction
    consumes report exactly what the per-instruction sequence would. *)
