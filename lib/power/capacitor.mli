(** Energy-storage capacitor.

    The paper models a 10 µF capacitor as the only energy store.  The
    device turns on once the capacitor charges to [v_on] and browns out
    when it sags to [v_off]; stored energy is E = ½CV². *)

type t

val create :
  ?capacitance:float ->
  ?v_on:float ->
  ?v_off:float ->
  ?v_max:float ->
  unit ->
  t
(** Defaults: 10 µF, turn-on 2.3 V, brown-out 1.8 V, regulator clamp
    2.5 V.  Starts fully charged (at [v_max]).  Raises
    [Invalid_argument] unless [0 < v_off < v_on <= v_max]. *)

val voltage : t -> float
val energy : t -> float

val usable_energy : t -> float
(** Energy available before brown-out: ½C(V² - v_off²), floored at 0. *)

val burst_budget : t -> float
(** Energy of one full on-period, ½C(v_max² - v_off²) — the "few
    milliseconds at a time" budget. *)

val restart_budget : t -> float
(** Energy guaranteed between turning on and browning out with zero
    harvest, ½C(v_on² - v_off²).  After an outage the device restarts
    at exactly [v_on], so this is the budget every
    checkpoint-to-checkpoint region must fit in for forward progress —
    the bound the static WCEC verifier checks against. *)

val is_on : t -> bool
(** True while the capacitor can power the core.  Hysteresis: becomes
    true when the voltage reaches [v_on], false when it sags below
    [v_off]. *)

val drain : t -> float -> unit
(** Remove joules (floored at zero energy).  May switch [is_on] off. *)

val harvest : t -> float -> unit
(** Add joules, clamped at [v_max].  May switch [is_on] on. *)

val set_empty : t -> unit
(** Discharge to [v_off] (device just browned out). *)

val set_full : t -> unit

val copy : t -> t
