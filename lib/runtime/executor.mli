(** Intermittent execution of one task under a power supply.

    Three system models, matching the paper's evaluation:

    - [Always_on] — continuously powered (the reference used to define
      baseline runtime and the runtime–quality curves of Figure 9);
    - [Nvp] — non-volatile processor with the backup-every-cycle policy:
      architectural state survives outages, execution resumes in place
      after a small wake-up latency (Section V-C);
    - [Clank] — checkpoint-based volatile processor: registers are lost
      on an outage and recovered from the last checkpoint in NVM.
      Checkpoints are triggered by idempotency (write-after-read)
      violations, by read/write-set buffer overflow, and by a periodic
      watchdog, as in Clank (Section IV).

    Skim points: on restore from an outage, if the task latched a skim
    target with [SKM], the executor jumps there instead of resuming,
    committing the approximate result as-is (Section III-C). *)

type nvp_config = { nvp_restore_cycles : int }

val default_nvp : nvp_config
(** 8-cycle wake-up. *)

type clank_config = {
  watchdog_period : int;  (** cycles between forced checkpoints *)
  buffer_entries : int;  (** read/write-set capacity before overflow *)
  checkpoint_cycles : int;  (** cost of saving 16 regs + PC + flags to NVM *)
  clank_restore_cycles : int;
}

val default_clank : clank_config
(** 8000-cycle watchdog (of the order of one power burst, as Clank
    tunes it), 2048-word tracking capacity (Clank's Bloom filters cover
    thousands of addresses before saturating), 40-cycle checkpoint,
    40-cycle restore. *)

type policy = Always_on | Nvp of nvp_config | Clank of clank_config

val policy_name : policy -> string

type engine = Fast | Block | Compat
(** Which machine stepping interface drives the loop.  [Fast] (the
    default) uses [Machine.step_fast] and the scratch-field effect
    accessors — no per-instruction allocation.  [Block] additionally
    executes fused straight-line superinstructions
    ({!Wn_machine.Machine.exec_block}) whenever one energy-gated entry
    guard passes — step budget covers the run length, watchdog slack
    and Clank tracking capacity cover the run, the capacitor's usable
    charge covers the run's worst-case energy, and no snapshot/keyframe
    boundary lands inside it — with one batched supply consume and one
    post-step; any failed guard (or a hook that must observe every
    instruction boundary: [on_step], [on_region], [fast_forward]) falls
    back to per-instruction stepping until the next run entry, so fault
    injection at any instruction boundary still works.  [Compat] drives
    the original [Machine.step] record interface.  All three are
    observably identical (the differential suite asserts it); [Compat]
    exists as the cross-check and for callers instrumenting
    [step_result]. *)

val engine_name : engine -> string

val engine_of_string : string -> engine option
(** ["fast"], ["block"] or ["compat"]. *)

type outcome = {
  completed : bool;  (** reached [Halt] (possibly via a skim jump) *)
  skimmed : bool;  (** finished through a skim-point jump *)
  first_skim_active : int option;
      (** active cycles when the first skim point was latched — the
          paper's "earliest available output" instant *)
  wall_cycles : int;  (** total wall-clock cycles for this task, off-time included *)
  active_cycles : int;  (** cycles spent executing instructions *)
  overhead_cycles : int;  (** checkpoint + restore cycles *)
  reexecuted_instructions : int;  (** work redone after rollbacks (Clank) *)
  outage_count : int;
  checkpoint_count : int;
  retired : int;
}

type snapshot_hook = active_cycles:int -> wall_cycles:int -> unit
(** Invoked every [snapshot_every] *active* cycles (approximately — at
    the first instruction boundary past each multiple) and once at task
    end; used to sample output quality over time. *)

type resume_state
(** Executor-visible state at a clean instruction boundary of an
    uninterrupted run: the loop's accumulated counters (active,
    overhead and wall cycles, retired instructions, outage / checkpoint
    counts, skim bookkeeping) plus, under [Clank], the policy state —
    the last register-file checkpoint, the read-first/written shadow
    map and the epoch counters.  Captured via [on_keyframe]; immutable
    once captured, so one value can seed any number of resumed runs
    from any number of domains (each [run ~resume] deep-copies the
    mutable parts).  Pair it with the {!Wn_machine.Machine.snapshot}
    taken at the same boundary to resume execution as if the run had
    never stopped: the resumed run's [outcome] is bit-identical to the
    from-scratch run's. *)

val resume_retired : resume_state -> int
(** Instructions retired from task start at capture. *)

type fast_forward = { ff_at : resume_state; ff_final : outcome }
(** A rejoin certificate: the caller has observed that the machine's
    architectural state bit-matches a boundary of a reference run whose
    completion is already recorded.  Since the architectural state alone
    determines all future execution on a scripted supply, the rest of
    this run is the rest of that one.  [ff_at] is the reference run's
    [resume_state] at the matched boundary; [ff_final] its outcome at
    halt. *)

val run :
  ?policy:policy ->
  ?engine:engine ->
  ?max_wall_cycles:int ->
  ?snapshot_every:int ->
  ?snapshot:snapshot_hook ->
  ?halt_at_skim:bool ->
  ?on_checkpoint:(int -> unit) ->
  ?on_restore:(int -> unit) ->
  ?on_region:(cycles:int -> unit) ->
  ?on_step:(unit -> unit) ->
  ?resume:resume_state ->
  ?keyframe_every:int ->
  ?on_keyframe:(resume_state -> unit) ->
  ?fast_forward:(unit -> fast_forward option) ->
  machine:Wn_machine.Machine.t ->
  supply:Wn_power.Supply.t ->
  unit ->
  outcome
(** Execute the current task until [Halt] or until [max_wall_cycles]
    (default 20 billion — a watchdog against starved supplies) elapses
    on the wall clock.  The machine should be positioned at the task
    entry ([Machine.reset_for_new_task]).  Default policy is
    [Always_on].

    [halt_at_skim] models a power outage the instant the first skim
    point is latched: the skim jump is taken immediately, committing the
    earliest available output — the configuration of the paper's
    memoization, small-subword and sampling studies ("when the earliest
    available output is taken").

    Fault-injection hooks (both engines): [on_checkpoint n] fires after
    each Clank checkpoint completes, with [n] the machine's total
    retired-instruction count at that instant; [on_restore k] fires
    after the [k]'th outage's restore completes — skim jump taken or
    rollback applied — with the machine in exactly the state execution
    resumes from.  Additionally, if the machine's step budget
    ({!Wn_machine.Machine.set_step_budget}) reaches zero the executor
    clears it and forces an outage ({!Wn_power.Supply.cut}) at that
    exact instruction boundary.

    Region metering: [on_region ~cycles] fires at every
    power-fail-safe point with the number of cycles burned — execution
    plus runtime overhead (checkpoint, restore) — since the previous
    such point.  Safe points are: a Clank checkpoint committing (the
    window includes the checkpoint's own cycles), power dying (the
    next window opens with the restore), every retired instruction
    under NVP or always-on (their state commits continuously), and the
    run ending.  The maximum reported value is the dynamic quantity
    the static WCEC verifier's per-charge bound
    ({!Wn_analysis.Progress.max_region_cycles}) must dominate; the
    soundness oracle in the test suite checks exactly that.  Windows
    are metered for from-scratch runs: combining [on_region] with
    [resume] or [fast_forward] undercounts the first (or skipped)
    window.

    Observation and keyframes: [on_step] fires after every instruction's
    post-step accounting, with the machine's [last_*] scratch accessors
    valid — the streaming profiler in [wn.faults] records store/SKM
    boundaries and prefix digests through it.  With [keyframe_every = k]
    and [on_keyframe] set, a {!resume_state} is captured and handed to
    the hook at every [k]'th retired instruction (counted from task
    start) that is a clean boundary — machine not halted, power up, no
    forced outage pending.  [keyframe_every] must be >= 1.

    Resume: [resume] seeds the run with a previously captured
    [resume_state]; the caller must first restore the matching
    {!Wn_machine.Machine.snapshot} into [machine] (and may then set a
    fresh step budget).  The policy must match the one the state was
    captured under, or [Invalid_argument] is raised.  A resumed run's
    [outcome] reports totals from task start and is bit-identical to
    running from scratch.

    Fast-forward: [fast_forward] is probed after every instruction's
    post-step accounting (after [on_step]) until the run skim-commits —
    a commit leaves the trajectory the certificate describes, so the
    probe is dropped rather than paid on every commit-tail step;
    returning [Some ff] ends the run immediately with the outcome
    reconstructed as the live counters plus the reference deltas
    [ff_final - ff_at].  The probe must only
    certify a genuine bit-level architectural match
    ({!Wn_machine.Machine.matches_state}) against the run [ff] came
    from, on the same supply script — then the reconstruction is exact
    for [completed], [skimmed], [outage_count] and [retired], while the
    cycle-accounting fields ([wall], [active], [overhead],
    [reexecuted], [checkpoint_count]) are exact relative to the
    reference run's own policy phase (a Clank watchdog realigned by an
    earlier outage may differ from a literal continuation).  When it
    fires, the machine is left at the matched state, not at halt, and
    the [snapshot] hook does not replay over the skipped tail. *)
