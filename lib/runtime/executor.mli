(** Intermittent execution of one task under a power supply.

    Three system models, matching the paper's evaluation:

    - [Always_on] — continuously powered (the reference used to define
      baseline runtime and the runtime–quality curves of Figure 9);
    - [Nvp] — non-volatile processor with the backup-every-cycle policy:
      architectural state survives outages, execution resumes in place
      after a small wake-up latency (Section V-C);
    - [Clank] — checkpoint-based volatile processor: registers are lost
      on an outage and recovered from the last checkpoint in NVM.
      Checkpoints are triggered by idempotency (write-after-read)
      violations, by read/write-set buffer overflow, and by a periodic
      watchdog, as in Clank (Section IV).

    Skim points: on restore from an outage, if the task latched a skim
    target with [SKM], the executor jumps there instead of resuming,
    committing the approximate result as-is (Section III-C). *)

type nvp_config = { nvp_restore_cycles : int }

val default_nvp : nvp_config
(** 8-cycle wake-up. *)

type clank_config = {
  watchdog_period : int;  (** cycles between forced checkpoints *)
  buffer_entries : int;  (** read/write-set capacity before overflow *)
  checkpoint_cycles : int;  (** cost of saving 16 regs + PC + flags to NVM *)
  clank_restore_cycles : int;
}

val default_clank : clank_config
(** 8000-cycle watchdog (of the order of one power burst, as Clank
    tunes it), 2048-word tracking capacity (Clank's Bloom filters cover
    thousands of addresses before saturating), 40-cycle checkpoint,
    40-cycle restore. *)

type policy = Always_on | Nvp of nvp_config | Clank of clank_config

val policy_name : policy -> string

type engine = Fast | Compat
(** Which machine stepping interface drives the loop.  [Fast] (the
    default) uses [Machine.step_fast] and the scratch-field effect
    accessors — no per-instruction allocation.  [Compat] drives the
    original [Machine.step] record interface.  The two are observably
    identical (the differential suite asserts it); [Compat] exists as
    the cross-check and for callers instrumenting [step_result]. *)

type outcome = {
  completed : bool;  (** reached [Halt] (possibly via a skim jump) *)
  skimmed : bool;  (** finished through a skim-point jump *)
  first_skim_active : int option;
      (** active cycles when the first skim point was latched — the
          paper's "earliest available output" instant *)
  wall_cycles : int;  (** total wall-clock cycles for this task, off-time included *)
  active_cycles : int;  (** cycles spent executing instructions *)
  overhead_cycles : int;  (** checkpoint + restore cycles *)
  reexecuted_instructions : int;  (** work redone after rollbacks (Clank) *)
  outage_count : int;
  checkpoint_count : int;
  retired : int;
}

type snapshot_hook = active_cycles:int -> wall_cycles:int -> unit
(** Invoked every [snapshot_every] *active* cycles (approximately — at
    the first instruction boundary past each multiple) and once at task
    end; used to sample output quality over time. *)

val run :
  ?policy:policy ->
  ?engine:engine ->
  ?max_wall_cycles:int ->
  ?snapshot_every:int ->
  ?snapshot:snapshot_hook ->
  ?halt_at_skim:bool ->
  ?on_checkpoint:(int -> unit) ->
  ?on_restore:(int -> unit) ->
  machine:Wn_machine.Machine.t ->
  supply:Wn_power.Supply.t ->
  unit ->
  outcome
(** Execute the current task until [Halt] or until [max_wall_cycles]
    (default 20 billion — a watchdog against starved supplies) elapses
    on the wall clock.  The machine should be positioned at the task
    entry ([Machine.reset_for_new_task]).  Default policy is
    [Always_on].

    [halt_at_skim] models a power outage the instant the first skim
    point is latched: the skim jump is taken immediately, committing the
    earliest available output — the configuration of the paper's
    memoization, small-subword and sampling studies ("when the earliest
    available output is taken").

    Fault-injection hooks (both engines): [on_checkpoint n] fires after
    each Clank checkpoint completes, with [n] the machine's total
    retired-instruction count at that instant; [on_restore k] fires
    after the [k]'th outage's restore completes — skim jump taken or
    rollback applied — with the machine in exactly the state execution
    resumes from.  Additionally, if the machine's step budget
    ({!Wn_machine.Machine.set_step_budget}) reaches zero the executor
    clears it and forces an outage ({!Wn_power.Supply.cut}) at that
    exact instruction boundary. *)
