open Wn_isa
open Wn_machine
open Wn_power

type nvp_config = { nvp_restore_cycles : int }

let default_nvp = { nvp_restore_cycles = 8 }

type clank_config = {
  watchdog_period : int;
  buffer_entries : int;
  checkpoint_cycles : int;
  clank_restore_cycles : int;
}

let default_clank =
  {
    watchdog_period = 8_000;
    buffer_entries = 2_048;
    checkpoint_cycles = 40;
    clank_restore_cycles = 40;
  }

type policy = Always_on | Nvp of nvp_config | Clank of clank_config

let policy_name = function
  | Always_on -> "always-on"
  | Nvp _ -> "nvp"
  | Clank _ -> "clank"

type engine = Fast | Compat

type outcome = {
  completed : bool;
  skimmed : bool;
  first_skim_active : int option;
  wall_cycles : int;
  active_cycles : int;
  overhead_cycles : int;
  reexecuted_instructions : int;
  outage_count : int;
  checkpoint_count : int;
  retired : int;
}

type snapshot_hook = active_cycles:int -> wall_cycles:int -> unit

(* Clank epoch state: the last checkpoint plus the read-first/write
   sets used to detect idempotency (write-after-read) violations at
   word granularity.  The sets live in a [shadow] bitmap over data
   memory — two bits per word (bit 0: read first this epoch, bit 1:
   fully written this epoch), four words per byte — so membership tests
   and inserts are array indexing instead of hashing.  [tracked] counts
   set bits across both planes (a word in both planes counts twice),
   mirroring the hardware's two tracking buffers filling independently.

   The written plane only holds words *fully* overwritten this epoch: a
   partial (byte/halfword) store must not suppress read tracking of its
   sibling bytes, or a later write to them would escape WAR detection
   and re-execution would read the new value. *)
type clank_state = {
  mutable checkpoint : Machine.register_file;
  shadow : Bytes.t;
  mutable tracked : int;
  mutable since_ckpt_cycles : int;
  mutable since_ckpt_retired : int;
}

let read_bit = 1
let write_bit = 2

let shadow_bits st w =
  Char.code (Bytes.unsafe_get st.shadow (w lsr 2)) lsr ((w land 3) * 2) land 3

let shadow_set st w bit =
  let i = w lsr 2 in
  Bytes.unsafe_set st.shadow i
    (Char.unsafe_chr (Char.code (Bytes.unsafe_get st.shadow i) lor (bit lsl ((w land 3) * 2))))

let shadow_clear st =
  Bytes.fill st.shadow 0 (Bytes.length st.shadow) '\000';
  st.tracked <- 0

let word_of_addr addr = addr lsr 2

(* Per-PC store-operand table, built once per [run]: for each PC that
   holds a store, the registers/offset needed to compute its target
   address from the live register file.  Replaces re-matching the
   instruction ADT on every step of the WAR-violation pre-check. *)
type store_table = {
  (* 0 = not a store, 1 = Str (base + off), 2 = Str_reg (base + idx) *)
  st_kind : int array;
  st_base : Reg.t array;
  st_off : int array;
  st_idx : Reg.t array;
}

let build_store_table program =
  let n = Array.length program in
  let t =
    {
      st_kind = Array.make n 0;
      st_base = Array.make n (Reg.r 0);
      st_off = Array.make n 0;
      st_idx = Array.make n (Reg.r 0);
    }
  in
  Array.iteri
    (fun pc i ->
      match i with
      | Instr.Str { base; off; _ } ->
          t.st_kind.(pc) <- 1;
          t.st_base.(pc) <- base;
          t.st_off.(pc) <- off
      | Instr.Str_reg { base; idx; _ } ->
          t.st_kind.(pc) <- 2;
          t.st_base.(pc) <- base;
          t.st_idx.(pc) <- idx
      | _ -> ())
    program;
  t

let run ?(policy = Always_on) ?(engine = Fast)
    ?(max_wall_cycles = 20_000_000_000) ?(snapshot_every = 10_000) ?snapshot
    ?(halt_at_skim = false) ?on_checkpoint ?on_restore ~machine ~supply () =
  let wall_start = Supply.now_cycles supply in
  let retired_start = Machine.instructions_retired machine in
  let active = ref 0 in
  let overhead = ref 0 in
  let reexecuted = ref 0 in
  let outage_count = ref 0 in
  let checkpoint_count = ref 0 in
  let skimmed = ref false in
  let first_skim_active = ref None in
  let next_snapshot = ref snapshot_every in
  let take_snapshot () =
    match snapshot with
    | None -> ()
    | Some hook ->
        hook ~active_cycles:!active
          ~wall_cycles:(Supply.now_cycles supply - wall_start)
  in
  let spend_overhead cycles =
    overhead := !overhead + cycles;
    ignore (Supply.consume supply ~cycles)
  in
  (* Bind the policy configuration once; the per-instruction loop used
     to re-match [policy] twice per step. *)
  let clank =
    match policy with
    | Clank cfg ->
        let words = (Wn_mem.Memory.size (Machine.mem machine) + 3) / 4 in
        Some
          ( cfg,
            {
              checkpoint = Machine.capture_registers machine;
              shadow = Bytes.make ((words + 3) / 4) '\000';
              tracked = 0;
              since_ckpt_cycles = 0;
              since_ckpt_retired = 0;
            } )
    | Always_on | Nvp _ -> None
  in
  let stores = build_store_table (Machine.program machine) in
  let shadow_words st = Bytes.length st.shadow * 4 in
  let do_checkpoint cfg st =
    spend_overhead cfg.checkpoint_cycles;
    st.checkpoint <- Machine.capture_registers machine;
    shadow_clear st;
    st.since_ckpt_cycles <- 0;
    st.since_ckpt_retired <- 0;
    incr checkpoint_count;
    match on_checkpoint with
    | Some hook -> hook (Machine.instructions_retired machine)
    | None -> ()
  in
  (* Insert into one tracking plane, checkpointing first on overflow
     (capacity is checked before the insert, as the hardware tests the
     buffer before latching a new entry). *)
  let track cfg st w bit =
    if shadow_bits st w land bit = 0 then begin
      if st.tracked >= cfg.buffer_entries then do_checkpoint cfg st;
      shadow_set st w bit;
      st.tracked <- st.tracked + 1
    end
  in
  (* Watchdog and WAR-violation pre-check: a store about to write a word
     read first in this epoch forces a checkpoint *before* the violating
     write commits.  The store's target address comes from the per-PC
     table and live registers. *)
  let pre_step cfg st =
    if st.since_ckpt_cycles >= cfg.watchdog_period then do_checkpoint cfg st
    else begin
      let pc = Machine.pc machine in
      if pc >= 0 && pc < Array.length stores.st_kind then
        match stores.st_kind.(pc) with
        | 1 ->
            let w =
              word_of_addr (Machine.reg machine stores.st_base.(pc) + stores.st_off.(pc))
            in
            (* An out-of-range word cannot have been read this epoch
               (tracked reads all succeeded, hence were in bounds). *)
            if w >= 0 && w < shadow_words st
               && shadow_bits st w land read_bit <> 0
            then do_checkpoint cfg st
        | 2 ->
            let w =
              word_of_addr
                (Machine.reg machine stores.st_base.(pc)
                + Machine.reg machine stores.st_idx.(pc))
            in
            if w >= 0 && w < shadow_words st
               && shadow_bits st w land read_bit <> 0
            then do_checkpoint cfg st
        | _ -> ()
    end
  in
  let handle_skim_jump () =
    match Machine.take_skim machine with
    | Some target ->
        Machine.set_pc machine target;
        skimmed := true;
        true
    | None -> false
  in
  let handle_outage () =
    incr outage_count;
    ignore (Supply.wait_for_power supply);
    (match clank with
    | None ->
        let restore =
          match policy with Nvp c -> c.nvp_restore_cycles | _ -> 0
        in
        spend_overhead restore;
        (* NVP keeps all state; just honour a pending skim point. *)
        ignore (handle_skim_jump ())
    | Some (cfg, st) ->
        spend_overhead cfg.clank_restore_cycles;
        if handle_skim_jump () then begin
          (* The skim target's code depends only on NVM state, so a
             scrubbed register file is safe; start a fresh epoch
             there. *)
          let pc = Machine.pc machine in
          Machine.scrub_volatile machine;
          Machine.set_pc machine pc;
          st.checkpoint <- Machine.capture_registers machine
        end
        else begin
          (* Roll back: everything since the checkpoint re-executes. *)
          reexecuted := !reexecuted + st.since_ckpt_retired;
          Machine.restore_registers machine st.checkpoint
        end;
        shadow_clear st;
        st.since_ckpt_cycles <- 0;
        st.since_ckpt_retired <- 0);
    (* Restore complete: the machine is in exactly the state execution
       resumes from (skim jump taken, rollback applied).  The hook lets
       a fault-injection oracle audit that state in place. *)
    match on_restore with Some hook -> hook !outage_count | None -> ()
  in
  (* Everything after an instruction executes, engine-independent.  All
     effect arguments are immediates (addresses are -1 for "no such
     access"), so the fast path passes them without allocating. *)
  let post_step ~cycles ~read_addr ~wrote_addr ~wrote_bytes ~was_skm =
    active := !active + cycles;
    ignore (Supply.consume supply ~cycles);
    (match clank with
    | Some (cfg, st) ->
        st.since_ckpt_cycles <- st.since_ckpt_cycles + cycles;
        st.since_ckpt_retired <- st.since_ckpt_retired + 1;
        if read_addr >= 0 then begin
          let w = word_of_addr read_addr in
          (* Skip only reads dominated by a *full-word* write, which
             re-execution is guaranteed to reproduce. *)
          if shadow_bits st w land write_bit = 0 then track cfg st w read_bit
        end;
        if wrote_addr >= 0 && wrote_bytes = 4 then
          track cfg st (word_of_addr wrote_addr) write_bit
    | None -> ());
    if was_skm then begin
      if !first_skim_active = None then first_skim_active := Some !active;
      if halt_at_skim then
        (* Model an outage at this very instant: take the skim jump
           and commit the earliest available output. *)
        ignore (handle_skim_jump ())
    end;
    if !active >= !next_snapshot then begin
      take_snapshot ();
      next_snapshot := !next_snapshot + snapshot_every
    end;
    (* Fault injection: an exhausted step budget forces an outage at
       this exact instruction boundary, whichever engine stepped.  The
       budget is cleared so the re-execution after restore runs free. *)
    if Machine.budget_exhausted machine then begin
      Machine.set_step_budget machine None;
      Supply.cut supply
    end
  in
  let wall_elapsed () = Supply.now_cycles supply - wall_start in
  let rec loop () =
    if Machine.halted machine then true
    else if wall_elapsed () > max_wall_cycles then false
    else if not (Supply.is_on supply) then begin
      handle_outage ();
      loop ()
    end
    else begin
      (match clank with Some (cfg, st) -> pre_step cfg st | None -> ());
      (match engine with
      | Fast ->
          Machine.step_fast machine;
          post_step
            ~cycles:(Machine.last_cycles machine)
            ~read_addr:(Machine.last_read_addr machine)
            ~wrote_addr:(Machine.last_wrote_addr machine)
            ~wrote_bytes:(Machine.last_wrote_bytes machine)
            ~was_skm:(Machine.last_was_skm machine)
      | Compat ->
          let res = Machine.step machine in
          let read_addr =
            match res.Machine.read with Some a -> a.Machine.addr | None -> -1
          in
          let wrote_addr, wrote_bytes =
            match res.Machine.wrote with
            | Some a -> (a.Machine.addr, a.Machine.bytes)
            | None -> (-1, 0)
          in
          let was_skm =
            match res.Machine.instr with Instr.Skm _ -> true | _ -> false
          in
          post_step ~cycles:res.Machine.cycles ~read_addr ~wrote_addr
            ~wrote_bytes ~was_skm);
      loop ()
    end
  in
  let completed = loop () in
  take_snapshot ();
  {
    completed;
    skimmed = !skimmed;
    first_skim_active = !first_skim_active;
    wall_cycles = wall_elapsed ();
    active_cycles = !active;
    overhead_cycles = !overhead;
    reexecuted_instructions = !reexecuted;
    outage_count = !outage_count;
    checkpoint_count = !checkpoint_count;
    retired = Machine.instructions_retired machine - retired_start;
  }
