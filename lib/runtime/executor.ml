open Wn_isa
open Wn_machine
open Wn_power

type nvp_config = { nvp_restore_cycles : int }

let default_nvp = { nvp_restore_cycles = 8 }

type clank_config = {
  watchdog_period : int;
  buffer_entries : int;
  checkpoint_cycles : int;
  clank_restore_cycles : int;
}

let default_clank =
  {
    watchdog_period = 8_000;
    buffer_entries = 2_048;
    checkpoint_cycles = 40;
    clank_restore_cycles = 40;
  }

type policy = Always_on | Nvp of nvp_config | Clank of clank_config

let policy_name = function
  | Always_on -> "always-on"
  | Nvp _ -> "nvp"
  | Clank _ -> "clank"

type engine = Fast | Block | Compat

let engine_name = function Fast -> "fast" | Block -> "block" | Compat -> "compat"

let engine_of_string = function
  | "fast" -> Some Fast
  | "block" -> Some Block
  | "compat" -> Some Compat
  | _ -> None

type outcome = {
  completed : bool;
  skimmed : bool;
  first_skim_active : int option;
  wall_cycles : int;
  active_cycles : int;
  overhead_cycles : int;
  reexecuted_instructions : int;
  outage_count : int;
  checkpoint_count : int;
  retired : int;
}

type snapshot_hook = active_cycles:int -> wall_cycles:int -> unit

(* Clank epoch state: the last checkpoint plus the read-first/write
   sets used to detect idempotency (write-after-read) violations at
   word granularity.  The sets live in a [shadow] map over data memory
   — one int per word holding [(epoch lsl 2) lor bits] (bit 0: read
   first this epoch, bit 1: fully written this epoch) — so membership
   tests and inserts are array indexing instead of hashing, and
   clearing the sets at a checkpoint is an epoch increment: entries
   stamped with an older epoch simply read as empty.  That keeps the
   checkpoint commit O(1) instead of O(shadow) on the hot path.
   [tracked] counts set bits across both planes (a word in both planes
   counts twice), mirroring the hardware's two tracking buffers filling
   independently.

   The written plane only holds words *fully* overwritten this epoch: a
   partial (byte/halfword) store must not suppress read tracking of its
   sibling bytes, or a later write to them would escape WAR detection
   and re-execution would read the new value. *)
type clank_state = {
  mutable checkpoint : Machine.register_file;
  shadow : int array;
  mutable epoch : int;
  mutable tracked : int;
  mutable since_ckpt_cycles : int;
  mutable since_ckpt_retired : int;
}

let read_bit = 1
let write_bit = 2

let shadow_bits st w =
  let v = Array.unsafe_get st.shadow w in
  if v lsr 2 = st.epoch then v land 3 else 0

let shadow_set st w bit =
  Array.unsafe_set st.shadow w ((st.epoch lsl 2) lor shadow_bits st w lor bit)

let shadow_clear st =
  st.epoch <- st.epoch + 1;
  st.tracked <- 0

(* Resume states carry the shadow sets in the dense 2-bits-per-word
   packed form (four words per byte), normalised to drop the epoch
   stamps: keyframe stores hold many resume states, and the packed
   form is 1/32nd the live array's size. *)
let pack_shadow st =
  let words = Array.length st.shadow in
  let b = Bytes.make ((words + 3) / 4) '\000' in
  for w = 0 to words - 1 do
    let bits = shadow_bits st w in
    if bits <> 0 then
      let i = w lsr 2 in
      Bytes.unsafe_set b i
        (Char.unsafe_chr
           (Char.code (Bytes.unsafe_get b i) lor (bits lsl ((w land 3) * 2))))
  done;
  b

(* Bare bits carry epoch stamp 0, matching the fresh state's epoch. *)
let unpack_shadow packed words =
  Array.init words (fun w ->
      Char.code (Bytes.unsafe_get packed (w lsr 2)) lsr ((w land 3) * 2) land 3)

let word_of_addr addr = addr lsr 2

(* Per-PC store-operand table, built once per [run]: for each PC that
   holds a store, the registers/offset needed to compute its target
   address from the live register file.  Replaces re-matching the
   instruction ADT on every step of the WAR-violation pre-check. *)
type store_table = {
  (* 0 = not a store, 1 = Str (base + off), 2 = Str_reg (base + idx) *)
  st_kind : int array;
  st_base : Reg.t array;
  st_off : int array;
  st_idx : Reg.t array;
}

let build_store_table program =
  let n = Array.length program in
  let t =
    {
      st_kind = Array.make n 0;
      st_base = Array.make n (Reg.r 0);
      st_off = Array.make n 0;
      st_idx = Array.make n (Reg.r 0);
    }
  in
  Array.iteri
    (fun pc i ->
      match i with
      | Instr.Str { base; off; _ } ->
          t.st_kind.(pc) <- 1;
          t.st_base.(pc) <- base;
          t.st_off.(pc) <- off
      | Instr.Str_reg { base; idx; _ } ->
          t.st_kind.(pc) <- 2;
          t.st_base.(pc) <- base;
          t.st_idx.(pc) <- idx
      | _ -> ())
    program;
  t

(* Mid-run resume state: the loop counters plus the Clank policy state,
   captured at a clean instruction boundary of an uninterrupted run.
   Everything inside is immutable once captured (the shadow map is
   packed at capture and unpacked into a fresh array at resume; the
   checkpoint register file is replaced wholesale on checkpoint, never
   mutated), so one [resume_state] can seed any number of [run] calls
   from any number of domains. *)
type clank_resume = {
  rc_checkpoint : Machine.register_file;
  rc_shadow : Bytes.t; (* packed 2 bits/word, epoch-normalised *)
  rc_tracked : int;
  rc_since_cycles : int;
  rc_since_retired : int;
}

type resume_state = {
  rs_clank : clank_resume option;
  rs_active : int;
  rs_overhead : int;
  rs_reexecuted : int;
  rs_outages : int;
  rs_checkpoints : int;
  rs_skimmed : bool;
  rs_first_skim_active : int option;
  rs_wall : int;  (* wall cycles elapsed from task start to capture *)
  rs_retired : int;  (* instructions retired from task start to capture *)
  rs_next_snapshot : int;
}

let resume_retired rs = rs.rs_retired

(* Fast-forward: the caller has detected that the machine's
   architectural state bit-matches a recorded boundary of a reference
   run whose completion is already known, so the rest of this run is
   fully determined.  [ff_at] holds the reference counters at the
   matched boundary, [ff_final] the reference outcome at halt; the
   outcome of this run is its live counters plus the reference
   deltas. *)
type fast_forward = { ff_at : resume_state; ff_final : outcome }

let run ?(policy = Always_on) ?(engine = Fast)
    ?(max_wall_cycles = 20_000_000_000) ?(snapshot_every = 10_000) ?snapshot
    ?(halt_at_skim = false) ?on_checkpoint ?on_restore ?on_region ?on_step
    ?resume ?keyframe_every ?on_keyframe ?fast_forward ~machine ~supply () =
  (match keyframe_every with
  | Some k when k < 1 -> invalid_arg "Executor.run: keyframe_every"
  | _ -> ());
  let wall_start = Supply.now_cycles supply in
  let retired_start = Machine.instructions_retired machine in
  (* Offsets a resumed run inherits from its captured prefix; zero for a
     run from task entry.  The outcome then reports totals from task
     start, bit-identical to an uninterrupted from-scratch run. *)
  let wall_base, retired_base =
    match resume with
    | Some rs -> (rs.rs_wall, rs.rs_retired)
    | None -> (0, 0)
  in
  let active = ref (match resume with Some r -> r.rs_active | None -> 0) in
  let overhead = ref (match resume with Some r -> r.rs_overhead | None -> 0) in
  let reexecuted =
    ref (match resume with Some r -> r.rs_reexecuted | None -> 0)
  in
  let outage_count =
    ref (match resume with Some r -> r.rs_outages | None -> 0)
  in
  let checkpoint_count =
    ref (match resume with Some r -> r.rs_checkpoints | None -> 0)
  in
  let skimmed = ref (match resume with Some r -> r.rs_skimmed | None -> false) in
  let first_skim_active =
    ref (match resume with Some r -> r.rs_first_skim_active | None -> None)
  in
  let next_snapshot =
    ref (match resume with Some r -> r.rs_next_snapshot | None -> snapshot_every)
  in
  (* Consume coalescing: when the supply can never cut power on its own
     (always-on / scripted with an empty script), per-instruction
     [Supply.consume] calls are pure clock-and-drain arithmetic — so
     they are batched into [pending] and flushed only when something
     reads or changes supply state (a forced cut, an outage, run end).
     Energy accounting is in integer cycles on the supply side, so the
     flush is bit-identical to the per-instruction sequence. *)
  let coalesce = Supply.never_cuts supply in
  let pending = ref 0 in
  let flush_pending () =
    if !pending > 0 then begin
      ignore (Supply.consume supply ~cycles:!pending);
      pending := 0
    end
  in
  let wall_elapsed () =
    wall_base + Supply.now_cycles supply + !pending - wall_start
  in
  let task_retired () =
    retired_base + Machine.instructions_retired machine - retired_start
  in
  let take_snapshot () =
    match snapshot with
    | None -> ()
    | Some hook -> hook ~active_cycles:!active ~wall_cycles:(wall_elapsed ())
  in
  (* Per-region cycle metering for the WCEC soundness oracle: a region
     window is every cycle burned — execution and runtime overhead —
     between consecutive power-fail-safe points (checkpoint committed,
     power death, per-instruction commit under NVP, halt).  Each such
     window must stay below the static per-charge bound. *)
  let region_acc = ref 0 in
  let region_add cycles =
    if on_region <> None then region_acc := !region_acc + cycles
  in
  let region_close () =
    match on_region with
    | Some hook ->
        hook ~cycles:!region_acc;
        region_acc := 0
    | None -> ()
  in
  let spend_overhead cycles =
    overhead := !overhead + cycles;
    region_add cycles;
    if coalesce then pending := !pending + cycles
    else ignore (Supply.consume supply ~cycles)
  in
  (* Bind the policy configuration once; the per-instruction loop used
     to re-match [policy] twice per step. *)
  let clank =
    match policy with
    | Clank cfg ->
        let words = (Wn_mem.Memory.size (Machine.mem machine) + 3) / 4 in
        let st =
          match resume with
          | Some { rs_clank = Some rc; _ } ->
              if Bytes.length rc.rc_shadow <> (words + 3) / 4 then
                invalid_arg "Executor.run: resume shadow map size mismatch";
              {
                checkpoint = rc.rc_checkpoint;
                shadow = unpack_shadow rc.rc_shadow words;
                epoch = 0;
                tracked = rc.rc_tracked;
                since_ckpt_cycles = rc.rc_since_cycles;
                since_ckpt_retired = rc.rc_since_retired;
              }
          | Some { rs_clank = None; _ } ->
              invalid_arg "Executor.run: resume state lacks Clank policy state"
          | None ->
              {
                checkpoint = Machine.capture_registers machine;
                shadow = Array.make words 0;
                epoch = 0;
                tracked = 0;
                since_ckpt_cycles = 0;
                since_ckpt_retired = 0;
              }
        in
        Some (cfg, st)
    | Always_on | Nvp _ ->
        (match resume with
        | Some { rs_clank = Some _; _ } ->
            invalid_arg "Executor.run: resume state carries Clank policy state"
        | _ -> ());
        None
  in
  let capture_resume () =
    {
      rs_clank =
        Option.map
          (fun (_cfg, st) ->
            {
              rc_checkpoint = st.checkpoint;
              rc_shadow = pack_shadow st;
              rc_tracked = st.tracked;
              rc_since_cycles = st.since_ckpt_cycles;
              rc_since_retired = st.since_ckpt_retired;
            })
          clank;
      rs_active = !active;
      rs_overhead = !overhead;
      rs_reexecuted = !reexecuted;
      rs_outages = !outage_count;
      rs_checkpoints = !checkpoint_count;
      rs_skimmed = !skimmed;
      rs_first_skim_active = !first_skim_active;
      rs_wall = wall_elapsed ();
      rs_retired = task_retired ();
      rs_next_snapshot = !next_snapshot;
    }
  in
  let stores = build_store_table (Machine.program machine) in
  let shadow_words st = Array.length st.shadow in
  let do_checkpoint cfg st =
    spend_overhead cfg.checkpoint_cycles;
    st.checkpoint <- Machine.capture_registers machine;
    shadow_clear st;
    st.since_ckpt_cycles <- 0;
    st.since_ckpt_retired <- 0;
    incr checkpoint_count;
    (* The checkpoint is committed: everything up to and including its
       overhead is now safe against power loss. *)
    region_close ();
    match on_checkpoint with
    | Some hook -> hook (Machine.instructions_retired machine)
    | None -> ()
  in
  (* Insert into one tracking plane, checkpointing first on overflow
     (capacity is checked before the insert, as the hardware tests the
     buffer before latching a new entry). *)
  let track cfg st w bit =
    if shadow_bits st w land bit = 0 then begin
      if st.tracked >= cfg.buffer_entries then do_checkpoint cfg st;
      shadow_set st w bit;
      st.tracked <- st.tracked + 1
    end
  in
  (* Watchdog and WAR-violation pre-check: a store about to write a word
     read first in this epoch forces a checkpoint *before* the violating
     write commits.  The store's target address comes from the per-PC
     table and live registers. *)
  let pre_step cfg st =
    if st.since_ckpt_cycles >= cfg.watchdog_period then do_checkpoint cfg st
    else begin
      let pc = Machine.pc machine in
      if pc >= 0 && pc < Array.length stores.st_kind then
        match stores.st_kind.(pc) with
        | 1 ->
            let w =
              word_of_addr (Machine.reg machine stores.st_base.(pc) + stores.st_off.(pc))
            in
            (* An out-of-range word cannot have been read this epoch
               (tracked reads all succeeded, hence were in bounds). *)
            if w >= 0 && w < shadow_words st
               && shadow_bits st w land read_bit <> 0
            then do_checkpoint cfg st
        | 2 ->
            let w =
              word_of_addr
                (Machine.reg machine stores.st_base.(pc)
                + Machine.reg machine stores.st_idx.(pc))
            in
            if w >= 0 && w < shadow_words st
               && shadow_bits st w land read_bit <> 0
            then do_checkpoint cfg st
        | _ -> ()
    end
  in
  let handle_skim_jump () =
    match Machine.take_skim machine with
    | Some target ->
        Machine.set_pc machine target;
        skimmed := true;
        true
    | None -> false
  in
  let handle_outage () =
    (* Power died: this charge's burn window ends here; the restore
       overhead below opens the next charge's window.  (On a coalescing
       supply the only way here is a forced cut, which flushed.) *)
    flush_pending ();
    region_close ();
    incr outage_count;
    ignore (Supply.wait_for_power supply);
    (match clank with
    | None ->
        let restore =
          match policy with Nvp c -> c.nvp_restore_cycles | _ -> 0
        in
        spend_overhead restore;
        (* NVP keeps all state; just honour a pending skim point. *)
        ignore (handle_skim_jump ())
    | Some (cfg, st) ->
        spend_overhead cfg.clank_restore_cycles;
        if handle_skim_jump () then begin
          (* The skim target's code depends only on NVM state, so a
             scrubbed register file is safe; start a fresh epoch
             there. *)
          let pc = Machine.pc machine in
          Machine.scrub_volatile machine;
          Machine.set_pc machine pc;
          st.checkpoint <- Machine.capture_registers machine
        end
        else begin
          (* Roll back: everything since the checkpoint re-executes. *)
          reexecuted := !reexecuted + st.since_ckpt_retired;
          Machine.restore_registers machine st.checkpoint
        end;
        shadow_clear st;
        st.since_ckpt_cycles <- 0;
        st.since_ckpt_retired <- 0);
    (* Restore complete: the machine is in exactly the state execution
       resumes from (skim jump taken, rollback applied).  The hook lets
       a fault-injection oracle audit that state in place. *)
    match on_restore with Some hook -> hook !outage_count | None -> ()
  in
  (* Everything after an instruction executes, engine-independent.  All
     effect arguments are immediates (addresses are -1 for "no such
     access"), so the fast path passes them without allocating. *)
  let post_step ~cycles ~read_addr ~wrote_addr ~wrote_bytes ~was_skm =
    active := !active + cycles;
    region_add cycles;
    if coalesce then pending := !pending + cycles
    else ignore (Supply.consume supply ~cycles);
    (match clank with
    | Some (cfg, st) ->
        st.since_ckpt_cycles <- st.since_ckpt_cycles + cycles;
        st.since_ckpt_retired <- st.since_ckpt_retired + 1;
        if read_addr >= 0 then begin
          let w = word_of_addr read_addr in
          (* Skip only reads dominated by a *full-word* write, which
             re-execution is guaranteed to reproduce. *)
          if shadow_bits st w land write_bit = 0 then track cfg st w read_bit
        end;
        if wrote_addr >= 0 && wrote_bytes = 4 then
          track cfg st (word_of_addr wrote_addr) write_bit
    | None ->
        (* NVP / always-on: every retired instruction commits, so each
           closes its own burn window. *)
        region_close ());
    if was_skm then begin
      if !first_skim_active = None then first_skim_active := Some !active;
      if halt_at_skim then
        (* Model an outage at this very instant: take the skim jump
           and commit the earliest available output. *)
        ignore (handle_skim_jump ())
    end;
    if !active >= !next_snapshot then begin
      take_snapshot ();
      next_snapshot := !next_snapshot + snapshot_every
    end;
    (* Fault injection: an exhausted step budget forces an outage at
       this exact instruction boundary, whichever engine stepped.  The
       budget is cleared so the re-execution after restore runs free. *)
    if Machine.budget_exhausted machine then begin
      Machine.set_step_budget machine None;
      flush_pending ();
      Supply.cut supply
    end
  in
  (* After an instruction (and its post-step accounting) completes:
     first the per-step observation hook, then — at every
     [keyframe_every]'th retired instruction of an uninterrupted run —
     the keyframe hook with a freshly captured resume state.  Keyframes
     are never taken on a halted machine or while power is down (a
     pending forced outage included), so every captured state is a clean
     resumable boundary. *)
  let after_step () =
    (match on_step with Some f -> f () | None -> ());
    match (keyframe_every, on_keyframe) with
    | Some k, Some hook ->
        if
          task_retired () mod k = 0
          && (not (Machine.halted machine))
          && Supply.is_on supply
        then hook (capture_resume ())
    | _ -> ()
  in
  let step_fast_once () =
    Machine.step_fast machine;
    post_step
      ~cycles:(Machine.last_cycles machine)
      ~read_addr:(Machine.last_read_addr machine)
      ~wrote_addr:(Machine.last_wrote_addr machine)
      ~wrote_bytes:(Machine.last_wrote_bytes machine)
      ~was_skm:(Machine.last_was_skm machine)
  in
  (* Block engine: hooks that must observe every instruction boundary —
     the per-step observer, region metering, the fast-forward rejoin
     probe — force the per-step path for the whole run, keeping the
     fault survey and the WCEC soundness oracle exact. *)
  let may_fuse =
    Option.is_none on_step && Option.is_none on_region
    && Option.is_none fast_forward
  in
  (* One guard at block entry, then the whole run in a single call with
     one batched consume and one post-step.  Each conjunct ensures some
     per-instruction check could not have fired at an *interior*
     boundary of the run; anything that would fire exactly at the run's
     final boundary (budget exhaustion, watchdog, keyframe, a scripted
     cut landing on the last cycle) fires identically after the batched
     commit.  Any failed conjunct just falls back to per-instruction
     stepping until the next run entry — bit-identical, merely slower. *)
  let try_block b =
    let n = Machine.block_len b in
    let c = Machine.block_cycles b in
    Machine.budget_covers machine n
    && wall_elapsed () + c <= max_wall_cycles
    && (match snapshot with
       | Some _ -> !active + c < !next_snapshot
       | None -> true)
    && (match (keyframe_every, on_keyframe) with
       | Some k, Some _ -> k - (task_retired () mod k) >= n
       | _ -> true)
    && (match clank with
       | Some (cfg, st) ->
           (* No interior pre-step can trip the watchdog, and the read
              set cannot overflow the buffer mid-run (runs are
              store-free, so WAR pre-checks are vacuous). *)
           st.since_ckpt_cycles + Machine.block_pre_cycles b
           < cfg.watchdog_period
           && st.tracked + Machine.block_loads b <= cfg.buffer_entries
       | None -> true)
    && (coalesce || Supply.assured supply ~cycles:c)
    && begin
         Machine.exec_block machine b;
         active := !active + c;
         if coalesce then pending := !pending + c
         else ignore (Supply.consume_run supply ~costs:(Machine.block_costs b));
         (match clank with
         | Some (cfg, st) ->
             st.since_ckpt_cycles <- st.since_ckpt_cycles + c;
             st.since_ckpt_retired <- st.since_ckpt_retired + n;
             (* Replay read tracking from the recorded load addresses, in
                order — no store ran in between, so the shadow-map
                transitions equal the per-step ones, and the entry guard
                ruled out an overflow checkpoint. *)
             for i = 0 to Machine.block_loads b - 1 do
               let w = word_of_addr (Machine.block_read_addr machine i) in
               if shadow_bits st w land write_bit = 0 then
                 track cfg st w read_bit
             done
         | None -> ());
         (* Runs latch no skim point, so only the snapshot threshold and
            the budget remain from the per-step tail.  The threshold can
            only be crossed here with no snapshot hook installed (the
            entry guard otherwise kept the whole run below it), so this
            replays exactly the per-boundary counter advance. *)
         if !active >= !next_snapshot then begin
           let costs = Machine.block_costs b in
           let a = ref (!active - c) in
           for i = 0 to n - 1 do
             a := !a + Array.unsafe_get costs i;
             if !a >= !next_snapshot then begin
               take_snapshot ();
               next_snapshot := !next_snapshot + snapshot_every
             end
           done
         end;
         if Machine.budget_exhausted machine then begin
           Machine.set_step_budget machine None;
           flush_pending ();
           Supply.cut supply
         end;
         true
       end
  in
  let rec loop () =
    if Machine.halted machine then `Done true
    else if wall_elapsed () > max_wall_cycles then `Done false
    else if not (Supply.is_on supply) then begin
      handle_outage ();
      loop ()
    end
    else begin
      (match clank with Some (cfg, st) -> pre_step cfg st | None -> ());
      (match engine with
      | Fast -> step_fast_once ()
      | Block ->
          let fused =
            may_fuse
            && (match Machine.block_at machine (Machine.pc machine) with
               | Some b -> try_block b
               | None -> false)
          in
          if not fused then step_fast_once ()
      | Compat ->
          let res = Machine.step machine in
          let read_addr =
            match res.Machine.read with Some a -> a.Machine.addr | None -> -1
          in
          let wrote_addr, wrote_bytes =
            match res.Machine.wrote with
            | Some a -> (a.Machine.addr, a.Machine.bytes)
            | None -> (-1, 0)
          in
          let was_skm =
            match res.Machine.instr with Instr.Skm _ -> true | _ -> false
          in
          post_step ~cycles:res.Machine.cycles ~read_addr ~wrote_addr
            ~wrote_bytes ~was_skm);
      after_step ();
      match fast_forward with
      | None -> loop ()
      | Some probe ->
          (* A skim commit leaves the reference trajectory the probe's
             certificate came from, so matches are no longer expected;
             skipping the probe is always sound (the run just keeps
             stepping) and removes the per-step compare from every
             commit tail. *)
          if !skimmed then loop ()
          else (
            match probe () with Some ff -> `Fast_forward ff | None -> loop ())
    end
  in
  match loop () with
  | `Done completed ->
      flush_pending ();
      region_close ();
      take_snapshot ();
      {
        completed;
        skimmed = !skimmed;
        first_skim_active = !first_skim_active;
        wall_cycles = wall_elapsed ();
        active_cycles = !active;
        overhead_cycles = !overhead;
        reexecuted_instructions = !reexecuted;
        outage_count = !outage_count;
        checkpoint_count = !checkpoint_count;
        retired = task_retired ();
      }
  | `Fast_forward ff ->
      flush_pending ();
      (* The machine is left at the matched state, not at halt, and the
         snapshot hook is not replayed for the skipped tail. *)
      {
        completed = ff.ff_final.completed;
        skimmed = !skimmed || (ff.ff_final.skimmed && not ff.ff_at.rs_skimmed);
        first_skim_active =
          (match !first_skim_active with
          | Some _ as s -> s
          | None -> (
              match
                (ff.ff_final.first_skim_active, ff.ff_at.rs_first_skim_active)
              with
              | Some a, None -> Some (!active + (a - ff.ff_at.rs_active))
              | _ -> None));
        wall_cycles =
          wall_elapsed () + (ff.ff_final.wall_cycles - ff.ff_at.rs_wall);
        active_cycles =
          !active + (ff.ff_final.active_cycles - ff.ff_at.rs_active);
        overhead_cycles =
          !overhead + (ff.ff_final.overhead_cycles - ff.ff_at.rs_overhead);
        reexecuted_instructions =
          !reexecuted
          + (ff.ff_final.reexecuted_instructions - ff.ff_at.rs_reexecuted);
        outage_count =
          !outage_count + (ff.ff_final.outage_count - ff.ff_at.rs_outages);
        checkpoint_count =
          !checkpoint_count
          + (ff.ff_final.checkpoint_count - ff.ff_at.rs_checkpoints);
        retired = task_retired () + (ff.ff_final.retired - ff.ff_at.rs_retired);
      }
