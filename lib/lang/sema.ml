open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

type asv_spec = { asv_bits : int; asv_provisioned : bool }

type info = {
  asp_inputs : (string * int) list;
  asp_outputs : string list;
  asp_output_bits : int option;
  asv_arrays : (string * asv_spec) list;
  globals : (string * Ast.global) list;
}

let asp_input info name = List.assoc_opt name info.asp_inputs
let asv_spec info name = List.assoc_opt name info.asv_arrays
let global info name = List.assoc_opt name info.globals

let check_globals globals =
  let seen = Hashtbl.create 16 in
  List.iter
    (fun g ->
      if Hashtbl.mem seen g.g_name then err "duplicate global %S" g.g_name;
      if g.g_count <= 0 then err "global %S has non-positive size" g.g_name;
      Hashtbl.add seen g.g_name ())
    globals

let check_pragmas pragmas globals =
  let find name =
    match List.find_opt (fun g -> g.g_name = name) globals with
    | Some g -> g
    | None -> err "pragma names unknown array %S" name
  in
  List.iter
    (fun p ->
      let g = find p.prag_array in
      match p.prag_technique with
      | Asp -> (
          match p.prag_direction with
          | Input -> (
              match p.prag_bits with
              | None -> err "asp input %S needs a subword size" p.prag_array
              | Some bits ->
                  if bits < 1 || bits > 16 then
                    err "asp input %S: subword size %d out of range" p.prag_array
                      bits;
                  if ty_bits g.g_ty <> 16 then
                    err
                      "asp input %S must be a 16-bit array (the iterative \
                       multiplier's operand width)"
                      p.prag_array)
          | Output -> ())
      | Asv -> (
          match p.prag_bits with
          | None -> err "asv pragma on %S needs a subword size" p.prag_array
          | Some bits ->
              if bits <> 4 && bits <> 8 && bits <> 16 then
                err "asv %S: subword size must be 4, 8 or 16" p.prag_array;
              if ty_bits g.g_ty mod bits <> 0 then
                err "asv %S: subword size %d does not divide element width %d"
                  p.prag_array bits (ty_bits g.g_ty)))
    pragmas

(* Scope-checked walk over statements.  [locals] maps visible scalar
   locals; globals are always arrays here (scalars are declared as
   1-element arrays). *)
type scope = { globals : (string, Ast.global) Hashtbl.t; mutable locals : string list }

let rec check_expr sc ~in_condition e =
  match e with
  | Int _ -> ()
  | Var v ->
      if not (List.mem v sc.locals) then
        if Hashtbl.mem sc.globals v then
          err "array %S used without an index" v
        else err "undeclared variable %S" v
  | Load (a, idx) ->
      if not (Hashtbl.mem sc.globals a) then err "undeclared array %S" a;
      check_expr sc ~in_condition:false idx
  | Neg a | Bnot a | Sqrt a -> check_expr sc ~in_condition:false a
  | Binop (op, a, b) ->
      if is_comparison op && not in_condition then
        err "comparison %S outside an if-condition" (binop_name op);
      if (op = Shl || op = Shr) && not (match b with Int n -> n >= 0 && n < 32 | _ -> false)
      then err "shift amount must be a constant in [0, 31]";
      check_expr sc ~in_condition:false a;
      check_expr sc ~in_condition:false b
  | Sub_load _ | Mul_asp _ | Asv_op _ | Sqrt_asp _ | Raw_off _ ->
      err "internal expression form in source program"

let check_lhs sc = function
  | Lvar v ->
      if not (List.mem v sc.locals) then
        if Hashtbl.mem sc.globals v then
          err "array %S assigned without an index" v
        else err "assignment to undeclared variable %S" v
  | Larr (a, idx) ->
      if not (Hashtbl.mem sc.globals a) then err "undeclared array %S" a;
      check_expr sc ~in_condition:false idx

let rec check_stmts sc ~in_anytime stmts =
  let saved = sc.locals in
  List.iter (check_stmt sc ~in_anytime) stmts;
  sc.locals <- saved

and check_stmt sc ~in_anytime stmt =
  match stmt with
  | Decl (name, e) ->
      if Hashtbl.mem sc.globals name then
        err "local %S shadows a global" name;
      check_expr sc ~in_condition:false e;
      sc.locals <- name :: sc.locals
  | Assign (lhs, e) | Aug_assign (lhs, _, e) ->
      check_lhs sc lhs;
      check_expr sc ~in_condition:false e
  | For l ->
      if Hashtbl.mem sc.globals l.var then
        err "loop variable %S shadows a global" l.var;
      check_expr sc ~in_condition:false l.lo;
      check_expr sc ~in_condition:false l.hi;
      let saved = sc.locals in
      sc.locals <- l.var :: sc.locals;
      check_stmts sc ~in_anytime l.body;
      sc.locals <- saved
  | If (cond, a, b) ->
      (match cond with
      | Binop (op, _, _) when is_comparison op -> ()
      | _ -> err "if-condition must be a comparison");
      check_expr sc ~in_condition:true cond;
      check_stmts sc ~in_anytime a;
      check_stmts sc ~in_anytime b
  | Anytime { body; commit } ->
      if in_anytime then err "nested anytime blocks";
      (* The commit block sees the body's top-level locals (the
         accumulators it materialises). *)
      let saved = sc.locals in
      List.iter (check_stmt sc ~in_anytime:true) body;
      check_stmts sc ~in_anytime:true commit;
      sc.locals <- saved
  | Skim_here -> err "internal statement form in source program"

let analyze (p : program) =
  check_globals p.globals;
  check_pragmas p.pragmas p.globals;
  let globals_tbl = Hashtbl.create 16 in
  List.iter (fun g -> Hashtbl.replace globals_tbl g.g_name g) p.globals;
  let sc = { globals = globals_tbl; locals = [] } in
  check_stmts sc ~in_anytime:false p.body;
  let asp_inputs =
    List.filter_map
      (fun pr ->
        match (pr.prag_technique, pr.prag_direction, pr.prag_bits) with
        | Asp, Input, Some bits -> Some (pr.prag_array, bits)
        | _ -> None)
      p.pragmas
  in
  let asp_outputs =
    List.filter_map
      (fun pr ->
        match (pr.prag_technique, pr.prag_direction) with
        | Asp, Output -> Some pr.prag_array
        | _ -> None)
      p.pragmas
  in
  let asv_arrays =
    List.filter_map
      (fun pr ->
        match (pr.prag_technique, pr.prag_bits) with
        | Asv, Some bits ->
            Some
              ( pr.prag_array,
                { asv_bits = bits; asv_provisioned = pr.prag_provisioned } )
        | _ -> None)
      p.pragmas
  in
  let asp_output_bits =
    List.find_map
      (fun pr ->
        match (pr.prag_technique, pr.prag_direction) with
        | Asp, Output -> pr.prag_bits
        | _ -> None)
      p.pragmas
  in
  {
    asp_inputs;
    asp_outputs;
    asp_output_bits;
    asv_arrays;
    globals = List.map (fun g -> (g.g_name, g)) p.globals;
  }
