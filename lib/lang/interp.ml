open Ast

exception Error of string

let err fmt = Printf.ksprintf (fun s -> raise (Error s)) fmt

let u32 v = v land 0xFFFF_FFFF
let s32 v = Wn_util.Subword.to_signed ~bits:32 (u32 v)

type cell = { ty : ty; data : int array }

type env = {
  globals : (string, cell) Hashtbl.t;
  mutable locals : (string * int ref) list;
}

let init (p : program) =
  let globals = Hashtbl.create 16 in
  List.iter
    (fun g -> Hashtbl.replace globals g.g_name { ty = g.g_ty; data = Array.make g.g_count 0 })
    p.globals;
  { globals; locals = [] }

let cell env name =
  match Hashtbl.find_opt env.globals name with
  | Some c -> c
  | None -> err "unknown array %S" name

let set_array env name values =
  let c = cell env name in
  if Array.length values <> Array.length c.data then
    err "array %S: expected %d elements, got %d" name (Array.length c.data)
      (Array.length values);
  Array.iteri
    (fun i v -> c.data.(i) <- Wn_util.Subword.truncate ~bits:(ty_bits c.ty) v)
    values

let array env name = Array.copy (cell env name).data

let local env name =
  match List.assoc_opt name env.locals with
  | Some r -> r
  | None -> err "undeclared variable %S" name

let load_elem c i =
  if i < 0 || i >= Array.length c.data then err "index %d out of bounds" i;
  let raw = c.data.(i) in
  if ty_signed c.ty then u32 (Wn_util.Subword.to_signed ~bits:(ty_bits c.ty) raw)
  else raw

let store_elem c i v =
  if i < 0 || i >= Array.length c.data then err "index %d out of bounds" i;
  c.data.(i) <- Wn_util.Subword.truncate ~bits:(ty_bits c.ty) v

let rec eval env e =
  match e with
  | Int n -> u32 n
  | Var v -> u32 !(local env v)
  | Load (a, idx) ->
      let c = cell env a in
      load_elem c (s32 (eval env idx))
  | Neg a -> u32 (-s32 (eval env a))
  | Bnot a -> u32 (lnot (eval env a))
  | Binop (op, a, b) -> (
      let x = eval env a in
      let y = eval env b in
      match op with
      | Add -> u32 (x + y)
      | Sub -> u32 (x - y)
      | Mul -> u32 (s32 x * s32 y)
      | And -> x land y
      | Or -> x lor y
      | Xor -> x lxor y
      | Shl -> u32 (x lsl (y land 31))
      | Shr -> u32 (s32 x asr (y land 31))
      | Eq -> if x = y then 1 else 0
      | Ne -> if x <> y then 1 else 0
      | Lt -> if s32 x < s32 y then 1 else 0
      | Le -> if s32 x <= s32 y then 1 else 0
      | Gt -> if s32 x > s32 y then 1 else 0
      | Ge -> if s32 x >= s32 y then 1 else 0)
  | Sqrt a ->
      let n = eval env a in
      let r = ref 0 in
      for bitpos = 15 downto 0 do
        let candidate = !r lor (1 lsl bitpos) in
        if candidate * candidate <= n then r := candidate
      done;
      !r
  | Sub_load _ | Mul_asp _ | Asv_op _ | Sqrt_asp _ | Raw_off _ ->
      err "internal expression form in the reference interpreter"

let loop_guard = 100_000_000

let rec exec env stmt =
  match stmt with
  | Decl (name, e) ->
      let v = eval env e in
      (match List.assoc_opt name env.locals with
      | Some r -> r := v
      | None -> env.locals <- (name, ref v) :: env.locals)
  | Assign (Lvar v, e) -> local env v := eval env e
  | Assign (Larr (a, idx), e) ->
      let value = eval env e in
      store_elem (cell env a) (s32 (eval env idx)) value
  | Aug_assign (lhs, op, e) ->
      let current = match lhs with Lvar v -> Var v | Larr (a, i) -> Load (a, i) in
      exec env (Assign (lhs, Binop (op, current, e)))
  | For l ->
      let saved = env.locals in
      let v = eval env l.lo in
      env.locals <- (l.var, ref v) :: env.locals;
      let r = local env l.var in
      let count = ref 0 in
      while s32 !r < s32 (eval env l.hi) do
        incr count;
        if !count > loop_guard then failwith "Interp: loop guard tripped";
        exec_block env l.body;
        r := u32 (!r + l.step)
      done;
      env.locals <- saved
  | If (c, a, b) -> if eval env c <> 0 then exec_block env a else exec_block env b
  | Anytime { body; commit } ->
      (* Precise semantics: straight through, shared scope. *)
      let saved = env.locals in
      List.iter (exec env) body;
      List.iter (exec env) commit;
      env.locals <- saved
  | Skim_here -> ()

and exec_block env stmts =
  let saved = env.locals in
  List.iter (exec env) stmts;
  env.locals <- saved

let run env (p : program) = exec_block env p.body

let interpret (p : program) ~inputs =
  let env = init p in
  List.iter (fun (name, values) -> set_array env name values) inputs;
  run env p;
  List.map (fun g -> (g.g_name, array env g.g_name)) p.globals
