type ty = U8 | U16 | U32 | I16 | I32

let ty_bytes = function U8 -> 1 | U16 | I16 -> 2 | U32 | I32 -> 4
let ty_bits t = 8 * ty_bytes t
let ty_signed = function I16 | I32 -> true | U8 | U16 | U32 -> false

let ty_name = function
  | U8 -> "uint8" | U16 -> "uint16" | U32 -> "uint32"
  | I16 -> "int16" | I32 -> "int32"

type binop =
  | Add | Sub | Mul
  | And | Or | Xor
  | Shl | Shr
  | Eq | Ne | Lt | Le | Gt | Ge

let binop_name = function
  | Add -> "+" | Sub -> "-" | Mul -> "*" | And -> "&" | Or -> "|"
  | Xor -> "^" | Shl -> "<<" | Shr -> ">>" | Eq -> "==" | Ne -> "!="
  | Lt -> "<" | Le -> "<=" | Gt -> ">" | Ge -> ">="

let is_comparison = function
  | Eq | Ne | Lt | Le | Gt | Ge -> true
  | Add | Sub | Mul | And | Or | Xor | Shl | Shr -> false

type asp_spec = { asp_bits : int; asp_shift : int; asp_signed : bool }

type expr =
  | Int of int
  | Var of string
  | Load of string * expr
  | Neg of expr
  | Bnot of expr
  | Binop of binop * expr * expr
  | Sub_load of { sl_arr : string; sl_index : expr; sl_shift : int }
  | Mul_asp of expr * expr * asp_spec
  | Asv_op of binop * int * expr * expr
  | Sqrt of expr
  | Sqrt_asp of expr * int
  | Raw_off of expr

type lhs = Lvar of string | Larr of string * expr

type stmt =
  | Decl of string * expr
  | Assign of lhs * expr
  | Aug_assign of lhs * binop * expr
  | For of for_loop
  | If of expr * stmt list * stmt list
  | Anytime of { body : stmt list; commit : stmt list }
  | Skim_here

and for_loop = {
  var : string;
  lo : expr;
  hi : expr;
  step : int;
  body : stmt list;
}

type technique = Asp | Asv

type direction = Input | Output

type pragma = {
  prag_technique : technique;
  prag_direction : direction;
  prag_array : string;
  prag_bits : int option;
  prag_provisioned : bool;
}

type global = { g_name : string; g_ty : ty; g_count : int }

type program = {
  pragmas : pragma list;
  globals : global list;
  kernel_name : string;
  body : stmt list;
}

let rec map_stmts f stmts = List.map (map_stmt f) stmts

and map_stmt f stmt =
  let stmt =
    match stmt with
    | For l -> For { l with body = map_stmts f l.body }
    | If (c, a, b) -> If (c, map_stmts f a, map_stmts f b)
    | Anytime { body; commit } ->
        Anytime { body = map_stmts f body; commit = map_stmts f commit }
    | Decl _ | Assign _ | Aug_assign _ | Skim_here -> stmt
  in
  f stmt

let rec iter_expr f e =
  (match e with
  | Int _ | Var _ -> ()
  | Load (_, i) -> iter_expr f i
  | Neg a | Bnot a | Sqrt a | Sqrt_asp (a, _) | Raw_off a -> iter_expr f a
  | Binop (_, a, b) | Asv_op (_, _, a, b) ->
      iter_expr f a;
      iter_expr f b
  | Sub_load { sl_index; _ } -> iter_expr f sl_index
  | Mul_asp (a, sub, _) ->
      iter_expr f a;
      iter_expr f sub);
  f e

let rec iter_exprs_stmt f stmt =
  match stmt with
  | Decl (_, e) -> iter_expr f e
  | Assign (lhs, e) | Aug_assign (lhs, _, e) ->
      (match lhs with Lvar _ -> () | Larr (_, i) -> iter_expr f i);
      iter_expr f e
  | For l ->
      iter_expr f l.lo;
      iter_expr f l.hi;
      List.iter (iter_exprs_stmt f) l.body
  | If (c, a, b) ->
      iter_expr f c;
      List.iter (iter_exprs_stmt f) a;
      List.iter (iter_exprs_stmt f) b
  | Anytime { body; commit } ->
      List.iter (iter_exprs_stmt f) body;
      List.iter (iter_exprs_stmt f) commit
  | Skim_here -> ()

let iter_exprs f stmts = List.iter (iter_exprs_stmt f) stmts

let rec map_expr f e =
  let e =
    match e with
    | Int _ | Var _ -> e
    | Load (a, i) -> Load (a, map_expr f i)
    | Neg a -> Neg (map_expr f a)
    | Bnot a -> Bnot (map_expr f a)
    | Binop (op, a, b) -> Binop (op, map_expr f a, map_expr f b)
    | Sub_load sl -> Sub_load { sl with sl_index = map_expr f sl.sl_index }
    | Mul_asp (a, sub, spec) -> Mul_asp (map_expr f a, map_expr f sub, spec)
    | Asv_op (op, w, a, b) -> Asv_op (op, w, map_expr f a, map_expr f b)
    | Sqrt a -> Sqrt (map_expr f a)
    | Sqrt_asp (a, bits) -> Sqrt_asp (map_expr f a, bits)
    | Raw_off a -> Raw_off (map_expr f a)
  in
  f e

let rec map_exprs_stmt f stmt =
  match stmt with
  | Decl (n, e) -> Decl (n, map_expr f e)
  | Assign (lhs, e) -> Assign (map_lhs f lhs, map_expr f e)
  | Aug_assign (lhs, op, e) -> Aug_assign (map_lhs f lhs, op, map_expr f e)
  | For l ->
      For
        {
          l with
          lo = map_expr f l.lo;
          hi = map_expr f l.hi;
          body = List.map (map_exprs_stmt f) l.body;
        }
  | If (c, a, b) ->
      If (map_expr f c, List.map (map_exprs_stmt f) a, List.map (map_exprs_stmt f) b)
  | Anytime { body; commit } ->
      Anytime
        {
          body = List.map (map_exprs_stmt f) body;
          commit = List.map (map_exprs_stmt f) commit;
        }
  | Skim_here -> Skim_here

and map_lhs f = function
  | Lvar v -> Lvar v
  | Larr (a, i) -> Larr (a, map_expr f i)

let rec pp_expr ppf e =
  match e with
  | Int n -> Format.pp_print_int ppf n
  | Var v -> Format.pp_print_string ppf v
  | Load (a, i) -> Format.fprintf ppf "%s[%a]" a pp_expr i
  | Neg a -> Format.fprintf ppf "(-%a)" pp_expr a
  | Bnot a -> Format.fprintf ppf "(~%a)" pp_expr a
  | Binop (op, a, b) ->
      Format.fprintf ppf "(%a %s %a)" pp_expr a (binop_name op) pp_expr b
  | Sub_load { sl_arr; sl_index; sl_shift } ->
      Format.fprintf ppf "subload(%s[%a] >> %d)" sl_arr pp_expr sl_index
        sl_shift
  | Mul_asp (a, sub, spec) ->
      Format.fprintf ppf "mul_asp%d%s(%a, %a, <<%d)" spec.asp_bits
        (if spec.asp_signed then "s" else "")
        pp_expr a pp_expr sub spec.asp_shift
  | Asv_op (op, w, a, b) ->
      Format.fprintf ppf "asv%d(%a %s %a)" w pp_expr a (binop_name op) pp_expr b
  | Sqrt a -> Format.fprintf ppf "sqrt(%a)" pp_expr a
  | Sqrt_asp (a, bits) -> Format.fprintf ppf "sqrt_asp%d(%a)" bits pp_expr a
  | Raw_off a -> Format.fprintf ppf "@%a" pp_expr a

let pp_lhs ppf = function
  | Lvar v -> Format.pp_print_string ppf v
  | Larr (a, i) -> Format.fprintf ppf "%s[%a]" a pp_expr i

let rec pp_stmt ppf stmt =
  match stmt with
  | Decl (n, e) -> Format.fprintf ppf "@[int32 %s = %a;@]" n pp_expr e
  | Assign (l, e) -> Format.fprintf ppf "@[%a = %a;@]" pp_lhs l pp_expr e
  | Aug_assign (l, op, e) ->
      Format.fprintf ppf "@[%a %s= %a;@]" pp_lhs l (binop_name op) pp_expr e
  | For l ->
      Format.fprintf ppf
        "@[<v 2>for (%s = %a; %s < %a; %s += %d) {@,%a@]@,}" l.var pp_expr
        l.lo l.var pp_expr l.hi l.var l.step pp_block l.body
  | If (c, a, []) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,}" pp_expr c pp_block a
  | If (c, a, b) ->
      Format.fprintf ppf "@[<v 2>if (%a) {@,%a@]@,} else {@,%a@,}" pp_expr c
        pp_block a pp_block b
  | Anytime { body; commit } ->
      Format.fprintf ppf "@[<v 2>anytime {@,%a@]@,@[<v 2>} commit {@,%a@]@,}"
        pp_block body pp_block commit
  | Skim_here -> Format.pp_print_string ppf "skim;"

and pp_block ppf stmts =
  Format.pp_print_list ~pp_sep:Format.pp_print_cut pp_stmt ppf stmts

let pp_program ppf p =
  List.iter
    (fun g ->
      if g.g_count = 1 then
        Format.fprintf ppf "%s %s;@." (ty_name g.g_ty) g.g_name
      else Format.fprintf ppf "%s %s[%d];@." (ty_name g.g_ty) g.g_name g.g_count)
    p.globals;
  Format.fprintf ppf "@[<v 2>kernel %s() {@,%a@]@,}@." p.kernel_name pp_block
    p.body
