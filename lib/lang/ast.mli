(** Abstract syntax of WNC, the mini-C the benchmarks are written in.

    WNC is the subset of C the paper's kernels need — global arrays,
    scalar locals, counted [for] loops, integer/fixed-point expressions —
    plus the paper's annotations:

    - [#pragma asp input(A, bits)] / [#pragma asp output(X)] mark data
      for anytime subword pipelining (Listing 1);
    - [#pragma asv input(A, bits)] / [#pragma asv output(X, bits)]
      (optionally [provisioned]) mark data for anytime subword
      vectorization (Listing 3);
    - [anytime { ... } commit { ... }] delimits the loop nest the
      compiler's fission pass replicates per subword and the code that
      materialises the current approximation after each pass.

    The [Sub_load], [Mul_asp] and [Asv_op] expression forms are internal:
    the SWP/SWV transformation passes introduce them; the parser never
    produces them. *)

type ty = U8 | U16 | U32 | I16 | I32

val ty_bytes : ty -> int
val ty_bits : ty -> int
val ty_signed : ty -> bool
val ty_name : ty -> string

type binop =
  | Add | Sub | Mul
  | And | Or | Xor
  | Shl | Shr  (** [Shr] is arithmetic on signed types, logical otherwise *)
  | Eq | Ne | Lt | Le | Gt | Ge

val binop_name : binop -> string
val is_comparison : binop -> bool

type asp_spec = {
  asp_bits : int;  (** subword width *)
  asp_shift : int;  (** bit position of the subword within its element *)
  asp_signed : bool;  (** true for the top subword of signed data *)
}

type expr =
  | Int of int
  | Var of string
  | Load of string * expr  (** array\[index\] *)
  | Neg of expr
  | Bnot of expr
  | Binop of binop * expr * expr
  | Sub_load of { sl_arr : string; sl_index : expr; sl_shift : int }
      (** internal: load an element and shift its subword of interest
          into the low bits (only meaningful under [Mul_asp], which
          truncates) *)
  | Mul_asp of expr * expr * asp_spec
      (** internal: [Mul_asp (m, sub, spec)] — multiplicand [m] × the
          subword in [sub]'s low bits, shifted to [asp_shift]; lowers to
          the MUL_ASP instruction *)
  | Asv_op of binop * int * expr * expr
      (** internal: [Asv_op (op, lane_bits, a, b)] — lane-parallel op;
          lowers to ADD_ASV/SUB_ASV (or a plain logical op, which is
          lane-safe by nature) *)
  | Sqrt of expr  (** [sqrt(e)]: 16-bit integer square root of [e] *)
  | Sqrt_asp of expr * int
      (** internal: only the [bits] most significant root bits — the
          anytime square-root stage (the paper's footnote-3 extension) *)
  | Raw_off of expr
      (** internal: marks an array index as an already-scaled {e byte}
          offset from the array's base.  The strength-reduction pass
          rewrites affine indices into running byte-offset induction
          variables and wraps them in [Raw_off]; the code generator then
          skips the scale shift and indexes the base register directly.
          Only meaningful as the index of [Load], [Larr] or
          [Sub_load]. *)

type lhs =
  | Lvar of string
  | Larr of string * expr

type stmt =
  | Decl of string * expr  (** [int32 x = e;] — scalar local *)
  | Assign of lhs * expr
  | Aug_assign of lhs * binop * expr  (** [lhs op= e] *)
  | For of for_loop
  | If of expr * stmt list * stmt list
  | Anytime of { body : stmt list; commit : stmt list }
  | Skim_here  (** internal: the transform's SKM insertion point *)

and for_loop = {
  var : string;
  lo : expr;
  hi : expr;  (** loop runs while [var < hi] *)
  step : int;  (** positive constant increment *)
  body : stmt list;
}

type technique = Asp | Asv

type direction = Input | Output

type pragma = {
  prag_technique : technique;
  prag_direction : direction;
  prag_array : string;
  prag_bits : int option;  (** subword size; None for [asp output] *)
  prag_provisioned : bool;
}

type global = { g_name : string; g_ty : ty; g_count : int }
(** [g_count = 1] for scalars, else array length in elements. *)

type program = {
  pragmas : pragma list;
  globals : global list;
  kernel_name : string;
  body : stmt list;
}

val map_stmts : (stmt -> stmt) -> stmt list -> stmt list
(** Bottom-up rewriting over statement trees (descends into loops,
    conditionals and anytime blocks before applying [f]). *)

val map_stmt : (stmt -> stmt) -> stmt -> stmt

val iter_expr : (expr -> unit) -> expr -> unit
(** Visit an expression and all its sub-expressions. *)

val map_expr : (expr -> expr) -> expr -> expr
(** Rewrite an expression bottom-up. *)

val iter_exprs_stmt : (expr -> unit) -> stmt -> unit
(** Visit every expression in a statement tree. *)

val iter_exprs : (expr -> unit) -> stmt list -> unit

val map_exprs_stmt : (expr -> expr) -> stmt -> stmt
(** Rewrite every expression in a statement tree (applied bottom-up to
    sub-expressions first). *)

val pp_expr : Format.formatter -> expr -> unit
val pp_stmt : Format.formatter -> stmt -> unit

val pp_block : Format.formatter -> stmt list -> unit
(** Statement list, one per line — the form [wn compile --dump-after]
    prints for IR-level passes. *)

val pp_program : Format.formatter -> program -> unit
