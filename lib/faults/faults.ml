open Wn_machine
open Wn_power
module Executor = Wn_runtime.Executor

type scenario = { fresh : unit -> Machine.t; policy : Executor.policy }

type profile = {
  retired : int;
  final_digest : Digest.t;
  first_skim : int option;
  store_boundaries : int array;
  skm_boundaries : int array;
  checkpoint_boundaries : int array;
}

let default_max_steps = 1_000_000_000

let mem_digest m = Wn_mem.Memory.digest (Machine.mem m)

(* ---------------- the streaming survey pass ---------------- *)

type keyframe = {
  kf_retired : int;
  kf_machine : Machine.snapshot;
  kf_exec : Executor.resume_state;
}

type keyframes = {
  interval : int;
  frames : keyframe array;
  kf_final : Executor.outcome;
  kf_final_digest : Digest.t;
}

let default_keyframe_interval = 512

(* Denser-than-sqrt placement: with delta frames a keyframe costs
   O(pages dirtied per interval), so the old fixed 512 is no longer the
   store/replay trade-off point.  2·sqrt(n) keeps replay windows short
   on big runs without flooding the rejoin-probe candidate lists on
   small ones; the clamp bounds pathological run lengths. *)
let auto_keyframe_interval ~boundaries =
  let k = int_of_float (2.0 *. sqrt (float_of_int (max 1 boundaries))) in
  max 32 (min 4096 k)

type survey_result = {
  sv_profile : profile;
  sv_digests : Digest.t array;
  sv_keyframes : keyframes option;
}

(* Everything the planner, oracle and keyframe replayer need, gathered
   in ONE uninterrupted executor run under the scenario's policy: the
   per-step hook records store/SKM boundaries and takes the requested
   prefix digests, the checkpoint hook observes the policy's checkpoint
   placement, and the keyframe hook captures (machine snapshot,
   executor resume state) pairs every [keyframe_interval] retired
   instructions.  The machine-visible state stream of a policy-driven
   uninterrupted run is bit-identical to raw stepping (checkpoints only
   read the register file), so the recorded boundaries and digests
   equal the raw continuous run's. *)
let survey ?(max_steps = default_max_steps) ?(boundaries = [||])
    ?keyframe_interval ?(full_frames = false) scenario =
  (match keyframe_interval with
  | Some k when k < 1 -> invalid_arg "Faults.survey: keyframe_interval"
  | _ -> ());
  let count = Array.length boundaries in
  Array.iteri
    (fun i b ->
      if b < 1 || (i > 0 && b <= boundaries.(i - 1)) then
        invalid_arg "Faults.survey: boundaries")
    boundaries;
  let m = scenario.fresh () in
  let supply = Supply.scripted () in
  let stores = ref [] and skms = ref [] and ckpts = ref [] in
  let digests = Array.make count Digest.(string "") in
  let bi = ref 0 in
  let n = ref 0 in
  let frames = ref [] in
  let on_step () =
    incr n;
    if !n > max_steps && not (Machine.halted m) then
      failwith "Faults.survey: program did not halt";
    if Machine.last_wrote_addr m >= 0 then stores := !n :: !stores;
    if Machine.last_was_skm m then skms := !n :: !skms;
    if !bi < count && boundaries.(!bi) = !n then begin
      digests.(!bi) <- mem_digest m;
      incr bi
    end
  in
  let on_checkpoint retired = ckpts := retired :: !ckpts in
  (* Delta snapshots by default: the survey machine is the only writer
     of its memory, so consecutive keyframes share every page the
     program did not dirty in between and the store stays O(dirty).
     [full_frames] keeps the old isolated-copy behaviour for
     comparison. *)
  let on_keyframe rs =
    frames :=
      {
        kf_retired = !n;
        kf_machine = Machine.snapshot ~full:full_frames m;
        kf_exec = rs;
      }
      :: !frames
  in
  let outcome =
    Executor.run ~policy:scenario.policy ~on_step ~on_checkpoint
      ?keyframe_every:keyframe_interval
      ?on_keyframe:(Option.map (fun _ -> on_keyframe) keyframe_interval)
      ~machine:m ~supply ()
  in
  if not outcome.Executor.completed then
    failwith "Faults.survey: program did not halt";
  if !bi < count then invalid_arg "Faults.survey: boundary past halt";
  let profile =
    {
      retired = !n;
      final_digest = mem_digest m;
      first_skim = (match List.rev !skms with [] -> None | b :: _ -> Some b);
      store_boundaries = Array.of_list (List.rev !stores);
      skm_boundaries = Array.of_list (List.rev !skms);
      checkpoint_boundaries = Array.of_list (List.rev !ckpts);
    }
  in
  {
    sv_profile = profile;
    sv_digests = digests;
    sv_keyframes =
      Option.map
        (fun interval ->
          {
            interval;
            frames = Array.of_list (List.rev !frames);
            kf_final = outcome;
            kf_final_digest = profile.final_digest;
          })
        keyframe_interval;
  }

let profile ?max_steps scenario = (survey ?max_steps scenario).sv_profile

let prefix_digests ?max_steps scenario ~boundaries =
  (survey ?max_steps ~boundaries scenario).sv_digests

(* Largest frame at or before [retired_max] (frames ascend in
   kf_retired), or [None] if the store has nothing that early. *)
let frame_at_or_before kfs ~retired_max =
  let fr = kfs.frames in
  let lo = ref 0 and hi = ref (Array.length fr) in
  while !lo < !hi do
    let mid = (!lo + !hi) / 2 in
    if fr.(mid).kf_retired <= retired_max then lo := mid + 1 else hi := mid
  done;
  if !lo = 0 then None else Some fr.(!lo - 1)

type restore_state = {
  at_retired : int;
  r_pc : int;
  r_regs : int array;
  r_flags : Wn_isa.Cond.flags;
  r_mem_digest : Digest.t;
}

type point_result = {
  boundary : int;
  outcome : Executor.outcome;
  restore : restore_state option;
  final_digest : Digest.t;
}

let run_point ?(engine = Executor.Fast)
    ?(off_cycles = Supply.default_off_cycles) ?keyframes ?machine scenario
    ~boundary =
  if boundary < 1 then invalid_arg "Faults.run_point";
  (* Resume from the nearest keyframe strictly before the boundary (the
     outage must still lie ahead so the budget is >= 1): the continuous
     prefix then costs at most [interval] steps instead of [boundary]. *)
  let frame =
    match keyframes with
    | None -> None
    | Some kfs -> frame_at_or_before kfs ~retired_max:(boundary - 1)
  in
  (* A caller-provided scratch machine is only usable when a keyframe is
     restored into it: [Machine.restore] overwrites every mutable field,
     so whatever a previous point left behind is irrelevant — and
     restoring along one keyframe chain into one machine costs only the
     pages that differ.  The scratch-replay path still needs a pristine
     [fresh] machine. *)
  let m =
    match (frame, machine) with
    | Some _, Some m -> m
    | _ -> scenario.fresh ()
  in
  let supply = Supply.scripted ~off_cycles () in
  let resume =
    match frame with
    | None -> None
    | Some kf ->
        Machine.restore m kf.kf_machine;
        Some kf
  in
  let budget =
    match resume with
    | None -> boundary
    | Some kf -> boundary - kf.kf_retired
  in
  Machine.set_step_budget m (Some budget);
  let restore = ref None in
  let outage_seen = ref false in
  let on_restore _outage_index =
    outage_seen := true;
    if !restore = None then
      restore :=
        Some
          {
            at_retired = Machine.instructions_retired m;
            r_pc = Machine.pc m;
            r_regs = Array.init Wn_isa.Reg.count (fun i -> Machine.reg m (Wn_isa.Reg.r i));
            r_flags = Machine.flags m;
            r_mem_digest = mem_digest m;
          }
  in
  (* Rejoin fast-forward: once the injected run is past the outage, the
     first instant its architectural state bit-matches a keyframe of the
     continuous run the remainder is that run's remainder (the scripted
     supply never cuts again), so the executor can stop and reconstruct
     the tail from the survey's recorded final outcome.  Candidates are
     indexed by PC, so the per-step probe is one array load on the vast
     majority of steps; the gate on [outage_seen] keeps the prefix
     replay — which matches keyframes trivially — running normally. *)
  let ffired = ref false in
  let fast_forward =
    match keyframes with
    | None -> None
    | Some kfs when Array.length kfs.frames = 0 -> None
    | Some kfs ->
        let by_pc = Array.make (Array.length (Machine.program m)) [] in
        Array.iter
          (fun kf ->
            let pc = Machine.snapshot_pc kf.kf_machine in
            if pc >= 0 && pc < Array.length by_pc then
              by_pc.(pc) <- kf :: by_pc.(pc))
          kfs.frames;
        Some
          (fun () ->
            if not !outage_seen then None
            else
              let pc = Machine.pc m in
              if pc < 0 || pc >= Array.length by_pc then None
              else
                let rec probe = function
                  | [] -> None
                  | kf :: rest ->
                      if Machine.matches_state m kf.kf_machine then begin
                        ffired := true;
                        Some
                          {
                            Executor.ff_at = kf.kf_exec;
                            ff_final = kfs.kf_final;
                          }
                      end
                      else probe rest
                in
                probe by_pc.(pc))
  in
  let outcome =
    Executor.run ~policy:scenario.policy ~engine ~on_restore
      ?resume:(Option.map (fun kf -> kf.kf_exec) resume)
      ?fast_forward ~machine:m ~supply ()
  in
  let final_digest =
    if !ffired then
      match keyframes with
      | Some kfs -> kfs.kf_final_digest
      | None -> assert false
    else mem_digest m
  in
  { boundary; outcome; restore = !restore; final_digest }

(* The commit tail a skim reference executes is a pure function of the
   machine state right after the jump: under Clank the register file is
   scrubbed first, so the tail depends only on the memory image at the
   boundary and the latched target; under NVP / always-on the register
   file and flags survive the jump and join the key.  (The memo table
   and zero-skip shortcuts change only cycle counts, never values, and
   the returned digest covers memory alone.)  Consecutive boundaries
   share the key until a store or a fresh [Skm] changes it, so an
   exhaustive sweep computes a few thousand distinct tails instead of
   one per skim boundary.  The table is mutex-protected: results are
   deterministic, so concurrent duplicate computation is harmless and
   reports stay byte-identical at any pool width. *)
type skim_key = Digest.t * int * (int array * Wn_isa.Cond.flags) option

type skim_cache = {
  sc_mutex : Mutex.t;
  sc_tbl : (skim_key, Digest.t) Hashtbl.t;
}

let skim_cache () = { sc_mutex = Mutex.create (); sc_tbl = Hashtbl.create 256 }

let skim_reference ?(max_steps = default_max_steps) ?keyframes ?cache
    ?prefix_digest ?machine scenario ~boundary =
  (* A keyframe at exactly [boundary] is usable here: the latched skim
     target is part of the snapshot. *)
  let frame =
    match keyframes with
    | None -> None
    | Some kfs -> frame_at_or_before kfs ~retired_max:boundary
  in
  (* Same scratch-machine contract as [run_point]: reusable only when a
     frame is restored over it. *)
  let m =
    match (frame, machine) with
    | Some _, Some m -> m
    | _ -> scenario.fresh ()
  in
  let start =
    match frame with
    | None -> 0
    | Some kf ->
        Machine.restore m kf.kf_machine;
        kf.kf_retired
  in
  for _ = start + 1 to boundary do
    if Machine.halted m then
      invalid_arg "Faults.skim_reference: boundary past halt";
    Machine.step_fast m
  done;
  match Machine.take_skim m with
  | None -> None
  | Some target ->
      let run_tail () =
        (match scenario.policy with
        | Executor.Clank _ ->
            Machine.scrub_volatile m;
            Machine.set_pc m target
        | Executor.Nvp _ | Executor.Always_on -> Machine.set_pc m target);
        let n = ref 0 in
        while not (Machine.halted m) do
          if !n >= max_steps then
            failwith "Faults.skim_reference: program did not halt";
          Machine.step_fast m;
          incr n
        done;
        mem_digest m
      in
      let digest =
        match cache with
        | None -> run_tail ()
        | Some c ->
            let mem_d =
              match prefix_digest with Some d -> d | None -> mem_digest m
            in
            let key : skim_key =
              match scenario.policy with
              | Executor.Clank _ -> (mem_d, target, None)
              | Executor.Nvp _ | Executor.Always_on ->
                  ( mem_d,
                    target,
                    Some
                      ( Array.init Wn_isa.Reg.count (fun i ->
                            Machine.reg m (Wn_isa.Reg.r i)),
                        Machine.flags m ) )
            in
            let hit =
              Mutex.lock c.sc_mutex;
              let r = Hashtbl.find_opt c.sc_tbl key in
              Mutex.unlock c.sc_mutex;
              r
            in
            (match hit with
            | Some d -> d
            | None ->
                let d = run_tail () in
                Mutex.lock c.sc_mutex;
                Hashtbl.replace c.sc_tbl key d;
                Mutex.unlock c.sc_mutex;
                d)
      in
      Some digest

let check ~profile ~prefix_digest ~skim_ref result =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let out = result.outcome in
  (* The injection itself must have behaved: one outage, at the exact
     boundary, and the run must have come back and finished. *)
  if out.Executor.outage_count <> 1 then
    fail "expected exactly one injected outage, saw %d" out.Executor.outage_count;
  if not out.Executor.completed then fail "run did not complete after restore";
  (match result.restore with
  | None -> if out.Executor.outage_count > 0 then fail "restore state not captured"
  | Some r ->
      if r.at_retired <> result.boundary then
        fail "outage struck at boundary %d, not the requested %d" r.at_retired
          result.boundary;
      (* (a) no torn state: NVM at restore is the continuous prefix image. *)
      if not (Digest.equal r.r_mem_digest prefix_digest) then
        fail "(a) NVM at restore differs from the continuous prefix image");
  let expect_skim =
    match profile.first_skim with
    | Some s -> s <= result.boundary
    | None -> false
  in
  if out.Executor.skimmed && not expect_skim then
    fail "(c) run skim-committed but no skim target was latched by boundary %d"
      result.boundary;
  if expect_skim && not out.Executor.skimmed then
    fail "(c) skim target was latched by boundary %d but the restore ignored it"
      result.boundary;
  if expect_skim && out.Executor.skimmed then begin
    match skim_ref with
    | Some d ->
        if not (Digest.equal result.final_digest d) then
          fail "(c) skim commit diverges from the anytime reference image"
    | None ->
        fail "(c) no reference skim image exists at boundary %d" result.boundary
  end
  else if out.Executor.completed
          && not (Digest.equal result.final_digest profile.final_digest)
  then
    (* (b) convergence: re-execution must land on the continuous-run
       final image bit-exactly. *)
    fail "(b) final NVM diverges from the continuous run";
  List.rev !violations
