open Wn_machine
open Wn_power
module Executor = Wn_runtime.Executor

type scenario = { fresh : unit -> Machine.t; policy : Executor.policy }

type profile = {
  retired : int;
  final_digest : Digest.t;
  first_skim : int option;
  store_boundaries : int array;
  skm_boundaries : int array;
  checkpoint_boundaries : int array;
}

let default_max_steps = 1_000_000_000

let mem_digest m = Digest.bytes (Wn_mem.Memory.snapshot (Machine.mem m))

let profile ?(max_steps = default_max_steps) scenario =
  let m = scenario.fresh () in
  let stores = ref [] and skms = ref [] in
  let n = ref 0 in
  while not (Machine.halted m) do
    if !n >= max_steps then failwith "Faults.profile: program did not halt";
    Machine.step_fast m;
    incr n;
    if Machine.last_wrote_addr m >= 0 then stores := !n :: !stores;
    if Machine.last_was_skm m then skms := !n :: !skms
  done;
  let final_digest = mem_digest m in
  (* Checkpoint placement is a property of the runtime, not the ISA:
     observe it by running the policy once on an uninterrupted scripted
     supply. *)
  let ckpts = ref [] in
  (match scenario.policy with
  | Executor.Clank _ ->
      let m2 = scenario.fresh () in
      let supply = Supply.scripted () in
      ignore
        (Executor.run ~policy:scenario.policy
           ~on_checkpoint:(fun retired -> ckpts := retired :: !ckpts)
           ~machine:m2 ~supply ())
  | Executor.Always_on | Executor.Nvp _ -> ());
  {
    retired = !n;
    final_digest;
    first_skim = (match List.rev !skms with [] -> None | b :: _ -> Some b);
    store_boundaries = Array.of_list (List.rev !stores);
    skm_boundaries = Array.of_list (List.rev !skms);
    checkpoint_boundaries = Array.of_list (List.rev !ckpts);
  }

let prefix_digests ?(max_steps = default_max_steps) scenario ~boundaries =
  let count = Array.length boundaries in
  Array.iteri
    (fun i b ->
      if b < 1 || (i > 0 && b <= boundaries.(i - 1)) then
        invalid_arg "Faults.prefix_digests")
    boundaries;
  let m = scenario.fresh () in
  let out = Array.make count Digest.(string "") in
  let bi = ref 0 in
  let n = ref 0 in
  while !bi < count && not (Machine.halted m) do
    if !n >= max_steps then failwith "Faults.prefix_digests: program did not halt";
    Machine.step_fast m;
    incr n;
    if boundaries.(!bi) = !n then begin
      out.(!bi) <- mem_digest m;
      incr bi
    end
  done;
  if !bi < count then invalid_arg "Faults.prefix_digests: boundary past halt";
  out

type restore_state = {
  at_retired : int;
  r_pc : int;
  r_regs : int array;
  r_flags : Wn_isa.Cond.flags;
  r_mem_digest : Digest.t;
}

type point_result = {
  boundary : int;
  outcome : Executor.outcome;
  restore : restore_state option;
  final_digest : Digest.t;
}

let run_point ?(engine = Executor.Fast)
    ?(off_cycles = Supply.default_off_cycles) scenario ~boundary =
  if boundary < 1 then invalid_arg "Faults.run_point";
  let m = scenario.fresh () in
  let supply = Supply.scripted ~off_cycles () in
  Machine.set_step_budget m (Some boundary);
  let restore = ref None in
  let on_restore _outage_index =
    if !restore = None then
      restore :=
        Some
          {
            at_retired = Machine.instructions_retired m;
            r_pc = Machine.pc m;
            r_regs = Array.init Wn_isa.Reg.count (fun i -> Machine.reg m (Wn_isa.Reg.r i));
            r_flags = Machine.flags m;
            r_mem_digest = mem_digest m;
          }
  in
  let outcome =
    Executor.run ~policy:scenario.policy ~engine ~on_restore ~machine:m
      ~supply ()
  in
  { boundary; outcome; restore = !restore; final_digest = mem_digest m }

let skim_reference ?(max_steps = default_max_steps) scenario ~boundary =
  let m = scenario.fresh () in
  for _ = 1 to boundary do
    Machine.step_fast m
  done;
  match Machine.take_skim m with
  | None -> None
  | Some target ->
      (match scenario.policy with
      | Executor.Clank _ ->
          Machine.scrub_volatile m;
          Machine.set_pc m target
      | Executor.Nvp _ | Executor.Always_on -> Machine.set_pc m target);
      let n = ref 0 in
      while not (Machine.halted m) do
        if !n >= max_steps then
          failwith "Faults.skim_reference: program did not halt";
        Machine.step_fast m;
        incr n
      done;
      Some (mem_digest m)

let check ~profile ~prefix_digest ~skim_ref result =
  let violations = ref [] in
  let fail fmt = Printf.ksprintf (fun s -> violations := s :: !violations) fmt in
  let out = result.outcome in
  (* The injection itself must have behaved: one outage, at the exact
     boundary, and the run must have come back and finished. *)
  if out.Executor.outage_count <> 1 then
    fail "expected exactly one injected outage, saw %d" out.Executor.outage_count;
  if not out.Executor.completed then fail "run did not complete after restore";
  (match result.restore with
  | None -> if out.Executor.outage_count > 0 then fail "restore state not captured"
  | Some r ->
      if r.at_retired <> result.boundary then
        fail "outage struck at boundary %d, not the requested %d" r.at_retired
          result.boundary;
      (* (a) no torn state: NVM at restore is the continuous prefix image. *)
      if not (Digest.equal r.r_mem_digest prefix_digest) then
        fail "(a) NVM at restore differs from the continuous prefix image");
  let expect_skim =
    match profile.first_skim with
    | Some s -> s <= result.boundary
    | None -> false
  in
  if out.Executor.skimmed && not expect_skim then
    fail "(c) run skim-committed but no skim target was latched by boundary %d"
      result.boundary;
  if expect_skim && not out.Executor.skimmed then
    fail "(c) skim target was latched by boundary %d but the restore ignored it"
      result.boundary;
  if expect_skim && out.Executor.skimmed then begin
    match skim_ref with
    | Some d ->
        if not (Digest.equal result.final_digest d) then
          fail "(c) skim commit diverges from the anytime reference image"
    | None ->
        fail "(c) no reference skim image exists at boundary %d" result.boundary
  end
  else if out.Executor.completed
          && not (Digest.equal result.final_digest profile.final_digest)
  then
    (* (b) convergence: re-execution must land on the continuous-run
       final image bit-exactly. *)
    fail "(b) final NVM diverges from the continuous run";
  List.rev !violations
