(** Deterministic outage-point fault injection with a crash-consistency
    oracle.

    The trace-driven supplies exercise outages only where the energy
    model happens to put them — a vanishingly small slice of the
    outage-point space.  This engine instead forces an outage at a
    *chosen instruction boundary* (boundary [k] = between the [k]'th and
    [k+1]'th retired instruction of the continuous run), using the
    machine step budget and a {!Wn_power.Supply.scripted} supply, and
    then audits the restore against three oracle properties:

    - (a) {b no torn state}: at the instant of restore, non-volatile
      memory is bit-identical to the image the continuous run had at
      that same boundary (FRAM writes are instruction-atomic; nothing
      the runtime does across an outage may touch memory);
    - (b) {b convergence}: if no skim point fires, re-execution reaches
      the continuous run's final memory image bit-exactly;
    - (c) {b anytime commit}: if a skim point fires, the early-committed
      memory image equals an independent reference that replays the
      paper's skim semantics (jump to the latched target at that
      boundary — registers scrubbed first on a volatile Clank core —
      and run to halt).

    All runs are deterministic: a scenario is a thunk producing a fresh,
    identically-loaded machine, so any number of injected runs can be
    farmed out to domains and re-merged in boundary order.

    {b Keyframes.}  Replaying the continuous prefix from instruction 0
    for every injected point makes an exhaustive sweep O(n²) in program
    length.  A {!survey} pass can instead record {!keyframes} — whole
    simulation snapshots ({!Wn_machine.Machine.snapshot} paired with the
    executor's {!Wn_runtime.Executor.resume_state}) every [interval]
    retired instructions — and {!run_point} / {!skim_reference} then
    restore the nearest keyframe and step forward at most [interval]
    instructions, making the sweep O(n·K) with bit-identical results.
    A keyframe store is immutable after the survey and safe to share
    read-only across pool domains: every restore deep-copies into the
    consuming machine. *)

type scenario = {
  fresh : unit -> Wn_machine.Machine.t;
      (** Build a fresh machine positioned at task entry with inputs
          loaded.  Must be pure (same machine state every call) and
          thread-safe: injected runs call it from pool domains. *)
  policy : Wn_runtime.Executor.policy;
}

(** Continuous-run profile: everything the planner and oracle need. *)
type profile = {
  retired : int;  (** instructions retired by the continuous run *)
  final_digest : Digest.t;  (** memory image at halt *)
  first_skim : int option;
      (** boundary after which a skim target is latched, if any *)
  store_boundaries : int array;  (** boundaries following a store *)
  skm_boundaries : int array;  (** boundaries following an [Skm] *)
  checkpoint_boundaries : int array;
      (** retired counts at which the policy checkpointed (Clank) *)
}

(** One whole-simulation keyframe: the machine snapshot and the
    executor resume state captured at the same clean boundary of the
    uninterrupted run. *)
type keyframe = {
  kf_retired : int;
  kf_machine : Wn_machine.Machine.snapshot;
  kf_exec : Wn_runtime.Executor.resume_state;
}

type keyframes = {
  interval : int;
  frames : keyframe array;
  kf_final : Wn_runtime.Executor.outcome;
      (** the continuous run's outcome at halt — the rejoin target *)
  kf_final_digest : Digest.t;  (** the continuous run's final memory image *)
}
(** [frames] ascend in [kf_retired]; frame [i] sits at boundary
    [(i + 1) * interval] (boundaries past halt are never captured). *)

val default_keyframe_interval : int
(** 512 retired instructions per keyframe — the measured sweet spot of
    the pre-delta full-copy store on the exhaustive MatAdd sweep.  Kept
    as the reference fixed interval; new callers should prefer
    {!auto_keyframe_interval}. *)

val auto_keyframe_interval : boundaries:int -> int
(** Derived keyframe interval for a run with [boundaries] injectable
    boundaries: [2·sqrt(boundaries)] clamped to [32, 4096].  Delta
    frames make dense keyframes cheap (O(dirty pages) each), so the
    interval only has to balance replay-window length against
    rejoin-probe candidate density. *)

type survey_result = {
  sv_profile : profile;
  sv_digests : Digest.t array;
      (** continuous-run memory digests, aligned with the requested
          [boundaries] *)
  sv_keyframes : keyframes option;
}

val survey :
  ?max_steps:int ->
  ?boundaries:int array ->
  ?keyframe_interval:int ->
  ?full_frames:bool ->
  scenario ->
  survey_result
(** ONE streaming pass over the uninterrupted run under the scenario's
    policy, gathering the {!profile} (store/SKM boundaries, checkpoint
    placement, final digest), the prefix digests at the
    strictly-ascending [boundaries] (all within [1, retired]) and — when
    [keyframe_interval] is given — a keyframe store.  Replaces the
    separate effect, checkpoint-observation and digest passes.

    Keyframes are delta snapshots by default: each frame structurally
    shares the memory pages unwritten since the previous frame, making
    the store O(pages dirtied) per frame.  [full_frames] forces
    isolated full-copy frames (every page copied) — observably
    identical, only bigger and slower to capture.

    Raises [Failure] if the program does not halt within [max_steps]
    (default one billion) instructions, [Invalid_argument] on malformed
    [boundaries], a boundary past halt, or [keyframe_interval < 1]. *)

val profile : ?max_steps:int -> scenario -> profile
(** [profile s = (survey s).sv_profile] — one pass. *)

val prefix_digests :
  ?max_steps:int -> scenario -> boundaries:int array -> Digest.t array
(** Memory digests of the continuous run at each boundary of the
    strictly-ascending [boundaries] (all within [1, retired]), computed
    in one pass: [(survey ~boundaries s).sv_digests]. *)

(** Machine state captured by the oracle at the instant restore
    completes (the [on_restore] hook). *)
type restore_state = {
  at_retired : int;  (** total retired instructions when the outage struck *)
  r_pc : int;
  r_regs : int array;
  r_flags : Wn_isa.Cond.flags;
  r_mem_digest : Digest.t;
}

type point_result = {
  boundary : int;
  outcome : Wn_runtime.Executor.outcome;
  restore : restore_state option;  (** [None] if no outage fired *)
  final_digest : Digest.t;
}

val run_point :
  ?engine:Wn_runtime.Executor.engine ->
  ?off_cycles:int ->
  ?keyframes:keyframes ->
  ?machine:Wn_machine.Machine.t ->
  scenario ->
  boundary:int ->
  point_result
(** Run the task with exactly one forced outage at [boundary] (which
    must be within [1, retired - 1] for the outage to strike before
    halt).  [off_cycles] is the powered-off period served before
    restore (default {!Wn_power.Supply.default_off_cycles}).

    With [keyframes] the point costs O(interval + recovery) instead of
    O(retired): the continuous prefix resumes from the nearest keyframe
    strictly before [boundary], and after the outage the run
    fast-forwards the moment its architectural state bit-matches a
    keyframe of the continuous run ({!Wn_machine.Machine.matches_state}
    — at that instant the remainder is fully determined, so the
    executor reconstructs the tail from the survey's recorded final
    outcome and digest).  Everything the oracle and the report consume
    — [boundary], [restore], [final_digest], and the outcome's
    [completed], [skimmed] and [outage_count] — is bit-identical to the
    from-scratch run.  The outcome's cycle-accounting fields (wall,
    active, overhead, re-executed, checkpoint count) are reconstructed
    from the continuous run's tail, whose Clank watchdog phase can
    differ from a literal post-outage continuation; for those fields
    treat a keyframed run as its own deterministic quantity (identical
    across engines and jobs, not across [keyframes] on/off).

    [machine] is an optional scratch machine (from this scenario's
    [fresh]) whose entire state the call may clobber.  It is used only
    when a keyframe is restored into it — the restore overwrites every
    mutable field, and restoring along one keyframe chain into one
    long-lived machine touches only the pages that differ, so a caller
    sweeping many boundaries (one scratch machine per domain) skips the
    per-point machine construction and full-image copy.  Results are
    bit-identical with or without it. *)

type skim_cache
(** Cross-boundary memo for skim-commit tails.  The tail a reference
    run executes after the skim jump is a pure function of the machine
    state at the jump: memory image and latched target (Clank scrubs
    the register file first), plus registers and flags under NVP /
    always-on.  Consecutive boundaries share that state until a store
    or a fresh [Skm] changes it, so one cached tail serves whole runs
    of boundaries.  Mutex-protected and safe to share across pool
    domains; cached results equal what re-execution would produce (by
    machine determinism), so reports are byte-identical with or
    without a cache, at any pool width. *)

val skim_cache : unit -> skim_cache

val skim_reference :
  ?max_steps:int ->
  ?keyframes:keyframes ->
  ?cache:skim_cache ->
  ?prefix_digest:Digest.t ->
  ?machine:Wn_machine.Machine.t ->
  scenario ->
  boundary:int ->
  Digest.t option
(** Independent model of the paper's skim semantics at [boundary]: step
    a fresh machine [boundary] raw instructions, read the latched skim
    target ([None] if there is none), jump there — scrubbing the
    register file first under Clank — and run to halt; returns the
    final memory digest.  [keyframes] shortcut the prefix walk exactly
    as in {!run_point}.  With [cache], the tail is looked up before
    being executed; [prefix_digest] (the continuous run's memory digest
    at [boundary], e.g. from {!survey}) saves the cache-key digest
    recomputation and must match the machine's memory at [boundary] if
    supplied.  [machine] is a clobberable scratch machine under the
    same contract as in {!run_point}.  Raises [Invalid_argument] if
    [boundary] lies past the program's halt (the machine would
    otherwise be stepped while halted). *)

val check :
  profile:profile ->
  prefix_digest:Digest.t ->
  skim_ref:Digest.t option ->
  point_result ->
  string list
(** Oracle verdict for one injected point: the empty list, or one
    human-readable message per violated property.  [prefix_digest] is
    the continuous-run digest at the point's boundary; [skim_ref] is
    {!skim_reference} at that boundary (only consulted when a skim
    commit is expected there). *)
