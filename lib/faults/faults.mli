(** Deterministic outage-point fault injection with a crash-consistency
    oracle.

    The trace-driven supplies exercise outages only where the energy
    model happens to put them — a vanishingly small slice of the
    outage-point space.  This engine instead forces an outage at a
    *chosen instruction boundary* (boundary [k] = between the [k]'th and
    [k+1]'th retired instruction of the continuous run), using the
    machine step budget and a {!Wn_power.Supply.scripted} supply, and
    then audits the restore against three oracle properties:

    - (a) {b no torn state}: at the instant of restore, non-volatile
      memory is bit-identical to the image the continuous run had at
      that same boundary (FRAM writes are instruction-atomic; nothing
      the runtime does across an outage may touch memory);
    - (b) {b convergence}: if no skim point fires, re-execution reaches
      the continuous run's final memory image bit-exactly;
    - (c) {b anytime commit}: if a skim point fires, the early-committed
      memory image equals an independent reference that replays the
      paper's skim semantics (jump to the latched target at that
      boundary — registers scrubbed first on a volatile Clank core —
      and run to halt).

    All runs are deterministic: a scenario is a thunk producing a fresh,
    identically-loaded machine, so any number of injected runs can be
    farmed out to domains and re-merged in boundary order. *)

type scenario = {
  fresh : unit -> Wn_machine.Machine.t;
      (** Build a fresh machine positioned at task entry with inputs
          loaded.  Must be pure (same machine state every call) and
          thread-safe: injected runs call it from pool domains. *)
  policy : Wn_runtime.Executor.policy;
}

(** Continuous-run profile: everything the planner and oracle need,
    gathered in two instrumented passes (one raw stepping pass; for
    Clank, one executor pass to observe checkpoint placement). *)
type profile = {
  retired : int;  (** instructions retired by the continuous run *)
  final_digest : Digest.t;  (** memory image at halt *)
  first_skim : int option;
      (** boundary after which a skim target is latched, if any *)
  store_boundaries : int array;  (** boundaries following a store *)
  skm_boundaries : int array;  (** boundaries following an [Skm] *)
  checkpoint_boundaries : int array;
      (** retired counts at which the policy checkpointed (Clank) *)
}

val profile : ?max_steps:int -> scenario -> profile
(** Raises [Failure] if the program does not halt within [max_steps]
    (default one billion) instructions. *)

val prefix_digests :
  ?max_steps:int -> scenario -> boundaries:int array -> Digest.t array
(** Memory digests of the continuous run at each boundary of the
    strictly-ascending [boundaries] (all within [1, retired]), computed
    in one pass. *)

(** Machine state captured by the oracle at the instant restore
    completes (the [on_restore] hook). *)
type restore_state = {
  at_retired : int;  (** total retired instructions when the outage struck *)
  r_pc : int;
  r_regs : int array;
  r_flags : Wn_isa.Cond.flags;
  r_mem_digest : Digest.t;
}

type point_result = {
  boundary : int;
  outcome : Wn_runtime.Executor.outcome;
  restore : restore_state option;  (** [None] if no outage fired *)
  final_digest : Digest.t;
}

val run_point :
  ?engine:Wn_runtime.Executor.engine ->
  ?off_cycles:int ->
  scenario ->
  boundary:int ->
  point_result
(** Run the task with exactly one forced outage at [boundary] (which
    must be within [1, retired - 1] for the outage to strike before
    halt).  [off_cycles] is the powered-off period served before
    restore (default {!Wn_power.Supply.default_off_cycles}). *)

val skim_reference :
  ?max_steps:int -> scenario -> boundary:int -> Digest.t option
(** Independent model of the paper's skim semantics at [boundary]: step
    a fresh machine [boundary] raw instructions, read the latched skim
    target ([None] if there is none), jump there — scrubbing the
    register file first under Clank — and run to halt; returns the
    final memory digest. *)

val check :
  profile:profile ->
  prefix_digest:Digest.t ->
  skim_ref:Digest.t option ->
  point_result ->
  string list
(** Oracle verdict for one injected point: the empty list, or one
    human-readable message per violated property.  [prefix_digest] is
    the continuous-run digest at the point's boundary; [skim_ref] is
    {!skim_reference} at that boundary (only consulted when a skim
    commit is expected there). *)
