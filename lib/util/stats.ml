let check_nonempty name a =
  if Array.length a = 0 then invalid_arg name

let mean a =
  check_nonempty "Stats.mean" a;
  Array.fold_left ( +. ) 0.0 a /. float_of_int (Array.length a)

let variance a =
  check_nonempty "Stats.variance" a;
  let m = mean a in
  let acc = Array.fold_left (fun s x -> s +. ((x -. m) *. (x -. m))) 0.0 a in
  acc /. float_of_int (Array.length a)

let rmse ~reference output =
  let n = Array.length reference in
  if n = 0 || Array.length output <> n then invalid_arg "Stats.rmse";
  let acc = ref 0.0 in
  for i = 0 to n - 1 do
    let d = output.(i) -. reference.(i) in
    acc := !acc +. (d *. d)
  done;
  sqrt (!acc /. float_of_int n)

let value_range a =
  check_nonempty "Stats.value_range" a;
  let lo = Array.fold_left min a.(0) a and hi = Array.fold_left max a.(0) a in
  hi -. lo

let nrmse ~reference output =
  let e = rmse ~reference output in
  let max_abs =
    Array.fold_left (fun m v -> Float.max m (abs_float v)) 0.0 reference
  in
  let scale = Float.max (value_range reference) max_abs in
  (* The epsilon only guards the degenerate all-zero reference (0/0);
     a genuine small scale must divide through, or every reference with
     range and magnitude below 1.0 (normalized sensor outputs) would
     have its error silently deflated. *)
  e /. Float.max 1e-12 scale

let nrmse_pct ~reference output = 100.0 *. nrmse ~reference output

let sorted a =
  let b = Array.copy a in
  (* Float.compare: a total order with NaNs first, and no polymorphic
     comparison (which boxes) on the aggregation hot path. *)
  Array.sort Float.compare b;
  b

let percentile a p =
  check_nonempty "Stats.percentile" a;
  if p < 0.0 || p > 100.0 then invalid_arg "Stats.percentile";
  let b = sorted a in
  let n = Array.length b in
  let rank = p /. 100.0 *. float_of_int (n - 1) in
  let lo = int_of_float (Float.floor rank) in
  let hi = int_of_float (Float.ceil rank) in
  if lo = hi then b.(lo)
  else
    let w = rank -. float_of_int lo in
    ((1.0 -. w) *. b.(lo)) +. (w *. b.(hi))

let median a = percentile a 50.0

let geomean a =
  check_nonempty "Stats.geomean" a;
  let acc =
    Array.fold_left
      (fun s x ->
        if x <= 0.0 then invalid_arg "Stats.geomean" else s +. log x)
      0.0 a
  in
  exp (acc /. float_of_int (Array.length a))
