(** Deterministic SplitMix64 pseudo-random number generator.

    Every stochastic component of the reproduction (voltage traces,
    sensor inputs, property tests' fixtures) draws from this generator so
    that experiments are reproducible from a seed alone. *)

type t

val create : int -> t
(** [create seed] makes an independent generator. *)

val copy : t -> t

val next_int64 : t -> int64
(** Uniform over all 2^64 patterns. *)

val int : t -> int -> int
(** [int t bound] is uniform in [\[0, bound)] — exactly uniform, by
    rejection sampling over the underlying 62-bit draw rather than a
    (modulo-biased) reduction.  [bound] must be > 0. *)

val float : t -> float -> float
(** [float t bound] is uniform in [\[0, bound)]. *)

val bool : t -> bool

val gaussian : t -> mu:float -> sigma:float -> float
(** Box–Muller normal deviate. *)

val split : t -> t
(** A statistically independent generator derived from [t]'s stream. *)
