(** Statistics used by the evaluation: the paper reports NRMSE as its
    quality metric and medians across trace runs. *)

val mean : float array -> float
(** Raises [Invalid_argument] on an empty array. *)

val variance : float array -> float
(** Population variance. *)

val rmse : reference:float array -> float array -> float
(** Root mean square error between an output and its reference.
    Arrays must have equal non-zero length. *)

val value_range : float array -> float
(** [max - min] of a non-empty array; raises [Invalid_argument
    "Stats.value_range"] on an empty one (like the rest of the
    module, rather than a bare index error). *)

val nrmse : reference:float array -> float array -> float
(** RMSE normalised by the reference's scale — the larger of its value
    range and its peak magnitude (stable even for short, clustered
    output vectors) — as a fraction (×100 for the paper's
    percentages).  A tiny epsilon guards only the degenerate all-zero
    reference; small but genuine scales (references entirely below 1.0
    in magnitude) divide through undamped. *)

val nrmse_pct : reference:float array -> float array -> float
(** [nrmse] expressed in percent. *)

val median : float array -> float
(** Median of a non-empty array (does not mutate its argument). *)

val percentile : float array -> float -> float
(** [percentile a p] for [p] in [\[0, 100\]], nearest-rank with linear
    interpolation.  Sorting uses [Float.compare]'s total order, so
    NaNs are well-defined: they sort before every number. *)

val geomean : float array -> float
(** Geometric mean of positive values. *)
