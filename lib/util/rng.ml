type t = { mutable state : int64 }

let golden_gamma = 0x9E3779B97F4A7C15L

let mix64 z =
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = Int64.mul (Int64.logxor z (Int64.shift_right_logical z 27)) 0x94D049BB133111EBL in
  Int64.logxor z (Int64.shift_right_logical z 31)

let create seed = { state = mix64 (Int64.of_int seed) }

let copy t = { state = t.state }

let next_int64 t =
  t.state <- Int64.add t.state golden_gamma;
  mix64 t.state

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int";
  (* Rejection sampling over the 62-bit draw: reducing every draw mod
     [bound] over-weights the residues below [2^62 mod bound].  Draws
     past the last whole multiple of [bound] are redrawn; acceptance
     probability is >= 1 - bound/2^62, so for the simulator's small
     bounds a redraw essentially never fires and existing seeded
     streams are unchanged. *)
  (* 2^62 itself overflows the 63-bit native int, so express the
     acceptance region as r <= max_int - (2^62 mod bound), computed
     from max_int = 2^62 - 1 without ever forming 2^62. *)
  let rem = (((max_int mod bound) + 1) mod bound) (* = 2^62 mod bound *) in
  let accept_max = max_int - rem in
  let rec draw () =
    let r = Int64.to_int (Int64.shift_right_logical (next_int64 t) 2) in
    if r <= accept_max then r mod bound else draw ()
  in
  draw ()

let float t bound =
  let r = Int64.to_float (Int64.shift_right_logical (next_int64 t) 11) in
  (* 53 significant bits, uniform in [0, 1). *)
  r /. 9007199254740992.0 *. bound

let bool t = Int64.logand (next_int64 t) 1L = 1L

let gaussian t ~mu ~sigma =
  let rec nonzero () =
    let u = float t 1.0 in
    if u > 0.0 then u else nonzero ()
  in
  let u1 = nonzero () and u2 = float t 1.0 in
  mu +. (sigma *. sqrt (-2.0 *. log u1) *. cos (2.0 *. Float.pi *. u2))

let split t = { state = mix64 (next_int64 t) }
