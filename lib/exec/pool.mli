(** A fixed-size domain pool for the experiment engine.

    Every experiment unit in this repo — one (workload, config, trace,
    invocation) simulation — is a pure function of its seeds: the
    machine, memory, capacitor and RNG are all built inside the unit,
    and the only shared values (compiled programs, harvesting traces)
    are immutable after construction.  That makes the evaluation
    embarrassingly parallel, and OCaml 5 domains give it multicore with
    no new dependencies.

    The pool owns [jobs - 1] worker domains fed from a
    [Mutex]/[Condition]-protected work queue; the caller of {!run}
    participates in draining the queue, so nested [run] calls from
    inside a task cannot deadlock and total concurrency stays at
    [jobs]. *)

type t
(** A pool of worker domains.  Values of this type are usable from any
    domain; a pool must be {!shutdown} exactly once. *)

val default_jobs : unit -> int
(** [Domain.recommended_domain_count ()] (at least 1).  Uncapped: the
    fleet driver keeps tens of thousands of units in flight, so the
    former cap of 8 left larger machines mostly idle.  Callers that
    want fewer domains pass [~jobs] explicitly. *)

val create : ?jobs:int -> unit -> t
(** [create ~jobs ()] spawns [jobs - 1] worker domains (none for
    [jobs = 1]).  Raises [Invalid_argument] if [jobs < 1].  Default:
    {!default_jobs}. *)

val jobs : t -> int
(** The concurrency level (worker domains plus the participating
    caller). *)

val run : t -> ('a -> 'b) -> 'a list -> 'b list
(** [run t f xs] applies [f] to every element of [xs] on the pool and
    returns the results {e in input order}.  With [jobs = 1] (or a
    singleton/empty list) [f] runs entirely in the caller — no domain
    is involved.  If any application raises, the first exception (in
    completion order) is re-raised in the caller with its backtrace
    once the batch has drained; remaining queued tasks of the batch
    are skipped. *)

val map_batches : t -> batch:int -> ('a array -> 'b) -> 'a array -> 'b list
(** [map_batches t ~batch f xs] splits [xs] into contiguous chunks of
    [batch] elements (the last may be shorter) and applies [f] to each
    chunk on the pool, returning chunk results {e in chunk order}.
    Chunks are pulled dynamically off the shared queue, so load
    balancing is per-chunk while queue synchronisation is amortised
    over [batch] elements.  The partition depends only on [batch] and
    [Array.length xs] — never on the pool width — which is what lets an
    order-sensitive fold of the chunk results (e.g. merging streaming
    aggregates) stay bit-identical at any [jobs].  Raises
    [Invalid_argument] if [batch < 1]. *)

val shutdown : t -> unit
(** Joins all worker domains.  Idempotent. *)

val map : jobs:int -> ('a -> 'b) -> 'a list -> 'b list
(** One-shot convenience: [create], {!run}, [shutdown].  [jobs = 1]
    degrades to [List.map] in the caller; the pool size is additionally
    capped at the list length so [jobs > tasks] spawns no idle
    domains.  [jobs < 1] raises [Invalid_argument] — a zero or negative
    pool width is a caller bug, and clamping it silently would hide a
    mistuned sweep configuration (matching {!create}). *)
