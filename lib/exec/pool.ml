(* A fixed-size domain pool with a Mutex/Condition work queue.

   Workers block on [work] waiting for thunks; [run] enqueues one thunk
   per list element and then the caller itself drains the queue until
   its batch completes.  Caller participation is what makes nested
   [run] calls (a parallel figure whose units themselves fan out) safe:
   a task that starts a sub-batch keeps executing queued work — its own
   sub-tasks or anyone else's — instead of blocking a worker slot. *)

type t = {
  jobs : int;
  mutex : Mutex.t;
  work : Condition.t;  (* signalled when the queue gains work / at shutdown *)
  queue : (unit -> unit) Queue.t;
  mutable stop : bool;
  mutable domains : unit Domain.t list;
}

let default_jobs () = max 1 (Domain.recommended_domain_count ())

let rec worker t =
  Mutex.lock t.mutex;
  let rec next () =
    if not (Queue.is_empty t.queue) then Some (Queue.pop t.queue)
    else if t.stop then None
    else begin
      Condition.wait t.work t.mutex;
      next ()
    end
  in
  match next () with
  | None -> Mutex.unlock t.mutex
  | Some task ->
      Mutex.unlock t.mutex;
      task ();
      worker t

let create ?jobs () =
  let jobs = match jobs with Some j -> j | None -> default_jobs () in
  if jobs < 1 then invalid_arg "Pool.create";
  let t =
    {
      jobs;
      mutex = Mutex.create ();
      work = Condition.create ();
      queue = Queue.create ();
      stop = false;
      domains = [];
    }
  in
  t.domains <- List.init (jobs - 1) (fun _ -> Domain.spawn (fun () -> worker t));
  t

let jobs t = t.jobs

let shutdown t =
  Mutex.lock t.mutex;
  t.stop <- true;
  Condition.broadcast t.work;
  Mutex.unlock t.mutex;
  List.iter Domain.join t.domains;
  t.domains <- []

let run t f xs =
  match xs with
  | [] -> []
  | [ x ] -> [ f x ]
  | xs when t.jobs = 1 -> List.map f xs
  | xs ->
      let input = Array.of_list xs in
      let n = Array.length input in
      let results = Array.make n None in
      let remaining = ref n in
      let failed = ref None in
      let batch_done = Condition.create () in
      let task i () =
        let skip =
          Mutex.lock t.mutex;
          let s = !failed <> None in
          Mutex.unlock t.mutex;
          s
        in
        (if not skip then
           match f input.(i) with
           | r -> results.(i) <- Some r
           | exception e ->
               let bt = Printexc.get_raw_backtrace () in
               Mutex.lock t.mutex;
               if !failed = None then failed := Some (e, bt);
               Mutex.unlock t.mutex);
        Mutex.lock t.mutex;
        decr remaining;
        if !remaining = 0 then Condition.broadcast batch_done;
        Mutex.unlock t.mutex
      in
      Mutex.lock t.mutex;
      for i = 0 to n - 1 do
        Queue.push (task i) t.queue
      done;
      Condition.broadcast t.work;
      let rec drive () =
        if !remaining > 0 then
          if not (Queue.is_empty t.queue) then begin
            let next = Queue.pop t.queue in
            Mutex.unlock t.mutex;
            next ();
            Mutex.lock t.mutex;
            drive ()
          end
          else begin
            Condition.wait batch_done t.mutex;
            drive ()
          end
      in
      drive ();
      Mutex.unlock t.mutex;
      (match !failed with
      | Some (e, bt) -> Printexc.raise_with_backtrace e bt
      | None -> ());
      Array.to_list
        (Array.map (function Some r -> r | None -> assert false) results)

(* Batch scheduler: one queued thunk per contiguous chunk instead of
   one per element.  Workers pull whole chunks off the shared queue, so
   load balancing stays dynamic (a slow chunk does not hold up the
   others) while the per-task queue synchronisation is amortised over
   [batch] elements — the fleet driver feeds hundreds of thousands of
   units through here.  Results come back in chunk order, so the
   partition (and therefore any order-sensitive aggregation of the
   chunk results) is a function of [batch] alone, never of the pool
   width. *)
let map_batches t ~batch f xs =
  if batch < 1 then invalid_arg "Pool.map_batches: batch must be >= 1";
  let n = Array.length xs in
  if n = 0 then []
  else
    let n_batches = (n + batch - 1) / batch in
    let chunk b =
      let lo = b * batch in
      Array.sub xs lo (min batch (n - lo))
    in
    run t (fun b -> f (chunk b)) (List.init n_batches Fun.id)

let map ~jobs f xs =
  if jobs < 1 then invalid_arg "Pool.map: jobs must be >= 1"
  else if jobs = 1 then List.map f xs
  else
    let t = create ~jobs:(min jobs (max 1 (List.length xs))) () in
    Fun.protect ~finally:(fun () -> shutdown t) (fun () -> run t f xs)
