(** One entry point per table/figure of the paper's evaluation.  Each
    function runs the experiment and prints the rows/series the paper
    reports; the bench harness and the CLI both drive these. *)

open Wn_workloads

type options = {
  scale : Workload.scale;
  seed : int;
  setup : Intermittent.setup;  (** traces × invocations × samples *)
  out_dir : string option;  (** where figure images (PGM) are written *)
  jobs : int;
      (** domain-pool width for the experiment fan-out (see
          {!Wn_exec.Pool}).  Per-kernel/per-config jobs for the curve
          and earliest-output figures, per-(trace × invocation) units
          for the intermittent ones.  Output is bit-identical for every
          value. *)
}

val default_options : options
(** Small scale, 3 traces × 1 × 2, no image output, 1 job. *)

val table1 : Format.formatter -> options -> unit
val fig2 : Format.formatter -> options -> unit
(** Conv2d outputs: precise, precise at 50% runtime, WN at 50% runtime
    (written as PGM when [out_dir] is set; summary statistics always
    printed). *)

val fig3 : Format.formatter -> options -> unit
val fig9 : Format.formatter -> options -> unit
val fig10 : Format.formatter -> options -> unit
val fig11 : Format.formatter -> options -> unit
val fig12 : Format.formatter -> options -> unit
val fig13 : Format.formatter -> options -> unit
val fig14 : Format.formatter -> options -> unit
val fig15 : Format.formatter -> options -> unit
val fig16 : Format.formatter -> options -> unit
val fig17 : Format.formatter -> options -> unit
val area_power : Format.formatter -> options -> unit

(** Ablations beyond the paper (see DESIGN.md's design-decision list):
    memo-table size, Clank watchdog period, energy-per-cycle
    calibration, and subword granularity across the whole suite. *)

val ext_sqrt : Format.formatter -> options -> unit
(** The footnote-3 extension: anytime square root (SQRT_ASP stages). *)

val ablation_memo : Format.formatter -> options -> unit
val ablation_watchdog : Format.formatter -> options -> unit
val ablation_energy : Format.formatter -> options -> unit
val ablation_subword : Format.formatter -> options -> unit

val all : (string * (Format.formatter -> options -> unit)) list
(** Experiment id → runner, in paper order. *)

val run : Format.formatter -> options -> string -> (unit, string) result
(** Run one experiment by id (e.g. ["fig9"], ["table1"]). *)
