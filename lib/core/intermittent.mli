(** Intermittent-execution evaluation (Figures 10 and 11).

    A stream of input samples is processed under a harvesting supply,
    once with the precise build and once with the anytime (WN) build,
    on the same voltage traces.  The precise build runs every task to
    completion across outages; the WN build commits its approximate
    output at the first outage past a skim point and moves to the next
    sample — the paper's as-is semantics.  Speedup is the median ratio
    of per-sample wall-clock times; quality is the median NRMSE of the
    committed outputs. *)

open Wn_workloads

type system = Clank | Nvp

val system_name : system -> string

val policy :
  ?clank:Wn_runtime.Executor.clank_config ->
  system ->
  Wn_runtime.Executor.policy
(** The executor policy for a system model ([?clank] overrides the
    Clank tuning; NVP always uses the default wake-up latency). *)

type task_measure = {
  wall : int;  (** wall-clock cycles, off-time included *)
  active : int;  (** cycles spent executing instructions *)
  overhead : int;  (** checkpoint + restore cycles *)
  out : float array;  (** decoded output at task end *)
  skimmed : bool;
  outages : int;
  reexec_frac : float;  (** fraction of retired work that was rollback re-execution *)
  energy_j : float;  (** joules drained from the supply by this task *)
  ok : bool;  (** task ran to completion (possibly via skim) *)
}

val run_stream :
  ?capacitor:Wn_power.Capacitor.t ->
  ?engine:Wn_runtime.Executor.engine ->
  cycle_energy:float ->
  Runner.build ->
  Wn_runtime.Executor.policy ->
  Wn_power.Trace.t ->
  (string * int array) list list ->
  task_measure list
(** The per-device unit runner: process a stream of pre-generated input
    samples on one fresh machine under one harvesting supply (the
    capacitor state carries over between samples, as on a real device).
    Pure in its arguments — the machine, supply and capacitor are built
    inside — so any number of streams can run on pool domains sharing
    one immutable [Runner.build].  Used by the figure drivers here and
    by the fleet driver ({!Wn_fleet.Fleet} in lib/fleet).  [engine]
    (default [Block]) selects the executor's stepping engine; all
    engines produce bit-identical measures, the choice only affects
    simulation speed. *)

type result = {
  workload : string;
  bits : int;
  system : system;
  speedup : float;  (** median per-sample wall-time ratio *)
  nrmse : float;  (** median committed-output NRMSE, percent *)
  skim_rate : float;  (** fraction of WN tasks that finished via skim *)
  outages_per_task : float;  (** mean, WN build *)
  baseline_reexec : float;
      (** mean fraction of the precise build's instructions that were
          rollback re-execution (0 on NVP) *)
  samples : int;  (** total measured samples *)
}

type setup = {
  n_traces : int;  (** voltage traces (paper: 9) *)
  invocations : int;  (** invocations per trace (paper: 3) *)
  samples_per_run : int;  (** stream samples per invocation *)
  trace_seed : int;
  input_seed : int;
  clank_config : Wn_runtime.Executor.clank_config;
  cycle_energy : float;  (** joules per cycle (ablation knob) *)
  engine : Wn_runtime.Executor.engine;
      (** stepping engine for every run (default [Block]); results are
          bit-identical across engines *)
}

val default_setup : setup
(** 3 traces × 1 invocation × 2 samples — sized for CI; pass the paper
    setup (9 × 3) for the full experiment. *)

val paper_setup : setup

val run :
  ?jobs:int -> ?setup:setup -> system:system -> bits:int -> Workload.t -> result
(** [jobs] (default 1) fans the (trace × invocation) experiment units
    over a {!Wn_exec.Pool} of that many domains.  Each unit is a pure
    function of its seeds — trace, RNG, machine, memory and capacitor
    are all built inside the unit — and per-unit partial results are
    concatenated in unit order, so the result is bit-identical for
    every [jobs] value. *)

val pp : Format.formatter -> result -> unit
