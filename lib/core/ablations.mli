(** Ablation studies over the design knobs DESIGN.md calls out —
    sweeps beyond the paper's own figures, using the same measurement
    machinery. *)

open Wn_workloads

(** {2 Memoization table size (paper footnote 5)} *)

type memo_point = {
  entries : int option;  (** [None] = no table *)
  memo_speedup : float;  (** earliest-output speedup, Conv2d 4-bit *)
  hit_rate : float;  (** table hits / multiply lookups *)
}

val memo_sweep :
  ?jobs:int -> ?seed:int -> ?sizes:int list -> Workload.scale -> memo_point list
(** Default sizes: 4, 8, 16, 32, 64 (plus the no-table baseline).
    [jobs] computes the sweep points on a {!Wn_exec.Pool}. *)

(** {2 Clank watchdog period} *)

type watchdog_point = {
  period : int;
  wd_speedup : float;  (** WN speedup over the baseline at this period *)
  baseline_reexec : float;  (** mean re-executed fraction of the precise build *)
}

val watchdog_sweep :
  ?jobs:int -> ?periods:int list -> ?setup:Intermittent.setup ->
  Workload.scale -> watchdog_point list
(** Sweeps the checkpoint watchdog on the Var benchmark (4-bit).
    Periods larger than a charge burst strand the baseline in
    re-execution — the pathology skim points remove.  [jobs] fans out
    each point's (trace × invocation) units, not the few sweep
    points. *)

(** {2 Energy per cycle (burst-length calibration)} *)

type energy_point = {
  cycle_energy : float;
  burst_cycles : int;  (** cycles a full 10 µF charge sustains *)
  energy_speedup : float;  (** Var 4-bit on Clank *)
}

val energy_sweep :
  ?jobs:int -> ?energies:float list -> ?setup:Intermittent.setup ->
  Workload.scale -> energy_point list
(** [jobs] fans out each point's (trace × invocation) units. *)

(** {2 Subword granularity across the suite (Figure 15, generalised)} *)

type subword_point = {
  workload : string;
  bits : int;
  sw_speedup : float;  (** earliest-output speedup *)
  sw_nrmse : float;
}

val subword_sweep :
  ?jobs:int -> ?seed:int -> ?bits_list:int list -> Workload.scale ->
  subword_point list
(** Defaults: every benchmark at 2/4/8-bit subwords (SWV kernels only at
    4 and 8, their legal sizes).  [jobs] computes the (workload × bits)
    points on a {!Wn_exec.Pool}. *)

val pp_memo : Format.formatter -> memo_point list -> unit
val pp_watchdog : Format.formatter -> watchdog_point list -> unit
val pp_energy : Format.formatter -> energy_point list -> unit
val pp_subword : Format.formatter -> subword_point list -> unit
