open Wn_workloads

type row = {
  bench : string;
  bits : int;
  precise_retired : int;
  anytime_retired : int;
  anytime_retired_noopt : int;
  wn_pct : float;
  reduction_pct : float;
}

type report = {
  scale : Workload.scale;
  seed : int;
  rows : row list;
  scenarios : (string * int) list;
}

(* One completed always-on task; the retired-instruction count is a
   pure function of the compiled program and the inputs. *)
let retired_of build inputs =
  let machine = Runner.machine build in
  Runner.load_sample build machine inputs;
  let o = Runner.run_always_on build machine in
  if not o.Wn_runtime.Executor.completed then
    failwith ("Insn: " ^ build.Runner.workload.Workload.name
              ^ " did not complete under continuous power");
  (o.Wn_runtime.Executor.retired, Wn_machine.Machine.wn_instructions machine)

let row ~seed ~bits (w : Workload.t) =
  let cfg = { Workload.bits; provisioned = true } in
  let rng = Wn_util.Rng.create seed in
  let inputs = w.Workload.fresh_inputs rng in
  let anytime = Runner.build w cfg in
  let noopt =
    Runner.build ~passes:Wn_compiler.Compile.no_passes w cfg
  in
  let precise = Runner.build ~precise:true w cfg in
  let anytime_retired, wn = retired_of anytime inputs in
  let anytime_retired_noopt, _ = retired_of noopt inputs in
  let precise_retired, _ = retired_of precise inputs in
  {
    bench = w.Workload.name;
    bits;
    precise_retired;
    anytime_retired;
    anytime_retired_noopt;
    wn_pct = 100.0 *. float_of_int wn /. float_of_int anytime_retired;
    reduction_pct =
      100.0
      *. float_of_int (anytime_retired_noopt - anytime_retired)
      /. float_of_int anytime_retired_noopt;
  }

(* The CI gate's scenario counter: the Var workload under the Clank
   runtime on an always-on supply — the same run the
   fig10:executor_clank_shadowmap microbenchmark times, counted in
   retired instructions instead of nanoseconds so the gate is
   deterministic across machines. *)
let shadowmap_key = "fig10:executor_clank_shadowmap"

let shadowmap_retired ~seed scale =
  let w = Suite.find scale "Var" in
  let cfg = { Workload.bits = 8; provisioned = true } in
  let rng = Wn_util.Rng.create seed in
  let inputs = w.Workload.fresh_inputs rng in
  let build = Runner.build w cfg in
  let machine = Runner.machine build in
  Runner.load_sample build machine inputs;
  let o =
    Wn_runtime.Executor.run
      ~policy:(Wn_runtime.Executor.Clank Wn_runtime.Executor.default_clank)
      ~machine
      ~supply:(Wn_power.Supply.always_on ())
      ()
  in
  if not o.Wn_runtime.Executor.completed then
    failwith "Insn: shadowmap scenario did not complete";
  o.Wn_runtime.Executor.retired

let measure ?(seed = 7) ?(bits = 8) ?(scale = Workload.Small) benches =
  let rows = List.map (row ~seed ~bits) benches in
  let scenarios = [ (shadowmap_key, shadowmap_retired ~seed scale) ] in
  { scale; seed; rows; scenarios }

let pp ppf r =
  Format.fprintf ppf
    "%-10s %12s %12s %12s %8s %8s@." "Benchmark" "precise" "anytime"
    "anytime-O0" "Insn %" "saved";
  List.iter
    (fun row ->
      Format.fprintf ppf "%-10s %12d %12d %12d %7.2f%% %7.2f%%@." row.bench
        row.precise_retired row.anytime_retired row.anytime_retired_noopt
        row.wn_pct row.reduction_pct)
    r.rows;
  List.iter
    (fun (k, v) -> Format.fprintf ppf "%s: %d retired@." k v)
    r.scenarios

(* Flat machine-readable form: one counter per line, mirroring the
   BENCH_machine.json shape so the CI gate can diff the two runs. *)
let json r =
  let counters =
    List.concat_map
      (fun row ->
        [
          (Printf.sprintf "insn:%s[build=precise]" row.bench,
           row.precise_retired);
          (Printf.sprintf "insn:%s[build=anytime]" row.bench,
           row.anytime_retired);
          (Printf.sprintf "insn:%s[build=anytime-O0]" row.bench,
           row.anytime_retired_noopt);
        ])
      r.rows
    @ r.scenarios
  in
  let buf = Buffer.create 512 in
  Buffer.add_string buf "{\n  \"schema\": \"wn-insn/1\",\n";
  Buffer.add_string buf "  \"unit\": \"retired instructions\",\n";
  Buffer.add_string buf "  \"results\": {";
  List.iteri
    (fun i (k, v) ->
      Buffer.add_string buf (if i = 0 then "\n" else ",\n");
      Buffer.add_string buf (Printf.sprintf "    %S: %d" k v))
    counters;
  Buffer.add_string buf "\n  }\n}\n";
  Buffer.contents buf

(* Minimal parser for the flat baseline: every ["key": number] pair in
   the file.  Tolerates the wn-bench schema too (floats truncate). *)
let parse_counters text =
  let n = String.length text in
  let out = ref [] in
  let i = ref 0 in
  while !i < n do
    if text.[!i] = '"' then begin
      let start = !i + 1 in
      let j = ref start in
      while !j < n && text.[!j] <> '"' do incr j done;
      let key = String.sub text start (!j - start) in
      let k = ref (!j + 1) in
      while !k < n && (text.[!k] = ' ' || text.[!k] = '\t') do incr k done;
      if !k < n && text.[!k] = ':' then begin
        incr k;
        while !k < n && (text.[!k] = ' ' || text.[!k] = '\t') do incr k done;
        let s = !k in
        while
          !k < n
          && (match text.[!k] with
             | '0' .. '9' | '-' | '.' | 'e' | 'E' | '+' -> true
             | _ -> false)
        do
          incr k
        done;
        if !k > s then
          match float_of_string_opt (String.sub text s (!k - s)) with
          | Some v -> out := (key, int_of_float v) :: !out
          | None -> ()
      end;
      i := !k
    end
    else incr i
  done;
  List.rev !out

type regression = { key : string; baseline : int; current : int }

(* A counter regresses when it exceeds its committed baseline; missing
   keys on either side are skipped (new benchmarks are not gated until
   the baseline is re-recorded). *)
let check ~baseline r =
  let base = parse_counters baseline in
  let current =
    List.map
      (fun row ->
        [
          (Printf.sprintf "insn:%s[build=precise]" row.bench,
           row.precise_retired);
          (Printf.sprintf "insn:%s[build=anytime]" row.bench,
           row.anytime_retired);
        ])
      r.rows
    |> List.concat
  in
  let current = current @ r.scenarios in
  List.filter_map
    (fun (key, current) ->
      match List.assoc_opt key base with
      | Some baseline when current > baseline ->
          Some { key; baseline; current }
      | _ -> None)
    current
