(** Runtime–quality trade-off curves (Figures 9, 12 and 14).

    The curve samples the output's NRMSE at regular active-cycle
    intervals while the anytime build runs under continuous power; the
    x axis is normalised to the precise build's runtime on the same
    inputs, exactly as in the paper's plots. *)

open Wn_workloads

type point = { runtime : float;  (** normalised to the precise build *) nrmse : float  (** percent *) }

type curve = {
  workload : string;
  bits : int;
  provisioned : bool;
  vector_loads : bool;
  baseline_cycles : int;  (** precise build, always-on *)
  anytime_cycles : int;  (** anytime build to the final (precise) output *)
  final_nrmse : float;  (** error once the anytime build finishes *)
  points : point list;
}

val runtime_quality :
  ?points:int ->
  ?vector_loads:bool ->
  ?provisioned:bool ->
  seed:int ->
  bits:int ->
  Workload.t ->
  curve
(** [points] (default 48) controls the snapshot density. *)

val suite :
  ?jobs:int ->
  ?points:int ->
  ?vector_loads:bool ->
  ?provisioned:bool ->
  seed:int ->
  bits_list:int list ->
  Workload.t list ->
  curve list
(** One curve per (workload × bits) config, workload-major, in input
    order.  [jobs] (default 1) computes the configs on a
    {!Wn_exec.Pool}; curves are pure functions of their seeds, so the
    list is identical for every [jobs] value. *)

val pp : Format.formatter -> curve -> unit
(** CSV-like rows: normalised runtime, NRMSE%. *)
