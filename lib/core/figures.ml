open Wn_workloads

type options = {
  scale : Workload.scale;
  seed : int;
  setup : Intermittent.setup;
  out_dir : string option;
  jobs : int;
}

let default_options =
  { scale = Workload.Small; seed = 7; setup = Intermittent.default_setup;
    out_dir = None; jobs = 1 }

let hr ppf title = Format.fprintf ppf "@.=== %s ===@." title

let write_image opts name ~width ~height pixels =
  match opts.out_dir with
  | None -> None
  | Some dir ->
      if not (Sys.file_exists dir) then Sys.mkdir dir 0o755;
      let path = Filename.concat dir (name ^ ".pgm") in
      Image.write_pgm ~path ~width ~height pixels;
      Some path

(* ------------------------------------------------------------------ *)

let table1 ppf opts =
  hr ppf "Table I: benchmark suite";
  Table1.pp ppf (Table1.rows ~seed:opts.seed ~bits:8 opts.scale)

(* ------------------------------------------------------------------ *)

let fig2 ppf opts =
  hr ppf "Figure 2: Conv2d output, baseline vs WN at 50% runtime";
  let w = Suite.find opts.scale "Conv2d" in
  let p = Conv2d.params opts.scale in
  let cfg = { Workload.bits = 8; provisioned = true } in
  let rng = Wn_util.Rng.create opts.seed in
  let inputs = w.Workload.fresh_inputs rng in
  let anytime = Runner.build w cfg in
  let reference, baseline = Runner.precise_reference anytime inputs in
  let half_run build =
    let machine = Runner.machine build in
    Runner.load_sample build machine inputs;
    let _ =
      Wn_runtime.Executor.run ~max_wall_cycles:(baseline / 2) ~machine
        ~supply:(Wn_power.Supply.always_on ()) ()
    in
    Runner.output build machine
  in
  let precise_half = half_run (Runner.build ~precise:true w cfg) in
  let wn_half = half_run anytime in
  let pixels raw = Image.nrmse_to_pixels raw ~scale:Conv2d.output_scale in
  let describe name out =
    let nonzero =
      Array.fold_left (fun n v -> if v <> 0.0 then n + 1 else n) 0 out
    in
    Format.fprintf ppf
      "%-24s NRMSE %7.3f%%  pixels written %4.1f%%%s@." name
      (Runner.nrmse_pct ~reference out)
      (100.0 *. float_of_int nonzero /. float_of_int (Array.length out))
      (match
         write_image opts ("fig2_" ^ name) ~width:p.Conv2d.width
           ~height:p.Conv2d.height (pixels out)
       with
      | Some path -> "  -> " ^ path
      | None -> "")
  in
  describe "baseline_100pct" reference;
  describe "baseline_50pct" precise_half;
  describe "wn_8bit_50pct" wn_half;
  Format.fprintf ppf
    "(the 50%%-runtime baseline leaves the image partial; WN covers it \
     entirely at reduced precision)@."

(* ------------------------------------------------------------------ *)

let fig3 ppf opts =
  hr ppf "Figure 3: blood glucose, input sampling vs anytime processing";
  let g = Sampling.glucose_study ~seed:opts.seed ~bits:4 opts.scale in
  Format.fprintf ppf "%-7s %9s %9s %9s@." "time" "clinical" "sampled" "anytime";
  List.iter
    (fun (r : Sampling.glucose_row) ->
      Format.fprintf ppf "%-7s %9.1f %9s %9.1f%s@." r.Sampling.clock
        r.Sampling.clinical
        (match r.Sampling.sampled with
        | Some v -> Printf.sprintf "%.1f" v
        | None -> "-")
        r.Sampling.anytime
        (if r.Sampling.clinical < Glucose.critical_threshold then "  << critical"
         else ""))
    g.Sampling.readings;
  Format.fprintf ppf
    "critical events: %d | detected by sampling: %d | by anytime: %d@."
    g.Sampling.total_dips g.Sampling.sampled_detected g.Sampling.anytime_detected;
  Format.fprintf ppf
    "anytime mean error %.2f%% (paper: 7.5%%; ISO bound 20%%), measured \
     precise/anytime cost ratio %.2f@."
    g.Sampling.anytime_mean_err_pct g.Sampling.cost_ratio

(* ------------------------------------------------------------------ *)

let print_curve ppf (c : Curves.curve) =
  Format.fprintf ppf "# %s %d-bit%s%s@." c.Curves.workload c.Curves.bits
    (if c.Curves.provisioned then "" else " unprovisioned")
    (if c.Curves.vector_loads then " +vector-loads" else "");
  Format.fprintf ppf "#   baseline %d cycles; precise output reached at %.2fx \
                      (final NRMSE %.4f%%)@."
    c.Curves.baseline_cycles
    (float_of_int c.Curves.anytime_cycles /. float_of_int c.Curves.baseline_cycles)
    c.Curves.final_nrmse;
  let pts = Array.of_list c.Curves.points in
  let n = Array.length pts in
  let step = max 1 (n / 12) in
  Format.fprintf ppf "#   runtime(norm) : ";
  Array.iteri
    (fun i p -> if i mod step = 0 then Format.fprintf ppf "%6.2f " p.Curves.runtime)
    pts;
  Format.fprintf ppf "@.#   NRMSE(%%)      : ";
  Array.iteri
    (fun i p -> if i mod step = 0 then Format.fprintf ppf "%6.2f " p.Curves.nrmse)
    pts;
  Format.fprintf ppf "@."

let fig9 ppf opts =
  hr ppf "Figure 9: runtime-quality trade-off curves (4-bit and 8-bit)";
  List.iter (print_curve ppf)
    (Curves.suite ~jobs:opts.jobs ~seed:opts.seed ~bits_list:[ 4; 8 ]
       (Suite.all opts.scale))

(* ------------------------------------------------------------------ *)

let intermittent_figure ppf opts system title =
  hr ppf title;
  Format.fprintf ppf
    "(setup: %d traces x %d invocations x %d samples; paper: 9 x 3)@."
    opts.setup.Intermittent.n_traces opts.setup.Intermittent.invocations
    opts.setup.Intermittent.samples_per_run;
  Format.fprintf ppf "%-10s %6s %9s %9s %10s %9s@." "benchmark" "bits"
    "speedup" "NRMSE" "skim-rate" "outages";
  let speedups = Hashtbl.create 4 in
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun bits ->
          let r =
            Intermittent.run ~jobs:opts.jobs ~setup:opts.setup ~system ~bits w
          in
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt speedups bits)
          in
          Hashtbl.replace speedups bits (r.Intermittent.speedup :: existing);
          Format.fprintf ppf "%-10s %6d %8.2fx %8.2f%% %9.0f%% %9.1f@."
            r.Intermittent.workload bits r.Intermittent.speedup
            r.Intermittent.nrmse
            (100.0 *. r.Intermittent.skim_rate)
            r.Intermittent.outages_per_task)
        [ 8; 4 ])
    (Suite.all opts.scale);
  List.iter
    (fun bits ->
      match Hashtbl.find_opt speedups bits with
      | Some xs ->
          Format.fprintf ppf "geomean speedup (%d-bit): %.2fx@." bits
            (Wn_util.Stats.geomean (Array.of_list xs))
      | None -> ())
    [ 8; 4 ]

let fig10 ppf opts =
  intermittent_figure ppf opts Intermittent.Clank
    "Figure 10: speedup & quality on the checkpoint-based volatile processor"

let fig11 ppf opts =
  intermittent_figure ppf opts Intermittent.Nvp
    "Figure 11: speedup & quality on the non-volatile processor"

(* ------------------------------------------------------------------ *)

let fig12 ppf opts =
  hr ppf "Figure 12: MatMul SWP with and without vectorized subword loads";
  let w = Suite.find opts.scale "MatMul" in
  let runs =
    Wn_exec.Pool.map ~jobs:opts.jobs
      (fun bits ->
        ( bits,
          Earliest.earliest ~seed:opts.seed ~bits w,
          Earliest.earliest ~vector_loads:true ~seed:opts.seed ~bits w ))
      [ 8; 4 ]
  in
  List.iter
    (fun (bits, plain, vec) ->
      Format.fprintf ppf
        "%d-bit: earliest output %7d cycles plain, %7d vectorized -> %.2fx \
         earlier (paper: %s), NRMSE %.3f%% both@."
        bits plain.Earliest.active_cycles vec.Earliest.active_cycles
        (float_of_int plain.Earliest.active_cycles
        /. float_of_int vec.Earliest.active_cycles)
        (if bits = 8 then "1.08x" else "1.24x")
        vec.Earliest.nrmse)
    runs

(* ------------------------------------------------------------------ *)

let fig13 ppf opts =
  hr ppf "Figure 13: memoization and zero skipping (Conv2d, earliest output)";
  let w = Suite.find opts.scale "Conv2d" in
  let row name speedup err =
    Format.fprintf ppf "%-24s %5.2fx  (NRMSE %.2f%%)@." name speedup err
  in
  let rows =
    Wn_exec.Pool.map ~jobs:opts.jobs
      (fun build ->
        match build with
        | `Precise memo ->
            let r =
              if memo then
                Earliest.precise_with ~memo_entries:16 ~zero_skip:true
                  ~seed:opts.seed w
              else Earliest.precise_with ~seed:opts.seed w
            in
            ( Printf.sprintf "precise, %s" (if memo then "16-entry" else "no table"),
              Earliest.speedup r,
              0.0 )
        | `Anytime (bits, memo) ->
            let r =
              if memo then
                Earliest.earliest ~memo_entries:16 ~zero_skip:true
                  ~seed:opts.seed ~bits w
              else Earliest.earliest ~seed:opts.seed ~bits w
            in
            ( Printf.sprintf "%d-bit, %s" bits (if memo then "16-entry" else "no table"),
              Earliest.speedup r,
              r.Earliest.nrmse ))
      [
        `Precise false; `Precise true;
        `Anytime (8, false); `Anytime (8, true);
        `Anytime (4, false); `Anytime (4, true);
      ]
  in
  List.iter (fun (name, speedup, err) -> row name speedup err) rows;
  Format.fprintf ppf
    "(paper: precise 1 -> 1.11x; 8-bit 1.31 -> 1.42x; 4-bit 1.7 -> 1.97x)@."

(* ------------------------------------------------------------------ *)

let fig14 ppf opts =
  hr ppf "Figure 14: provisioned vs unprovisioned SWV addition (MatAdd, 8-bit)";
  let w = Suite.find opts.scale "MatAdd" in
  List.iter (print_curve ppf)
    (Wn_exec.Pool.map ~jobs:opts.jobs
       (fun provisioned ->
         Curves.runtime_quality ~seed:opts.seed ~bits:8 ~provisioned w)
       [ false; true ]);
  Format.fprintf ppf
    "(unprovisioned addition plateaus: dropped carries are unrecoverable; \
     provisioned reaches the precise result)@."

(* ------------------------------------------------------------------ *)

let fig15 ppf opts =
  hr ppf "Figure 15: small subwords (Conv2d, earliest output)";
  let w = Suite.find opts.scale "Conv2d" in
  Format.fprintf ppf "%6s %9s %9s@." "bits" "speedup" "NRMSE";
  List.iter
    (fun (bits, e) ->
      Format.fprintf ppf "%6d %8.2fx %8.2f%%@." bits (Earliest.speedup e)
        e.Earliest.nrmse)
    (Wn_exec.Pool.map ~jobs:opts.jobs
       (fun bits -> (bits, Earliest.earliest ~seed:opts.seed ~bits w))
       [ 1; 2; 3; 4; 8 ])

let fig16 ppf opts =
  hr ppf "Figure 16: Conv2d earliest outputs with small subwords (images)";
  let w = Suite.find opts.scale "Conv2d" in
  let p = Conv2d.params opts.scale in
  List.iter
    (fun (bits, e) ->
      let path =
        write_image opts
          (Printf.sprintf "fig16_%dbit" bits)
          ~width:p.Conv2d.width ~height:p.Conv2d.height
          (Image.nrmse_to_pixels e.Earliest.out ~scale:Conv2d.output_scale)
      in
      Format.fprintf ppf "%d-bit earliest: NRMSE %6.2f%% at %.2fx speedup%s@."
        bits e.Earliest.nrmse (Earliest.speedup e)
        (match path with Some p -> "  -> " ^ p | None -> ""))
    (Wn_exec.Pool.map ~jobs:opts.jobs
       (fun bits -> (bits, Earliest.earliest ~seed:opts.seed ~bits w))
       [ 1; 2; 3; 4 ])

(* ------------------------------------------------------------------ *)

let fig17 ppf opts =
  hr ppf "Figure 17: WN vs input sampling (Var data sets)";
  let v = Sampling.var_study ~seed:opts.seed opts.scale in
  Format.fprintf ppf "%-8s %12s %12s %12s@." "dataset" "precise" "WN(4-bit)"
    "sampled";
  List.iter
    (fun (r : Sampling.var_row) ->
      Format.fprintf ppf "%-8d %12.0f %12.0f %12s@." r.Sampling.dataset
        r.Sampling.exact r.Sampling.anytime
        (match r.Sampling.sampled with
        | Some v -> Printf.sprintf "%.0f" v
        | None -> "(missed)"))
    v.Sampling.rows;
  Format.fprintf ppf
    "WN mean error %.2f%% (paper: 1.53%%); precise costs %.2fx the anytime \
     pass, so sampling keeps 1 of %d data sets@."
    v.Sampling.anytime_mean_err_pct v.Sampling.cost_ratio v.Sampling.keep_every

(* ------------------------------------------------------------------ *)

let area_power ppf _opts =
  hr ppf "Section V-D: area and power";
  Format.fprintf ppf "%a@.@.%a@." Wn_area.Area_model.pp_adder
    (Wn_area.Area_model.adder ())
    Wn_area.Area_model.pp_memo
    (Wn_area.Area_model.memo_table ());
  Format.fprintf ppf
    "@.(paper: +0.02%% area, +4%% adder power, Fmax 1.12 GHz, memo table \
     40.5%% of a 16x16 multiplier)@."

let ablation_memo ppf opts =
  hr ppf "Ablation: memoization table size (Conv2d 4-bit, earliest output)";
  Ablations.pp_memo ppf
    (Ablations.memo_sweep ~jobs:opts.jobs ~seed:opts.seed opts.scale);
  Format.fprintf ppf
    "(paper footnote 5: more than 16 entries buys only modest gains)@."

let ablation_watchdog ppf opts =
  hr ppf "Ablation: Clank watchdog period (Var 4-bit)";
  Ablations.pp_watchdog ppf
    (Ablations.watchdog_sweep ~jobs:opts.jobs ~setup:opts.setup opts.scale);
  Format.fprintf ppf
    "(periods approaching the ~15k-cycle charge burst strand the baseline      in re-execution — the overhead skim points remove)@."

let ablation_energy ppf opts =
  hr ppf "Ablation: energy per cycle / burst length (Var 4-bit, Clank)";
  Ablations.pp_energy ppf
    (Ablations.energy_sweep ~jobs:opts.jobs ~setup:opts.setup opts.scale)

let ablation_subword ppf opts =
  hr ppf "Ablation: subword granularity across the suite (earliest output)";
  Ablations.pp_subword ppf
    (Ablations.subword_sweep ~jobs:opts.jobs ~seed:opts.seed opts.scale)

let ext_sqrt ppf opts =
  hr ppf
    "Extension (footnote 3): anytime square root on the Dist kernel";
  let w = Suite.find opts.scale "Dist" in
  List.iter
    (fun (bits, e, c) ->
      Format.fprintf ppf
        "%d-bit stages: earliest root at %.2fx speedup, NRMSE %.2f%%@." bits
        (Earliest.speedup e) e.Earliest.nrmse;
      print_curve ppf c)
    (Wn_exec.Pool.map ~jobs:opts.jobs
       (fun bits ->
         ( bits,
           Earliest.earliest ~seed:opts.seed ~bits w,
           Curves.runtime_quality ~seed:opts.seed ~bits w ))
       [ 4; 8 ])

let all =
  [
    ("table1", table1);
    ("fig2", fig2);
    ("fig3", fig3);
    ("fig9", fig9);
    ("fig10", fig10);
    ("fig11", fig11);
    ("fig12", fig12);
    ("fig13", fig13);
    ("fig14", fig14);
    ("fig15", fig15);
    ("fig16", fig16);
    ("fig17", fig17);
    ("area_power", area_power);
    ("ablation_memo", ablation_memo);
    ("ablation_watchdog", ablation_watchdog);
    ("ablation_energy", ablation_energy);
    ("ablation_subword", ablation_subword);
    ("ext_sqrt", ext_sqrt);
  ]

let run ppf opts id =
  match List.assoc_opt (String.lowercase_ascii id) all with
  | Some f ->
      f ppf opts;
      Ok ()
  | None ->
      Error
        (Printf.sprintf "unknown experiment %S; know: %s" id
           (String.concat ", " (List.map fst all)))
