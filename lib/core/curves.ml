open Wn_workloads

type point = { runtime : float; nrmse : float }

type curve = {
  workload : string;
  bits : int;
  provisioned : bool;
  vector_loads : bool;
  baseline_cycles : int;
  anytime_cycles : int;
  final_nrmse : float;
  points : point list;
}

let runtime_quality ?(points = 48) ?(vector_loads = false) ?(provisioned = true)
    ~seed ~bits (w : Workload.t) =
  let cfg = { Workload.bits; provisioned } in
  let rng = Wn_util.Rng.create seed in
  let inputs = w.Workload.fresh_inputs rng in
  let anytime = Runner.build ~vector_loads w cfg in
  let reference, baseline_cycles = Runner.precise_reference anytime inputs in
  let machine = Runner.machine anytime in
  Runner.load_sample anytime machine inputs;
  let collected = ref [] in
  let snapshot ~active_cycles ~wall_cycles =
    ignore wall_cycles;
    let out = Runner.output anytime machine in
    let err = Runner.nrmse_pct ~reference out in
    collected :=
      { runtime = float_of_int active_cycles /. float_of_int baseline_cycles;
        nrmse = err }
      :: !collected
  in
  (* Snapshot density relative to the *anytime* build's expected length
     (roughly 2–3× baseline); probe a little finer than requested. *)
  let snapshot_every = max 200 (baseline_cycles * 3 / points) in
  let outcome =
    Runner.run_always_on ~snapshot_every ~snapshot anytime machine
  in
  if not outcome.Wn_runtime.Executor.completed then
    failwith "Curves.runtime_quality: anytime build did not complete";
  let final_out = Runner.output anytime machine in
  {
    workload = w.Workload.name;
    bits;
    provisioned;
    vector_loads;
    baseline_cycles;
    anytime_cycles = outcome.Wn_runtime.Executor.active_cycles;
    final_nrmse = Runner.nrmse_pct ~reference final_out;
    points = List.rev !collected;
  }

(* Every curve is a pure function of (workload, config, seed): the
   build, machine and inputs are constructed inside [runtime_quality],
   so per-config jobs can run on any domain and the result list keeps
   the config order. *)
let suite ?(jobs = 1) ?points ?vector_loads ?provisioned ~seed ~bits_list
    workloads =
  let configs =
    List.concat_map
      (fun (w : Workload.t) -> List.map (fun bits -> (w, bits)) bits_list)
      workloads
  in
  Wn_exec.Pool.map ~jobs
    (fun (w, bits) ->
      runtime_quality ?points ?vector_loads ?provisioned ~seed ~bits w)
    configs

let pp ppf c =
  Format.fprintf ppf "# %s, %d-bit%s%s: baseline %d cycles, anytime %d cycles@."
    c.workload c.bits
    (if c.provisioned then ", provisioned" else "")
    (if c.vector_loads then ", vectorized loads" else "")
    c.baseline_cycles c.anytime_cycles;
  Format.fprintf ppf "# runtime(norm), nrmse(%%)@.";
  List.iter
    (fun p -> Format.fprintf ppf "%.4f, %.6f@." p.runtime p.nrmse)
    c.points
