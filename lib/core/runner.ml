open Wn_workloads

type build = {
  workload : Workload.t;
  compiled : Wn_compiler.Compile.t;
  precise : bool;
  cfg : Workload.cfg;
}

let build ?(precise = false) ?(vector_loads = false)
    ?(passes = Wn_compiler.Compile.all_passes) (w : Workload.t) cfg =
  let options =
    if precise then
      { Wn_compiler.Compile.mode = Precise; vector_loads = false; passes }
    else { Wn_compiler.Compile.mode = Anytime; vector_loads; passes }
  in
  let compiled = Wn_compiler.Compile.compile_source ~options (w.source cfg) in
  { workload = w; compiled; precise; cfg }

let machine ?machine_config b =
  let mem =
    Wn_mem.Memory.create ~size:(b.compiled.Wn_compiler.Compile.data_bytes + 64)
  in
  Wn_machine.Machine.create ?config:machine_config
    ~program:b.compiled.Wn_compiler.Compile.program ~mem ()

let load_sample b machine inputs =
  let mem = Wn_machine.Machine.mem machine in
  Workload.load_inputs b.compiled mem inputs;
  Workload.clear_output b.workload b.compiled mem;
  Wn_machine.Machine.reset_for_new_task machine

let output b machine =
  Workload.output_values b.workload b.compiled (Wn_machine.Machine.mem machine)

let nrmse_pct ~reference out = Wn_util.Stats.nrmse_pct ~reference out

let run_always_on ?halt_at_skim ?snapshot_every ?snapshot b machine =
  ignore b;
  let supply = Wn_power.Supply.always_on () in
  Wn_runtime.Executor.run ?halt_at_skim ?snapshot_every ?snapshot ~machine
    ~supply ()

let precise_reference b inputs =
  let pb = build ~precise:true b.workload b.cfg in
  let m = machine pb in
  load_sample pb m inputs;
  let outcome = run_always_on pb m in
  if not outcome.Wn_runtime.Executor.completed then
    failwith "precise reference did not complete";
  let out = output pb m in
  let golden = b.workload.Workload.golden inputs in
  if out <> golden then
    failwith
      (Printf.sprintf
         "precise %s output diverges from the golden model"
         b.workload.Workload.name);
  (out, outcome.Wn_runtime.Executor.active_cycles)
