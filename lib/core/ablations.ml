open Wn_workloads

(* ---------------- memoization table size ---------------- *)

type memo_point = {
  entries : int option;
  memo_speedup : float;
  hit_rate : float;
}

let memo_sweep ?(jobs = 1) ?(seed = 11) ?(sizes = [ 4; 8; 16; 32; 64 ]) scale =
  let w = Suite.find scale "Conv2d" in
  let point entries =
    let r =
      match entries with
      | None -> Earliest.earliest ~seed ~zero_skip:true ~bits:4 w
      | Some n -> Earliest.earliest ~memo_entries:n ~zero_skip:true ~seed ~bits:4 w
    in
    let lookups = r.Earliest.memo_hits + r.Earliest.memo_misses in
    {
      entries;
      memo_speedup = Earliest.speedup r;
      hit_rate =
        (if lookups = 0 then 0.0
         else float_of_int r.Earliest.memo_hits /. float_of_int lookups);
    }
  in
  Wn_exec.Pool.map ~jobs point (None :: List.map (fun n -> Some n) sizes)

(* ---------------- Clank watchdog period ---------------- *)

type watchdog_point = {
  period : int;
  wd_speedup : float;
  baseline_reexec : float;
}

(* The intermittent sweeps have few outer points but 9 × 3 experiment
   units inside each, so [jobs] fans out the units (Intermittent.run)
   rather than the sweep points. *)
let watchdog_sweep ?(jobs = 1) ?(periods = [ 1_000; 4_000; 8_000; 12_000 ])
    ?(setup = Intermittent.default_setup) scale =
  let w = Suite.find scale "Var" in
  List.map
    (fun period ->
      let setup =
        {
          setup with
          Intermittent.clank_config =
            { Wn_runtime.Executor.default_clank with watchdog_period = period };
        }
      in
      let r = Intermittent.run ~jobs ~setup ~system:Intermittent.Clank ~bits:4 w in
      {
        period;
        wd_speedup = r.Intermittent.speedup;
        baseline_reexec = r.Intermittent.baseline_reexec;
      })
    periods

(* ---------------- energy per cycle ---------------- *)

type energy_point = {
  cycle_energy : float;
  burst_cycles : int;
  energy_speedup : float;
}

let burst_cycles_of cycle_energy =
  int_of_float
    (Wn_power.Capacitor.burst_budget (Wn_power.Capacitor.create ())
    /. cycle_energy)

let energy_sweep ?(jobs = 1) ?(energies = [ 0.5e-9; 1.0e-9; 2.0e-9 ])
    ?(setup = Intermittent.default_setup) scale =
  let w = Suite.find scale "Var" in
  List.map
    (fun cycle_energy ->
      let burst = burst_cycles_of cycle_energy in
      (* A watchdog longer than a burst livelocks the baseline (see
         DESIGN.md); scale it with the burst as a deployed Clank
         would. *)
      let setup =
        {
          setup with
          Intermittent.cycle_energy;
          clank_config =
            { Wn_runtime.Executor.default_clank with watchdog_period = burst / 2 };
        }
      in
      let r = Intermittent.run ~jobs ~setup ~system:Intermittent.Clank ~bits:4 w in
      {
        cycle_energy;
        burst_cycles = burst;
        energy_speedup = r.Intermittent.speedup;
      })
    energies

(* ---------------- subword granularity across the suite ---------------- *)

type subword_point = {
  workload : string;
  bits : int;
  sw_speedup : float;
  sw_nrmse : float;
}

let subword_sweep ?(jobs = 1) ?(seed = 11) ?(bits_list = [ 2; 4; 8 ]) scale =
  let configs =
    List.concat_map
      (fun (w : Workload.t) ->
        let legal =
          match w.Workload.technique with
          | Workload.Swp -> bits_list
          | Workload.Swv ->
              List.filter (fun b -> b = 4 || b = 8 || b = 16) bits_list
        in
        List.map (fun bits -> (w, bits)) legal)
      (Suite.all scale)
  in
  Wn_exec.Pool.map ~jobs
    (fun ((w : Workload.t), bits) ->
      let r = Earliest.earliest ~seed ~bits w in
      {
        workload = w.Workload.name;
        bits;
        sw_speedup = Earliest.speedup r;
        sw_nrmse = r.Earliest.nrmse;
      })
    configs

(* ---------------- printers ---------------- *)

let pp_memo ppf points =
  Format.fprintf ppf "%-10s %9s %9s@." "entries" "speedup" "hit-rate";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-10s %8.2fx %8.1f%%@."
        (match p.entries with None -> "none" | Some n -> string_of_int n)
        p.memo_speedup (100.0 *. p.hit_rate))
    points

let pp_watchdog ppf points =
  Format.fprintf ppf "%-10s %12s %18s@." "period" "WN speedup" "baseline reexec";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-10d %11.2fx %17.1f%%@." p.period p.wd_speedup
        (100.0 *. p.baseline_reexec))
    points

let pp_energy ppf points =
  Format.fprintf ppf "%-12s %12s %12s@." "nJ/cycle" "burst (cyc)" "WN speedup";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-12.2f %12d %11.2fx@." (p.cycle_energy *. 1e9)
        p.burst_cycles p.energy_speedup)
    points

let pp_subword ppf points =
  Format.fprintf ppf "%-10s %6s %9s %9s@." "benchmark" "bits" "speedup" "NRMSE";
  List.iter
    (fun p ->
      Format.fprintf ppf "%-10s %6d %8.2fx %8.2f%%@." p.workload p.bits
        p.sw_speedup p.sw_nrmse)
    points
