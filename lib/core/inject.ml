open Wn_workloads
module Executor = Wn_runtime.Executor
module Faults = Wn_faults.Faults
module Rng = Wn_util.Rng

type mode = Exhaustive | Sampled of int

type config = {
  system : Intermittent.system;
  skim : bool;
  bits : int;
  input_seed : int;
  sample_seed : int;
  off_cycles : int;
  differential : bool;
  keyframe_interval : int;
  delta_frames : bool;
  engine : Executor.engine;
}

(* [keyframe_interval] sentinels: 0 disables keyframes entirely
   (from-scratch replay); [auto_keyframe_interval] (-1) derives the
   interval from the surveyed boundary count. *)
let auto_keyframe_interval = -1

let default_config =
  {
    system = Intermittent.Clank;
    skim = true;
    bits = 8;
    input_seed = 5;
    sample_seed = 11;
    off_cycles = Wn_power.Supply.default_off_cycles;
    differential = false;
    keyframe_interval = auto_keyframe_interval;
    delta_frames = true;
    engine = Executor.Block;
  }

type report = {
  workload : string;
  config : config;
  retired : int;
  first_skim : int option;
  checkpoints_continuous : int;
  exhaustive : bool;
  points : int;
  boundaries : int array;
  skim_commits : int;
  violations : (int * string) list;
}

let policy_of config = Intermittent.policy config.system

(* The scenario shares one compiled build and one input sample across
   all injected runs (both immutable once made); each [fresh] call
   allocates its own machine and data memory, so pool domains never
   share mutable state. *)
let scenario ~config (w : Workload.t) =
  let cfg = { Workload.bits = config.bits; provisioned = true } in
  let b = Runner.build ~precise:(not config.skim) w cfg in
  let inputs = w.Workload.fresh_inputs (Rng.create config.input_seed) in
  let fresh () =
    let m = Runner.machine b in
    Runner.load_sample b m inputs;
    m
  in
  { Faults.fresh; policy = policy_of config }

(* Stratified boundary sampling.  Anchors (first/last boundary, the
   first-skim edge) are always in; the rest draws half uniform, half
   from ±2-instruction neighbourhoods of stores, checkpoints and SKMs —
   the places restore bugs live.  Deterministic in the seed: candidates
   go through a hash set for dedup but the result is sorted. *)
let plan ~mode ~seed (p : Faults.profile) =
  let hi = p.Faults.retired - 1 in
  if hi < 1 then [||]
  else
    match mode with
    | Exhaustive -> Array.init hi (fun i -> i + 1)
    | Sampled count ->
        let count = max 1 (min count hi) in
        let tbl = Hashtbl.create (4 * count) in
        let add b = if b >= 1 && b <= hi then Hashtbl.replace tbl b () in
        add 1;
        add hi;
        (match p.Faults.first_skim with
        | Some s ->
            add (s - 1);
            add s;
            add (s + 1)
        | None -> ());
        let rng = Rng.create seed in
        let near arr =
          arr.(Rng.int rng (Array.length arr)) + Rng.int rng 5 - 2
        in
        let stores = p.Faults.store_boundaries in
        let ckpts = p.Faults.checkpoint_boundaries in
        let skms = p.Faults.skm_boundaries in
        let attempts = ref 0 in
        let max_attempts = (50 * count) + 100 in
        while Hashtbl.length tbl < count && !attempts < max_attempts do
          incr attempts;
          let bucket = Rng.int rng 4 in
          let b =
            if bucket <= 1 then 1 + Rng.int rng hi
            else if bucket = 2 && Array.length stores > 0 then near stores
            else if Array.length ckpts > 0 && (Array.length skms = 0 || Rng.bool rng)
            then near ckpts
            else if Array.length skms > 0 then near skms
            else 1 + Rng.int rng hi
          in
          add b
        done;
        let out = Hashtbl.fold (fun b () acc -> b :: acc) tbl [] in
        Array.of_list (List.sort compare out)

let same_restore (a : Faults.restore_state) (b : Faults.restore_state) =
  a.Faults.at_retired = b.Faults.at_retired
  && a.Faults.r_pc = b.Faults.r_pc
  && a.Faults.r_regs = b.Faults.r_regs
  && a.Faults.r_flags = b.Faults.r_flags
  && Digest.equal a.Faults.r_mem_digest b.Faults.r_mem_digest

(* Lockstep differential: the Compat engine must report the same
   post-restore machine/memory state and the same outcome as Fast. *)
let differential_violations (a : Faults.point_result) (b : Faults.point_result) =
  let v = ref [] in
  (match (a.Faults.restore, b.Faults.restore) with
  | Some ra, Some rb ->
      if not (same_restore ra rb) then
        v := "differential: Fast/Compat post-restore state differs" :: !v
  | None, None -> ()
  | _ -> v := "differential: engines disagree on whether an outage fired" :: !v);
  if not (Digest.equal a.Faults.final_digest b.Faults.final_digest) then
    v := "differential: Fast/Compat final memory differs" :: !v;
  if a.Faults.outcome <> b.Faults.outcome then
    v := "differential: Fast/Compat outcome records differ" :: !v;
  List.rev !v

let sweep ?(jobs = 1) ~mode ~config (w : Workload.t) =
  if config.keyframe_interval < -1 then invalid_arg "Inject.sweep";
  let scen = scenario ~config w in
  (* Two streaming passes: one to learn the run's shape (the planner
     needs it to place boundaries), one to take the planned prefix
     digests and — when enabled — the keyframe store.  The store is
     immutable from here on and shared read-only by every pool domain;
     each injected point deep-copies the frame it resumes from into its
     own machine. *)
  let prof = Faults.profile scen in
  let boundaries = plan ~mode ~seed:config.sample_seed prof in
  let keyframe_interval =
    if config.keyframe_interval = 0 then None
    else if config.keyframe_interval = auto_keyframe_interval then
      Some
        (Faults.auto_keyframe_interval
           ~boundaries:(max 1 (prof.Faults.retired - 1)))
    else Some config.keyframe_interval
  in
  let s =
    Faults.survey ~boundaries ?keyframe_interval
      ~full_frames:(not config.delta_frames) scen
  in
  let prefixes = s.Faults.sv_digests in
  let keyframes = s.Faults.sv_keyframes in
  (* Skim-commit tails repeat between stores; the cache computes each
     distinct tail once per sweep.  Part of the keyframe fast path:
     [keyframe_interval = 0] keeps the plain from-scratch replay. *)
  let skim_cache =
    Option.map (fun _ -> Faults.skim_cache ()) keyframes
  in
  (* One long-lived scratch machine per pool domain: every keyframed
     point restores a frame over it (clobbering all state), so restores
     along the chain cost only the pages that differ instead of a fresh
     machine plus a full-image copy per point.  Purely an allocation
     saving — results are bit-identical with or without it. *)
  let scratch_key = Domain.DLS.new_key (fun () -> None) in
  let scratch () =
    match keyframes with
    | None -> None
    | Some _ -> (
        match Domain.DLS.get scratch_key with
        | Some _ as m -> m
        | None ->
            let m = scen.Faults.fresh () in
            Domain.DLS.set scratch_key (Some m);
            Some m)
  in
  let verdicts =
    Wn_exec.Pool.map ~jobs
      (fun i ->
        let boundary = boundaries.(i) in
        let machine = scratch () in
        let res =
          Faults.run_point ~engine:config.engine ~off_cycles:config.off_cycles
            ?keyframes ?machine scen ~boundary
        in
        let expect_skim =
          match prof.Faults.first_skim with
          | Some s -> s <= boundary
          | None -> false
        in
        let skim_ref =
          if expect_skim then
            Faults.skim_reference ?keyframes ?cache:skim_cache
              ~prefix_digest:prefixes.(i) ?machine scen ~boundary
          else None
        in
        let vs =
          Faults.check ~profile:prof ~prefix_digest:prefixes.(i) ~skim_ref res
        in
        let vs =
          if config.differential then
            let res' =
              Faults.run_point ~engine:Executor.Compat
                ~off_cycles:config.off_cycles ?keyframes ?machine scen ~boundary
            in
            vs @ differential_violations res res'
          else vs
        in
        (res.Faults.outcome.Executor.skimmed, List.map (fun m -> (boundary, m)) vs))
      (List.init (Array.length boundaries) Fun.id)
  in
  let skim_commits =
    List.fold_left (fun acc (s, _) -> if s then acc + 1 else acc) 0 verdicts
  in
  {
    workload = w.Workload.name;
    config;
    retired = prof.Faults.retired;
    first_skim = prof.Faults.first_skim;
    checkpoints_continuous = Array.length prof.Faults.checkpoint_boundaries;
    exhaustive = (match mode with Exhaustive -> true | Sampled _ -> false);
    points = Array.length boundaries;
    boundaries;
    skim_commits;
    violations = List.concat_map snd verdicts;
  }

let pp ppf r =
  Format.fprintf ppf "fault sweep: %s system=%s build=%s bits=%d@\n" r.workload
    (Intermittent.system_name r.config.system)
    (if r.config.skim then "anytime" else "precise")
    r.config.bits;
  Format.fprintf ppf "  continuous run: %d instructions" r.retired;
  (match r.first_skim with
  | Some s -> Format.fprintf ppf ", first skim latched at %d" s
  | None -> Format.fprintf ppf ", no skim point");
  Format.fprintf ppf ", %d checkpoints@\n" r.checkpoints_continuous;
  Format.fprintf ppf "  points: %d %s" r.points
    (if r.exhaustive then "(exhaustive)"
     else Printf.sprintf "(sampled, seed %d)" r.config.sample_seed);
  Format.fprintf ppf " of %d boundaries; %d skim commits%s@\n"
    (max 0 (r.retired - 1))
    r.skim_commits
    (if r.config.differential then "; differential vs Compat" else "");
  match r.violations with
  | [] -> Format.fprintf ppf "  oracle: PASS@\n"
  | vs ->
      Format.fprintf ppf "  oracle: %d violation%s@\n" (List.length vs)
        (if List.length vs = 1 then "" else "s");
      List.iter
        (fun (b, m) -> Format.fprintf ppf "    boundary %d: %s@\n" b m)
        vs
