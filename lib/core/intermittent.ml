open Wn_workloads
module Executor = Wn_runtime.Executor

type system = Clank | Nvp

let system_name = function Clank -> "checkpoint-volatile" | Nvp -> "nvp"

type result = {
  workload : string;
  bits : int;
  system : system;
  speedup : float;
  nrmse : float;
  skim_rate : float;
  outages_per_task : float;
  baseline_reexec : float;
  samples : int;
}

type setup = {
  n_traces : int;
  invocations : int;
  samples_per_run : int;
  trace_seed : int;
  input_seed : int;
  clank_config : Executor.clank_config;
  cycle_energy : float;
  engine : Executor.engine;
}

let default_setup =
  {
    n_traces = 3;
    invocations = 1;
    samples_per_run = 2;
    trace_seed = 2024;
    input_seed = 7;
    clank_config = Executor.default_clank;
    cycle_energy = Wn_power.Supply.default_cycle_energy;
    engine = Executor.Block;
  }

let paper_setup =
  { default_setup with n_traces = 9; invocations = 3; samples_per_run = 3 }

let name_hash s = String.fold_left (fun acc c -> (acc * 31) + Char.code c) 0 s

let policy ?(clank = Executor.default_clank) = function
  | Clank -> Executor.Clank clank
  | Nvp -> Executor.Nvp Executor.default_nvp

type task_measure = {
  wall : int;
  active : int;
  overhead : int;
  out : float array;
  skimmed : bool;
  outages : int;
  reexec_frac : float;
  energy_j : float;
  ok : bool;
}

(* Process a stream of pre-generated samples on one supply; the
   capacitor state carries over between samples, as on a real device.
   This is the per-device unit runner: the figure drivers here and the
   fleet driver (wn.fleet) both build on it. *)
let run_stream ?capacitor ?(engine = Executor.Block) ~cycle_energy build policy
    trace samples =
  let capacitor =
    match capacitor with
    | Some c -> c
    | None -> Wn_power.Capacitor.create ()
  in
  let supply = Wn_power.Supply.create ~cycle_energy ~trace ~capacitor () in
  let machine = Runner.machine build in
  List.map
    (fun inputs ->
      Runner.load_sample build machine inputs;
      let e0 = Wn_power.Supply.energy_consumed supply in
      let o = Executor.run ~policy ~engine ~machine ~supply () in
      {
        wall = o.Executor.wall_cycles;
        active = o.Executor.active_cycles;
        overhead = o.Executor.overhead_cycles;
        out = Runner.output build machine;
        skimmed = o.Executor.skimmed;
        outages = o.Executor.outage_count;
        reexec_frac =
          (if o.Executor.retired = 0 then 0.0
           else
             float_of_int o.Executor.reexecuted_instructions
             /. float_of_int o.Executor.retired);
        energy_j = Wn_power.Supply.energy_consumed supply -. e0;
        ok = o.Executor.completed;
      })
    samples

(* Per-unit partial results: one (trace, invocation) experiment unit.
   Units are pure functions of their seeds, so they can run on any
   domain; aggregation concatenates them in unit order, which is what
   makes parallel output bit-identical to sequential. *)
type unit_totals = {
  u_speedups : float list;  (* in sample order *)
  u_errors : float list;
  u_reexecs : float list;
  u_skims : int;
  u_outages : int;
  u_measured : int;
}

(* Walk the samples and the two measurement streams in lockstep — the
   three lists are index-aligned by construction, so a single pass
   replaces the former O(n²) List.nth pairing. *)
let rec fold3 f acc xs ys zs =
  match (xs, ys, zs) with
  | [], [], [] -> acc
  | x :: xs, y :: ys, z :: zs -> fold3 f (f acc x y z) xs ys zs
  | _ -> invalid_arg "Intermittent.fold3: stream length mismatch"

let run_unit ~setup ~(w : Workload.t) ~precise ~anytime ~policy
    (ti, inv, trace) =
  let rng =
    Wn_util.Rng.create
      (setup.input_seed + name_hash w.Workload.name + (7919 * inv)
     + (104729 * ti))
  in
  let samples =
    List.init setup.samples_per_run (fun _ -> w.Workload.fresh_inputs rng)
  in
  let base =
    run_stream ~engine:setup.engine ~cycle_energy:setup.cycle_energy precise
      policy trace samples
  in
  let wn =
    run_stream ~engine:setup.engine ~cycle_energy:setup.cycle_energy anytime
      policy trace samples
  in
  let acc =
    fold3
      (fun acc inputs b a ->
        if b.ok && a.ok then
          let golden = w.Workload.golden inputs in
          {
            u_speedups =
              (float_of_int b.wall /. float_of_int a.wall) :: acc.u_speedups;
            u_errors = Runner.nrmse_pct ~reference:golden a.out :: acc.u_errors;
            u_reexecs = b.reexec_frac :: acc.u_reexecs;
            u_skims = (acc.u_skims + if a.skimmed then 1 else 0);
            u_outages = acc.u_outages + a.outages;
            u_measured = acc.u_measured + 1;
          }
        else acc)
      {
        u_speedups = [];
        u_errors = [];
        u_reexecs = [];
        u_skims = 0;
        u_outages = 0;
        u_measured = 0;
      }
      samples base wn
  in
  {
    acc with
    u_speedups = List.rev acc.u_speedups;
    u_errors = List.rev acc.u_errors;
    u_reexecs = List.rev acc.u_reexecs;
  }

let run ?(jobs = 1) ?(setup = default_setup) ~system ~bits (w : Workload.t) =
  let cfg = { Workload.bits; provisioned = true } in
  let anytime = Runner.build w cfg in
  let precise = Runner.build ~precise:true w cfg in
  let policy = policy ~clank:setup.clank_config system in
  let traces =
    Wn_power.Trace.paper_suite ~count:setup.n_traces ~seed:setup.trace_seed
      ~duration_s:60.0 ()
  in
  let units =
    List.concat
      (List.mapi
         (fun ti trace ->
           List.init setup.invocations (fun inv -> (ti, inv, trace)))
         traces)
  in
  let totals =
    Wn_exec.Pool.map ~jobs
      (run_unit ~setup ~w ~precise ~anytime ~policy)
      units
  in
  let speedups = List.concat_map (fun u -> u.u_speedups) totals in
  let errors = List.concat_map (fun u -> u.u_errors) totals in
  let reexecs = List.concat_map (fun u -> u.u_reexecs) totals in
  let skims = List.fold_left (fun n u -> n + u.u_skims) 0 totals in
  let outage_total = List.fold_left (fun n u -> n + u.u_outages) 0 totals in
  let total = List.fold_left (fun n u -> n + u.u_measured) 0 totals in
  if total = 0 then failwith "Intermittent.run: no sample completed";
  {
    workload = w.Workload.name;
    bits;
    system;
    speedup = Wn_util.Stats.median (Array.of_list speedups);
    nrmse = Wn_util.Stats.median (Array.of_list errors);
    skim_rate = float_of_int skims /. float_of_int total;
    outages_per_task = float_of_int outage_total /. float_of_int total;
    baseline_reexec = Wn_util.Stats.mean (Array.of_list reexecs);
    samples = total;
  }

let pp ppf r =
  Format.fprintf ppf
    "%-10s %d-bit on %-18s: speedup %.2fx, NRMSE %.3f%%, skim rate %.0f%%, \
     %.1f outages/task (%d samples)"
    r.workload r.bits (system_name r.system) r.speedup r.nrmse
    (100.0 *. r.skim_rate) r.outages_per_task r.samples
