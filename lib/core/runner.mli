(** Shared plumbing for the evaluation: build a workload into a machine
    image and run it over streams of input samples. *)

open Wn_workloads

type build = {
  workload : Workload.t;
  compiled : Wn_compiler.Compile.t;
  precise : bool;
  cfg : Workload.cfg;
}

val build :
  ?precise:bool ->
  ?vector_loads:bool ->
  ?passes:Wn_compiler.Compile.passes ->
  Workload.t ->
  Workload.cfg ->
  build
(** Compile the workload's source.  [precise] ignores the pragmas (the
    paper's baseline build).  [passes] overrides the optimizer-pass
    set (defaults to all passes on); the per-pass differential harness
    uses it to compare outputs with a pass disabled. *)

val machine :
  ?machine_config:Wn_machine.Machine.config -> build -> Wn_machine.Machine.t
(** A fresh machine (own data memory) for the build. *)

val load_sample :
  build -> Wn_machine.Machine.t -> (string * int array) list -> unit
(** Prepare the next stream sample: encode inputs per layout, zero the
    output storage, reset the task (PC 0, cleared SKM register). *)

val output : build -> Wn_machine.Machine.t -> float array
(** Decode the workload's current output from data memory. *)

val nrmse_pct : reference:float array -> float array -> float

val run_always_on :
  ?halt_at_skim:bool ->
  ?snapshot_every:int ->
  ?snapshot:Wn_runtime.Executor.snapshot_hook ->
  build ->
  Wn_machine.Machine.t ->
  Wn_runtime.Executor.outcome
(** One task under continuous power. *)

val precise_reference :
  build -> (string * int array) list -> float array * int
(** Run the matching precise build once on the given inputs; returns
    its output (bit-exact with the workload's golden model — asserted)
    and its active cycle count, the baseline for normalisation. *)
