(** Outage-point fault-injection sweeps over the benchmark suite.

    Drives {!Wn_faults.Faults} across many instruction boundaries of a
    workload — exhaustively for small programs, or by seeded stratified
    sampling biased toward checkpoint/SKM/store neighbourhoods — fanning
    the injected runs out over a {!Wn_exec.Pool}.  Every injected run is
    a pure function of (workload, config, boundary), and verdicts are
    re-merged in boundary order, so the report is bit-identical for
    every [jobs] value. *)

open Wn_workloads

type mode =
  | Exhaustive  (** every boundary in [1, retired - 1] *)
  | Sampled of int
      (** at least this many distinct boundaries (capped by the
          exhaustive count): half uniform, half drawn from store /
          checkpoint / SKM neighbourhoods (±2 instructions), plus the
          first/last boundaries and the first-skim edge as anchors *)

type config = {
  system : Intermittent.system;
  skim : bool;  (** anytime build (skim points compiled in) vs precise *)
  bits : int;
  input_seed : int;  (** input-sample generator seed *)
  sample_seed : int;  (** boundary-sampling seed *)
  off_cycles : int;  (** powered-off period per injected outage *)
  differential : bool;
      (** additionally run every point under the Compat engine and
          require bit-identical restore state and outcome *)
  keyframe_interval : int;
      (** retired instructions between keyframe snapshots of the
          continuous run; injected points then replay at most this many
          prefix instructions instead of the whole prefix.  [0]
          disables keyframes (every point replays from instruction 0);
          {!auto_keyframe_interval} ([-1], the default) derives the
          interval from the surveyed boundary count via
          {!Wn_faults.Faults.auto_keyframe_interval}.  Reports are
          byte-identical for every value. *)
  delta_frames : bool;
      (** keyframes as delta snapshots sharing unwritten memory pages
          with the previous frame (default) vs isolated full copies.
          Observably identical — reports are byte-identical either way;
          deltas are only smaller and faster to capture. *)
  engine : Wn_runtime.Executor.engine;
      (** stepping engine for the injected runs (default [Block]);
          reports are byte-identical across engines.  The differential
          re-run always uses [Compat] regardless. *)
}

val auto_keyframe_interval : int
(** Sentinel [keyframe_interval] (-1): derive the interval from the
    surveyed boundary count.  Values below it are rejected by
    {!sweep}. *)

val default_config : config
(** Clank, anytime build, 8-bit subwords, seeds 5/11, default
    off-period, no differential, auto keyframe interval, delta
    keyframes. *)

type report = {
  workload : string;
  config : config;
  retired : int;  (** continuous-run length in instructions *)
  first_skim : int option;
  checkpoints_continuous : int;
      (** checkpoints the policy places on an uninterrupted run *)
  exhaustive : bool;
  points : int;
  boundaries : int array;
      (** the injected boundaries, sorted ascending — a pure function
          of (workload, config, mode), so identical across [jobs]
          values, engines and keyframe settings *)
  skim_commits : int;  (** injected points that finished via skim *)
  violations : (int * string) list;
      (** (boundary, oracle message), in boundary order *)
}

val sweep : ?jobs:int -> mode:mode -> config:config -> Workload.t -> report

val pp : Format.formatter -> report -> unit
(** Deterministic human-readable report (the CI artifact format). *)
