(** Dynamic instruction-count measurement — the optimizer's yardstick.

    Counts retired instructions for one completed always-on task per
    benchmark, for the precise baseline, the anytime build, and the
    anytime build with every optimizer pass disabled.  All counts are
    pure functions of (workload, seed, bits), so they are bit-identical
    across machines — which is what lets CI gate on them, unlike the
    wall-clock numbers in BENCH_machine.json. *)

open Wn_workloads

type row = {
  bench : string;
  bits : int;
  precise_retired : int;  (** precise baseline, all passes on *)
  anytime_retired : int;  (** anytime build, all passes on *)
  anytime_retired_noopt : int;  (** anytime build, optimizer off *)
  wn_pct : float;
      (** Table I Insn%: WN-extension instructions as a share of the
          anytime build's retired instructions *)
  reduction_pct : float;
      (** retired-instruction saving of the optimizer on the anytime
          build, in percent of the pass-off count *)
}

type report = {
  scale : Workload.scale;
  seed : int;
  rows : row list;
  scenarios : (string * int) list;
      (** named scenario counters, e.g. {!shadowmap_key} *)
}

val shadowmap_key : string
(** ["fig10:executor_clank_shadowmap"] — the CI optimizer gate's
    counter: the Var\@8 anytime task under the Clank runtime on an
    always-on supply (the scenario the microbenchmark of the same name
    times), in retired instructions. *)

val measure :
  ?seed:int -> ?bits:int -> ?scale:Workload.scale -> Workload.t list -> report

val pp : Format.formatter -> report -> unit

val json : report -> string
(** Flat ["wn-insn/1"] object mirroring the BENCH_machine.json shape:
    one integer counter per benchmark/build pair plus the scenario
    counters.  The committed BASELINE_insn.json is this, verbatim. *)

type regression = { key : string; baseline : int; current : int }

val check : baseline:string -> report -> regression list
(** Compare a report against the text of a committed baseline file:
    every counter present in both that now retires {e more}
    instructions.  Keys on only one side are ignored. *)
