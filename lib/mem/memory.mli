(** Byte-addressable data memory, little-endian.

    Energy-harvesting platforms pair a small SRAM/FRAM with the core; the
    paper's two system models differ in what survives an outage:
    checkpoint-based volatile processors keep *main memory* non-volatile
    (FRAM) but lose registers, while non-volatile processors keep
    everything.  This module is plain storage; volatility policy lives in
    [wn.runtime].  Reads and writes are counted for the evaluation's
    instruction-mix statistics.

    Storage is one flat byte array, but the module additionally tracks
    writes at page granularity ({!page_bytes} bytes per page) with a
    cached MD5 per page.  That makes {!digest} cost proportional to the
    pages written since the previous digest, and {!capture} cost
    proportional to the pages written since the previous capture — the
    foundation for incremental boundary digests and delta keyframes in
    the fault-injection engine. *)

type t

val page_bytes : int
(** Dirty-tracking granularity in bytes (a power of two). *)

val create : size:int -> t
(** Zero-initialised memory of [size] bytes. *)

val size : t -> int

val read8 : t -> int -> int
val read8_signed : t -> int -> int
val read16 : t -> int -> int
val read16_signed : t -> int -> int
val read32 : t -> int -> int
(** Unsigned 32-bit pattern (fits an OCaml int). Addresses need not be
    aligned.  All reads/writes raise [Invalid_argument] out of bounds. *)

val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit

val read_stats : t -> int * int
(** [(reads, writes)] performed since creation or [reset_stats]. *)

val reset_stats : t -> unit

val set_stats : t -> reads:int -> writes:int -> unit
(** Overwrite the access counters (snapshot/restore support — a
    restored machine must report the counters it had at capture).
    Raises [Invalid_argument] on negative counts. *)

val digest : t -> Digest.t
(** Content digest: MD5 over the concatenation of per-page MD5s.
    Memories of equal size have equal digests iff their contents are
    equal (modulo MD5 collisions, as before).  Cost is O(pages written
    since the last digest or capture) plus a hash of the small combine
    buffer — not O(size).  Note the hex value differs from a flat MD5
    of the contents. *)

(** {1 Images: O(dirty) capture and restore}

    An {!image} is an immutable copy of the full contents, stored
    page-wise.  {!capture} shares clean pages with the memory's
    previous capture (a delta keyframe), so a sequence of captures
    costs O(pages written between them) in both time and space while
    each image still describes the complete state — restoring never
    needs to walk a chain. *)

type image

val capture : t -> image
(** Capture the contents, sharing pages unwritten since the previous
    {!capture}/{!capture_full}/{!restore_image} of this memory.  Clears
    the dirty tracking. *)

val capture_full : t -> image
(** Like {!capture} but every page is copied — an isolated image with
    no structural sharing. *)

val restore_image : t -> image -> unit
(** Overwrite contents from an image of equal size (raises
    [Invalid_argument] otherwise).  Adopts the image's page hashes, so
    an immediately following {!digest} rehashes nothing, and makes the
    image the new delta baseline for {!capture}. *)

val matches_image : t -> image -> bool
(** True iff the current contents equal the image, compared in place. *)

val image_size : image -> int

val image_digest : image -> Digest.t
(** Digest of an image's contents; agrees with {!digest} of a memory
    holding the same bytes. *)

val snapshot : t -> bytes
(** A copy of the full contents as raw bytes (flat snapshot). *)

val matches : t -> bytes -> bool
(** [matches t image] is true iff the current contents equal [image]
    (a {!snapshot}), compared in place without copying. *)

val restore : t -> bytes -> unit
(** Overwrite contents from a flat snapshot of equal size. *)

val blit_in : t -> addr:int -> bytes -> unit
(** Load raw bytes at [addr] (program data segment initialisation). *)

val region : t -> addr:int -> len:int -> bytes
(** Copy of the [len] bytes starting at [addr]. *)

val fill : t -> addr:int -> len:int -> int -> unit
(** Fill a region with a byte value. *)

val clear : t -> unit
