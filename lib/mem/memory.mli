(** Byte-addressable data memory, little-endian.

    Energy-harvesting platforms pair a small SRAM/FRAM with the core; the
    paper's two system models differ in what survives an outage:
    checkpoint-based volatile processors keep *main memory* non-volatile
    (FRAM) but lose registers, while non-volatile processors keep
    everything.  This module is plain storage; volatility policy lives in
    [wn.runtime].  Reads and writes are counted for the evaluation's
    instruction-mix statistics. *)

type t

val create : size:int -> t
(** Zero-initialised memory of [size] bytes. *)

val size : t -> int

val read8 : t -> int -> int
val read8_signed : t -> int -> int
val read16 : t -> int -> int
val read16_signed : t -> int -> int
val read32 : t -> int -> int
(** Unsigned 32-bit pattern (fits an OCaml int). Addresses need not be
    aligned.  All reads/writes raise [Invalid_argument] out of bounds. *)

val write8 : t -> int -> int -> unit
val write16 : t -> int -> int -> unit
val write32 : t -> int -> int -> unit

val read_stats : t -> int * int
(** [(reads, writes)] performed since creation or [reset_stats]. *)

val reset_stats : t -> unit

val set_stats : t -> reads:int -> writes:int -> unit
(** Overwrite the access counters (snapshot/restore support — a
    restored machine must report the counters it had at capture).
    Raises [Invalid_argument] on negative counts. *)

val snapshot : t -> bytes
(** A copy of the full contents (checkpoint support). *)

val digest : t -> Digest.t
(** MD5 of the full contents, hashing the backing store in place —
    equal to [Digest.bytes (snapshot t)] without the intermediate
    copy. *)

val matches : t -> bytes -> bool
(** [matches t image] is true iff the current contents equal [image]
    (a {!snapshot}), compared in place without copying. *)

val restore : t -> bytes -> unit
(** Overwrite contents from a snapshot of equal size. *)

val blit_in : t -> addr:int -> bytes -> unit
(** Load raw bytes at [addr] (program data segment initialisation). *)

val region : t -> addr:int -> len:int -> bytes
(** Copy of the [len] bytes starting at [addr]. *)

val fill : t -> addr:int -> len:int -> int -> unit
(** Fill a region with a byte value. *)

val clear : t -> unit
