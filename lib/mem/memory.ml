type t = {
  store : Bytes.t;
  mutable reads : int;
  mutable writes : int;
}

let create ~size =
  if size <= 0 then invalid_arg "Memory.create";
  { store = Bytes.make size '\000'; reads = 0; writes = 0 }

let size t = Bytes.length t.store

let check t addr len name =
  if addr < 0 || addr + len > Bytes.length t.store then
    invalid_arg (Printf.sprintf "Memory.%s: address %d out of bounds" name addr)

let read8 t addr =
  check t addr 1 "read8";
  t.reads <- t.reads + 1;
  Char.code (Bytes.get t.store addr)

let read8_signed t addr = Wn_util.Subword.sign_extend ~bits:8 (read8 t addr)

let read16 t addr =
  check t addr 2 "read16";
  t.reads <- t.reads + 1;
  Bytes.get_uint16_le t.store addr

let read16_signed t addr = Wn_util.Subword.sign_extend ~bits:16 (read16 t addr)

(* Composed from two uint16 halves: [Bytes.get_uint16_le] returns an
   immediate int, whereas [get_int32_le] would box an [Int32.t] on
   every word load. *)
let read32 t addr =
  check t addr 4 "read32";
  t.reads <- t.reads + 1;
  Bytes.get_uint16_le t.store addr
  lor (Bytes.get_uint16_le t.store (addr + 2) lsl 16)

let write8 t addr v =
  check t addr 1 "write8";
  t.writes <- t.writes + 1;
  Bytes.set t.store addr (Char.chr (v land 0xFF))

let write16 t addr v =
  check t addr 2 "write16";
  t.writes <- t.writes + 1;
  Bytes.set_uint16_le t.store addr (v land 0xFFFF)

let write32 t addr v =
  check t addr 4 "write32";
  t.writes <- t.writes + 1;
  Bytes.set_uint16_le t.store addr (v land 0xFFFF);
  Bytes.set_uint16_le t.store (addr + 2) ((v lsr 16) land 0xFFFF)

let read_stats t = (t.reads, t.writes)

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0

let set_stats t ~reads ~writes =
  if reads < 0 || writes < 0 then invalid_arg "Memory.set_stats";
  t.reads <- reads;
  t.writes <- writes

let snapshot t = Bytes.copy t.store

(* [Digest.bytes] hashes the backing store in place — no intermediate
   copy, unlike [Digest.bytes (snapshot t)]. *)
let digest t = Digest.bytes t.store

let matches t image = Bytes.equal t.store image

let restore t snap =
  if Bytes.length snap <> Bytes.length t.store then
    invalid_arg "Memory.restore: size mismatch";
  Bytes.blit snap 0 t.store 0 (Bytes.length snap)

let blit_in t ~addr data =
  check t addr (Bytes.length data) "blit_in";
  Bytes.blit data 0 t.store addr (Bytes.length data)

let region t ~addr ~len =
  check t addr len "region";
  Bytes.sub t.store addr len

let fill t ~addr ~len v =
  check t addr len "fill";
  Bytes.fill t.store addr len (Char.chr (v land 0xFF))

let clear t = Bytes.fill t.store 0 (Bytes.length t.store) '\000'
