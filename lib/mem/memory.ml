(* Flat little-endian storage with page-granular dirty tracking.

   The store itself stays one contiguous [Bytes.t] so the hot
   read/write path is unchanged; alongside it each fixed-size page
   carries one metadata byte and one cached MD5:

     bit 0 — page written since the last [capture] (delta tracking)
     bit 1 — cached page hash stale

   Writes set both bits with a single unconditional byte store per
   touched page (branch-free, allocation-free — the machine's
   zero-allocation fast path steps through here).  [digest] rehashes
   only stale pages and combines the per-page hashes; [capture] copies
   only dirty pages, structurally sharing clean ones with the previous
   capture, which is what makes dense keyframe stores cheap. *)

let page_shift = 8
let page_bytes = 1 lsl page_shift

type image = {
  im_size : int;
  im_pages : bytes array;
  im_hashes : string array; (* MD5 per page, same indexing as [im_pages] *)
}

type t = {
  store : Bytes.t;
  mutable reads : int;
  mutable writes : int;
  pages : int;
  flags : Bytes.t; (* one metadata byte per page, bits as above *)
  hashes : string array; (* valid where bit 1 is clear *)
  combine : Bytes.t; (* concatenated page hashes, in sync with [hashes] *)
  mutable last_capture : image option; (* delta baseline for [capture] *)
}

let dirty = '\003' (* both bits *)

let create ~size =
  if size <= 0 then invalid_arg "Memory.create";
  let pages = (size + page_bytes - 1) lsr page_shift in
  {
    store = Bytes.make size '\000';
    reads = 0;
    writes = 0;
    pages;
    flags = Bytes.make pages dirty;
    hashes = Array.make pages "";
    combine = Bytes.create (pages * 16);
    last_capture = None;
  }

let size t = Bytes.length t.store

let check t addr len name =
  if addr < 0 || addr + len > Bytes.length t.store then
    invalid_arg (Printf.sprintf "Memory.%s: address %d out of bounds" name addr)

(* Mark the pages under [addr .. addr+len-1] dirty.  Bounds were
   checked by the caller, so the unsafe page-index stores are in
   range; a multi-byte access spans at most two pages. *)
let touch t addr last =
  Bytes.unsafe_set t.flags (addr lsr page_shift) dirty;
  Bytes.unsafe_set t.flags (last lsr page_shift) dirty

let touch_range t addr len =
  if len > 0 then
    for p = addr lsr page_shift to (addr + len - 1) lsr page_shift do
      Bytes.unsafe_set t.flags p dirty
    done

let read8 t addr =
  check t addr 1 "read8";
  t.reads <- t.reads + 1;
  Char.code (Bytes.get t.store addr)

let read8_signed t addr = Wn_util.Subword.sign_extend ~bits:8 (read8 t addr)

let read16 t addr =
  check t addr 2 "read16";
  t.reads <- t.reads + 1;
  Bytes.get_uint16_le t.store addr

let read16_signed t addr = Wn_util.Subword.sign_extend ~bits:16 (read16 t addr)

(* Composed from two uint16 halves: [Bytes.get_uint16_le] returns an
   immediate int, whereas [get_int32_le] would box an [Int32.t] on
   every word load. *)
let read32 t addr =
  check t addr 4 "read32";
  t.reads <- t.reads + 1;
  Bytes.get_uint16_le t.store addr
  lor (Bytes.get_uint16_le t.store (addr + 2) lsl 16)

let write8 t addr v =
  check t addr 1 "write8";
  t.writes <- t.writes + 1;
  Bytes.unsafe_set t.flags (addr lsr page_shift) dirty;
  Bytes.set t.store addr (Char.chr (v land 0xFF))

let write16 t addr v =
  check t addr 2 "write16";
  t.writes <- t.writes + 1;
  touch t addr (addr + 1);
  Bytes.set_uint16_le t.store addr (v land 0xFFFF)

let write32 t addr v =
  check t addr 4 "write32";
  t.writes <- t.writes + 1;
  touch t addr (addr + 3);
  Bytes.set_uint16_le t.store addr (v land 0xFFFF);
  Bytes.set_uint16_le t.store (addr + 2) ((v lsr 16) land 0xFFFF)

let read_stats t = (t.reads, t.writes)

let reset_stats t =
  t.reads <- 0;
  t.writes <- 0

let set_stats t ~reads ~writes =
  if reads < 0 || writes < 0 then invalid_arg "Memory.set_stats";
  t.reads <- reads;
  t.writes <- writes

(* ------------------------------------------------------------------ *)
(* Pages, hashes, digests                                             *)

let page_off p = p lsl page_shift
let page_len t p = min page_bytes (Bytes.length t.store - page_off p)

(* Rehash page [p] if its cached hash is stale; clears bit 1 only, so
   delta state (bit 0) survives until the next capture. *)
let ensure_hash t p =
  let f = Char.code (Bytes.unsafe_get t.flags p) in
  if f land 2 <> 0 then begin
    let h = Digest.subbytes t.store (page_off p) (page_len t p) in
    t.hashes.(p) <- h;
    Bytes.blit_string h 0 t.combine (p * 16) 16;
    Bytes.unsafe_set t.flags p (Char.unsafe_chr (f land 1))
  end

(* MD5 over the concatenated per-page MD5s.  Only pages written since
   the previous digest/capture are rehashed, so the per-call cost is
   O(dirty pages) + O(pages) for the combine, not O(bytes).  Equal
   contents still imply equal digests (and conversely, modulo MD5
   collisions), but the hex values differ from a flat MD5 of the
   store — goldens that print them were re-pinned once. *)
let digest t =
  for p = 0 to t.pages - 1 do
    ensure_hash t p
  done;
  Digest.bytes t.combine

(* ------------------------------------------------------------------ *)
(* Images: capture / restore with structural page sharing             *)

let image_size im = im.im_size

let image_digest im =
  let b = Bytes.create (Array.length im.im_hashes * 16) in
  Array.iteri (fun p h -> Bytes.blit_string h 0 b (p * 16) 16) im.im_hashes;
  Digest.bytes b

(* [share = true] reuses the page bytes of the previous capture for
   pages not written since then — a delta keyframe: the new image costs
   O(dirty pages), and a store of many captures keeps one copy of each
   distinct page.  [share = false] copies every page (a full, isolated
   image).  Both observably describe the complete contents; images are
   immutable so sharing is safe.  The baseline is tracked internally
   ([last_capture]) rather than passed by the caller, so interleaved
   captures of different memories can never cross their chains. *)
let capture_gen ~share t =
  for p = 0 to t.pages - 1 do
    ensure_hash t p
  done;
  let prev = if share then t.last_capture else None in
  let im_pages =
    Array.init t.pages (fun p ->
        match prev with
        | Some im when Char.code (Bytes.unsafe_get t.flags p) land 1 = 0 ->
            im.im_pages.(p)
        | _ -> Bytes.sub t.store (page_off p) (page_len t p))
  in
  let im =
    { im_size = size t; im_pages; im_hashes = Array.copy t.hashes }
  in
  Bytes.fill t.flags 0 t.pages '\000';
  t.last_capture <- Some im;
  im

let capture t = capture_gen ~share:true t
let capture_full t = capture_gen ~share:false t

let restore_image t im =
  if im.im_size <> size t then invalid_arg "Memory.restore: size mismatch";
  (* O(changed pages) in-place restore: a page whose object is
     physically shared between the incoming image and the current delta
     baseline, and which has not been written since that baseline was
     adopted, already holds the right bytes — skip the blit.  Images
     from one capture chain share most pages, so restoring a machine
     back and forth along a keyframe train costs only the pages that
     actually differ. *)
  let prev_pages =
    match t.last_capture with Some prev -> prev.im_pages | None -> [||]
  in
  let have_prev = Array.length prev_pages = t.pages in
  for p = 0 to t.pages - 1 do
    let pg = im.im_pages.(p) in
    if
      not
        (have_prev
        && pg == Array.unsafe_get prev_pages p
        && Char.code (Bytes.unsafe_get t.flags p) land 1 = 0)
    then begin
      Bytes.blit pg 0 t.store (page_off p) (Bytes.length pg);
      let h = im.im_hashes.(p) in
      t.hashes.(p) <- h;
      Bytes.blit_string h 0 t.combine (p * 16) 16
    end
  done;
  (* The image's hashes are valid for the restored contents, so a
     digest right after a restore rehashes nothing; the image also
     becomes the delta baseline, so the next capture copies only pages
     the replay actually dirties. *)
  Bytes.fill t.flags 0 t.pages '\000';
  t.last_capture <- Some im

(* Page-wise [Bytes.equal] (a C memcmp) beats a per-byte loop by an
   order of magnitude; the transient [Bytes.sub] per page is minor-heap
   noise next to the compare itself. *)
let matches_image t im =
  im.im_size = size t
  &&
  let ok = ref true in
  let p = ref 0 in
  while !ok && !p < t.pages do
    let pg = im.im_pages.(!p) in
    if not (Bytes.equal pg (Bytes.sub t.store (page_off !p) (Bytes.length pg)))
    then ok := false;
    incr p
  done;
  !ok

(* ------------------------------------------------------------------ *)
(* Flat snapshot API (kept for callers that want raw bytes)           *)

let snapshot t = Bytes.copy t.store

let matches t image = Bytes.equal t.store image

let restore t snap =
  if Bytes.length snap <> Bytes.length t.store then
    invalid_arg "Memory.restore: size mismatch";
  Bytes.blit snap 0 t.store 0 (Bytes.length snap);
  Bytes.fill t.flags 0 t.pages dirty;
  t.last_capture <- None

let blit_in t ~addr data =
  check t addr (Bytes.length data) "blit_in";
  touch_range t addr (Bytes.length data);
  Bytes.blit data 0 t.store addr (Bytes.length data)

let region t ~addr ~len =
  check t addr len "region";
  Bytes.sub t.store addr len

let fill t ~addr ~len v =
  check t addr len "fill";
  touch_range t addr len;
  Bytes.fill t.store addr len (Char.chr (v land 0xFF))

let clear t =
  Bytes.fill t.store 0 (Bytes.length t.store) '\000';
  Bytes.fill t.flags 0 t.pages dirty
