open Wn_isa
module IntSet = Set.Make (Int)

type block = { first : int; last : int }

type t = {
  program : int Instr.t array;
  blocks : block array;
  block_of : int array;
  succ : int list array;
  pred : int list array;
  entries : int list;
  func_of : int array;
  calls : (int * int) list;
  skims : (int * int) list;
  falls_off : int list;
  dom : IntSet.t array;  (** per block: the blocks dominating it *)
}

(* Intraprocedural successors of the instruction at [pc]: branches
   follow their targets, calls fall through to the return site, [Bx_lr]
   and [Halt] end the function.  A fall-through past the end of the
   program yields no successor (recorded separately as [falls_off]). *)
let raw_succs program pc =
  let n = Array.length program in
  let fall = if pc + 1 < n then [ pc + 1 ] else [] in
  match program.(pc) with
  | Instr.B (Cond.Al, t) -> [ t ]
  | Instr.B (_, t) -> t :: List.filter (fun s -> s <> t) fall
  | Instr.Bl _ -> fall
  | Instr.Bx_lr | Instr.Halt -> []
  | _ -> fall

let ends_block = function
  | Instr.B _ | Instr.Bl _ | Instr.Bx_lr | Instr.Halt -> true
  | _ -> false

let build program =
  let n = Array.length program in
  if n = 0 then invalid_arg "Cfg.build: empty program";
  let calls = ref [] and skims = ref [] and falls_off = ref [] in
  let leader = Array.make n false in
  leader.(0) <- true;
  Array.iteri
    (fun pc i ->
      (match i with
      | Instr.B (_, t) -> if t >= 0 && t < n then leader.(t) <- true
      | Instr.Bl t ->
          calls := (pc, t) :: !calls;
          if t >= 0 && t < n then leader.(t) <- true
      | Instr.Skm t ->
          skims := (pc, t) :: !skims;
          if t >= 0 && t < n then leader.(t) <- true
      | _ -> ());
      if ends_block i && pc + 1 < n then leader.(pc + 1) <- true;
      if (not (ends_block i)) && pc + 1 = n then falls_off := pc :: !falls_off;
      match i with
      | Instr.B (c, _) when c <> Cond.Al && pc + 1 = n ->
          falls_off := pc :: !falls_off
      | _ -> ())
    program;
  (* Carve blocks. *)
  let blocks = ref [] in
  let start = ref 0 in
  for pc = 0 to n - 1 do
    let last_of_block =
      ends_block program.(pc) || pc + 1 = n || leader.(pc + 1)
    in
    if last_of_block then begin
      blocks := { first = !start; last = pc } :: !blocks;
      start := pc + 1
    end
  done;
  let blocks = Array.of_list (List.rev !blocks) in
  let nb = Array.length blocks in
  let block_of = Array.make n 0 in
  Array.iteri
    (fun bi b ->
      for pc = b.first to b.last do
        block_of.(pc) <- bi
      done)
    blocks;
  let succ =
    Array.map
      (fun b ->
        raw_succs program b.last
        |> List.filter (fun t -> t >= 0 && t < n)
        |> List.map (fun t -> block_of.(t))
        |> List.sort_uniq Int.compare)
      blocks
  in
  let pred = Array.make nb [] in
  Array.iteri (fun bi ss -> List.iter (fun s -> pred.(s) <- bi :: pred.(s)) ss) succ;
  Array.iteri (fun bi l -> pred.(bi) <- List.sort_uniq Int.compare l) pred;
  (* Function discovery: BFS from each entry, first function wins. *)
  let entries =
    0 :: List.filter_map
           (fun (_, t) -> if t >= 0 && t < n then Some t else None)
           !calls
    |> List.sort_uniq Int.compare
  in
  let func_of = Array.make n (-1) in
  List.iter
    (fun entry ->
      if func_of.(entry) = -1 then begin
        let q = Queue.create () in
        Queue.add block_of.(entry) q;
        while not (Queue.is_empty q) do
          let bi = Queue.pop q in
          if func_of.(blocks.(bi).first) = -1 then begin
            for pc = blocks.(bi).first to blocks.(bi).last do
              func_of.(pc) <- entry
            done;
            List.iter (fun s -> if func_of.(blocks.(s).first) = -1 then Queue.add s q) succ.(bi)
          end
        done
      end)
    entries;
  (* Dominators, per function, iterative. *)
  let all_blocks = IntSet.of_list (List.init nb Fun.id) in
  let dom = Array.make nb all_blocks in
  List.iter
    (fun entry ->
      let eb = block_of.(entry) in
      if func_of.(entry) = entry then begin
        dom.(eb) <- IntSet.singleton eb;
        let members =
          List.filter
            (fun bi -> func_of.(blocks.(bi).first) = entry)
            (List.init nb Fun.id)
        in
        let changed = ref true in
        while !changed do
          changed := false;
          List.iter
            (fun bi ->
              if bi <> eb then begin
                let preds =
                  List.filter
                    (fun p -> func_of.(blocks.(p).first) = entry)
                    pred.(bi)
                in
                let inter =
                  match preds with
                  | [] -> all_blocks (* unreachable within the function *)
                  | p :: rest ->
                      List.fold_left
                        (fun acc q -> IntSet.inter acc dom.(q))
                        dom.(p) rest
                in
                let d = IntSet.add bi inter in
                if not (IntSet.equal d dom.(bi)) then begin
                  dom.(bi) <- d;
                  changed := true
                end
              end)
            members
        done
      end)
    entries;
  {
    program;
    blocks;
    block_of;
    succ;
    pred;
    entries;
    func_of;
    calls = List.rev !calls;
    skims = List.rev !skims;
    falls_off = List.rev !falls_off;
    dom;
  }

let instr_succs t pc =
  let n = Array.length t.program in
  List.filter (fun s -> s >= 0 && s < n) (raw_succs t.program pc)

let dominates t a b =
  let n = Array.length t.program in
  if a < 0 || b < 0 || a >= n || b >= n then false
  else if t.func_of.(a) = -1 || t.func_of.(a) <> t.func_of.(b) then false
  else
    let ba = t.block_of.(a) and bb = t.block_of.(b) in
    if ba = bb then a <= b else IntSet.mem ba t.dom.(bb)

let loops t =
  (* Back edge: block b -> header h with h dominating b; the natural
     loop is h plus everything that reaches b without passing h. *)
  let nb = Array.length t.blocks in
  let tbl = Hashtbl.create 8 in
  for b = 0 to nb - 1 do
    List.iter
      (fun h ->
        if IntSet.mem h t.dom.(b) then begin
          (* collect the loop body for back edge b -> h *)
          let body = Hashtbl.create 8 in
          Hashtbl.replace body h ();
          let rec up x =
            if not (Hashtbl.mem body x) then begin
              Hashtbl.replace body x ();
              List.iter up t.pred.(x)
            end
          in
          up b;
          let members =
            Hashtbl.fold (fun bi () acc -> bi :: acc) body []
          in
          let header_pc = t.blocks.(h).first in
          let existing =
            Option.value ~default:[] (Hashtbl.find_opt tbl header_pc)
          in
          Hashtbl.replace tbl header_pc (members @ existing)
        end)
      t.succ.(b)
  done;
  Hashtbl.fold
    (fun header members acc ->
      let pcs =
        List.sort_uniq Int.compare members
        |> List.concat_map (fun bi ->
               let b = t.blocks.(bi) in
               List.init (b.last - b.first + 1) (fun i -> b.first + i))
      in
      (header, pcs) :: acc)
    tbl []
  |> List.sort Stdlib.compare

let in_loop t pc =
  List.exists (fun (_, pcs) -> List.mem pc pcs) (loops t)

let reachable_between t ~src ~stop =
  let seen = Hashtbl.create 32 in
  let rec go pc =
    if pc <> stop && not (Hashtbl.mem seen pc) then begin
      Hashtbl.replace seen pc ();
      List.iter go (instr_succs t pc)
    end
  in
  go src;
  Hashtbl.fold (fun pc () acc -> pc :: acc) seen [] |> List.sort Int.compare
