(** Static forward-progress verifier: worst-case energy consumption
    (WCEC) per checkpoint-to-checkpoint region.

    The program is partitioned into regions entered at restore points —
    the task entry (pc 0) and every skim target — and bounded along
    intraprocedural paths until the next restore point.  Each region's
    worst-case cycle count comes from an abstract interpretation:
    {!Interval} bounds register values, loop trip counts fall out of the
    counted-loop pattern, and per-instruction costs are
    {!Energy.worst_cycles} (the same latency table the simulator pays).

    A runtime model then converts the raw bound into a per-charge
    bound — the most the device can burn between two power-fail-safe
    points:

    - {!clank}: a watchdog caps any epoch, so every region's per-charge
      bound is [restore + min(watchdog + max_instr, whole-program WCEC)
      + checkpoint], regardless of the raw bound (dynamic epochs may
      span static region boundaries);
    - {!nvp}: every instruction commits, so the bound is
      [restore + max_instr];
    - {!skim_only}: no dynamic safety net — the raw region bound plus
      restore is the per-charge bound, and an unbounded region stays
      unbounded.

    Compared against {!Energy.restart_budget} (the V_on→V_off capacitor
    energy), a finite bound over budget is a [progress-budget] error
    (the device can never finish the region on one charge); a region
    with no static bound is a [progress-unbounded] warning naming the
    binding loop. *)

type runtime = {
  rt_name : string;
  rt_checkpoint_cycles : int;
  rt_restore_cycles : int;
  rt_watchdog_period : int option;
  rt_per_instruction : bool;
}

val clank :
  ?watchdog_period:int ->
  ?checkpoint_cycles:int ->
  ?restore_cycles:int ->
  unit ->
  runtime
(** Defaults mirror [Wn_runtime.Executor.default_clank]. *)

val nvp : ?restore_cycles:int -> unit -> runtime
(** Defaults mirror [Wn_runtime.Executor.default_nvp]. *)

val skim_only : ?restore_cycles:int -> unit -> runtime

val runtime_of_name : string -> runtime option
(** ["clank"], ["nvp"] or ["skim"], with default parameters. *)

type bound = Finite of int | Unbounded of { binding_loop : int }
(** Cycles, saturating well below [max_int]; [binding_loop] is the
    header pc of the loop that defeated the bound. *)

val pp_bound : Format.formatter -> bound -> unit

type region_kind = Task_entry | Skim_target

val kind_name : region_kind -> string

type region = {
  rg_entry : int;  (** restore point the region is entered at *)
  rg_kind : region_kind;
  rg_first : int;  (** lowest pc in the region *)
  rg_last : int;  (** highest pc in the region *)
  rg_size : int;  (** number of instructions in the region *)
  rg_raw : bound;  (** static WCEC of the region, cycles *)
  rg_capped : bound;  (** per-charge bound under the runtime model *)
  rg_energy : float option;  (** joules of [rg_capped] when finite *)
  rg_heavy_loop : int option;  (** header pc of the dominant loop *)
}

type report = {
  rp_runtime : runtime;
  rp_budget : float;  (** usable capacitor energy, joules *)
  rp_cycle_energy : float;  (** joules per cycle *)
  rp_max_instr : int;  (** worst single-instruction latency *)
  rp_total : bound;  (** whole-program WCEC from the task entry *)
  rp_regions : region list;  (** in entry-pc order *)
  rp_trip_bounds : (int * int option) list;
      (** loop header pc -> static trip count, [None] if unbounded *)
}

val analyze :
  ?runtime:runtime -> ?budget:float -> ?cycle_energy:float -> Cfg.t -> report
(** Defaults: {!clank}[ ()], {!Energy.default_restart_budget},
    {!Energy.default_cycle_energy}. *)

val max_region_cycles : report -> bound
(** Largest per-charge bound over all regions — the static ceiling the
    soundness oracle compares against measured per-region cycles. *)

val diagnostics : report -> Diag.t list
(** [progress-budget] errors and [progress-unbounded] warnings, sorted. *)

val check :
  ?runtime:runtime ->
  ?budget:float ->
  ?cycle_energy:float ->
  Cfg.t ->
  Diag.t list
(** [diagnostics (analyze ...)]. *)

val pp_report : Format.formatter -> report -> unit
(** Human-readable table: loop trip counts, then one row per region. *)
