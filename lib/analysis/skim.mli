(** Skim-point safety (paper Section III-C).

    A [Skm] latches a restore target: after the next outage the
    executor resumes *at the target* with volatile state scrubbed,
    instead of rolling back.  That is only sound when

    - the target lies forward of the skim, past the replicas it skips
      ([skim-backward], error);
    - some committed store can reach the skim — a skim latched before
      anything is in NVM guards nothing ([skim-no-commit], error);
    - nothing volatile is live into the target: registers and flags
      are scrubbed on a skim restore ([skim-target-live], error);
    - a target inside a loop does not re-read memory the skipped
      replicas write — those writes may or may not have happened
      ([skim-target-rereads], error);
    - the skim itself is not re-latched every iteration of a loop
      ([skim-in-loop], warning: legal but each latch commits whatever
      partial state the iteration left). *)

val check :
  Cfg.t -> Regflow.t -> accesses:Addr.access list -> Diag.t list
