open Wn_isa

(* An instruction is fusible when executing it inside a superinstruction
   cannot be observed by anything that acts *between* instructions:

   - it never redirects control (straight-line only), so the block's
     exit pc is static;
   - it never writes memory, so a power failure at any interior boundary
     tears nothing (re-execution from the block entry is idempotent and
     the Clank WAR pre-check has nothing to veto);
   - it never latches a skim target (the executor reacts to [Skm] at the
     very boundary it retires);
   - its latency is statically known, so the block's total cycle cost —
     and hence its worst-case energy — is a compile-time constant equal
     to the sum of [Instr.worst_cycles].  This is why a memoizable
     multiply is excluded: with a memo table or zero-skipping enabled its
     latency is 1 or full depending on dynamic state, and the executor's
     energy guard could no longer price the block statically. *)
let fusible ~memoizable (i : 'lbl Instr.t) =
  match i with
  | Instr.Nop | Instr.Mov_imm _ | Instr.Movt _ | Instr.Mov _ | Instr.Alu _
  | Instr.Alu_imm _ | Instr.Shift _ | Instr.Sqrt _ | Instr.Sqrt_asp _
  | Instr.Add_asv _ | Instr.Sub_asv _ | Instr.Cmp _ | Instr.Cmp_imm _
  | Instr.Ldr _ | Instr.Ldr_reg _ ->
      true
  | Instr.Mul _ | Instr.Mul_asp _ -> not memoizable
  | Instr.Halt | Instr.Str _ | Instr.Str_reg _ | Instr.B _ | Instr.Bl _
  | Instr.Bx_lr | Instr.Skm _ ->
      false

let is_load = function Instr.Ldr _ | Instr.Ldr_reg _ -> true | _ -> false

type run = {
  r_first : int;
  r_len : int;
  r_cycles : int;
  r_loads : int;
  r_wn : int;
}

let min_run_len = 2

(* Maximal fusible sub-runs of each CFG basic block, in address order.
   Runs never cross a block boundary: every branch target (and skim
   restore target) is a CFG leader, so any pc an execution can jump to
   is either a run's first instruction or outside every run — entering
   a run mid-way is impossible except by falling through from the
   previous instruction, which is exactly the fused execution order.
   Single-instruction runs are dropped ([min_run_len]): a length-1
   superinstruction costs the same as the per-step path it replaces. *)
let plan ~memoizable program =
  let cfg = Cfg.build program in
  let runs = ref [] in
  let emit first last =
    let len = last - first + 1 in
    if len >= min_run_len then begin
      let cycles = ref 0 and loads = ref 0 and wn = ref 0 in
      for pc = first to last do
        let i = program.(pc) in
        cycles := !cycles + Instr.worst_cycles i;
        if is_load i then incr loads;
        if Instr.is_wn_extension i then incr wn
      done;
      runs :=
        { r_first = first; r_len = len; r_cycles = !cycles; r_loads = !loads;
          r_wn = !wn }
        :: !runs
    end
  in
  Array.iter
    (fun (b : Cfg.block) ->
      let start = ref (-1) in
      for pc = b.Cfg.first to b.Cfg.last do
        if fusible ~memoizable program.(pc) then begin
          if !start < 0 then start := pc
        end
        else begin
          if !start >= 0 then emit !start (pc - 1);
          start := -1
        end
      done;
      if !start >= 0 then emit !start b.Cfg.last)
    cfg.Cfg.blocks;
  List.rev !runs

type stats = {
  instructions : int;  (** program length *)
  fused_instructions : int;  (** instructions covered by some run *)
  runs : int;
  histogram : (int * int) list;  (** (run length, count), ascending *)
}

let stats ~memoizable program =
  let rs = plan ~memoizable program in
  let tbl = Hashtbl.create 16 in
  let covered = ref 0 in
  List.iter
    (fun r ->
      covered := !covered + r.r_len;
      Hashtbl.replace tbl r.r_len
        (1 + Option.value ~default:0 (Hashtbl.find_opt tbl r.r_len)))
    rs;
  {
    instructions = Array.length program;
    fused_instructions = !covered;
    runs = List.length rs;
    histogram =
      List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) tbl []);
  }
