(** Register dataflow over a {!Cfg.t}: liveness plus a forward
    possibly-undefined analysis, and the diagnostics they support.

    Registers and the flags are tracked together as a 17-bit set (16
    architectural registers plus one flags bit; only [Cmp]/[Cmp_imm]
    define flags, only conditional branches use them).

    Liveness is conservative at function exits: a [Bx_lr] block
    assumes everything is live-out (the caller may read any register
    the callee left), while [Halt] ends the task with nothing live.

    The possibly-undefined analysis starts the task entry (pc 0) with
    every register and the flags undefined — the machine resets them
    to zero, so a read before any write observes only the reset value,
    which generated code never relies on.  Other function entries
    assume arguments arrived in registers and report nothing. *)

type t

val compute : Cfg.t -> t

val live_in : t -> int -> Wn_isa.Reg.t list
(** Registers live immediately before the instruction at [pc]. *)

val flags_live_in : t -> int -> bool

val diagnostics : t -> Diag.t list
(** - [uninit-read] (warning): a register or the flags read on some
      path before any write;
    - [dead-store] (warning): a pure register-computing instruction
      whose destination is never read afterwards (memory accesses,
      calls and flag writers are exempt — they have other effects). *)
