type severity = Info | Warning | Error

type t = {
  severity : severity;
  rule : string;
  pc : int option;
  symbol : string option;
  message : string;
}

let make severity ?pc ?symbol ~rule message =
  { severity; rule; pc; symbol; message }

let info ?pc ?symbol ~rule message = make Info ?pc ?symbol ~rule message
let warning ?pc ?symbol ~rule message = make Warning ?pc ?symbol ~rule message
let error ?pc ?symbol ~rule message = make Error ?pc ?symbol ~rule message

let errorf ?pc ?symbol ~rule fmt =
  Printf.ksprintf (fun s -> error ?pc ?symbol ~rule s) fmt

let warningf ?pc ?symbol ~rule fmt =
  Printf.ksprintf (fun s -> warning ?pc ?symbol ~rule s) fmt

let severity_name = function
  | Info -> "info"
  | Warning -> "warning"
  | Error -> "error"

let severity_rank = function Error -> 0 | Warning -> 1 | Info -> 2

let compare a b =
  match Int.compare (severity_rank a.severity) (severity_rank b.severity) with
  | 0 -> (
      match Option.compare Int.compare a.pc b.pc with
      | 0 -> (
          match String.compare a.rule b.rule with
          | 0 -> (
              match Option.compare String.compare a.symbol b.symbol with
              | 0 -> String.compare a.message b.message
              | c -> c)
          | c -> c)
      | c -> c)
  | c -> c

let worst ds =
  List.fold_left
    (fun acc d ->
      match acc with
      | Some s when severity_rank s <= severity_rank d.severity -> acc
      | _ -> Some d.severity)
    None ds

let pp ppf d =
  Format.fprintf ppf "%s[%s]" (severity_name d.severity) d.rule;
  (match d.pc with Some pc -> Format.fprintf ppf " pc %d" pc | None -> ());
  (match d.symbol with Some s -> Format.fprintf ppf " (%s)" s | None -> ());
  Format.fprintf ppf ": %s" d.message

let pp_report ppf = function
  | [] -> Format.fprintf ppf "clean (no diagnostics)"
  | ds ->
      (* [compare] is a total order over every field, so sorting with it
         makes exact duplicates adjacent; report each finding once. *)
      let ds = List.sort_uniq compare ds in
      List.iter (fun d -> Format.fprintf ppf "%a@." pp d) ds;
      let count s = List.length (List.filter (fun d -> d.severity = s) ds) in
      Format.fprintf ppf "%d diagnostics (%d errors, %d warnings, %d notes)"
        (List.length ds) (count Error) (count Warning) (count Info)
