(** IR-level lint: structural invariants every compiler pass must
    preserve.

    The pass pipeline runs this after {e every} IR-to-IR pass, so a
    pass that breaks an invariant is caught immediately and blamed by
    name, instead of surfacing later as an opaque code-generator error.
    The checks mirror exactly what the code generator will reject (or
    silently miscompile):

    - [ir-scope]: every variable read is declared first, under the
      code generator's scoping rules (blocks free their declarations,
      [for] variables shadow, [Decl] of a live name reuses it);
    - [ir-pressure]: peak local-register pressure fits the 7-register
      local pool;
    - [ir-bounds]: array references name a known global; constant
      indices — element or raw byte offsets — stay inside it;
    - [ir-form]: internal forms sit where the code generator accepts
      them ([Sub_load] as a [Mul_asp] operand, [Raw_off] as an array
      index, comparisons only as [if]/loop conditions, shift amounts
      constant and in range);
    - [ir-loop]: loop steps are at least 1 and encodable.

    All findings are error severity: a dirty IR is a compiler bug, not
    a program property. *)

val stmts :
  globals:Wn_lang.Ast.global list ->
  Wn_lang.Ast.stmt list ->
  Diag.t list
(** [stmts ~globals body] checks a kernel body against the
    storage-level global declarations. *)
