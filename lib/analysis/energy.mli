(** Worst-case instruction cost, in cycles and joules.

    This module deliberately owns no constants: latencies are
    {!Wn_isa.Instr.worst_cycles} — the ceiling of the latency table the
    machine executes with (memoization and zero-skipping only shorten
    multiplies) — and energy is cycles × {!Wn_power.Supply}'s
    joules-per-cycle, against {!Wn_power.Capacitor.restart_budget}.
    The static WCEC bounds therefore move in lockstep with any change
    to the simulated cost model, which is what the soundness oracle
    (static bound ≥ measured energy) depends on. *)

open Wn_isa

val default_cycle_energy : float
(** {!Wn_power.Supply.default_cycle_energy} — 1 nJ/cycle. *)

val worst_cycles : 'lbl Instr.t -> int

val energy_of_cycles : cycle_energy:float -> int -> float

val block_worst_cycles : Cfg.t -> int -> int
(** Sum of {!worst_cycles} over one basic block. *)

val max_instruction_cycles : Cfg.t -> int
(** The most expensive single instruction in the program — the slack a
    watchdog-period bound must add (the watchdog fires before a step,
    so an epoch can exceed the period by one instruction). *)

val restart_budget : Wn_power.Capacitor.t -> float
(** Re-export of {!Wn_power.Capacitor.restart_budget}. *)

val default_restart_budget : unit -> float
(** [restart_budget] of the paper's default 10 µF capacitor. *)
