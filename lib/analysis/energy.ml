open Wn_isa

(* The static cost model is the execution cost model, not a copy of it:
   per-instruction worst-case latency comes from [Instr.worst_cycles]
   (the same table [Machine.step]/[step_fast] pay, with memoization and
   zero-skipping only ever shortening it), and the joules-per-cycle and
   capacitor-budget constants come from [Wn_power]. *)

let default_cycle_energy = Wn_power.Supply.default_cycle_energy

let worst_cycles = Instr.worst_cycles

let energy_of_cycles ~cycle_energy cycles =
  float_of_int cycles *. cycle_energy

let block_worst_cycles (cfg : Cfg.t) b =
  let blk = cfg.blocks.(b) in
  let acc = ref 0 in
  for pc = blk.first to blk.last do
    acc := !acc + worst_cycles cfg.program.(pc)
  done;
  !acc

let max_instruction_cycles (cfg : Cfg.t) =
  Array.fold_left (fun acc i -> max acc (worst_cycles i)) 0 cfg.program

let restart_budget = Wn_power.Capacitor.restart_budget

let default_restart_budget () =
  restart_budget (Wn_power.Capacitor.create ())
