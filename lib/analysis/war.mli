(** WAR / idempotency hazards over non-volatile data.

    On an NVP-style platform that re-executes from a checkpoint, a
    read-modify-write of a non-volatile location is the classic
    non-idempotent pattern: after an outage the re-executed read
    observes the already-updated value and the update is applied
    twice.  (The Clank runtime papers over this dynamically by forcing
    a checkpoint before the WAR store; the static check flags code
    that would depend on that safety net.)

    The rule: a store to symbol [s] whose stored value is data-tainted
    by a load from the same [s] is an error — unless a [Skm] has been
    latched on {e every} path reaching the load, because once a skim
    is latched an outage restores at the skim target and the
    read-modify-write can never re-execute.  That is exactly the
    discipline the anytime transforms follow: refinement passes
    accumulate into committed output only after the pass-1 skim. *)

val check : Cfg.t -> accesses:Addr.access list -> Diag.t list
(** [war-hazard] (error): non-idempotent read-modify-write of a
    non-volatile symbol with no skim latched before the read. *)
