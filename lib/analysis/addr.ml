open Wn_isa

type sym = { sym_name : string; sym_addr : int; sym_bytes : int }
type value = Const of int | Base_plus of int | Any

type access = {
  acc_pc : int;
  acc_store : bool;
  acc_width : int;
  acc_addr : value;
  acc_sym : string option;
  acc_lo : int;
  acc_hi : int;
  acc_exact : bool;
}

let width_bytes = function Instr.Byte -> 1 | Instr.Half -> 2 | Instr.Word -> 4

let add_value a b =
  match (a, b) with
  | Const x, Const y -> Const (x + y)
  | Const x, Base_plus y | Base_plus y, Const x -> Base_plus (x + y)
  | Const x, Any | Any, Const x -> Base_plus x
  | _ -> Any

let sub_const a n =
  match a with
  | Const x -> Const (x - n)
  | Base_plus x -> Base_plus (x - n)
  | Any -> Any

(* Abstract effect of one instruction on the register file. *)
let transfer regs (i : int Instr.t) =
  let set r v = regs.(Reg.index r) <- v in
  let get r = regs.(Reg.index r) in
  match i with
  | Instr.Mov_imm (rd, n) -> set rd (Const n)
  | Instr.Movt (rd, hi) ->
      set rd
        (match get rd with
        | Const c -> Const ((c land 0xffff) lor (hi lsl 16))
        | _ -> Any)
  | Instr.Mov (rd, rm) -> set rd (get rm)
  | Instr.Alu (Instr.Add, rd, rn, rm) -> set rd (add_value (get rn) (get rm))
  | Instr.Alu_imm (Instr.Add, rd, rn, n) -> set rd (add_value (get rn) (Const n))
  | Instr.Alu_imm (Instr.Sub, rd, rn, n) -> set rd (sub_const (get rn) n)
  | Instr.Shift (Instr.Lsl, rd, rn, n) ->
      set rd (match get rn with Const c -> Const (c lsl n) | _ -> Any)
  | i -> List.iter (fun r -> set r Any) (Instr.defs i)

let find_sym symbols a =
  List.find_opt
    (fun s -> a >= s.sym_addr && a < s.sym_addr + s.sym_bytes)
    symbols

let resolve symbols ~pc ~store ~width addr =
  let unresolved exact =
    {
      acc_pc = pc;
      acc_store = store;
      acc_width = width;
      acc_addr = addr;
      acc_sym = None;
      acc_lo = 0;
      acc_hi = 0;
      acc_exact = exact;
    }
  in
  match addr with
  | Any -> unresolved false
  | Const a -> (
      match find_sym symbols a with
      | None -> unresolved true
      | Some s ->
          let lo = a - s.sym_addr in
          {
            (unresolved true) with
            acc_sym = Some s.sym_name;
            acc_lo = lo;
            acc_hi = lo + width;
          })
  | Base_plus a -> (
      (* The unknown index is a forward element offset: the access can
         land anywhere from the anchor to the end of its symbol. *)
      match find_sym symbols a with
      | None -> unresolved false
      | Some s ->
          {
            (unresolved false) with
            acc_sym = Some s.sym_name;
            acc_lo = a - s.sym_addr;
            acc_hi = s.sym_bytes;
          })

let accesses ?(symbols = []) (cfg : Cfg.t) =
  let out = ref [] in
  Array.iter
    (fun (blk : Cfg.block) ->
      let regs = Array.make Reg.count Any in
      for pc = blk.first to blk.last do
        let get r = regs.(Reg.index r) in
        (match cfg.program.(pc) with
        | Instr.Ldr { width; base; off; _ } ->
            out :=
              resolve symbols ~pc ~store:false ~width:(width_bytes width)
                (add_value (get base) (Const off))
              :: !out
        | Instr.Str { width; rs = _; base; off } ->
            out :=
              resolve symbols ~pc ~store:true ~width:(width_bytes width)
                (add_value (get base) (Const off))
              :: !out
        | Instr.Ldr_reg { width; base; idx; _ } ->
            out :=
              resolve symbols ~pc ~store:false ~width:(width_bytes width)
                (add_value (get base) (get idx))
              :: !out
        | Instr.Str_reg { width; rs = _; base; idx } ->
            out :=
              resolve symbols ~pc ~store:true ~width:(width_bytes width)
                (add_value (get base) (get idx))
              :: !out
        | _ -> ());
        transfer regs cfg.program.(pc)
      done)
    cfg.blocks;
  List.rev !out
