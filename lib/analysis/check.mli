(** Whole-program static verification of a resolved WN-32 binary.

    Runs every analysis in the library over one program and collects
    the diagnostics:

    - structural: execution falling off the end of the program
      ([falls-off-end], error) and instructions no function entry
      reaches ([unreachable], info);
    - register dataflow: {!Regflow.diagnostics};
    - skim-point safety: {!Skim.check};
    - WAR / idempotency: {!War.check}. *)

val program :
  ?symbols:Addr.sym list -> int Wn_isa.Instr.t array -> Diag.t list
(** Diagnostics in severity order (worst first).  [symbols] enables
    the memory-aware checks; without it only structural and register
    diagnostics are produced. *)
