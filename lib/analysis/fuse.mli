(** Fusibility classification for block-compiled execution.

    Partitions a resolved WN-32 program into maximal straight-line runs
    of instructions the machine may execute as one fused
    superinstruction: no control transfer, no store (a mid-block outage
    can tear nothing), no [Skm] latch, and a statically known latency —
    so a run's total cycle count equals the sum of
    {!Wn_isa.Instr.worst_cycles} over its pc range, the same price the
    {!Energy}/{!Progress} WCEC verifier charges it.  Runs respect
    {!Cfg.build} block boundaries, so every possible jump target is
    either a run entry or outside all runs. *)

open Wn_isa

val fusible : memoizable:bool -> 'lbl Instr.t -> bool
(** Whether one instruction may live inside a fused run.  [memoizable]
    is the machine configuration's [memo_entries <> None || zero_skip]:
    when set, multiplies have data-dependent latency and are excluded so
    fused blocks keep compile-time cycle totals. *)

type run = {
  r_first : int;  (** pc of the first fused instruction *)
  r_len : int;  (** number of instructions, >= {!min_run_len} *)
  r_cycles : int;  (** total latency: sum of [Instr.worst_cycles], exact
                       for fusible instructions *)
  r_loads : int;  (** number of load instructions in the run *)
  r_wn : int;  (** number of WN-extension instructions in the run *)
}

val min_run_len : int
(** Shortest run worth fusing (2): a length-1 block costs what the
    per-step path costs. *)

val plan : memoizable:bool -> int Instr.t array -> run list
(** Maximal fusible runs, in address order, none crossing a
    {!Cfg.build} basic-block boundary. *)

type stats = {
  instructions : int;  (** program length *)
  fused_instructions : int;  (** instructions covered by some run *)
  runs : int;
  histogram : (int * int) list;  (** (run length, count), ascending *)
}

val stats : memoizable:bool -> int Instr.t array -> stats
(** Coverage summary of {!plan} — the block-length histogram reported
    in EXPERIMENTS.md. *)
