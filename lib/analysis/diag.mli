(** Structured diagnostics emitted by the static verifier.

    Every finding carries a severity, the rule that produced it, the
    program counter it anchors to (when meaningful) and, for memory
    hazards, the symbol involved.  Diagnostics are plain values so
    callers can filter, count or raise on them; {!pp} renders the
    one-line form used by [wn lint]. *)

type severity = Info | Warning | Error

type t = {
  severity : severity;
  rule : string;  (** stable rule identifier, e.g. ["war-self-update"] *)
  pc : int option;  (** instruction address the finding anchors to *)
  symbol : string option;  (** data symbol involved, for memory hazards *)
  message : string;
}

val info : ?pc:int -> ?symbol:string -> rule:string -> string -> t
val warning : ?pc:int -> ?symbol:string -> rule:string -> string -> t
val error : ?pc:int -> ?symbol:string -> rule:string -> string -> t

val errorf :
  ?pc:int -> ?symbol:string -> rule:string ->
  ('a, unit, string, t) format4 -> 'a

val warningf :
  ?pc:int -> ?symbol:string -> rule:string ->
  ('a, unit, string, t) format4 -> 'a

val severity_name : severity -> string

val compare : t -> t -> int
(** Orders by severity (errors first), then program counter, then rule,
    then symbol, then message — a total order over every field, so two
    diagnostics compare equal only when they are exact duplicates. *)

val worst : t list -> severity option
(** Highest severity present, [None] on a clean report. *)

val pp : Format.formatter -> t -> unit
(** One line: [error\[war-hazard\] pc 42 (x): message]. *)

val pp_report : Format.formatter -> t list -> unit
(** Sorted list of {!pp} lines followed by a count summary; exact
    duplicates are reported once; prints ["clean (no diagnostics)"] for
    the empty list. *)
