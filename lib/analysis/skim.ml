open Wn_isa

(* Blocks from which [b] is reachable, [b] included. *)
let blocks_reaching (cfg : Cfg.t) b =
  let n = Array.length cfg.blocks in
  let seen = Array.make n false in
  let q = Queue.create () in
  Queue.add b q;
  while not (Queue.is_empty q) do
    let x = Queue.pop q in
    if not seen.(x) then begin
      seen.(x) <- true;
      List.iter (fun p -> if not seen.(p) then Queue.add p q) cfg.pred.(x)
    end
  done;
  seen

let store_reaches cfg pc =
  let b = cfg.Cfg.block_of.(pc) in
  let reaching = blocks_reaching cfg b in
  let block_has_store bi upto =
    let blk = cfg.Cfg.blocks.(bi) in
    let last = min blk.Cfg.last upto in
    let found = ref false in
    for q = blk.Cfg.first to last do
      if Instr.writes_memory cfg.Cfg.program.(q) then found := true
    done;
    !found
  in
  let any = ref false in
  Array.iteri
    (fun bi r ->
      if r then
        (* within the skim's own block only the prefix counts *)
        let upto = if bi = b then pc - 1 else max_int in
        if block_has_store bi upto then any := true)
    reaching;
  !any

let sym_of_access pc ~store accesses =
  List.filter_map
    (fun (a : Addr.access) ->
      if a.acc_pc = pc && a.acc_store = store then a.acc_sym else None)
    accesses

let check (cfg : Cfg.t) regflow ~accesses =
  let n = Array.length cfg.program in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  let loops = Cfg.loops cfg in
  List.iter
    (fun (pc, target) ->
      if target < 0 || target >= n then
        add
          (Diag.errorf ~pc ~rule:"skim-target"
             "skim target %d is outside the program" target)
      else if target <= pc then
        add
          (Diag.errorf ~pc ~rule:"skim-backward"
             "skim target %d precedes the skim point; a restore there \
              would re-run committed work"
             target)
      else begin
        if List.exists (fun (_, pcs) -> List.mem pc pcs) loops then
          add
            (Diag.warningf ~pc ~rule:"skim-in-loop"
               "skim is re-latched every loop iteration; each latch \
                commits whatever partial state the iteration left");
        if not (store_reaches cfg pc) then
          add
            (Diag.errorf ~pc ~rule:"skim-no-commit"
               "no store can execute before this skim; the latched \
                state contains no committed result");
        let live = Regflow.live_in regflow target in
        let flags = Regflow.flags_live_in regflow target in
        if live <> [] || flags then
          add
            (Diag.errorf ~pc ~rule:"skim-target-live"
               "%s live into skim target %d, but a skim restore scrubs \
                all volatile state"
               (String.concat ", "
                  (List.map Reg.to_string live
                  @ if flags then [ "flags" ] else []))
               target);
        (* A target inside a loop whose body reloads what the skipped
           code stores observes replicas that may never have run. *)
        let target_loops =
          List.filter (fun (_, pcs) -> List.mem target pcs) loops
        in
        if target_loops <> [] then begin
          let skipped =
            if pc + 1 < n then
              Cfg.reachable_between cfg ~src:(pc + 1) ~stop:target
            else []
          in
          let skipped_writes =
            List.concat_map
              (fun q -> sym_of_access q ~store:true accesses)
              skipped
            |> List.sort_uniq String.compare
          in
          let reread =
            List.concat_map
              (fun (_, pcs) ->
                List.concat_map
                  (fun q -> sym_of_access q ~store:false accesses)
                  pcs)
              target_loops
            |> List.sort_uniq String.compare
            |> List.filter (fun s -> List.mem s skipped_writes)
          in
          if reread <> [] then
            add
              (Diag.errorf ~pc ~rule:"skim-target-rereads"
                 "skim target %d sits in a loop that re-reads %s, which \
                  the skipped code writes"
                 target
                 (String.concat ", " reread))
        end
      end)
    cfg.skims;
  List.rev !diags
