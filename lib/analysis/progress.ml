open Wn_isa

(* ---------------- runtime models ---------------- *)

type runtime = {
  rt_name : string;
  rt_checkpoint_cycles : int;
  rt_restore_cycles : int;
  rt_watchdog_period : int option;
  rt_per_instruction : bool;
}

(* The default numbers mirror [Wn_runtime.Executor.default_clank] /
   [default_nvp]; a unit test asserts they stay in lockstep (the
   analysis library cannot depend on the runtime library: the runtime
   is downstream of the machine, the analysis upstream of the
   compiler). *)
let clank ?(watchdog_period = 8_000) ?(checkpoint_cycles = 40)
    ?(restore_cycles = 40) () =
  {
    rt_name = "clank";
    rt_checkpoint_cycles = checkpoint_cycles;
    rt_restore_cycles = restore_cycles;
    rt_watchdog_period = Some watchdog_period;
    rt_per_instruction = false;
  }

let nvp ?(restore_cycles = 8) () =
  {
    rt_name = "nvp";
    rt_checkpoint_cycles = 0;
    rt_restore_cycles = restore_cycles;
    rt_watchdog_period = None;
    rt_per_instruction = true;
  }

let skim_only ?(restore_cycles = 40) () =
  {
    rt_name = "skim";
    rt_checkpoint_cycles = 0;
    rt_restore_cycles = restore_cycles;
    rt_watchdog_period = None;
    rt_per_instruction = false;
  }

let runtime_of_name = function
  | "clank" -> Some (clank ())
  | "nvp" -> Some (nvp ())
  | "skim" -> Some (skim_only ())
  | _ -> None

(* ---------------- saturating cycle arithmetic ---------------- *)

(* Bounds saturate far below [max_int]: a saturated bound still compares
   as "exceeds any realistic budget" without ever wrapping. *)
let sat_cap = max_int / 4

let sat n = if n >= sat_cap then sat_cap else n

let sat_add a b = if a >= sat_cap - b then sat_cap else a + b

let sat_mul a b =
  if a = 0 || b = 0 then 0 else if a >= sat_cap / b then sat_cap else a * b

type bound = Finite of int | Unbounded of { binding_loop : int }

let pp_bound ppf = function
  | Finite c -> Format.fprintf ppf "%d" c
  | Unbounded { binding_loop } ->
      Format.fprintf ppf "unbounded (loop at pc %d)" binding_loop

(* ---------------- loop trip counts ---------------- *)

let negate_cond (c : Cond.t) =
  match c with
  | Cond.Al -> None
  | Cond.Eq -> Some Cond.Ne
  | Cond.Ne -> Some Cond.Eq
  | Cond.Lt -> Some Cond.Ge
  | Cond.Ge -> Some Cond.Lt
  | Cond.Gt -> Some Cond.Le
  | Cond.Le -> Some Cond.Gt
  | Cond.Lo -> Some Cond.Hs
  | Cond.Hs -> Some Cond.Lo
  | Cond.Mi -> Some Cond.Pl
  | Cond.Pl -> Some Cond.Mi

let ceil_div a b = (a + b - 1) / b

let signed_max = 0x8000_0000 (* exclusive bound for "fits signed compare" *)
let u32_max = Interval.u32_max

(* Worst-case iteration count of one natural loop (executions of any
   member per entry of the loop), or [None] when no sound static bound
   exists.  The recognized shape is a counted loop:

   - exactly one exit block, whose conditional branch is fed by the
     immediately preceding compare, and which dominates every back-edge
     source (the test runs on every iteration);
   - the counter has exactly one definition inside the loop — an
     add/sub of a positive constant — that also dominates every
     back-edge source;
   - no calls inside the loop (a callee could clobber the counter);
   - the counter's entry value and the compare's limit have usable
     intervals from the {!Interval} analysis (an immediate limit is the
     degenerate constant interval).

   If any skim target lies inside the loop, a restore can restart the
   body with a scrubbed (zero) counter, so the entry interval is joined
   with [0,0] before the trip arithmetic. *)
let loop_trip_bound (cfg : Cfg.t) itv ~skim_target_pcs (header, member_pcs) =
  let ( let* ) = Option.bind in
  let guard b = if b then Some () else None in
  let n = Array.length cfg.program in
  let member_blocks =
    List.sort_uniq Int.compare
      (List.map (fun pc -> cfg.block_of.(pc)) member_pcs)
  in
  let in_loop_blk b = List.mem b member_blocks in
  let* () =
    guard
      (not
         (List.exists
            (fun pc ->
              match cfg.program.(pc) with Instr.Bl _ -> true | _ -> false)
            member_pcs))
  in
  let header_b = cfg.block_of.(header) in
  let latches =
    List.filter (fun b -> List.mem header_b cfg.succ.(b)) member_blocks
  in
  (* Loop entry must be through the header alone (true for natural
     loops of a reducible region; give up otherwise). *)
  let* () =
    guard
      (not
         (List.exists
            (fun b ->
              b <> header_b
              && List.exists (fun p -> not (in_loop_blk p)) cfg.pred.(b))
            member_blocks))
  in
  let* exit_b =
    match
      List.filter
        (fun b -> List.exists (fun s -> not (in_loop_blk s)) cfg.succ.(b))
        member_blocks
    with
    | [ e ] -> Some e
    | _ -> None
  in
  let exit_first = cfg.blocks.(exit_b).first in
  let exit_last = cfg.blocks.(exit_b).last in
  let dominates_latches pc =
    List.for_all (fun l -> Cfg.dominates cfg pc cfg.blocks.(l).last) latches
  in
  let* () = guard (dominates_latches exit_first) in
  let* cond, target =
    match cfg.program.(exit_last) with
    | Instr.B (cond, target) when cond <> Cond.Al -> Some (cond, target)
    | _ -> None
  in
  (* condition under which execution stays in the loop *)
  let* cont =
    if target >= 0 && target < n && in_loop_blk cfg.block_of.(target) then
      Some cond
    else negate_cond cond
  in
  let* () = guard (exit_last - 1 >= exit_first) in
  let cmp_pc = exit_last - 1 in
  let* rn, lim =
    match cfg.program.(cmp_pc) with
    | Instr.Cmp_imm (rn, imm) -> Some (rn, Interval.const imm)
    | Instr.Cmp (rn, rm) -> Some (rn, Interval.reg_at itv cmp_pc rm)
    | _ -> None
  in
  let* () = guard (not (Interval.is_top lim)) in
  let* def_pc =
    match
      List.filter
        (fun pc -> List.exists (Reg.equal rn) (Instr.defs cfg.program.(pc)))
        member_pcs
    with
    | [ d ] -> Some d
    | _ -> None
  in
  let* () = guard (dominates_latches def_pc) in
  (* Counter value on loop entry: join of the header's outside
     predecessors' out-states (plus zero if a restore can land inside
     the loop with a scrubbed register file). *)
  let* init =
    List.fold_left
      (fun acc p ->
        if in_loop_blk p then acc
        else
          let v = Interval.reg_out_of_block itv p rn in
          match acc with
          | None -> Some v
          | Some a -> Some (Interval.join_itv a v))
      None cfg.pred.(header_b)
  in
  let init =
    if List.exists (fun t -> List.mem t member_pcs) skim_target_pcs then
      Interval.join_itv init (Interval.const 0)
    else init
  in
  let i_lo = init.Interval.lo and i_hi = init.Interval.hi in
  let l_lo = lim.Interval.lo and l_hi = lim.Interval.hi in
  match cfg.program.(def_pc) with
  | Instr.Alu_imm (Instr.Add, rd, rs, step)
    when Reg.equal rd rn && Reg.equal rs rn && step > 0 -> (
      (* up-counting *)
      match cont with
      | Cond.Lt when i_hi < signed_max && l_hi < signed_max ->
          Some (max 0 (ceil_div (l_hi - i_lo) step))
      | Cond.Le when i_hi < signed_max && l_hi + 1 < signed_max ->
          Some (max 0 (ceil_div (l_hi + 1 - i_lo) step))
      | Cond.Lo when l_hi - 1 + step <= u32_max ->
          (* Without the guard, a counter at limit-1 with step > 1 can
             wrap past a limit near u32_max and never exit. *)
          Some (max 0 (ceil_div (l_hi - i_lo) step))
      | Cond.Ne
        when i_lo = i_hi && l_lo = l_hi && l_lo >= i_lo
             && (l_lo - i_lo) mod step = 0 ->
          Some ((l_lo - i_lo) / step)
      | _ -> None)
  | Instr.Alu_imm (Instr.Sub, rd, rs, step)
    when Reg.equal rd rn && Reg.equal rs rn && step > 0 -> (
      (* down-counting *)
      match cont with
      | Cond.Gt when i_hi < signed_max && l_hi < signed_max ->
          Some (max 0 (ceil_div (i_hi - l_lo) step))
      | Cond.Ge when i_hi < signed_max && l_hi < signed_max ->
          Some (max 0 (ceil_div (i_hi - l_lo + 1) step))
      | Cond.Hs when l_lo >= step ->
          Some (max 0 (ceil_div (i_hi - l_lo + 1) step))
      | _ -> None)
  | _ -> None

(* ---------------- regions and WCEC ---------------- *)

type region_kind = Task_entry | Skim_target

let kind_name = function
  | Task_entry -> "task-entry"
  | Skim_target -> "skim-target"

type region = {
  rg_entry : int;
  rg_kind : region_kind;
  rg_first : int;
  rg_last : int;
  rg_size : int;
  rg_raw : bound;
  rg_capped : bound;
  rg_energy : float option;
  rg_heavy_loop : int option;
}

type report = {
  rp_runtime : runtime;
  rp_budget : float;
  rp_cycle_energy : float;
  rp_max_instr : int;
  rp_total : bound;
  rp_regions : region list;
  rp_trip_bounds : (int * int option) list;
}

(* Per-pc iteration multiplier: the product of (trips + 1) over every
   loop containing the pc (+1 covers the final exit test, which runs
   once more than the body).  A loop with no static trip count makes
   its members unbounded; the loop header is remembered as the binding
   loop. *)
let multipliers cfg trip_bounds n =
  let mult = Array.make n 1 in
  let binding = Array.make n (-1) in
  List.iter
    (fun ((header, pcs), trips) ->
      match trips with
      | Some t ->
          List.iter
            (fun pc -> mult.(pc) <- sat_mul mult.(pc) (sat (t + 1)))
            pcs
      | None ->
          List.iter
            (fun pc -> if binding.(pc) < 0 then binding.(pc) <- header)
            pcs)
    (List.map2 (fun l t -> (l, t)) (Cfg.loops cfg) trip_bounds);
  (mult, binding)

(* Worst-case cycles of a whole function (by entry pc), call costs
   folded in; recursion is unbounded. *)
let func_wcec cfg mult binding =
  let memo = Hashtbl.create 8 in
  let rec go visiting entry =
    match Hashtbl.find_opt memo entry with
    | Some b -> b
    | None ->
        if List.mem entry visiting then Unbounded { binding_loop = entry }
        else begin
          let acc = ref (Finite 0) in
          let add_cycles c =
            match !acc with
            | Finite a -> acc := Finite (sat_add a c)
            | Unbounded _ -> ()
          in
          let mark_unbounded header =
            match !acc with
            | Finite _ -> acc := Unbounded { binding_loop = header }
            | Unbounded _ -> ()
          in
          Array.iteri
            (fun pc i ->
              if cfg.Cfg.func_of.(pc) = entry then begin
                if binding.(pc) >= 0 then mark_unbounded binding.(pc)
                else add_cycles (sat_mul (Instr.worst_cycles i) mult.(pc));
                match i with
                | Instr.Bl t when t >= 0 && t < Array.length cfg.Cfg.program
                  -> (
                    match go (entry :: visiting) cfg.Cfg.func_of.(t) with
                    | Finite c -> add_cycles (sat_mul c mult.(pc))
                    | Unbounded _ as u -> (
                        match !acc with Finite _ -> acc := u | _ -> ()))
                | _ -> ()
              end)
            cfg.Cfg.program;
          Hashtbl.replace memo entry !acc;
          !acc
        end
  in
  go []

(* pcs of the region entered at [entry]: everything reachable along
   intraprocedural edges without crossing another boundary. *)
let region_pcs cfg ~boundaries entry =
  let seen = Hashtbl.create 64 in
  let rec go pc =
    if not (Hashtbl.mem seen pc) then begin
      Hashtbl.replace seen pc ();
      List.iter
        (fun s -> if not (List.mem s boundaries && s <> entry) then go s)
        (Cfg.instr_succs cfg pc)
    end
  in
  go entry;
  Hashtbl.fold (fun pc () acc -> pc :: acc) seen [] |> List.sort Int.compare

let region_raw_wcec cfg mult binding callee_cost pcs =
  let acc = ref (Finite 0) in
  let heavy = Hashtbl.create 8 in
  List.iter
    (fun pc ->
      let i = cfg.Cfg.program.(pc) in
      if binding.(pc) >= 0 then (
        match !acc with
        | Finite _ -> acc := Unbounded { binding_loop = binding.(pc) }
        | Unbounded _ -> ())
      else begin
        let c = sat_mul (Instr.worst_cycles i) mult.(pc) in
        (match !acc with
        | Finite a -> acc := Finite (sat_add a c)
        | Unbounded _ -> ());
        if mult.(pc) > 1 then begin
          (* attribute the cost to every loop containing this pc so the
             diagnostic can name the dominant one *)
          List.iter
            (fun (header, lpcs) ->
              if List.mem pc lpcs then
                Hashtbl.replace heavy header
                  (sat_add
                     (Option.value ~default:0 (Hashtbl.find_opt heavy header))
                     c))
            (Cfg.loops cfg)
        end
      end;
      match i with
      | Instr.Bl t when t >= 0 && t < Array.length cfg.Cfg.program -> (
          match callee_cost cfg.Cfg.func_of.(t) with
          | Finite c -> (
              match !acc with
              | Finite a -> acc := Finite (sat_add a (sat_mul c mult.(pc)))
              | Unbounded _ -> ())
          | Unbounded _ as u -> (
              match !acc with Finite _ -> acc := u | _ -> ()))
      | _ -> ())
    pcs;
  let heaviest =
    Hashtbl.fold
      (fun header c acc ->
        match acc with
        | Some (_, best) when best >= c -> acc
        | _ -> Some (header, c))
      heavy None
  in
  (!acc, Option.map fst heaviest)

let analyze ?(runtime = clank ()) ?budget ?cycle_energy (cfg : Cfg.t) =
  let budget =
    match budget with Some b -> b | None -> Energy.default_restart_budget ()
  in
  let cycle_energy =
    match cycle_energy with
    | Some e -> e
    | None -> Energy.default_cycle_energy
  in
  let n = Array.length cfg.program in
  let itv = Interval.analyze cfg in
  let skim_target_pcs =
    List.filter_map
      (fun (_, t) -> if t >= 0 && t < n then Some t else None)
      cfg.skims
    |> List.sort_uniq Int.compare
  in
  let loops = Cfg.loops cfg in
  let trip_bounds =
    List.map (loop_trip_bound cfg itv ~skim_target_pcs) loops
  in
  let mult, binding = multipliers cfg trip_bounds n in
  let callee_cost = func_wcec cfg mult binding in
  let max_instr = Energy.max_instruction_cycles cfg in
  let whole_program =
    fst
      (region_raw_wcec cfg mult binding callee_cost
         (region_pcs cfg ~boundaries:[ 0 ] 0))
  in
  let boundaries = List.sort_uniq Int.compare (0 :: skim_target_pcs) in
  let cap_bound raw =
    if runtime.rt_per_instruction then
      Finite (sat_add runtime.rt_restore_cycles max_instr)
    else
      match runtime.rt_watchdog_period with
      | Some w ->
          (* A Clank-style epoch can span static region boundaries, so
             the per-charge unit is the watchdog-capped epoch (plus one
             instruction of slack: the watchdog fires before a step),
             program-wide — tightened by the whole-program bound when
             that is smaller. *)
          let epoch = sat_add w max_instr in
          let epoch =
            match whole_program with
            | Finite t -> min epoch t
            | Unbounded _ -> epoch
          in
          Finite
            (sat_add runtime.rt_restore_cycles
               (sat_add epoch runtime.rt_checkpoint_cycles))
      | None -> (
          match raw with
          | Finite r -> Finite (sat_add runtime.rt_restore_cycles r)
          | Unbounded _ as u -> u)
  in
  let regions =
    List.map
      (fun entry ->
        let pcs = region_pcs cfg ~boundaries entry in
        let raw, heavy = region_raw_wcec cfg mult binding callee_cost pcs in
        let capped = cap_bound raw in
        {
          rg_entry = entry;
          rg_kind = (if entry = 0 then Task_entry else Skim_target);
          rg_first = List.fold_left min entry pcs;
          rg_last = List.fold_left max entry pcs;
          rg_size = List.length pcs;
          rg_raw = raw;
          rg_capped = capped;
          rg_energy =
            (match capped with
            | Finite c -> Some (Energy.energy_of_cycles ~cycle_energy c)
            | Unbounded _ -> None);
          rg_heavy_loop = heavy;
        })
      boundaries
  in
  {
    rp_runtime = runtime;
    rp_budget = budget;
    rp_cycle_energy = cycle_energy;
    rp_max_instr = max_instr;
    rp_total = whole_program;
    rp_regions = regions;
    rp_trip_bounds =
      List.map2 (fun (header, _) t -> (header, t)) loops trip_bounds;
  }

let max_region_cycles report =
  List.fold_left
    (fun acc r ->
      match (acc, r.rg_capped) with
      | (Unbounded _ as u), _ | _, (Unbounded _ as u) -> u
      | Finite a, Finite b -> Finite (max a b))
    (Finite 0) report.rp_regions

let uj j = j *. 1e6

let diagnostics report =
  List.concat_map
    (fun r ->
      let span =
        Printf.sprintf "pcs %d..%d (%d instructions)" r.rg_first r.rg_last
          r.rg_size
      in
      let unbounded =
        match r.rg_raw with
        | Unbounded { binding_loop } ->
            [
              Diag.warningf ~pc:r.rg_entry ~rule:"progress-unbounded"
                "%s region covering %s has no static WCEC bound: the \
                 loop at pc %d has no provable trip count"
                (kind_name r.rg_kind) span binding_loop;
            ]
        | Finite _ -> []
      in
      let over_budget =
        match (r.rg_capped, r.rg_energy) with
        | Finite c, Some e when e > report.rp_budget ->
            let loop_note =
              match r.rg_heavy_loop with
              | Some h -> Printf.sprintf "; dominant loop at pc %d" h
              | None -> ""
            in
            [
              Diag.errorf ~pc:r.rg_entry ~rule:"progress-budget"
                "%s region covering %s needs up to %d cycles (%.3f uJ) \
                 per charge under %s, exceeding the usable capacitor \
                 budget of %.3f uJ (V_on->V_off)%s — the device cannot \
                 make forward progress"
                (kind_name r.rg_kind) span c (uj e) report.rp_runtime.rt_name
                (uj report.rp_budget) loop_note;
            ]
        | _ -> []
      in
      unbounded @ over_budget)
    report.rp_regions
  |> List.sort Diag.compare

let check ?runtime ?budget ?cycle_energy cfg =
  diagnostics (analyze ?runtime ?budget ?cycle_energy cfg)

let pp_report ppf report =
  Format.fprintf ppf
    "forward-progress: runtime %s, budget %.3f uJ (V_on->V_off), %.2f \
     nJ/cycle, max instruction %d cycles@."
    report.rp_runtime.rt_name (uj report.rp_budget)
    (report.rp_cycle_energy *. 1e9)
    report.rp_max_instr;
  Format.fprintf ppf "whole-program WCEC: %a cycles@." pp_bound
    report.rp_total;
  List.iter
    (fun (header, trips) ->
      match trips with
      | Some t ->
          Format.fprintf ppf "loop at pc %d: <= %d iterations@." header t
      | None ->
          Format.fprintf ppf "loop at pc %d: no static trip count@." header)
    report.rp_trip_bounds;
  Format.fprintf ppf
    "%-6s %-12s %-14s %-16s %-12s %s@." "entry" "kind" "pcs" "raw WCEC"
    "per-charge" "energy";
  List.iter
    (fun r ->
      let energy =
        match r.rg_energy with
        | Some e ->
            Printf.sprintf "%.3f uJ %s" (uj e)
              (if e > report.rp_budget then "OVER BUDGET" else "ok")
        | None -> "-"
      in
      Format.fprintf ppf "%-6d %-12s %3d..%-8d %-16s %-12s %s@." r.rg_entry
        (kind_name r.rg_kind) r.rg_first r.rg_last
        (Format.asprintf "%a" pp_bound r.rg_raw)
        (Format.asprintf "%a" pp_bound r.rg_capped)
        energy)
    report.rp_regions
