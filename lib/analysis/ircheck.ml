open Wn_lang
open Ast

(* Size of the code generator's local pool (r5-r11). *)
let local_pool_size = 7

let stmts ~globals body =
  let diags = ref [] in
  let report d = diags := d :: !diags in
  let err rule fmt =
    Printf.ksprintf (fun m -> report (Diag.error ~rule m)) fmt
  in
  let global name = List.find_opt (fun g -> g.g_name = name) globals in
  let pressure = ref 0 in
  (* --- expressions ---------------------------------------------- *)
  let check_array_ref arr =
    match global arr with
    | Some g -> Some g
    | None ->
        err "ir-bounds" "reference to unknown array %S" arr;
        None
  in
  let check_index arr idx =
    match (check_array_ref arr, idx) with
    | Some g, Int n when n < 0 || n >= g.g_count ->
        err "ir-bounds" "%s[%d] out of bounds (count %d)" arr n g.g_count
    | Some g, Raw_off (Int k)
      when k < 0 || k > (g.g_count * ty_bytes g.g_ty) - ty_bytes g.g_ty ->
        err "ir-bounds" "%s[@%d] byte offset out of bounds (%d bytes)" arr k
          (g.g_count * ty_bytes g.g_ty)
    | _ -> ()
  in
  (* [env] is the list of variables in scope.  [if_cond] permits one
     top-level comparison; [raw_ok] permits a top-level [Raw_off]
     (index positions only). *)
  let rec expr env ?(if_cond = false) ?(raw_ok = false) e =
    match e with
    | Int _ -> ()
    | Var v ->
        if not (List.mem v env) then
          err "ir-scope" "read of undeclared variable %S" v
    | Load (arr, idx) ->
        check_index arr idx;
        expr env ~raw_ok:true idx
    | Raw_off inner ->
        if not raw_ok then
          err "ir-form" "raw byte offset outside an array index"
        else expr env inner
    | Sub_load _ ->
        (* only legal as a [Mul_asp] operand, matched below *)
        err "ir-form" "subword load outside MUL_ASP"
    | Mul_asp (m, Sub_load { sl_arr; sl_index; sl_shift }, _) ->
        expr env m;
        check_index sl_arr sl_index;
        expr env ~raw_ok:true sl_index;
        if sl_shift < 0 || sl_shift > 31 then
          err "ir-form" "subword shift %d out of range" sl_shift
    | Mul_asp (m, sub, _) ->
        expr env m;
        expr env sub
    | Binop (op, a, b) when is_comparison op ->
        if not if_cond then
          err "ir-form" "comparison outside a condition";
        expr env a;
        expr env b
    | Binop ((Shl | Shr), a, b) ->
        expr env a;
        (match b with
        | Int n when n >= 0 && n < 32 -> ()
        | Int n -> err "ir-form" "shift amount %d out of range" n
        | _ -> err "ir-form" "shift amount must be constant");
        (match b with Int _ -> () | b -> expr env b)
    | Binop (_, a, b) ->
        expr env a;
        expr env b
    | Asv_op (op, _, a, b) ->
        (match op with
        | Add | Sub | And | Or | Xor -> ()
        | Mul | Shl | Shr | Eq | Ne | Lt | Le | Gt | Ge ->
            err "ir-form" "unsupported vector operator %s" (binop_name op));
        expr env a;
        expr env b
    | Neg a | Bnot a | Sqrt a | Sqrt_asp (a, _) -> expr env a
  in
  (* --- statements: the code generator's exact scoping ------------ *)
  let bump env =
    if List.length env > !pressure then pressure := List.length env
  in
  let rec block env stmts = ignore (List.fold_left stmt env stmts)
  and stmt env s =
    match s with
    | Decl (n, e) ->
        expr env e;
        if List.mem n env then env
        else begin
          let env = n :: env in
          bump env;
          env
        end
    | Assign (Lvar v, e) ->
        if not (List.mem v env) then
          err "ir-scope" "assignment to undeclared variable %S" v;
        expr env e;
        env
    | Assign (Larr (arr, idx), e) ->
        check_index arr idx;
        expr env ~raw_ok:true idx;
        expr env e;
        env
    | Aug_assign (lhs, op, e) ->
        if is_comparison op then
          err "ir-form" "comparison in augmented assignment";
        (match lhs with
        | Lvar v ->
            if not (List.mem v env) then
              err "ir-scope" "assignment to undeclared variable %S" v
        | Larr (arr, idx) ->
            check_index arr idx;
            expr env ~raw_ok:true idx);
        expr env e;
        env
    | For l ->
        if l.step < 1 || l.step > 0xFFF then
          err "ir-loop" "loop step %d not encodable" l.step;
        expr env l.lo;
        expr env l.hi;
        (* the loop variable shadows: gen_for allocates unconditionally *)
        let env' = l.var :: env in
        bump env';
        block env' l.body;
        env
    | If (c, a, b) ->
        (match c with
        | Binop (op, _, _) when is_comparison op -> expr env ~if_cond:true c
        | _ ->
            err "ir-form" "condition must be a comparison";
            expr env c);
        block env a;
        block env b;
        env
    | Anytime { body; commit } ->
        (* precise lowering shares one scope across body and commit *)
        ignore (List.fold_left stmt (List.fold_left stmt env body) commit);
        env
    | Skim_here -> env
  in
  block [] body;
  if !pressure > local_pool_size then
    err "ir-pressure" "local-register pressure %d exceeds the %d-register pool"
      !pressure local_pool_size;
  List.rev !diags
