open Wn_isa

let u32_max = 0xFFFF_FFFF

type itv = { lo : int; hi : int }

let top = { lo = 0; hi = u32_max }
let const v = { lo = v land u32_max; hi = v land u32_max }
let make lo hi = { lo = max 0 lo; hi = min u32_max hi }
let is_top v = v.lo = 0 && v.hi = u32_max
let is_const v = if v.lo = v.hi then Some v.lo else None
let itv_equal a b = a.lo = b.lo && a.hi = b.hi

let join_itv a b = { lo = min a.lo b.lo; hi = max a.hi b.hi }

(* Classic interval widening: any bound still moving after the delay
   jumps straight to the domain bound. *)
let widen_itv old next =
  {
    lo = (if next.lo < old.lo then 0 else old.lo);
    hi = (if next.hi > old.hi then u32_max else old.hi);
  }

(* Abstract transfer helpers.  Everything is unsigned 32-bit; any
   operation that could wrap goes to [top] rather than modelling the
   wrap. *)
let add_itv a b =
  if a.hi + b.hi > u32_max then top else { lo = a.lo + b.lo; hi = a.hi + b.hi }

let sub_itv a b =
  if a.lo - b.hi < 0 then top else { lo = a.lo - b.hi; hi = a.hi - b.lo }

let mul_itv a b =
  (* The division guard avoids computing a.hi * b.hi when it would
     exceed the native int range (u32_max^2 > 2^62 wraps negative and
     would slip past a plain [> u32_max] check). *)
  if b.hi <> 0 && a.hi > u32_max / b.hi then top
  else { lo = a.lo * b.lo; hi = a.hi * b.hi }

(* Smallest all-ones mask covering v: OR/EOR results never exceed it. *)
let bits_mask v =
  let rec go m = if m >= v then m else go ((m lsl 1) lor 1) in
  go 0

let alu_itv (op : Instr.alu_op) a b =
  match op with
  | Add | Adc -> add_itv a b
  | Sub | Sbc -> sub_itv a b
  | And -> { lo = 0; hi = min a.hi b.hi }
  | Orr | Eor -> { lo = 0; hi = bits_mask (a.hi lor b.hi) }
  | Bic -> { lo = 0; hi = a.hi }

let shift_itv (op : Instr.shift_op) a k =
  match op with
  | Lsl ->
      (* Checked without shifting: [a.hi lsl k] for k near 32 wraps the
         native int negative, which a plain [> u32_max] test misses. *)
      if k >= 32 || a.hi > u32_max lsr k then top
      else { lo = a.lo lsl k; hi = a.hi lsl k }
  | Lsr -> { lo = a.lo lsr k; hi = a.hi lsr k }
  | Asr ->
      (* Negative patterns shift in ones; only the non-negative range is
         a plain logical shift. *)
      if a.hi < 0x8000_0000 then { lo = a.lo asr k; hi = a.hi asr k } else top

(* ---------------- register-file states ---------------- *)

let nregs = 16

type state = itv array (* one interval per architectural register *)

let state_top () = Array.make nregs top
let state_zero () = Array.make nregs (const 0)

(* The analysis value is [state option]: [None] is bottom — "no path
   reaches this block yet" — and is the identity of the join.  Without
   it, a loop latch's initial value would join into the loop header as
   if it were a real path, permanently destroying loop-invariant facts
   (joins only ever go up). *)
let state_equal a b =
  let rec go i = i >= nregs || (itv_equal a.(i) b.(i) && go (i + 1)) in
  go 0

let opt_equal a b =
  match (a, b) with
  | None, None -> true
  | Some a, Some b -> state_equal a b
  | _ -> false

let state_join a b = Array.init nregs (fun i -> join_itv a.(i) b.(i))
let state_widen a b = Array.init nregs (fun i -> widen_itv a.(i) b.(i))

let opt_join a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (state_join a b)

let opt_widen a b =
  match (a, b) with
  | None, x | x, None -> x
  | Some a, Some b -> Some (state_widen a b)

let get st r = st.(Reg.index r)

let step st (i : int Instr.t) =
  let set r v =
    let st' = Array.copy st in
    st'.(Reg.index r) <- v;
    st'
  in
  match i with
  | Instr.Mov_imm (rd, imm) -> set rd (const imm)
  | Instr.Movt (rd, imm) -> (
      let high = (imm land 0xFFFF) lsl 16 in
      match is_const (get st rd) with
      | Some v -> set rd (const (high lor (v land 0xFFFF)))
      | None -> set rd (make high (high lor 0xFFFF)))
  | Instr.Mov (rd, rs) -> set rd (get st rs)
  | Instr.Alu (op, rd, rn, rm) -> set rd (alu_itv op (get st rn) (get st rm))
  | Instr.Alu_imm (op, rd, rn, imm) ->
      set rd (alu_itv op (get st rn) (const imm))
  | Instr.Shift (op, rd, rn, k) -> set rd (shift_itv op (get st rn) k)
  | Instr.Mul (rd, rn, rm) -> set rd (mul_itv (get st rn) (get st rm))
  | Instr.Mul_asp { rd; _ } -> set rd top
  | Instr.Add_asv (_, rd, _, _) | Instr.Sub_asv (_, rd, _, _) -> set rd top
  | Instr.Sqrt (rd, _) | Instr.Sqrt_asp { rd; _ } -> set rd (make 0 0xFFFF)
  | Instr.Ldr { rd; _ } | Instr.Ldr_reg { rd; _ } -> set rd top
  | Instr.Bl _ -> set Reg.lr top
  | Instr.Cmp _ | Instr.Cmp_imm _ | Instr.Str _ | Instr.Str_reg _
  | Instr.B _ | Instr.Bx_lr | Instr.Skm _ | Instr.Nop | Instr.Halt ->
      st

type t = { cfg : Cfg.t; in_blk : state option array; out_blk : state option array }

let analyze (cfg : Cfg.t) =
  let blocks = cfg.blocks in
  (* Skim targets are restore entry points: a restore scrubs the
     register file, so their in-state must also cover all-zeros. *)
  let skim_target_blocks =
    List.filter_map
      (fun (_, t) ->
        if t >= 0 && t < Array.length cfg.program then Some cfg.block_of.(t)
        else None)
      cfg.skims
  in
  let spec =
    {
      Dataflow.init =
        (fun b ->
          (* The task entry and every skim target start from scrubbed
             (all-zero) registers; other function entries receive
             arguments and start from top.  Everything else starts at
             bottom so only real incoming paths contribute. *)
          if blocks.(b).first = 0 || List.mem b skim_target_blocks then
            Some (state_zero ())
          else if List.mem blocks.(b).first cfg.entries then Some (state_top ())
          else None);
      transfer =
        (fun b st ->
          match st with
          | None -> None
          | Some st ->
              let st = ref st in
              for pc = blocks.(b).first to blocks.(b).last do
                st := step !st cfg.program.(pc)
              done;
              Some !st);
      join = opt_join;
      equal = opt_equal;
    }
  in
  let in_blk, out_blk =
    Dataflow.forward ~widen:opt_widen ~widen_delay:2
      ~also_base:(fun b -> List.mem b skim_target_blocks)
      cfg spec
  in
  { cfg; in_blk; out_blk }

(* Blocks the analysis proved unreachable keep bottom states; queries
   against them answer [top], the sound "don't know". *)
let reg_at t pc r =
  let b = t.cfg.block_of.(pc) in
  match t.in_blk.(b) with
  | None -> top
  | Some st ->
      let st = ref st in
      for q = t.cfg.blocks.(b).first to pc - 1 do
        st := step !st t.cfg.program.(q)
      done;
      get !st r

let reg_out_of_block t b r =
  match t.out_blk.(b) with None -> top | Some st -> get st r
