type 'a spec = {
  init : int -> 'a;
  transfer : int -> 'a -> 'a;
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
}

(* Reverse postorder over an arbitrary successor relation, rooted at
   [roots]; any block unreached from the roots is appended by a second
   sweep in index order, so the returned order always covers every
   block exactly once (deterministically). *)
let reverse_postorder nb ~roots ~next =
  let seen = Array.make nb false in
  let order = ref [] in
  let rec dfs b =
    if not seen.(b) then begin
      seen.(b) <- true;
      List.iter dfs (next b);
      order := b :: !order
    end
  in
  List.iter dfs roots;
  for b = 0 to nb - 1 do
    dfs b
  done;
  !order

(* Worklist to fixpoint, visiting in reverse postorder priority.
   [edges_in b] are the blocks whose post-values flow into [b]; [base b]
   says whether [b] also receives the boundary value (function entries
   forward, exits backward); [edges_out b] are the dependents to requeue
   when [b]'s post-value changes.

   Each visit recomputes [b]'s in-value from scratch as the join over
   its incoming post-values, exactly as the seed's round-robin solver
   did — for a monotone spec, chaotic iteration converges to the same
   fixpoint whatever the visit order, and the worklist only touches
   blocks whose inputs actually changed (O(edges · height) instead of
   O(blocks · passes)).

   [widen], when provided, is applied at widening points — blocks with
   an incoming retreating edge (a predecessor later in the iteration
   order, i.e. loop heads) — once a block has been revisited more than
   [widen_delay] times.  [widen old new] must return a value at least
   as large as [old], so domains of unbounded height (intervals) still
   terminate; bounded domains never need it. *)
let solve ?widen ?(widen_delay = 2) nb spec ~edges_in ~edges_out ~order ~base =
  let pre = Array.init nb (fun b -> spec.init b) in
  let post = Array.init nb (fun b -> spec.transfer b pre.(b)) in
  let pos = Array.make nb 0 in
  List.iteri (fun i b -> pos.(b) <- i) order;
  let widen_point = Array.make nb false in
  (match widen with
  | None -> ()
  | Some _ ->
      for b = 0 to nb - 1 do
        if List.exists (fun p -> pos.(p) >= pos.(b)) (edges_in b) then
          widen_point.(b) <- true
      done);
  let visits = Array.make nb 0 in
  let seen = Array.make nb false in
  let in_queue = Array.make nb false in
  let queue = Queue.create () in
  let push b =
    if not in_queue.(b) then begin
      in_queue.(b) <- true;
      Queue.add b queue
    end
  in
  List.iter push order;
  while not (Queue.is_empty queue) do
    let b = Queue.pop queue in
    in_queue.(b) <- false;
    (* The initial seeding pass pops every block once; only genuine
       re-visits count toward the widening delay. *)
    if seen.(b) then visits.(b) <- visits.(b) + 1 else seen.(b) <- true;
    let incoming =
      List.map (fun p -> post.(p)) (edges_in b)
      @ (if base b then [ spec.init b ] else [])
    in
    match incoming with
    | [] -> ()
    | v :: rest ->
        let joined = List.fold_left spec.join v rest in
        let joined =
          match widen with
          | Some w when widen_point.(b) && visits.(b) > widen_delay ->
              w pre.(b) joined
          | _ -> joined
        in
        if not (spec.equal joined pre.(b)) then begin
          pre.(b) <- joined;
          post.(b) <- spec.transfer b joined;
          List.iter push (edges_out b)
        end
  done;
  (pre, post)

let forward ?widen ?widen_delay ?(also_base = fun _ -> false) (cfg : Cfg.t)
    spec =
  let nb = Array.length cfg.blocks in
  let entry_blocks = List.map (fun e -> cfg.block_of.(e)) cfg.entries in
  let base b = cfg.pred.(b) = [] || List.mem b entry_blocks || also_base b in
  let order =
    reverse_postorder nb ~roots:entry_blocks ~next:(fun b -> cfg.succ.(b))
  in
  solve ?widen ?widen_delay nb spec
    ~edges_in:(fun b -> (cfg.pred : int list array).(b))
    ~edges_out:(fun b -> (cfg.succ : int list array).(b))
    ~order ~base

let backward ?widen ?widen_delay ?(also_base = fun _ -> false) (cfg : Cfg.t)
    spec =
  let nb = Array.length cfg.blocks in
  let base b = cfg.succ.(b) = [] || also_base b in
  let exits =
    List.filter (fun b -> cfg.succ.(b) = []) (List.init nb Fun.id)
  in
  (* Flowing against the edges, [solve]'s pre is the block's out-value
     and its post the in-value. *)
  let order =
    reverse_postorder nb ~roots:exits ~next:(fun b -> cfg.pred.(b))
  in
  let outs, ins =
    solve ?widen ?widen_delay nb spec
      ~edges_in:(fun b -> (cfg.succ : int list array).(b))
      ~edges_out:(fun b -> (cfg.pred : int list array).(b))
      ~order ~base
  in
  (ins, outs)
