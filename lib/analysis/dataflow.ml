type 'a spec = {
  init : int -> 'a;
  transfer : int -> 'a -> 'a;
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
}

(* Round-robin to fixpoint.  [edges_in b] are the blocks whose
   post-values flow into [b]; [base b] says whether [b] also receives
   the boundary value (function entries forward, exits backward). *)
let solve nb spec ~edges_in ~base =
  let pre = Array.init nb (fun b -> spec.init b) in
  let post = Array.init nb (fun b -> spec.transfer b pre.(b)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to nb - 1 do
      let incoming =
        List.map (fun p -> post.(p)) (edges_in b)
        @ (if base b then [ spec.init b ] else [])
      in
      match incoming with
      | [] -> ()
      | v :: rest ->
          let joined = List.fold_left spec.join v rest in
          if not (spec.equal joined pre.(b)) then begin
            pre.(b) <- joined;
            post.(b) <- spec.transfer b joined;
            changed := true
          end
    done
  done;
  (pre, post)

let forward (cfg : Cfg.t) spec =
  let nb = Array.length cfg.blocks in
  let entry_blocks =
    List.map (fun e -> cfg.block_of.(e)) cfg.entries
  in
  let base b = cfg.pred.(b) = [] || List.mem b entry_blocks in
  solve nb spec ~edges_in:(fun b -> (cfg.pred : int list array).(b)) ~base

let backward (cfg : Cfg.t) spec =
  let nb = Array.length cfg.blocks in
  let base b = cfg.succ.(b) = [] in
  (* Flowing against the edges, [solve]'s pre is the block's out-value
     and its post the in-value. *)
  let outs, ins =
    solve nb spec ~edges_in:(fun b -> (cfg.succ : int list array).(b)) ~base
  in
  (ins, outs)
