(** Minimal JSON emission for machine-readable diagnostics.

    Hand-rolled (the toolchain carries no JSON library): values are
    rendered directly to strings with proper escaping.  Used by
    [wn lint --json] and [wn verify --json]. *)

val escape : string -> string
val str : string -> string
val int : int -> string
val bool : bool -> string
val null : string
val float : float -> string
val opt : ('a -> string) -> 'a option -> string
val arr : string list -> string
val obj : (string * string) list -> string

val of_diag : Diag.t -> string

val of_diags : Diag.t list -> string

val diag_report : ?extra:(string * string) list -> Diag.t list -> string
(** Object with the diagnostic array plus severity counts; [extra]
    fields are appended (e.g. the [wn verify] region table). *)

val of_bound : Progress.bound -> string
val of_region : Progress.region -> string

val of_progress : Progress.report -> string
(** The full [wn verify] report: runtime model, budget, loop trip
    bounds and the per-region WCEC table. *)
