open Wn_isa

type t = {
  cfg : Cfg.t;
  live_in_blk : int array;  (** liveness mask at block entry *)
  undef_in_blk : int array;  (** possibly-undefined mask at block entry *)
}

let flag_bit = 1 lsl 16
let all_regs_mask = (1 lsl 16) - 1

let mask_of_regs rs =
  List.fold_left (fun m r -> m lor (1 lsl Reg.index r)) 0 rs

let def_mask i =
  mask_of_regs (Instr.defs i) lor (if Instr.sets_flags i then flag_bit else 0)

let use_mask i =
  mask_of_regs (Instr.uses i) lor (if Instr.reads_flags i then flag_bit else 0)

let bool_spec =
  {
    Dataflow.init = (fun _ -> 0);
    transfer = (fun _ v -> v);
    join = ( lor );
    equal = Int.equal;
  }

let liveness cfg =
  let blocks = (cfg : Cfg.t).blocks in
  let spec =
    {
      bool_spec with
      Dataflow.init =
        (fun b ->
          (* Function exits: [Bx_lr] returns to an unknown caller. *)
          match cfg.program.(blocks.(b).last) with
          | Instr.Bx_lr -> all_regs_mask lor flag_bit
          | _ -> 0);
      transfer =
        (fun b out ->
          let live = ref out in
          for pc = blocks.(b).last downto blocks.(b).first do
            let i = cfg.program.(pc) in
            live := !live land lnot (def_mask i) lor use_mask i
          done;
          !live);
    }
  in
  let ins, _outs = Dataflow.backward cfg spec in
  ins

let possibly_undef cfg =
  let blocks = (cfg : Cfg.t).blocks in
  let spec =
    {
      bool_spec with
      Dataflow.init =
        (fun b ->
          (* Only the task entry starts undefined; other function
             entries received arguments, and join-only blocks take
             whatever their predecessors say. *)
          if blocks.(b).first = 0 then all_regs_mask lor flag_bit else 0);
      transfer =
        (fun b inv ->
          let undef = ref inv in
          for pc = blocks.(b).first to blocks.(b).last do
            undef := !undef land lnot (def_mask cfg.program.(pc))
          done;
          !undef);
    }
  in
  let ins, _outs = Dataflow.forward cfg spec in
  ins

let compute cfg =
  { cfg; live_in_blk = liveness cfg; undef_in_blk = possibly_undef cfg }

(* Per-pc facts are rebuilt by re-walking the pc's block from the
   stable block-boundary value. *)
let live_mask_at t pc =
  let b = t.cfg.block_of.(pc) in
  let blk = t.cfg.blocks.(b) in
  (* live-out of the block *)
  let out =
    List.fold_left
      (fun acc s -> acc lor t.live_in_blk.(s))
      (match t.cfg.program.(blk.last) with
      | Instr.Bx_lr -> all_regs_mask lor flag_bit
      | _ -> 0)
      t.cfg.succ.(b)
  in
  let live = ref out in
  for q = blk.last downto pc do
    let i = t.cfg.program.(q) in
    live := !live land lnot (def_mask i) lor use_mask i
  done;
  (* The loop ends having applied pc's own transfer: live-in at pc. *)
  !live

let live_in t pc =
  let m = live_mask_at t pc in
  List.filter_map
    (fun n -> if m land (1 lsl n) <> 0 then Some (Reg.r n) else None)
    (List.init 16 Fun.id)

let flags_live_in t pc = live_mask_at t pc land flag_bit <> 0

let is_pure_compute (i : int Instr.t) =
  match i with
  | Instr.Mov_imm _ | Instr.Movt _ | Instr.Mov _ | Instr.Alu _
  | Instr.Alu_imm _ | Instr.Shift _ | Instr.Mul _ | Instr.Mul_asp _
  | Instr.Add_asv _ | Instr.Sub_asv _ | Instr.Sqrt _ | Instr.Sqrt_asp _ ->
      true
  | _ -> false

let pp_item n = if n = 16 then "flags" else Reg.to_string (Reg.r n)

let diagnostics t =
  let cfg = t.cfg in
  let diags = ref [] in
  let add d = diags := d :: !diags in
  Array.iteri
    (fun b (blk : Cfg.block) ->
      if cfg.func_of.(blk.first) <> -1 then begin
        (* uninit reads: forward walk with the stable in-mask *)
        let undef = ref t.undef_in_blk.(b) in
        for pc = blk.first to blk.last do
          let i = cfg.program.(pc) in
          let bad = use_mask i land !undef in
          if bad <> 0 then
            List.iter
              (fun n ->
                if bad land (1 lsl n) <> 0 then
                  add
                    (Diag.warningf ~pc ~rule:"uninit-read"
                       "%s is read before any write reaches it (it still \
                        holds the reset value)"
                       (pp_item n)))
              (List.init 17 Fun.id);
          undef := !undef land lnot (def_mask i)
        done;
        (* dead stores: backward walk with the stable out-mask *)
        let out =
          List.fold_left
            (fun acc s -> acc lor t.live_in_blk.(s))
            (match cfg.program.(blk.last) with
            | Instr.Bx_lr -> all_regs_mask lor flag_bit
            | _ -> 0)
            cfg.succ.(b)
        in
        let live = ref out in
        for pc = blk.last downto blk.first do
          let i = cfg.program.(pc) in
          (if is_pure_compute i then
             let dead = def_mask i land lnot !live in
             if dead <> 0 && def_mask i land !live = 0 then
               add
                 (Diag.warningf ~pc ~rule:"dead-store"
                    "result of this instruction (%s) is never read"
                    (String.concat ", "
                       (List.filter_map
                          (fun n ->
                            if dead land (1 lsl n) <> 0 then Some (pp_item n)
                            else None)
                          (List.init 17 Fun.id)))));
          live := !live land lnot (def_mask i) lor use_mask i
        done
      end)
    cfg.blocks;
  !diags
