(** Interval/const abstract domain over the 16 architectural registers.

    A forward abstract interpretation mapping each register to an
    unsigned 32-bit interval [\[lo, hi\]], solved with the widening
    worklist solver (classic interval widening at loop heads after a
    short delay).  Precision is tuned for the trip-count questions the
    WCEC analysis asks: constants propagate exactly, add/sub/shift stay
    tight while they cannot wrap, and everything data-dependent (loads,
    multiplies, subword ops) goes to top.

    Soundness at restore points: the task entry and every skim target
    also start from the all-zero state (the machine scrubs volatile
    registers there), joined with whatever the fall-through
    predecessors provide. *)

open Wn_isa

type itv = { lo : int; hi : int }
(** Invariant: [0 <= lo <= hi <= 0xFFFF_FFFF]. *)

val u32_max : int
(** [0xFFFF_FFFF], the domain's upper bound. *)

val top : itv
val const : int -> itv

val make : int -> int -> itv
(** Clamped to the u32 range. *)

val is_top : itv -> bool
val is_const : itv -> int option
val itv_equal : itv -> itv -> bool
val join_itv : itv -> itv -> itv
val widen_itv : itv -> itv -> itv

type t

val analyze : Cfg.t -> t

val reg_at : t -> int -> Reg.t -> itv
(** Interval of a register immediately before the instruction at [pc]
    executes (recomputed by walking the block from its solved
    in-state). *)

val reg_out_of_block : t -> int -> Reg.t -> itv
(** Interval of a register at the end of block [b] (solved out-state) —
    what flows along [b]'s outgoing edges, e.g. into a loop header from
    its preheader. *)
