(** Control-flow graph of a resolved WN-32 program.

    Basic blocks are maximal straight-line runs of instructions;
    successors follow branch semantics with call-graph awareness: a
    [Bl] ends its block and falls through to the return site (the call
    is abstracted as returning), [Bx_lr] ends a function, and the call
    edge itself is recorded separately in {!t.calls}.  [Skm] does not
    branch — it only latches a restore target — so its block falls
    through; the latched targets are collected in {!t.skims} and their
    pcs start fresh blocks (they are restore entry points).

    Functions are discovered as the program entry (pc 0) plus every
    [Bl] target; each reachable block belongs to the first function
    that reaches it.  Dominators are computed per function with the
    standard iterative dataflow. *)

open Wn_isa
module IntSet : Set.S with type elt = int

type block = {
  first : int;  (** pc of the first instruction *)
  last : int;  (** pc of the last instruction (inclusive) *)
}

type t = {
  program : int Instr.t array;
  blocks : block array;  (** in address order *)
  block_of : int array;  (** pc -> index into [blocks] *)
  succ : int list array;  (** intraprocedural block successors *)
  pred : int list array;
  entries : int list;  (** function entry pcs: 0 plus every [Bl] target *)
  func_of : int array;  (** pc -> entry pc of its function, [-1] if unreachable *)
  calls : (int * int) list;  (** call site pc, callee entry pc *)
  skims : (int * int) list;  (** [Skm] pc, latched target pc *)
  falls_off : int list;
      (** pcs whose fall-through successor would run past the end of
          the program *)
  dom : IntSet.t array;  (** per block: the block indices dominating it *)
}

val build : int Instr.t array -> t

val instr_succs : t -> int -> int list
(** Intraprocedural successor pcs of one instruction (calls fall
    through, [Bx_lr] and [Halt] have none). *)

val dominates : t -> int -> int -> bool
(** [dominates t a b]: instruction [a] dominates instruction [b] — on
    every path from [b]'s function entry to [b], [a] executes first.
    False when the two pcs live in different functions or [b] is
    unreachable. *)

val loops : t -> (int * int list) list
(** Natural loops, as [(header pc, member pcs)] — one entry per back
    edge target, members merged over all back edges to that header. *)

val in_loop : t -> int -> bool
(** Whether the pc belongs to any natural loop. *)

val reachable_between : t -> src:int -> stop:int -> int list
(** pcs reachable from [src] (inclusive) along intraprocedural edges
    without passing through [stop] — the instructions an execution
    could still run before first reaching [stop]. *)
