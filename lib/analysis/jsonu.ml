(* Minimal JSON emission — enough for [wn lint --json] / [wn verify
   --json] without growing a dependency.  Values are built as strings;
   the only subtlety is escaping and float formatting (shortest
   round-trippable form, never OCaml's trailing-dot "1."). *)

let escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let str s = "\"" ^ escape s ^ "\""
let int n = string_of_int n
let bool b = if b then "true" else "false"
let null = "null"

let float f =
  if Float.is_integer f && Float.abs f < 1e15 then
    Printf.sprintf "%.1f" f
  else
    (* shortest representation that round-trips *)
    let s = Printf.sprintf "%.12g" f in
    if float_of_string s = f then s else Printf.sprintf "%.17g" f

let opt f = function None -> null | Some v -> f v
let arr items = "[" ^ String.concat "," items ^ "]"

let obj fields =
  "{" ^ String.concat "," (List.map (fun (k, v) -> str k ^ ":" ^ v) fields)
  ^ "}"

(* ---------------- diagnostics ---------------- *)

let of_diag (d : Diag.t) =
  obj
    [
      ("severity", str (Diag.severity_name d.severity));
      ("rule", str d.rule);
      ("pc", opt int d.pc);
      ("symbol", opt str d.symbol);
      ("message", str d.message);
    ]

let of_diags ds = arr (List.map of_diag ds)

let diag_report ?(extra = []) ds =
  let count s =
    List.length (List.filter (fun (d : Diag.t) -> d.severity = s) ds)
  in
  obj
    ([
       ("diagnostics", of_diags ds);
       ("errors", int (count Diag.Error));
       ("warnings", int (count Diag.Warning));
       ("notes", int (count Diag.Info));
     ]
    @ extra)

(* ---------------- forward-progress reports ---------------- *)

let of_bound (b : Progress.bound) =
  match b with
  | Progress.Finite c ->
      obj [ ("bounded", bool true); ("cycles", int c) ]
  | Progress.Unbounded { binding_loop } ->
      obj [ ("bounded", bool false); ("binding_loop_pc", int binding_loop) ]

let of_region (r : Progress.region) =
  obj
    [
      ("entry_pc", int r.rg_entry);
      ("kind", str (Progress.kind_name r.rg_kind));
      ("first_pc", int r.rg_first);
      ("last_pc", int r.rg_last);
      ("instructions", int r.rg_size);
      ("raw_wcec", of_bound r.rg_raw);
      ("per_charge", of_bound r.rg_capped);
      ("energy_joules", opt float r.rg_energy);
      ("dominant_loop_pc", opt int r.rg_heavy_loop);
    ]

let of_progress (rp : Progress.report) =
  obj
    [
      ("runtime", str rp.rp_runtime.rt_name);
      ("budget_joules", float rp.rp_budget);
      ("cycle_energy_joules", float rp.rp_cycle_energy);
      ("max_instruction_cycles", int rp.rp_max_instr);
      ("whole_program_wcec", of_bound rp.rp_total);
      ( "loops",
        arr
          (List.map
             (fun (header, trips) ->
               obj
                 [
                   ("header_pc", int header); ("max_trips", opt int trips);
                 ])
             rp.rp_trip_bounds) );
      ("regions", arr (List.map of_region rp.rp_regions));
    ]
