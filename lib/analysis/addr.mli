(** Resolution of memory accesses to data symbols.

    The code generator materialises every base address with
    [Mov_imm]/[Movt] immediately before the access it serves, so a
    per-block constant propagation (every block starts from "unknown")
    is enough to name the symbol behind almost every [Ldr]/[Str].  The
    one indirect shape — a byte index added to a constant base for
    sub-word element access — is covered by the [Base_plus] value:
    a known base plus an unknown non-negative runtime offset. *)

type sym = { sym_name : string; sym_addr : int; sym_bytes : int }

type value =
  | Const of int  (** register holds exactly this value *)
  | Base_plus of int  (** this constant plus an unknown runtime index *)
  | Any

type access = {
  acc_pc : int;
  acc_store : bool;
  acc_width : int;  (** bytes: 1, 2 or 4 *)
  acc_addr : value;  (** effective address, offset folded in *)
  acc_sym : string option;  (** symbol the address falls in, if known *)
  acc_lo : int;  (** first byte touched, relative to the symbol *)
  acc_hi : int;  (** one past the last byte possibly touched *)
  acc_exact : bool;
      (** true when [acc_lo, acc_hi) is the precise byte range; false
          when the access may land anywhere in it *)
}

val accesses : ?symbols:sym list -> Cfg.t -> access list
(** Every memory access in the program, in pc order.  Without
    [symbols], [acc_sym] is always [None] and the byte range is
    zero-width. *)
