let program ?(symbols = []) prog =
  let cfg = Cfg.build prog in
  let regflow = Regflow.compute cfg in
  let accesses = Addr.accesses ~symbols cfg in
  let structural =
    List.map
      (fun pc ->
        Diag.errorf ~pc ~rule:"falls-off-end"
          "execution can run past the last instruction (no HALT or \
           branch ends this path)")
      cfg.falls_off
    @ (Array.to_list
         (Array.mapi
            (fun pc f ->
              if f = -1 then
                Some
                  (Diag.info ~pc ~rule:"unreachable"
                     "no function entry reaches this instruction")
              else None)
            cfg.func_of)
      |> List.filter_map Fun.id)
  in
  structural
  @ Regflow.diagnostics regflow
  @ Skim.check cfg regflow ~accesses
  @ War.check cfg ~accesses
  |> List.sort Diag.compare
