open Wn_isa
module S = Set.Make (String)

(* Must-analysis: true iff a skim has been latched on every path from
   the function entry to the block's start.  Must-facts iterate down
   from top, so non-entry blocks start at [true] and only the entry
   boundary injects [false]; the AND join then erodes exactly the
   blocks some skim-free path reaches. *)
let skim_latched_in (cfg : Cfg.t) =
  let entry_blocks = List.map (fun e -> cfg.block_of.(e)) cfg.entries in
  let spec =
    {
      Dataflow.init = (fun b -> not (List.mem b entry_blocks));
      transfer =
        (fun b latched ->
          let v = ref latched in
          for pc = cfg.blocks.(b).first to cfg.blocks.(b).last do
            match cfg.program.(pc) with Instr.Skm _ -> v := true | _ -> ()
          done;
          !v);
      join = ( && );
      equal = Bool.equal;
    }
  in
  let ins, _ = Dataflow.forward cfg spec in
  ins

let check (cfg : Cfg.t) ~accesses =
  let latched_in = skim_latched_in cfg in
  let acc_at = Hashtbl.create 64 in
  List.iter (fun (a : Addr.access) -> Hashtbl.replace acc_at a.acc_pc a) accesses;
  (* Forward taint: for each register, the symbols it was loaded from
     with no skim latched at the load.  A load's destination carries
     its source symbol (address taint does not flow through memory);
     pure computation unions its operands' taints. *)
  let bot = Array.make Reg.count S.empty in
  let join a b = Array.init Reg.count (fun i -> S.union a.(i) b.(i)) in
  let equal a b =
    let ok = ref true in
    for i = 0 to Reg.count - 1 do
      if not (S.equal a.(i) b.(i)) then ok := false
    done;
    !ok
  in
  (* One instruction's effect on (taint, latched). *)
  let step taint latched pc =
    let i = cfg.program.(pc) in
    (match i with Instr.Skm _ -> latched := true | _ -> ());
    match Instr.defs i with
    | [] -> ()
    | rds ->
        let v =
          if Instr.reads_memory i then
            match Hashtbl.find_opt acc_at pc with
            | Some { Addr.acc_sym = Some s; _ } when not !latched ->
                S.singleton s
            | _ -> S.empty
          else
            List.fold_left
              (fun acc r -> S.union acc taint.(Reg.index r))
              S.empty (Instr.uses i)
        in
        List.iter (fun r -> taint.(Reg.index r) <- v) rds
  in
  let spec =
    {
      Dataflow.init = (fun _ -> bot);
      transfer =
        (fun b inv ->
          let taint = Array.copy inv in
          let latched = ref latched_in.(b) in
          for pc = cfg.blocks.(b).first to cfg.blocks.(b).last do
            step taint latched pc
          done;
          taint);
      join;
      equal;
    }
  in
  let ins, _ = Dataflow.forward cfg spec in
  (* Report: re-walk each block checking stores against the taint of
     their data operand. *)
  let diags = ref [] in
  Array.iteri
    (fun b (blk : Cfg.block) ->
      let taint = Array.copy ins.(b) in
      let latched = ref latched_in.(b) in
      for pc = blk.first to blk.last do
        (match cfg.program.(pc) with
        | Instr.Str { rs; _ } | Instr.Str_reg { rs; _ } -> (
            match Hashtbl.find_opt acc_at pc with
            | Some { Addr.acc_sym = Some s; _ }
              when S.mem s taint.(Reg.index rs) ->
                diags :=
                  Diag.errorf ~pc ~symbol:s ~rule:"war-hazard"
                    "store to %s depends on a value loaded from %s with \
                     no skim latched: after an outage the re-executed \
                     read sees the updated value (non-idempotent \
                     read-modify-write)"
                    s s
                  :: !diags
            | _ -> ())
        | _ -> ());
        step taint latched pc
      done)
    cfg.blocks;
  List.rev !diags
