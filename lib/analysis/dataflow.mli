(** Generic iterative dataflow over the basic blocks of a {!Cfg.t}.

    The solver is a worklist iterated in reverse postorder: each block's
    in-value is recomputed as the join over its dependencies'
    out-values, and only blocks whose inputs changed are revisited —
    O(edges · lattice height) instead of the seed's O(blocks · passes)
    round-robin, with the identical fixpoint for any monotone spec.
    Values are joined at control-flow merges with [join]; a block's
    [transfer] maps its in-value to its out-value (callers re-walk the
    block's instructions when they need per-pc facts).  Functions are
    disconnected components of the intraprocedural graph, so a single
    solve covers the whole program; blocks with no in-edges (function
    entries, restore points) start from [init].

    Domains of unbounded height (e.g. intervals) pass [widen]: after a
    block with an incoming retreating edge (a loop head) has been
    revisited [widen_delay] times, its new in-value becomes
    [widen old new] instead of the plain join.  [widen] must return a
    value at least as large as [old] for the iteration to terminate.

    Chaotic iteration is order-independent only when the starting
    assignment sits below the equations' image, i.e. [init b] should be
    the domain's bottom on blocks that are not boundary blocks (no
    in-edges / [also_base]).  Seeding interior cycles with arbitrary
    non-bottom values can converge to an order-dependent solution. *)

type 'a spec = {
  init : int -> 'a;
      (** starting in-value (forward) / out-value (backward) of a block
          with no predecessors / successors, by block index *)
  transfer : int -> 'a -> 'a;  (** block index, in-value -> out-value *)
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
}

val forward :
  ?widen:('a -> 'a -> 'a) ->
  ?widen_delay:int ->
  ?also_base:(int -> bool) ->
  Cfg.t ->
  'a spec ->
  'a array * 'a array
(** [(ins, outs)] per block: [ins.(b)] is the join over predecessors'
    outs (or [init b] with none), [outs.(b) = transfer b ins.(b)].
    [also_base b] forces [init b] to be joined into [b]'s in-value even
    when it has predecessors — e.g. skim targets, which a restore can
    enter with scrubbed state. *)

val backward :
  ?widen:('a -> 'a -> 'a) ->
  ?widen_delay:int ->
  ?also_base:(int -> bool) ->
  Cfg.t ->
  'a spec ->
  'a array * 'a array
(** [(ins, outs)] per block, flowing against the edges: [outs.(b)] is
    the join over successors' ins (or [init b] with none), and
    [ins.(b) = transfer b outs.(b)]. *)
