(** Generic iterative dataflow over the basic blocks of a {!Cfg.t}.

    The solver runs a round-robin worklist to a fixpoint.  Values are
    joined at control-flow merges with [join]; a block's [transfer]
    maps its in-value to its out-value (callers re-walk the block's
    instructions when they need per-pc facts).  Functions are
    disconnected components of the intraprocedural graph, so a single
    solve covers the whole program; blocks with no in-edges (function
    entries, restore points) start from [init]. *)

type 'a spec = {
  init : int -> 'a;
      (** starting in-value (forward) / out-value (backward) of a block
          with no predecessors / successors, by block index *)
  transfer : int -> 'a -> 'a;  (** block index, in-value -> out-value *)
  join : 'a -> 'a -> 'a;
  equal : 'a -> 'a -> bool;
}

val forward : Cfg.t -> 'a spec -> 'a array * 'a array
(** [(ins, outs)] per block: [ins.(b)] is the join over predecessors'
    outs (or [init b] with none), [outs.(b) = transfer b ins.(b)]. *)

val backward : Cfg.t -> 'a spec -> 'a array * 'a array
(** [(ins, outs)] per block, flowing against the edges: [outs.(b)] is
    the join over successors' ins (or [init b] with none), and
    [ins.(b) = transfer b outs.(b)]. *)
