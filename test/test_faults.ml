(* Tests for wn.faults: forced outages at exact instruction boundaries,
   the three-property crash-consistency oracle, the Fast/Compat lockstep
   differential, and the suite-level sweep driver (wn.core Inject). *)

open Wn_isa
open Wn_machine
module Executor = Wn_runtime.Executor
module Faults = Wn_faults.Faults
module Inject = Wn_core.Inject

let r = Reg.r

(* A precise task: a counted loop that stores its progress word to NVM
   each iteration.  No skim points, so every injected outage must take
   the (b) convergence branch of the oracle. *)
let precise_program ?(iters = 40) () =
  Asm.assemble_exn
    [
      Asm.I (Instr.Mov_imm (r 0, 0));
      Asm.I (Instr.Mov_imm (r 2, 0));
      Asm.Label "loop";
      Asm.I (Instr.Alu_imm (Instr.Add, r 0, r 0, 1));
      Asm.I (Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 });
      Asm.I (Instr.Cmp_imm (r 0, iters));
      Asm.I (Instr.B (Cond.Lt, "loop"));
      Asm.I Instr.Halt;
    ]

(* An anytime task: commit a coarse result, latch a skim target, then
   refine — storing intermediate values — and commit the exact result.
   Outages after the [Skm] must take the (c) anytime-commit branch. *)
let anytime_program ?(refine = 25) () =
  Asm.assemble_exn
    [
      Asm.I (Instr.Mov_imm (r 2, 0));
      Asm.I (Instr.Mov_imm (r 0, 1));
      Asm.I (Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 });
      Asm.I (Instr.Skm "end");
      Asm.I (Instr.Mov_imm (r 1, 0));
      Asm.Label "refine";
      Asm.I (Instr.Mul (r 3, r 1, r 1));
      Asm.I (Instr.Str { width = Instr.Word; rs = r 3; base = r 2; off = 4 });
      Asm.I (Instr.Alu_imm (Instr.Add, r 1, r 1, 1));
      Asm.I (Instr.Cmp_imm (r 1, refine));
      Asm.I (Instr.B (Cond.Lt, "refine"));
      Asm.I (Instr.Mov_imm (r 0, 2));
      Asm.I (Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 });
      Asm.Label "end";
      Asm.I Instr.Halt;
    ]

let scenario ?(policy = Executor.Clank Executor.default_clank) program =
  {
    Faults.fresh =
      (fun () ->
        let mem = Wn_mem.Memory.create ~size:256 in
        Machine.create ~program ~mem ());
    policy;
  }

(* ------------------------- step budget ----------------------------- *)

let test_step_budget () =
  let m = (scenario (precise_program ())).Faults.fresh () in
  Alcotest.(check (option int)) "unlimited by default" None (Machine.step_budget m);
  Machine.set_step_budget m (Some 3);
  Alcotest.(check bool) "not yet exhausted" false (Machine.budget_exhausted m);
  Machine.step_fast m;
  Machine.step_fast m;
  Alcotest.(check (option int)) "counts down" (Some 1) (Machine.step_budget m);
  Machine.step_fast m;
  Alcotest.(check bool) "exhausted after 3 steps" true (Machine.budget_exhausted m);
  (* The budget gates nothing by itself and holds at zero. *)
  Machine.step_fast m;
  Alcotest.(check (option int)) "holds at zero" (Some 0) (Machine.step_budget m);
  Machine.set_step_budget m None;
  Alcotest.(check bool) "cleared" false (Machine.budget_exhausted m);
  Alcotest.check_raises "negative budget" (Invalid_argument "Machine.set_step_budget")
    (fun () -> Machine.set_step_budget m (Some (-1)))

(* --------------------------- profiling ----------------------------- *)

let test_profile_shapes () =
  let p = Faults.profile (scenario (precise_program ())) in
  (* 2 setup + 40 iterations x 4 + halt *)
  Alcotest.(check int) "retired" 163 p.Faults.retired;
  Alcotest.(check (option int)) "no skim" None p.Faults.first_skim;
  Alcotest.(check int) "one store per iteration" 40
    (Array.length p.Faults.store_boundaries);
  let a = Faults.profile (scenario (anytime_program ())) in
  Alcotest.(check (option int)) "skim latched at boundary 4" (Some 4)
    a.Faults.first_skim;
  Alcotest.(check int) "skm boundary recorded" 4 a.Faults.skm_boundaries.(0);
  (* The tiny program finishes inside the default watchdog period; with
     a short one, Clank's continuous-run checkpoints must be observed. *)
  let tight =
    Executor.Clank { Executor.default_clank with watchdog_period = 50 }
  in
  let w = Faults.profile (scenario ~policy:tight (anytime_program ())) in
  if Array.length w.Faults.checkpoint_boundaries = 0 then
    Alcotest.fail "Clank must checkpoint on the continuous profile run"

(* ------------------- exhaustive oracle sweeps ---------------------- *)

let exhaustive_sweep name sc =
  let p = Faults.profile sc in
  let boundaries = Array.init (p.Faults.retired - 1) (fun i -> i + 1) in
  let prefixes = Faults.prefix_digests sc ~boundaries in
  let skims = ref 0 in
  Array.iteri
    (fun i boundary ->
      let result = Faults.run_point sc ~boundary in
      if result.Faults.outcome.Executor.skimmed then incr skims;
      let skim_ref = Faults.skim_reference sc ~boundary in
      match Faults.check ~profile:p ~prefix_digest:prefixes.(i) ~skim_ref result with
      | [] -> ()
      | v :: _ -> Alcotest.failf "%s, boundary %d: %s" name boundary v)
    boundaries;
  (p, !skims)

let test_exhaustive_precise () =
  List.iter
    (fun (pname, policy) ->
      let sc = scenario ~policy (precise_program ()) in
      let _, skims = exhaustive_sweep ("precise/" ^ pname) sc in
      Alcotest.(check int) (pname ^ ": no skim commits") 0 skims)
    [
      ("clank", Executor.Clank Executor.default_clank);
      ("nvp", Executor.Nvp Executor.default_nvp);
    ]

let test_exhaustive_anytime () =
  List.iter
    (fun (pname, policy) ->
      let sc = scenario ~policy (anytime_program ()) in
      let p, skims = exhaustive_sweep ("anytime/" ^ pname) sc in
      let first_skim = Option.get p.Faults.first_skim in
      (* Every boundary at or past the latch must commit via skim. *)
      Alcotest.(check int)
        (pname ^ ": skim commits")
        (p.Faults.retired - 1 - (first_skim - 1))
        skims)
    [
      ("clank", Executor.Clank Executor.default_clank);
      ("nvp", Executor.Nvp Executor.default_nvp);
    ]

(* The oracle itself must not be vacuous: feed it deliberately wrong
   references and require it to object. *)
let test_oracle_not_vacuous () =
  let sc = scenario (anytime_program ()) in
  let p = Faults.profile sc in
  let boundary = Option.get p.Faults.first_skim + 2 in
  let prefixes = Faults.prefix_digests sc ~boundaries:[| boundary |] in
  let result = Faults.run_point sc ~boundary in
  let bogus = Digest.string "not the prefix image" in
  (match
     Faults.check ~profile:p ~prefix_digest:bogus
       ~skim_ref:(Faults.skim_reference sc ~boundary) result
   with
  | [] -> Alcotest.fail "oracle accepted a wrong prefix digest"
  | v -> Alcotest.(check bool) "flags (a)" true
           (List.exists (fun s -> String.length s >= 3 && String.sub s 0 3 = "(a)") v));
  (match
     Faults.check ~profile:p ~prefix_digest:prefixes.(0) ~skim_ref:(Some bogus)
       result
   with
  | [] -> Alcotest.fail "oracle accepted a wrong skim reference"
  | v -> Alcotest.(check bool) "flags (c)" true
           (List.exists (fun s -> String.length s >= 3 && String.sub s 0 3 = "(c)") v));
  Alcotest.check_raises "boundary 0 rejected" (Invalid_argument "Faults.run_point")
    (fun () -> ignore (Faults.run_point sc ~boundary:0))

(* ------------- Fast/Compat lockstep differential (satellite) ------- *)

let test_lockstep_differential () =
  List.iter
    (fun (pname, policy, program) ->
      let sc = scenario ~policy program in
      let p = Faults.profile sc in
      for boundary = 1 to p.Faults.retired - 1 do
        let fast = Faults.run_point ~engine:Executor.Fast sc ~boundary in
        let compat = Faults.run_point ~engine:Executor.Compat sc ~boundary in
        if fast.Faults.restore <> compat.Faults.restore then
          Alcotest.failf "%s, boundary %d: post-restore state diverges" pname
            boundary;
        if not (Digest.equal fast.Faults.final_digest compat.Faults.final_digest)
        then
          Alcotest.failf "%s, boundary %d: final memory diverges" pname boundary;
        if fast.Faults.outcome <> compat.Faults.outcome then
          Alcotest.failf "%s, boundary %d: outcomes diverge" pname boundary
      done)
    [
      ("clank/anytime", Executor.Clank Executor.default_clank, anytime_program ());
      ("nvp/anytime", Executor.Nvp Executor.default_nvp, anytime_program ());
      ("clank/precise", Executor.Clank Executor.default_clank, precise_program ());
    ]

(* ---------------------- suite-level sweeps ------------------------- *)

let test_sampled_matadd_sweep () =
  let w = Wn_workloads.Suite.find Wn_workloads.Workload.Small "MatAdd" in
  let config = { Inject.default_config with differential = true } in
  let report = Inject.sweep ~jobs:1 ~mode:(Inject.Sampled 40) ~config w in
  Alcotest.(check (list (pair int string))) "oracle clean" []
    report.Inject.violations;
  if report.Inject.points < 40 then
    Alcotest.failf "sampler produced only %d points" report.Inject.points;
  if report.Inject.skim_commits = 0 then
    Alcotest.fail "anytime MatAdd sweep never hit a skim commit";
  (* Bit-identical across jobs values, including the rendered report. *)
  let render rep = Format.asprintf "%a" Inject.pp rep in
  let again = Inject.sweep ~jobs:2 ~mode:(Inject.Sampled 40) ~config w in
  Alcotest.(check string) "jobs=2 report identical" (render report) (render again);
  if report <> again then Alcotest.fail "jobs=2 report record diverged"

let test_sampler_determinism () =
  let w = Wn_workloads.Suite.find Wn_workloads.Workload.Small "MatAdd" in
  let config = { Inject.default_config with system = Wn_core.Intermittent.Nvp } in
  let a = Inject.sweep ~jobs:1 ~mode:(Inject.Sampled 12) ~config w in
  let b = Inject.sweep ~jobs:1 ~mode:(Inject.Sampled 12) ~config w in
  if a <> b then Alcotest.fail "same seed must give the same sweep";
  let c =
    Inject.sweep ~jobs:1 ~mode:(Inject.Sampled 12)
      ~config:{ config with sample_seed = config.Inject.sample_seed + 1 } w
  in
  if a.Inject.points = c.Inject.points && a = { c with Inject.config = a.Inject.config }
  then Alcotest.fail "different seed should move the sampled boundaries"

let () =
  Alcotest.run "wn.faults"
    [
      ( "mechanism",
        [
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "profile shapes" `Quick test_profile_shapes;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "exhaustive precise" `Quick test_exhaustive_precise;
          Alcotest.test_case "exhaustive anytime" `Quick test_exhaustive_anytime;
          Alcotest.test_case "not vacuous" `Quick test_oracle_not_vacuous;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fast vs compat lockstep" `Quick
            test_lockstep_differential;
        ] );
      ( "suite",
        [
          Alcotest.test_case "sampled MatAdd sweep" `Slow test_sampled_matadd_sweep;
          Alcotest.test_case "sampler determinism" `Slow test_sampler_determinism;
        ] );
    ]
