(* Tests for wn.faults: forced outages at exact instruction boundaries,
   the three-property crash-consistency oracle, the Fast/Compat lockstep
   differential, and the suite-level sweep driver (wn.core Inject). *)

open Wn_isa
open Wn_machine
module Executor = Wn_runtime.Executor
module Faults = Wn_faults.Faults
module Inject = Wn_core.Inject

let r = Reg.r

(* A precise task: a counted loop that stores its progress word to NVM
   each iteration.  No skim points, so every injected outage must take
   the (b) convergence branch of the oracle. *)
let precise_program ?(iters = 40) () =
  Asm.assemble_exn
    [
      Asm.I (Instr.Mov_imm (r 0, 0));
      Asm.I (Instr.Mov_imm (r 2, 0));
      Asm.Label "loop";
      Asm.I (Instr.Alu_imm (Instr.Add, r 0, r 0, 1));
      Asm.I (Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 });
      Asm.I (Instr.Cmp_imm (r 0, iters));
      Asm.I (Instr.B (Cond.Lt, "loop"));
      Asm.I Instr.Halt;
    ]

(* An anytime task: commit a coarse result, latch a skim target, then
   refine — storing intermediate values — and commit the exact result.
   Outages after the [Skm] must take the (c) anytime-commit branch. *)
let anytime_program ?(refine = 25) () =
  Asm.assemble_exn
    [
      Asm.I (Instr.Mov_imm (r 2, 0));
      Asm.I (Instr.Mov_imm (r 0, 1));
      Asm.I (Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 });
      Asm.I (Instr.Skm "end");
      Asm.I (Instr.Mov_imm (r 1, 0));
      Asm.Label "refine";
      Asm.I (Instr.Mul (r 3, r 1, r 1));
      Asm.I (Instr.Str { width = Instr.Word; rs = r 3; base = r 2; off = 4 });
      Asm.I (Instr.Alu_imm (Instr.Add, r 1, r 1, 1));
      Asm.I (Instr.Cmp_imm (r 1, refine));
      Asm.I (Instr.B (Cond.Lt, "refine"));
      Asm.I (Instr.Mov_imm (r 0, 2));
      Asm.I (Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 });
      Asm.Label "end";
      Asm.I Instr.Halt;
    ]

let scenario ?(policy = Executor.Clank Executor.default_clank) program =
  {
    Faults.fresh =
      (fun () ->
        let mem = Wn_mem.Memory.create ~size:256 in
        Machine.create ~program ~mem ());
    policy;
  }

(* ------------------------- step budget ----------------------------- *)

let test_step_budget () =
  let m = (scenario (precise_program ())).Faults.fresh () in
  Alcotest.(check (option int)) "unlimited by default" None (Machine.step_budget m);
  Machine.set_step_budget m (Some 3);
  Alcotest.(check bool) "not yet exhausted" false (Machine.budget_exhausted m);
  Machine.step_fast m;
  Machine.step_fast m;
  Alcotest.(check (option int)) "counts down" (Some 1) (Machine.step_budget m);
  Machine.step_fast m;
  Alcotest.(check bool) "exhausted after 3 steps" true (Machine.budget_exhausted m);
  (* The budget gates nothing by itself and holds at zero. *)
  Machine.step_fast m;
  Alcotest.(check (option int)) "holds at zero" (Some 0) (Machine.step_budget m);
  Machine.set_step_budget m None;
  Alcotest.(check bool) "cleared" false (Machine.budget_exhausted m);
  Alcotest.check_raises "negative budget" (Invalid_argument "Machine.set_step_budget")
    (fun () -> Machine.set_step_budget m (Some (-1)))

(* --------------------------- profiling ----------------------------- *)

let test_profile_shapes () =
  let p = Faults.profile (scenario (precise_program ())) in
  (* 2 setup + 40 iterations x 4 + halt *)
  Alcotest.(check int) "retired" 163 p.Faults.retired;
  Alcotest.(check (option int)) "no skim" None p.Faults.first_skim;
  Alcotest.(check int) "one store per iteration" 40
    (Array.length p.Faults.store_boundaries);
  let a = Faults.profile (scenario (anytime_program ())) in
  Alcotest.(check (option int)) "skim latched at boundary 4" (Some 4)
    a.Faults.first_skim;
  Alcotest.(check int) "skm boundary recorded" 4 a.Faults.skm_boundaries.(0);
  (* The tiny program finishes inside the default watchdog period; with
     a short one, Clank's continuous-run checkpoints must be observed. *)
  let tight =
    Executor.Clank { Executor.default_clank with watchdog_period = 50 }
  in
  let w = Faults.profile (scenario ~policy:tight (anytime_program ())) in
  if Array.length w.Faults.checkpoint_boundaries = 0 then
    Alcotest.fail "Clank must checkpoint on the continuous profile run"

(* ------------------- exhaustive oracle sweeps ---------------------- *)

let exhaustive_sweep name sc =
  let p = Faults.profile sc in
  let boundaries = Array.init (p.Faults.retired - 1) (fun i -> i + 1) in
  let prefixes = Faults.prefix_digests sc ~boundaries in
  let skims = ref 0 in
  Array.iteri
    (fun i boundary ->
      let result = Faults.run_point sc ~boundary in
      if result.Faults.outcome.Executor.skimmed then incr skims;
      let skim_ref = Faults.skim_reference sc ~boundary in
      match Faults.check ~profile:p ~prefix_digest:prefixes.(i) ~skim_ref result with
      | [] -> ()
      | v :: _ -> Alcotest.failf "%s, boundary %d: %s" name boundary v)
    boundaries;
  (p, !skims)

let test_exhaustive_precise () =
  List.iter
    (fun (pname, policy) ->
      let sc = scenario ~policy (precise_program ()) in
      let _, skims = exhaustive_sweep ("precise/" ^ pname) sc in
      Alcotest.(check int) (pname ^ ": no skim commits") 0 skims)
    [
      ("clank", Executor.Clank Executor.default_clank);
      ("nvp", Executor.Nvp Executor.default_nvp);
    ]

let test_exhaustive_anytime () =
  List.iter
    (fun (pname, policy) ->
      let sc = scenario ~policy (anytime_program ()) in
      let p, skims = exhaustive_sweep ("anytime/" ^ pname) sc in
      let first_skim = Option.get p.Faults.first_skim in
      (* Every boundary at or past the latch must commit via skim. *)
      Alcotest.(check int)
        (pname ^ ": skim commits")
        (p.Faults.retired - 1 - (first_skim - 1))
        skims)
    [
      ("clank", Executor.Clank Executor.default_clank);
      ("nvp", Executor.Nvp Executor.default_nvp);
    ]

(* The one-pass survey must report exactly what the old separate passes
   saw: a raw stepping pass for effects and digests, an executor run
   for checkpoint placement. *)
let test_survey_matches_raw_passes () =
  let policy =
    Executor.Clank { Executor.default_clank with watchdog_period = 50 }
  in
  let sc = scenario ~policy (anytime_program ()) in
  (* Raw pass: effects, final digest, prefix digests. *)
  let m = sc.Faults.fresh () in
  let stores = ref [] and skms = ref [] in
  let n = ref 0 in
  let boundaries = [| 1; 4; 5; 60; 100 |] in
  let digests = Array.make (Array.length boundaries) Digest.(string "") in
  let bi = ref 0 in
  while not (Machine.halted m) do
    Machine.step_fast m;
    incr n;
    if Machine.last_wrote_addr m >= 0 then stores := !n :: !stores;
    if Machine.last_was_skm m then skms := !n :: !skms;
    if !bi < Array.length boundaries && boundaries.(!bi) = !n then begin
      digests.(!bi) <- Wn_mem.Memory.digest (Machine.mem m);
      incr bi
    end
  done;
  (* Executor pass: continuous-run checkpoint placement. *)
  let m2 = sc.Faults.fresh () in
  let ckpts = ref [] in
  ignore
    (Executor.run ~policy ~on_checkpoint:(fun r -> ckpts := r :: !ckpts)
       ~machine:m2 ~supply:(Wn_power.Supply.scripted ()) ());
  let s = Faults.survey ~boundaries ~keyframe_interval:16 sc in
  let p = s.Faults.sv_profile in
  Alcotest.(check int) "retired" !n p.Faults.retired;
  Alcotest.(check string) "final digest"
    (Digest.to_hex (Wn_mem.Memory.digest (Machine.mem m)))
    (Digest.to_hex p.Faults.final_digest);
  Alcotest.(check (array int)) "stores"
    (Array.of_list (List.rev !stores))
    p.Faults.store_boundaries;
  Alcotest.(check (array int)) "skms"
    (Array.of_list (List.rev !skms))
    p.Faults.skm_boundaries;
  Alcotest.(check (array int)) "checkpoints"
    (Array.of_list (List.rev !ckpts))
    p.Faults.checkpoint_boundaries;
  Alcotest.(check (array string)) "prefix digests"
    (Array.map Digest.to_hex digests)
    (Array.map Digest.to_hex s.Faults.sv_digests);
  (* The keyframe store covers every interval boundary before halt. *)
  (match s.Faults.sv_keyframes with
  | None -> Alcotest.fail "keyframes requested but not recorded"
  | Some kfs ->
      Alcotest.(check int) "frame count" ((!n - 1) / 16)
        (Array.length kfs.Faults.frames);
      Array.iteri
        (fun i kf ->
          Alcotest.(check int) "frame position" ((i + 1) * 16)
            kf.Faults.kf_retired)
        kfs.Faults.frames);
  Alcotest.check_raises "interval 0 rejected"
    (Invalid_argument "Faults.survey: keyframe_interval") (fun () ->
      ignore (Faults.survey ~keyframe_interval:0 sc))

(* Satellite regression: a boundary past the program's halt must be
   refused, not silently step a halted machine. *)
let test_skim_reference_past_halt () =
  List.iter
    (fun program ->
      let sc = scenario program in
      let p = Faults.profile sc in
      (* The last real boundary is fine (and is [None] after halt's
         retirement only when nothing is latched)... *)
      ignore (Faults.skim_reference sc ~boundary:p.Faults.retired);
      (* ...but one past it would step a halted machine. *)
      Alcotest.check_raises "past halt"
        (Invalid_argument "Faults.skim_reference: boundary past halt")
        (fun () ->
          ignore
            (Faults.skim_reference sc ~boundary:(p.Faults.retired + 1))))
    [ precise_program (); anytime_program () ]

(* -------------------- keyframe resume identity --------------------- *)

(* Every injected point resumed from a keyframe must agree with the
   same point replayed from scratch on everything the oracle and the
   report consume: boundary, captured restore state, final memory
   digest, completion, skim verdict and outage count.  (The outcome's
   cycle-accounting fields are reconstructed from the continuous run's
   tail once the replay provably rejoins it, so they are deterministic
   but not compared against scratch.)  Additionally the two engines
   must agree bit-exactly with each other, keyframed or not.  Exercised
   across policies (incl. a tight Clank watchdog, so resumes cross live
   checkpoint/shadow state), builds and engines, at every boundary. *)
let test_keyframe_point_identity () =
  let report_view (r : Faults.point_result) =
    ( r.Faults.boundary,
      r.Faults.restore,
      Digest.to_hex r.Faults.final_digest,
      r.Faults.outcome.Executor.completed,
      r.Faults.outcome.Executor.skimmed,
      r.Faults.outcome.Executor.outage_count )
  in
  List.iter
    (fun (pname, policy, program) ->
      let sc = scenario ~policy program in
      let s = Faults.survey ~keyframe_interval:8 sc in
      let keyframes = Option.get s.Faults.sv_keyframes in
      let cache = Faults.skim_cache () in
      let p = s.Faults.sv_profile in
      for boundary = 1 to p.Faults.retired - 1 do
        let per_engine =
          List.map
            (fun engine ->
              let scratch = Faults.run_point ~engine sc ~boundary in
              let resumed = Faults.run_point ~engine ~keyframes sc ~boundary in
              if report_view scratch <> report_view resumed then
                Alcotest.failf "%s, boundary %d: keyframed point diverges" pname
                  boundary;
              (scratch, resumed))
            [ Executor.Fast; Executor.Compat ]
        in
        (match per_engine with
        | [ (fast_s, fast_r); (compat_s, compat_r) ] ->
            if fast_s <> compat_s || fast_r <> compat_r then
              Alcotest.failf "%s, boundary %d: engines diverge" pname boundary
        | _ -> assert false);
        let scratch_ref = Faults.skim_reference sc ~boundary in
        let resumed_ref = Faults.skim_reference ~keyframes ~cache sc ~boundary in
        match (scratch_ref, resumed_ref) with
        | None, None -> ()
        | Some a, Some b when Digest.equal a b -> ()
        | _ ->
            Alcotest.failf "%s, boundary %d: keyframed skim reference diverges"
              pname boundary
      done)
    [
      ( "clank/anytime/tight",
        Executor.Clank { Executor.default_clank with watchdog_period = 50 },
        anytime_program () );
      ("clank/precise", Executor.Clank Executor.default_clank, precise_program ());
      ("nvp/anytime", Executor.Nvp Executor.default_nvp, anytime_program ());
    ]

(* The oracle itself must not be vacuous: feed it deliberately wrong
   references and require it to object. *)
let test_oracle_not_vacuous () =
  let sc = scenario (anytime_program ()) in
  let p = Faults.profile sc in
  let boundary = Option.get p.Faults.first_skim + 2 in
  let prefixes = Faults.prefix_digests sc ~boundaries:[| boundary |] in
  let result = Faults.run_point sc ~boundary in
  let bogus = Digest.string "not the prefix image" in
  (match
     Faults.check ~profile:p ~prefix_digest:bogus
       ~skim_ref:(Faults.skim_reference sc ~boundary) result
   with
  | [] -> Alcotest.fail "oracle accepted a wrong prefix digest"
  | v -> Alcotest.(check bool) "flags (a)" true
           (List.exists (fun s -> String.length s >= 3 && String.sub s 0 3 = "(a)") v));
  (match
     Faults.check ~profile:p ~prefix_digest:prefixes.(0) ~skim_ref:(Some bogus)
       result
   with
  | [] -> Alcotest.fail "oracle accepted a wrong skim reference"
  | v -> Alcotest.(check bool) "flags (c)" true
           (List.exists (fun s -> String.length s >= 3 && String.sub s 0 3 = "(c)") v));
  Alcotest.check_raises "boundary 0 rejected" (Invalid_argument "Faults.run_point")
    (fun () -> ignore (Faults.run_point sc ~boundary:0))

(* ------------- Fast/Compat lockstep differential (satellite) ------- *)

let test_lockstep_differential () =
  List.iter
    (fun (pname, policy, program) ->
      let sc = scenario ~policy program in
      let p = Faults.profile sc in
      for boundary = 1 to p.Faults.retired - 1 do
        let fast = Faults.run_point ~engine:Executor.Fast sc ~boundary in
        let compat = Faults.run_point ~engine:Executor.Compat sc ~boundary in
        if fast.Faults.restore <> compat.Faults.restore then
          Alcotest.failf "%s, boundary %d: post-restore state diverges" pname
            boundary;
        if not (Digest.equal fast.Faults.final_digest compat.Faults.final_digest)
        then
          Alcotest.failf "%s, boundary %d: final memory diverges" pname boundary;
        if fast.Faults.outcome <> compat.Faults.outcome then
          Alcotest.failf "%s, boundary %d: outcomes diverge" pname boundary
      done)
    [
      ("clank/anytime", Executor.Clank Executor.default_clank, anytime_program ());
      ("nvp/anytime", Executor.Nvp Executor.default_nvp, anytime_program ());
      ("clank/precise", Executor.Clank Executor.default_clank, precise_program ());
    ]

(* ---------------------- suite-level sweeps ------------------------- *)

let test_sampled_matadd_sweep () =
  let w = Wn_workloads.Suite.find Wn_workloads.Workload.Small "MatAdd" in
  let config = { Inject.default_config with differential = true } in
  let report = Inject.sweep ~jobs:1 ~mode:(Inject.Sampled 40) ~config w in
  Alcotest.(check (list (pair int string))) "oracle clean" []
    report.Inject.violations;
  if report.Inject.points < 40 then
    Alcotest.failf "sampler produced only %d points" report.Inject.points;
  if report.Inject.skim_commits = 0 then
    Alcotest.fail "anytime MatAdd sweep never hit a skim commit";
  (* Bit-identical across jobs values, including the rendered report. *)
  let render rep = Format.asprintf "%a" Inject.pp rep in
  let again = Inject.sweep ~jobs:2 ~mode:(Inject.Sampled 40) ~config w in
  Alcotest.(check string) "jobs=2 report identical" (render report) (render again);
  if report <> again then Alcotest.fail "jobs=2 report record diverged"

(* The sweep report must be byte-identical with keyframes on or off —
   the interval is a pure replay-cost knob. *)
let test_sweep_keyframes_identical () =
  let w = Wn_workloads.Suite.find Wn_workloads.Workload.Small "MatAdd" in
  let base = { Inject.default_config with keyframe_interval = 0 } in
  let off = Inject.sweep ~jobs:2 ~mode:(Inject.Sampled 40) ~config:base w in
  let render rep = Format.asprintf "%a" Inject.pp rep in
  (* Fixed interval, auto interval (the default), and full-copy frames
     are all pure replay-cost knobs: same report, byte for byte. *)
  List.iter
    (fun (label, config) ->
      let on = Inject.sweep ~jobs:2 ~mode:(Inject.Sampled 40) ~config w in
      Alcotest.(check string)
        (label ^ " rendered report identical")
        (render off) (render on);
      if off <> { on with Inject.config = base } then
        Alcotest.failf "%s sweep record diverged" label)
    [
      ("k=512", { base with Inject.keyframe_interval = 512 });
      ("auto", { base with Inject.keyframe_interval = Inject.auto_keyframe_interval });
      ( "full frames",
        {
          base with
          Inject.keyframe_interval = 512;
          Inject.delta_frames = false;
        } );
    ];
  Alcotest.check_raises "interval below the auto sentinel"
    (Invalid_argument "Inject.sweep") (fun () ->
      ignore
        (Inject.sweep ~jobs:1 ~mode:(Inject.Sampled 4)
           ~config:{ base with Inject.keyframe_interval = -2 }
           w))

let test_sampler_determinism () =
  let w = Wn_workloads.Suite.find Wn_workloads.Workload.Small "MatAdd" in
  let config = { Inject.default_config with system = Wn_core.Intermittent.Nvp } in
  let a = Inject.sweep ~jobs:1 ~mode:(Inject.Sampled 12) ~config w in
  let b = Inject.sweep ~jobs:1 ~mode:(Inject.Sampled 12) ~config w in
  if a <> b then Alcotest.fail "same seed must give the same sweep";
  let c =
    Inject.sweep ~jobs:1 ~mode:(Inject.Sampled 12)
      ~config:{ config with sample_seed = config.Inject.sample_seed + 1 } w
  in
  if a.Inject.points = c.Inject.points && a = { c with Inject.config = a.Inject.config }
  then Alcotest.fail "different seed should move the sampled boundaries"

let () =
  Alcotest.run "wn.faults"
    [
      ( "mechanism",
        [
          Alcotest.test_case "step budget" `Quick test_step_budget;
          Alcotest.test_case "profile shapes" `Quick test_profile_shapes;
          Alcotest.test_case "survey matches raw passes" `Quick
            test_survey_matches_raw_passes;
          Alcotest.test_case "skim reference past halt" `Quick
            test_skim_reference_past_halt;
        ] );
      ( "keyframes",
        [
          Alcotest.test_case "point identity (all boundaries)" `Quick
            test_keyframe_point_identity;
        ] );
      ( "oracle",
        [
          Alcotest.test_case "exhaustive precise" `Quick test_exhaustive_precise;
          Alcotest.test_case "exhaustive anytime" `Quick test_exhaustive_anytime;
          Alcotest.test_case "not vacuous" `Quick test_oracle_not_vacuous;
        ] );
      ( "differential",
        [
          Alcotest.test_case "fast vs compat lockstep" `Quick
            test_lockstep_differential;
        ] );
      ( "suite",
        [
          Alcotest.test_case "sampled MatAdd sweep" `Slow test_sampled_matadd_sweep;
          Alcotest.test_case "keyframes on/off identical" `Slow
            test_sweep_keyframes_identical;
          Alcotest.test_case "sampler determinism" `Slow test_sampler_determinism;
        ] );
    ]
