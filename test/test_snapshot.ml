(* Tests for the whole-simulation snapshot layer: Machine.snapshot /
   Machine.restore must round-trip bit-exactly — registers, flags, PC,
   counters, step budget, skim latch, memoization tables, memory image
   and access stats — under both engines, on every suite workload, into
   the same machine or a fresh one. *)

open Wn_machine
module Memory = Wn_mem.Memory
module Workload = Wn_workloads.Workload
module Runner = Wn_core.Runner
module Rng = Wn_util.Rng

(* Everything architecturally observable about a machine. *)
type obs = {
  pc : int;
  regs : int array;
  flags : Wn_isa.Cond.flags;
  halted : bool;
  skim : int option;
  retired : int;
  wn : int;
  cycles : int;
  budget : int option;
  mem_stats : int * int;
  digest : Digest.t;
}

let observe m =
  {
    pc = Machine.pc m;
    regs = Array.init Wn_isa.Reg.count (fun i -> Machine.reg m (Wn_isa.Reg.r i));
    flags = Machine.flags m;
    halted = Machine.halted m;
    skim = Machine.skim_target m;
    retired = Machine.instructions_retired m;
    wn = Machine.wn_instructions m;
    cycles = Machine.cycles_executed m;
    budget = Machine.step_budget m;
    mem_stats = Memory.read_stats (Machine.mem m);
    digest = Memory.digest (Machine.mem m);
  }

let engines =
  [
    ("fast", Machine.step_fast);
    ("reference", fun m -> ignore (Machine.step_reference m));
  ]

(* Memoization and zero skipping carry extra mutable state (tag/result
   arrays, hit counters) that the snapshot must capture too. *)
let machine_config = { Machine.memo_entries = Some 16; zero_skip = true }

let fresh_machine w =
  let b = Runner.build w { Workload.bits = 8; provisioned = true } in
  let inputs = w.Workload.fresh_inputs (Rng.create 5) in
  fun () ->
    let m = Runner.machine ~machine_config b in
    Runner.load_sample b m inputs;
    m

(* Step [n] times (stopping at halt), observing every [stride] steps;
   returns the observation trace including the final state. *)
let run_observed step m ~n ~stride =
  let trace = ref [] in
  let taken = ref 0 in
  (try
     for i = 1 to n do
       if Machine.halted m then raise Exit;
       step m;
       incr taken;
       if i mod stride = 0 then trace := observe m :: !trace
     done
   with Exit -> ());
  (List.rev (observe m :: !trace), !taken)

let roundtrip_workload (ename, step) w =
  let fresh = fresh_machine w in
  let m = fresh () in
  (* Advance into the program so the snapshot catches warm memo tables,
     live flags and a nonzero skim latch on anytime builds. *)
  let _, warmed = run_observed step m ~n:400 ~stride:400 in
  let snap = Machine.snapshot m in
  let before = observe m in
  Alcotest.(check int)
    (Printf.sprintf "%s/%s: snapshot_retired" w.Workload.name ename)
    before.retired
    (Machine.snapshot_retired snap);
  let trace1, taken = run_observed step m ~n:600 ~stride:100 in
  let name what =
    Printf.sprintf "%s/%s (warmed %d, replayed %d): %s" w.Workload.name ename
      warmed taken what
  in
  (* Restore into the same machine... *)
  Machine.restore m snap;
  if observe m <> before then Alcotest.fail (name "restore is not bit-exact");
  let trace2, _ = run_observed step m ~n:600 ~stride:100 in
  if trace1 <> trace2 then Alcotest.fail (name "replay diverges after restore");
  (* ...and into a fresh machine of the same configuration. *)
  let m2 = fresh () in
  Machine.restore m2 snap;
  if observe m2 <> before then
    Alcotest.fail (name "restore into a fresh machine is not bit-exact");
  let trace3, _ = run_observed step m2 ~n:600 ~stride:100 in
  if trace1 <> trace3 then
    Alcotest.fail (name "fresh-machine replay diverges after restore")

let test_roundtrip_suite () =
  let suite = Wn_workloads.Suite.all Workload.Small in
  List.iter (fun e -> List.iter (roundtrip_workload e) suite) engines

(* Delta snapshots (the default) structurally share memory pages with
   the machine's previous snapshot; full snapshots copy every page.
   Both must restore to bit-identical machines at every point of a
   chain of captures taken at pseudo-random distances. *)
let test_delta_vs_full_chain () =
  let w = Wn_workloads.Suite.find Workload.Small "MatAdd" in
  let fresh = fresh_machine w in
  let m = fresh () in
  let rng = Rng.create 23 in
  let chain = ref [] in
  (* A chain of interleaved delta/full captures at random strides; the
     full capture second so the delta's baseline chain is not broken by
     it being taken first. *)
  for _ = 1 to 12 do
    let n = 1 + Rng.int rng 700 in
    (try
       for _ = 1 to n do
         if Machine.halted m then raise Exit;
         Machine.step_fast m
       done
     with Exit -> ());
    let delta = Machine.snapshot m in
    let full = Machine.snapshot ~full:true m in
    chain := (delta, full, observe m) :: !chain
  done;
  List.iteri
    (fun i (delta, full, expected) ->
      let md = fresh () in
      Machine.restore md delta;
      if observe md <> expected then
        Alcotest.failf "delta restore %d not bit-exact" i;
      if not (Machine.matches_state md full) then
        Alcotest.failf "delta restore %d does not match the full snapshot" i;
      let mf = fresh () in
      Machine.restore mf full;
      if observe mf <> expected then
        Alcotest.failf "full restore %d not bit-exact" i;
      (* Restore the same machine across chain entries out of order:
         in-place restores must not depend on capture order. *)
      Machine.restore md full;
      Machine.restore md delta;
      if observe md <> expected then
        Alcotest.failf "re-restore %d not bit-exact" i)
    !chain

(* The step budget is part of the simulation state: a snapshot taken
   mid-budget must restore the remaining allowance exactly. *)
let test_budget_roundtrip () =
  let w = Wn_workloads.Suite.find Workload.Small "MatAdd" in
  let m = fresh_machine w () in
  Machine.set_step_budget m (Some 10);
  for _ = 1 to 4 do Machine.step_fast m done;
  let snap = Machine.snapshot m in
  for _ = 1 to 6 do Machine.step_fast m done;
  Alcotest.(check bool) "exhausted" true (Machine.budget_exhausted m);
  Machine.restore m snap;
  Alcotest.(check (option int)) "budget restored" (Some 6) (Machine.step_budget m);
  Alcotest.(check bool) "not exhausted" false (Machine.budget_exhausted m)

(* Restoring across machines of different configuration must be
   refused, never silently corrupt. *)
let test_restore_mismatch () =
  let w = Wn_workloads.Suite.find Workload.Small "MatAdd" in
  let b = Runner.build w { Workload.bits = 8; provisioned = true } in
  let with_memo = Runner.machine ~machine_config b in
  let plain = Runner.machine b in
  let mismatch = Invalid_argument "Machine.restore: configuration mismatch" in
  Alcotest.check_raises "memo <- plain" mismatch (fun () ->
      Machine.restore with_memo (Machine.snapshot plain));
  Alcotest.check_raises "plain <- memo" mismatch (fun () ->
      Machine.restore plain (Machine.snapshot with_memo));
  let other = Wn_workloads.Suite.find Workload.Small "Conv2d" in
  let ob = Runner.build other { Workload.bits = 8; provisioned = true } in
  Alcotest.check_raises "different program" mismatch (fun () ->
      Machine.restore plain (Machine.snapshot (Runner.machine ob)))

let () =
  Alcotest.run "wn.snapshot"
    [
      ( "machine",
        [
          Alcotest.test_case "suite round-trips (both engines)" `Quick
            test_roundtrip_suite;
          Alcotest.test_case "delta vs full snapshot chain" `Quick
            test_delta_vs_full_chain;
          Alcotest.test_case "step-budget round-trip" `Quick
            test_budget_roundtrip;
          Alcotest.test_case "configuration mismatch" `Quick
            test_restore_mismatch;
        ] );
    ]
