(* `dune build @lint`: run the static verifier over every benchmark in
   both build modes and fail if anything is reported. *)

open Wn_workloads

let () =
  let dirty = ref 0 in
  List.iter
    (fun (w : Workload.t) ->
      List.iter
        (fun (label, options) ->
          let source = w.Workload.source { Workload.bits = 8; provisioned = true } in
          let compiled = Wn_compiler.Compile.compile_source ~options source in
          let diags = Wn_compiler.Compile.lint compiled in
          Format.printf "%-10s %-8s %a@." w.Workload.name label
            Wn_analysis.Diag.pp_report diags;
          if diags <> [] then incr dirty)
        [
          ("precise", Wn_compiler.Compile.precise);
          ("anytime", Wn_compiler.Compile.anytime);
        ])
    (Suite.extended Workload.Small);
  if !dirty > 0 then begin
    Format.printf "lint: %d configuration(s) with findings@." !dirty;
    exit 1
  end
