(* Tests for wn.power: traces, the capacitor and the supply. *)

open Wn_power

let test_trace_basics () =
  let t = Trace.constant ~power:1e-3 ~duration_s:0.1 in
  Alcotest.(check int) "100 ticks" 100 (Trace.length t);
  Alcotest.(check (float 1e-9)) "duration" 0.1 (Trace.duration_s t);
  Alcotest.(check (float 1e-9)) "sample" 1e-3 (Trace.power_at_tick t 5);
  Alcotest.(check (float 1e-9)) "wraps" 1e-3 (Trace.power_at_tick t 105);
  Alcotest.(check (float 1e-9)) "mean" 1e-3 (Trace.mean_power t);
  Alcotest.(check (float 1e-9)) "duty" 1.0 (Trace.duty_cycle t)

let test_trace_square () =
  let t = Trace.square ~on_ms:2 ~off_ms:8 ~power:1e-3 ~duration_s:0.1 in
  Alcotest.(check (float 1e-9)) "on" 1e-3 (Trace.power_at_tick t 1);
  Alcotest.(check (float 1e-9)) "off" 0.0 (Trace.power_at_tick t 5);
  Alcotest.(check (float 1e-6)) "duty 20%" 0.2 (Trace.duty_cycle t)

let test_trace_rf_burst () =
  let t = Trace.rf_burst ~seed:1 ~duration_s:10.0 () in
  let duty = Trace.duty_cycle t in
  if duty < 0.01 || duty > 0.4 then
    Alcotest.failf "implausible RF duty cycle %.3f" duty;
  (* deterministic for a seed *)
  let t' = Trace.rf_burst ~seed:1 ~duration_s:10.0 () in
  Alcotest.(check (float 0.0)) "deterministic" (Trace.mean_power t)
    (Trace.mean_power t');
  let t2 = Trace.rf_burst ~seed:2 ~duration_s:10.0 () in
  if Trace.mean_power t = Trace.mean_power t2 then
    Alcotest.fail "different seeds produced identical traces"

let test_paper_suite () =
  let traces = Trace.paper_suite ~seed:9 ~duration_s:2.0 () in
  Alcotest.(check int) "nine traces" 9 (List.length traces);
  List.iter
    (fun t -> if Trace.mean_power t <= 0.0 then Alcotest.fail "dead trace")
    traces

let test_capacitor_hysteresis () =
  let c = Capacitor.create () in
  Alcotest.(check bool) "starts on" true (Capacitor.is_on c);
  Alcotest.(check (float 1e-6)) "starts at v_max" 2.5 (Capacitor.voltage c);
  (* Drain just past brown-out. *)
  Capacitor.drain c (Capacitor.usable_energy c +. 1e-9);
  Alcotest.(check bool) "browned out" false (Capacitor.is_on c);
  (* A little harvest is not enough: hysteresis waits for v_on. *)
  Capacitor.harvest c 1e-7;
  Alcotest.(check bool) "still off below v_on" false (Capacitor.is_on c);
  Capacitor.harvest c 1.0;
  Alcotest.(check bool) "back on" true (Capacitor.is_on c);
  Alcotest.(check (float 1e-6)) "clamped at v_max" 2.5 (Capacitor.voltage c)

let test_capacitor_energy () =
  let c = Capacitor.create () in
  (* ½·10µF·(2.5² − 1.8²) ≈ 15.05 µJ of usable charge. *)
  Alcotest.(check (float 1e-7)) "usable energy" 1.505e-5 (Capacitor.usable_energy c);
  Alcotest.(check (float 1e-7)) "burst budget" 1.505e-5 (Capacitor.burst_budget c);
  Capacitor.set_empty c;
  Alcotest.(check (float 1e-9)) "empty has none" 0.0 (Capacitor.usable_energy c);
  Capacitor.set_full c;
  Alcotest.(check bool) "full is on" true (Capacitor.is_on c);
  Alcotest.check_raises "negative drain" (Invalid_argument "Capacitor.drain")
    (fun () -> Capacitor.drain c (-1.0))

let test_capacitor_bad_config () =
  Alcotest.check_raises "v_off above v_on" (Invalid_argument "Capacitor.create")
    (fun () -> ignore (Capacitor.create ~v_on:1.0 ~v_off:2.0 ()))

(* Property: under any interleaving of harvest and drain, the stored
   energy clamps at full charge, and the on/off latch obeys the
   hysteresis band — it never reads on below V_off, turns on only at or
   above V_on, and turns off only below V_off. *)
let test_capacitor_invariants_random () =
  let rng = Wn_util.Rng.create 42 in
  let c = Capacitor.create () in
  let full = Capacitor.energy c in
  let eps = 1e-12 in
  for step = 1 to 20_000 do
    let was_on = Capacitor.is_on c in
    let amount = Wn_util.Rng.float rng 4e-6 in
    if Wn_util.Rng.bool rng then Capacitor.harvest c amount
    else Capacitor.drain c amount;
    let v = Capacitor.voltage c in
    if Capacitor.energy c > full +. eps then
      Alcotest.failf "step %d: stored energy above full charge" step;
    if Capacitor.is_on c && v < 1.8 -. 1e-9 then
      Alcotest.failf "step %d: on at %.4f V, below V_off" step v;
    if (not was_on) && Capacitor.is_on c && v < 2.3 -. 1e-9 then
      Alcotest.failf "step %d: turned on at %.4f V, below V_on" step v;
    if was_on && (not (Capacitor.is_on c)) && v >= 1.8 +. 1e-9 then
      Alcotest.failf "step %d: turned off at %.4f V, above V_off" step v
  done

(* The same hysteresis property driven through the supply's tick-cached
   consume / wait_for_power paths: whenever [wait_for_power] reports
   power back, the capacitor must actually have reached V_on (not just
   V_off), and consume's verdict must agree with the capacitor latch. *)
let test_supply_hysteresis_under_tick_cache () =
  let rng = Wn_util.Rng.create 7 in
  let trace = Trace.square ~on_ms:3 ~off_ms:7 ~power:2.5e-3 ~duration_s:1.0 in
  let cap = Capacitor.create () in
  let supply = Supply.create ~trace ~capacitor:cap () in
  for step = 1 to 5_000 do
    (* Cycle bursts from 1 to ~3000 exercise both the within-tick
       multiply-add path and the piecewise tick-spanning path. *)
    let on = Supply.consume supply ~cycles:(1 + Wn_util.Rng.int rng 3_000) in
    if on <> Capacitor.is_on cap then
      Alcotest.failf "step %d: consume verdict disagrees with the latch" step;
    if on && Capacitor.voltage cap < 1.8 -. 1e-9 then
      Alcotest.failf "step %d: on below V_off" step;
    if not on then begin
      ignore (Supply.wait_for_power supply);
      if not (Supply.is_on supply) then
        Alcotest.failf "step %d: wait_for_power returned while off" step;
      if Capacitor.voltage cap < 2.3 -. 1e-9 then
        Alcotest.failf "step %d: wait_for_power turned on at %.4f V, below V_on"
          step (Capacitor.voltage cap)
    end
  done

let test_supply_accounting () =
  let s = Supply.always_on () in
  Alcotest.(check bool) "on" true (Supply.is_on s);
  ignore (Supply.consume s ~cycles:1000);
  Alcotest.(check int) "clock advances" 1000 (Supply.now_cycles s);
  Alcotest.(check (float 1e-12)) "energy accounted"
    (1000.0 *. Supply.default_cycle_energy)
    (Supply.energy_consumed s);
  Alcotest.(check (float 1e-9)) "seconds" (1000.0 /. 24e6) (Supply.now_s s)

let test_supply_outage_and_recovery () =
  (* A square source: the capacitor must brown out while computing and
     recover during a burst. *)
  let trace = Trace.square ~on_ms:5 ~off_ms:20 ~power:2e-3 ~duration_s:1.0 in
  let supply = Supply.create ~trace ~capacitor:(Capacitor.create ()) () in
  (* Full charge sustains ~30k cycles at 0.5 nJ/cycle. *)
  let rec drain_until_out n =
    if n > 1_000_000 then Alcotest.fail "never browned out"
    else if Supply.consume supply ~cycles:100 then drain_until_out (n + 1)
  in
  drain_until_out 0;
  Alcotest.(check bool) "off after drain" false (Supply.is_on supply);
  Alcotest.(check int) "one outage" 1 (Supply.outages supply);
  let before = Supply.now_cycles supply in
  let waited = Supply.wait_for_power supply in
  Alcotest.(check bool) "recovered" true (Supply.is_on supply);
  Alcotest.(check int) "clock advanced by the wait" (before + waited)
    (Supply.now_cycles supply);
  if waited <= 0 then Alcotest.fail "wait took no time"

let test_supply_starved () =
  let trace = Trace.constant ~power:1e-12 ~duration_s:0.5 in
  let supply = Supply.create ~trace ~capacitor:(Capacitor.create ()) () in
  let rec drain () = if Supply.consume supply ~cycles:1000 then drain () in
  drain ();
  match Supply.wait_for_power supply with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "starved supply should fail"

let test_supply_piecewise_harvest () =
  (* Regression: a multi-cycle instruction straddling a trace edge must
     credit each tick segment at that segment's power, not the whole
     instruction at the starting tick's power.  A 1 kHz trace at 24 MHz
     puts the edge of a 1 ms on / 1 ms off square at cycle 24_000. *)
  let trace = Trace.square ~on_ms:1 ~off_ms:1 ~power:2e-3 ~duration_s:0.1 in
  let cap = Capacitor.create () in
  (* A tiny cycle energy keeps the capacitor strictly between empty and
     the regulator clamp for the whole test, so stored energy is an
     exact linear function of harvest and drain. *)
  let supply = Supply.create ~cycle_energy:1e-10 ~trace ~capacitor:cap () in
  (* Advance to 10 cycles before the on->off edge, inside tick 0. *)
  ignore (Supply.consume supply ~cycles:23_990);
  Alcotest.(check int) "at edge - 10" 23_990 (Supply.now_cycles supply);
  let e0 = Capacitor.energy cap in
  (* A 20-cycle instruction straddling the edge: only its first 10
     cycles see power, so it harvests 2 mW x 10 cycles, not 2 mW x 20
     (the pre-fix behaviour). *)
  ignore (Supply.consume supply ~cycles:20);
  Alcotest.(check (float 1e-12)) "piecewise credit at the edge"
    (e0 +. (2e-3 *. 10.0 /. 24e6) -. (20.0 *. 1e-10))
    (Capacitor.energy cap);
  (* Entirely inside the off tick: no inflow at all. *)
  let e1 = Capacitor.energy cap in
  ignore (Supply.consume supply ~cycles:100);
  Alcotest.(check (float 1e-12)) "no inflow off-tick"
    (e1 -. (100.0 *. 1e-10))
    (Capacitor.energy cap);
  (* Spanning a whole off tick into the next burst: only the 110 cycles
     that land in the on tick harvest. *)
  let e2 = Capacitor.energy cap in
  ignore (Supply.consume supply ~cycles:24_000);
  Alcotest.(check (float 1e-12)) "multi-tick span"
    (e2 +. (2e-3 *. 110.0 /. 24e6) -. (24_000.0 *. 1e-10))
    (Capacitor.energy cap)

let test_wait_for_power_mid_tick () =
  (* Regression: an outage beginning mid-tick must first credit the
     remainder of that tick at that tick's power, then proceed whole
     ticks on the trace grid.  The old code charged full-length ticks
     starting at the outage point, over-crediting the first one and
     drifting the clock off the 1 ms grid for good. *)
  let trace = Trace.square ~on_ms:1 ~off_ms:1 ~power:2e-3 ~duration_s:0.1 in
  let cap = Capacitor.create () in
  Capacitor.set_empty cap;
  let supply = Supply.create ~start_full:false ~trace ~capacitor:cap () in
  (* 10k cycles into tick 0 (24k cycles per tick): off mid-tick. *)
  ignore (Supply.consume supply ~cycles:10_000);
  Alcotest.(check bool) "off mid-tick" false (Supply.is_on supply);
  let e0 = Capacitor.energy cap in
  let waited = Supply.wait_for_power supply in
  Alcotest.(check bool) "recovered" true (Supply.is_on supply);
  (* The clock comes back on the trace grid: 14k cycles close tick 0,
     then whole 24k-cycle ticks. *)
  Alcotest.(check int) "tick-aligned resume" 0
    (Supply.now_cycles supply mod 24_000);
  if waited < 14_000 then Alcotest.failf "waited only %d cycles" waited;
  Alcotest.(check int) "whole ticks after the partial one" 0
    ((waited - 14_000) mod 24_000);
  (* Exact energy balance: the 14k-cycle remainder of tick 0 at tick
     0's power, then each full tick at its own power. *)
  let n_full = (waited - 14_000) / 24_000 in
  let expect = ref (e0 +. (2e-3 *. 14_000.0 /. 24e6)) in
  for k = 1 to n_full do
    expect := !expect +. (Trace.power_at_tick trace k *. 24_000.0 /. 24e6)
  done;
  Alcotest.(check (float 1e-12)) "mid-tick partial credit" !expect
    (Capacitor.energy cap)

let test_supply_scripted () =
  let s = Supply.scripted ~off_cycles:1_000 ~outages:[ 500; 2_000 ] () in
  Alcotest.(check bool) "on at start" true (Supply.is_on s);
  Alcotest.(check bool) "runs to 499" true (Supply.consume s ~cycles:499);
  Alcotest.(check bool) "cut at 500" false (Supply.consume s ~cycles:1);
  Alcotest.(check int) "one outage" 1 (Supply.outages s);
  Alcotest.(check int) "off period is exact" 1_000 (Supply.wait_for_power s);
  Alcotest.(check bool) "back on" true (Supply.is_on s);
  Alcotest.(check int) "clock accounts the off time" 1_500 (Supply.now_cycles s);
  (* The second scripted cut fires the moment the clock passes it. *)
  Alcotest.(check bool) "cut at 2000" false (Supply.consume s ~cycles:600);
  ignore (Supply.wait_for_power s);
  (* An explicit cut behaves like a scripted one. *)
  Supply.cut s;
  Alcotest.(check bool) "manual cut" false (Supply.is_on s);
  Alcotest.(check int) "three outages" 3 (Supply.outages s);
  Supply.cut s;
  Alcotest.(check int) "cut while off is a no-op" 3 (Supply.outages s);
  ignore (Supply.wait_for_power s);
  Alcotest.(check bool) "recovers" true (Supply.is_on s);
  Alcotest.check_raises "unsorted script" (Invalid_argument "Supply.scripted")
    (fun () -> ignore (Supply.scripted ~outages:[ 10; 5 ] ()))

let test_supply_cut_capacitor_backed () =
  let trace = Trace.square ~on_ms:5 ~off_ms:5 ~power:2e-3 ~duration_s:1.0 in
  let cap = Capacitor.create () in
  let s = Supply.create ~trace ~capacitor:cap () in
  Alcotest.(check bool) "on" true (Supply.is_on s);
  Supply.cut s;
  Alcotest.(check bool) "off after cut" false (Supply.is_on s);
  Alcotest.(check int) "outage counted" 1 (Supply.outages s);
  ignore (Supply.wait_for_power s);
  Alcotest.(check bool) "recharges on the trace" true (Supply.is_on s);
  (* Recharge honoured hysteresis: back above V_on, not just V_off. *)
  if Capacitor.voltage cap < 2.3 -. 1e-9 then
    Alcotest.fail "recovered below V_on"

let test_burst_length_calibration () =
  (* The paper's regime: a full charge lasts of the order of a
     millisecond at 24 MHz (tens of thousands of cycles). *)
  let trace = Trace.constant ~power:0.0 ~duration_s:0.1 in
  let supply = Supply.create ~trace ~capacitor:(Capacitor.create ()) () in
  let cycles = ref 0 in
  while Supply.consume supply ~cycles:100 do
    cycles := !cycles + 100
  done;
  if !cycles < 10_000 || !cycles > 100_000 then
    Alcotest.failf "burst of %d cycles is outside the paper's regime" !cycles

let () =
  Alcotest.run "wn.power"
    [
      ( "trace",
        [
          Alcotest.test_case "constant" `Quick test_trace_basics;
          Alcotest.test_case "square" `Quick test_trace_square;
          Alcotest.test_case "rf burst" `Quick test_trace_rf_burst;
          Alcotest.test_case "paper suite" `Quick test_paper_suite;
        ] );
      ( "capacitor",
        [
          Alcotest.test_case "hysteresis" `Quick test_capacitor_hysteresis;
          Alcotest.test_case "energy" `Quick test_capacitor_energy;
          Alcotest.test_case "bad config" `Quick test_capacitor_bad_config;
          Alcotest.test_case "random-walk invariants" `Quick
            test_capacitor_invariants_random;
        ] );
      ( "supply",
        [
          Alcotest.test_case "accounting" `Quick test_supply_accounting;
          Alcotest.test_case "outage and recovery" `Quick test_supply_outage_and_recovery;
          Alcotest.test_case "starved" `Quick test_supply_starved;
          Alcotest.test_case "piecewise harvest" `Quick test_supply_piecewise_harvest;
          Alcotest.test_case "mid-tick wait_for_power" `Quick test_wait_for_power_mid_tick;
          Alcotest.test_case "hysteresis under tick cache" `Quick
            test_supply_hysteresis_under_tick_cache;
          Alcotest.test_case "scripted outages" `Quick test_supply_scripted;
          Alcotest.test_case "cut on capacitor supply" `Quick
            test_supply_cut_capacitor_backed;
          Alcotest.test_case "burst calibration" `Quick test_burst_length_calibration;
        ] );
    ]
