(* Tests for wn.exec: the fixed-size domain pool behind the parallel
   experiment engine — order preservation, jobs > tasks, exception
   propagation, nesting, and bit-identical parallel-vs-sequential
   results on the fig10-style intermittent driver. *)

open Wn_workloads
module Pool = Wn_exec.Pool

let ints = Alcotest.(list int)

let test_map_matches_sequential () =
  let xs = List.init 100 Fun.id in
  let f x = (x * x) + 1 in
  let expected = List.map f xs in
  List.iter
    (fun jobs ->
      Alcotest.(check ints)
        (Printf.sprintf "order preserved at jobs=%d" jobs)
        expected
        (Pool.map ~jobs f xs))
    [ 1; 2; 8 ]

let test_edge_shapes () =
  Alcotest.(check ints) "empty list" [] (Pool.map ~jobs:4 succ []);
  Alcotest.(check ints) "singleton" [ 2 ] (Pool.map ~jobs:4 succ [ 1 ]);
  (* More workers than tasks: no task lost, no hang, order kept. *)
  Alcotest.(check ints) "jobs > tasks" [ 2; 3; 4 ] (Pool.map ~jobs:8 succ [ 1; 2; 3 ])

(* A zero or negative pool width is a caller bug: [map] must refuse it
   loudly (regression: jobs <= 0 used to degrade silently to the
   sequential path). *)
let test_map_rejects_nonpositive_jobs () =
  List.iter
    (fun jobs ->
      match Pool.map ~jobs succ [ 1; 2; 3 ] with
      | exception Invalid_argument _ -> ()
      | _ -> Alcotest.failf "jobs=%d accepted" jobs)
    [ 0; -1; -8 ]

let test_pool_reuse () =
  let t = Pool.create ~jobs:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown t) @@ fun () ->
  Alcotest.(check int) "jobs" 3 (Pool.jobs t);
  Alcotest.(check ints) "first batch" [ 2; 4; 6 ] (Pool.run t (fun x -> 2 * x) [ 1; 2; 3 ]);
  Alcotest.(check ints) "second batch" [ 0; 1; 2; 3; 4 ] (Pool.run t Fun.id [ 0; 1; 2; 3; 4 ])

let test_worker_exception_propagates () =
  (* A raising worker must surface its exception in the caller without
     hanging the pool, and the pool must stay usable for a next map. *)
  match
    Pool.map ~jobs:4
      (fun x -> if x = 7 then failwith "boom" else x)
      (List.init 20 Fun.id)
  with
  | _ -> Alcotest.fail "expected the worker exception to propagate"
  | exception Failure msg ->
      Alcotest.(check string) "original exception" "boom" msg;
      Alcotest.(check ints) "pool machinery survives" [ 1; 2 ]
        (Pool.map ~jobs:4 succ [ 0; 1 ])

(* Regression: [default_jobs] used to clamp at 8, so a pool asked for
   more never had more.  Prove 10 requested workers really run 10
   concurrent tasks: each task blocks until all 10 have started, which
   can only happen if 10 executors are live at once. *)
let test_wide_pool_really_wide () =
  let jobs = 10 in
  let t = Pool.create ~jobs () in
  Fun.protect ~finally:(fun () -> Pool.shutdown t) @@ fun () ->
  Alcotest.(check int) "requested width kept" jobs (Pool.jobs t);
  let started = Atomic.make 0 in
  let rendezvous _ =
    Atomic.incr started;
    (* Domains timeshare on few cores; yield while waiting. *)
    while Atomic.get started < jobs do
      Domain.cpu_relax ()
    done;
    Atomic.get started
  in
  let counts = Pool.run t rendezvous (List.init jobs Fun.id) in
  List.iter (fun c -> Alcotest.(check int) "all saw full house" jobs c) counts

let test_map_batches () =
  let t = Pool.create ~jobs:3 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown t) @@ fun () ->
  let xs = Array.init 10 Fun.id in
  let sums = Pool.map_batches t ~batch:4 (Array.fold_left ( + ) 0) xs in
  (* Partition is [0..3][4..7][8..9] whatever the pool width. *)
  Alcotest.(check ints) "batch sums in order" [ 6; 22; 17 ] sums;
  let shapes = Pool.map_batches t ~batch:4 Array.length xs in
  Alcotest.(check ints) "chunk shapes" [ 4; 4; 2 ] shapes;
  Alcotest.(check ints) "empty input" []
    (Pool.map_batches t ~batch:4 Array.length [||]);
  match Pool.map_batches t ~batch:0 Array.length xs with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "batch=0 accepted"

let test_map_batches_jobs_independent () =
  let xs = Array.init 37 (fun i -> i * i) in
  let run jobs =
    let t = Pool.create ~jobs () in
    Fun.protect ~finally:(fun () -> Pool.shutdown t) @@ fun () ->
    Pool.map_batches t ~batch:5 (fun c -> Array.to_list c) xs
  in
  let sequential = run 1 in
  List.iter
    (fun jobs ->
      if run jobs <> sequential then
        Alcotest.failf "batch partition changed at jobs=%d" jobs)
    [ 2; 8 ]

let test_nested_map () =
  (* A task that itself fans out (a parallel figure whose units fan
     out) must not deadlock; caller participation drains the queue. *)
  let t = Pool.create ~jobs:2 () in
  Fun.protect ~finally:(fun () -> Pool.shutdown t) @@ fun () ->
  let result =
    Pool.run t
      (fun i -> List.fold_left ( + ) 0 (Pool.run t (fun j -> (10 * i) + j) [ 1; 2; 3 ]))
      [ 1; 2; 3; 4 ]
  in
  Alcotest.(check ints) "nested totals" [ 36; 66; 96; 126 ] result

(* ---------------- determinism of the experiment engine ------------- *)

let scale = Workload.Small

let test_intermittent_bit_identical () =
  (* The fig10 driver: per-unit partial results concatenated in unit
     order must make the parallel result bit-identical to sequential. *)
  let w = Suite.find scale "Var" in
  let setup =
    { Wn_core.Intermittent.default_setup with n_traces = 3; samples_per_run = 2 }
  in
  let run jobs =
    Wn_core.Intermittent.run ~jobs ~setup ~system:Wn_core.Intermittent.Clank
      ~bits:4 w
  in
  let sequential = run 1 in
  List.iter
    (fun jobs ->
      if run jobs <> sequential then
        Alcotest.failf "jobs=%d diverged from the sequential result" jobs)
    [ 2; 8 ]

let test_curves_bit_identical () =
  let ws = [ Suite.find scale "MatAdd"; Suite.find scale "MatMul" ] in
  let suite jobs =
    Wn_core.Curves.suite ~jobs ~seed:5 ~bits_list:[ 4; 8 ] ws
  in
  let sequential = suite 1 in
  List.iter
    (fun jobs ->
      if suite jobs <> sequential then
        Alcotest.failf "curve suite at jobs=%d diverged" jobs)
    [ 2; 8 ]

let test_figure_output_bit_identical () =
  (* Whole-figure rendering (the CSV the bench harness emits on stdout)
     must be byte-identical across jobs values. *)
  let render jobs =
    let buf = Buffer.create 4096 in
    let ppf = Format.formatter_of_buffer buf in
    let opts = { Wn_core.Figures.default_options with jobs } in
    (match Wn_core.Figures.run ppf opts "fig15" with
    | Ok () -> Format.pp_print_flush ppf ()
    | Error e -> Alcotest.fail e);
    Buffer.contents buf
  in
  let sequential = render 1 in
  Alcotest.(check string) "fig15 at jobs=2" sequential (render 2);
  Alcotest.(check string) "fig15 at jobs=8" sequential (render 8)

let () =
  Alcotest.run "wn.exec"
    [
      ( "pool",
        [
          Alcotest.test_case "map matches sequential" `Quick test_map_matches_sequential;
          Alcotest.test_case "edge shapes" `Quick test_edge_shapes;
          Alcotest.test_case "nonpositive jobs rejected" `Quick
            test_map_rejects_nonpositive_jobs;
          Alcotest.test_case "pool reuse" `Quick test_pool_reuse;
          Alcotest.test_case "worker exception" `Quick test_worker_exception_propagates;
          Alcotest.test_case "wide pool" `Quick test_wide_pool_really_wide;
          Alcotest.test_case "map_batches" `Quick test_map_batches;
          Alcotest.test_case "map_batches jobs independent" `Quick
            test_map_batches_jobs_independent;
          Alcotest.test_case "nested map" `Quick test_nested_map;
        ] );
      ( "determinism",
        [
          Alcotest.test_case "intermittent driver" `Slow test_intermittent_bit_identical;
          Alcotest.test_case "curve suite" `Slow test_curves_bit_identical;
          Alcotest.test_case "figure output" `Slow test_figure_output_bit_identical;
        ] );
    ]
