(* Tests for wn.analysis: CFG construction, register dataflow, and the
   skim-safety / WAR checkers — including programs seeded with the
   hazards the verifier exists to catch, and a clean sweep over the
   whole benchmark suite. *)

open Wn_isa
open Wn_analysis

let r = Reg.r

(* A small diamond with a loop:

     0: mov   r0, #0
     1: cmp   r0, #10
     2: b.ge  7
     3: mov   r1, r0        ; loop body
     4: alu   r0 <- r0 + r1
     5: cmp   r0, #10
     6: b.lt  3
     7: halt                                                       *)
let diamond =
  [|
    Instr.Mov_imm (r 0, 0);
    Instr.Cmp_imm (r 0, 10);
    Instr.B (Cond.Ge, 7);
    Instr.Mov (r 1, r 0);
    Instr.Alu (Instr.Add, r 0, r 0, r 1);
    Instr.Cmp_imm (r 0, 10);
    Instr.B (Cond.Lt, 3);
    Instr.Halt;
  |]

let test_cfg_blocks () =
  let cfg = Cfg.build diamond in
  Alcotest.(check int) "block count" 3 (Array.length cfg.Cfg.blocks);
  let blk pc = cfg.Cfg.blocks.(cfg.Cfg.block_of.(pc)) in
  Alcotest.(check int) "loop body starts at 3" 3 (blk 4).Cfg.first;
  Alcotest.(check int) "loop body ends at 6" 6 (blk 4).Cfg.last;
  (* the conditional branch block falls through and jumps *)
  let b2 = cfg.Cfg.block_of.(2) in
  Alcotest.(check (list int))
    "succ of header"
    [ cfg.Cfg.block_of.(3); cfg.Cfg.block_of.(7) ]
    (List.sort compare cfg.Cfg.succ.(b2));
  (* the loop body loops back to itself and exits *)
  let b3 = cfg.Cfg.block_of.(3) in
  Alcotest.(check bool) "back edge" true (List.mem b3 cfg.Cfg.succ.(b3))

let test_cfg_dominators () =
  let cfg = Cfg.build diamond in
  Alcotest.(check bool) "entry dominates all" true (Cfg.dominates cfg 0 7);
  Alcotest.(check bool) "straight-line order" true (Cfg.dominates cfg 3 6);
  Alcotest.(check bool) "loop body does not dominate exit" false
    (Cfg.dominates cfg 3 7);
  Alcotest.(check bool) "no reverse domination" false (Cfg.dominates cfg 7 0)

let test_cfg_loops () =
  let cfg = Cfg.build diamond in
  match Cfg.loops cfg with
  | [ (header, members) ] ->
      Alcotest.(check int) "header pc" 3 header;
      Alcotest.(check (list int)) "members" [ 3; 4; 5; 6 ] members;
      Alcotest.(check bool) "in_loop inside" true (Cfg.in_loop cfg 4);
      Alcotest.(check bool) "in_loop outside" false (Cfg.in_loop cfg 0)
  | l -> Alcotest.failf "expected one loop, got %d" (List.length l)

let test_liveness () =
  let cfg = Cfg.build diamond in
  let rf = Regflow.compute cfg in
  (* r0 is live throughout the loop; r1 only between its def and use *)
  Alcotest.(check bool) "r0 live into loop" true
    (List.exists (Reg.equal (r 0)) (Regflow.live_in rf 3));
  Alcotest.(check bool) "r1 dead before its def" false
    (List.exists (Reg.equal (r 1)) (Regflow.live_in rf 3));
  Alcotest.(check bool) "r1 live after its def" true
    (List.exists (Reg.equal (r 1)) (Regflow.live_in rf 4));
  (* flags are live between the cmp and the branch *)
  Alcotest.(check bool) "flags live before branch" true
    (Regflow.flags_live_in rf 2);
  Alcotest.(check bool) "flags dead at entry" false (Regflow.flags_live_in rf 0)

let rules ds = List.map (fun d -> d.Diag.rule) ds
let has_rule rule ds = List.mem rule (rules ds)

let test_uninit_and_dead () =
  (* r1 is read before any write; the first mov to r2 is dead *)
  let prog =
    [|
      Instr.Mov_imm (r 2, 1);
      Instr.Mov (r 0, r 1);
      Instr.Mov_imm (r 2, 2);
      Instr.Alu (Instr.Add, r 0, r 0, r 2);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 };
      Instr.Halt;
    |]
  in
  let ds = Check.program prog in
  Alcotest.(check bool) "uninit read flagged" true (has_rule "uninit-read" ds);
  Alcotest.(check bool) "dead store flagged" true (has_rule "dead-store" ds)

let test_clean_straight_line () =
  let prog =
    [|
      Instr.Mov_imm (r 0, 42);
      Instr.Mov_imm (r 1, 0x100);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Halt;
    |]
  in
  Alcotest.(check (list string)) "no diagnostics" [] (rules (Check.program prog))

let test_falls_off_end () =
  let prog = [| Instr.Mov_imm (r 0, 1) |] in
  Alcotest.(check bool) "falls off end" true
    (has_rule "falls-off-end" (Check.program prog))

(* ---------------- seeded skim hazards ---------------- *)

let syms =
  [ { Addr.sym_name = "x"; sym_addr = 0x100; sym_bytes = 64 } ]

let test_skim_mistargeted () =
  (* The skim target still needs r0: a skim restore scrubs volatile
     state, so latching this target loses the value. *)
  let prog =
    [|
      Instr.Mov_imm (r 0, 42);
      Instr.Mov_imm (r 1, 0x100);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Skm 5;
      Instr.Mov_imm (r 0, 7);
      (* target: r0 live-in here *)
      Instr.Alu (Instr.Add, r 2, r 0, r 0);
      Instr.Mov_imm (r 1, 0x104);
      Instr.Str { width = Instr.Word; rs = r 2; base = r 1; off = 0 };
      Instr.Halt;
    |]
  in
  let ds = Check.program ~symbols:syms prog in
  Alcotest.(check bool) "mis-targeted skim flagged" true
    (has_rule "skim-target-live" ds);
  Alcotest.(check bool) "it is an error" true
    (List.exists
       (fun d -> d.Diag.rule = "skim-target-live" && d.Diag.severity = Diag.Error)
       ds)

let test_skim_backward_and_uncommitted () =
  let prog =
    [|
      Instr.Mov_imm (r 0, 1);
      Instr.Skm 0;
      Instr.Halt;
    |]
  in
  let ds = Check.program prog in
  Alcotest.(check bool) "backward target flagged" true
    (has_rule "skim-backward" ds);
  (* forward skim with no store anywhere before it *)
  let prog2 = [| Instr.Mov_imm (r 0, 1); Instr.Skm 2; Instr.Halt |] in
  Alcotest.(check bool) "uncommitted skim flagged" true
    (has_rule "skim-no-commit" (Check.program prog2))

(* ---------------- seeded WAR hazard ---------------- *)

let test_war_hand_written () =
  (* load x[0]; add; store x[0] with no skim latched: the classic
     non-idempotent read-modify-write. *)
  let prog =
    [|
      Instr.Mov_imm (r 1, 0x100);
      Instr.Ldr { width = Instr.Word; signed = false; rd = r 0; base = r 1; off = 0 };
      Instr.Alu_imm (Instr.Add, r 0, r 0, 1);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Halt;
    |]
  in
  let ds = Check.program ~symbols:syms prog in
  Alcotest.(check bool) "war hazard flagged" true (has_rule "war-hazard" ds);
  Alcotest.(check bool) "war hazard names the symbol" true
    (List.exists (fun d -> d.Diag.symbol = Some "x") ds)

let test_war_skim_protected () =
  (* The same read-modify-write is fine once a skim is latched on every
     path to the load: an outage can no longer re-execute it. *)
  let prog =
    [|
      Instr.Mov_imm (r 1, 0x100);
      Instr.Mov_imm (r 0, 5);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Skm 7;
      Instr.Ldr { width = Instr.Word; signed = false; rd = r 0; base = r 1; off = 0 };
      Instr.Alu_imm (Instr.Add, r 0, r 0, 1);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Halt;
    |]
  in
  let ds = Check.program ~symbols:syms prog in
  Alcotest.(check bool) "no war hazard after skim" false (has_rule "war-hazard" ds)

let war_source =
  "uint32 x[16];\n\n\
   kernel bump() {\n\
  \  for (i = 0; i < 16; i += 1) {\n\
  \    x[i] = x[i] + 1;\n\
  \  }\n\
   }\n"

let test_war_compiled () =
  let compiled = Wn_compiler.Compile.compile_source war_source in
  let ds = Wn_compiler.Compile.lint compiled in
  Alcotest.(check bool) "compiled RMW flagged" true (has_rule "war-hazard" ds);
  Alcotest.(check bool) "strict compile refuses it" true
    (match Wn_compiler.Compile.compile_source ~strict:true war_source with
    | _ -> false
    | exception Wn_compiler.Compile.Error msg ->
        (* the failure comes from the verify stage *)
        String.length msg >= 6 && String.sub msg 0 6 = "verify")

(* ---------------- the suite itself must verify clean ---------------- *)

let test_suite_clean () =
  List.iter
    (fun (w : Wn_workloads.Workload.t) ->
      List.iter
        (fun bits ->
          List.iter
            (fun (label, options) ->
              let source =
                w.Wn_workloads.Workload.source
                  { Wn_workloads.Workload.bits; provisioned = true }
              in
              match
                Wn_compiler.Compile.compile_source ~options ~strict:true source
              with
              | compiled ->
                  let ds = Wn_compiler.Compile.lint compiled in
                  Alcotest.(check (list string))
                    (Printf.sprintf "%s %s %d-bit"
                       w.Wn_workloads.Workload.name label bits)
                    [] (rules ds)
              | exception Wn_compiler.Compile.Error msg
                when label = "anytime+vl"
                     && String.length msg >= 10
                     && String.sub msg 0 10 = "transform:" ->
                  (* vector_loads only applies when the asp arrays also
                     carry asv pragmas; skip benchmarks without them *)
                  ())
            [
              ("precise", Wn_compiler.Compile.precise);
              ("anytime", Wn_compiler.Compile.anytime);
              ("anytime+vl", Wn_compiler.Compile.anytime_vector_loads);
            ])
        [ 4; 8; 16 ])
    (Wn_workloads.Suite.extended Wn_workloads.Workload.Small)

let () =
  Alcotest.run "wn.analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "blocks" `Quick test_cfg_blocks;
          Alcotest.test_case "dominators" `Quick test_cfg_dominators;
          Alcotest.test_case "loops" `Quick test_cfg_loops;
        ] );
      ( "regflow",
        [
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "uninit and dead" `Quick test_uninit_and_dead;
          Alcotest.test_case "clean program" `Quick test_clean_straight_line;
          Alcotest.test_case "falls off end" `Quick test_falls_off_end;
        ] );
      ( "skim",
        [
          Alcotest.test_case "mis-targeted" `Quick test_skim_mistargeted;
          Alcotest.test_case "backward and uncommitted" `Quick
            test_skim_backward_and_uncommitted;
        ] );
      ( "war",
        [
          Alcotest.test_case "hand-written" `Quick test_war_hand_written;
          Alcotest.test_case "skim-protected" `Quick test_war_skim_protected;
          Alcotest.test_case "compiled strict" `Quick test_war_compiled;
        ] );
      ("suite", [ Alcotest.test_case "lints clean" `Quick test_suite_clean ]);
    ]
