(* Tests for wn.analysis: CFG construction, register dataflow, and the
   skim-safety / WAR checkers — including programs seeded with the
   hazards the verifier exists to catch, and a clean sweep over the
   whole benchmark suite. *)

open Wn_isa
open Wn_analysis

let r = Reg.r

(* A small diamond with a loop:

     0: mov   r0, #0
     1: cmp   r0, #10
     2: b.ge  7
     3: mov   r1, r0        ; loop body
     4: alu   r0 <- r0 + r1
     5: cmp   r0, #10
     6: b.lt  3
     7: halt                                                       *)
let diamond =
  [|
    Instr.Mov_imm (r 0, 0);
    Instr.Cmp_imm (r 0, 10);
    Instr.B (Cond.Ge, 7);
    Instr.Mov (r 1, r 0);
    Instr.Alu (Instr.Add, r 0, r 0, r 1);
    Instr.Cmp_imm (r 0, 10);
    Instr.B (Cond.Lt, 3);
    Instr.Halt;
  |]

let test_cfg_blocks () =
  let cfg = Cfg.build diamond in
  Alcotest.(check int) "block count" 3 (Array.length cfg.Cfg.blocks);
  let blk pc = cfg.Cfg.blocks.(cfg.Cfg.block_of.(pc)) in
  Alcotest.(check int) "loop body starts at 3" 3 (blk 4).Cfg.first;
  Alcotest.(check int) "loop body ends at 6" 6 (blk 4).Cfg.last;
  (* the conditional branch block falls through and jumps *)
  let b2 = cfg.Cfg.block_of.(2) in
  Alcotest.(check (list int))
    "succ of header"
    [ cfg.Cfg.block_of.(3); cfg.Cfg.block_of.(7) ]
    (List.sort compare cfg.Cfg.succ.(b2));
  (* the loop body loops back to itself and exits *)
  let b3 = cfg.Cfg.block_of.(3) in
  Alcotest.(check bool) "back edge" true (List.mem b3 cfg.Cfg.succ.(b3))

let test_cfg_dominators () =
  let cfg = Cfg.build diamond in
  Alcotest.(check bool) "entry dominates all" true (Cfg.dominates cfg 0 7);
  Alcotest.(check bool) "straight-line order" true (Cfg.dominates cfg 3 6);
  Alcotest.(check bool) "loop body does not dominate exit" false
    (Cfg.dominates cfg 3 7);
  Alcotest.(check bool) "no reverse domination" false (Cfg.dominates cfg 7 0)

let test_cfg_loops () =
  let cfg = Cfg.build diamond in
  match Cfg.loops cfg with
  | [ (header, members) ] ->
      Alcotest.(check int) "header pc" 3 header;
      Alcotest.(check (list int)) "members" [ 3; 4; 5; 6 ] members;
      Alcotest.(check bool) "in_loop inside" true (Cfg.in_loop cfg 4);
      Alcotest.(check bool) "in_loop outside" false (Cfg.in_loop cfg 0)
  | l -> Alcotest.failf "expected one loop, got %d" (List.length l)

let test_liveness () =
  let cfg = Cfg.build diamond in
  let rf = Regflow.compute cfg in
  (* r0 is live throughout the loop; r1 only between its def and use *)
  Alcotest.(check bool) "r0 live into loop" true
    (List.exists (Reg.equal (r 0)) (Regflow.live_in rf 3));
  Alcotest.(check bool) "r1 dead before its def" false
    (List.exists (Reg.equal (r 1)) (Regflow.live_in rf 3));
  Alcotest.(check bool) "r1 live after its def" true
    (List.exists (Reg.equal (r 1)) (Regflow.live_in rf 4));
  (* flags are live between the cmp and the branch *)
  Alcotest.(check bool) "flags live before branch" true
    (Regflow.flags_live_in rf 2);
  Alcotest.(check bool) "flags dead at entry" false (Regflow.flags_live_in rf 0)

let rules ds = List.map (fun d -> d.Diag.rule) ds
let has_rule rule ds = List.mem rule (rules ds)

let test_uninit_and_dead () =
  (* r1 is read before any write; the first mov to r2 is dead *)
  let prog =
    [|
      Instr.Mov_imm (r 2, 1);
      Instr.Mov (r 0, r 1);
      Instr.Mov_imm (r 2, 2);
      Instr.Alu (Instr.Add, r 0, r 0, r 2);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 };
      Instr.Halt;
    |]
  in
  let ds = Check.program prog in
  Alcotest.(check bool) "uninit read flagged" true (has_rule "uninit-read" ds);
  Alcotest.(check bool) "dead store flagged" true (has_rule "dead-store" ds)

let test_clean_straight_line () =
  let prog =
    [|
      Instr.Mov_imm (r 0, 42);
      Instr.Mov_imm (r 1, 0x100);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Halt;
    |]
  in
  Alcotest.(check (list string)) "no diagnostics" [] (rules (Check.program prog))

let test_falls_off_end () =
  let prog = [| Instr.Mov_imm (r 0, 1) |] in
  Alcotest.(check bool) "falls off end" true
    (has_rule "falls-off-end" (Check.program prog))

(* ---------------- seeded skim hazards ---------------- *)

let syms =
  [ { Addr.sym_name = "x"; sym_addr = 0x100; sym_bytes = 64 } ]

let test_skim_mistargeted () =
  (* The skim target still needs r0: a skim restore scrubs volatile
     state, so latching this target loses the value. *)
  let prog =
    [|
      Instr.Mov_imm (r 0, 42);
      Instr.Mov_imm (r 1, 0x100);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Skm 5;
      Instr.Mov_imm (r 0, 7);
      (* target: r0 live-in here *)
      Instr.Alu (Instr.Add, r 2, r 0, r 0);
      Instr.Mov_imm (r 1, 0x104);
      Instr.Str { width = Instr.Word; rs = r 2; base = r 1; off = 0 };
      Instr.Halt;
    |]
  in
  let ds = Check.program ~symbols:syms prog in
  Alcotest.(check bool) "mis-targeted skim flagged" true
    (has_rule "skim-target-live" ds);
  Alcotest.(check bool) "it is an error" true
    (List.exists
       (fun d -> d.Diag.rule = "skim-target-live" && d.Diag.severity = Diag.Error)
       ds)

let test_skim_backward_and_uncommitted () =
  let prog =
    [|
      Instr.Mov_imm (r 0, 1);
      Instr.Skm 0;
      Instr.Halt;
    |]
  in
  let ds = Check.program prog in
  Alcotest.(check bool) "backward target flagged" true
    (has_rule "skim-backward" ds);
  (* forward skim with no store anywhere before it *)
  let prog2 = [| Instr.Mov_imm (r 0, 1); Instr.Skm 2; Instr.Halt |] in
  Alcotest.(check bool) "uncommitted skim flagged" true
    (has_rule "skim-no-commit" (Check.program prog2))

(* ---------------- seeded WAR hazard ---------------- *)

let test_war_hand_written () =
  (* load x[0]; add; store x[0] with no skim latched: the classic
     non-idempotent read-modify-write. *)
  let prog =
    [|
      Instr.Mov_imm (r 1, 0x100);
      Instr.Ldr { width = Instr.Word; signed = false; rd = r 0; base = r 1; off = 0 };
      Instr.Alu_imm (Instr.Add, r 0, r 0, 1);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Halt;
    |]
  in
  let ds = Check.program ~symbols:syms prog in
  Alcotest.(check bool) "war hazard flagged" true (has_rule "war-hazard" ds);
  Alcotest.(check bool) "war hazard names the symbol" true
    (List.exists (fun d -> d.Diag.symbol = Some "x") ds)

let test_war_skim_protected () =
  (* The same read-modify-write is fine once a skim is latched on every
     path to the load: an outage can no longer re-execute it. *)
  let prog =
    [|
      Instr.Mov_imm (r 1, 0x100);
      Instr.Mov_imm (r 0, 5);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Skm 7;
      Instr.Ldr { width = Instr.Word; signed = false; rd = r 0; base = r 1; off = 0 };
      Instr.Alu_imm (Instr.Add, r 0, r 0, 1);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Halt;
    |]
  in
  let ds = Check.program ~symbols:syms prog in
  Alcotest.(check bool) "no war hazard after skim" false (has_rule "war-hazard" ds)

let war_source =
  "uint32 x[16];\n\n\
   kernel bump() {\n\
  \  for (i = 0; i < 16; i += 1) {\n\
  \    x[i] = x[i] + 1;\n\
  \  }\n\
   }\n"

let test_war_compiled () =
  let compiled = Wn_compiler.Compile.compile_source war_source in
  let ds = Wn_compiler.Compile.lint compiled in
  Alcotest.(check bool) "compiled RMW flagged" true (has_rule "war-hazard" ds);
  Alcotest.(check bool) "strict compile refuses it" true
    (match Wn_compiler.Compile.compile_source ~strict:true war_source with
    | _ -> false
    | exception Wn_compiler.Compile.Error msg ->
        (* strict blames the first pass whose linted output carries the
           hazard — codegen, the pass that emits the RMW sequence *)
        let prefix = "pass codegen" in
        let n = String.length prefix in
        String.length msg >= n && String.sub msg 0 n = prefix)

(* ---------------- diagnostic ordering and dedup ---------------- *)

let test_diag_total_order () =
  let base = Diag.warning ~pc:3 ~rule:"r" "m" in
  let variants =
    [
      Diag.warning ~pc:3 ~rule:"r" "m2";
      Diag.warning ~pc:3 ~rule:"r" ~symbol:"x" "m";
      Diag.warning ~pc:3 ~rule:"r2" "m";
    ]
  in
  List.iter
    (fun d ->
      Alcotest.(check bool) "distinct diagnostics compare unequal" false
        (Diag.compare base d = 0))
    variants;
  Alcotest.(check int) "equal diagnostics compare equal" 0
    (Diag.compare base (Diag.warning ~pc:3 ~rule:"r" "m"));
  (* Sorting is deterministic whatever the input order. *)
  let l1 = List.sort Diag.compare (base :: variants) in
  let l2 = List.sort Diag.compare (List.rev (base :: variants)) in
  Alcotest.(check bool) "sort is order-independent" true (l1 = l2)

let test_diag_report_dedup () =
  let d = Diag.error ~pc:1 ~rule:"war-hazard" ~symbol:"x" "boom" in
  let other = Diag.warning ~pc:2 ~rule:"dead-store" "unused" in
  let report = Format.asprintf "%a" Diag.pp_report [ d; other; d; d ] in
  (* Three copies of [d] must render once; the summary counts the
     deduplicated list. *)
  let count_occurrences needle hay =
    let n = String.length needle in
    let rec go i acc =
      if i + n > String.length hay then acc
      else if String.sub hay i n = needle then go (i + 1) (acc + 1)
      else go (i + 1) acc
    in
    go 0 0
  in
  Alcotest.(check int) "duplicate printed once" 1
    (count_occurrences "boom" report);
  Alcotest.(check bool) "summary counts unique findings" true
    (count_occurrences "2 diagnostics (1 errors, 1 warnings, 0 notes)" report
    = 1)

(* ---------------- worklist solver vs the seed's round-robin ----------------

   The reverse-postorder worklist solver must compute exactly the
   fixpoint the seed's round-robin solver did, on arbitrary CFGs, for
   arbitrary monotone gen/kill specs, forward and backward. *)

let reference_solve nb spec ~edges_in ~base =
  let pre = Array.init nb (fun b -> spec.Dataflow.init b) in
  let post = Array.init nb (fun b -> spec.Dataflow.transfer b pre.(b)) in
  let changed = ref true in
  while !changed do
    changed := false;
    for b = 0 to nb - 1 do
      let incoming =
        List.map (fun p -> post.(p)) (edges_in b)
        @ (if base b then [ spec.Dataflow.init b ] else [])
      in
      match incoming with
      | [] -> ()
      | v :: rest ->
          let joined = List.fold_left spec.Dataflow.join v rest in
          if not (spec.Dataflow.equal joined pre.(b)) then begin
            pre.(b) <- joined;
            post.(b) <- spec.Dataflow.transfer b joined;
            changed := true
          end
    done
  done;
  (pre, post)

let reference_forward (cfg : Cfg.t) spec =
  let nb = Array.length cfg.Cfg.blocks in
  let entry_blocks = List.map (fun e -> cfg.Cfg.block_of.(e)) cfg.Cfg.entries in
  let base b = cfg.Cfg.pred.(b) = [] || List.mem b entry_blocks in
  reference_solve nb spec ~edges_in:(fun b -> cfg.Cfg.pred.(b)) ~base

let reference_backward (cfg : Cfg.t) spec =
  let nb = Array.length cfg.Cfg.blocks in
  let base b = cfg.Cfg.succ.(b) = [] in
  let outs, ins =
    reference_solve nb spec ~edges_in:(fun b -> cfg.Cfg.succ.(b)) ~base
  in
  (ins, outs)

(* Random programs with real control flow: straight-line ops, forward
   and backward conditional branches (loops), calls and skims all arise;
   a Halt at the end keeps every program well-formed. *)
let arbitrary_program =
  let open QCheck.Gen in
  let instr n =
    frequency
      [
        (4, map2 (fun rd v -> Instr.Mov_imm (r rd, v)) (int_bound 3) (int_bound 100));
        (3, map (fun rd -> Instr.Alu_imm (Instr.Add, r rd, r rd, 1)) (int_bound 3));
        (2, map2 (fun rn v -> Instr.Cmp_imm (r rn, v)) (int_bound 3) (int_bound 100));
        ( 3,
          map2
            (fun c t -> Instr.B (c, t))
            (oneofl [ Cond.Eq; Cond.Ne; Cond.Lt; Cond.Ge; Cond.Al ])
            (int_bound (n - 1)) );
        (1, map (fun t -> Instr.Skm t) (int_bound (n - 1)));
        (1, return Instr.Nop);
      ]
  in
  let gen =
    int_range 4 40 >>= fun n ->
    array_size (return (n - 1)) (instr n) >>= fun body ->
    return (Array.append body [| Instr.Halt |])
  in
  QCheck.make gen

(* A deterministic pseudo-random but monotone gen/kill spec over int
   masks (join = lor), distinct per block.  Boundary values are nonzero
   only on [base] blocks: chaotic iteration is order-independent only
   when the starting assignment is below the equations' image, so
   non-base blocks must start at bottom (0 for lor) — otherwise the two
   solvers can legitimately settle on different solutions around cycles
   seeded with arbitrary junk. *)
let mask_spec ~base () =
  let h b k = (b * 2654435761 + k * 40503) land 0xFFFF in
  {
    Dataflow.init = (fun b -> if base b then h b 7 land 0xFF else 0);
    transfer = (fun b v -> v land lnot (h b 1) lor h b 2);
    join = ( lor );
    equal = Int.equal;
  }

let forward_base (cfg : Cfg.t) =
  let entry_blocks = List.map (fun e -> cfg.Cfg.block_of.(e)) cfg.Cfg.entries in
  fun b -> cfg.Cfg.pred.(b) = [] || List.mem b entry_blocks

let backward_base (cfg : Cfg.t) b = cfg.Cfg.succ.(b) = []

let eq_solutions (a_in, a_out) (b_in, b_out) = a_in = b_in && a_out = b_out

let prop_worklist_matches_reference =
  QCheck.Test.make ~count:500 ~name:"worklist solver == seed round-robin"
    arbitrary_program (fun prog ->
      let cfg = Cfg.build prog in
      let fwd = mask_spec ~base:(forward_base cfg) () in
      let bwd = mask_spec ~base:(backward_base cfg) () in
      eq_solutions (Dataflow.forward cfg fwd) (reference_forward cfg fwd)
      && eq_solutions (Dataflow.backward cfg bwd) (reference_backward cfg bwd))

let prop_solution_is_fixpoint =
  QCheck.Test.make ~count:500 ~name:"solution satisfies the dataflow equations"
    arbitrary_program (fun prog ->
      let cfg = Cfg.build prog in
      let spec = mask_spec ~base:(forward_base cfg) () in
      let ins, outs = Dataflow.forward cfg spec in
      let nb = Array.length cfg.Cfg.blocks in
      let entry_blocks =
        List.map (fun e -> cfg.Cfg.block_of.(e)) cfg.Cfg.entries
      in
      let ok = ref true in
      for b = 0 to nb - 1 do
        (* out is always transfer of in *)
        if outs.(b) <> spec.Dataflow.transfer b ins.(b) then ok := false;
        (* in is the join of incoming outs (plus the boundary value) *)
        let base = cfg.Cfg.pred.(b) = [] || List.mem b entry_blocks in
        let incoming =
          List.map (fun p -> outs.(p)) cfg.Cfg.pred.(b)
          @ (if base then [ spec.Dataflow.init b ] else [])
        in
        (match incoming with
        | [] -> ()
        | v :: rest ->
            if List.fold_left spec.Dataflow.join v rest <> ins.(b) then
              ok := false)
      done;
      !ok)

(* Widening delay counts genuine re-visits only — the initial seeding
   pass over every block must not eat into it (regression: it did, so a
   chain stabilising within the documented delay still got widened). *)
let test_widen_delay_counts_revisits () =
  (* block structure: [0] -> [1;2] (self-loop via b.lt) -> [3] *)
  let prog =
    [| Instr.Nop; Instr.Nop; Instr.B (Cond.Lt, 1); Instr.Halt |]
  in
  let cfg = Cfg.build prog in
  let loop_blk = cfg.Cfg.block_of.(1) in
  (* int-option chain domain: the loop's value climbs by 1 per revisit
     and saturates at 2, i.e. it stabilises on exactly the second
     genuine revisit — inside a widen_delay of 2, so classic widening
     (old on no-growth, sentinel on growth) must never fire. *)
  let spec =
    {
      Dataflow.init = (fun b -> if b = cfg.Cfg.block_of.(0) then Some 0 else None);
      transfer =
        (fun b v ->
          match v with
          | Some x when b = loop_blk -> Some (min (x + 1) 2)
          | _ -> v);
      join =
        (fun a b ->
          match (a, b) with
          | None, x | x, None -> x
          | Some a, Some b -> Some (max a b));
      equal = ( = );
    }
  in
  let widen old next =
    match (old, next) with
    | Some o, Some n when n > o -> Some 999
    | _ -> old
  in
  let ins, _ = Dataflow.forward ~widen ~widen_delay:2 cfg spec in
  Alcotest.(check (option int))
    "value stabilising within the delay is not widened" (Some 2)
    ins.(loop_blk)

(* ---------------- interval domain ---------------- *)

(* 0: mov r0, #0        a counted loop with an invariant register and
   1: mov r1, #5        a data register the analysis can track:
   2: cmp r0, #10       header/check block
   3: b.ge 7
   4: alu r2 <- r0 + r1 loop body
   5: alu r0 <- r0 + 1
   6: b 2
   7: halt *)
let counted_loop =
  [|
    Instr.Mov_imm (r 0, 0);
    Instr.Mov_imm (r 1, 5);
    Instr.Cmp_imm (r 0, 10);
    Instr.B (Cond.Ge, 7);
    Instr.Alu (Instr.Add, r 2, r 0, r 1);
    Instr.Alu_imm (Instr.Add, r 0, r 0, 1);
    Instr.B (Cond.Al, 2);
    Instr.Halt;
  |]

let test_interval_basics () =
  Alcotest.(check bool) "const is itself" true
    (Interval.itv_equal (Interval.const 7) { Interval.lo = 7; hi = 7 });
  Alcotest.(check bool) "join spans" true
    (Interval.itv_equal
       (Interval.join_itv (Interval.const 2) (Interval.const 9))
       { Interval.lo = 2; hi = 9 });
  (* widening jumps a moving bound to the domain edge and is stable on
     a settled one *)
  let w =
    Interval.widen_itv { Interval.lo = 0; hi = 10 } { Interval.lo = 0; hi = 11 }
  in
  Alcotest.(check bool) "widen blows the moving hi" true
    (w.Interval.hi = 0xFFFF_FFFF && w.Interval.lo = 0);
  Alcotest.(check bool) "widen keeps the stable bound" true
    (Interval.itv_equal
       (Interval.widen_itv { Interval.lo = 3; hi = 9 } { Interval.lo = 3; hi = 9 })
       { Interval.lo = 3; hi = 9 })

let test_interval_analysis () =
  let cfg = Cfg.build counted_loop in
  let t = Interval.analyze cfg in
  (* the loop-invariant register stays a constant through the loop *)
  Alcotest.(check (option int)) "r1 constant in body" (Some 5)
    (Interval.is_const (Interval.reg_at t 4 (r 1)));
  (* the counter keeps its zero lower bound (restores re-enter at 0) *)
  Alcotest.(check int) "counter lower bound" 0
    (Interval.reg_at t 4 (r 0)).Interval.lo;
  (* out-state of the entry block feeds the loop header the exact init *)
  Alcotest.(check (option int)) "preheader out-state"
    (Some 0)
    (Interval.is_const
       (Interval.reg_out_of_block t cfg.Cfg.block_of.(0) (r 0)))

let test_interval_overflow_to_top () =
  (* Products and shifts whose native-int result exceeds 2^62 must go
     to top, not wrap negative past the range check (regression: the
     broken intervals then passed trip-bound guards and produced
     unsound WCEC bounds). *)
  let ldr rd =
    Instr.Ldr { width = Instr.Word; signed = false; rd; base = r 12; off = 0 }
  in
  let prog =
    [|
      ldr (r 0);
      ldr (r 1);
      Instr.Mul (r 2, r 0, r 1);
      Instr.Shift (Instr.Lsl, r 3, r 0, 31);
      Instr.Mov_imm (r 4, 3);
      Instr.Shift (Instr.Lsl, r 5, r 4, 4);
      Instr.Halt;
    |]
  in
  let t = Interval.analyze (Cfg.build prog) in
  let check_valid name v =
    Alcotest.(check bool) (name ^ ": 0 <= lo <= hi <= u32_max") true
      (0 <= v.Interval.lo && v.Interval.lo <= v.Interval.hi
     && v.Interval.hi <= Interval.u32_max)
  in
  let at pc reg = Interval.reg_at t pc reg in
  Alcotest.(check bool) "top * top = top" true (Interval.is_top (at 3 (r 2)));
  check_valid "top * top" (at 3 (r 2));
  Alcotest.(check bool) "top lsl 31 = top" true (Interval.is_top (at 4 (r 3)));
  check_valid "top lsl 31" (at 4 (r 3));
  (* small shifts stay exact — the overflow guard must not over-approximate *)
  Alcotest.(check (option int)) "3 lsl 4 stays const" (Some 48)
    (Interval.is_const (at 6 (r 5)))

(* ---------------- trip counts and WCEC ---------------- *)

let trips_of prog =
  let report = Progress.analyze ~runtime:(Progress.skim_only ()) (Cfg.build prog) in
  List.map (fun (_, t) -> t) report.Progress.rp_trip_bounds

let test_trip_up_counting () =
  Alcotest.(check (list (option int))) "i = 0; i < 10; i += 1" [ Some 10 ]
    (trips_of counted_loop)

let test_trip_down_counting () =
  let prog =
    [|
      Instr.Mov_imm (r 0, 8);
      Instr.Cmp_imm (r 0, 0);
      Instr.B (Cond.Le, 6);
      Instr.Nop;
      Instr.Alu_imm (Instr.Sub, r 0, r 0, 2);
      Instr.B (Cond.Al, 1);
      Instr.Halt;
    |]
  in
  Alcotest.(check (list (option int))) "i = 8; i > 0; i -= 2" [ Some 4 ]
    (trips_of prog)

let test_trip_ne_loop () =
  let prog =
    [|
      Instr.Mov_imm (r 0, 0);
      Instr.Cmp_imm (r 0, 6);
      Instr.B (Cond.Eq, 5);
      Instr.Alu_imm (Instr.Add, r 0, r 0, 2);
      Instr.B (Cond.Al, 1);
      Instr.Halt;
    |]
  in
  Alcotest.(check (list (option int))) "i = 0; i != 6; i += 2" [ Some 3 ]
    (trips_of prog)

let lo_loop ~limit ~step =
  [|
    Instr.Mov_imm (r 0, 0);
    Instr.Cmp_imm (r 0, limit);
    Instr.B (Cond.Hs, 5);
    Instr.Alu_imm (Instr.Add, r 0, r 0, step);
    Instr.B (Cond.Al, 1);
    Instr.Halt;
  |]

let test_trip_lo_wraparound () =
  (* with step 3 and limit u32_max the counter can jump from
     0xFFFF_FFFE past the limit, wrap, and never satisfy the unsigned
     exit — no finite bound exists (regression: the Lo case returned
     one anyway) *)
  Alcotest.(check (list (option int)))
    "i = 0; i <u 0xFFFF_FFFF; i += 3 may never exit" [ None ]
    (trips_of (lo_loop ~limit:0xFFFF_FFFF ~step:3));
  (* step 1 cannot skip the limit, so the guard must still admit it *)
  Alcotest.(check (list (option int)))
    "i = 0; i <u 0xFFFF_FFFF; i += 1 is bounded" [ Some 0xFFFF_FFFF ]
    (trips_of (lo_loop ~limit:0xFFFF_FFFF ~step:1));
  (* and small limits keep their exact bound whatever the step *)
  Alcotest.(check (list (option int)))
    "i = 0; i <u 10; i += 3" [ Some 4 ]
    (trips_of (lo_loop ~limit:10 ~step:3))

let test_trip_register_step_unbounded () =
  (* the diamond's counter advances by a register amount: no bound *)
  Alcotest.(check (list (option int))) "register-step loop" [ None ]
    (trips_of diamond)

let test_wcec_exact () =
  (* counted_loop by hand: non-loop pcs 0,1 cost 2 and pc 7 costs 1;
     loop pcs {2..6} cost 3 (cmp+b.ge) + 4 (alu+alu+b) per iteration,
     ×11 (10 trips + the final check) = 77; total 80. *)
  let report =
    Progress.analyze ~runtime:(Progress.skim_only ()) (Cfg.build counted_loop)
  in
  (match report.Progress.rp_total with
  | Progress.Finite c -> Alcotest.(check int) "whole-program WCEC" 80 c
  | Progress.Unbounded _ -> Alcotest.fail "expected a finite bound");
  match report.Progress.rp_regions with
  | [ rg ] -> (
      Alcotest.(check int) "one region spans the program" 8 rg.Progress.rg_size;
      match rg.Progress.rg_capped with
      | Progress.Finite c ->
          (* skim-only per-charge bound = restore (40) + raw *)
          Alcotest.(check int) "per-charge adds the restore" 120 c
      | Progress.Unbounded _ -> Alcotest.fail "expected a finite region")
  | l -> Alcotest.failf "expected one region, got %d" (List.length l)

let test_region_partitioning () =
  (* a skim target splits the program into two regions *)
  let prog =
    [|
      Instr.Mov_imm (r 1, 0x100);
      Instr.Mov_imm (r 0, 5);
      Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 0 };
      Instr.Skm 6;
      Instr.Nop;
      Instr.Nop;
      Instr.Halt;
    |]
  in
  let report =
    Progress.analyze ~runtime:(Progress.skim_only ()) (Cfg.build prog)
  in
  match report.Progress.rp_regions with
  | [ a; b ] ->
      Alcotest.(check int) "task entry" 0 a.Progress.rg_entry;
      Alcotest.(check int) "entry region stops at the target" 5
        a.Progress.rg_last;
      Alcotest.(check int) "skim region starts at the target" 6
        b.Progress.rg_entry;
      Alcotest.(check bool) "kinds" true
        (a.Progress.rg_kind = Progress.Task_entry
        && b.Progress.rg_kind = Progress.Skim_target)
  | l -> Alcotest.failf "expected two regions, got %d" (List.length l)

let test_progress_diagnostics () =
  (* unbounded loop: a warning naming the binding loop *)
  let ds = Progress.check ~runtime:(Progress.skim_only ()) (Cfg.build diamond) in
  Alcotest.(check bool) "unbounded warned" true
    (List.exists
       (fun d ->
         d.Diag.rule = "progress-unbounded" && d.Diag.severity = Diag.Warning)
       ds);
  (* bounded loop but starved budget: an error *)
  let ds =
    Progress.check ~runtime:(Progress.skim_only ()) ~budget:100e-9
      (Cfg.build counted_loop)
  in
  Alcotest.(check bool) "over budget errored" true
    (List.exists
       (fun d ->
         d.Diag.rule = "progress-budget" && d.Diag.severity = Diag.Error)
       ds);
  (* the same program fits the default capacitor: clean *)
  Alcotest.(check (list string)) "default budget clean" []
    (rules (Progress.check ~runtime:(Progress.skim_only ()) (Cfg.build counted_loop)))

(* ---------------- the suite itself must verify clean ---------------- *)

let test_suite_clean () =
  List.iter
    (fun (w : Wn_workloads.Workload.t) ->
      List.iter
        (fun bits ->
          List.iter
            (fun (label, options) ->
              let source =
                w.Wn_workloads.Workload.source
                  { Wn_workloads.Workload.bits; provisioned = true }
              in
              match
                Wn_compiler.Compile.compile_source ~options ~strict:true source
              with
              | compiled ->
                  let ds = Wn_compiler.Compile.lint compiled in
                  Alcotest.(check (list string))
                    (Printf.sprintf "%s %s %d-bit"
                       w.Wn_workloads.Workload.name label bits)
                    [] (rules ds)
              | exception Wn_compiler.Compile.Error msg
                when label = "anytime+vl"
                     && String.length msg >= 19
                     && String.sub msg 0 19 = "pass lower-anytime:" ->
                  (* vector_loads only applies when the asp arrays also
                     carry asv pragmas; skip benchmarks without them *)
                  ())
            [
              ("precise", Wn_compiler.Compile.precise);
              ("anytime", Wn_compiler.Compile.anytime);
              ("anytime+vl", Wn_compiler.Compile.anytime_vector_loads);
            ])
        [ 4; 8; 16 ])
    (Wn_workloads.Suite.extended Wn_workloads.Workload.Small)

(* ---------------- block fusion vs the WCEC model ----------------

   The block engine's entry guard charges a fused run its precomputed
   worst-case cycle total; forward-progress soundness rests on that
   total being exactly the WCEC model's price for the same pc range.
   Fusible instructions all have statically fixed latency (a multiply
   is only fusible when it cannot be memoized or zero-skipped), so this
   is an equality, not a bound. *)

let check_fusion_against_wcec name program =
  let cfg = Cfg.build program in
  List.iter
    (fun memoizable ->
      let plan = Fuse.plan ~memoizable program in
      List.iter
        (fun (r : Fuse.run) ->
          let first = r.Fuse.r_first in
          let last = first + r.Fuse.r_len - 1 in
          if r.Fuse.r_len < Fuse.min_run_len then
            Alcotest.failf "%s: run at %d shorter than min_run_len" name first;
          let wcec = ref 0 in
          for pc = first to last do
            if not (Fuse.fusible ~memoizable program.(pc)) then
              Alcotest.failf "%s: non-fusible instruction inside run at %d"
                name pc;
            wcec := !wcec + Energy.worst_cycles program.(pc)
          done;
          if !wcec <> r.Fuse.r_cycles then
            Alcotest.failf "%s: run at %d prices %d cycles, WCEC model says %d"
              name first r.Fuse.r_cycles !wcec;
          (* A run never crosses a basic-block boundary: same CFG block
             throughout, and no jump target strictly inside it. *)
          let blk = cfg.Cfg.block_of.(first) in
          for pc = first + 1 to last do
            if cfg.Cfg.block_of.(pc) <> blk then
              Alcotest.failf "%s: run at %d spans CFG blocks" name first;
            if (cfg.Cfg.blocks.(cfg.Cfg.block_of.(pc))).Cfg.first = pc then
              Alcotest.failf "%s: jump target inside run at %d" name first
          done)
        plan)
    [ false; true ]

let test_fuse_wcec_suite () =
  List.iter
    (fun (w : Wn_workloads.Workload.t) ->
      List.iter
        (fun (label, options) ->
          let source =
            w.Wn_workloads.Workload.source
              { Wn_workloads.Workload.bits = 8; provisioned = true }
          in
          let compiled = Wn_compiler.Compile.compile_source ~options source in
          check_fusion_against_wcec
            (Printf.sprintf "%s %s" w.Wn_workloads.Workload.name label)
            compiled.Wn_compiler.Compile.program)
        [
          ("anytime", Wn_compiler.Compile.anytime);
          ("precise", Wn_compiler.Compile.precise);
        ])
    (Wn_workloads.Suite.all Wn_workloads.Workload.Small)

let prop_fuse_wcec_random =
  QCheck.Test.make ~count:200 ~name:"fused runs price exactly their WCEC"
    Gen_wnc.arbitrary (fun spec ->
      let compiled =
        Wn_compiler.Compile.compile ~options:Wn_compiler.Compile.precise
          spec.Gen_wnc.program
      in
      check_fusion_against_wcec "random" compiled.Wn_compiler.Compile.program;
      true)

let () =
  Alcotest.run "wn.analysis"
    [
      ( "cfg",
        [
          Alcotest.test_case "blocks" `Quick test_cfg_blocks;
          Alcotest.test_case "dominators" `Quick test_cfg_dominators;
          Alcotest.test_case "loops" `Quick test_cfg_loops;
        ] );
      ( "regflow",
        [
          Alcotest.test_case "liveness" `Quick test_liveness;
          Alcotest.test_case "uninit and dead" `Quick test_uninit_and_dead;
          Alcotest.test_case "clean program" `Quick test_clean_straight_line;
          Alcotest.test_case "falls off end" `Quick test_falls_off_end;
        ] );
      ( "skim",
        [
          Alcotest.test_case "mis-targeted" `Quick test_skim_mistargeted;
          Alcotest.test_case "backward and uncommitted" `Quick
            test_skim_backward_and_uncommitted;
        ] );
      ( "war",
        [
          Alcotest.test_case "hand-written" `Quick test_war_hand_written;
          Alcotest.test_case "skim-protected" `Quick test_war_skim_protected;
          Alcotest.test_case "compiled strict" `Quick test_war_compiled;
        ] );
      ( "diag",
        [
          Alcotest.test_case "total order" `Quick test_diag_total_order;
          Alcotest.test_case "report dedup" `Quick test_diag_report_dedup;
        ] );
      ( "dataflow",
        Alcotest.test_case "widen delay counts revisits" `Quick
          test_widen_delay_counts_revisits
        :: List.map QCheck_alcotest.to_alcotest
             [ prop_worklist_matches_reference; prop_solution_is_fixpoint ] );
      ( "interval",
        [
          Alcotest.test_case "domain ops" `Quick test_interval_basics;
          Alcotest.test_case "loop analysis" `Quick test_interval_analysis;
          Alcotest.test_case "overflow goes to top" `Quick
            test_interval_overflow_to_top;
        ] );
      ( "progress",
        [
          Alcotest.test_case "up-counting trips" `Quick test_trip_up_counting;
          Alcotest.test_case "down-counting trips" `Quick
            test_trip_down_counting;
          Alcotest.test_case "ne-loop trips" `Quick test_trip_ne_loop;
          Alcotest.test_case "lo wraparound guard" `Quick
            test_trip_lo_wraparound;
          Alcotest.test_case "register step unbounded" `Quick
            test_trip_register_step_unbounded;
          Alcotest.test_case "exact WCEC" `Quick test_wcec_exact;
          Alcotest.test_case "region partitioning" `Quick
            test_region_partitioning;
          Alcotest.test_case "diagnostics" `Quick test_progress_diagnostics;
        ] );
      ("suite", [ Alcotest.test_case "lints clean" `Quick test_suite_clean ]);
      ( "fuse",
        Alcotest.test_case "suite WCEC equality" `Quick test_fuse_wcec_suite
        :: List.map QCheck_alcotest.to_alcotest [ prop_fuse_wcec_random ] );
    ]
