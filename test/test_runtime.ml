(* Tests for wn.runtime: the intermittent executors (always-on, NVP,
   Clank) and skim-point semantics. *)

open Wn_isa
open Wn_machine
open Wn_power
module Executor = Wn_runtime.Executor

let r = Reg.r

(* A counted-loop program: r0 := iterations of useful work; stores its
   progress to NVM at address 0 each iteration.  [muls] inserts a
   16-cycle multiply per iteration to burn energy. *)
let loop_program ?(iters = 200) ?(muls = 1) () =
  let body =
    List.concat
      (List.init muls (fun _ -> [ Asm.I (Instr.Mul (r 3, r 1, r 1)) ]))
  in
  Asm.assemble_exn
    ([
       Asm.I (Instr.Mov_imm (r 0, 0));
       Asm.I (Instr.Mov_imm (r 1, 25));
       Asm.I (Instr.Mov_imm (r 2, 0));
       Asm.Label "loop";
     ]
    @ body
    @ [
        Asm.I (Instr.Alu_imm (Instr.Add, r 0, r 0, 1));
        Asm.I (Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 });
        Asm.I (Instr.Cmp_imm (r 0, iters));
        Asm.I (Instr.B (Cond.Lt, "loop"));
        Asm.I Instr.Halt;
      ])

let fresh ?(program = loop_program ()) () =
  let mem = Wn_mem.Memory.create ~size:256 in
  (Machine.create ~program ~mem (), mem)

let bursty_supply () =
  (* Bursts long enough to recharge, short enough to interrupt the
     ~5k-cycle loop program several times. *)
  let trace = Trace.square ~on_ms:6 ~off_ms:10 ~power:2.5e-3 ~duration_s:2.0 in
  let cap = Capacitor.create ~capacitance:1e-6 () in
  Supply.create ~trace ~capacitor:cap ()

let test_always_on_completes () =
  let machine, mem = fresh () in
  let o = Executor.run ~machine ~supply:(Supply.always_on ()) () in
  Alcotest.(check bool) "completed" true o.Executor.completed;
  Alcotest.(check bool) "no skim" false o.Executor.skimmed;
  Alcotest.(check int) "no outage" 0 o.Executor.outage_count;
  Alcotest.(check int) "result" 200 (Wn_mem.Memory.read32 mem 0);
  Alcotest.(check int) "wall = active when always on" o.Executor.active_cycles
    o.Executor.wall_cycles

let test_nvp_survives_outages () =
  let machine, mem = fresh ~program:(loop_program ~iters:2000 ~muls:4 ()) () in
  let supply = bursty_supply () in
  let o =
    Executor.run ~policy:(Executor.Nvp Executor.default_nvp) ~machine ~supply ()
  in
  Alcotest.(check bool) "completed" true o.Executor.completed;
  if o.Executor.outage_count = 0 then Alcotest.fail "expected outages";
  Alcotest.(check int) "exact result despite outages" 2000
    (Wn_mem.Memory.read32 mem 0);
  Alcotest.(check int) "NVP never re-executes" 0
    o.Executor.reexecuted_instructions;
  if o.Executor.wall_cycles <= o.Executor.active_cycles then
    Alcotest.fail "wall clock must include off time"

let test_clank_restores_and_reexecutes () =
  let machine, mem = fresh ~program:(loop_program ~iters:2000 ~muls:4 ()) () in
  let supply = bursty_supply () in
  let cfg = { Executor.default_clank with watchdog_period = 1000 } in
  let o = Executor.run ~policy:(Executor.Clank cfg) ~machine ~supply () in
  Alcotest.(check bool) "completed" true o.Executor.completed;
  if o.Executor.outage_count = 0 then Alcotest.fail "expected outages";
  if o.Executor.checkpoint_count = 0 then Alcotest.fail "expected checkpoints";
  if o.Executor.reexecuted_instructions = 0 then
    Alcotest.fail "volatile restore must re-execute work";
  (* Idempotency machinery must still deliver the exact result. *)
  Alcotest.(check int) "exact result" 2000 (Wn_mem.Memory.read32 mem 0)

let test_clank_watchdog () =
  (* Under continuous power the only checkpoint trigger left is the
     watchdog. *)
  let machine, _ = fresh ~program:(loop_program ~iters:2000 ~muls:4 ()) () in
  let cfg =
    { Executor.default_clank with watchdog_period = 1000; buffer_entries = 1 lsl 20 }
  in
  let o =
    Executor.run ~policy:(Executor.Clank cfg) ~machine
      ~supply:(Supply.always_on ()) ()
  in
  if o.Executor.checkpoint_count < o.Executor.active_cycles / 2000 then
    Alcotest.failf "watchdog fired only %d times in %d cycles"
      o.Executor.checkpoint_count o.Executor.active_cycles

let test_clank_war_checkpoint () =
  (* A read-then-write of the same word forces a checkpoint before the
     write (idempotency violation). *)
  let program =
    Asm.assemble_exn
      [
        Asm.I (Instr.Mov_imm (r 1, 0));
        Asm.I (Instr.Ldr { width = Instr.Word; signed = false; rd = r 2; base = r 1; off = 0 });
        Asm.I (Instr.Alu_imm (Instr.Add, r 2, r 2, 1));
        Asm.I (Instr.Str { width = Instr.Word; rs = r 2; base = r 1; off = 0 });
        Asm.I Instr.Halt;
      ]
  in
  let machine, _ = fresh ~program () in
  let o =
    Executor.run
      ~policy:(Executor.Clank Executor.default_clank)
      ~machine ~supply:(Supply.always_on ()) ()
  in
  Alcotest.(check int) "exactly one violation checkpoint" 1
    o.Executor.checkpoint_count

let test_clank_war_epochs () =
  (* Alternating read-modify-writes of two words: each iteration reads
     a word whose tracking was cleared by the previous iteration's
     checkpoint, so every iteration is a fresh WAR violation — one
     checkpoint per iteration, across as many shadow epochs.  A stale
     epoch leaking old read/write bits into a new epoch would change
     this count (old write bits suppress read tracking; old read bits
     fire spurious checkpoints). *)
  let n = 8 in
  let rmw i =
    let off = if i land 1 = 0 then 0 else 4 in
    [
      Asm.I (Instr.Ldr { width = Instr.Word; signed = false; rd = r 2; base = r 1; off });
      Asm.I (Instr.Alu_imm (Instr.Add, r 2, r 2, 1));
      Asm.I (Instr.Str { width = Instr.Word; rs = r 2; base = r 1; off });
    ]
  in
  let program =
    Asm.assemble_exn
      ([ Asm.I (Instr.Mov_imm (r 1, 0)) ]
      @ List.concat (List.init n rmw)
      @ [ Asm.I Instr.Halt ])
  in
  let run engine =
    let machine, mem = fresh ~program () in
    let o =
      Executor.run ~engine
        ~policy:(Executor.Clank Executor.default_clank)
        ~machine ~supply:(Supply.always_on ()) ()
    in
    (o, Wn_mem.Memory.read32 mem 0, Wn_mem.Memory.read32 mem 4)
  in
  List.iter
    (fun engine ->
      let o, at0, at4 = run engine in
      Alcotest.(check bool) "completed" true o.Executor.completed;
      Alcotest.(check int) "one checkpoint per epoch" n
        o.Executor.checkpoint_count;
      Alcotest.(check int) "word 0" (n / 2) at0;
      Alcotest.(check int) "word 4" (n / 2) at4)
    [ Executor.Fast; Executor.Block; Executor.Compat ]

let test_clank_engines_lockstep () =
  (* The loop program under a bursty supply: outage rollbacks, watchdog
     checkpoints and shadow epochs must agree across all three stepping
     engines. *)
  let program = loop_program ~iters:2000 ~muls:4 () in
  let run engine =
    let machine, mem = fresh ~program () in
    let cfg = { Executor.default_clank with watchdog_period = 1000 } in
    let o = Executor.run ~engine ~policy:(Executor.Clank cfg) ~machine ~supply:(bursty_supply ()) () in
    ( o.Executor.completed,
      o.Executor.checkpoint_count,
      o.Executor.reexecuted_instructions,
      o.Executor.outage_count,
      Wn_mem.Memory.read32 mem 0 )
  in
  let reference = run Executor.Fast in
  List.iter
    (fun engine ->
      if run engine <> reference then
        Alcotest.fail "engines disagree under Clank with outages")
    [ Executor.Block; Executor.Compat ]

(* A skim-able program: sets r0=1 (coarse result), stores it, latches a
   skim point, then does a long refinement phase before storing 2. *)
let skim_program refinement_iters =
  Asm.assemble_exn
    ([
       Asm.I (Instr.Mov_imm (r 2, 0));
       Asm.I (Instr.Mov_imm (r 0, 1));
       Asm.I (Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 });
       Asm.I (Instr.Skm "end");
       Asm.I (Instr.Mov_imm (r 1, 0));
       Asm.Label "refine";
     ]
    @ [
        Asm.I (Instr.Mul (r 3, r 1, r 1));
        Asm.I (Instr.Alu_imm (Instr.Add, r 1, r 1, 1));
        Asm.I (Instr.Cmp_imm (r 1, refinement_iters));
        Asm.I (Instr.B (Cond.Lt, "refine"));
        Asm.I (Instr.Mov_imm (r 0, 2));
        Asm.I (Instr.Str { width = Instr.Word; rs = r 0; base = r 2; off = 0 });
        Asm.Label "end";
        Asm.I Instr.Halt;
      ])

let test_skim_on_outage_nvp () =
  let machine, mem = fresh ~program:(skim_program 100_000) () in
  let supply = bursty_supply () in
  let o =
    Executor.run ~policy:(Executor.Nvp Executor.default_nvp) ~machine ~supply ()
  in
  Alcotest.(check bool) "completed" true o.Executor.completed;
  Alcotest.(check bool) "finished via skim" true o.Executor.skimmed;
  Alcotest.(check int) "approximate result committed" 1
    (Wn_mem.Memory.read32 mem 0)

let test_skim_on_outage_clank () =
  let machine, mem = fresh ~program:(skim_program 100_000) () in
  let supply = bursty_supply () in
  let o =
    Executor.run
      ~policy:(Executor.Clank Executor.default_clank)
      ~machine ~supply ()
  in
  Alcotest.(check bool) "completed" true o.Executor.completed;
  Alcotest.(check bool) "finished via skim" true o.Executor.skimmed;
  Alcotest.(check int) "approximate result committed" 1
    (Wn_mem.Memory.read32 mem 0)

let test_no_skim_runs_to_precise () =
  let machine, mem = fresh ~program:(skim_program 500) () in
  let o = Executor.run ~machine ~supply:(Supply.always_on ()) () in
  Alcotest.(check bool) "completed" true o.Executor.completed;
  Alcotest.(check bool) "no outage, no skim" false o.Executor.skimmed;
  Alcotest.(check int) "precise result" 2 (Wn_mem.Memory.read32 mem 0)

let test_halt_at_skim () =
  let machine, mem = fresh ~program:(skim_program 500) () in
  let o =
    Executor.run ~halt_at_skim:true ~machine ~supply:(Supply.always_on ()) ()
  in
  Alcotest.(check bool) "completed" true o.Executor.completed;
  Alcotest.(check bool) "skimmed immediately" true o.Executor.skimmed;
  Alcotest.(check int) "earliest output" 1 (Wn_mem.Memory.read32 mem 0);
  match o.Executor.first_skim_active with
  | Some c when c > 0 && c < 50 -> ()
  | Some c -> Alcotest.failf "implausible first-skim time %d" c
  | None -> Alcotest.fail "first skim not recorded"

let test_max_wall_guard () =
  let machine, _ = fresh ~program:(loop_program ~iters:1_000_00 ~muls:8 ()) () in
  let o =
    Executor.run ~max_wall_cycles:1000 ~machine ~supply:(Supply.always_on ()) ()
  in
  Alcotest.(check bool) "gave up" false o.Executor.completed

let test_snapshots_fire () =
  let machine, _ = fresh ~program:(loop_program ~iters:500 ()) () in
  let count = ref 0 in
  let o =
    Executor.run ~snapshot_every:500
      ~snapshot:(fun ~active_cycles:_ ~wall_cycles:_ -> incr count)
      ~machine ~supply:(Supply.always_on ()) ()
  in
  let expected = o.Executor.active_cycles / 500 in
  if !count < expected - 1 || !count > expected + 2 then
    Alcotest.failf "snapshot count %d for %d cycles" !count o.Executor.active_cycles

let () =
  Alcotest.run "wn.runtime"
    [
      ( "always-on",
        [
          Alcotest.test_case "completes" `Quick test_always_on_completes;
          Alcotest.test_case "runs to precise without outage" `Quick
            test_no_skim_runs_to_precise;
          Alcotest.test_case "max wall guard" `Quick test_max_wall_guard;
          Alcotest.test_case "snapshots" `Quick test_snapshots_fire;
        ] );
      ( "nvp",
        [
          Alcotest.test_case "survives outages" `Quick test_nvp_survives_outages;
          Alcotest.test_case "skim on outage" `Quick test_skim_on_outage_nvp;
        ] );
      ( "clank",
        [
          Alcotest.test_case "restore and re-execute" `Quick
            test_clank_restores_and_reexecutes;
          Alcotest.test_case "watchdog" `Quick test_clank_watchdog;
          Alcotest.test_case "WAR checkpoint" `Quick test_clank_war_checkpoint;
          Alcotest.test_case "WAR across epochs" `Quick test_clank_war_epochs;
          Alcotest.test_case "engines lockstep" `Quick test_clank_engines_lockstep;
          Alcotest.test_case "skim on outage" `Quick test_skim_on_outage_clank;
        ] );
      ( "skim",
        [ Alcotest.test_case "halt at skim" `Quick test_halt_at_skim ] );
    ]
