(* Tests for wn.fleet: the deterministic quantile sketch (exactness
   below capacity, per-instance rank-error bound, merge laws), the
   streaming moments, and jobs-independence of the fleet service. *)

open Wn_fleet
module Stats = Wn_util.Stats

let check_float = Alcotest.(check (float 1e-9))

(* ---------------- sketch: exact below capacity ---------------- *)

let test_sketch_exact_below_capacity () =
  let t = Sketch.create ~capacity:128 () in
  (* 101 values in reverse order: still exact, no compaction yet. *)
  for i = 100 downto 0 do
    Sketch.insert t (float_of_int i)
  done;
  Alcotest.(check int) "count" 101 (Sketch.count t);
  Alcotest.(check int) "no error below capacity" 0 (Sketch.rank_error_bound t);
  List.iter
    (fun p -> check_float (Printf.sprintf "p%.0f exact" p) p (Sketch.quantile t p))
    [ 0.0; 25.0; 50.0; 90.0; 100.0 ];
  Alcotest.(check int) "rank exact" 42 (Sketch.rank t 42.0);
  let weights = List.map snd (Sketch.dump t) in
  Alcotest.(check int) "weights sum to count" 101
    (List.fold_left ( + ) 0 weights)

let test_sketch_validation () =
  (match Sketch.create ~capacity:4 () with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity 4 accepted");
  let t = Sketch.create ~capacity:16 () in
  (match Sketch.quantile t 50.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "quantile of empty sketch accepted");
  Sketch.insert t 1.0;
  (match Sketch.quantile t 101.0 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "p101 accepted");
  match Sketch.merge t (Sketch.create ~capacity:32 ()) with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "capacity mismatch merge accepted"

(* ---------------- sketch: property tests ---------------- *)

let stream_gen =
  QCheck.(array_of_size Gen.(int_range 1 3000) (float_range (-1000.) 1000.))

let exact_rank xs x = Array.fold_left (fun r v -> if v < x then r + 1 else r) 0 xs

(* The sketch's own promise: estimated rank within the per-instance
   accounted bound of the true rank, for every probe point. *)
let prop_rank_error_bound =
  QCheck.Test.make ~count:60 ~name:"sketch rank within accounted bound"
    stream_gen (fun xs ->
      let t = Sketch.create ~capacity:16 () in
      Array.iter (Sketch.insert t) xs;
      let err = Sketch.rank_error_bound t in
      Array.for_all
        (fun x -> abs (Sketch.rank t x - exact_rank xs x) <= err)
        xs)

(* Quantile estimates stay close to exact Stats.percentile in rank
   space: the returned value's true rank is within the accounted bound
   plus one retained item's weight of the target rank. *)
let prop_quantile_vs_exact =
  QCheck.Test.make ~count:60 ~name:"sketch quantile near exact percentile"
    stream_gen (fun xs ->
      let t = Sketch.create ~capacity:16 () in
      Array.iter (Sketch.insert t) xs;
      let n = Array.length xs in
      let max_weight =
        List.fold_left (fun m (_, w) -> max m w) 1 (Sketch.dump t)
      in
      let slack = Sketch.rank_error_bound t + max_weight in
      List.for_all
        (fun p ->
          let v = Sketch.quantile t p in
          let target = p /. 100.0 *. float_of_int (n - 1) in
          abs_float (float_of_int (exact_rank xs v) -. target)
          <= float_of_int slack +. 1.0)
        [ 0.0; 10.0; 50.0; 90.0; 99.0; 100.0 ])

let split_gen =
  QCheck.(
    pair stream_gen (pair (int_range 0 1000) (int_range 0 1000)))

(* Merge is exactly commutative: the observable state (canonical dump)
   is a function of the per-level multisets, not of argument order. *)
let prop_merge_commutative =
  QCheck.Test.make ~count:60 ~name:"sketch merge commutes" split_gen
    (fun (xs, (k, _)) ->
      let n = Array.length xs in
      let k = k mod (n + 1) in
      let a = Sketch.create ~capacity:16 () and b = Sketch.create ~capacity:16 () in
      Array.iteri (fun i x -> Sketch.insert (if i < k then a else b) x) xs;
      Sketch.dump (Sketch.merge a b) = Sketch.dump (Sketch.merge b a))

(* Associativity holds at the guarantee level, not byte-for-byte:
   either grouping's ranks respect its own accounted bound. *)
let prop_merge_associative_bound =
  QCheck.Test.make ~count:60 ~name:"sketch merge groupings stay bounded"
    split_gen (fun (xs, (k1, k2)) ->
      let n = Array.length xs in
      let k1 = k1 mod (n + 1) in
      let k2 = k1 + (k2 mod (n - k1 + 1)) in
      let mk lo hi =
        let t = Sketch.create ~capacity:16 () in
        for i = lo to hi - 1 do
          Sketch.insert t xs.(i)
        done;
        t
      in
      let a = mk 0 k1 and b = mk k1 k2 and c = mk k2 n in
      let left = Sketch.merge (Sketch.merge a b) c in
      let right = Sketch.merge a (Sketch.merge b c) in
      Sketch.count left = n && Sketch.count right = n
      && Array.for_all
           (fun x ->
             let e = exact_rank xs x in
             abs (Sketch.rank left x - e) <= Sketch.rank_error_bound left
             && abs (Sketch.rank right x - e) <= Sketch.rank_error_bound right)
           xs)

(* ---------------- streaming moments ---------------- *)

let prop_moments_match_stats =
  QCheck.Test.make ~count:100 ~name:"merged moments match exact stats"
    split_gen (fun (xs, (k, _)) ->
      let n = Array.length xs in
      let k = k mod (n + 1) in
      let a = Agg.Moments.create () and b = Agg.Moments.create () in
      Array.iteri (fun i x -> Agg.Moments.add (if i < k then a else b) x) xs;
      let m = Agg.Moments.merge a b in
      let close u v = abs_float (u -. v) <= 1e-6 *. (1.0 +. abs_float v) in
      Agg.Moments.count m = n
      && close (Agg.Moments.mean m) (Stats.mean xs)
      && close (Agg.Moments.variance m) (Stats.variance xs)
      && Agg.Moments.min m = Array.fold_left Float.min xs.(0) xs
      && Agg.Moments.max m = Array.fold_left Float.max xs.(0) xs)

let test_moments_empty () =
  let m = Agg.Moments.create () in
  Alcotest.(check int) "count" 0 (Agg.Moments.count m);
  if not (Float.is_nan (Agg.Moments.mean m)) then
    Alcotest.fail "mean of empty should be nan";
  let s = Agg.summarize (Agg.metric ()) in
  Alcotest.(check int) "summary n" 0 s.Agg.n;
  Alcotest.(check string) "pp of empty" "(no samples)"
    (Format.asprintf "%a" Agg.pp_summary s)

(* ---------------- fleet service ---------------- *)

let small_fleet =
  {
    Fleet.default with
    Fleet.devices = 6;
    benchmarks = [ "Var" ];
    systems = [ Wn_core.Intermittent.Clank ];
    trace_class = Fleet.Constant;
    trace_duration_s = 2.0;
    batch = 2;
  }

let test_fleet_expand_round_robin () =
  let d =
    {
      small_fleet with
      Fleet.devices = 5;
      benchmarks = [ "Var"; "Home" ];
      bits_list = [ 4; 8 ];
      seed = 100;
    }
  in
  let specs = Fleet.expand d in
  Alcotest.(check int) "unit count" 5 (Array.length specs);
  let labels =
    Array.to_list
      (Array.map (fun s -> Printf.sprintf "%s@%d" s.Fleet.bench s.Fleet.bits) specs)
  in
  (* bench is the outer axis, bits the inner; device 4 wraps around. *)
  Alcotest.(check (list string)) "round robin"
    [ "Var@4"; "Var@8"; "Home@4"; "Home@8"; "Var@4" ]
    labels;
  Alcotest.(check int) "trace seed" 106 specs.(3).Fleet.trace_seed;
  Alcotest.(check int) "input seed" 107 specs.(3).Fleet.input_seed

let test_fleet_validation () =
  let reject name d =
    match Fleet.expand d with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s accepted" name
  in
  reject "devices 0" { small_fleet with Fleet.devices = 0 };
  reject "samples 0" { small_fleet with Fleet.samples_per_device = 0 };
  reject "sketch capacity 2" { small_fleet with Fleet.sketch_capacity = 2 };
  reject "empty benchmarks" { small_fleet with Fleet.benchmarks = [] }

let test_fleet_jobs_byte_identical () =
  let render jobs =
    let r = Fleet.run ~jobs small_fleet in
    (Format.asprintf "%a" Fleet.pp r, Fleet.to_json r)
  in
  let sequential = render 1 in
  List.iter
    (fun jobs ->
      let text, json = render jobs in
      Alcotest.(check string)
        (Printf.sprintf "report at jobs=%d" jobs)
        (fst sequential) text;
      Alcotest.(check string)
        (Printf.sprintf "json at jobs=%d" jobs)
        (snd sequential) json)
    [ 2; 8 ]

let test_fleet_report_sanity () =
  let r = Fleet.run ~jobs:2 small_fleet in
  Alcotest.(check int) "units" 6 r.Fleet.units;
  Alcotest.(check int) "tasks" 6 r.Fleet.tasks;
  Alcotest.(check int) "all tasks measured" 6 r.Fleet.energy.Agg.n;
  if r.Fleet.completed < 1 then Alcotest.fail "no task completed";
  if r.Fleet.energy.Agg.mean <= 0.0 then Alcotest.fail "no energy drained"

let qtests =
  List.map QCheck_alcotest.to_alcotest
    [
      prop_rank_error_bound;
      prop_quantile_vs_exact;
      prop_merge_commutative;
      prop_merge_associative_bound;
      prop_moments_match_stats;
    ]

let () =
  Alcotest.run "wn.fleet"
    [
      ( "sketch",
        [
          Alcotest.test_case "exact below capacity" `Quick
            test_sketch_exact_below_capacity;
          Alcotest.test_case "validation" `Quick test_sketch_validation;
        ] );
      ( "moments",
        [ Alcotest.test_case "empty" `Quick test_moments_empty ] );
      ("properties", qtests);
      ( "fleet",
        [
          Alcotest.test_case "expand round robin" `Quick
            test_fleet_expand_round_robin;
          Alcotest.test_case "validation" `Quick test_fleet_validation;
          Alcotest.test_case "jobs byte-identical" `Slow
            test_fleet_jobs_byte_identical;
          Alcotest.test_case "report sanity" `Quick test_fleet_report_sanity;
        ] );
    ]
