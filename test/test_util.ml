(* Unit and property tests for wn.util: subword manipulation, fixed
   point, the deterministic PRNG and statistics. *)

open Wn_util

let check_int = Alcotest.(check int)
let check_float = Alcotest.(check (float 1e-9))

(* ---------------- Subword ---------------- *)

let test_mask () =
  check_int "mask 1" 1 (Subword.mask 1);
  check_int "mask 4" 0xF (Subword.mask 4);
  check_int "mask 16" 0xFFFF (Subword.mask 16);
  Alcotest.check_raises "mask 0" (Invalid_argument "Subword.mask") (fun () ->
      ignore (Subword.mask 0))

let test_extract_insert () =
  let v = 0xABCD in
  check_int "extract low nibble" 0xD (Subword.extract ~bits:4 ~pos:0 v);
  check_int "extract top nibble" 0xA (Subword.extract ~bits:4 ~pos:3 v);
  check_int "extract low byte" 0xCD (Subword.extract ~bits:8 ~pos:0 v);
  check_int "insert nibble" 0xAB9D (Subword.insert ~bits:4 ~pos:1 ~into:v 0x9);
  check_int "insert truncates" 0xAB9D
    (Subword.insert ~bits:4 ~pos:1 ~into:v 0xF9)

let test_split_combine () =
  let v = 0x1234 in
  Alcotest.(check (list int))
    "split MS first" [ 0x1; 0x2; 0x3; 0x4 ]
    (Subword.split ~bits:4 ~width:16 v);
  check_int "combine inverts" v
    (Subword.combine ~bits:4 (Subword.split ~bits:4 ~width:16 v))

let test_sign_extend () =
  check_int "positive" 5 (Subword.sign_extend ~bits:8 5);
  check_int "negative" (-1) (Subword.sign_extend ~bits:8 0xFF);
  check_int "min" (-128) (Subword.sign_extend ~bits:8 0x80);
  check_int "of_signed round trip" 0xFF (Subword.of_signed ~bits:8 (-1));
  check_int "16-bit negative" (-2) (Subword.to_signed ~bits:16 0xFFFE)

let test_lanes_add () =
  (* 8-bit lanes: carries must not cross lane boundaries. *)
  let a = 0x00FF_00FF and b = 0x0001_0001 in
  check_int "carry cut" 0x0000_0000 (Subword.lanes_add ~lane_bits:8 ~width:32 a b);
  check_int "independent lanes" 0x0102_0304
    (Subword.lanes_add ~lane_bits:8 ~width:32 0x0101_0102 0x0001_0202);
  check_int "lanes_sub borrows cut" 0x00FF_00FF
    (Subword.lanes_sub ~lane_bits:8 ~width:32 0x0000_0000 0x0001_0001)

let test_reconstruct_prefix () =
  let v = 0xABCD in
  check_int "no digits" 0 (Subword.reconstruct_prefix ~bits:4 ~width:16 ~taken:0 v);
  check_int "one digit" 0xA000
    (Subword.reconstruct_prefix ~bits:4 ~width:16 ~taken:1 v);
  check_int "all digits" v
    (Subword.reconstruct_prefix ~bits:4 ~width:16 ~taken:4 v)

let prop_split_combine =
  QCheck.Test.make ~count:500 ~name:"split/combine round-trips"
    QCheck.(pair (int_bound 0xFFFF) (QCheck.oneofl [ 1; 2; 4; 8; 16 ]))
    (fun (v, bits) -> Subword.combine ~bits (Subword.split ~bits ~width:16 v) = v)

let prop_lanes_add_matches_per_lane =
  QCheck.Test.make ~count:500 ~name:"lanes_add equals per-lane modular sums"
    QCheck.(
      triple
        (int_bound 0x3FFF_FFFF)
        (int_bound 0x3FFF_FFFF)
        (QCheck.oneofl [ 4; 8; 16 ]))
    (fun (a, b, lane) ->
      let r = Subword.lanes_add ~lane_bits:lane ~width:32 a b in
      let n = 32 / lane in
      List.for_all
        (fun pos ->
          Subword.extract ~bits:lane ~pos r
          = (Subword.extract ~bits:lane ~pos a + Subword.extract ~bits:lane ~pos b)
            land Subword.mask lane)
        (List.init n Fun.id))

let prop_digit_decomposition =
  (* The algebraic heart of SWP: x = Σ digits · 2^shift, so products
     decompose exactly over digits. *)
  QCheck.Test.make ~count:500 ~name:"digit decomposition is exact"
    QCheck.(pair (int_bound 0xFFFF) (int_bound 0xFFFF))
    (fun (x, y) ->
      let partial bits =
        let n = 16 / bits in
        List.fold_left
          (fun acc pos ->
            acc + (y * Subword.extract ~bits ~pos x lsl (pos * bits)))
          0 (List.init n Fun.id)
      in
      partial 4 land 0xFFFFFFFF = x * y land 0xFFFFFFFF
      && partial 8 land 0xFFFFFFFF = x * y land 0xFFFFFFFF)

(* ---------------- Fixed ---------------- *)

let test_fixed_roundtrip () =
  let fmt = Fixed.q8_8 in
  check_float "1.5 round trips" 1.5 (Fixed.to_float fmt (Fixed.of_float fmt 1.5));
  check_float "negative" (-2.25)
    (Fixed.to_float fmt (Fixed.of_float fmt (-2.25)));
  check_float "resolution" (1.0 /. 256.0) (Fixed.resolution fmt)

let test_fixed_saturation () =
  let fmt = Fixed.q8_8 in
  check_float "saturates high" (Fixed.max_value fmt)
    (Fixed.to_float fmt (Fixed.of_float fmt 1e9));
  check_float "saturates low" (Fixed.min_value fmt)
    (Fixed.to_float fmt (Fixed.of_float fmt (-1e9)))

let test_fixed_arith () =
  let fmt = Fixed.q8_8 in
  let a = Fixed.of_float fmt 2.5 and b = Fixed.of_float fmt 1.5 in
  check_float "mul" 3.75 (Fixed.to_float fmt (Fixed.mul fmt a b));
  check_float "add" 4.0 (Fixed.to_float fmt (Fixed.add fmt a b));
  check_float "sub" 1.0 (Fixed.to_float fmt (Fixed.sub fmt a b))

let prop_fixed_add_exact =
  QCheck.Test.make ~count:300 ~name:"fixed add is exact within range"
    QCheck.(pair (float_range (-50.0) 50.0) (float_range (-50.0) 50.0))
    (fun (x, y) ->
      let fmt = Fixed.q8_8 in
      let ax = Fixed.to_float fmt (Fixed.of_float fmt x) in
      let ay = Fixed.to_float fmt (Fixed.of_float fmt y) in
      let sum = Fixed.to_float fmt (Fixed.add fmt (Fixed.of_float fmt x) (Fixed.of_float fmt y)) in
      abs_float (sum -. (ax +. ay)) < 1e-9)

(* ---------------- Rng ---------------- *)

let test_rng_deterministic () =
  let a = Rng.create 42 and b = Rng.create 42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.next_int64 a) (Rng.next_int64 b)
  done

let test_rng_bounds () =
  let rng = Rng.create 7 in
  for _ = 1 to 1000 do
    let v = Rng.int rng 17 in
    if v < 0 || v >= 17 then Alcotest.fail "int out of bounds";
    let f = Rng.float rng 3.0 in
    if f < 0.0 || f >= 3.0 then Alcotest.fail "float out of bounds"
  done

let test_rng_gaussian_moments () =
  let rng = Rng.create 11 in
  let n = 20_000 in
  let xs = Array.init n (fun _ -> Rng.gaussian rng ~mu:5.0 ~sigma:2.0) in
  let m = Stats.mean xs in
  let sd = sqrt (Stats.variance xs) in
  Alcotest.(check (float 0.1)) "mean" 5.0 m;
  Alcotest.(check (float 0.1)) "sigma" 2.0 sd

let test_rng_split_independent () =
  let rng = Rng.create 3 in
  let child = Rng.split rng in
  let a = Rng.next_int64 rng and b = Rng.next_int64 child in
  if a = b then Alcotest.fail "split streams coincide"

(* Regression: [Rng.int] used a bare [mod] over the 62-bit draw, so for
   bound 3*2^60 the residues below 2^60 had two preimages (probability
   1/2 instead of 1/3).  Rejection sampling restores uniformity. *)
let test_rng_int_unbiased () =
  let rng = Rng.create 99 in
  let bound = 0x3000_0000_0000_0000 (* 3 * 2^60 *) in
  let cutoff = bound / 3 in
  let n = 3000 in
  let below = ref 0 in
  for _ = 1 to n do
    if Rng.int rng bound < cutoff then incr below
  done;
  let frac = float_of_int !below /. float_of_int n in
  (* 1/3 +- ~5 sigma; the biased implementation lands at ~1/2. *)
  if frac < 0.29 || frac > 0.38 then
    Alcotest.failf "biased draw: P(low third) = %.3f, want ~0.333" frac

(* ---------------- Stats ---------------- *)

let test_stats_basics () =
  check_float "mean" 2.5 (Stats.mean [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "variance" 1.25 (Stats.variance [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "median odd" 2.0 (Stats.median [| 3.0; 1.0; 2.0 |]);
  check_float "median even" 2.5 (Stats.median [| 1.0; 2.0; 3.0; 4.0 |]);
  check_float "p0" 1.0 (Stats.percentile [| 1.0; 2.0; 3.0 |] 0.0);
  check_float "p100" 3.0 (Stats.percentile [| 1.0; 2.0; 3.0 |] 100.0);
  check_float "geomean" 2.0 (Stats.geomean [| 1.0; 4.0 |])

let test_stats_nrmse () =
  let reference = [| 0.0; 10.0 |] in
  check_float "identical is zero" 0.0 (Stats.nrmse ~reference reference);
  let off = [| 1.0; 11.0 |] in
  check_float "uniform offset" 0.1 (Stats.nrmse ~reference off);
  Alcotest.check_raises "length mismatch" (Invalid_argument "Stats.rmse")
    (fun () -> ignore (Stats.rmse ~reference [| 1.0 |]))

(* Regression: the scale floor used to be [Float.max 1.0 scale], which
   silently deflated the error whenever both the reference range and
   max-abs were below 1.0 (normalized sensor outputs). *)
let test_stats_nrmse_small_scale () =
  let reference = [| 0.2; 0.4 |] in
  let output = [| 0.2; 0.3 |] in
  let expected = Stats.rmse ~reference output /. 0.4 in
  check_float "sub-unit scale divides through" expected
    (Stats.nrmse ~reference output);
  (* All-zero reference still guarded: 0/eps, not 0/0. *)
  check_float "all-zero reference" 0.0 (Stats.nrmse ~reference:[| 0.0 |] [| 0.0 |])

(* Float.compare gives the sort a total order: NaNs collect at the
   front instead of poisoning the comparison, so percentiles over the
   finite part remain deterministic. *)
let test_stats_nan_handling () =
  let nan = Float.nan in
  check_float "median ignores leading NaN" 1.0
    (Stats.median [| nan; 1.0; 2.0 |]);
  check_float "p100 with NaN present" 5.0
    (Stats.percentile [| nan; 5.0; 4.0 |] 100.0);
  if not (Float.is_nan (Stats.percentile [| nan; 1.0 |] 0.0)) then
    Alcotest.fail "p0 of a NaN-containing array should be the NaN"

let test_stats_value_range () =
  check_float "spread" 3.0 (Stats.value_range [| 1.0; 4.0; 2.0 |]);
  check_float "singleton" 0.0 (Stats.value_range [| 5.0 |]);
  (* Regression: used to index a.(0) without the empty guard. *)
  Alcotest.check_raises "empty" (Invalid_argument "Stats.value_range")
    (fun () -> ignore (Stats.value_range [||]))

let prop_median_bounds =
  QCheck.Test.make ~count:300 ~name:"median within min/max"
    QCheck.(array_of_size Gen.(int_range 1 40) (float_range (-100.) 100.))
    (fun a ->
      let m = Stats.median a in
      let lo = Array.fold_left min a.(0) a and hi = Array.fold_left max a.(0) a in
      m >= lo && m <= hi)

let qtests = List.map QCheck_alcotest.to_alcotest
    [ prop_split_combine; prop_lanes_add_matches_per_lane;
      prop_digit_decomposition; prop_fixed_add_exact; prop_median_bounds ]

let () =
  Alcotest.run "wn.util"
    [
      ( "subword",
        [
          Alcotest.test_case "mask" `Quick test_mask;
          Alcotest.test_case "extract/insert" `Quick test_extract_insert;
          Alcotest.test_case "split/combine" `Quick test_split_combine;
          Alcotest.test_case "sign extension" `Quick test_sign_extend;
          Alcotest.test_case "vector lanes" `Quick test_lanes_add;
          Alcotest.test_case "prefix reconstruction" `Quick test_reconstruct_prefix;
        ] );
      ( "fixed",
        [
          Alcotest.test_case "round trip" `Quick test_fixed_roundtrip;
          Alcotest.test_case "saturation" `Quick test_fixed_saturation;
          Alcotest.test_case "arithmetic" `Quick test_fixed_arith;
        ] );
      ( "rng",
        [
          Alcotest.test_case "deterministic" `Quick test_rng_deterministic;
          Alcotest.test_case "bounds" `Quick test_rng_bounds;
          Alcotest.test_case "gaussian moments" `Quick test_rng_gaussian_moments;
          Alcotest.test_case "split independence" `Quick test_rng_split_independent;
          Alcotest.test_case "int unbiased" `Quick test_rng_int_unbiased;
        ] );
      ( "stats",
        [
          Alcotest.test_case "basics" `Quick test_stats_basics;
          Alcotest.test_case "nrmse" `Quick test_stats_nrmse;
          Alcotest.test_case "nrmse small scale" `Quick test_stats_nrmse_small_scale;
          Alcotest.test_case "NaN handling" `Quick test_stats_nan_handling;
          Alcotest.test_case "value range" `Quick test_stats_value_range;
        ] );
      ("properties", qtests);
    ]
