(* Prints the WCEC-vs-measured table in EXPERIMENTS.md: for every suite
   benchmark, the static per-charge bound under Clank and NVP next to
   the largest burn window the executor actually meters under a supply
   scripted to force outages at awkward instants.  Regenerate with
   [dune exec test/wcec_table.exe]. *)

open Wn_runtime
module Workload = Wn_workloads.Workload
module Suite = Wn_workloads.Suite
module Runner = Wn_core.Runner
module Rng = Wn_util.Rng
module Progress = Wn_analysis.Progress
module Compile = Wn_compiler.Compile

let outage_script = [ 777; 5_001; 12_345; 44_444; 99_999; 222_222 ]

let measured ~policy b =
  let w = b.Runner.workload in
  let m = Runner.machine b in
  Runner.load_sample b m (w.Workload.fresh_inputs (Rng.create 11));
  let supply = Wn_power.Supply.scripted ~outages:outage_script () in
  let max_region = ref 0 in
  let outcome =
    Executor.run ~policy
      ~on_region:(fun ~cycles ->
        if cycles > !max_region then max_region := cycles)
      ~machine:m ~supply ()
  in
  assert outcome.Executor.completed;
  !max_region

let bound = function
  | Progress.Finite c -> string_of_int c
  | Progress.Unbounded _ -> "unbounded"

let () =
  Printf.printf
    "| benchmark | whole-program WCEC | Clank bound | Clank measured | NVP \
     bound | NVP measured |\n";
  Printf.printf "|---|---:|---:|---:|---:|---:|\n";
  List.iter
    (fun (w : Workload.t) ->
      let b = Runner.build w { Workload.bits = 8; provisioned = true } in
      let report rt = Compile.verify ~runtime:rt b.Runner.compiled in
      let static rt =
        bound (Progress.max_region_cycles (report rt))
      in
      let clank_meas =
        measured ~policy:(Executor.Clank Executor.default_clank) b
      in
      let nvp_meas = measured ~policy:(Executor.Nvp Executor.default_nvp) b in
      Printf.printf "| %s | %s | %s | %d | %s | %d |\n" w.Workload.name
        (bound (report (Progress.skim_only ())).Progress.rp_total)
        (static (Progress.clank ()))
        clank_meas
        (static (Progress.nvp ()))
        nvp_meas)
    (Suite.extended Workload.Small)
