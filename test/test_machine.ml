(* Tests for wn.machine: instruction semantics on the cycle-accurate
   core, the WN extensions, memoization and zero skipping. *)

open Wn_isa
open Wn_machine

let r = Reg.r

(* Assemble and run a program until HALT; return the machine. *)
let run ?config ?(mem_size = 256) ?(setup = fun _ -> ()) items =
  let program = Asm.assemble_exn (List.map (fun i -> Asm.I i) items @ [ Asm.I Instr.Halt ]) in
  let mem = Wn_mem.Memory.create ~size:mem_size in
  let machine = Machine.create ?config ~program ~mem () in
  setup machine;
  let guard = ref 0 in
  while not (Machine.halted machine) do
    incr guard;
    if !guard > 1_000_000 then Alcotest.fail "program did not halt";
    ignore (Machine.step machine)
  done;
  machine

let check_reg machine name expect reg_no =
  Alcotest.(check int) name expect (Machine.reg machine (r reg_no))

let test_mov_movt () =
  let m = run [ Instr.Mov_imm (r 0, 0xBEEF); Instr.Movt (r 0, 0xDEAD) ] in
  check_reg m "full word" 0xDEADBEEF 0

let test_alu_ops () =
  let m =
    run
      [
        Instr.Mov_imm (r 1, 12);
        Instr.Mov_imm (r 2, 10);
        Instr.Alu (Instr.Add, r 3, r 1, r 2);
        Instr.Alu (Instr.Sub, r 4, r 1, r 2);
        Instr.Alu (Instr.And, r 5, r 1, r 2);
        Instr.Alu (Instr.Orr, r 6, r 1, r 2);
        Instr.Alu (Instr.Eor, r 7, r 1, r 2);
        Instr.Alu (Instr.Bic, r 8, r 1, r 2);
        Instr.Alu_imm (Instr.Add, r 9, r 1, 4000);
      ]
  in
  check_reg m "add" 22 3;
  check_reg m "sub" 2 4;
  check_reg m "and" 8 5;
  check_reg m "orr" 14 6;
  check_reg m "eor" 6 7;
  check_reg m "bic" 4 8;
  check_reg m "add imm" 4012 9

let test_sub_wraps () =
  let m =
    run [ Instr.Mov_imm (r 1, 1); Instr.Mov_imm (r 2, 2);
          Instr.Alu (Instr.Sub, r 3, r 1, r 2) ]
  in
  check_reg m "1-2 wraps to 0xFFFFFFFF" 0xFFFFFFFF 3

let test_shifts () =
  let m =
    run
      [
        Instr.Mov_imm (r 1, 0x8000); Instr.Movt (r 1, 0x8000);
        Instr.Shift (Instr.Lsl, r 2, r 1, 1);
        Instr.Shift (Instr.Lsr, r 3, r 1, 4);
        Instr.Shift (Instr.Asr, r 4, r 1, 4);
      ]
  in
  check_reg m "lsl drops carry" 0x00010000 2;
  check_reg m "lsr zero-fills" 0x08000800 3;
  check_reg m "asr sign-fills" 0xF8000800 4

let test_mul () =
  let m =
    run [ Instr.Mov_imm (r 1, 1234); Instr.Mov_imm (r 2, 5678);
          Instr.Mul (r 3, r 1, r 2) ]
  in
  check_reg m "product" (1234 * 5678) 3

let test_mul_asp_decomposition () =
  (* Accumulating MUL_ASP over both bytes of y must equal x·y. *)
  let x = 913 and y = 0xA7C3 in
  let m =
    run
      [
        Instr.Mov_imm (r 1, x);
        Instr.Mov_imm (r 2, y land 0xFF);       (* low byte *)
        Instr.Mov_imm (r 3, (y lsr 8) land 0xFF);  (* high byte *)
        Instr.Mov (r 4, r 1);
        Instr.Mul_asp { bits = 8; signed = false; rd = r 4; rn = r 3; shift = 8 };
        Instr.Mov (r 5, r 1);
        Instr.Mul_asp { bits = 8; signed = false; rd = r 5; rn = r 2; shift = 0 };
        Instr.Alu (Instr.Add, r 6, r 4, r 5);
      ]
  in
  check_reg m "byte-decomposed product" (x * y) 6

let test_mul_asp_signed_top () =
  (* Signed top digit: y = -2 as a 16-bit value, top byte 0xFF. *)
  let x = 100 in
  let m =
    run
      [
        Instr.Mov_imm (r 1, x);
        Instr.Mov_imm (r 2, 0xFF);  (* top byte of 0xFFFE *)
        Instr.Mov_imm (r 3, 0xFE);  (* low byte *)
        Instr.Mov (r 4, r 1);
        Instr.Mul_asp { bits = 8; signed = true; rd = r 4; rn = r 2; shift = 8 };
        Instr.Mov (r 5, r 1);
        Instr.Mul_asp { bits = 8; signed = false; rd = r 5; rn = r 3; shift = 0 };
        Instr.Alu (Instr.Add, r 6, r 4, r 5);
      ]
  in
  check_reg m "x * (-2) wrapped" ((x * -2) land 0xFFFFFFFF) 6

let test_mul_asp_truncates_operand () =
  (* Only the low [bits] of rn participate. *)
  let m =
    run
      [
        Instr.Mov_imm (r 1, 10);
        Instr.Mov_imm (r 2, 0xFF7);  (* low nibble 7 *)
        Instr.Mov (r 3, r 1);
        Instr.Mul_asp { bits = 4; signed = false; rd = r 3; rn = r 2; shift = 0 };
      ]
  in
  check_reg m "nibble only" 70 3

let test_sqrt_unit () =
  let m =
    run
      [
        Instr.Mov_imm (r 1, 0); Instr.Movt (r 1, 1);  (* 65536 *)
        Instr.Sqrt (r 2, r 1);
        Instr.Mov_imm (r 3, 99); Instr.Sqrt (r 4, r 3);
        Instr.Mov_imm (r 5, 100); Instr.Sqrt (r 6, r 5);
        Instr.Mov_imm (r 7, 0); Instr.Sqrt (r 8, r 7);
      ]
  in
  check_reg m "sqrt 65536" 256 2;
  check_reg m "sqrt 99 floors" 9 4;
  check_reg m "sqrt 100" 10 6;
  check_reg m "sqrt 0" 0 8;
  (* latency: the full root costs 16 cycles, a 4-bit stage costs 4 *)
  Alcotest.(check int) "full root latency" 16
    (Instr.cycles ~taken:false (Instr.Sqrt (r 0, r 1)));
  Alcotest.(check int) "stage latency" 4
    (Instr.cycles ~taken:false (Instr.Sqrt_asp { bits = 4; rd = r 0; rn = r 1 }))

let prop_sqrt_asp_truncates =
  (* A k-bit SQRT_ASP stage equals the full root with its low bits
     cleared — every digit decision is final. *)
  QCheck.Test.make ~count:300 ~name:"SQRT_ASP stages truncate the exact root"
    QCheck.(pair (int_bound 0x3FFFFFFF) (int_range 1 16))
    (fun (n, bits) ->
      (* the pair shrinker can step outside int_range; clamp *)
      let bits = max 1 (min 16 bits) in
      let m =
        run
          [
            Instr.Mov_imm (r 1, n land 0xFFFF);
            Instr.Movt (r 1, n lsr 16);
            Instr.Sqrt (r 2, r 1);
            Instr.Sqrt_asp { bits; rd = r 3; rn = r 1 };
          ]
      in
      let full = Machine.reg m (r 2) in
      let stage = Machine.reg m (r 3) in
      stage = (full lsr (16 - bits)) lsl (16 - bits)
      && full * full <= n
      && (full + 1) * (full + 1) > n)

let test_asv_lanes () =
  let m =
    run
      [
        Instr.Mov_imm (r 1, 0x00FF); Instr.Movt (r 1, 0x00FF);
        Instr.Mov_imm (r 2, 0x0001); Instr.Movt (r 2, 0x0001);
        Instr.Add_asv (8, r 3, r 1, r 2);
        Instr.Add_asv (16, r 4, r 1, r 2);
        Instr.Sub_asv (8, r 5, r 2, r 1);
      ]
  in
  check_reg m "8-bit lanes cut carries" 0x00000000 3;
  check_reg m "16-bit lanes keep byte carries" 0x01000100 4;
  check_reg m "sub lanes cut borrows" 0x00020002 5

let test_loads_stores () =
  let m =
    run
      [
        Instr.Mov_imm (r 1, 0xBEEF); Instr.Movt (r 1, 0xDEAD);
        Instr.Mov_imm (r 2, 16);
        Instr.Str_reg { width = Instr.Word; rs = r 1; base = r 2; idx = r 2 };
        Instr.Ldr { width = Instr.Word; signed = false; rd = r 3; base = r 2; off = 16 };
        Instr.Ldr { width = Instr.Byte; signed = false; rd = r 4; base = r 2; off = 19 };
        Instr.Ldr { width = Instr.Half; signed = true; rd = r 5; base = r 2; off = 18 };
      ]
  in
  check_reg m "word round trip" 0xDEADBEEF 3;
  check_reg m "MSB byte" 0xDE 4;
  check_reg m "signed half" 0xFFFFDEAD 5

let test_branches_and_flags () =
  (* Sum 1..5 with a loop. *)
  let items =
    [
      Asm.I (Instr.Mov_imm (r 0, 0));
      Asm.I (Instr.Mov_imm (r 1, 1));
      Asm.Label "loop";
      Asm.I (Instr.Alu (Instr.Add, r 0, r 0, r 1));
      Asm.I (Instr.Alu_imm (Instr.Add, r 1, r 1, 1));
      Asm.I (Instr.Cmp_imm (r 1, 6));
      Asm.I (Instr.B (Cond.Lt, "loop"));
      Asm.I Instr.Halt;
    ]
  in
  let program = Asm.assemble_exn items in
  let mem = Wn_mem.Memory.create ~size:64 in
  let machine = Machine.create ~program ~mem () in
  while not (Machine.halted machine) do
    ignore (Machine.step machine)
  done;
  Alcotest.(check int) "sum" 15 (Machine.reg machine (r 0))

let test_skm_register () =
  let program =
    Asm.assemble_exn
      [ Asm.I (Instr.Skm "tgt"); Asm.I Instr.Nop; Asm.Label "tgt"; Asm.I Instr.Halt ]
  in
  let mem = Wn_mem.Memory.create ~size:64 in
  let m = Machine.create ~program ~mem () in
  while not (Machine.halted m) do
    ignore (Machine.step m)
  done;
  Alcotest.(check (option int)) "latched" (Some 2) (Machine.skim_target m);
  Alcotest.(check (option int)) "take clears" (Some 2) (Machine.take_skim m);
  Alcotest.(check (option int)) "now empty" None (Machine.skim_target m)

let test_cycle_accounting () =
  let m = run [ Instr.Mov_imm (r 1, 3); Instr.Mov_imm (r 2, 4); Instr.Mul (r 3, r 1, r 2) ] in
  (* mov(1) + mov(1) + mul(16) + halt(1) *)
  Alcotest.(check int) "cycles" 19 (Machine.cycles_executed m);
  Alcotest.(check int) "retired" 4 (Machine.instructions_retired m)

let test_memoization () =
  let config = { Machine.memo_entries = Some 16; zero_skip = false } in
  let m =
    run ~config
      [
        Instr.Mov_imm (r 1, 33); Instr.Mov_imm (r 2, 44);
        Instr.Mul (r 3, r 1, r 2);
        Instr.Mul (r 4, r 1, r 2);
      ]
  in
  check_reg m "first result" (33 * 44) 3;
  check_reg m "memoized result" (33 * 44) 4;
  (match Machine.memo m with
  | Some table ->
      Alcotest.(check int) "one hit" 1 (Memo.hits table);
      Alcotest.(check int) "one miss" 1 (Memo.misses table)
  | None -> Alcotest.fail "no memo table");
  (* mov+mov + mul(16) + mul(1 on hit) + halt *)
  Alcotest.(check int) "hit is single cycle" 20 (Machine.cycles_executed m)

let test_zero_skipping () =
  let config = { Machine.memo_entries = None; zero_skip = true } in
  let m =
    run ~config
      [ Instr.Mov_imm (r 1, 0); Instr.Mov_imm (r 2, 44); Instr.Mul (r 3, r 1, r 2) ]
  in
  check_reg m "zero product" 0 3;
  Alcotest.(check int) "skipped to 1 cycle" 4 (Machine.cycles_executed m)

let test_memo_table_unit () =
  let t = Memo.create ~entries:16 () in
  Alcotest.(check (option int)) "cold" None (Memo.lookup t ~a:5 ~b:7);
  Memo.insert t ~a:5 ~b:7 ~result:35;
  Alcotest.(check (option int)) "hit" (Some 35) (Memo.lookup t ~a:5 ~b:7);
  (* Same index, different tag must miss (direct-mapped conflict). *)
  Alcotest.(check (option int)) "conflict tag miss" None
    (Memo.lookup t ~a:(5 + 1024) ~b:7);
  Memo.clear t;
  Alcotest.(check (option int)) "cleared" None (Memo.lookup t ~a:5 ~b:7);
  Alcotest.check_raises "entries must be a power of two"
    (Invalid_argument "Memo.create") (fun () -> ignore (Memo.create ~entries:12 ()))

let test_capture_restore_scrub () =
  let program = Asm.assemble_exn [ Asm.I (Instr.Mov_imm (r 0, 9)); Asm.I Instr.Halt ] in
  let mem = Wn_mem.Memory.create ~size:64 in
  let m = Machine.create ~program ~mem () in
  ignore (Machine.step m);
  let snap = Machine.capture_registers m in
  Machine.scrub_volatile m;
  Alcotest.(check int) "scrubbed reg" 0 (Machine.reg m (r 0));
  Alcotest.(check int) "scrubbed pc" 0 (Machine.pc m);
  Machine.restore_registers m snap;
  Alcotest.(check int) "restored reg" 9 (Machine.reg m (r 0));
  Alcotest.(check int) "restored pc" 1 (Machine.pc m)

let prop_mul_asp_matches_digits =
  (* Machine-level version of the decomposition property, including the
     signed top digit, for 4- and 8-bit digits. *)
  QCheck.Test.make ~count:200 ~name:"machine MUL_ASP digit sums equal MUL"
    QCheck.(triple (int_bound 0xFFFF) (int_bound 0xFFFF) (oneofl [ 4; 8 ]))
    (fun (x, y, bits) ->
      let n = 16 / bits in
      let items =
        List.concat
          (List.init n (fun pos ->
               let digit = (y lsr (pos * bits)) land ((1 lsl bits) - 1) in
               [
                 Instr.Mov_imm (r 1, x);
                 Instr.Mov_imm (r 2, digit);
                 Instr.Mul_asp
                   { bits; signed = false; rd = r 1; rn = r 2; shift = pos * bits };
                 Instr.Alu (Instr.Add, r 0, r 0, r 1);
               ]))
      in
      let m = run items in
      Machine.reg m (r 0) = x * y land 0xFFFFFFFF)

(* [find_or_add] must behave exactly like lookup-then-insert: same
   results, same hit/miss counters, same [last_was_hit], over a mix of
   hits, cold misses and conflict evictions. *)
let test_memo_find_or_add () =
  let split = Memo.create ~entries:16 () in
  let combined = Memo.create ~entries:16 () in
  let pairs =
    (* repeats (hits), fresh pairs (misses) and slot-conflicting pairs
       (evictions: 16 entries index on 2 low bits of each operand). *)
    [ (3, 17); (3, 17); (5, 9); (7, 17); (3, 17); (19, 9); (5, 9);
      (3 + 4, 17); (3, 17 + 4); (3, 17); (0, 0); (0, 0) ]
  in
  List.iter
    (fun (a, b) ->
      let r_split =
        match Memo.lookup split ~a ~b with
        | Some r -> r
        | None ->
            let r = a * b in
            Memo.insert split ~a ~b ~result:r;
            r
      in
      let r_combined = Memo.find_or_add combined ~a ~b ~miss:(a * b) in
      Alcotest.(check int) "result" r_split r_combined;
      Alcotest.(check bool) "last_was_hit"
        (Memo.last_was_hit split) (Memo.last_was_hit combined))
    pairs;
  Alcotest.(check int) "hits" (Memo.hits split) (Memo.hits combined);
  Alcotest.(check int) "misses" (Memo.misses split) (Memo.misses combined);
  if Memo.hits combined = 0 then Alcotest.fail "sequence produced no hits";
  if Memo.misses combined = 0 then Alcotest.fail "sequence produced no misses"

(* The dispatch table is predecoded once at [create]; resets and
   volatility scrubs must keep executing from it.  Runs a task with a
   skim point to completion through [step_fast], then again after
   [reset_for_new_task], then replays an outage-with-skim
   ([scrub_volatile] + jump to the skim target). *)
let test_predecode_survives_reset_and_scrub () =
  let program =
    Asm.assemble_exn
      [
        Asm.I (Instr.Mov_imm (r 0, 7));
        Asm.I (Instr.Skm "skim");
        Asm.I (Instr.Mov_imm (r 1, 3));
        Asm.I (Instr.Alu (Instr.Add, r 2, r 0, r 1));
        Asm.Label "skim";
        Asm.I (Instr.Mov_imm (r 3, 42));
        Asm.I Instr.Halt;
      ]
  in
  let mem = Wn_mem.Memory.create ~size:64 in
  let machine = Machine.create ~program ~mem () in
  let run_to_halt () =
    while not (Machine.halted machine) do
      Machine.step_fast machine
    done
  in
  run_to_halt ();
  check_reg machine "first run r2" 10 2;
  check_reg machine "first run r3" 42 3;
  (* Fresh task: the same predecoded table must replay identically. *)
  Machine.reset_for_new_task machine;
  Alcotest.(check int) "reset pc" 0 (Machine.pc machine);
  check_reg machine "reset scrubs r2" 0 2;
  run_to_halt ();
  check_reg machine "second run r2" 10 2;
  (* Outage replay: stop after the skim latch, scrub volatile state and
     resume at the skim target, still through the predecoded table. *)
  Machine.reset_for_new_task machine;
  Machine.step_fast machine;
  Machine.step_fast machine;
  Alcotest.(check bool) "skim latched" true (Machine.skim_target machine <> None);
  Machine.scrub_volatile machine;
  check_reg machine "scrub clears r0" 0 0;
  (match Machine.take_skim machine with
  | Some tgt -> Machine.set_pc machine tgt
  | None -> Alcotest.fail "skim register lost");
  run_to_halt ();
  check_reg machine "skim path r3" 42 3;
  check_reg machine "skim path skips r2" 0 2

let () =
  Alcotest.run "wn.machine"
    [
      ( "semantics",
        [
          Alcotest.test_case "mov/movt" `Quick test_mov_movt;
          Alcotest.test_case "alu" `Quick test_alu_ops;
          Alcotest.test_case "wrapping" `Quick test_sub_wraps;
          Alcotest.test_case "shifts" `Quick test_shifts;
          Alcotest.test_case "mul" `Quick test_mul;
          Alcotest.test_case "loads/stores" `Quick test_loads_stores;
          Alcotest.test_case "branches" `Quick test_branches_and_flags;
        ] );
      ( "wn extensions",
        [
          Alcotest.test_case "mul_asp decomposition" `Quick test_mul_asp_decomposition;
          Alcotest.test_case "mul_asp signed top" `Quick test_mul_asp_signed_top;
          Alcotest.test_case "mul_asp truncates" `Quick test_mul_asp_truncates_operand;
          Alcotest.test_case "asv lanes" `Quick test_asv_lanes;
          Alcotest.test_case "sqrt unit" `Quick test_sqrt_unit;
          QCheck_alcotest.to_alcotest prop_sqrt_asp_truncates;
          Alcotest.test_case "skm register" `Quick test_skm_register;
          QCheck_alcotest.to_alcotest prop_mul_asp_matches_digits;
        ] );
      ( "timing",
        [
          Alcotest.test_case "cycle accounting" `Quick test_cycle_accounting;
          Alcotest.test_case "memoization" `Quick test_memoization;
          Alcotest.test_case "zero skipping" `Quick test_zero_skipping;
          Alcotest.test_case "memo table" `Quick test_memo_table_unit;
          Alcotest.test_case "find_or_add" `Quick test_memo_find_or_add;
        ] );
      ( "state",
        [
          Alcotest.test_case "capture/restore/scrub" `Quick test_capture_restore_scrub;
          Alcotest.test_case "predecode across reset/scrub" `Quick
            test_predecode_survives_reset_and_scrub;
        ] );
    ]
