(* Soundness oracle for the static forward-progress verifier: the
   per-charge WCEC bound computed by Wn_analysis.Progress must dominate
   the largest burn window the executor actually meters (via the
   [on_region] hook) for every suite benchmark, runtime policy and skim
   configuration — under a supply scripted to force outages at awkward
   instants.  Plus the seeded "doomed" configuration: a capacitor too
   small for any region, which the verifier must flag as an error and
   the simulator must confirm makes no progress. *)

open Wn_machine
open Wn_runtime
module Workload = Wn_workloads.Workload
module Suite = Wn_workloads.Suite
module Runner = Wn_core.Runner
module Rng = Wn_util.Rng
module Progress = Wn_analysis.Progress
module Compile = Wn_compiler.Compile

let bound_cycles name = function
  | Progress.Finite c -> c
  | Progress.Unbounded { binding_loop } ->
      Alcotest.failf "%s: static WCEC unbounded (loop at pc %d)" name
        binding_loop

(* Outage instants chosen to land mid-region at several scales; the
   scripted supply also recovers quickly, so several charge windows are
   exercised per task. *)
let outage_script = [ 777; 5_001; 12_345; 44_444; 99_999; 222_222 ]

let policies =
  [
    ("clank", Executor.Clank Executor.default_clank, Progress.clank ());
    ("nvp", Executor.Nvp Executor.default_nvp, Progress.nvp ());
  ]

let run_metered ~policy ~halt_at_skim b =
  let w = b.Runner.workload in
  let m = Runner.machine b in
  Runner.load_sample b m (w.Workload.fresh_inputs (Rng.create 11));
  let supply = Wn_power.Supply.scripted ~outages:outage_script () in
  let max_region = ref 0 in
  let program = Machine.program m in
  let outcome =
    Executor.run ~policy ~halt_at_skim
      ~on_region:(fun ~cycles -> if cycles > !max_region then max_region := cycles)
      ~on_step:(fun () ->
        (* Satellite check: the dynamic latency of every retired
           instruction stays within the static per-instruction
           ceiling the WCEC sums are built from. *)
        let pc = Machine.last_pc m in
        if Machine.last_cycles m > Machine.worst_case_cycles program.(pc)
        then
          Alcotest.failf "pc %d: dynamic %d cycles > static ceiling %d" pc
            (Machine.last_cycles m)
            (Machine.worst_case_cycles program.(pc)))
      ~machine:m ~supply ()
  in
  (outcome, !max_region)

let test_static_dominates_dynamic () =
  List.iter
    (fun (w : Workload.t) ->
      let b = Runner.build w { Workload.bits = 8; provisioned = true } in
      let report_of runtime = Compile.verify ~runtime b.Runner.compiled in
      List.iter
        (fun (pname, policy, runtime) ->
          let static =
            bound_cycles
              (Printf.sprintf "%s/%s" w.Workload.name pname)
              (Progress.max_region_cycles (report_of runtime))
          in
          List.iter
            (fun halt_at_skim ->
              let outcome, dynamic = run_metered ~policy ~halt_at_skim b in
              let name =
                Printf.sprintf "%s/%s%s" w.Workload.name pname
                  (if halt_at_skim then "/skim" else "")
              in
              Alcotest.(check bool) (name ^ ": completed") true
                outcome.Executor.completed;
              if dynamic > static then
                Alcotest.failf
                  "%s: measured region of %d cycles exceeds static bound %d"
                  name dynamic static)
            [ false; true ])
        policies)
    (Suite.extended Workload.Small)

(* The whole-program WCEC is also a sound bound on a single task's
   total active+overhead cycles under continuous power. *)
let test_total_dominates_always_on () =
  List.iter
    (fun (w : Workload.t) ->
      let b = Runner.build w { Workload.bits = 8; provisioned = true } in
      let report =
        Compile.verify ~runtime:(Progress.skim_only ()) b.Runner.compiled
      in
      let total =
        bound_cycles (w.Workload.name ^ ": total") report.Progress.rp_total
      in
      let m = Runner.machine b in
      Runner.load_sample b m (w.Workload.fresh_inputs (Rng.create 23));
      let outcome =
        Executor.run ~machine:m ~supply:(Wn_power.Supply.always_on ()) ()
      in
      Alcotest.(check bool) (w.Workload.name ^ ": completed") true
        outcome.Executor.completed;
      if outcome.Executor.active_cycles > total then
        Alcotest.failf "%s: ran %d active cycles, static total %d"
          w.Workload.name outcome.Executor.active_cycles total)
    (Suite.extended Workload.Small)

(* Doomed configuration: a 0.01 µF capacitor stores ~10 nJ between
   V_on and V_off — less than Clank's 40-cycle restore alone.  The
   verifier must report a budget error on every region, and the
   simulator must confirm the device spins on restores without ever
   completing a checkpoint or the task. *)
let doomed_capacitor () =
  Wn_power.Capacitor.create ~capacitance:0.01e-6 ~v_on:2.3 ~v_off:1.8 ()

let test_doomed_config_static () =
  let w = Suite.find_opt Workload.Small "MatAdd" |> Option.get in
  let b = Runner.build w { Workload.bits = 8; provisioned = true } in
  let budget = Wn_power.Capacitor.restart_budget (doomed_capacitor ()) in
  Alcotest.(check bool) "budget below one restore" true
    (budget < 40.0 *. Wn_analysis.Energy.default_cycle_energy);
  let diags =
    Wn_analysis.Progress.diagnostics
      (Compile.verify ~runtime:(Progress.clank ()) ~budget b.Runner.compiled)
  in
  Alcotest.(check bool) "budget error reported" true
    (List.exists
       (fun d ->
         d.Wn_analysis.Diag.rule = "progress-budget"
         && d.Wn_analysis.Diag.severity = Wn_analysis.Diag.Error)
       diags)

let test_doomed_config_dynamic () =
  let w = Suite.find_opt Workload.Small "MatAdd" |> Option.get in
  let b = Runner.build w { Workload.bits = 8; provisioned = true } in
  let m = Runner.machine b in
  Runner.load_sample b m (w.Workload.fresh_inputs (Rng.create 3));
  let supply =
    Wn_power.Supply.create
      ~trace:(Wn_power.Trace.constant ~power:1e-3 ~duration_s:1.0)
      ~capacitor:(doomed_capacitor ()) ~start_full:false ()
  in
  let outcome =
    Executor.run
      ~policy:(Executor.Clank Executor.default_clank)
      ~max_wall_cycles:5_000_000 ~machine:m ~supply ()
  in
  Alcotest.(check bool) "never completes" false outcome.Executor.completed;
  Alcotest.(check int) "no checkpoint ever commits" 0
    outcome.Executor.checkpoint_count;
  Alcotest.(check bool) "it is outages all the way down" true
    (outcome.Executor.outage_count > 0)

(* The static runtime models must stay in lockstep with the executor's
   default configurations (the analysis library cannot depend on the
   runtime library, so the constants are mirrored). *)
let test_runtime_defaults_lockstep () =
  let c = Progress.clank () in
  Alcotest.(check int) "clank watchdog"
    Executor.default_clank.Executor.watchdog_period
    (Option.get c.Progress.rt_watchdog_period);
  Alcotest.(check int) "clank checkpoint"
    Executor.default_clank.Executor.checkpoint_cycles
    c.Progress.rt_checkpoint_cycles;
  Alcotest.(check int) "clank restore"
    Executor.default_clank.Executor.clank_restore_cycles
    c.Progress.rt_restore_cycles;
  let n = Progress.nvp () in
  Alcotest.(check int) "nvp restore"
    Executor.default_nvp.Executor.nvp_restore_cycles
    n.Progress.rt_restore_cycles;
  Alcotest.(check bool) "nvp commits per instruction" true
    n.Progress.rt_per_instruction

let () =
  Alcotest.run "wn.progress"
    [
      ( "soundness",
        [
          Alcotest.test_case "static region bound dominates measured" `Quick
            test_static_dominates_dynamic;
          Alcotest.test_case "whole-program bound dominates always-on" `Quick
            test_total_dominates_always_on;
        ] );
      ( "doomed",
        [
          Alcotest.test_case "verifier flags the tiny capacitor" `Quick
            test_doomed_config_static;
          Alcotest.test_case "simulator confirms no progress" `Quick
            test_doomed_config_dynamic;
        ] );
      ( "models",
        [
          Alcotest.test_case "defaults match the executor" `Quick
            test_runtime_defaults_lockstep;
        ] );
    ]
