(* Tests for wn.isa: conditions, latencies, the binary codec and the
   assembler. *)

open Wn_isa

let r = Reg.r

(* ---------------- Cond ---------------- *)

let flags ?(n = false) ?(z = false) ?(c = false) ?(v = false) () =
  { Cond.n; z; c; v }

let test_cond_table () =
  let t = Alcotest.(check bool) in
  t "al" true (Cond.holds Cond.Al (flags ()));
  t "eq on z" true (Cond.holds Cond.Eq (flags ~z:true ()));
  t "ne" false (Cond.holds Cond.Ne (flags ~z:true ()));
  t "lt when n<>v" true (Cond.holds Cond.Lt (flags ~n:true ()));
  t "lt when n=v" false (Cond.holds Cond.Lt (flags ~n:true ~v:true ()));
  t "ge" true (Cond.holds Cond.Ge (flags ~n:true ~v:true ()));
  t "gt needs not-z" false (Cond.holds Cond.Gt (flags ~z:true ()));
  t "le" true (Cond.holds Cond.Le (flags ~z:true ()));
  t "lo" true (Cond.holds Cond.Lo (flags ()));
  t "hs" true (Cond.holds Cond.Hs (flags ~c:true ()));
  t "mi" true (Cond.holds Cond.Mi (flags ~n:true ()));
  t "pl" false (Cond.holds Cond.Pl (flags ~n:true ()))

let test_cond_codes () =
  List.iter
    (fun c ->
      match Cond.of_int (Cond.to_int c) with
      | Some c' when c = c' -> ()
      | _ -> Alcotest.fail ("condition code round trip: " ^ Cond.to_string c))
    Cond.all;
  if Cond.of_int 99 <> None then Alcotest.fail "bad code accepted"

(* ---------------- Instr latencies ---------------- *)

let test_latencies () =
  let c = Alcotest.(check int) in
  c "alu" 1 (Instr.cycles ~taken:false (Instr.Alu (Instr.Add, r 0, r 1, r 2)));
  c "mul is iterative 16" 16 (Instr.cycles ~taken:false (Instr.Mul (r 0, r 1, r 2)));
  c "mul_asp8 is 8" 8
    (Instr.cycles ~taken:false
       (Instr.Mul_asp { bits = 8; signed = false; rd = r 0; rn = r 1; shift = 8 }));
  c "mul_asp4 is 4" 4
    (Instr.cycles ~taken:false
       (Instr.Mul_asp { bits = 4; signed = false; rd = r 0; rn = r 1; shift = 0 }));
  c "asv add single cycle" 1
    (Instr.cycles ~taken:false (Instr.Add_asv (8, r 0, r 1, r 2)));
  c "load" 2
    (Instr.cycles ~taken:false
       (Instr.Ldr { width = Instr.Word; signed = false; rd = r 0; base = r 1; off = 0 }));
  c "taken branch refills" 2 (Instr.cycles ~taken:true (Instr.B (Cond.Eq, 5)));
  c "untaken branch" 1 (Instr.cycles ~taken:false (Instr.B (Cond.Eq, 5)))

let test_wn_classification () =
  let t = Alcotest.(check bool) in
  t "mul_asp is WN" true
    (Instr.is_wn_extension
       (Instr.Mul_asp { bits = 8; signed = false; rd = r 0; rn = r 1; shift = 0 }));
  t "skm is WN" true (Instr.is_wn_extension (Instr.Skm 3));
  t "plain mul is not" false (Instr.is_wn_extension (Instr.Mul (r 0, r 1, r 2)))

(* ---------------- Encoding ---------------- *)

let sample_instrs : int Instr.t list =
  [
    Instr.Nop;
    Instr.Halt;
    Instr.Mov_imm (r 3, 0xBEEF);
    Instr.Movt (r 12, 0xDEAD);
    Instr.Mov (r 1, r 14);
    Instr.Alu (Instr.Eor, r 2, r 3, r 4);
    Instr.Alu_imm (Instr.Sub, r 5, r 6, 0xFFF);
    Instr.Shift (Instr.Asr, r 7, r 8, 31);
    Instr.Mul (r 9, r 10, r 11);
    Instr.Mul_asp { bits = 3; signed = true; rd = r 1; rn = r 2; shift = 13 };
    Instr.Add_asv (16, r 0, r 1, r 2);
    Instr.Sub_asv (4, r 3, r 4, r 5);
    Instr.Cmp (r 6, r 7);
    Instr.Cmp_imm (r 8, 65535);
    Instr.Ldr { width = Instr.Half; signed = true; rd = r 0; base = r 1; off = 1023 };
    Instr.Str { width = Instr.Byte; rs = r 2; base = r 3; off = 0 };
    Instr.Ldr_reg { width = Instr.Word; signed = false; rd = r 4; base = r 5; idx = r 6 };
    Instr.Str_reg { width = Instr.Half; rs = r 7; base = r 8; idx = r 9 };
    Instr.B (Cond.Le, 12345);
    Instr.Bl 77;
    Instr.Bx_lr;
    Instr.Skm 4242;
  ]

let test_encode_roundtrip () =
  List.iter
    (fun i ->
      match Encoding.decode (Encoding.encode i) with
      | Ok i' when i = i' -> ()
      | Ok i' ->
          Alcotest.failf "round trip changed %a into %a" Instr.pp_resolved i
            Instr.pp_resolved i'
      | Error e -> Alcotest.failf "decode failed: %s" e)
    sample_instrs

let test_encode_rejects_out_of_range () =
  Alcotest.check_raises "imm16 too large"
    (Invalid_argument "Encoding: imm16 out of range: 65536") (fun () ->
      ignore (Encoding.encode (Instr.Mov_imm (r 0, 0x10000))));
  Alcotest.check_raises "offset too large"
    (Invalid_argument "Encoding: offset out of range: 1024") (fun () ->
      ignore
        (Encoding.encode
           (Instr.Str { width = Instr.Word; rs = r 0; base = r 1; off = 1024 })))

let test_decode_rejects_garbage () =
  match Encoding.decode 0xFC00_0000l with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "expected a decode error for an unknown opcode"

let test_program_roundtrip () =
  let prog = Array.of_list sample_instrs in
  (match Encoding.decode_program (Encoding.encode_program prog) with
  | Ok prog' when prog' = prog -> ()
  | _ -> Alcotest.fail "program round trip");
  Alcotest.(check int) "code size" (4 * Array.length prog)
    (Encoding.code_size_bytes prog)

(* Random instruction generator for the codec property. *)
let gen_instr : int Instr.t QCheck.Gen.t =
  let open QCheck.Gen in
  let reg = map Reg.r (int_range 0 15) in
  let alu = oneofl Instr.[ Add; Sub; And; Orr; Eor; Bic; Adc; Sbc ] in
  let width = oneofl Instr.[ Byte; Half; Word ] in
  let cond = oneofl Cond.all in
  oneof
    [
      return Instr.Nop;
      return Instr.Halt;
      map2 (fun r i -> Instr.Mov_imm (r, i)) reg (int_bound 0xFFFF);
      map2 (fun a b -> Instr.Mov (a, b)) reg reg;
      map3 (fun op a (b, c) -> Instr.Alu (op, a, b, c)) alu reg (pair reg reg);
      map3 (fun op a (b, i) -> Instr.Alu_imm (op, a, b, i)) alu reg
        (pair reg (int_bound 0xFFF));
      map3
        (fun (bits, signed) (rd, rn) shift ->
          Instr.Mul_asp { bits; signed; rd; rn; shift })
        (pair (int_range 1 16) bool)
        (pair reg reg) (int_bound 31);
      map3 (fun w a (b, c) -> Instr.Add_asv (w, a, b, c)) (int_range 1 16) reg
        (pair reg reg);
      map3
        (fun (w, signed) (rd, base) off -> Instr.Ldr { width = w; signed; rd; base; off })
        (pair width bool) (pair reg reg) (int_bound 1023);
      map3
        (fun w (rs, base) off -> Instr.Str { width = w; rs; base; off })
        width (pair reg reg) (int_bound 1023);
      map3
        (fun (w, signed) (rd, base) idx ->
          Instr.Ldr_reg { width = w; signed; rd; base; idx })
        (pair width bool) (pair reg reg) reg;
      map3
        (fun w (rs, base) idx -> Instr.Str_reg { width = w; rs; base; idx })
        width (pair reg reg) reg;
      map2 (fun r i -> Instr.Movt (r, i)) reg (int_bound 0xFFFF);
      map3 (fun op (rd, rn) sh -> Instr.Shift (op, rd, rn, sh))
        (oneofl Instr.[ Lsl; Lsr; Asr ])
        (pair reg reg) (int_bound 31);
      map3 (fun a b c -> Instr.Mul (a, b, c)) reg reg reg;
      map3 (fun w a (b, c) -> Instr.Sub_asv (w, a, b, c)) (int_range 1 16) reg
        (pair reg reg);
      map2 (fun a b -> Instr.Cmp (a, b)) reg reg;
      map2 (fun a i -> Instr.Cmp_imm (a, i)) reg (int_bound 0xFFFF);
      map2 (fun a b -> Instr.Sqrt (a, b)) reg reg;
      map3 (fun bits rd rn -> Instr.Sqrt_asp { bits; rd; rn }) (int_range 1 16)
        reg reg;
      map (fun t -> Instr.Bl t) (int_bound 0xFFFF);
      return Instr.Bx_lr;
      map2 (fun c t -> Instr.B (c, t)) cond (int_bound 0xFFFF);
      map (fun t -> Instr.Skm t) (int_bound 0xFFFF);
    ]

let prop_codec_roundtrip =
  QCheck.Test.make ~count:1000 ~name:"encode/decode round-trips"
    (QCheck.make gen_instr) (fun i ->
      match Encoding.decode (Encoding.encode i) with
      | Ok i' -> i = i'
      | Error _ -> false)

(* The decoder-direction property: any 32-bit word the decoder accepts
   must yield an instruction the encoder accepts, and the pair must be
   a fixed point from there on.  Words with a valid opcode but junk in
   the operand fields (subword counts of 0 or 17-31, the unused memory
   width and shift codes) used to decode into instructions [encode]
   then rejected with [Invalid_argument]. *)
let gen_word : int32 QCheck.Gen.t =
  let open QCheck.Gen in
  let fully_random = map Int32.of_int (int_bound 0xFFFF_FFFF) in
  (* Bias half the words toward in-range opcodes so operand-field
     validation actually gets exercised. *)
  let valid_opcode =
    map2
      (fun op low ->
        Int32.logor (Int32.shift_left (Int32.of_int op) 26) (Int32.of_int low))
      (int_bound 23) (int_bound 0x03FF_FFFF)
  in
  oneof [ fully_random; valid_opcode ]

let prop_decode_accepts_only_encodable =
  QCheck.Test.make ~count:20_000 ~name:"decode accepts only encodable words"
    (QCheck.make gen_word) (fun w ->
      match Encoding.decode w with
      | Error _ -> true
      | Ok i -> (
          match Encoding.encode i with
          | exception Invalid_argument _ -> false
          | w' -> Encoding.decode w' = Ok i))

(* Regression pins for the decoder fields that used to pass through
   unvalidated (each of these words previously decoded [Ok] into an
   instruction [encode] raised on). *)
let test_decode_validates_fields () =
  let word ?(low = 0) op = Int32.logor (Int32.shift_left (Int32.of_int op) 26)
      (Int32.of_int low)
  in
  let expect_error name w =
    match Encoding.decode w with
    | Error _ -> ()
    | Ok i ->
        Alcotest.failf "%s: %08lx decoded as %a" name w Instr.pp_resolved i
  in
  expect_error "mul_asp bits=0" (word 9);
  expect_error "mul_asp bits=17" (word 9 ~low:(17 lsl 9));
  expect_error "add_asv lanes=0" (word 10);
  expect_error "add_asv lanes=31" (word 10 ~low:(31 lsl 9));
  expect_error "sub_asv lanes=0" (word 11);
  expect_error "sqrt_asp bits=0" (word 23);
  expect_error "sqrt_asp bits=31" (word 23 ~low:(31 lsl 9));
  expect_error "shift code 3" (word 7 ~low:(3 lsl 16));
  expect_error "ldr width 3" (word 14 ~low:(3 lsl 12));
  expect_error "str width 3" (word 15 ~low:(3 lsl 12));
  expect_error "ldr_reg width 3" (word 16 ~low:(3 lsl 12));
  expect_error "str_reg width 3" (word 17 ~low:(3 lsl 12));
  (* Boundary values stay accepted. *)
  List.iter
    (fun i ->
      match Encoding.decode (Encoding.encode i) with
      | Ok i' when i = i' -> ()
      | _ -> Alcotest.failf "boundary form rejected: %a" Instr.pp_resolved i)
    [
      Instr.Mul_asp { bits = 1; signed = true; rd = r 0; rn = r 1; shift = 31 };
      Instr.Mul_asp { bits = 16; signed = false; rd = r 15; rn = r 0; shift = 0 };
      Instr.Add_asv (1, r 0, r 1, r 2);
      Instr.Sub_asv (16, r 0, r 1, r 2);
      Instr.Sqrt_asp { bits = 1; rd = r 0; rn = r 1 };
      Instr.Sqrt_asp { bits = 16; rd = r 0; rn = r 1 };
    ]

(* The WN-32 codec has absolute (unsigned) branch targets and unsigned
   immediates: the encoder must reject negatives loudly rather than
   silently wrap them into a different instruction. *)
let test_encode_rejects_negative () =
  let raises name f =
    match f () with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "%s: negative value encoded silently" name
  in
  raises "imm12" (fun () ->
      Encoding.encode (Instr.Alu_imm (Instr.Add, r 0, r 1, -1)));
  raises "imm16" (fun () -> Encoding.encode (Instr.Mov_imm (r 0, -2)));
  raises "cmp imm" (fun () -> Encoding.encode (Instr.Cmp_imm (r 0, -1)));
  raises "branch target" (fun () -> Encoding.encode (Instr.B (Cond.Al, -5)));
  raises "skim target" (fun () -> Encoding.encode (Instr.Skm (-1)));
  raises "load offset" (fun () ->
      Encoding.encode
        (Instr.Ldr
           { width = Instr.Word; signed = false; rd = r 0; base = r 1; off = -4 }))

(* Assembler round trip over random programs: resolve every control
   target to a label, assemble, and require the resolved program to
   equal the original — then push it through the binary codec too. *)
let relabel (i : int Instr.t) ~n : string Instr.t * int Instr.t =
  let clamp t = t mod n in
  let lbl t = Printf.sprintf "L%d" (clamp t) in
  match i with
  | Instr.B (c, t) -> (Instr.B (c, lbl t), Instr.B (c, clamp t))
  | Instr.Bl t -> (Instr.Bl (lbl t), Instr.Bl (clamp t))
  | Instr.Skm t -> (Instr.Skm (lbl t), Instr.Skm (clamp t))
  | Instr.Nop -> (Instr.Nop, Instr.Nop)
  | Instr.Halt -> (Instr.Halt, Instr.Halt)
  | Instr.Bx_lr -> (Instr.Bx_lr, Instr.Bx_lr)
  | Instr.Mov_imm (a, b) -> (Instr.Mov_imm (a, b), i)
  | Instr.Movt (a, b) -> (Instr.Movt (a, b), i)
  | Instr.Mov (a, b) -> (Instr.Mov (a, b), i)
  | Instr.Alu (o, a, b, c) -> (Instr.Alu (o, a, b, c), i)
  | Instr.Alu_imm (o, a, b, c) -> (Instr.Alu_imm (o, a, b, c), i)
  | Instr.Shift (o, a, b, c) -> (Instr.Shift (o, a, b, c), i)
  | Instr.Mul (a, b, c) -> (Instr.Mul (a, b, c), i)
  | Instr.Mul_asp p -> (Instr.Mul_asp p, i)
  | Instr.Add_asv (w, a, b, c) -> (Instr.Add_asv (w, a, b, c), i)
  | Instr.Sub_asv (w, a, b, c) -> (Instr.Sub_asv (w, a, b, c), i)
  | Instr.Sqrt (a, b) -> (Instr.Sqrt (a, b), i)
  | Instr.Sqrt_asp p -> (Instr.Sqrt_asp p, i)
  | Instr.Cmp (a, b) -> (Instr.Cmp (a, b), i)
  | Instr.Cmp_imm (a, b) -> (Instr.Cmp_imm (a, b), i)
  | Instr.Ldr p -> (Instr.Ldr p, i)
  | Instr.Str p -> (Instr.Str p, i)
  | Instr.Ldr_reg p -> (Instr.Ldr_reg p, i)
  | Instr.Str_reg p -> (Instr.Str_reg p, i)

let prop_assemble_roundtrip =
  QCheck.Test.make ~count:300 ~name:"assemble/disassemble round-trips"
    QCheck.(make Gen.(list_size (int_range 1 40) gen_instr))
    (fun instrs ->
      let n = List.length instrs in
      let labeled, expected =
        List.split (List.map (relabel ~n) instrs)
      in
      let items =
        List.concat
          (List.mapi
             (fun k i -> [ Asm.Label (Printf.sprintf "L%d" k); Asm.I i ])
             labeled)
      in
      match Asm.assemble items with
      | Error _ -> false
      | Ok resolved ->
          resolved = Array.of_list expected
          && Encoding.decode_program (Encoding.encode_program resolved)
             = Ok resolved)

(* ---------------- Asm ---------------- *)

let test_assemble_labels () =
  let prog =
    [
      Asm.Label "start";
      Asm.I (Instr.Mov_imm (r 0, 1));
      Asm.Comment "loop body";
      Asm.Label "loop";
      Asm.I (Instr.Alu_imm (Instr.Add, r 0, r 0, 1));
      Asm.I (Instr.Cmp_imm (r 0, 10));
      Asm.I (Instr.B (Cond.Lt, "loop"));
      Asm.I (Instr.Skm "done");
      Asm.Label "done";
      Asm.I Instr.Halt;
    ]
  in
  let resolved = Asm.assemble_exn prog in
  Alcotest.(check int) "instruction count" 6 (Array.length resolved);
  (match resolved.(3) with
  | Instr.B (Cond.Lt, 1) -> ()
  | i -> Alcotest.failf "bad branch resolution: %a" Instr.pp_resolved i);
  (match resolved.(4) with
  | Instr.Skm 5 -> ()
  | i -> Alcotest.failf "bad skim resolution: %a" Instr.pp_resolved i);
  Alcotest.(check (list (pair string int)))
    "label map"
    [ ("start", 0); ("loop", 1); ("done", 5) ]
    (Asm.label_map prog)

let test_assemble_errors () =
  let undefined = [ Asm.I (Instr.B (Cond.Al, "nowhere")) ] in
  (match Asm.assemble undefined with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "undefined label accepted");
  let duplicate =
    [ Asm.Label "x"; Asm.I Instr.Nop; Asm.Label "x"; Asm.I Instr.Halt ]
  in
  (match Asm.assemble duplicate with
  | Error _ -> ()
  | Ok _ -> Alcotest.fail "duplicate label accepted");
  let dangles = [ Asm.I Instr.Nop; Asm.Label "end" ] in
  match Asm.assemble (dangles @ [ Asm.I (Instr.B (Cond.Al, "end")) ]) with
  | Ok _ -> ()
  | Error e -> Alcotest.failf "label before trailing instr rejected: %s" e

let test_disassembly_strings () =
  let check i expect =
    Alcotest.(check string) expect expect (Format.asprintf "%a" Instr.pp_resolved i)
  in
  check (Instr.Mul_asp { bits = 8; signed = true; rd = r 4; rn = r 5; shift = 8 })
    "mul_asp8s r4, r5, <<8";
  check (Instr.Add_asv (16, r 0, r 1, r 2)) "add_asv16 r0, r1, r2";
  check (Instr.Skm 7) "skm 7";
  check (Instr.Ldr { width = Instr.Byte; signed = false; rd = r 1; base = r 2; off = 3 })
    "ldrb r1, [r2, #3]"

let test_reg_names () =
  Alcotest.(check string) "sp" "sp" (Reg.to_string Reg.sp);
  Alcotest.(check string) "lr" "lr" (Reg.to_string Reg.lr);
  Alcotest.(check string) "pc" "pc" (Reg.to_string Reg.pc);
  Alcotest.(check string) "r4" "r4" (Reg.to_string (r 4));
  Alcotest.(check int) "allocatable excludes sp/lr/pc" 13
    (List.length Reg.allocatable);
  Alcotest.check_raises "r 16" (Invalid_argument "Reg.r") (fun () ->
      ignore (r 16))

let () =
  Alcotest.run "wn.isa"
    [
      ( "cond",
        [
          Alcotest.test_case "truth table" `Quick test_cond_table;
          Alcotest.test_case "codes" `Quick test_cond_codes;
        ] );
      ( "instr",
        [
          Alcotest.test_case "latencies" `Quick test_latencies;
          Alcotest.test_case "WN classification" `Quick test_wn_classification;
        ] );
      ( "encoding",
        [
          Alcotest.test_case "sample round trip" `Quick test_encode_roundtrip;
          Alcotest.test_case "range checks" `Quick test_encode_rejects_out_of_range;
          Alcotest.test_case "garbage rejected" `Quick test_decode_rejects_garbage;
          Alcotest.test_case "program round trip" `Quick test_program_roundtrip;
          Alcotest.test_case "decode validates fields" `Quick
            test_decode_validates_fields;
          Alcotest.test_case "negative immediates rejected" `Quick
            test_encode_rejects_negative;
          QCheck_alcotest.to_alcotest prop_codec_roundtrip;
          QCheck_alcotest.to_alcotest prop_decode_accepts_only_encodable;
        ] );
      ("asm fuzz", [ QCheck_alcotest.to_alcotest prop_assemble_roundtrip ]);
      ( "asm",
        [
          Alcotest.test_case "labels" `Quick test_assemble_labels;
          Alcotest.test_case "errors" `Quick test_assemble_errors;
          Alcotest.test_case "disassembly" `Quick test_disassembly_strings;
          Alcotest.test_case "register names" `Quick test_reg_names;
        ] );
    ]
