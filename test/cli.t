Every bad identifier or malformed flag must exit non-zero with a
one-line diagnostic on stderr — no tracebacks, no usage dumps, no
partial experiment output.  Cmdliner's CLI-error exit code is 124.

An unknown benchmark, on both the run and inject subcommands:

  $ wn run nope
  wn: unknown benchmark "nope" (try `wn list')
  [124]

  $ wn inject nope
  wn: unknown benchmark "nope" (try `wn list')
  [124]

An unknown experiment id names the ones it does know:

  $ wn figure nope
  wn: unknown experiment "nope"; know: table1, fig2, fig3, fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, area_power, ablation_memo, ablation_watchdog, ablation_energy, ablation_subword, ext_sqrt
  [124]

An unknown harvesting trace:

  $ wn run MatAdd --trace bogus
  wn: unknown trace "bogus" (know: rf, square, constant)
  [124]

An unknown stepping engine, on every subcommand that takes one:

  $ wn figure fig9 --engine bogus
  wn: unknown engine "bogus" (know: fast, block, compat)
  [124]

  $ wn inject MatAdd --engine bogus
  wn: unknown engine "bogus" (know: fast, block, compat)
  [124]

  $ wn fleet MatAdd --engine bogus
  wn: unknown engine "bogus" (know: fast, block, compat)
  [124]

Malformed sweep parameters.  A non-integer is rejected by the option
parser; a nonsensical integer by the command's own validation:

  $ wn inject MatAdd --points 0
  wn: --points must be >= 1 (got 0)
  [124]

  $ wn inject MatAdd --seed=-3
  wn: --seed must be >= 0 (got -3)
  [124]

  $ wn inject MatAdd --jobs 0
  wn: --jobs must be >= 1 (got 0)
  [124]

  $ wn inject MatAdd --keyframe-interval=-4
  wn: --keyframe-interval must be >= 0 (got -4)
  [124]

  $ wn curve MatAdd --points 0
  wn: --points must be >= 1 (got 0)
  [124]

The forward-progress verifier rejects nonsensical electrical
parameters the float converter accepts syntactically:

  $ wn verify MatAdd --cap 0
  wn: --cap must be positive
  [124]

  $ wn verify MatAdd --v-on 1.8 --v-off 2.3
  wn: need 0 < --v-off < --v-on
  [124]

  $ wn verify MatAdd --watchdog 0
  wn: --watchdog must be >= 1 (got 0)
  [124]

At the default 10 uF capacitor every suite region fits in one charge;
with a hopeless 0.01 uF capacitor the same benchmark must fail with
budget errors and a non-zero exit:

  $ wn verify MatAdd | tail -1
  clean (no diagnostics)

  $ wn verify MatAdd --cap 0.01 >/dev/null
  wn: forward-progress verification failed
  [124]

A tiny end-to-end success case to pin the exit-zero path (2 sampled
outage points on the smallest kernel, one system, skim off):

  $ wn inject MatAdd --points 2 --system clank --skim off | head -1
  fault sweep: MatAdd system=checkpoint-volatile build=precise bits=8

The stepping engine never shows in a report: the same sweep is
byte-identical under all three engines and any --jobs width:

  $ wn inject MatAdd --points 5 --system clank --jobs 1 --engine block > sweep-block.out
  $ wn inject MatAdd --points 5 --system clank --jobs 2 --engine fast > sweep-fast.out
  $ wn inject MatAdd --points 5 --system clank --jobs 1 --engine compat > sweep-compat.out
  $ cmp sweep-block.out sweep-fast.out && cmp sweep-block.out sweep-compat.out

The fleet service validates its descriptor before simulating, and an
unknown benchmark gets the same one-line diagnostic as `wn run`:

  $ wn fleet nope
  wn: unknown benchmark "nope" (try `wn list')
  [124]

  $ wn fleet Var --devices 0
  wn: --devices must be >= 1 (got 0)
  [124]

  $ wn fleet Var --trace bogus
  wn: unknown trace "bogus" (know: rf, square, constant)
  [124]

  $ wn fleet Var --sketch-capacity 2
  wn: --sketch-capacity must be >= 8 (got 2)
  [124]

  $ wn fleet Var --cap 0
  wn: --cap must be positive
  [124]

A tiny deterministic fleet (timing goes to stderr, so stdout is a
stable report):

  $ wn fleet MatAdd --devices 4 --batch 2 2>/dev/null
  fleet: 4 devices x 1 task(s) = 4 tasks
    configs (round-robin): MatAdd@8/checkpoint-volatile
    trace rf seed 7, cap 10.0 uF, batch 2, sketch k=256
    completed 4/4 (100.0%), 4 via skim (100.0%)
    quality NRMSE% mean 0.7034  sd 0.0147  min 0.6826  p50 0.7130  p90 0.7209  p99 0.7209  max 0.7209
    energy uJ/task mean 38.0285  sd 1.1398  min 36.1680  p50 38.5690  p90 39.2230  p99 39.2230  max 39.2230
    outages/task   mean 3.0000  sd 0.0000  min 3.0000  p50 3.0000  p90 3.0000  p99 3.0000  max 3.0000
    on-time %      mean 0.4923  sd 0.1477  min 0.3028  p50 0.4751  p90 0.7174  p99 0.7174  max 0.7174

The same fleet is byte-identical across engines and --jobs widths
(engine choice only affects simulation speed, never results):

  $ wn fleet MatAdd --devices 4 --batch 2 --engine block --jobs 1 2>/dev/null > fleet-block.out
  $ wn fleet MatAdd --devices 4 --batch 2 --engine fast --jobs 2 2>/dev/null > fleet-fast.out
  $ wn fleet MatAdd --devices 4 --batch 2 --engine compat --jobs 1 2>/dev/null > fleet-compat.out
  $ cmp fleet-block.out fleet-fast.out && cmp fleet-block.out fleet-compat.out
