Every bad identifier or malformed flag must exit non-zero with a
one-line diagnostic on stderr — no tracebacks, no usage dumps, no
partial experiment output.  Cmdliner's CLI-error exit code is 124.

An unknown benchmark, on both the run and inject subcommands:

  $ wn run nope
  wn: unknown benchmark "nope" (try `wn list')
  [124]

  $ wn inject nope
  wn: unknown benchmark "nope" (try `wn list')
  [124]

An unknown experiment id names the ones it does know:

  $ wn figure nope
  wn: unknown experiment "nope"; know: table1, fig2, fig3, fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, area_power, ablation_memo, ablation_watchdog, ablation_energy, ablation_subword, ext_sqrt
  [124]

An unknown harvesting trace:

  $ wn run MatAdd --trace bogus
  wn: unknown trace "bogus" (know: rf, square, constant)
  [124]

Malformed sweep parameters.  A non-integer is rejected by the option
parser; a nonsensical integer by the command's own validation:

  $ wn inject MatAdd --points 0
  wn: --points must be >= 1 (got 0)
  [124]

  $ wn inject MatAdd --seed=-3
  wn: --seed must be >= 0 (got -3)
  [124]

  $ wn inject MatAdd --jobs 0
  wn: --jobs must be >= 1 (got 0)
  [124]

  $ wn inject MatAdd --keyframe-interval=-4
  wn: --keyframe-interval must be >= 0 (got -4)
  [124]

  $ wn curve MatAdd --points 0
  wn: --points must be >= 1 (got 0)
  [124]

The forward-progress verifier rejects nonsensical electrical
parameters the float converter accepts syntactically:

  $ wn verify MatAdd --cap 0
  wn: --cap must be positive
  [124]

  $ wn verify MatAdd --v-on 1.8 --v-off 2.3
  wn: need 0 < --v-off < --v-on
  [124]

  $ wn verify MatAdd --watchdog 0
  wn: --watchdog must be >= 1 (got 0)
  [124]

At the default 10 uF capacitor every suite region fits in one charge;
with a hopeless 0.01 uF capacitor the same benchmark must fail with
budget errors and a non-zero exit:

  $ wn verify MatAdd | tail -1
  clean (no diagnostics)

  $ wn verify MatAdd --cap 0.01 >/dev/null
  wn: forward-progress verification failed
  [124]

A tiny end-to-end success case to pin the exit-zero path (2 sampled
outage points on the smallest kernel, one system, skim off):

  $ wn inject MatAdd --points 2 --system clank --skim off | head -1
  fault sweep: MatAdd system=checkpoint-volatile build=precise bits=8
