Every bad identifier or malformed flag must exit non-zero with a
one-line diagnostic on stderr — no tracebacks, no usage dumps, no
partial experiment output.  Cmdliner's CLI-error exit code is 124.

An unknown benchmark, on both the run and inject subcommands:

  $ wn run nope
  wn: unknown benchmark "nope" (try `wn list')
  [124]

  $ wn inject nope
  wn: unknown benchmark "nope" (try `wn list')
  [124]

An unknown experiment id names the ones it does know:

  $ wn figure nope
  wn: unknown experiment "nope"; know: table1, fig2, fig3, fig9, fig10, fig11, fig12, fig13, fig14, fig15, fig16, fig17, area_power, ablation_memo, ablation_watchdog, ablation_energy, ablation_subword, ext_sqrt
  [124]

An unknown harvesting trace:

  $ wn run MatAdd --trace bogus
  wn: unknown trace "bogus" (know: rf, square, constant)
  [124]

An unknown stepping engine, on every subcommand that takes one:

  $ wn figure fig9 --engine bogus
  wn: unknown engine "bogus" (know: fast, block, compat)
  [124]

  $ wn inject MatAdd --engine bogus
  wn: unknown engine "bogus" (know: fast, block, compat)
  [124]

  $ wn fleet MatAdd --engine bogus
  wn: unknown engine "bogus" (know: fast, block, compat)
  [124]

Malformed sweep parameters.  A non-integer is rejected by the option
parser; a nonsensical integer by the command's own validation:

  $ wn inject MatAdd --points 0
  wn: --points must be >= 1 (got 0)
  [124]

  $ wn inject MatAdd --seed=-3
  wn: --seed must be >= 0 (got -3)
  [124]

  $ wn inject MatAdd --jobs 0
  wn: --jobs must be >= 1 (got 0)
  [124]

  $ wn inject MatAdd --keyframe-interval=-4
  wn: --keyframe-interval must be >= 0 (got -4)
  [124]

  $ wn curve MatAdd --points 0
  wn: --points must be >= 1 (got 0)
  [124]

The forward-progress verifier rejects nonsensical electrical
parameters the float converter accepts syntactically:

  $ wn verify MatAdd --cap 0
  wn: --cap must be positive
  [124]

  $ wn verify MatAdd --v-on 1.8 --v-off 2.3
  wn: need 0 < --v-off < --v-on
  [124]

  $ wn verify MatAdd --watchdog 0
  wn: --watchdog must be >= 1 (got 0)
  [124]

At the default 10 uF capacitor every suite region fits in one charge;
with a hopeless 0.01 uF capacitor the same benchmark must fail with
budget errors and a non-zero exit:

  $ wn verify MatAdd | tail -1
  clean (no diagnostics)

  $ wn verify MatAdd --cap 0.01 >/dev/null
  wn: forward-progress verification failed
  [124]

A tiny end-to-end success case to pin the exit-zero path (2 sampled
outage points on the smallest kernel, one system, skim off):

  $ wn inject MatAdd --points 2 --system clank --skim off | head -1
  fault sweep: MatAdd system=checkpoint-volatile build=precise bits=8

The stepping engine never shows in a report: the same sweep is
byte-identical under all three engines and any --jobs width:

  $ wn inject MatAdd --points 5 --system clank --jobs 1 --engine block > sweep-block.out
  $ wn inject MatAdd --points 5 --system clank --jobs 2 --engine fast > sweep-fast.out
  $ wn inject MatAdd --points 5 --system clank --jobs 1 --engine compat > sweep-compat.out
  $ cmp sweep-block.out sweep-fast.out && cmp sweep-block.out sweep-compat.out

So is the keyframe configuration: the auto-derived interval (the
default), an explicit --keyframe-interval override, keyframes off, and
full-copy frames all replay to the same report:

  $ wn inject MatAdd --points 5 --system clank > sweep-auto.out
  $ wn inject MatAdd --points 5 --system clank --keyframe-interval 0 > sweep-kf0.out
  $ wn inject MatAdd --points 5 --system clank --keyframe-interval 97 > sweep-kf97.out
  $ wn inject MatAdd --points 5 --system clank --full-keyframes > sweep-full.out
  $ cmp sweep-auto.out sweep-kf0.out && cmp sweep-auto.out sweep-kf97.out
  $ cmp sweep-auto.out sweep-full.out

The fleet service validates its descriptor before simulating, and an
unknown benchmark gets the same one-line diagnostic as `wn run`:

  $ wn fleet nope
  wn: unknown benchmark "nope" (try `wn list')
  [124]

  $ wn fleet Var --devices 0
  wn: --devices must be >= 1 (got 0)
  [124]

  $ wn fleet Var --trace bogus
  wn: unknown trace "bogus" (know: rf, square, constant)
  [124]

  $ wn fleet Var --sketch-capacity 2
  wn: --sketch-capacity must be >= 8 (got 2)
  [124]

  $ wn fleet Var --cap 0
  wn: --cap must be positive
  [124]

A tiny deterministic fleet (timing goes to stderr, so stdout is a
stable report):

  $ wn fleet MatAdd --devices 4 --batch 2 2>/dev/null
  fleet: 4 devices x 1 task(s) = 4 tasks
    configs (round-robin): MatAdd@8/checkpoint-volatile
    trace rf seed 7, cap 10.0 uF, batch 2, sketch k=256
    completed 4/4 (100.0%), 4 via skim (100.0%)
    quality NRMSE% mean 0.8409  sd 0.0073  min 0.8317  p50 0.8402  p90 0.8521  p99 0.8521  max 0.8521
    energy uJ/task mean 15.0930  sd 0.0000  min 15.0930  p50 15.0930  p90 15.0930  p99 15.0930  max 15.0930
    outages/task   mean 1.0000  sd 0.0000  min 1.0000  p50 1.0000  p90 1.0000  p99 1.0000  max 1.0000
    on-time %      mean 0.9567  sd 0.6843  min 0.2347  p50 1.0481  p90 2.0285  p99 2.0285  max 2.0285

The same fleet is byte-identical across engines and --jobs widths
(engine choice only affects simulation speed, never results):

  $ wn fleet MatAdd --devices 4 --batch 2 --engine block --jobs 1 2>/dev/null > fleet-block.out
  $ wn fleet MatAdd --devices 4 --batch 2 --engine fast --jobs 2 2>/dev/null > fleet-fast.out
  $ wn fleet MatAdd --devices 4 --batch 2 --engine compat --jobs 1 2>/dev/null > fleet-compat.out
  $ cmp fleet-block.out fleet-fast.out && cmp fleet-block.out fleet-compat.out

The pass pipeline behind every build is explicit and named.  The
compile subcommand lists it, compiles with or without the optimizer,
and dumps the program as it leaves any pass:

  $ wn compile --list-passes
  lower-anytime
  constfold
  strength-reduce
  licm
  codegen
  addr-cse

  $ wn compile MatAdd
  52 instructions, 208 bytes of code, 49152 bytes of data

  $ wn compile MatAdd --no-opt
  76 instructions, 304 bytes of code, 49152 bytes of data

  $ wn compile
  wn: need a BENCH argument or --file
  [124]

  $ wn compile MatAdd --dump-after frobnicate
  wn: dump-after: unknown or disabled pass "frobnicate"; this build runs: lower-anytime, constfold, strength-reduce, licm, codegen, addr-cse
  [124]

Strength reduction rewrites affine indices into running byte offsets
(the @ marker), visible in the per-pass dump:

  $ cat > dot.wnc <<WNC
  > uint32 a[8];
  > uint32 b[8];
  > uint32 acc[1];
  > 
  > kernel dot() {
  >   for (i = 0; i < 8; i += 1) {
  >     acc[0] = acc[0] + a[i] * b[i];
  >   }
  > }
  > WNC

  $ wn compile --file dot.wnc --dump-after strength-reduce 2>/dev/null
  ; after pass strength-reduce
  for (__sr_iv0 = 0; __sr_iv0 < 32; __sr_iv0 += 4) {
    acc[0] = (acc[0] + (a[@__sr_iv0] * b[@__sr_iv0]));
  }

Strict mode reports the first failing pass with that pass's complete
findings, not just the first one:

  $ cat > rmw.wnc <<WNC
  > uint32 x[8];
  > uint32 y[8];
  > 
  > kernel bump() {
  >   for (i = 0; i < 8; i += 1) {
  >     x[i] = x[i] + 1;
  >     y[i] = y[i] + 2;
  >   }
  > }
  > WNC

  $ wn compile --file rmw.wnc --strict 2>&1
  wn: pass codegen: error[war-hazard] pc 6 (x): store to x depends on a value loaded from x with no skim latched: after an outage the re-executed read sees the updated value (non-idempotent read-modify-write)
      error[war-hazard] pc 11 (y): store to y depends on a value loaded from y with no skim latched: after an outage the re-executed read sees the updated value (non-idempotent read-modify-write)
      2 diagnostics (2 errors, 0 warnings, 0 notes)
  [124]

Dynamic instruction counts are deterministic, so they are pinnable —
the CI optimizer gate compares them against the committed baseline:

  $ wn insn MatAdd
  Benchmark       precise      anytime   anytime-O0   Insn %    saved
  MatAdd            20485        40980        65556   10.00%   37.49%
  fig10:executor_clank_shadowmap: 111513 retired
