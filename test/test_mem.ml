(* Tests for wn.mem: byte-addressable little-endian memory. *)

open Wn_mem

let test_widths_little_endian () =
  let m = Memory.create ~size:64 in
  Memory.write32 m 0 0xDEADBEEF;
  Alcotest.(check int) "byte 0 is LSB" 0xEF (Memory.read8 m 0);
  Alcotest.(check int) "byte 3 is MSB" 0xDE (Memory.read8 m 3);
  Alcotest.(check int) "low half" 0xBEEF (Memory.read16 m 0);
  Alcotest.(check int) "high half" 0xDEAD (Memory.read16 m 2);
  Alcotest.(check int) "word" 0xDEADBEEF (Memory.read32 m 0);
  Memory.write16 m 8 0x8001;
  Alcotest.(check int) "u16" 0x8001 (Memory.read16 m 8);
  Alcotest.(check int) "s16" (-32767) (Memory.read16_signed m 8);
  Memory.write8 m 12 0xFF;
  Alcotest.(check int) "s8" (-1) (Memory.read8_signed m 12)

let test_truncation () =
  let m = Memory.create ~size:16 in
  Memory.write8 m 0 0x1FF;
  Alcotest.(check int) "byte truncates" 0xFF (Memory.read8 m 0);
  Memory.write16 m 2 0x12345;
  Alcotest.(check int) "half truncates" 0x2345 (Memory.read16 m 2);
  Memory.write32 m 4 (-1);
  Alcotest.(check int) "word wraps" 0xFFFFFFFF (Memory.read32 m 4)

let test_bounds () =
  let m = Memory.create ~size:8 in
  Alcotest.check_raises "read32 past end"
    (Invalid_argument "Memory.read32: address 5 out of bounds") (fun () ->
      ignore (Memory.read32 m 5));
  Alcotest.check_raises "negative address"
    (Invalid_argument "Memory.read8: address -1 out of bounds") (fun () ->
      ignore (Memory.read8 m (-1)))

let test_snapshot_restore () =
  let m = Memory.create ~size:32 in
  Memory.write32 m 0 42;
  let snap = Memory.snapshot m in
  Memory.write32 m 0 99;
  Memory.restore m snap;
  Alcotest.(check int) "restored" 42 (Memory.read32 m 0);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Memory.restore: size mismatch") (fun () ->
      Memory.restore m (Bytes.create 4))

let test_digest () =
  let m = Memory.create ~size:64 in
  Memory.write32 m 0 0xDEADBEEF;
  Memory.write16 m 40 0x1234;
  Alcotest.(check string) "digest = digest of the snapshot image"
    (Digest.to_hex (Digest.bytes (Memory.snapshot m)))
    (Digest.to_hex (Memory.digest m));
  let before = Memory.digest m in
  Memory.write8 m 63 1;
  if Digest.equal before (Memory.digest m) then
    Alcotest.fail "digest must see every byte of the store";
  (* Reading the digest must not copy-on-write or otherwise detach the
     backing store. *)
  Alcotest.(check int) "store still live" 0xDEADBEEF (Memory.read32 m 0)

let test_stats () =
  let m = Memory.create ~size:32 in
  ignore (Memory.read8 m 0);
  ignore (Memory.read32 m 4);
  Memory.write16 m 8 7;
  Alcotest.(check (pair int int)) "counts" (2, 1) (Memory.read_stats m);
  Memory.reset_stats m;
  Alcotest.(check (pair int int)) "reset" (0, 0) (Memory.read_stats m)

let test_region_blit_fill () =
  let m = Memory.create ~size:32 in
  Memory.blit_in m ~addr:4 (Bytes.of_string "\x01\x02\x03");
  Alcotest.(check int) "blit" 0x030201 (Memory.read32 m 4 land 0xFFFFFF);
  Alcotest.(check string) "region" "\x01\x02\x03"
    (Bytes.to_string (Memory.region m ~addr:4 ~len:3));
  Memory.fill m ~addr:4 ~len:3 0xAA;
  Alcotest.(check int) "fill" 0xAA (Memory.read8 m 5);
  Memory.clear m;
  Alcotest.(check int) "clear" 0 (Memory.read32 m 4)

let prop_rw_roundtrip =
  QCheck.Test.make ~count:300 ~name:"write32/read32 round-trips"
    QCheck.(pair (int_bound 28) (int_bound 0xFFFFFFF))
    (fun (addr, v) ->
      let m = Memory.create ~size:32 in
      Memory.write32 m addr v;
      Memory.read32 m addr = v)

let () =
  Alcotest.run "wn.mem"
    [
      ( "memory",
        [
          Alcotest.test_case "little endian widths" `Quick test_widths_little_endian;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "digest" `Quick test_digest;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "region/blit/fill" `Quick test_region_blit_fill;
          QCheck_alcotest.to_alcotest prop_rw_roundtrip;
        ] );
    ]
