(* Tests for wn.mem: byte-addressable little-endian memory. *)

open Wn_mem

let test_widths_little_endian () =
  let m = Memory.create ~size:64 in
  Memory.write32 m 0 0xDEADBEEF;
  Alcotest.(check int) "byte 0 is LSB" 0xEF (Memory.read8 m 0);
  Alcotest.(check int) "byte 3 is MSB" 0xDE (Memory.read8 m 3);
  Alcotest.(check int) "low half" 0xBEEF (Memory.read16 m 0);
  Alcotest.(check int) "high half" 0xDEAD (Memory.read16 m 2);
  Alcotest.(check int) "word" 0xDEADBEEF (Memory.read32 m 0);
  Memory.write16 m 8 0x8001;
  Alcotest.(check int) "u16" 0x8001 (Memory.read16 m 8);
  Alcotest.(check int) "s16" (-32767) (Memory.read16_signed m 8);
  Memory.write8 m 12 0xFF;
  Alcotest.(check int) "s8" (-1) (Memory.read8_signed m 12)

let test_truncation () =
  let m = Memory.create ~size:16 in
  Memory.write8 m 0 0x1FF;
  Alcotest.(check int) "byte truncates" 0xFF (Memory.read8 m 0);
  Memory.write16 m 2 0x12345;
  Alcotest.(check int) "half truncates" 0x2345 (Memory.read16 m 2);
  Memory.write32 m 4 (-1);
  Alcotest.(check int) "word wraps" 0xFFFFFFFF (Memory.read32 m 4)

let test_bounds () =
  let m = Memory.create ~size:8 in
  Alcotest.check_raises "read32 past end"
    (Invalid_argument "Memory.read32: address 5 out of bounds") (fun () ->
      ignore (Memory.read32 m 5));
  Alcotest.check_raises "negative address"
    (Invalid_argument "Memory.read8: address -1 out of bounds") (fun () ->
      ignore (Memory.read8 m (-1)))

let test_snapshot_restore () =
  let m = Memory.create ~size:32 in
  Memory.write32 m 0 42;
  let snap = Memory.snapshot m in
  Memory.write32 m 0 99;
  Memory.restore m snap;
  Alcotest.(check int) "restored" 42 (Memory.read32 m 0);
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Memory.restore: size mismatch") (fun () ->
      Memory.restore m (Bytes.create 4))

let test_digest () =
  (* The digest is a combine of per-page hashes, so its hex is not the
     flat MD5 of the contents; the contract is equal contents ⇔ equal
     digest, across memories and write histories. *)
  let m = Memory.create ~size:64 in
  Memory.write32 m 0 0xDEADBEEF;
  Memory.write16 m 40 0x1234;
  let twin = Memory.create ~size:64 in
  Memory.write16 m 40 0x1234;
  Memory.write16 twin 40 0x1234;
  Memory.write32 twin 0 0xDEADBEEF;
  Alcotest.(check string) "equal contents, equal digest"
    (Digest.to_hex (Memory.digest twin))
    (Digest.to_hex (Memory.digest m));
  let before = Memory.digest m in
  Memory.write8 m 63 1;
  if Digest.equal before (Memory.digest m) then
    Alcotest.fail "digest must see every byte of the store";
  (* Reading the digest must not copy-on-write or otherwise detach the
     backing store. *)
  Alcotest.(check int) "store still live" 0xDEADBEEF (Memory.read32 m 0);
  (* Multi-page memory: a write in the last, short page changes it. *)
  let big = Memory.create ~size:(Memory.page_bytes * 3 + 5) in
  let d0 = Memory.digest big in
  Memory.write8 big ((Memory.page_bytes * 3) + 4) 7;
  if Digest.equal d0 (Memory.digest big) then
    Alcotest.fail "digest must see the trailing partial page"

let test_capture_restore () =
  let size = (Memory.page_bytes * 2) + 17 in
  let m = Memory.create ~size in
  Memory.write32 m 0 42;
  Memory.write8 m (size - 1) 9;
  let base = Memory.capture m in
  Alcotest.(check int) "image size" size (Memory.image_size base);
  Memory.write32 m 0 99;
  let delta = Memory.capture m in
  Memory.write32 m Memory.page_bytes 1234;
  Memory.restore_image m base;
  Alcotest.(check int) "base restored" 42 (Memory.read32 m 0);
  Alcotest.(check int) "last byte" 9 (Memory.read8 m (size - 1));
  Alcotest.(check bool) "matches base" true (Memory.matches_image m base);
  Alcotest.(check bool) "not delta" false (Memory.matches_image m delta);
  Alcotest.(check string) "image digest agrees with memory digest"
    (Digest.to_hex (Memory.digest m))
    (Digest.to_hex (Memory.image_digest base));
  Memory.restore_image m delta;
  Alcotest.(check int) "delta restored" 99 (Memory.read32 m 0);
  Alcotest.(check int) "untouched page survives" 0
    (Memory.read32 m Memory.page_bytes);
  let other = Memory.create ~size:Memory.page_bytes in
  Alcotest.check_raises "size mismatch"
    (Invalid_argument "Memory.restore: size mismatch") (fun () ->
      Memory.restore_image other base)

let test_stats () =
  let m = Memory.create ~size:32 in
  ignore (Memory.read8 m 0);
  ignore (Memory.read32 m 4);
  Memory.write16 m 8 7;
  Alcotest.(check (pair int int)) "counts" (2, 1) (Memory.read_stats m);
  Memory.reset_stats m;
  Alcotest.(check (pair int int)) "reset" (0, 0) (Memory.read_stats m)

let test_region_blit_fill () =
  let m = Memory.create ~size:32 in
  Memory.blit_in m ~addr:4 (Bytes.of_string "\x01\x02\x03");
  Alcotest.(check int) "blit" 0x030201 (Memory.read32 m 4 land 0xFFFFFF);
  Alcotest.(check string) "region" "\x01\x02\x03"
    (Bytes.to_string (Memory.region m ~addr:4 ~len:3));
  Memory.fill m ~addr:4 ~len:3 0xAA;
  Alcotest.(check int) "fill" 0xAA (Memory.read8 m 5);
  Memory.clear m;
  Alcotest.(check int) "clear" 0 (Memory.read32 m 4)

let prop_rw_roundtrip =
  QCheck.Test.make ~count:300 ~name:"write32/read32 round-trips"
    QCheck.(pair (int_bound 28) (int_bound 0xFFFFFFF))
    (fun (addr, v) ->
      let m = Memory.create ~size:32 in
      Memory.write32 m addr v;
      Memory.read32 m addr = v)

(* ---- paged memory vs a flat-Bytes reference model ----
   The dirty-page machinery must be invisible: any write sequence,
   interleaved with digests and captures (which mutate the tracking
   state), leaves the same contents as plain byte stores, the
   incremental digest equals a from-scratch digest, and delta captures
   round-trip bit-identically to full ones. *)

type op =
  | W8 of int * int
  | W16 of int * int
  | W32 of int * int
  | Blit of int * string
  | Fill of int * int * int

(* Three pages plus a short tail page — exercises page straddles and
   the partial final page. *)
let model_size = (3 * Memory.page_bytes) + 29

let gen_op =
  let open QCheck.Gen in
  frequency
    [
      (3, map2 (fun a v -> W8 (a, v)) (int_bound (model_size - 1)) (int_bound 0xFF));
      (3, map2 (fun a v -> W16 (a, v)) (int_bound (model_size - 2)) (int_bound 0xFFFF));
      ( 3,
        map2
          (fun a v -> W32 (a, v))
          (int_bound (model_size - 4))
          (int_bound 0xFFFFFFFF) );
      ( 1,
        map2
          (fun a s -> Blit (a, s))
          (int_bound (model_size - 300))
          (string_size ~gen:char (1 -- 300)) );
      ( 1,
        map3
          (fun a l v -> Fill (a, l, v))
          (int_bound (model_size - 300))
          (int_bound 300) (int_bound 0xFF) );
    ]

let print_op = function
  | W8 (a, v) -> Printf.sprintf "W8(%d,%#x)" a v
  | W16 (a, v) -> Printf.sprintf "W16(%d,%#x)" a v
  | W32 (a, v) -> Printf.sprintf "W32(%d,%#x)" a v
  | Blit (a, s) -> Printf.sprintf "Blit(%d,%d bytes)" a (String.length s)
  | Fill (a, l, v) -> Printf.sprintf "Fill(%d,%d,%#x)" a l v

let arb_ops =
  QCheck.make
    ~print:(fun ops -> String.concat "; " (List.map print_op ops))
    QCheck.Gen.(list_size (int_bound 60) gen_op)

let apply_mem m = function
  | W8 (a, v) -> Memory.write8 m a v
  | W16 (a, v) -> Memory.write16 m a v
  | W32 (a, v) -> Memory.write32 m a v
  | Blit (a, s) -> Memory.blit_in m ~addr:a (Bytes.of_string s)
  | Fill (a, l, v) -> Memory.fill m ~addr:a ~len:l v

let apply_ref b = function
  | W8 (a, v) -> Bytes.set b a (Char.chr (v land 0xFF))
  | W16 (a, v) -> Bytes.set_uint16_le b a (v land 0xFFFF)
  | W32 (a, v) ->
      Bytes.set_uint16_le b a (v land 0xFFFF);
      Bytes.set_uint16_le b (a + 2) ((v lsr 16) land 0xFFFF)
  | Blit (a, s) -> Bytes.blit_string s 0 b a (String.length s)
  | Fill (a, l, v) -> Bytes.fill b a l (Char.chr (v land 0xFF))

let digest_of_contents b =
  let fresh = Memory.create ~size:(Bytes.length b) in
  Memory.blit_in fresh ~addr:0 b;
  Memory.digest fresh

let prop_model_equiv =
  QCheck.Test.make ~count:200 ~name:"paged ops == flat reference model" arb_ops
    (fun ops ->
      let m = Memory.create ~size:model_size in
      let b = Bytes.make model_size '\000' in
      List.iter
        (fun op ->
          apply_mem m op;
          apply_ref b op)
        ops;
      Bytes.equal (Memory.region m ~addr:0 ~len:model_size) b
      && Memory.matches m b)

let prop_incremental_digest =
  QCheck.Test.make ~count:200
    ~name:"incremental digest == from-scratch digest" arb_ops (fun ops ->
      let m = Memory.create ~size:model_size in
      let b = Bytes.make model_size '\000' in
      let ok = ref true in
      List.iteri
        (fun i op ->
          apply_mem m op;
          apply_ref b op;
          (* Captures interleave with digests: both consume the dirty
             bits, through different paths. *)
          if i mod 7 = 3 then ignore (Memory.capture m);
          if i mod 5 = 2 && not (Digest.equal (Memory.digest m) (digest_of_contents b))
          then ok := false)
        ops;
      !ok && Digest.equal (Memory.digest m) (digest_of_contents b))

let prop_delta_roundtrip =
  QCheck.Test.make ~count:200
    ~name:"delta capture/restore == full capture at random points" arb_ops
    (fun ops ->
      let m = Memory.create ~size:model_size in
      let b = Bytes.make model_size '\000' in
      let recorded = ref [] in
      List.iteri
        (fun i op ->
          apply_mem m op;
          apply_ref b op;
          if i mod 6 = 5 then
            recorded :=
              (Memory.capture m, Memory.capture_full m, Bytes.copy b)
              :: !recorded)
        ops;
      List.for_all
        (fun (delta, full, contents) ->
          Memory.restore_image m delta;
          Memory.matches m contents
          && Memory.matches_image m full
          && Digest.equal (Memory.image_digest delta) (Memory.image_digest full)
          && Digest.equal (Memory.digest m) (digest_of_contents contents))
        !recorded)

let () =
  Alcotest.run "wn.mem"
    [
      ( "memory",
        [
          Alcotest.test_case "little endian widths" `Quick test_widths_little_endian;
          Alcotest.test_case "truncation" `Quick test_truncation;
          Alcotest.test_case "bounds" `Quick test_bounds;
          Alcotest.test_case "snapshot/restore" `Quick test_snapshot_restore;
          Alcotest.test_case "digest" `Quick test_digest;
          Alcotest.test_case "capture/restore images" `Quick test_capture_restore;
          Alcotest.test_case "stats" `Quick test_stats;
          Alcotest.test_case "region/blit/fill" `Quick test_region_blit_fill;
          QCheck_alcotest.to_alcotest prop_rw_roundtrip;
          QCheck_alcotest.to_alcotest prop_model_equiv;
          QCheck_alcotest.to_alcotest prop_incremental_digest;
          QCheck_alcotest.to_alcotest prop_delta_roundtrip;
        ] );
    ]
