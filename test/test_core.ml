(* Tests for wn.core (the evaluation drivers) and wn.area (the Section
   V-D analytical model). *)

open Wn_workloads

let scale = Workload.Small

(* ---------------- Curves (Figure 9 machinery) ---------------- *)

let test_curve_matadd () =
  let w = Suite.find scale "MatAdd" in
  let c = Wn_core.Curves.runtime_quality ~seed:1 ~bits:8 w in
  Alcotest.(check string) "workload" "MatAdd" c.Wn_core.Curves.workload;
  if List.length c.Wn_core.Curves.points < 10 then
    Alcotest.fail "too few curve points";
  (* Provisioned SWV reaches the precise result. *)
  Alcotest.(check (float 1e-9)) "final error zero" 0.0 c.Wn_core.Curves.final_nrmse;
  (* Anytime takes roughly 2x the baseline (4 planes at ~1/2 cost). *)
  let ratio =
    float_of_int c.Wn_core.Curves.anytime_cycles
    /. float_of_int c.Wn_core.Curves.baseline_cycles
  in
  if ratio < 1.5 || ratio > 3.0 then Alcotest.failf "odd anytime ratio %.2f" ratio;
  (* Error at the last point is no larger than at the first. *)
  let pts = c.Wn_core.Curves.points in
  let first = (List.hd pts).Wn_core.Curves.nrmse in
  let last = (List.nth pts (List.length pts - 1)).Wn_core.Curves.nrmse in
  if last > first then Alcotest.fail "error grew over the run"

let test_curve_provisioning_study () =
  (* Figure 14: unprovisioned addition plateaus above zero error while
     provisioned converges. *)
  let w = Suite.find scale "MatAdd" in
  let prov = Wn_core.Curves.runtime_quality ~seed:2 ~bits:8 ~provisioned:true w in
  let unprov =
    Wn_core.Curves.runtime_quality ~seed:2 ~bits:8 ~provisioned:false w
  in
  Alcotest.(check (float 1e-9)) "provisioned exact" 0.0
    prov.Wn_core.Curves.final_nrmse;
  if unprov.Wn_core.Curves.final_nrmse <= 0.0 then
    Alcotest.fail "unprovisioned should not reach the precise result"

let test_curve_vector_loads_study () =
  (* Figure 12: vectorizing the subword loads brings the final (and so
     every) output earlier, at equal quality. *)
  let w = Suite.find scale "MatMul" in
  let plain = Wn_core.Curves.runtime_quality ~seed:3 ~bits:8 w in
  let vec = Wn_core.Curves.runtime_quality ~vector_loads:true ~seed:3 ~bits:8 w in
  if vec.Wn_core.Curves.anytime_cycles >= plain.Wn_core.Curves.anytime_cycles then
    Alcotest.fail "vectorized loads were not faster";
  Alcotest.(check (float 1e-9)) "still exact" 0.0 vec.Wn_core.Curves.final_nrmse

(* ---------------- Earliest (Figures 13/15 machinery) -------------- *)

let test_earliest_monotone_bits () =
  let w = Suite.find scale "Conv2d" in
  let runs = List.map (fun bits -> (bits, Wn_core.Earliest.earliest ~bits w)) [ 1; 2; 4; 8 ] in
  (* Smaller subwords: earlier (bigger speedup) but rougher. *)
  let rec pairwise = function
    | (b1, r1) :: ((b2, r2) :: _ as rest) ->
        if Wn_core.Earliest.speedup r1 <= Wn_core.Earliest.speedup r2 then
          Alcotest.failf "%d-bit not faster than %d-bit" b1 b2;
        if r1.Wn_core.Earliest.nrmse < r2.Wn_core.Earliest.nrmse then
          Alcotest.failf "%d-bit more accurate than %d-bit" b1 b2;
        pairwise rest
    | _ -> ()
  in
  pairwise runs;
  List.iter
    (fun (bits, r) ->
      if Wn_core.Earliest.speedup r <= 1.0 then
        Alcotest.failf "%d-bit earliest output not faster than baseline" bits)
    runs

let test_memoization_study () =
  (* Figure 13: memoization + zero skipping improve all three builds,
     most for the smallest subwords. *)
  let w = Suite.find scale "Conv2d" in
  let base4 = Wn_core.Earliest.earliest ~bits:4 w in
  let memo4 = Wn_core.Earliest.earliest ~memo_entries:16 ~zero_skip:true ~bits:4 w in
  let base8 = Wn_core.Earliest.earliest ~bits:8 w in
  let memo8 = Wn_core.Earliest.earliest ~memo_entries:16 ~zero_skip:true ~bits:8 w in
  let precisem = Wn_core.Earliest.precise_with ~memo_entries:16 ~zero_skip:true w in
  let s = Wn_core.Earliest.speedup in
  if s memo4 <= s base4 then Alcotest.fail "memoization did not help 4-bit";
  if s memo8 <= s base8 then Alcotest.fail "memoization did not help 8-bit";
  if s precisem <= 1.0 then Alcotest.fail "memoization did not help precise";
  let gain4 = s memo4 /. s base4 and gain8 = s memo8 /. s base8 in
  if gain4 < gain8 then
    Alcotest.fail "smaller subwords should gain more from memoization";
  (* Quality is untouched by memoization (it is a latency shortcut). *)
  Alcotest.(check (float 1e-6)) "same output quality" base4.Wn_core.Earliest.nrmse
    memo4.Wn_core.Earliest.nrmse

(* ---------------- Intermittent (Figures 10/11 machinery) ---------- *)

let test_intermittent_var () =
  let w = Suite.find scale "Var" in
  let setup =
    { Wn_core.Intermittent.default_setup with n_traces = 2; samples_per_run = 2 }
  in
  let clank = Wn_core.Intermittent.run ~setup ~system:Wn_core.Intermittent.Clank ~bits:4 w in
  let nvp = Wn_core.Intermittent.run ~setup ~system:Wn_core.Intermittent.Nvp ~bits:4 w in
  if clank.Wn_core.Intermittent.speedup <= 1.0 then
    Alcotest.failf "no WN speedup on Clank (%.2f)" clank.Wn_core.Intermittent.speedup;
  if nvp.Wn_core.Intermittent.speedup <= 1.0 then
    Alcotest.failf "no WN speedup on NVP (%.2f)" nvp.Wn_core.Intermittent.speedup;
  (* The paper's headline relationship — bigger wins on the
     checkpointing volatile system than on NVP — holds in aggregate;
     this tiny 2-trace setup allows for per-workload noise. *)
  if clank.Wn_core.Intermittent.speedup < nvp.Wn_core.Intermittent.speedup *. 0.75
  then
    Alcotest.failf "Clank speedup (%.2f) far below NVP (%.2f)"
      clank.Wn_core.Intermittent.speedup nvp.Wn_core.Intermittent.speedup;
  if clank.Wn_core.Intermittent.skim_rate <= 0.5 then
    Alcotest.fail "most intermittent tasks should finish via skim";
  if clank.Wn_core.Intermittent.outages_per_task <= 0.0 then
    Alcotest.fail "tasks saw no outages";
  if clank.Wn_core.Intermittent.nrmse <= 0.0 then
    Alcotest.fail "committed outputs should be approximate (nonzero error)"

let test_intermittent_sample_accounting () =
  (* Pairing: every (trace, invocation, sample) index must be measured
     exactly once — the single-pass lockstep walk that replaced the
     O(n²) List.nth pairing has to account for all of them. *)
  let w = Suite.find scale "Var" in
  let setup =
    {
      Wn_core.Intermittent.default_setup with
      n_traces = 2;
      invocations = 2;
      samples_per_run = 3;
    }
  in
  let r =
    Wn_core.Intermittent.run ~setup ~system:Wn_core.Intermittent.Clank ~bits:4 w
  in
  Alcotest.(check int) "2 traces x 2 invocations x 3 samples" 12
    r.Wn_core.Intermittent.samples

(* ---------------- Sampling (Figures 3/17 machinery) --------------- *)

let test_glucose_study () =
  let g = Wn_core.Sampling.glucose_study scale in
  Alcotest.(check int) "two dips" 2 g.Wn_core.Sampling.total_dips;
  Alcotest.(check int) "anytime catches both" 2 g.Wn_core.Sampling.anytime_detected;
  if g.Wn_core.Sampling.sampled_detected >= g.Wn_core.Sampling.anytime_detected then
    Alcotest.fail "sampling should miss events anytime catches";
  (* Mean error within the paper's ballpark (they report 7.5%, ISO
     allows 20%). *)
  if g.Wn_core.Sampling.anytime_mean_err_pct > 20.0 then
    Alcotest.failf "anytime glucose error too high: %.1f%%"
      g.Wn_core.Sampling.anytime_mean_err_pct;
  if g.Wn_core.Sampling.cost_ratio <= 1.0 then
    Alcotest.fail "precise must cost more than the anytime first pass"

let test_var_sampling_study () =
  let v = Wn_core.Sampling.var_study ~datasets:8 scale in
  Alcotest.(check int) "8 rows" 8 (List.length v.Wn_core.Sampling.rows);
  List.iteri
    (fun i (row : Wn_core.Sampling.var_row) ->
      Alcotest.(check int) "dataset ids" i row.Wn_core.Sampling.dataset;
      if row.Wn_core.Sampling.anytime <= 0.0 then
        Alcotest.fail "anytime variance must be positive";
      match (i mod v.Wn_core.Sampling.keep_every, row.Wn_core.Sampling.sampled) with
      | 0, None -> Alcotest.fail "budgeted dataset not sampled"
      | r, Some _ when r <> 0 -> Alcotest.fail "unbudgeted dataset sampled"
      | _ -> ())
    v.Wn_core.Sampling.rows;
  if v.Wn_core.Sampling.keep_every < 2 then
    Alcotest.fail "precise sampling should not keep up with every data set"

(* ---------------- Ablations ---------------- *)

let test_ablation_memo () =
  let points = Wn_core.Ablations.memo_sweep ~sizes:[ 4; 64 ] scale in
  match points with
  | [ none; small; big ] ->
      if none.Wn_core.Ablations.hit_rate <> 0.0 then
        Alcotest.fail "no-table run reported hits";
      if big.Wn_core.Ablations.hit_rate <= small.Wn_core.Ablations.hit_rate then
        Alcotest.fail "bigger table should hit more";
      if big.Wn_core.Ablations.memo_speedup <= none.Wn_core.Ablations.memo_speedup
      then Alcotest.fail "memoization should speed up the earliest output"
  | _ -> Alcotest.fail "expected three sweep points"

let test_ablation_watchdog () =
  let setup =
    { Wn_core.Intermittent.default_setup with n_traces = 2; samples_per_run = 1 }
  in
  let points =
    Wn_core.Ablations.watchdog_sweep ~periods:[ 1_000; 12_000 ] ~setup scale
  in
  match points with
  | [ short; long ] ->
      if
        long.Wn_core.Ablations.baseline_reexec
        <= short.Wn_core.Ablations.baseline_reexec
      then
        Alcotest.fail
          "longer watchdog periods must cost the baseline more re-execution"
  | _ -> Alcotest.fail "expected two sweep points"

let test_ablation_energy () =
  let setup =
    { Wn_core.Intermittent.default_setup with n_traces = 2; samples_per_run = 1 }
  in
  let points =
    Wn_core.Ablations.energy_sweep ~energies:[ 0.5e-9; 2.0e-9 ] ~setup scale
  in
  List.iter
    (fun p ->
      if p.Wn_core.Ablations.energy_speedup <= 0.9 then
        Alcotest.fail "implausible speedup in energy sweep";
      if p.Wn_core.Ablations.burst_cycles <= 0 then
        Alcotest.fail "burst length must be positive")
    points;
  match points with
  | [ a; b ] ->
      if b.Wn_core.Ablations.burst_cycles >= a.Wn_core.Ablations.burst_cycles then
        Alcotest.fail "more energy per cycle must shorten the burst"
  | _ -> Alcotest.fail "expected two sweep points"

let test_ablation_subword () =
  let points = Wn_core.Ablations.subword_sweep ~bits_list:[ 4; 8 ] scale in
  (* For every benchmark: 4-bit is faster to first output than 8-bit. *)
  List.iter
    (fun name ->
      let find bits =
        List.find
          (fun p ->
            p.Wn_core.Ablations.workload = name && p.Wn_core.Ablations.bits = bits)
          points
      in
      let p4 = find 4 and p8 = find 8 in
      if p4.Wn_core.Ablations.sw_speedup <= p8.Wn_core.Ablations.sw_speedup then
        Alcotest.failf "%s: 4-bit not faster than 8-bit" name)
    Wn_workloads.Suite.names

(* ---------------- Table 1 ---------------- *)

let test_table1_rows () =
  let rows = Wn_core.Table1.rows scale in
  Alcotest.(check int) "six rows" 6 (List.length rows);
  List.iter
    (fun (r : Wn_core.Table1.row) ->
      if r.Wn_core.Table1.insn_pct <= 0.0 || r.Wn_core.Table1.insn_pct > 50.0 then
        Alcotest.failf "%s: implausible WN instruction share %.1f%%"
          r.Wn_core.Table1.name r.Wn_core.Table1.insn_pct;
      if r.Wn_core.Table1.runtime_ms <= 0.0 then
        Alcotest.failf "%s: no runtime" r.Wn_core.Table1.name;
      if r.Wn_core.Table1.code_bytes_anytime <= r.Wn_core.Table1.code_bytes_precise
      then
        Alcotest.failf "%s: anytime code not larger" r.Wn_core.Table1.name)
    rows

(* ---------------- Area model (Section V-D) ---------------- *)

let test_area_adder () =
  let r = Wn_area.Area_model.adder () in
  Alcotest.(check int) "seven muxes (Figure 8)" 7 r.Wn_area.Area_model.mux_count;
  (* The paper's numbers: ~0.02% area, ~4% adder power, Fmax ~1.12 GHz,
     orders of magnitude above the 24 MHz operating point. *)
  if r.Wn_area.Area_model.area_overhead_pct > 0.1 then
    Alcotest.failf "area overhead %.3f%% too high" r.Wn_area.Area_model.area_overhead_pct;
  if
    r.Wn_area.Area_model.adder_power_overhead_pct < 2.0
    || r.Wn_area.Area_model.adder_power_overhead_pct > 8.0
  then
    Alcotest.failf "adder power overhead %.1f%% off"
      r.Wn_area.Area_model.adder_power_overhead_pct;
  if r.Wn_area.Area_model.fmax_ghz < 0.9 || r.Wn_area.Area_model.fmax_ghz > 1.4 then
    Alcotest.failf "Fmax %.2f GHz off" r.Wn_area.Area_model.fmax_ghz;
  if r.Wn_area.Area_model.fmax_ghz *. 1000.0 < 10.0 *. r.Wn_area.Area_model.operating_mhz
  then Alcotest.fail "Fmax should dwarf the operating point"

let test_area_memo () =
  let r = Wn_area.Area_model.memo_table () in
  Alcotest.(check int) "paper's 28 tag bits" 28 r.Wn_area.Area_model.tag_bits;
  Alcotest.(check int) "16 entries" 16 r.Wn_area.Area_model.entries;
  (* The paper reports the table at 40.5% of a 16x16 multiplier. *)
  if r.Wn_area.Area_model.ratio_pct < 25.0 || r.Wn_area.Area_model.ratio_pct > 55.0
  then Alcotest.failf "memo/multiplier ratio %.1f%% off" r.Wn_area.Area_model.ratio_pct

let () =
  Alcotest.run "wn.core"
    [
      ( "curves",
        [
          Alcotest.test_case "matadd" `Quick test_curve_matadd;
          Alcotest.test_case "provisioning (fig 14)" `Quick test_curve_provisioning_study;
          Alcotest.test_case "vector loads (fig 12)" `Quick test_curve_vector_loads_study;
        ] );
      ( "earliest",
        [
          Alcotest.test_case "subword monotonicity (fig 15)" `Quick
            test_earliest_monotone_bits;
          Alcotest.test_case "memoization (fig 13)" `Quick test_memoization_study;
        ] );
      ( "intermittent",
        [ Alcotest.test_case "sample accounting" `Slow
            test_intermittent_sample_accounting;
          Alcotest.test_case "var on both systems (figs 10/11)" `Slow
            test_intermittent_var ] );
      ( "sampling",
        [
          Alcotest.test_case "glucose (fig 3)" `Quick test_glucose_study;
          Alcotest.test_case "var datasets (fig 17)" `Quick test_var_sampling_study;
        ] );
      ("table 1", [ Alcotest.test_case "rows" `Quick test_table1_rows ]);
      ( "ablations",
        [
          Alcotest.test_case "memo table size" `Quick test_ablation_memo;
          Alcotest.test_case "watchdog period" `Slow test_ablation_watchdog;
          Alcotest.test_case "energy per cycle" `Slow test_ablation_energy;
          Alcotest.test_case "subword granularity" `Quick test_ablation_subword;
        ] );
      ( "area model",
        [
          Alcotest.test_case "adder (section V-D)" `Quick test_area_adder;
          Alcotest.test_case "memo table (section V-D)" `Quick test_area_memo;
        ] );
    ]
